// Command cuckoovet is the multichecker for this repository's
// concurrency-invariant analyzers (docs/ANALYSIS.md): the disciplines the
// paper's cuckoo+ design rests on — ordered stripe locking (§4.4), the
// optimistic seqlock re-read protocol (§4.2/Eq. 1), all-or-nothing atomic
// field access, cache-line-padded shard counters (principle P1) and
// side-effect-free HTM transaction bodies (§5) — machine-checked over the
// whole tree.
//
// Usage:
//
//	go run ./cmd/cuckoovet [-checks list] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 when any unsuppressed diagnostic is reported. Findings can
// be suppressed, one line at a time, with an end-of-line or
// preceding-line comment that names the check and carries a reason:
//
//	x := t.count //lint:allow cuckoovet:atomicfield single-threaded init, not yet published
//
// A directive without a reason, naming an unknown check, or suppressing
// nothing is itself an error — stale escapes rot into blind spots.
//
// cuckoovet needs no network and no dependencies beyond the standard
// library: packages are enumerated with `go list` against the local build
// cache and type-checked from source.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/cuckoovet"
	"cuckoohash/internal/analysis/driver"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cuckoovet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Machine-checks the repository's concurrency invariants (docs/ANALYSIS.md).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := cuckoovet.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected := all
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "cuckoovet: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuckoovet: %v\n", err)
		os.Exit(2)
	}
	prog, err := driver.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuckoovet: %v\n", err)
		os.Exit(2)
	}
	findings, err := driver.Run(prog, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuckoovet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cuckoovet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
