// Command cuckoovet is the multichecker for this repository's
// concurrency-invariant analyzers (docs/ANALYSIS.md): the disciplines the
// paper's cuckoo+ design rests on — ordered stripe locking (§4.4), the
// optimistic seqlock re-read protocol (§4.2/Eq. 1), all-or-nothing atomic
// field access, cache-line-padded shard counters (principle P1) and
// side-effect-free HTM transaction bodies (§5) — machine-checked over the
// whole tree.
//
// Usage:
//
//	go run ./cmd/cuckoovet [-checks list] [-list] [-timing] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 when any unsuppressed diagnostic is reported. Findings can
// be suppressed, one line at a time, with an end-of-line or
// preceding-line comment that names the check and carries a reason:
//
//	x := t.count //lint:allow cuckoovet:atomicfield single-threaded init, not yet published
//
// A directive without a reason, naming an unknown check, or suppressing
// nothing is itself an error — stale escapes rot into blind spots.
//
// cuckoovet needs no network and no dependencies beyond the standard
// library: packages are enumerated with `go list` against the local build
// cache and type-checked from source.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/cuckoovet"
	"cuckoohash/internal/analysis/driver"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	timing := flag.Bool("timing", false, "report per-analyzer wall time on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cuckoovet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Machine-checks the repository's concurrency invariants (docs/ANALYSIS.md).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := cuckoovet.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected := all
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "cuckoovet: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuckoovet: %v\n", err)
		os.Exit(2)
	}
	prog, err := driver.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuckoovet: %v\n", err)
		os.Exit(2)
	}
	// The full registry's names go along so that a -checks subset run does
	// not misjudge allow directives for the checks it skipped.
	names := make([]string, 0, len(all))
	for _, a := range all {
		names = append(names, a.Name)
	}
	findings, times, err := driver.RunChecks(prog, selected, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuckoovet: %v\n", err)
		os.Exit(2)
	}
	if *timing {
		var total time.Duration
		for _, t := range times {
			fmt.Fprintf(os.Stderr, "cuckoovet: %-12s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
			total += t.Elapsed
		}
		fmt.Fprintf(os.Stderr, "cuckoovet: %-12s %8.1fms\n", "total", float64(total.Microseconds())/1000)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cuckoovet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
