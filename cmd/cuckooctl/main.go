// Command cuckooctl administers a cuckood cluster (docs/CLUSTER.md): it
// inspects per-node load, rebalances keys across the two-choice ring, and
// drains a node ahead of removing it from service.
//
//	cuckooctl -nodes 10.0.0.1:11300,10.0.0.2:11300,10.0.0.3:11300 status
//	cuckooctl -nodes ... rebalance
//	cuckooctl -nodes ... drain 10.0.0.2:11300
//	cuckooctl -nodes ... -top 20 hotkeys
//
// The node list (order included) and -seed define key placement; every
// client and cuckooctl invocation against the same cluster must agree on
// both.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cuckoohash/client"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: cuckooctl -nodes <addr,addr,...> [flags] <status|rebalance|drain <addr>|hotkeys>\n\nflags:\n")
	flag.PrintDefaults()
}

func main() {
	var (
		nodes     = flag.String("nodes", "", "comma-separated cluster membership, in ring order (required)")
		seed      = flag.Uint64("seed", 0, "ring placement seed; must match the cluster's clients")
		watermark = flag.Float64("watermark", 0.25, "rebalance skew target: (max-mean)/mean load at which the ring counts as balanced")
		rounds    = flag.Int("rounds", 32, "rebalance: maximum shed rounds")
		batch     = flag.Int("batch", 512, "rebalance: keys to shed per round")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-operation IO timeout (migrations get at least 30s)")
		top       = flag.Int("top", 10, "hotkeys: how many keys to show, merged across all nodes")
	)
	flag.Usage = usage
	flag.Parse()

	if *nodes == "" || flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	ring, err := clusterRing(*nodes, *seed, *watermark, *timeout)
	if err != nil {
		fatal(err)
	}
	defer ring.Close()

	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = runStatus(ring)
	case "rebalance":
		err = runRebalance(ring, *rounds, *batch)
	case "drain":
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("drain wants exactly one node address"))
		}
		err = runDrain(ring, flag.Arg(1))
	case "hotkeys":
		err = runHotKeys(ring, *top)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
	if err != nil {
		fatal(err)
	}
}

func clusterRing(nodes string, seed uint64, watermark float64, timeout time.Duration) (*client.Cluster, error) {
	addrs := splitNodes(nodes)
	return client.NewCluster(addrs, client.ClusterOptions{
		Pool: client.Options{
			Size:      2,
			IOTimeout: timeout,
		},
		SkewTarget: watermark,
		Seed:       seed,
	})
}

// splitNodes splits the -nodes list, dropping empties from stray commas.
func splitNodes(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func runStatus(cl *client.Cluster) error {
	sts := cl.Status()
	fmt.Printf("%-22s %10s %10s %8s %12s %12s %9s %8s %s\n",
		"NODE", "ENTRIES", "CAPACITY", "LOAD", "MIGRATED_IN", "MIGRATED_OUT", "HANDOFFS", "BREAKER", "STATUS")
	unreachable := 0
	for _, st := range sts {
		if st.Err != nil {
			unreachable++
			fmt.Printf("%-22s %10s %10s %8s %12s %12s %9s %8s %v\n",
				st.Addr, "-", "-", "-", "-", "-", "-", st.BreakerState, st.Err)
			continue
		}
		fmt.Printf("%-22s %10d %10d %7.2f%% %12d %12d %9d %8s ok\n",
			st.Addr, st.Entries, st.Capacity, st.Load*100,
			st.MigratedIn, st.MigratedOut, st.Handoffs, st.BreakerState)
	}
	fmt.Printf("ring skew: %.4f\n", cl.Skew())
	if unreachable > 0 {
		return fmt.Errorf("%d of %d nodes unreachable", unreachable, len(sts))
	}
	return nil
}

func runRebalance(cl *client.Cluster, rounds, batch int) error {
	rep, err := cl.Rebalance(rounds, batch)
	if err != nil {
		return err
	}
	fmt.Printf("skew: %.4f -> %.4f\n", rep.SkewBefore, rep.SkewAfter)
	fmt.Printf("moved: %d keys (%d home repairs, %d shed over %d rounds)\n",
		rep.Migrated(), rep.HomeRepaired, rep.Shed, rep.Rounds)
	if !rep.Converged {
		return fmt.Errorf("did not converge below skew target")
	}
	fmt.Println("converged")
	return nil
}

func runDrain(cl *client.Cluster, addr string) error {
	moved, err := cl.Drain(addr)
	if err != nil {
		return err
	}
	fmt.Printf("drained %d keys off %s; node is safe to stop\n", moved, addr)
	return nil
}

// runHotKeys prints the cluster-wide hottest keys: every node's HOTKEYS
// top-K sketch, merged by key with counts summed. Counts are approximate
// (space-saving sketch over sampled requests) but the ranking of truly
// hot keys is reliable.
func runHotKeys(cl *client.Cluster, top int) error {
	items, err := cl.HotKeys(top)
	if len(items) > 0 {
		fmt.Printf("%-12s %s\n", "COUNT", "KEY")
		for _, it := range items {
			fmt.Printf("%-12d %s\n", it.Count, it.Key)
		}
	}
	if err != nil {
		return err
	}
	if len(items) == 0 {
		fmt.Println("no hot keys tracked yet (the sketch fills from sampled requests)")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cuckooctl:", err)
	os.Exit(1)
}
