// Command cuckood runs the cuckoo-table network cache daemon, or — with
// -loadgen — a load generator against a running daemon.
//
// Serve:
//
//	cuckood -listen 127.0.0.1:11300 -shards 8 -slots 65536 -sweep 1s \
//	        -admin 127.0.0.1:11301 -log-level info -slow-op 10ms
//
// The daemon speaks the text protocol in docs/PROTOCOL.md and drains
// gracefully on SIGINT/SIGTERM: in-flight request batches complete and
// every connection is closed cleanly. With -admin it also serves an HTTP
// observability endpoint: Prometheus metrics at /metrics, an expvar
// snapshot at /debug/vars, and the pprof profiler under /debug/pprof/
// (docs/OBSERVABILITY.md).
//
// Load-generate:
//
//	cuckood -loadgen -addr 127.0.0.1:11300 -conns 8 -ops 100000 \
//	        -batch 16 -dist zipf -theta 0.99 -set 0.1 -keys 1048576
//
// The generator opens one pipelined connection per -conns goroutine and
// reports throughput plus p50/p99/p999 batch round-trip latency.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cuckoohash/internal/faultinject"
	"cuckoohash/internal/loadgen"
	"cuckoohash/internal/obs"
	"cuckoohash/server"
)

func main() {
	var (
		// Server mode.
		listen   = flag.String("listen", "127.0.0.1:11300", "listen address (server mode)")
		shards   = flag.Int("shards", 8, "cache shards (rounded up to a power of two)")
		slots    = flag.Uint64("slots", 1<<16, "slot capacity per shard (bounded; evicts when full)")
		sweep    = flag.Duration("sweep", time.Second, "TTL sweep interval (<0 disables)")
		txnPhase = flag.Duration("txn-phase", 50*time.Millisecond, "split-counter phase tick: hot-key delta reconcile interval (<0 disables)")
		drain    = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")

		// Robustness (docs/ROBUSTNESS.md).
		maxConns    = flag.Int("max-conns", 0, "max concurrent connections; extras are shed with ERR busy at accept (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "max requests executing at once; extras fail fast with ERR busy (0 = unlimited)")
		ioTimeout   = flag.Duration("io-timeout", 0, "per-batch response write deadline; slower readers are disconnected (0 = none)")
		idleTimeout = flag.Duration("idle-timeout", 0, "close connections idle longer than this (0 = keep forever)")
		snapshot    = flag.String("snapshot", "", "snapshot file: cache is saved here on drain and restored on start (empty disables)")
		faultSpec   = flag.String("fault-plan", "", "deterministic fault-injection spec, e.g. latency=2ms:0.05,reset:0.01 (testing only)")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for -fault-plan schedules")

		// Replication (docs/REPLICATION.md).
		replNodes = flag.String("repl-nodes", "", "comma-separated cluster node list in ring order, this node included; enables async two-choice replication (empty disables)")
		replSeed  = flag.Uint64("repl-seed", 0, "ring placement seed for -repl-nodes; must match the cluster's clients")

		// Observability.
		admin     = flag.String("admin", "", "admin HTTP listen address serving /metrics, /debug/vars, /debug/pprof/ (empty disables)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		slowOp    = flag.Duration("slow-op", 0, "slow-request threshold; every request at or over it is counted and logged with its trace ID and stage breakdown (0 disables)")

		// Loadgen mode.
		lg       = flag.Bool("loadgen", false, "run the load generator instead of the server")
		addr     = flag.String("addr", "127.0.0.1:11300", "server address, or a comma-separated cluster node list in ring order (loadgen mode)")
		conns    = flag.Int("conns", 8, "concurrent client connections")
		ops      = flag.Int("ops", 100000, "operations per connection")
		batch    = flag.Int("batch", 16, "pipeline depth (1 = no pipelining)")
		dist     = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		theta    = flag.Float64("theta", 0.99, "zipf skew (0,1)")
		zipfS    = flag.Float64("zipf-s", 0, "heavy-skew zipf exponent s > 1 (e.g. 1.2); overrides -dist/-theta when set")
		workload = flag.String("workload", "mixed", "operation shape: mixed (GET/SET), incr (hot counters), txn (MULTI…EXEC batches), or hot (hot-set read scale-out)")
		hotN     = flag.Uint64("hot-n", 0, "hot-set size for -workload hot (0 = default 64)")
		setFrac  = flag.Float64("set", 0.1, "fraction of SET operations")
		keys     = flag.Uint64("keys", 1<<20, "key universe size")
		valSize  = flag.Int("valsize", 32, "value size in bytes")
		ttl      = flag.Duration("ttl", 0, "TTL attached to every SET (0 = none)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		ringSeed = flag.Uint64("ring-seed", 0, "cluster ring placement seed when -addr lists several nodes; must match the cluster's clients")
		trace    = flag.Bool("trace", false, "attach a fresh TRACE id to each request batch (loadgen mode)")
	)
	flag.Parse()

	if *lg {
		runLoadgen(loadgen.Config{
			Addr: *addr, Conns: *conns, OpsPerConn: *ops, Batch: *batch,
			Dist: *dist, Theta: *theta, ZipfS: *zipfS, Workload: *workload,
			HotN: *hotN, SetFrac: *setFrac, Keys: *keys,
			ValueSize: *valSize, TTL: *ttl, Seed: *seed, RingSeed: *ringSeed,
			Trace: *trace,
		})
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuckood:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	plan, err := faultinject.Parse(*faultSpec, *faultSeed)
	if err != nil {
		fatal("bad -fault-plan", err)
	}

	srv, err := server.New(server.Config{
		Addr:             *listen,
		Shards:           *shards,
		SlotsPerShard:    *slots,
		SweepInterval:    *sweep,
		TxnPhaseInterval: *txnPhase,
		SlowOpThreshold:  *slowOp,
		Logger:           logger,
		MaxConns:         *maxConns,
		MaxInflight:      *maxInflight,
		IOTimeout:        *ioTimeout,
		IdleTimeout:      *idleTimeout,
		SnapshotPath:     *snapshot,
		FaultPlan:        plan,
	})
	if err != nil {
		fatal("startup failed", err)
	}
	if err := srv.Listen(); err != nil {
		fatal("listen failed", err)
	}
	if *replNodes != "" {
		nodes := strings.Split(*replNodes, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
		if err := srv.EnableReplication(nodes, *replSeed, *listen); err != nil {
			fatal("replication startup failed", err)
		}
		logger.Info("replication enabled", "nodes", *replNodes, "seed", *replSeed)
	}

	if *admin != "" {
		reg := obs.NewRegistry()
		reg.Register(obs.GoRuntime{})
		reg.Register(obs.HTM{})
		reg.Register(srv)
		obs.PublishExpvar("cuckood", srv.ExpvarSnapshot)
		adminLn, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal("admin listen failed", err)
		}
		logger.Info("admin endpoint up",
			"addr", adminLn.Addr().String(),
			"paths", "/metrics /debug/vars /debug/pprof/ /debug/flight")
		go func() {
			if err := http.Serve(adminLn, obs.NewAdminMux(reg, srv.Flight())); err != nil {
				// The listener is never closed deliberately, so any error
				// here is real — but not fatal to the cache itself.
				logger.Error("admin endpoint failed", "err", err)
			}
		}()
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("signal received; draining", "timeout", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain timed out", "err", err)
			return
		}
	}()

	if err := srv.Serve(); err != server.ErrServerClosed {
		fatal("serve failed", err)
	}
	// Serve returns as soon as the listener closes; wait for the drain to
	// finish so in-flight connections are not cut off by process exit.
	<-drained
}

func runLoadgen(cfg loadgen.Config) {
	res, err := loadgen.Run(cfg)
	if res != nil {
		res.Print(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuckood -loadgen:", err)
		os.Exit(1)
	}
}
