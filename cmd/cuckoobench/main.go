// Command cuckoobench regenerates the paper's evaluation figures against
// this repository's table implementations.
//
// Usage:
//
//	cuckoobench -list
//	cuckoobench -exp fig6a [-scale small|medium|paper] [-csv out.csv]
//	cuckoobench -exp all
//
// Each experiment prints a text table whose rows/series mirror the paper's
// figure; see DESIGN.md §4 for the mapping and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"cuckoohash/internal/bench"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (see -list: fig1..fig10b, eq1, eq2, naive, memory, latency, zipf, churn) or \"all\"")
		scale    = flag.String("scale", "small", "workload scale: small, medium or paper")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		jsonPath = flag.String("json", "", "also write machine-readable results (host, scale, all reports) as JSON to this file")
		outPath  = flag.String("out", "", "like -json, but creates parent directories first (e.g. results/BENCH_core.json) — for committed perf baselines and CI artifacts")
		list     = flag.Bool("list", false, "list experiments and exit")
		repeat   = flag.Int("repeat", 1, "run each experiment N times and report per-cell medians (for noisy hosts)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "cuckoobench: -exp is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuckoobench:", err)
		os.Exit(2)
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.Experiments()
	} else {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "cuckoobench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	var csvFile *os.File
	if *csvPath != "" {
		csvFile, err = os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cuckoobench:", err)
			os.Exit(1)
		}
		defer csvFile.Close()
	}

	fmt.Printf("# %d logical CPUs, GOMAXPROCS=%d, scale=%s\n\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), *scale)
	var done []*bench.Report
	for _, e := range exps {
		start := time.Now()
		rep := runMedian(e, sc, *repeat)
		rep.Print(os.Stdout)
		fmt.Printf("  (took %v)\n\n", time.Since(start).Round(time.Millisecond))
		if csvFile != nil {
			fmt.Fprintf(csvFile, "# %s: %s\n", rep.ID, rep.Title)
			rep.CSV(csvFile)
			fmt.Fprintln(csvFile)
		}
		done = append(done, rep)
	}
	if *jsonPath != "" {
		writeJSONFile(*jsonPath, false, done, *scale, sc, *repeat)
	}
	if *outPath != "" {
		writeJSONFile(*outPath, true, done, *scale, sc, *repeat)
	}
}

// writeJSONFile writes the machine-readable result payload to path; with
// mkdir it creates missing parent directories, so -out can target a fresh
// results/ tree on a CI runner.
func writeJSONFile(path string, mkdir bool, done []*bench.Report, scale string, sc bench.Scale, repeat int) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "cuckoobench:", err)
		os.Exit(1)
	}
	if mkdir {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := bench.WriteJSON(f, done, scale, sc, repeat); err != nil {
		fail(err)
	}
	fmt.Printf("# wrote %s\n", path)
}

// runMedian runs the experiment n times and merges the reports cell-wise by
// median; rows are matched by position (experiments emit deterministic row
// sets). With n == 1 it is a plain run.
func runMedian(e bench.Experiment, sc bench.Scale, n int) *bench.Report {
	if n < 2 {
		return e.Run(sc)
	}
	reports := make([]*bench.Report, n)
	for i := range reports {
		reports[i] = e.Run(sc)
	}
	merged := reports[0]
	for ri := range merged.Rows {
		for ci := range merged.Rows[ri].Values {
			samples := make([]float64, 0, n)
			for _, r := range reports {
				if ri < len(r.Rows) && ci < len(r.Rows[ri].Values) {
					samples = append(samples, r.Rows[ri].Values[ci])
				}
			}
			sort.Float64s(samples)
			merged.Rows[ri].Values[ci] = samples[len(samples)/2]
		}
	}
	merged.AddNote("values are per-cell medians of %d runs", n)
	return merged
}
