package cuckoohash_test

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"cuckoohash"
	"cuckoohash/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if _, err := cuckoohash.NewMap(cuckoohash.Config{}); err == nil {
		t.Fatal("zero Capacity accepted")
	}
	if _, err := cuckoohash.NewMap(cuckoohash.Config{Capacity: 1024, Associativity: 33}); err == nil {
		t.Fatal("Associativity 33 accepted")
	}
	if _, err := cuckoohash.NewMap(cuckoohash.Config{Capacity: 1024, LockStripes: 3}); err == nil {
		t.Fatal("non-power-of-two LockStripes accepted")
	}
	m, err := cuckoohash.NewMap(cuckoohash.Config{Capacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cap() < 1000 {
		t.Fatalf("Cap = %d < requested 1000", m.Cap())
	}
}

func TestPublicAPIBasics(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12})
	if err := m.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(1, 200); !errors.Is(err, cuckoohash.ErrExists) {
		t.Fatalf("dup insert: %v", err)
	}
	if v, ok := m.Lookup(1); !ok || v != 100 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if err := m.Upsert(1, 300); err != nil {
		t.Fatal(err)
	}
	if !m.Update(1, 400) || m.Update(2, 0) {
		t.Fatal("Update semantics")
	}
	if v, _ := m.Lookup(1); v != 400 {
		t.Fatalf("after Update: %d", v)
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("Delete semantics")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.MemoryFootprint() == 0 {
		t.Fatal("MemoryFootprint = 0")
	}
}

func TestPublicMultiWordValues(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 10, ValueWords: 3})
	if err := m.InsertValue(9, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 3)
	if !m.LookupValue(9, dst) || dst[2] != 3 {
		t.Fatalf("LookupValue = %v", dst)
	}
	if err := m.UpsertValue(9, []uint64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	m.LookupValue(9, dst)
	if dst[0] != 7 || dst[2] != 9 {
		t.Fatalf("after UpsertValue: %v", dst)
	}
	// Short payloads zero-extend.
	if err := m.InsertValue(10, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	m.LookupValue(10, dst)
	if dst[0] != 5 || dst[1] != 0 || dst[2] != 0 {
		t.Fatalf("short payload: %v", dst)
	}
}

func TestGlobalLockMode(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{
		Capacity:    1 << 12,
		Concurrency: cuckoohash.GlobalLock,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) << 32
			for i := uint64(0); i < 800; i++ {
				if err := m.Insert(base|i, i); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if m.Len() != 3200 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestDFSAndNoPrefetchModes(t *testing.T) {
	for _, cfg := range []cuckoohash.Config{
		{Capacity: 1 << 12, Search: cuckoohash.DFS},
		{Capacity: 1 << 12, NoPrefetch: true},
		{Capacity: 1 << 12, Associativity: 4},
		{Capacity: 1 << 12, Associativity: 16},
	} {
		m := cuckoohash.MustNewMap(cfg)
		n := m.Cap() * 9 / 10
		for i := uint64(0); i < n; i++ {
			if err := m.Insert(i+1, i); err != nil {
				t.Fatalf("cfg %+v Insert(%d): %v", cfg, i+1, err)
			}
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := m.Lookup(i + 1); !ok || v != i {
				t.Fatalf("cfg %+v Lookup(%d) = %d,%v", cfg, i+1, v, ok)
			}
		}
	}
}

func TestElidedMapAllPolicies(t *testing.T) {
	for _, p := range []cuckoohash.ElisionPolicy{
		cuckoohash.ElisionTuned, cuckoohash.ElisionGlibc, cuckoohash.ElisionNone,
	} {
		m := cuckoohash.MustNewElidedMap(cuckoohash.Config{Capacity: 1 << 12}, p)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := uint64(w+1) << 32
				for i := uint64(0); i < 500; i++ {
					if err := m.Insert(base|i, i); err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
					if v, ok := m.Lookup(base | i); !ok || v != i {
						t.Errorf("Lookup(%d) = %d,%v", base|i, v, ok)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if m.Len() != 2000 {
			t.Fatalf("policy %v: Len = %d", p, m.Len())
		}
		ts := m.TxStats()
		if p == cuckoohash.ElisionNone && ts.Commits != 0 {
			t.Fatalf("ElisionNone speculated: %+v", ts)
		}
		if p != cuckoohash.ElisionNone && ts.Commits == 0 {
			t.Fatalf("policy %v never committed speculatively: %+v", p, ts)
		}
	}
}

func TestGrowViaPublicAPI(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 256})
	var i uint64
	for {
		if err := m.Insert(i+1, i); err != nil {
			if !errors.Is(err, cuckoohash.ErrFull) {
				t.Fatal(err)
			}
			if err := m.Grow(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		i++
		if i >= 2000 {
			break
		}
	}
	for k := uint64(1); k <= 2000; k++ {
		if v, ok := m.Lookup(k); !ok || v != k-1 {
			t.Fatalf("after grow Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestQuickOracleSequence drives random operation sequences against a Go
// map oracle with testing/quick generating the scripts.
func TestQuickOracleSequence(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16 // small keyspace to force collisions and reuse
		Val  uint32
	}
	check := func(ops []op) bool {
		m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12})
		oracle := map[uint64]uint64{}
		for _, o := range ops {
			k, v := uint64(o.Key)+1, uint64(o.Val)
			switch o.Kind % 5 {
			case 0: // Insert
				err := m.Insert(k, v)
				_, exists := oracle[k]
				if exists != errors.Is(err, cuckoohash.ErrExists) {
					return false
				}
				if !exists {
					if err != nil {
						return false
					}
					oracle[k] = v
				}
			case 1: // Upsert
				if m.Upsert(k, v) != nil {
					return false
				}
				oracle[k] = v
			case 2: // Update
				_, exists := oracle[k]
				if m.Update(k, v) != exists {
					return false
				}
				if exists {
					oracle[k] = v
				}
			case 3: // Delete
				_, exists := oracle[k]
				if m.Delete(k) != exists {
					return false
				}
				delete(oracle, k)
			default: // Lookup
				got, ok := m.Lookup(k)
				want, exists := oracle[k]
				if ok != exists || (ok && got != want) {
					return false
				}
			}
		}
		if m.Len() != uint64(len(oracle)) {
			return false
		}
		for k, v := range oracle {
			if got, ok := m.Lookup(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeConsistentSnapshot verifies Range sees exactly the live entries
// even while readers run.
func TestRangeConsistentSnapshot(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12})
	for i := uint64(1); i <= 1000; i++ {
		if err := m.Insert(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := workload.NewRand(3)
		for {
			select {
			case <-stop:
				return
			default:
				m.Lookup(rnd.Intn(1000) + 1)
			}
		}
	}()
	seen := 0
	m.Range(func(k uint64, v []uint64) bool {
		if v[0] != k*2 {
			t.Errorf("Range value mismatch at %d: %d", k, v[0])
		}
		seen++
		return true
	})
	close(stop)
	wg.Wait()
	if seen != 1000 {
		t.Fatalf("Range saw %d entries", seen)
	}
}
