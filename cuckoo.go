// Package cuckoohash provides a high-throughput, memory-efficient
// concurrent hash table for small fixed-size key/value items, implementing
// "Algorithmic Improvements for Fast Concurrent Cuckoo Hashing" (Li,
// Andersen, Kaminsky, Freedman — EuroSys 2014), the design released by the
// authors as libcuckoo.
//
// # Design
//
// A Map stores 8-byte keys and fixed-width values in flat arrays of B-way
// set-associative cuckoo buckets: no pointers, no per-entry allocation, and
// usable occupancy beyond 95%. Lookups are optimistic and lock-free (they
// never write shared memory); inserts discover a "cuckoo path" to an empty
// slot with breadth-first search before taking any lock, then execute at
// most ~5 single-pair displacements under striped fine-grained spinlocks.
// See DESIGN.md for the paper-to-code map.
//
// # Choosing a table
//
//   - NewMap: the production table (fine-grained locking by default).
//   - NewElidedMap: the same algorithm under a single coarse lock with
//     emulated hardware-transactional-memory lock elision, matching §5 of
//     the paper. Primarily for experiments; the fine-grained Map is the
//     portable choice.
//   - package generic: arbitrary key/value types with locked reads and
//     automatic resizing, the libcuckoo-style general-purpose variant (§7).
//
// # Example
//
//	m, err := cuckoohash.NewMap(cuckoohash.Config{Capacity: 1 << 20})
//	if err != nil { ... }
//	_ = m.Insert(42, 1000)
//	v, ok := m.Lookup(42)
package cuckoohash

import (
	"errors"

	"cuckoohash/internal/core"
	"cuckoohash/internal/htm"
)

// Errors returned by table operations.
var (
	// ErrFull means no empty slot is reachable within the search budget;
	// the table needs Grow (or was sized too small).
	ErrFull = core.ErrFull
	// ErrExists is returned by Insert when the key is already present.
	ErrExists = core.ErrExists
)

// Concurrency selects the writer concurrency-control scheme of a Map.
type Concurrency int

const (
	// FineGrained uses striped per-bucket-pair spinlocks (§4.4); the
	// default and the best scaling choice.
	FineGrained Concurrency = iota
	// GlobalLock serializes writers on one lock while keeping the
	// optimistic lock-free readers and the out-of-lock path search. It is
	// the paper's "+lock later" configuration and is mainly useful for
	// comparison.
	GlobalLock
)

// SearchStrategy selects how inserts look for an empty slot.
type SearchStrategy int

const (
	// BFS is the paper's breadth-first path search (§4.3.2); default.
	BFS SearchStrategy = iota
	// DFS is the MemC3-style random-walk search, retained for experiments.
	DFS
)

// Config configures a Map. The zero value of every field selects a sound
// default; only Capacity is required.
type Config struct {
	// Capacity is the number of slots to provision. The table supports
	// filling to ~95% of this before Insert returns ErrFull. Required.
	Capacity uint64
	// Associativity is the bucket width B (4, 8 or 16 are sensible; the
	// paper's default, 8, balances read and write cost — §4.3.3).
	Associativity int
	// ValueWords is the value size in 8-byte words (default 1).
	ValueWords int
	// LockStripes is the size of the striped lock table (default 4096).
	LockStripes int
	// MaxSearchSlots is the insert search budget M (default 2000).
	MaxSearchSlots int
	// Seed perturbs the hash function (default 0: fixed hash).
	Seed uint64
	// Concurrency selects FineGrained (default) or GlobalLock.
	Concurrency Concurrency
	// Search selects BFS (default) or DFS.
	Search SearchStrategy
	// NoPrefetch disables the BFS next-bucket prefetch.
	NoPrefetch bool
	// AutoGrow makes write operations react to a full table by growing it
	// (doubling capacity, briefly stopping the world) instead of returning
	// ErrFull.
	AutoGrow bool
}

func (c Config) coreOptions() (core.Options, error) {
	if c.Capacity == 0 {
		return core.Options{}, errors.New("cuckoohash: Config.Capacity is required")
	}
	o := core.Defaults(c.Capacity)
	if c.Associativity != 0 {
		// Re-derive the bucket count for the requested associativity.
		o.Assoc = c.Associativity
		buckets := uint64(2)
		for buckets*uint64(c.Associativity) < c.Capacity {
			buckets <<= 1
		}
		o.Buckets = buckets
	}
	if c.ValueWords != 0 {
		o.ValueWords = c.ValueWords
	}
	if c.LockStripes != 0 {
		o.Stripes = c.LockStripes
	}
	if c.MaxSearchSlots != 0 {
		o.MaxSearchSlots = c.MaxSearchSlots
	}
	o.Seed = c.Seed
	if c.Concurrency == GlobalLock {
		o.Locking = core.LockGlobal
	}
	if c.Search == DFS {
		o.Search = core.SearchDFS
	}
	o.Prefetch = !c.NoPrefetch
	return o, nil
}

// Stats is a snapshot of a Map's operational counters.
type Stats = core.Stats

// Map is the concurrent cuckoo hash table (cuckoo+). All methods are safe
// for concurrent use by any number of goroutines.
type Map struct {
	t        *core.Table
	autoGrow bool
}

// NewMap creates a Map from cfg.
func NewMap(cfg Config) (*Map, error) {
	o, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	t, err := core.NewTable(o)
	if err != nil {
		return nil, err
	}
	return &Map{t: t, autoGrow: cfg.AutoGrow}, nil
}

// MustNewMap is NewMap that panics on error, for tests and examples.
func MustNewMap(cfg Config) *Map {
	m, err := NewMap(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// retryFull reruns op across automatic growth when AutoGrow is enabled.
// Exactly one of the racing writers performs the doubling (GrowIfFull);
// the others observe the halved load factor and retry directly.
func (m *Map) retryFull(op func() error) error {
	for {
		err := op()
		if !m.autoGrow || !errors.Is(err, ErrFull) {
			return err
		}
		if _, gerr := m.t.GrowIfFull(); gerr != nil {
			return gerr
		}
	}
}

// Insert adds key with value val, failing with ErrExists if the key is
// present and ErrFull if no slot is reachable (with Config.AutoGrow the
// table grows instead).
func (m *Map) Insert(key, val uint64) error {
	return m.retryFull(func() error { return m.t.Insert(key, val) })
}

// InsertValue is Insert for multi-word values (len(val) <= ValueWords;
// shorter payloads are zero-extended).
func (m *Map) InsertValue(key uint64, val []uint64) error {
	return m.retryFull(func() error { return m.t.InsertValue(key, val) })
}

// Upsert inserts key or overwrites its existing value.
func (m *Map) Upsert(key, val uint64) error {
	return m.retryFull(func() error { return m.t.Upsert(key, val) })
}

// UpsertValue is Upsert for multi-word values.
func (m *Map) UpsertValue(key uint64, val []uint64) error {
	return m.retryFull(func() error { return m.t.UpsertValue(key, val) })
}

// LookupBatch looks up len(keys) keys at once, writing the first value word
// and presence of each to vals[i] and found[i]. It pipelines the candidate
// bucket accesses (the prefetch idea of §4.3.2 applied to reads), which
// substantially outperforms a Lookup loop on DRAM-resident tables.
func (m *Map) LookupBatch(keys []uint64, vals []uint64, found []bool) {
	m.t.LookupBatch(keys, vals, found)
}

// Update overwrites key's value only if present, reporting whether it was.
func (m *Map) Update(key, val uint64) bool { return m.t.Update(key, val) }

// Lookup returns the (first word of the) value for key. The read is
// optimistic: it takes no locks and writes no shared cache lines.
func (m *Map) Lookup(key uint64) (uint64, bool) { return m.t.Lookup(key) }

// LookupValue copies key's value words into dst (len >= ValueWords),
// reporting whether the key was found.
func (m *Map) LookupValue(key uint64, dst []uint64) bool { return m.t.LookupValue(key, dst) }

// Contains reports whether key is present.
func (m *Map) Contains(key uint64) bool { return m.t.Contains(key) }

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(key uint64) bool { return m.t.Delete(key) }

// Len returns the number of stored keys.
func (m *Map) Len() uint64 { return m.t.Len() }

// Cap returns the number of slots.
func (m *Map) Cap() uint64 { return m.t.Cap() }

// LoadFactor returns Len/Cap.
func (m *Map) LoadFactor() float64 { return m.t.LoadFactor() }

// Grow doubles the table's capacity, blocking concurrent operations for the
// duration of the rehash.
func (m *Map) Grow() error { return m.t.Grow() }

// Range calls fn for every entry until it returns false, under a full-table
// lock (writers block; the value slice is reused across calls).
func (m *Map) Range(fn func(key uint64, val []uint64) bool) { m.t.Range(fn) }

// Clear removes every entry while retaining capacity (stops the world
// briefly, like Grow).
func (m *Map) Clear() { m.t.Clear() }

// Stats returns the map's operational counters.
func (m *Map) Stats() Stats { return m.t.Stats() }

// MemoryFootprint returns the approximate resident bytes of the table's
// arrays: 16 B per slot (8-byte key + value) for ValueWords == 1, plus the
// occupancy bitmap and lock-stripe table — the "no pointers" memory story
// of the paper.
func (m *Map) MemoryFootprint() uint64 {
	o := m.t.Options()
	slots := m.t.Cap()
	keys := slots * 8
	vals := slots * 8 * uint64(o.ValueWords)
	occ := m.t.Buckets() * 4
	stripes := uint64(o.Stripes) * 8
	return keys + vals + occ + stripes
}

// ElisionPolicy selects the lock-elision retry strategy of an ElidedMap.
type ElisionPolicy int

const (
	// ElisionTuned is the paper's TSX* policy (Appendix A): aggressive
	// retry tuned for the short transactions of the optimized table.
	ElisionTuned ElisionPolicy = iota
	// ElisionGlibc is the released glibc policy: conservative, falls back
	// to the serializing lock on any abort without the retry hint.
	ElisionGlibc
	// ElisionNone disables speculation: every operation takes the coarse
	// lock (the naive global-lock baseline of §2.3).
	ElisionNone
)

func (p ElisionPolicy) htm() htm.Policy {
	switch p {
	case ElisionGlibc:
		return htm.PolicyGlibc
	case ElisionNone:
		return htm.PolicyNone
	default:
		return htm.PolicyTuned
	}
}

// ElidedMap is cuckoo+ under a single coarse lock with emulated
// hardware-transactional-memory lock elision (§5 of the paper). Its
// capacity is fixed at creation. See the htm package note in DESIGN.md for
// what the software emulation preserves of real Intel TSX.
type ElidedMap struct {
	t *core.TxTable
}

// NewElidedMap creates an ElidedMap.
func NewElidedMap(cfg Config, policy ElisionPolicy) (*ElidedMap, error) {
	o, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	t, err := core.NewTxTable(o, policy.htm(), htm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &ElidedMap{t: t}, nil
}

// MustNewElidedMap panics on error.
func MustNewElidedMap(cfg Config, policy ElisionPolicy) *ElidedMap {
	m, err := NewElidedMap(cfg, policy)
	if err != nil {
		panic(err)
	}
	return m
}

// Insert adds key, failing with ErrExists or ErrFull.
func (m *ElidedMap) Insert(key, val uint64) error { return m.t.Insert(key, val) }

// Upsert inserts or overwrites key.
func (m *ElidedMap) Upsert(key, val uint64) error { return m.t.Upsert(key, val) }

// Lookup returns the value for key.
func (m *ElidedMap) Lookup(key uint64) (uint64, bool) { return m.t.Lookup(key) }

// Delete removes key, reporting whether it was present.
func (m *ElidedMap) Delete(key uint64) bool { return m.t.Delete(key) }

// Len returns the number of stored keys.
func (m *ElidedMap) Len() uint64 { return m.t.Len() }

// Cap returns the number of slots.
func (m *ElidedMap) Cap() uint64 { return m.t.Cap() }

// LoadFactor returns Len/Cap.
func (m *ElidedMap) LoadFactor() float64 { return m.t.LoadFactor() }

// Stats returns the map's operational counters.
func (m *ElidedMap) Stats() Stats { return m.t.Stats() }

// TxStats reports the transactional execution counters (commits, aborts by
// cause, fallback-lock acquisitions), the §2.3-style abort-rate evidence.
func (m *ElidedMap) TxStats() htm.Stats { return m.t.Region().Stats() }
