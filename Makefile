# Developer entry points. `make check` is the gate every change must
# pass; CI (.github/workflows/ci.yml) runs the same target.

GO ?= go

# staticcheck is pinned so a new upstream release cannot break CI
# mid-flight; bump deliberately.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: check build vet lint cuckoovet test race bench bench-smoke bench-txn bench-hotalloc bench-grow bench-replica fuzz chaos loadgen-smoke metrics-smoke

check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = the repo's own invariant checker (always; it builds offline from
# this module with no dependencies) + staticcheck when present (CI installs
# the pinned version; locally it is optional so the gate never requires
# network access).
lint: cuckoovet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# cuckoovet machine-checks the paper's concurrency invariants (§4.2 atomic
# discipline, §4.4 lock ordering, Eq. 1 snapshot/validate, §5 transaction
# purity, P1 cache-line padding) plus the interprocedural hot-path proofs
# (allocation freedom, no blocking in lock-free regions). See
# docs/ANALYSIS.md. -timing prints per-analyzer wall time to stderr so a
# slow analyzer is visible before it eats the CI budget (the CI job caps
# the whole static-analysis step at 5 minutes).
cuckoovet:
	$(GO) run ./cmd/cuckoovet -timing ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic chaos suite (docs/ROBUSTNESS.md): fault-injected workloads,
# fault-tolerant clients, drain/restore — always under -race and -count=1
# (no cache) with verbose fault accounting for reproduction. A dedicated CI
# job runs this so the tier-1 test job stays fast.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos|TestPoolBreaker|TestDrainSaves' \
	    ./server/ ./client/ ./internal/faultinject/

# The figure harness at CI scale, with a JSON trajectory artifact.
bench:
	$(GO) run ./cmd/cuckoobench -exp all -scale small -json BENCH_small.json

# Quick perf-trajectory point: the full figure set at small scale, written
# where the committed baseline lives (results/BENCH_core.json is the seed;
# CI uploads each run's file as an artifact for diffing).
bench-smoke:
	$(GO) run ./cmd/cuckoobench -exp all -scale small -out results/BENCH_ci.json

# The cuckootxn acceptance benchmark (docs/TRANSACTIONS.md): split-counter
# INCR vs naive locked INCR under zipf s=1.2 skew, median of 3 runs. The
# committed baseline lives at results/BENCH_txn.json; this regenerates it
# in place so a perf regression shows up as a diff.
bench-txn:
	$(GO) run ./cmd/cuckoobench -exp txnzipf -scale small -repeat 3 -out results/BENCH_txn.json

# The hot-path allocation benchmark (docs/ANALYSIS.md): allocs/op through
# the public Cache API for byte-key GET (must be 0, hit and miss) vs the
# legacy per-op string conversion (~1). The committed baseline lives at
# results/BENCH_hotalloc.json; this regenerates it in place so an
# allocation creeping onto the hot path shows up as a diff.
bench-hotalloc:
	$(GO) run ./cmd/cuckoobench -exp hotalloc -scale small -repeat 3 -out results/BENCH_hotalloc.json

# The cuckoorepl acceptance benchmark (docs/REPLICATION.md): hot-set read
# scale-out across both candidate nodes (peak-capacity factor must be
# >= 2x single-home) and the miss-lease herd collapse (1 backend fill vs
# one per client). The committed baseline lives at
# results/BENCH_replica.json; this regenerates it in place.
bench-replica:
	$(GO) run ./cmd/cuckoobench -exp replread -scale small -repeat 3 -out results/BENCH_replica.json

# The incremental-resize acceptance benchmark (docs/ROBUSTNESS.md): max
# single-op insert latency across six table doublings, stop-the-world
# rebuild vs incremental migration, median of 3 runs. The committed
# baseline lives at results/BENCH_grow.json; this regenerates it in place
# so a regression (e.g. a grow pause creeping back) shows up as a diff.
bench-grow:
	$(GO) run ./cmd/cuckoobench -exp growpause -scale small -repeat 3 -out results/BENCH_grow.json

# Native Go fuzzing of the server text-protocol codec. The corpus seeds
# live in the test; 30s is the CI budget — run longer locally with
# FUZZTIME=10m.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseCommand -fuzztime $(FUZZTIME) ./server/

# End-to-end smoke of the cache daemon: serve, load-generate, drain.
# The binary is run directly (not via `go run`, which does not forward a
# kill-sent SIGINT to its child, so the drain would never trigger).
loadgen-smoke:
	$(GO) build -o ./cuckood.smoke ./cmd/cuckood
	./cuckood.smoke -listen 127.0.0.1:11377 & \
	CUCKOOD_PID=$$!; \
	sleep 1; \
	./cuckood.smoke -loadgen -addr 127.0.0.1:11377 \
	    -conns 4 -ops 20000 -batch 16 -dist zipf; \
	STATUS=$$?; \
	kill -INT $$CUCKOOD_PID; wait $$CUCKOOD_PID || STATUS=$$?; \
	rm -f ./cuckood.smoke; \
	exit $$STATUS

# End-to-end smoke of the admin endpoint: serve with -admin, drive a tiny
# traced zipf load, then scrape /metrics and assert the key series —
# including the cuckootrace stage/hot-key ones — are present, and that
# /debug/flight dumps records. -slow-op is 1ms, not 1ns: slow ops are
# never sampled away, so a 1ns threshold would log all 5000 requests.
metrics-smoke:
	$(GO) build -o ./cuckood.smoke ./cmd/cuckood
	./cuckood.smoke -listen 127.0.0.1:11378 -admin 127.0.0.1:11379 -slow-op 1ms & \
	CUCKOOD_PID=$$!; \
	sleep 1; \
	./cuckood.smoke -loadgen -addr 127.0.0.1:11378 -conns 2 -ops 5000 -batch 16 -dist zipf -trace; \
	STATUS=$$?; \
	if [ $$STATUS -eq 0 ]; then \
		SCRAPE=$$(curl -fsS http://127.0.0.1:11379/metrics) || STATUS=$$?; \
		for series in cuckoo_table_path_length_bucket \
		              cuckoo_table_path_restarts_total \
		              cuckoo_lock_contended_total \
		              cuckoo_htm_aborts_total \
		              cuckood_hits_total \
		              cuckood_misses_total \
		              cuckood_evictions_total \
		              cuckood_slow_requests_total \
		              cuckood_request_duration_seconds_bucket \
		              cuckood_stage_seconds_bucket \
		              cuckood_hot_key_count; do \
			echo "$$SCRAPE" | grep -q "$$series" || { echo "MISSING $$series"; STATUS=1; }; \
		done; \
		curl -fsS http://127.0.0.1:11379/debug/vars >/dev/null || STATUS=1; \
		curl -fsS http://127.0.0.1:11379/debug/pprof/ >/dev/null || STATUS=1; \
		FLIGHT=$$(curl -fsS http://127.0.0.1:11379/debug/flight) || STATUS=$$?; \
		echo "$$FLIGHT" | grep -q "verb=" || { echo "EMPTY /debug/flight"; STATUS=1; }; \
		echo "$$FLIGHT" | grep -q "trace=" || { echo "NO trace= in /debug/flight"; STATUS=1; }; \
	fi; \
	kill -INT $$CUCKOOD_PID; wait $$CUCKOOD_PID || STATUS=$$?; \
	rm -f ./cuckood.smoke; \
	[ $$STATUS -eq 0 ] && echo "metrics-smoke OK"; \
	exit $$STATUS
