# Developer entry points. `make check` is the gate every change must
# pass; CI (.github/workflows/ci.yml) runs the same target.

GO ?= go

.PHONY: check build vet test race bench loadgen-smoke

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The figure harness at CI scale, with a JSON trajectory artifact.
bench:
	$(GO) run ./cmd/cuckoobench -exp all -scale small -json BENCH_small.json

# End-to-end smoke of the cache daemon: serve, load-generate, drain.
# The binary is run directly (not via `go run`, which does not forward a
# kill-sent SIGINT to its child, so the drain would never trigger).
loadgen-smoke:
	$(GO) build -o ./cuckood.smoke ./cmd/cuckood
	./cuckood.smoke -listen 127.0.0.1:11377 & \
	CUCKOOD_PID=$$!; \
	sleep 1; \
	./cuckood.smoke -loadgen -addr 127.0.0.1:11377 \
	    -conns 4 -ops 20000 -batch 16 -dist zipf; \
	STATUS=$$?; \
	kill -INT $$CUCKOOD_PID; wait $$CUCKOOD_PID || STATUS=$$?; \
	rm -f ./cuckood.smoke; \
	exit $$STATUS
