package core

import (
	"sync"

	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/htm"
)

// TxTable is cuckoo+ under coarse-grained locking with (emulated) hardware
// lock elision (§5): the table's state lives in an htm.Region arena, every
// operation's critical section runs as one transaction subscribed to the
// region's fallback lock, and the cuckoo-path search runs outside the
// transaction exactly as it runs outside the lock in Algorithm 2.
//
// Thanks to the algorithmic optimizations the transactional footprint of an
// insert is at most L_BFS displacement writes plus the candidate pair —
// about a dozen cache lines — so transactions rarely conflict and almost
// never overflow capacity; that is the entire point of §5.
//
// Arena layout: one bucket record per bucket, padded to a whole number of
// 64-byte lines so buckets never share a conflict-detection line:
//
//	word 0:                occupancy bitmap
//	words 1..assoc:        keys
//	words 1+assoc..:       values (assoc*valueWords words)
//	padding to line multiple
type TxTable struct {
	opts    Options
	policy  htm.Policy
	region  *htm.Region
	nb      uint64
	assoc   uint64
	vw      uint64
	seed    uint64
	stride  uint64 // words per bucket record
	scratch sync.Pool
	size    shardedCounter
	stats   tableStats
}

// NewTxTable creates a transactional cuckoo+ table with the given elision
// policy. Options.Locking and Options.Stripes are ignored: concurrency
// control is the region's single elided lock.
func NewTxTable(opts Options, policy htm.Policy, cfg htm.Config) (*TxTable, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	assoc := uint64(opts.Assoc)
	vw := uint64(opts.ValueWords)
	stride := (1 + assoc + assoc*vw + wordsPerLine - 1) / wordsPerLine * wordsPerLine
	words := opts.Buckets * stride
	if words > 1<<31 {
		return nil, errArenaTooLarge
	}
	t := &TxTable{
		opts:   opts,
		policy: policy,
		region: htm.NewRegion(int(words), cfg),
		nb:     opts.Buckets,
		assoc:  assoc,
		vw:     vw,
		seed:   opts.Seed,
		stride: stride,
	}
	t.scratch.New = func() any { return newSearchScratch(opts.MaxSearchSlots, opts.Assoc) }
	return t, nil
}

const wordsPerLine = 8

var errArenaTooLarge = errorString("cuckoo: transactional arena exceeds 2^31 words")

type errorString string

func (e errorString) Error() string { return string(e) }

// MustNewTxTable panics on configuration errors.
func MustNewTxTable(opts Options, policy htm.Policy, cfg htm.Config) *TxTable {
	t, err := NewTxTable(opts, policy, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Region exposes the table's transactional region (for abort-rate
// statistics, §2.3's Intel-PCM-style reporting).
func (t *TxTable) Region() *htm.Region { return t.region }

// Len returns the number of stored keys.
func (t *TxTable) Len() uint64 { return uint64(t.size.total()) }

// Cap returns the number of slots.
func (t *TxTable) Cap() uint64 { return t.nb * t.assoc }

// LoadFactor returns Len/Cap.
func (t *TxTable) LoadFactor() float64 { return float64(t.Len()) / float64(t.Cap()) }

// Stats returns the table's operational counters.
func (t *TxTable) Stats() Stats {
	return Stats{
		Searches:      uint64(t.stats.searches.total()),
		Displacements: uint64(t.stats.displacements.total()),
		PathRestarts:  uint64(t.stats.restarts.total()),
		MaxPathLen:    t.stats.maxPathLen.v.Load(),
		PathLenHist:   t.stats.pathLen.snapshot(),
	}
}

func (t *TxTable) hash(key uint64) uint64 { return hashfn.Uint64(key, t.seed) }

// Arena addressing.

func (t *TxTable) occAddr(b uint64) uint32 { return uint32(b * t.stride) }

func (t *TxTable) keyAddr(b uint64, s int) uint32 {
	return uint32(b*t.stride + 1 + uint64(s))
}

func (t *TxTable) valAddr(b uint64, s int, w uint64) uint32 {
	return uint32(b*t.stride + 1 + t.assoc + uint64(s)*t.vw + w)
}

// Lookup returns the first value word for key.
func (t *TxTable) Lookup(key uint64) (uint64, bool) {
	var v [1]uint64
	if t.LookupValue(key, v[:]) {
		return v[0], true
	}
	return 0, false
}

// LookupValue reads key's value inside one (read-only) elided transaction.
func (t *TxTable) LookupValue(key uint64, dst []uint64) bool {
	b1, b2 := hashfn.TwoBuckets(t.hash(key), t.nb)
	found := false
	_ = t.region.RunElided(t.policy, func(tx *htm.Txn) error {
		found = t.txFind(tx, b1, key, dst) || t.txFind(tx, b2, key, dst)
		return nil
	})
	return found
}

// txFind scans bucket b for key within tx, copying the value to dst on hit.
func (t *TxTable) txFind(tx *htm.Txn, b uint64, key uint64, dst []uint64) bool {
	occ := tx.Load(t.occAddr(b))
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 == 0 {
			continue
		}
		if tx.Load(t.keyAddr(b, s)) == key {
			n := t.vw
			if uint64(len(dst)) < n {
				n = uint64(len(dst))
			}
			for w := uint64(0); w < n; w++ {
				dst[w] = tx.Load(t.valAddr(b, s, w))
			}
			return true
		}
	}
	return false
}

// Insert adds key with a single-word value; ErrExists if present, ErrFull
// if no path to an empty slot exists.
func (t *TxTable) Insert(key, val uint64) error {
	return t.write(key, []uint64{val}, modeInsert)
}

// InsertValue is Insert for multi-word values.
func (t *TxTable) InsertValue(key uint64, val []uint64) error {
	return t.write(key, val, modeInsert)
}

// Upsert inserts or overwrites.
func (t *TxTable) Upsert(key, val uint64) error {
	return t.write(key, []uint64{val}, modeUpsert)
}

// Delete removes key, reporting whether it was present.
func (t *TxTable) Delete(key uint64) bool {
	b1, b2 := hashfn.TwoBuckets(t.hash(key), t.nb)
	deleted := false
	_ = t.region.RunElided(t.policy, func(tx *htm.Txn) error {
		deleted = false // reset: the closure may re-run after an abort
		for _, b := range [2]uint64{b1, b2} {
			occ := tx.Load(t.occAddr(b))
			for s := 0; s < int(t.assoc); s++ {
				if occ&(1<<uint(s)) != 0 && tx.Load(t.keyAddr(b, s)) == key {
					tx.Store(t.occAddr(b), occ&^(1<<uint(s)))
					deleted = true
					return nil
				}
			}
		}
		return nil
	})
	if deleted {
		t.size.add(b1, -1)
	}
	return deleted
}

var errPathInvalid = errorString("cuckoo: path invalidated")

func (t *TxTable) write(key uint64, val []uint64, mode writeMode) error {
	if uint64(len(val)) > t.vw {
		panic("cuckoo: value longer than ValueWords")
	}
	h := t.hash(key)
	b1, b2 := hashfn.TwoBuckets(h, t.nb)
	sc := t.scratch.Get().(*searchScratch)
	defer t.scratch.Put(sc)
	for {
		// Phase 1 (outside the transaction, §4.3.1): find a cuckoo path if
		// the candidate buckets look full.
		var path []pathEntry
		occ1 := t.region.LoadDirect(t.occAddr(b1))
		occ2 := t.region.LoadDirect(t.occAddr(b2))
		full := uint64(1)<<t.assoc - 1
		if occ1&full == full && occ2&full == full {
			var st searchStatus
			path, st = t.searchTx(sc, b1, b2)
			if st == searchStale {
				t.stats.restarts.add(b1, 1)
				continue
			}
			if st == searchFull {
				// Confirm fullness transactionally before reporting: the
				// key may already exist, or a slot may have been freed.
				err := t.region.RunElided(t.policy, func(tx *htm.Txn) error {
					return t.txAttempt(tx, b1, b2, key, val, mode, nil)
				})
				switch err {
				case nil:
					t.size.add(b1, 1)
					return nil
				case errUpdated:
					return nil
				case errNoSpace:
					return ErrFull
				default:
					return err
				}
			}
		}

		if len(path) > 0 {
			t.stats.maxPathLen.observe(uint64(len(path) - 1))
			t.stats.pathLen.observe(b1, uint64(len(path)-1))
		}

		// Phase 2: one transaction validates the path, performs the
		// displacements, re-checks for duplicates and inserts.
		err := t.region.RunElided(t.policy, func(tx *htm.Txn) error {
			return t.txAttempt(tx, b1, b2, key, val, mode, path)
		})
		switch err {
		case nil:
			if mode != modeUpdate {
				t.size.add(b1, 1)
			}
			return nil
		case errUpdated:
			return nil
		case errPathInvalid, errNoSpace:
			// Stale path or the free slot vanished: restart (Eq. 1).
			t.stats.restarts.add(b1, 1)
			continue
		default:
			return err
		}
	}
}

var (
	errNoSpace = errorString("cuckoo: no space in pair")
	errUpdated = errorString("cuckoo: updated in place")
)

// txAttempt is the transactional critical section of an insert: duplicate
// check, path validation + execution, slot claim.
func (t *TxTable) txAttempt(tx *htm.Txn, b1, b2 uint64, key uint64, val []uint64, mode writeMode, path []pathEntry) error {
	// Duplicate check in both candidate buckets.
	for _, b := range [2]uint64{b1, b2} {
		occ := tx.Load(t.occAddr(b))
		for s := 0; s < int(t.assoc); s++ {
			if occ&(1<<uint(s)) != 0 && tx.Load(t.keyAddr(b, s)) == key {
				switch mode {
				case modeInsert:
					return ErrExists
				default:
					for w := uint64(0); w < t.vw; w++ {
						tx.Store(t.valAddr(b, s, w), valWord(val, w))
					}
					return errUpdated
				}
			}
		}
	}
	if mode == modeUpdate {
		return errAbsent
	}

	if len(path) == 0 {
		// Direct insert into either candidate bucket.
		for _, b := range [2]uint64{b1, b2} {
			occ := tx.Load(t.occAddr(b))
			if s, ok := freeSlot(uint32(occ), int(t.assoc)); ok {
				t.txPlace(tx, b, s, key, val, occ)
				return nil
			}
		}
		return errNoSpace
	}

	// Validate and execute the displacements hole-backward.
	for i := len(path) - 2; i >= 0; i-- {
		src, dst := path[i], path[i+1]
		srcOcc := tx.Load(t.occAddr(src.bucket))
		dstOcc := tx.Load(t.occAddr(dst.bucket))
		if srcOcc&(1<<uint(src.slot)) == 0 ||
			tx.Load(t.keyAddr(src.bucket, src.slot)) != src.key ||
			dstOcc&(1<<uint(dst.slot)) != 0 {
			return errPathInvalid
		}
		tx.Store(t.keyAddr(dst.bucket, dst.slot), src.key)
		for w := uint64(0); w < t.vw; w++ {
			tx.Store(t.valAddr(dst.bucket, dst.slot, w), tx.Load(t.valAddr(src.bucket, src.slot, w)))
		}
		tx.Store(t.occAddr(dst.bucket), dstOcc|1<<uint(dst.slot))
		tx.Store(t.occAddr(src.bucket), tx.Load(t.occAddr(src.bucket))&^(1<<uint(src.slot)))
		t.stats.displacements.add(src.bucket, 1)
	}
	head := path[0]
	occ := tx.Load(t.occAddr(head.bucket))
	if occ&(1<<uint(head.slot)) != 0 {
		return errPathInvalid
	}
	t.txPlace(tx, head.bucket, head.slot, key, val, occ)
	return nil
}

func (t *TxTable) txPlace(tx *htm.Txn, b uint64, s int, key uint64, val []uint64, occ uint64) {
	tx.Store(t.keyAddr(b, s), key)
	for w := uint64(0); w < t.vw; w++ {
		tx.Store(t.valAddr(b, s, w), valWord(val, w))
	}
	tx.Store(t.occAddr(b), occ|1<<uint(s))
}

// valWord returns src[w], or 0 beyond the supplied payload (short payloads
// are zero-extended to the table's value width).
func valWord(src []uint64, w uint64) uint64 {
	if w < uint64(len(src)) {
		return src[w]
	}
	return 0
}

// searchTx is the unlocked BFS/DFS over the arena (direct, untracked
// loads). A stale observation yields a path that fails transactional
// validation, aborting nothing but this insert's attempt.
func (t *TxTable) searchTx(sc *searchScratch, b1, b2 uint64) ([]pathEntry, searchStatus) {
	t.stats.searches.add(b1, 1)
	if t.opts.Search == SearchDFS {
		return t.searchTxDFS(sc, b1, b2)
	}
	return t.searchTxBFS(sc, b1, b2)
}

func (t *TxTable) searchTxBFS(sc *searchScratch, b1, b2 uint64) ([]pathEntry, searchStatus) {
	nodes := sc.nodes[:0]
	nodes = append(nodes,
		bfsNode{bucket: b1, pathcode: 0},
		bfsNode{bucket: b2, pathcode: 1},
	)
	assoc := int(t.assoc)
	budget := t.opts.MaxSearchSlots
	slotsExamined := 0
	for qi := 0; qi < len(nodes) && slotsExamined < budget; qi++ {
		if t.opts.Prefetch && qi+1 < len(nodes) {
			_ = t.region.LoadDirect(t.occAddr(nodes[qi+1].bucket))
		}
		n := nodes[qi]
		occ := uint32(t.region.LoadDirect(t.occAddr(n.bucket)))
		slotsExamined += assoc
		if s, ok := freeSlot(occ, assoc); ok {
			sc.nodes = nodes
			if path, ok := t.buildTxPath(sc, n, b1, b2, s); ok {
				return path, searchFound
			}
			return nil, searchStale
		}
		if len(nodes)+assoc > cap(nodes) {
			continue
		}
		bucket := n.bucket
		childCode := n.pathcode * uint32(assoc)
		childDepth := n.depth + 1
		for s := 0; s < assoc; s++ {
			k := t.region.LoadDirect(t.keyAddr(bucket, s))
			alt := hashfn.AltBucket(t.hash(k), t.nb, bucket)
			nodes = append(nodes, bfsNode{
				bucket:   alt,
				pathcode: childCode + uint32(s),
				depth:    childDepth,
			})
		}
	}
	sc.nodes = nodes
	return nil, searchFull
}

// buildTxPath mirrors Table.buildPath: decode the pathcode and re-walk the
// chain with direct arena reads.
func (t *TxTable) buildTxPath(sc *searchScratch, n bfsNode, b1, b2 uint64, s int) ([]pathEntry, bool) {
	root := n.decodePath(t.assoc, sc.slots)
	bucket := b1
	if root == 1 {
		bucket = b2
	}
	path := sc.path[:0]
	for i := 0; i < int(n.depth); i++ {
		slot := sc.slots[i]
		k := t.region.LoadDirect(t.keyAddr(bucket, slot))
		path = append(path, pathEntry{bucket: bucket, slot: slot, key: k})
		bucket = hashfn.AltBucket(t.hash(k), t.nb, bucket)
	}
	if bucket != n.bucket {
		sc.path = path
		return nil, false
	}
	path = append(path, pathEntry{bucket: bucket, slot: s})
	sc.path = path
	return path, true
}

func (t *TxTable) searchTxDFS(sc *searchScratch, b1, b2 uint64) ([]pathEntry, searchStatus) {
	assoc := int(t.assoc)
	budget := t.opts.MaxSearchSlots
	maxLen := budget / (2 * assoc)
	if maxLen < 1 {
		maxLen = 1
	}
	buf := sc.path[:0]
	if cap(buf) < 2*maxLen+2 {
		buf = make([]pathEntry, 0, 2*maxLen+2)
	}
	pathA := buf[0 : 0 : maxLen+1]
	pathB := buf[maxLen+1 : maxLen+1 : 2*maxLen+2][:0]
	curA, curB := b1, b2
	slotsExamined := 0
	for slotsExamined < budget {
		if len(pathA) > maxLen && len(pathB) > maxLen {
			return nil, searchFull
		}
		for w := 0; w < 2; w++ {
			cur := curA
			path := &pathA
			if w == 1 {
				cur = curB
				path = &pathB
			}
			if len(*path) > maxLen {
				continue
			}
			occ := uint32(t.region.LoadDirect(t.occAddr(cur)))
			slotsExamined += assoc
			if s, ok := freeSlot(occ, assoc); ok {
				*path = append(*path, pathEntry{bucket: cur, slot: s})
				return *path, searchFound
			}
			s := int(sc.nextRand() % uint64(assoc))
			k := t.region.LoadDirect(t.keyAddr(cur, s))
			*path = append(*path, pathEntry{bucket: cur, slot: s, key: k})
			next := hashfn.AltBucket(t.hash(k), t.nb, cur)
			if w == 0 {
				curA = next
			} else {
				curB = next
			}
		}
	}
	return nil, searchFull
}
