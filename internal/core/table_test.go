package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cuckoohash/internal/workload"
)

func testOptions(slots uint64) Options {
	o := Defaults(slots)
	o.Seed = 42
	return o
}

func TestInsertLookupBasic(t *testing.T) {
	tab := MustNewTable(testOptions(1 << 10))
	for k := uint64(1); k <= 500; k++ {
		if err := tab.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if got := tab.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	for k := uint64(1); k <= 500; k++ {
		v, ok := tab.Lookup(k)
		if !ok || v != k*10 {
			t.Fatalf("Lookup(%d) = %d,%v; want %d,true", k, v, ok, k*10)
		}
	}
	if _, ok := tab.Lookup(9999); ok {
		t.Fatal("Lookup(absent) reported found")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tab := MustNewTable(testOptions(1 << 8))
	if err := tab.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(7, 2); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Insert err = %v, want ErrExists", err)
	}
	if v, _ := tab.Lookup(7); v != 1 {
		t.Fatalf("value clobbered by failed duplicate insert: %d", v)
	}
	if err := tab.Upsert(7, 3); err != nil {
		t.Fatal(err)
	}
	if v, _ := tab.Lookup(7); v != 3 {
		t.Fatalf("Upsert did not overwrite: %d", v)
	}
}

func TestUpdateDelete(t *testing.T) {
	tab := MustNewTable(testOptions(1 << 8))
	if tab.Update(5, 1) {
		t.Fatal("Update of absent key succeeded")
	}
	if err := tab.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if !tab.Update(5, 2) {
		t.Fatal("Update of present key failed")
	}
	if v, _ := tab.Lookup(5); v != 2 {
		t.Fatalf("Update value = %d, want 2", v)
	}
	if !tab.Delete(5) {
		t.Fatal("Delete of present key failed")
	}
	if tab.Delete(5) {
		t.Fatal("Delete of absent key succeeded")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len after delete = %d", tab.Len())
	}
}

// TestFillTo95 verifies the paper's occupancy claim: with 8-way buckets the
// table fills past 95% before returning ErrFull.
func TestFillTo95(t *testing.T) {
	for _, search := range []SearchMode{SearchBFS, SearchDFS} {
		o := testOptions(1 << 14)
		o.Search = search
		tab := MustNewTable(o)
		gen := workload.NewSequentialKeys(1)
		var inserted uint64
		for {
			if err := tab.Insert(gen.NextKey(), 1); err != nil {
				break
			}
			inserted++
		}
		lf := float64(inserted) / float64(tab.Cap())
		if lf < 0.95 {
			t.Fatalf("search=%v: table full at load factor %.3f, want >= 0.95", search, lf)
		}
	}
}

// TestConcurrentMixedOracle drives concurrent writers on disjoint keyspaces
// plus concurrent readers, then verifies contents against a per-thread
// oracle.
func TestConcurrentMixedOracle(t *testing.T) {
	const threads = 8
	const opsPerThread = 20000
	for _, locking := range []LockMode{LockStriped, LockGlobal} {
		o := testOptions(1 << 16)
		o.Locking = locking
		tab := MustNewTable(o)

		oracles := make([]map[uint64]uint64, threads)
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				oracle := make(map[uint64]uint64)
				oracles[th] = oracle
				rnd := workload.NewRand(uint64(th) + 1)
				base := uint64(th) << 32
				for i := 0; i < opsPerThread; i++ {
					k := base | rnd.Intn(4096)
					switch rnd.Intn(10) {
					case 0, 1, 2, 3, 4: // upsert
						v := rnd.Next()
						if err := tab.Upsert(k, v); err != nil {
							t.Errorf("Upsert: %v", err)
							return
						}
						oracle[k] = v
					case 5: // delete
						got := tab.Delete(k)
						_, want := oracle[k]
						if got != want {
							t.Errorf("Delete(%d) = %v, oracle %v", k, got, want)
							return
						}
						delete(oracle, k)
					default: // lookup own keys
						v, ok := tab.Lookup(k)
						wv, wok := oracle[k]
						if ok != wok || (ok && v != wv) {
							t.Errorf("Lookup(%d) = %d,%v, oracle %d,%v", k, v, ok, wv, wok)
							return
						}
					}
				}
			}(th)
		}
		// Cross-thread readers exercising the optimistic path under churn.
		stop := make(chan struct{})
		var rwg sync.WaitGroup
		for r := 0; r < 2; r++ {
			rwg.Add(1)
			go func(r int) {
				defer rwg.Done()
				rnd := workload.NewRand(uint64(r) + 100)
				for {
					select {
					case <-stop:
						return
					default:
					}
					th := rnd.Intn(threads)
					k := th<<32 | rnd.Intn(4096)
					tab.Lookup(k) // result unverifiable; must not hang or panic
				}
			}(r)
		}
		wg.Wait()
		close(stop)
		rwg.Wait()
		if t.Failed() {
			t.Fatalf("locking=%v failed", locking)
		}

		var want uint64
		for th := 0; th < threads; th++ {
			want += uint64(len(oracles[th]))
			for k, v := range oracles[th] {
				got, ok := tab.Lookup(k)
				if !ok || got != v {
					t.Fatalf("locking=%v: final Lookup(%d) = %d,%v, want %d,true", locking, k, got, ok, v)
				}
			}
		}
		if got := tab.Len(); got != want {
			t.Fatalf("locking=%v: Len = %d, want %d", locking, got, want)
		}
	}
}

func TestGrow(t *testing.T) {
	o := testOptions(1 << 8)
	tab := MustNewTable(o)
	for k := uint64(0); k < 200; k++ {
		if err := tab.Insert(k+1, k); err != nil {
			t.Fatalf("Insert(%d): %v", k+1, err)
		}
	}
	capBefore := tab.Cap()
	if err := tab.Grow(); err != nil {
		t.Fatal(err)
	}
	if tab.Cap() != 2*capBefore {
		t.Fatalf("Cap after grow = %d, want %d", tab.Cap(), 2*capBefore)
	}
	if tab.Len() != 200 {
		t.Fatalf("Len after grow = %d, want 200", tab.Len())
	}
	for k := uint64(0); k < 200; k++ {
		if v, ok := tab.Lookup(k + 1); !ok || v != k {
			t.Fatalf("after grow Lookup(%d) = %d,%v", k+1, v, ok)
		}
	}
}

func TestGrowUnderConcurrency(t *testing.T) {
	o := testOptions(1 << 10)
	tab := MustNewTable(o)
	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) << 32
			for i := uint64(0); i < 2000; i++ {
				for {
					err := tab.Upsert(base|i, i)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrFull) {
						t.Errorf("Upsert: %v", err)
						return
					}
					// React to a full table the way a client would.
					if err := tab.Grow(); err != nil {
						t.Errorf("Grow: %v", err)
						return
					}
				}
				if v, ok := tab.Lookup(base | i); !ok || v != i {
					t.Errorf("Lookup(just inserted %d) = %d,%v", base|i, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := tab.Grow(); err != nil {
				t.Errorf("Grow: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := tab.Len(); got != writers*2000 {
		t.Fatalf("Len = %d, want %d", got, writers*2000)
	}
}

func TestRange(t *testing.T) {
	tab := MustNewTable(testOptions(1 << 8))
	want := map[uint64]uint64{}
	for k := uint64(1); k <= 100; k++ {
		want[k] = k * 3
		if err := tab.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	got := map[uint64]uint64{}
	tab.Range(func(k uint64, v []uint64) bool {
		got[k] = v[0]
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestMultiWordValues(t *testing.T) {
	o := testOptions(1 << 8)
	o.ValueWords = 4
	tab := MustNewTable(o)
	val := []uint64{1, 2, 3, 4}
	if err := tab.InsertValue(99, val); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	if !tab.LookupValue(99, dst) {
		t.Fatal("LookupValue missed")
	}
	for i := range val {
		if dst[i] != val[i] {
			t.Fatalf("value word %d = %d, want %d", i, dst[i], val[i])
		}
	}
}

func TestErrFull(t *testing.T) {
	o := testOptions(64)
	tab := MustNewTable(o)
	var err error
	for k := uint64(1); ; k++ {
		if err = tab.Insert(k, k); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	// A duplicate insert into a full table must say ErrExists, not ErrFull.
	if err := tab.Insert(1, 9); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate into full table: %v, want ErrExists", err)
	}
	// Upsert of an existing key must still succeed on a full table.
	if err := tab.Upsert(1, 9); err != nil {
		t.Fatalf("Upsert into full table: %v", err)
	}
	if v, _ := tab.Lookup(1); v != 9 {
		t.Fatalf("Upsert value = %d", v)
	}
}

func TestAssociativityVariants(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, 8, 16, 32} {
		t.Run(fmt.Sprintf("assoc=%d", assoc), func(t *testing.T) {
			o := testOptions(1 << 10)
			o.Assoc = assoc
			o.Buckets = (1 << 10) / uint64(assoc)
			tab := MustNewTable(o)
			n := tab.Cap() / 2
			for k := uint64(1); k <= n; k++ {
				if err := tab.Insert(k, k); err != nil {
					t.Fatalf("Insert(%d) at assoc %d: %v", k, assoc, err)
				}
			}
			for k := uint64(1); k <= n; k++ {
				if v, ok := tab.Lookup(k); !ok || v != k {
					t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
				}
			}
		})
	}
}
