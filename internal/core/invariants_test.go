package core

import (
	"math/bits"
	"testing"
	"testing/quick"

	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/workload"
)

// checkInvariants validates the table's structural invariants with no
// concurrent activity:
//  1. every occupied slot holds a key hashing to that bucket (b1 or b2),
//  2. no key appears twice,
//  3. Len equals the occupancy-bit population count.
func checkInvariants(t *testing.T, tab *Table) {
	t.Helper()
	arr := tab.arr.Load()
	seen := make(map[uint64]uint64)
	var occupied uint64
	for b := uint64(0); b < arr.buckets; b++ {
		occ := arr.loadOcc(b)
		occupied += uint64(bits.OnesCount32(occ))
		for s := 0; occ != 0; s, occ = s+1, occ>>1 {
			if occ&1 == 0 {
				continue
			}
			k := arr.loadKey(arr.slotIdx(b, s, tab.assoc))
			b1, b2 := hashfn.TwoBuckets(tab.hash(k), arr.buckets)
			if b != b1 && b != b2 {
				t.Fatalf("key %#x stored in bucket %d, candidates are %d/%d", k, b, b1, b2)
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %#x stored twice: buckets %d and %d", k, prev, b)
			}
			seen[k] = b
		}
	}
	if got := tab.Len(); got != occupied {
		t.Fatalf("Len = %d but %d slots occupied", got, occupied)
	}
}

func TestInvariantsAfterFill(t *testing.T) {
	for _, search := range []SearchMode{SearchBFS, SearchDFS} {
		o := testOptions(1 << 12)
		o.Search = search
		tab := MustNewTable(o)
		gen := workload.NewSequentialKeys(1)
		for {
			if err := tab.Insert(gen.NextKey(), 1); err != nil {
				break
			}
		}
		checkInvariants(t, tab)
	}
}

func TestInvariantsQuickRandomOps(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
	}
	check := func(ops []op) bool {
		o := testOptions(512)
		tab := MustNewTable(o)
		for _, x := range ops {
			k := uint64(x.Key)%700 + 1 // keyspace larger than table: forces ErrFull paths
			switch x.Kind % 4 {
			case 0, 1:
				_ = tab.Upsert(k, k)
			case 2:
				tab.Delete(k)
			case 3:
				_ = tab.Insert(k, k)
			}
		}
		// Structural invariants must hold regardless of the op sequence.
		arr := tab.arr.Load()
		var occupied uint64
		for b := uint64(0); b < arr.buckets; b++ {
			occ := arr.loadOcc(b)
			occupied += uint64(bits.OnesCount32(occ))
			for s := 0; occ != 0; s, occ = s+1, occ>>1 {
				if occ&1 == 0 {
					continue
				}
				k := arr.loadKey(arr.slotIdx(b, s, tab.assoc))
				b1, b2 := hashfn.TwoBuckets(tab.hash(k), arr.buckets)
				if b != b1 && b != b2 {
					return false
				}
			}
		}
		return tab.Len() == occupied
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBFSPathBound verifies the Eq. 2 bound holds for every search the
// table ever performs across associativities (property over fills).
func TestBFSPathBound(t *testing.T) {
	for _, assoc := range []int{2, 4, 8, 16} {
		o := testOptions(1 << 12)
		o.Assoc = assoc
		buckets := uint64(2)
		for buckets*uint64(assoc) < 1<<12 {
			buckets <<= 1
		}
		o.Buckets = buckets
		tab := MustNewTable(o)
		gen := workload.NewSequentialKeys(1)
		for {
			if err := tab.Insert(gen.NextKey(), 1); err != nil {
				break
			}
		}
		bound := uint64(MaxBFSPathLen(assoc, o.MaxSearchSlots))
		if got := tab.Stats().MaxPathLen; got > bound {
			t.Fatalf("assoc %d: max path %d exceeds Eq.2 bound %d", assoc, got, bound)
		}
	}
}

// --- failure injection: path invalidation ---

// TestDisplaceValidation injects the three staleness conditions §4.3.1's
// validated execution must catch: source key moved, source key deleted,
// destination slot stolen.
func TestDisplaceValidation(t *testing.T) {
	o := testOptions(1 << 10)
	tab := MustNewTable(o)
	arr := tab.arr.Load()

	// Manufacture a key in bucket b with a free alternate bucket.
	key := uint64(12345)
	b1, b2 := hashfn.TwoBuckets(tab.hash(key), arr.buckets)
	if err := tab.Insert(key, 1); err != nil {
		t.Fatal(err)
	}
	// Locate the slot it landed in.
	var srcB uint64
	var srcS int
	if i, ok := tab.findLocked(arr, b1, key); ok {
		srcB, srcS = b1, int(i-b1*tab.assoc)
	} else if i, ok := tab.findLocked(arr, b2, key); ok {
		srcB, srcS = b2, int(i-b2*tab.assoc)
	} else {
		t.Fatal("inserted key not found")
	}
	dstB := hashfn.AltBucket(tab.hash(key), arr.buckets, srcB)

	// Happy path: displacement succeeds.
	if !tab.displace(arr, pathEntry{bucket: srcB, slot: srcS, key: key}, pathEntry{bucket: dstB, slot: 0}) {
		t.Fatal("valid displacement rejected")
	}
	// Now the recorded source is stale (the key moved): must be rejected.
	if tab.displace(arr, pathEntry{bucket: srcB, slot: srcS, key: key}, pathEntry{bucket: dstB, slot: 1}) {
		t.Fatal("stale source accepted")
	}
	// Occupied destination must be rejected (key now lives at dstB slot 0).
	if !tab.Delete(key) {
		t.Fatal("delete failed")
	}
	if err := tab.Insert(key, 1); err != nil {
		t.Fatal(err)
	}
	// Find it again and aim its displacement at an occupied slot.
	var nb uint64
	var ns int
	if i, ok := tab.findLocked(arr, b1, key); ok {
		nb, ns = b1, int(i-b1*tab.assoc)
	} else if i, ok := tab.findLocked(arr, b2, key); ok {
		nb, ns = b2, int(i-b2*tab.assoc)
	} else {
		t.Fatal("key not found after reinsert")
	}
	blocker := uint64(999)
	alt := hashfn.AltBucket(tab.hash(key), arr.buckets, nb)
	tab.insertAtForTest(arr, alt, 0, blocker)
	if tab.displace(arr, pathEntry{bucket: nb, slot: ns, key: key}, pathEntry{bucket: alt, slot: 0}) {
		t.Fatal("displacement into occupied slot accepted")
	}
}

// insertAtForTest force-places a key (test helper bypassing hashing).
func (t *Table) insertAtForTest(arr *arrays, b uint64, s int, key uint64) {
	l1, l2 := t.lockPair(b, b)
	defer t.unlockPair(l1, l2)
	if arr.loadOcc(b)&(1<<uint(s)) != 0 {
		return
	}
	t.insertAt(arr, b, s, key, []uint64{0})
}

// TestExecutePathRestart verifies that an invalidated path surfaces as
// attemptRetry and that write() then restarts and succeeds.
func TestExecutePathRestart(t *testing.T) {
	o := testOptions(1 << 10)
	tab := MustNewTable(o)
	arr := tab.arr.Load()
	// A fabricated path whose expected key is wrong must return retry.
	fake := []pathEntry{
		{bucket: 0, slot: 0, key: 0xDEAD}, // nothing there
		{bucket: 1, slot: 0},
	}
	if res := tab.executePath(arr, fake, 0, 1, 42, []uint64{0}, modeInsert); res != attemptRetry {
		t.Fatalf("executePath on fake path = %v, want attemptRetry", res)
	}
	// The public path still works afterwards.
	if err := tab.Insert(42, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Lookup(42); !ok || v != 1 {
		t.Fatal("table corrupted by rejected path")
	}
	checkInvariants(t, tab)
}

// TestStatsCounters verifies the operational counters move as specified.
func TestStatsCounters(t *testing.T) {
	o := testOptions(256)
	tab := MustNewTable(o)
	gen := workload.NewSequentialKeys(1)
	for {
		if err := tab.Insert(gen.NextKey(), 1); err != nil {
			break
		}
	}
	st := tab.Stats()
	if st.Searches == 0 || st.Displacements == 0 {
		t.Fatalf("expected nonzero search/displacement counters after a full fill: %+v", st)
	}
	if st.MaxPathLen == 0 {
		t.Fatalf("MaxPathLen not recorded: %+v", st)
	}
	tab.ResetStats()
	if s := tab.Stats(); s != (Stats{}) {
		t.Fatalf("ResetStats left %+v", s)
	}
}
