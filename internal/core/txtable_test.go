package core

import (
	"errors"
	"sync"
	"testing"

	"cuckoohash/internal/htm"
	"cuckoohash/internal/workload"
)

func newTxTest(slots uint64, policy htm.Policy) *TxTable {
	o := testOptions(slots)
	return MustNewTxTable(o, policy, htm.DefaultConfig())
}

func TestTxInsertLookupBasic(t *testing.T) {
	for _, p := range []htm.Policy{htm.PolicyNone, htm.PolicyGlibc, htm.PolicyTuned} {
		t.Run(p.String(), func(t *testing.T) {
			tab := newTxTest(1<<10, p)
			for k := uint64(1); k <= 400; k++ {
				if err := tab.Insert(k, k*2); err != nil {
					t.Fatalf("Insert(%d): %v", k, err)
				}
			}
			if tab.Len() != 400 {
				t.Fatalf("Len = %d", tab.Len())
			}
			for k := uint64(1); k <= 400; k++ {
				if v, ok := tab.Lookup(k); !ok || v != k*2 {
					t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
				}
			}
			if _, ok := tab.Lookup(12345); ok {
				t.Fatal("found absent key")
			}
			if err := tab.Insert(1, 0); !errors.Is(err, ErrExists) {
				t.Fatalf("duplicate insert: %v", err)
			}
			if !tab.Delete(1) || tab.Delete(1) {
				t.Fatal("delete semantics wrong")
			}
			if tab.Len() != 399 {
				t.Fatalf("Len after delete = %d", tab.Len())
			}
		})
	}
}

func TestTxFillTo95(t *testing.T) {
	tab := newTxTest(1<<13, htm.PolicyTuned)
	gen := workload.NewSequentialKeys(1)
	var inserted uint64
	for {
		if err := tab.Insert(gen.NextKey(), 1); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
	}
	if lf := float64(inserted) / float64(tab.Cap()); lf < 0.95 {
		t.Fatalf("full at load factor %.3f, want >= 0.95", lf)
	}
}

func TestTxConcurrentOracle(t *testing.T) {
	for _, p := range []htm.Policy{htm.PolicyGlibc, htm.PolicyTuned} {
		t.Run(p.String(), func(t *testing.T) {
			tab := newTxTest(1<<15, p)
			const threads = 8
			const ops = 8000
			oracles := make([]map[uint64]uint64, threads)
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					oracle := make(map[uint64]uint64)
					oracles[th] = oracle
					rnd := workload.NewRand(uint64(th) + 7)
					base := uint64(th) << 32
					for i := 0; i < ops; i++ {
						k := base | rnd.Intn(2048)
						switch rnd.Intn(10) {
						case 0, 1, 2, 3, 4:
							v := rnd.Next()
							if err := tab.Upsert(k, v); err != nil {
								t.Errorf("Upsert: %v", err)
								return
							}
							oracle[k] = v
						case 5:
							got := tab.Delete(k)
							if _, want := oracle[k]; got != want {
								t.Errorf("Delete(%d) = %v", k, got)
								return
							}
							delete(oracle, k)
						default:
							v, ok := tab.Lookup(k)
							wv, wok := oracle[k]
							if ok != wok || (ok && v != wv) {
								t.Errorf("Lookup(%d) = %d,%v want %d,%v", k, v, ok, wv, wok)
								return
							}
						}
					}
				}(th)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			var want uint64
			for th := 0; th < threads; th++ {
				want += uint64(len(oracles[th]))
				for k, v := range oracles[th] {
					if got, ok := tab.Lookup(k); !ok || got != v {
						t.Fatalf("final Lookup(%d) = %d,%v want %d,true", k, got, ok, v)
					}
				}
			}
			if got := tab.Len(); got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
			s := tab.Region().Stats()
			if s.Commits == 0 {
				t.Fatal("no transactions committed")
			}
			t.Logf("region stats: %+v abort-rate=%.3f", s, s.AbortRate())
		})
	}
}

// TestTxShortTransactions verifies §5's central claim in emulation: with the
// algorithmic optimizations, insert transactions at high occupancy stay far
// below the capacity limit and the abort rate stays low under 8 writers.
func TestTxShortTransactionsLowAborts(t *testing.T) {
	tab := newTxTest(1<<15, htm.PolicyTuned)
	// Fill to 85% concurrently.
	const threads = 8
	target := uint64(float64(tab.Cap()) * 0.85 / threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			gen := workload.NewUniformKeys(99, th)
			for i := uint64(0); i < target; i++ {
				if err := tab.Insert(gen.NextKey(), i); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	s := tab.Region().Stats()
	if s.CapacityAborts > s.Commits/100 {
		t.Fatalf("capacity aborts %d vs commits %d: transactions not short", s.CapacityAborts, s.Commits)
	}
	if rate := s.AbortRate(); rate > 0.5 {
		t.Fatalf("abort rate %.3f too high for optimized cuckoo", rate)
	}
	t.Logf("stats: %+v abort-rate=%.3f", s, s.AbortRate())
}
