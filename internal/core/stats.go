package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

func runtimeGosched() { runtime.Gosched() }

// shardedCounter is a write-mostly counter sharded across padded cache
// lines so that concurrent writers on different buckets never contend
// (principle P1). Shard selection keys off the bucket index, which is
// already in hand at every call site.
type shardedCounter struct {
	shards [64]paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (c *shardedCounter) add(bucket uint64, delta int64) {
	c.shards[bucket&63].v.Add(delta)
}

func (c *shardedCounter) total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

func (c *shardedCounter) reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// tableStats aggregates the operational counters the evaluation inspects.
type tableStats struct {
	searches      shardedCounter // path searches started
	displacements shardedCounter // successful item displacements
	restarts      shardedCounter // inserts restarted due to invalid paths (Eq. 1)
	maxPathLen    atomicMax      // longest cuckoo path discovered (Eq. 2)
	pathLen       pathLenHist    // distribution of discovered path lengths
}

// PathLenBuckets is the width of the path-length histogram. Eq. 2 bounds
// BFS paths at ~5 displacements for the paper's B=4..16 and M=2000, so 16
// buckets cover BFS exactly; longer DFS walks clamp into the last bucket.
const PathLenBuckets = 16

// pathLenHist counts discovered cuckoo-path lengths. It is recorded once
// per successful path search — already the insert slow path — so a modest
// shard count suffices; each shard is cache-line padded like every other
// probe counter (principle P1).
type pathLenHist struct {
	shards [8]pathLenShard
}

type pathLenShard struct {
	counts [PathLenBuckets]atomic.Uint64
	_      [64]byte
}

func (h *pathLenHist) observe(bucket uint64, length uint64) {
	if length >= PathLenBuckets {
		length = PathLenBuckets - 1
	}
	h.shards[bucket&7].counts[length].Add(1)
}

func (h *pathLenHist) snapshot() (out [PathLenBuckets]uint64) {
	for i := range h.shards {
		for b := range h.shards[i].counts {
			out[b] += h.shards[i].counts[b].Load()
		}
	}
	return out
}

func (h *pathLenHist) reset() {
	for i := range h.shards {
		for b := range h.shards[i].counts {
			h.shards[i].counts[b].Store(0)
		}
	}
}

// atomicMax is a monotonic maximum; updated once per successful path
// search, so a plain CAS loop is cheap enough.
type atomicMax struct {
	v atomic.Uint64
}

func (m *atomicMax) observe(x uint64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Stats is a snapshot of a table's operational counters.
type Stats struct {
	// Searches is the number of cuckoo-path searches performed (slow-path
	// inserts).
	Searches uint64
	// Displacements is the number of item moves executed along cuckoo
	// paths.
	Displacements uint64
	// PathRestarts counts inserts whose discovered path was invalidated by
	// a concurrent writer before execution completed; Eq. 1 predicts how
	// rare this is.
	PathRestarts uint64
	// MaxPathLen is the longest cuckoo path (in displacements) any search
	// discovered; Eq. 2 bounds it for BFS.
	MaxPathLen uint64
	// PathLenHist[i] counts successful path searches that discovered a
	// path of exactly i displacements (the last bucket also absorbs any
	// longer DFS walks). Its mass distribution is the empirical form of
	// the Eq. 2 analysis.
	PathLenHist [PathLenBuckets]uint64
	// Grows counts completed table expansions.
	Grows uint64
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	return Stats{
		Searches:      uint64(t.stats.searches.total()),
		Displacements: uint64(t.stats.displacements.total()),
		PathRestarts:  uint64(t.stats.restarts.total()),
		MaxPathLen:    t.stats.maxPathLen.v.Load(),
		PathLenHist:   t.stats.pathLen.snapshot(),
		Grows:         t.growCount.Load(),
	}
}

// ResetStats zeroes the table's counters (not its contents).
func (t *Table) ResetStats() {
	t.stats.searches.reset()
	t.stats.displacements.reset()
	t.stats.restarts.reset()
	t.stats.maxPathLen.v.Store(0)
	t.stats.pathLen.reset()
}

// GrowEvent records one completed table expansion, for the grow-history
// probe: expansions are rare but stall every writer, so operators want to
// see when they happened and how long the all-stripe critical section was.
type GrowEvent struct {
	// FromBuckets and ToBuckets are the bucket counts before and after.
	FromBuckets, ToBuckets uint64
	// Items is the number of entries rehashed.
	Items uint64
	// Duration is the wall time the expansion held every stripe lock.
	Duration time.Duration
	// Unix is the completion time in Unix nanoseconds.
	Unix int64
}

// maxGrowEvents bounds the retained grow history; a table that doubled 64
// times grew by 2^64, so truncation is theoretical.
const maxGrowEvents = 64

// GrowEvents returns a copy of the recorded expansion history, oldest
// first.
func (t *Table) GrowEvents() []GrowEvent {
	t.growLog.mu.Lock()
	defer t.growLog.mu.Unlock()
	out := make([]GrowEvent, len(t.growLog.events))
	copy(out, t.growLog.events)
	return out
}

// growLog holds the expansion history. Appends happen under growMu (one
// per expansion); the extra mutex only decouples readers from growers.
type growLog struct {
	mu     sync.Mutex
	events []GrowEvent
}

func (l *growLog) record(e GrowEvent) {
	//lint:allow cuckoovet:blockcheck runs once per expansion under the stop-the-world grow path; decouples GrowEvents readers, never contended on the request path
	l.mu.Lock()
	if len(l.events) >= maxGrowEvents {
		l.events = l.events[1:]
	}
	l.events = append(l.events, e)
	l.mu.Unlock()
}
