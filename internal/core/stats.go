package core

import (
	"runtime"
	"sync/atomic"
)

func runtimeGosched() { runtime.Gosched() }

// shardedCounter is a write-mostly counter sharded across padded cache
// lines so that concurrent writers on different buckets never contend
// (principle P1). Shard selection keys off the bucket index, which is
// already in hand at every call site.
type shardedCounter struct {
	shards [64]paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (c *shardedCounter) add(bucket uint64, delta int64) {
	c.shards[bucket&63].v.Add(delta)
}

func (c *shardedCounter) total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

func (c *shardedCounter) reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// tableStats aggregates the operational counters the evaluation inspects.
type tableStats struct {
	searches      shardedCounter // path searches started
	displacements shardedCounter // successful item displacements
	restarts      shardedCounter // inserts restarted due to invalid paths (Eq. 1)
	maxPathLen    atomicMax      // longest cuckoo path discovered (Eq. 2)
}

// atomicMax is a monotonic maximum; updated once per successful path
// search, so a plain CAS loop is cheap enough.
type atomicMax struct {
	v atomic.Uint64
}

func (m *atomicMax) observe(x uint64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Stats is a snapshot of a table's operational counters.
type Stats struct {
	// Searches is the number of cuckoo-path searches performed (slow-path
	// inserts).
	Searches uint64
	// Displacements is the number of item moves executed along cuckoo
	// paths.
	Displacements uint64
	// PathRestarts counts inserts whose discovered path was invalidated by
	// a concurrent writer before execution completed; Eq. 1 predicts how
	// rare this is.
	PathRestarts uint64
	// MaxPathLen is the longest cuckoo path (in displacements) any search
	// discovered; Eq. 2 bounds it for BFS.
	MaxPathLen uint64
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	return Stats{
		Searches:      uint64(t.stats.searches.total()),
		Displacements: uint64(t.stats.displacements.total()),
		PathRestarts:  uint64(t.stats.restarts.total()),
		MaxPathLen:    t.stats.maxPathLen.v.Load(),
	}
}

// ResetStats zeroes the table's counters (not its contents).
func (t *Table) ResetStats() {
	t.stats.searches.reset()
	t.stats.displacements.reset()
	t.stats.restarts.reset()
	t.stats.maxPathLen.v.Store(0)
}
