package core

import (
	"testing"

	"cuckoohash/internal/hashfn"
)

// FuzzTableOps interprets fuzz input as an op script against a small table
// and cross-checks a map oracle plus the structural invariants. Each input
// byte pair is (opcode, key); values derive from the position.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 3, 1, 2, 1})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Add([]byte{0, 5, 4, 5, 3, 5, 0, 5})
	f.Fuzz(func(t *testing.T, script []byte) {
		o := Defaults(256)
		o.Seed = 9
		tab := MustNewTable(o)
		oracle := map[uint64]uint64{}
		grows := 0
		for i := 0; i+1 < len(script); i += 2 {
			op, kb := script[i], script[i+1]
			k := uint64(kb)%300 + 1
			v := uint64(i)
			switch op % 6 {
			case 0:
				err := tab.Insert(k, v)
				_, exists := oracle[k]
				switch {
				case exists && err != ErrExists:
					t.Fatalf("Insert(%d) on existing key: %v", k, err)
				case !exists && err == nil:
					oracle[k] = v
				case !exists && err != ErrFull && err != nil:
					t.Fatalf("Insert(%d): %v", k, err)
				}
			case 1:
				if err := tab.Upsert(k, v); err == nil {
					oracle[k] = v
				} else if err != ErrFull {
					t.Fatalf("Upsert(%d): %v", k, err)
				}
			case 2:
				_, exists := oracle[k]
				if tab.Update(k, v) != exists {
					t.Fatalf("Update(%d) disagreed with oracle", k)
				}
				if exists {
					oracle[k] = v
				}
			case 3:
				_, exists := oracle[k]
				if tab.Delete(k) != exists {
					t.Fatalf("Delete(%d) disagreed with oracle", k)
				}
				delete(oracle, k)
			case 4:
				got, ok := tab.Lookup(k)
				want, exists := oracle[k]
				if ok != exists || (ok && got != want) {
					t.Fatalf("Lookup(%d) = %d,%v oracle %d,%v", k, got, ok, want, exists)
				}
			default:
				// Bound table growth or a long script doubles capacity
				// until the fuzzer runs out of memory.
				if grows < 3 {
					grows++
					if err := tab.Grow(); err != nil {
						t.Fatalf("Grow: %v", err)
					}
				}
			}
		}
		// Final consistency: oracle equivalence and structural invariants.
		if tab.Len() != uint64(len(oracle)) {
			t.Fatalf("Len = %d oracle %d", tab.Len(), len(oracle))
		}
		for k, v := range oracle {
			if got, ok := tab.Lookup(k); !ok || got != v {
				t.Fatalf("final Lookup(%d) = %d,%v want %d", k, got, ok, v)
			}
		}
		arr := tab.arr.Load()
		for b := uint64(0); b < arr.buckets; b++ {
			occ := arr.loadOcc(b)
			for s := 0; occ != 0; s, occ = s+1, occ>>1 {
				if occ&1 == 0 {
					continue
				}
				key := arr.loadKey(arr.slotIdx(b, s, tab.assoc))
				b1, b2 := hashfn.TwoBuckets(tab.hash(key), arr.buckets)
				if b != b1 && b != b2 {
					t.Fatalf("key %d in wrong bucket", key)
				}
			}
		}
	})
}
