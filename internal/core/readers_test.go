package core

import (
	"errors"
	"sync"
	"testing"

	"cuckoohash/internal/workload"
)

// TestReadersNeverMissDuringDisplacement is the paper's hole-backward
// invariant (§4.2): a key that is present in the table must be visible to
// every concurrent reader even while writers displace it along cuckoo
// paths. We fill a table near capacity, keep a stable witness set, and
// churn other keys to force displacements of the witnesses while readers
// continuously verify them.
func TestReadersNeverMissDuringDisplacement(t *testing.T) {
	o := testOptions(1 << 12)
	tab := MustNewTable(o)

	// Witness keys the readers verify (value = 3*key).
	const witnesses = 500
	for k := uint64(1); k <= witnesses; k++ {
		if err := tab.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	// Fill to ~92% so inserts need paths (displacing witnesses too).
	gen := workload.NewSequentialKeys(1 << 20)
	for tab.LoadFactor() < 0.92 {
		if err := tab.Insert(gen.NextKey(), 0); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var churnWG, readWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		churnWG.Add(1)
		go func(w int) {
			defer churnWG.Done()
			rnd := workload.NewRand(uint64(w) + 5)
			churn := uint64(1<<30) + uint64(w)<<20
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Delete a random filler key and insert a fresh one: the
				// insert frequently needs a cuckoo path at 92% occupancy.
				k := churn + i
				if err := tab.Insert(k, 1); err != nil && !errors.Is(err, ErrFull) {
					t.Errorf("churn insert: %v", err)
					return
				}
				if rnd.Intn(2) == 0 {
					tab.Delete(churn + rnd.Intn(i+1))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rnd := workload.NewRand(uint64(r) + 77)
			for n := 0; n < 30000; n++ {
				k := rnd.Intn(witnesses) + 1
				v, ok := tab.Lookup(k)
				if !ok {
					t.Errorf("witness %d missing during displacement churn", k)
					return
				}
				if v != k*3 {
					t.Errorf("witness %d value torn: %d", k, v)
					return
				}
			}
		}(r)
	}
	readWG.Wait()
	close(stop)
	churnWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Witnesses must have been displaced for the test to mean anything;
	// with churn at 92% occupancy displacements are guaranteed.
	if tab.Stats().Displacements == 0 {
		t.Skip("no displacements occurred; table too empty to exercise the invariant")
	}
}

// TestUpsertDuringChurn verifies writers updating values in place never
// lose updates while other writers displace the same keys.
func TestUpsertDuringChurn(t *testing.T) {
	o := testOptions(1 << 10)
	tab := MustNewTable(o)
	const hot = 64
	for k := uint64(1); k <= hot; k++ {
		if err := tab.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	gen := workload.NewSequentialKeys(1 << 20)
	for tab.LoadFactor() < 0.90 {
		if err := tab.Insert(gen.NextKey(), 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	const writers = 4
	const updates = 5000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns a disjoint set of hot keys and counts up.
			for i := 1; i <= updates; i++ {
				for k := uint64(w); k < hot; k += writers {
					if !tab.Update(k+1, uint64(i)) {
						t.Errorf("hot key %d vanished", k+1)
						return
					}
				}
				if i%100 == 0 {
					// Inject churn to force displacements of hot keys.
					fresh := uint64(1<<40) | uint64(w)<<20 | uint64(i)
					_ = tab.Insert(fresh, 0)
					tab.Delete(fresh)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for k := uint64(1); k <= hot; k++ {
		if v, ok := tab.Lookup(k); !ok || v != updates {
			t.Fatalf("hot key %d final value %d,%v; want %d", k, v, ok, updates)
		}
	}
}
