package core

import "cuckoohash/internal/htm"

// defaultHTMConfigForTest keeps htm.DefaultConfig out of individual test
// call sites so capacity-limit tweaks stay in one place.
func defaultHTMConfigForTest() htm.Config {
	return htm.DefaultConfig()
}
