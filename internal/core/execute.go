package core

// executePath performs the validated execution phase of Algorithm 2:
// displacements run hole-backward from the discovered empty slot toward
// path[0], each under only the pair of bucket locks it touches (§4.4), each
// re-validating the path entry it is about to move. The final insert locks
// the candidate pair (b1, b2) to atomically re-check for duplicates and
// claim the freed slot.
//
// Any validation failure returns attemptRetry without undo: a displacement
// only ever moves a key to its own alternate bucket, so a partially
// executed path leaves the table fully consistent (§4.3.1).
func (t *Table) executePath(arr *arrays, path []pathEntry, b1, b2 uint64, key uint64, val []uint64, mode writeMode) attemptResult {
	for i := len(path) - 2; i >= 0; i-- {
		if !t.displace(arr, path[i], path[i+1]) {
			return attemptRetry
		}
		t.stats.displacements.add(path[i].bucket, 1)
	}
	head := path[0]
	other := b2
	if head.bucket == b2 {
		other = b1
	}
	return t.attemptInPair(arr, head.bucket, other, key, val, mode, head.slot)
}

// displace moves the key expected at src into the empty slot dst, holding
// both buckets' stripe locks. It reports false if the snapshot taken during
// the unlocked search no longer holds (the path is invalid, Eq. 1).
func (t *Table) displace(arr *arrays, src, dst pathEntry) bool {
	l1, l2 := t.lockPair(src.bucket, dst.bucket)
	defer t.unlockPair(l1, l2)
	if t.arr.Load() != arr {
		return false
	}
	srcIdx := arr.slotIdx(src.bucket, src.slot, t.assoc)
	if arr.loadOcc(src.bucket)&(1<<uint(src.slot)) == 0 || arr.loadKey(srcIdx) != src.key {
		return false
	}
	if arr.loadOcc(dst.bucket)&(1<<uint(dst.slot)) != 0 {
		return false
	}
	dstIdx := arr.slotIdx(dst.bucket, dst.slot, t.assoc)
	// Destination is written before the source is cleared, so a concurrent
	// optimistic reader can never miss the key: it is transiently present
	// twice but never absent (the MemC3 hole-backward invariant, §4.2).
	arr.moveSlot(srcIdx, dstIdx, t.vw)
	arr.setOcc(dst.bucket, dst.slot)
	arr.clearOcc(src.bucket, src.slot)
	return true
}
