package core

import "cuckoohash/internal/hashfn"

// batchWindow is how far ahead LookupBatch touches candidate buckets before
// scanning them. Deep enough to overlap a DRAM miss, shallow enough to stay
// in the L1.
const batchWindow = 8

// LookupBatch performs n = len(keys) lookups, writing the first value word
// of each found key to vals[i] and presence to found[i]. vals and found
// must be at least len(keys) long.
//
// The batch form exists for the same reason as the BFS prefetch (§4.3.2):
// lookups into a DRAM-resident table are dependent-miss bound, and because
// the bucket schedule is known in advance the misses can be overlapped. The
// implementation touches both candidate buckets of key i+batchWindow before
// scanning key i, converting serial misses into pipelined ones.
func (t *Table) LookupBatch(keys []uint64, vals []uint64, found []bool) {
	if len(vals) < len(keys) || len(found) < len(keys) {
		panic("cuckoo: LookupBatch output slices shorter than keys")
	}
	var hashes [batchWindow]uint64

	arr := t.arr.Load()
	n := len(keys)
	for i := 0; i < n; i++ {
		// Keys at index >= batchWindow were hashed when they were
		// prefetched; the first batchWindow keys are hashed inline. Read
		// the cached hash before the prefetch below reuses its slot
		// (i and i+batchWindow share a slot in the ring).
		var h uint64
		if i >= batchWindow {
			h = hashes[i%batchWindow]
		} else {
			h = t.hash(keys[i])
		}
		// Prefetch the bucket pair batchWindow ahead.
		if j := i + batchWindow; j < n {
			hj := t.hash(keys[j])
			hashes[j%batchWindow] = hj
			b1, b2 := hashfn.TwoBuckets(hj, arr.buckets)
			prefetchBucket(arr, b1, t.assoc)
			prefetchBucket(arr, b2, t.assoc)
		}
		vals[i], found[i] = t.lookupHashed(keys[i], h)
	}
}

// lookupHashed is Lookup with the hash precomputed.
func (t *Table) lookupHashed(key, h uint64) (uint64, bool) {
	var dst [1]uint64
	for spins := 0; ; spins++ {
		arr := t.arr.Load()
		b1, b2 := hashfn.TwoBuckets(h, arr.buckets)
		l1 := t.stripe.IndexFor(b1)
		l2 := t.stripe.IndexFor(b2)
		v1, ok1 := t.stripe.Snapshot(l1)
		v2, ok2 := t.stripe.Snapshot(l2)
		if ok1 && ok2 {
			f := t.scanBucket(arr, b1, key, dst[:])
			if !f {
				f = t.scanBucket(arr, b2, key, dst[:])
			}
			if t.stripe.Validate(l1, v1) && t.stripe.Validate(l2, v2) && t.arr.Load() == arr {
				return dst[0], f
			}
		}
		if spins >= 64 {
			yield()
			spins = 0
		}
	}
}
