package core

import (
	"cuckoohash/internal/hashfn"
)

// pathEntry is one hop of a cuckoo path. For i < len(path)-1, the key
// expected at (path[i].bucket, path[i].slot) will be displaced into
// (path[i+1].bucket, path[i+1].slot). The final entry names the empty slot
// discovered by the search, and path[0] is the slot that ends up free for
// the new key (in one of its two candidate buckets).
type pathEntry struct {
	bucket uint64
	slot   int
	key    uint64 // key observed at (bucket, slot) during search; 0 for the terminal hole
}

// bfsNode is one frontier entry of the breadth-first search over the cuckoo
// graph. Following libcuckoo's b_slot, the node does not store its parent
// chain or the keys along it: the whole root-to-node slot sequence is packed
// into pathcode (base-B digits, root id in the most significant position)
// and decoded only for the single node that finds an empty slot. This keeps
// frontier entries at 16 bytes, which matters because BFS enqueues B
// children per full bucket it examines — with fat nodes the queue traffic
// would cost as much as the displacements BFS saves (§4.3.2).
type bfsNode struct {
	bucket   uint64
	pathcode uint32
	depth    int8
}

// decodePath extracts the root id (0 for b1, 1 for b2) and the slot chosen
// at each of depth levels, earliest hop first.
func (n bfsNode) decodePath(assoc uint64, slots []int) (root uint32) {
	code := n.pathcode
	for i := int(n.depth) - 1; i >= 0; i-- {
		slots[i] = int(code % uint32(assoc))
		code /= uint32(assoc)
	}
	return code
}

// searchScratch holds the per-insert search state. It is pooled: BFS over a
// 2000-slot budget needs a frontier of up to ~M nodes, far too large to
// allocate per operation.
type searchScratch struct {
	nodes []bfsNode
	path  []pathEntry
	slots []int  // decoded slot sequence, maxPath entries
	rng   uint64 // xorshift64 state for DFS victim selection
}

func newSearchScratch(maxSlots, assoc int) *searchScratch {
	maxPath := MaxBFSPathLen(assoc, maxSlots) + 2
	// DFS keeps two walks in the same buffer: half each, plus terminators.
	if dfsMax := 2*(maxSlots/(2*assoc)) + 4; dfsMax > maxPath {
		maxPath = dfsMax
	}
	return &searchScratch{
		nodes: make([]bfsNode, 0, maxSlots+2),
		path:  make([]pathEntry, 0, maxPath),
		slots: make([]int, maxPath),
		rng:   0x853C49E6748FEA9B,
	}
}

func (sc *searchScratch) nextRand() uint64 {
	x := sc.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sc.rng = x
	return x
}

// searchStatus is the outcome of a path search.
type searchStatus int

const (
	// searchFound: a path to an empty slot was discovered.
	searchFound searchStatus = iota
	// searchFull: the budget was exhausted without finding an empty slot;
	// the table is effectively full.
	searchFull
	// searchStale: a concurrent writer invalidated the observation before
	// the path could be reconstructed; the caller should restart (it is a
	// path invalidation that happened during search rather than execution).
	searchStale
)

// search discovers a cuckoo path from buckets b1/b2 to an empty slot with
// no locks held. The returned slice is backed by sc and valid until the
// scratch is reused.
func (t *Table) search(arr *arrays, sc *searchScratch, b1, b2 uint64) ([]pathEntry, searchStatus) {
	t.stats.searches.add(b1, 1)
	if t.opts.Search == SearchDFS {
		return t.searchDFS(arr, sc, b1, b2)
	}
	return t.searchBFS(arr, sc, b1, b2)
}

// searchBFS is the paper's breadth-first search (§4.3.2): every slot of the
// frontier bucket extends its own candidate path, so the first empty slot
// found is at minimum displacement depth, bounded by Eq. 2.
//
// All bucket reads here are unlocked and optimistic; a stale observation
// simply produces a path that fails validation during execution (§4.3.1).
func (t *Table) searchBFS(arr *arrays, sc *searchScratch, b1, b2 uint64) ([]pathEntry, searchStatus) {
	nodes := sc.nodes[:0]
	nodes = append(nodes,
		bfsNode{bucket: b1, pathcode: 0},
		bfsNode{bucket: b2, pathcode: 1},
	)
	assoc := int(t.assoc)
	budget := t.opts.MaxSearchSlots
	slotsExamined := 0

	for qi := 0; qi < len(nodes) && slotsExamined < budget; qi++ {
		if t.opts.Prefetch && qi+1 < len(nodes) {
			// Emulated prefetch: touch the next frontier bucket so its
			// lines are warm when we examine it (see DESIGN.md §2).
			prefetchBucket(arr, nodes[qi+1].bucket, t.assoc)
		}
		n := nodes[qi]
		occ := arr.loadOcc(n.bucket)
		slotsExamined += assoc
		if s, ok := freeSlot(occ, assoc); ok {
			sc.nodes = nodes
			if path, ok := t.buildPath(arr, sc, n, b1, b2, s); ok {
				return path, searchFound
			}
			return nil, searchStale
		}
		// Bucket full: each of its keys extends a candidate path to its
		// alternate bucket.
		if len(nodes)+assoc > cap(nodes) {
			continue
		}
		base := n.bucket * t.assoc
		childCode := n.pathcode * uint32(assoc)
		childDepth := n.depth + 1
		for s := 0; s < assoc; s++ {
			k := arr.loadKey(base + uint64(s))
			alt := hashfn.AltBucket(t.hash(k), arr.buckets, n.bucket)
			nodes = append(nodes, bfsNode{
				bucket:   alt,
				pathcode: childCode + uint32(s),
				depth:    childDepth,
			})
		}
	}
	sc.nodes = nodes
	return nil, searchFull
}

// buildPath reconstructs the cuckoo path for the node that found free slot
// s by decoding its pathcode and re-walking the bucket chain from the root,
// re-reading the key at each hop. The table may have changed since the node
// was enqueued; a divergent walk just yields a path that fails validation
// during execution, exactly like any other stale observation.
func (t *Table) buildPath(arr *arrays, sc *searchScratch, n bfsNode, b1, b2 uint64, s int) ([]pathEntry, bool) {
	root := n.decodePath(t.assoc, sc.slots)
	bucket := b1
	if root == 1 {
		bucket = b2
	}
	path := sc.path[:0]
	for i := 0; i < int(n.depth); i++ {
		slot := sc.slots[i]
		k := arr.loadKey(bucket*t.assoc + uint64(slot))
		path = append(path, pathEntry{bucket: bucket, slot: slot, key: k})
		bucket = hashfn.AltBucket(t.hash(k), arr.buckets, bucket)
	}
	// The walked chain must end at the bucket whose free slot we found; if
	// a concurrent writer moved a key along the chain it may not. Report
	// failure so the caller restarts the search rather than executing a
	// path into the wrong bucket.
	if bucket != n.bucket {
		sc.path = path
		return nil, false
	}
	path = append(path, pathEntry{bucket: bucket, slot: s})
	sc.path = path
	return path, true
}

// searchDFS is the MemC3-style two-way random-walk search: two candidate
// paths (one per candidate bucket) are extended alternately by kicking a
// random victim, completing when either reaches a bucket with an empty
// slot. It is retained as the factor-analysis baseline (§4.3.2, Fig. 5).
func (t *Table) searchDFS(arr *arrays, sc *searchScratch, b1, b2 uint64) ([]pathEntry, searchStatus) {
	assoc := int(t.assoc)
	budget := t.opts.MaxSearchSlots
	maxLen := budget / (2 * assoc)
	if maxLen < 1 {
		maxLen = 1
	}

	// Two independent walks; entries stored interleaved in two halves of
	// the scratch path buffer would complicate things, so keep two small
	// local slices backed by the scratch array split in half.
	buf := sc.path[:0]
	if cap(buf) < 2*maxLen+2 {
		buf = make([]pathEntry, 0, 2*maxLen+2)
	}
	pathA := buf[0 : 0 : maxLen+1]                     // first half
	pathB := buf[maxLen+1 : maxLen+1 : 2*maxLen+2][:0] // second half
	curA, curB := b1, b2
	slotsExamined := 0

	for slotsExamined < budget {
		if len(pathA) > maxLen && len(pathB) > maxLen {
			return nil, searchFull
		}
		for w := 0; w < 2; w++ {
			cur := curA
			path := &pathA
			if w == 1 {
				cur = curB
				path = &pathB
			}
			if len(*path) > maxLen {
				continue
			}
			occ := arr.loadOcc(cur)
			slotsExamined += assoc
			if s, ok := freeSlot(occ, assoc); ok {
				*path = append(*path, pathEntry{bucket: cur, slot: s})
				return *path, searchFound
			}
			// Kick a random victim to its alternate bucket.
			s := int(sc.nextRand() % uint64(assoc))
			k := arr.loadKey(cur*t.assoc + uint64(s))
			*path = append(*path, pathEntry{bucket: cur, slot: s, key: k})
			next := hashfn.AltBucket(t.hash(k), arr.buckets, cur)
			if w == 0 {
				curA = next
			} else {
				curB = next
			}
		}
	}
	return nil, searchFull
}

// prefetchBucket warms the cache lines of bucket b. Go has no portable
// prefetch intrinsic; an early read has the same overlap effect for the BFS
// schedule (the value is deliberately discarded).
func prefetchBucket(arr *arrays, b uint64, assoc uint64) {
	_ = arr.loadKey(b * assoc)
	_ = arr.loadOcc(b)
}
