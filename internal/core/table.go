package core

import (
	"sync"
	"sync/atomic"

	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/spinlock"
)

// Table is the cuckoo+ hash table: fixed 8-byte keys, fixed-size values of
// Options.ValueWords 8-byte words, multi-reader/multi-writer. All methods
// are safe for concurrent use.
//
// Memory layout: keys and values live in flat []uint64 arrays (no pointers,
// no per-entry allocation), with a per-bucket occupancy bitmap. A bucket's
// keys are contiguous, matching the paper's "all the keys come first and
// then the values" bucket layout that packs 8 keys into one cache line.
type Table struct {
	opts   Options
	nb     uint64 // number of buckets
	assoc  uint64
	vw     uint64 // value words
	seed   uint64
	stripe *spinlock.Stripe
	global spinlock.Mutex // writer lock in LockGlobal mode
	growMu sync.Mutex     // serializes Grow

	arr     atomic.Pointer[arrays]
	scratch sync.Pool // *searchScratch

	size      shardedCounter
	stats     tableStats
	growCount atomic.Uint64
	growEpoch atomic.Uint64 // bumped on every array swap (Grow)
	growLog   growLog
}

// arrays is the swappable storage of a Table; Grow installs a new one.
type arrays struct {
	buckets uint64
	keys    []uint64        // buckets*assoc
	vals    []uint64        // buckets*assoc*vw
	occ     []atomic.Uint32 // per-bucket occupancy bitmask
}

// NewTable creates a table from opts.
func NewTable(opts Options) (*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		opts:   opts,
		nb:     opts.Buckets,
		assoc:  uint64(opts.Assoc),
		vw:     uint64(opts.ValueWords),
		seed:   opts.Seed,
		stripe: spinlock.NewStripe(opts.Stripes),
	}
	t.arr.Store(t.newArrays(opts.Buckets))
	t.scratch.New = func() any { return newSearchScratch(opts.MaxSearchSlots, opts.Assoc) }
	return t, nil
}

// MustNewTable is NewTable that panics on configuration errors; intended
// for tests and examples with literal configurations.
func MustNewTable(opts Options) *Table {
	t, err := NewTable(opts)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) newArrays(buckets uint64) *arrays {
	return &arrays{
		buckets: buckets,
		keys:    make([]uint64, buckets*t.assoc),
		vals:    make([]uint64, buckets*t.assoc*t.vw),
		occ:     make([]atomic.Uint32, buckets),
	}
}

// Options returns the table's configuration.
func (t *Table) Options() Options { return t.opts }

// Buckets returns the current number of buckets (it changes on Grow).
func (t *Table) Buckets() uint64 { return t.arr.Load().buckets }

// GrowEpoch returns the table's generation word: a counter bumped every
// time Grow swaps the arrays. It is the specialized table's analogue of
// the generic table's MigrationEpoch — layers that cache versioned read
// sets (e.g. OCC validation) compare it across a read/validate window to
// detect that an entry may have been rehashed into a new generation,
// without re-deriving that fact from the array pointer.
func (t *Table) GrowEpoch() uint64 { return t.growEpoch.Load() }

// Cap returns the current number of slots.
func (t *Table) Cap() uint64 { return t.arr.Load().buckets * t.assoc }

// Len returns the number of stored keys. The value is a lazily aggregated
// snapshot (principle P1): exact when no writers are active.
func (t *Table) Len() uint64 {
	return uint64(t.size.total())
}

// LoadFactor returns Len/Cap.
func (t *Table) LoadFactor() float64 {
	return float64(t.Len()) / float64(t.Cap())
}

// LockStats returns the stripe table's lock-contention counters: total
// acquisitions, contended acquisitions, and scheduler yields while
// spinning. Spinlock spins were previously invisible; this is the probe
// the evaluation uses to attribute throughput collapse to stripe convoys.
func (t *Table) LockStats() spinlock.StripeStats { return t.stripe.Stats() }

func (t *Table) hash(key uint64) uint64 { return hashfn.Uint64(key, t.seed) }

// slot index helpers

func (a *arrays) slotIdx(bucket uint64, slot int, assoc uint64) uint64 {
	return bucket*assoc + uint64(slot)
}

func (a *arrays) fullMask(assoc uint64) uint32 { return uint32(1)<<assoc - 1 }

func (a *arrays) loadKey(i uint64) uint64  { return atomic.LoadUint64(&a.keys[i]) }
func (a *arrays) storeKey(i, k uint64)     { atomic.StoreUint64(&a.keys[i], k) }
func (a *arrays) loadOcc(b uint64) uint32  { return a.occ[b].Load() }
func (a *arrays) setOcc(b uint64, s int)   { a.occ[b].Store(a.occ[b].Load() | 1<<uint(s)) }
func (a *arrays) clearOcc(b uint64, s int) { a.occ[b].Store(a.occ[b].Load() &^ (1 << uint(s))) }

// copyValOut copies min(vw, len(dst)) value words of slot i into dst with
// atomic loads; callers must validate stripe versions afterwards if reading
// optimistically.
func (a *arrays) copyValOut(i uint64, vw uint64, dst []uint64) {
	base := i * vw
	n := vw
	if uint64(len(dst)) < n {
		n = uint64(len(dst))
	}
	for w := uint64(0); w < n; w++ {
		dst[w] = atomic.LoadUint64(&a.vals[base+w])
	}
}

// storeVal writes the value words of slot i, zero-filling words beyond
// len(src); callers must hold the bucket's stripe lock. Writing all vw
// words keeps the memory-bandwidth cost of large values honest even when
// the caller supplies a short payload.
func (a *arrays) storeVal(i uint64, vw uint64, src []uint64) {
	base := i * vw
	for w := uint64(0); w < vw; w++ {
		var v uint64
		if w < uint64(len(src)) {
			v = src[w]
		}
		atomic.StoreUint64(&a.vals[base+w], v)
	}
}

// moveSlot copies key and value from slot src to slot dst (indices into the
// flat arrays); caller holds both buckets' stripe locks.
func (a *arrays) moveSlot(src, dst uint64, vw uint64) {
	atomic.StoreUint64(&a.keys[dst], atomic.LoadUint64(&a.keys[src]))
	sb, db := src*vw, dst*vw
	for w := uint64(0); w < vw; w++ {
		atomic.StoreUint64(&a.vals[db+w], atomic.LoadUint64(&a.vals[sb+w]))
	}
}

// Lookup returns the first value word for key. For multi-word values use
// LookupValue.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	var v [1]uint64
	if t.LookupValue(key, v[:]) {
		return v[0], true
	}
	return 0, false
}

// LookupValue copies min(ValueWords, len(dst)) of key's value words into
// dst and reports whether the key was found. The read is optimistic: it
// takes no locks and dirties no shared cache lines (§4.2).
func (t *Table) LookupValue(key uint64, dst []uint64) bool {
	h := t.hash(key)
	for spins := 0; ; spins++ {
		arr := t.arr.Load()
		b1, b2 := hashfn.TwoBuckets(h, arr.buckets)
		l1 := t.stripe.IndexFor(b1)
		l2 := t.stripe.IndexFor(b2)
		v1, ok1 := t.stripe.Snapshot(l1)
		v2, ok2 := t.stripe.Snapshot(l2)
		if ok1 && ok2 {
			found := t.scanBucket(arr, b1, key, dst)
			if !found {
				found = t.scanBucket(arr, b2, key, dst)
			}
			if t.stripe.Validate(l1, v1) && t.stripe.Validate(l2, v2) && t.arr.Load() == arr {
				return found
			}
		}
		if spins >= 64 {
			yield()
			spins = 0
		}
	}
}

// Contains reports whether key is present.
func (t *Table) Contains(key uint64) bool {
	return t.LookupValue(key, nil)
}

// scanBucket looks for key in bucket b; on a hit it copies the value into
// dst (if non-nil) and returns true.
func (t *Table) scanBucket(arr *arrays, b uint64, key uint64, dst []uint64) bool {
	occ := arr.loadOcc(b)
	base := b * t.assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 == 0 {
			continue
		}
		i := base + uint64(s)
		if arr.loadKey(i) == key {
			if dst != nil {
				arr.copyValOut(i, t.vw, dst)
			}
			return true
		}
	}
	return false
}

// lockPair acquires the stripe locks for buckets b1 and b2 (in stripe order)
// and, in LockGlobal mode, the global writer lock first.
func (t *Table) lockPair(b1, b2 uint64) (l1, l2 uint64) {
	l1, l2 = t.stripe.IndexFor(b1), t.stripe.IndexFor(b2)
	if t.opts.Locking == LockGlobal {
		t.global.Lock()
	}
	t.stripe.LockPair(l1, l2)
	return l1, l2
}

func (t *Table) unlockPair(l1, l2 uint64) {
	t.stripe.UnlockPair(l1, l2)
	if t.opts.Locking == LockGlobal {
		t.global.Unlock()
	}
}

// writeMode distinguishes the public mutation flavours.
type writeMode int

const (
	modeInsert writeMode = iota // fail with ErrExists when present
	modeUpsert                  // overwrite when present
	modeUpdate                  // only overwrite; report absence
)

// Insert adds key with the single-word value val. It returns ErrExists if
// the key is present and ErrFull if no empty slot is reachable.
func (t *Table) Insert(key, val uint64) error {
	return t.write(key, []uint64{val}, modeInsert)
}

// InsertValue is Insert for multi-word values.
func (t *Table) InsertValue(key uint64, val []uint64) error {
	return t.write(key, val, modeInsert)
}

// Upsert inserts key or overwrites its existing value.
func (t *Table) Upsert(key, val uint64) error {
	return t.write(key, []uint64{val}, modeUpsert)
}

// UpsertValue is Upsert for multi-word values.
func (t *Table) UpsertValue(key uint64, val []uint64) error {
	return t.write(key, val, modeUpsert)
}

// Update overwrites key's value only if present, reporting whether it was.
func (t *Table) Update(key, val uint64) bool {
	return t.write(key, []uint64{val}, modeUpdate) == nil
}

// errAbsent is an internal sentinel for modeUpdate misses.
var errAbsent = &absentError{}

type absentError struct{}

func (*absentError) Error() string { return "cuckoo: key not found" }

// write implements Insert/Upsert/Update per Algorithm 2 plus §4.4.
func (t *Table) write(key uint64, val []uint64, mode writeMode) error {
	if uint64(len(val)) > t.vw {
		panic("cuckoo: value longer than ValueWords")
	}
	h := t.hash(key)
	for {
		arr := t.arr.Load()
		b1, b2 := hashfn.TwoBuckets(h, arr.buckets)

		// Fast path, per Algorithm 2 lines 3–8: peek (unlocked) whether
		// either candidate bucket has a free slot; if so take the locked
		// attempt, which also performs the duplicate-key check inside the
		// critical section. Upsert/Update must take the locked attempt
		// regardless, since their duplicate handling is a write.
		full := arr.loadOcc(b1) == arr.fullMask(t.assoc) && arr.loadOcc(b2) == arr.fullMask(t.assoc)
		if mode != modeInsert || !full {
			switch t.attemptInPair(arr, b1, b2, key, val, mode, -1) {
			case attemptInserted, attemptUpdated:
				return nil
			case attemptExists:
				return ErrExists
			case attemptAbsent:
				return errAbsent
			case attemptStale:
				continue
			case attemptNoSpace:
				if mode == modeUpdate {
					// Full buckets and the key is not in them: a miss.
					return errAbsent
				}
			}
		}

		// Slow path, Algorithm 2 lines 9–13: discover a cuckoo path with
		// no locks held (§4.3.1), then execute it under per-displacement
		// pair locks. The duplicate check for the modeInsert fast-path
		// bypass happens inside the final critical section of executePath.
		sc := t.scratch.Get().(*searchScratch)
		path, st := t.search(arr, sc, b1, b2)
		if st == searchStale {
			// A concurrent writer invalidated the observation mid-search
			// (Eq. 1, caught one phase earlier than usual): restart.
			t.scratch.Put(sc)
			t.stats.restarts.add(b1, 1)
			continue
		}
		if st == searchFull {
			t.scratch.Put(sc)
			// No path: before declaring the table full, take one locked
			// attempt — the key may already exist (ErrExists, not
			// ErrFull), or a concurrent delete may have freed a slot.
			switch t.attemptInPair(arr, b1, b2, key, val, mode, -1) {
			case attemptInserted, attemptUpdated:
				return nil
			case attemptExists:
				return ErrExists
			case attemptAbsent:
				return errAbsent
			case attemptStale:
				continue
			}
			return ErrFull
		}
		t.stats.maxPathLen.observe(uint64(len(path) - 1))
		t.stats.pathLen.observe(b1, uint64(len(path)-1))
		res := t.executePath(arr, path, b1, b2, key, val, mode)
		t.scratch.Put(sc)
		switch res {
		case attemptInserted, attemptUpdated:
			return nil
		case attemptExists:
			return ErrExists
		case attemptAbsent:
			return errAbsent
		}
		// Path invalidated by a concurrent writer (Eq. 1): restart.
		t.stats.restarts.add(b1, 1)
	}
}

// attempt results.
type attemptResult int

const (
	attemptInserted attemptResult = iota
	attemptUpdated
	attemptExists
	attemptAbsent
	attemptNoSpace
	attemptStale // arrays swapped by Grow while locking
	attemptRetry // cuckoo path invalidated by a concurrent writer
)

// attemptInPair locks buckets b1 and b2, checks for the key, and inserts
// into an empty slot if one exists. If reqSlot >= 0, the insert must go
// into that slot of bucket b1 (used by executePath after freeing it) and
// the attempt fails with attemptNoSpace if that slot was re-occupied.
func (t *Table) attemptInPair(arr *arrays, b1, b2 uint64, key uint64, val []uint64, mode writeMode, reqSlot int) attemptResult {
	l1, l2 := t.lockPair(b1, b2)
	defer t.unlockPair(l1, l2)
	if t.arr.Load() != arr {
		return attemptStale
	}

	// Duplicate check under the lock (required for Insert correctness,
	// noted after Algorithm 2 in the paper).
	if i, ok := t.findLocked(arr, b1, key); ok {
		return t.onExisting(arr, i, val, mode)
	}
	if i, ok := t.findLocked(arr, b2, key); ok {
		return t.onExisting(arr, i, val, mode)
	}
	if mode == modeUpdate {
		return attemptAbsent
	}

	if reqSlot >= 0 {
		if arr.loadOcc(b1)&(1<<uint(reqSlot)) != 0 {
			return attemptNoSpace
		}
		t.insertAt(arr, b1, reqSlot, key, val)
		return attemptInserted
	}
	if s, ok := freeSlot(arr.loadOcc(b1), int(t.assoc)); ok {
		t.insertAt(arr, b1, s, key, val)
		return attemptInserted
	}
	if s, ok := freeSlot(arr.loadOcc(b2), int(t.assoc)); ok {
		t.insertAt(arr, b2, s, key, val)
		return attemptInserted
	}
	return attemptNoSpace
}

func (t *Table) onExisting(arr *arrays, slot uint64, val []uint64, mode writeMode) attemptResult {
	switch mode {
	case modeInsert:
		return attemptExists
	default:
		arr.storeVal(slot, t.vw, val)
		return attemptUpdated
	}
}

// findLocked scans bucket b for key; caller holds the bucket's stripe lock.
func (t *Table) findLocked(arr *arrays, b uint64, key uint64) (uint64, bool) {
	occ := arr.loadOcc(b)
	base := b * t.assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 != 0 && arr.loadKey(base+uint64(s)) == key {
			return base + uint64(s), true
		}
	}
	return 0, false
}

// freeSlot returns the index of a clear bit in occ below assoc.
func freeSlot(occ uint32, assoc int) (int, bool) {
	for s := 0; s < assoc; s++ {
		if occ&(1<<uint(s)) == 0 {
			return s, true
		}
	}
	return 0, false
}

// insertAt writes key/val into (b, s); caller holds b's stripe lock and has
// verified the slot is free.
func (t *Table) insertAt(arr *arrays, b uint64, s int, key uint64, val []uint64) {
	i := arr.slotIdx(b, s, t.assoc)
	arr.storeKey(i, key)
	arr.storeVal(i, t.vw, val)
	arr.setOcc(b, s)
	t.size.add(b, 1)
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	h := t.hash(key)
	for {
		arr := t.arr.Load()
		b1, b2 := hashfn.TwoBuckets(h, arr.buckets)
		l1, l2 := t.lockPair(b1, b2)
		if t.arr.Load() != arr {
			t.unlockPair(l1, l2)
			continue
		}
		deleted := false
		if i, ok := t.findLocked(arr, b1, key); ok {
			arr.clearOcc(b1, int(i-b1*t.assoc))
			t.size.add(b1, -1)
			deleted = true
		} else if i, ok := t.findLocked(arr, b2, key); ok {
			arr.clearOcc(b2, int(i-b2*t.assoc))
			t.size.add(b2, -1)
			deleted = true
		}
		t.unlockPair(l1, l2)
		return deleted
	}
}

func yield() { runtimeGosched() }
