package core

import (
	"strings"
	"testing"
)

func TestOptionsValidation(t *testing.T) {
	base := Defaults(1 << 10)
	cases := []struct {
		name   string
		mutate func(*Options)
		errSub string
	}{
		{"zero buckets", func(o *Options) { o.Buckets = 0 }, "Buckets"},
		{"non-pow2 buckets", func(o *Options) { o.Buckets = 100 }, "Buckets"},
		{"assoc 0", func(o *Options) { o.Assoc = 0 }, "Assoc"},
		{"assoc 33", func(o *Options) { o.Assoc = 33 }, "Assoc"},
		{"value words 0", func(o *Options) { o.ValueWords = 0 }, "ValueWords"},
		{"stripes 0", func(o *Options) { o.Stripes = 0 }, "Stripes"},
		{"stripes non-pow2", func(o *Options) { o.Stripes = 100 }, "Stripes"},
		{"tiny search budget", func(o *Options) { o.MaxSearchSlots = 1 }, "MaxSearchSlots"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base
			c.mutate(&o)
			_, err := NewTable(o)
			if err == nil || !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("err = %v, want mention of %s", err, c.errSub)
			}
			_, err = NewTxTable(o, 0, defaultHTMConfigForTest())
			if err == nil {
				t.Fatal("TxTable accepted invalid options")
			}
		})
	}
}

func TestMustNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewTable did not panic on bad options")
		}
	}()
	MustNewTable(Options{})
}

func TestDefaultsShape(t *testing.T) {
	for _, slots := range []uint64{1, 100, 1 << 10, 1<<20 + 1} {
		o := Defaults(slots)
		if err := o.validate(); err != nil {
			t.Fatalf("Defaults(%d) invalid: %v", slots, err)
		}
		if o.Buckets*uint64(o.Assoc) < slots {
			t.Fatalf("Defaults(%d) provisions only %d slots", slots, o.Buckets*uint64(o.Assoc))
		}
	}
}

func TestMaxBFSPathLenTable(t *testing.T) {
	// The values the paper quotes: B=4, M=2000 -> 5; and our defaults
	// B=8, M=2000 -> 4.
	cases := []struct{ b, m, want int }{
		{4, 2000, 5},
		{8, 2000, 4},
		{16, 2000, 3},
		{2, 2000, 9},
		{1, 10, 5}, // degenerate: chain of m/2
	}
	for _, c := range cases {
		if got := MaxBFSPathLen(c.b, c.m); got != c.want {
			t.Errorf("MaxBFSPathLen(%d,%d) = %d, want %d", c.b, c.m, got, c.want)
		}
	}
}
