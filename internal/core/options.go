// Package core implements the paper's primary contribution: the "cuckoo+"
// multi-reader/multi-writer cuckoo hash table (§4).
//
// The design in one paragraph: all items live in a flat array of B-way
// set-associative buckets with no pointers; each key hashes to two candidate
// buckets. Lookups are optimistic — they read bucket versions from a striped
// seqlock table, scan both buckets, and retry on version change, so reads
// dirty no cache lines. Inserts first search for a "cuckoo path" to an empty
// slot *without holding any lock* using breadth-first search over the cuckoo
// graph (§4.3.1, §4.3.2), then execute the (at most L_BFS, Eq. 2)
// displacements hole-backward, locking only the pair of buckets involved in
// each displacement, in stripe order, re-validating the path entry before
// each move (§4.4). An invalidated path aborts the execution and the insert
// restarts; Eq. 1 bounds how rarely that happens.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by table operations.
var (
	// ErrFull means no cuckoo path to an empty slot could be found within
	// the search budget; the table is effectively at maximum occupancy and
	// needs expansion.
	ErrFull = errors.New("cuckoo: table is too full")
	// ErrExists means Insert found the key already present.
	ErrExists = errors.New("cuckoo: key already exists")
)

// LockMode selects the writer concurrency-control scheme.
type LockMode int

const (
	// LockStriped is the paper's fine-grained scheme (§4.4): each
	// displacement locks only its pair of bucket stripes.
	LockStriped LockMode = iota
	// LockGlobal serializes writers on one global lock, but still performs
	// path search outside the critical section (Algorithm 2). This is the
	// "+lock later" configuration of the factor analysis (Fig. 5).
	LockGlobal
)

// SearchMode selects the empty-slot search strategy.
type SearchMode int

const (
	// SearchBFS is the paper's breadth-first search (§4.3.2), yielding
	// cuckoo paths of at most L_BFS = ceil(log_B(M/2 - M/2B + 1)) moves.
	SearchBFS SearchMode = iota
	// SearchDFS is the MemC3-style two-way random-walk depth-first search,
	// kept as the factor-analysis and ablation baseline.
	SearchDFS
)

// Options configures a Table. The zero value is not valid; use Defaults and
// override fields as needed.
type Options struct {
	// Buckets is the number of buckets; must be a power of two ≥ 2.
	Buckets uint64
	// Assoc is the set-associativity B (slots per bucket), 1–32. The paper
	// evaluates 4, 8 and 16 and defaults to 8 (§4.3.3).
	Assoc int
	// ValueWords is the value size in 8-byte words (≥ 1). Figure 10 sweeps
	// this from 1 (8 B) to 128 (1024 B).
	ValueWords int
	// Stripes is the size of the lock-striping table; must be a power of
	// two. The paper uses 1K–8K entries; default 4096.
	Stripes int
	// MaxSearchSlots is M, the maximum number of slots examined while
	// searching for an empty slot before declaring the table full. The
	// paper (and MemC3) use 2000.
	MaxSearchSlots int
	// Seed perturbs the hash function.
	Seed uint64
	// Locking selects fine-grained striped locks (default) or a global
	// writer lock.
	Locking LockMode
	// Search selects BFS (default) or the DFS baseline.
	Search SearchMode
	// Prefetch enables the BFS next-neighbor prefetch of §4.3.2. On
	// hardware this is a prefetch instruction; here it is an early touch of
	// the next frontier bucket (see DESIGN.md §2).
	Prefetch bool
}

// Defaults returns the paper's default configuration scaled to the given
// slot count: 8-way buckets, 4096 lock stripes, M = 2000, BFS with
// prefetch, fine-grained locking.
func Defaults(slots uint64) Options {
	const assoc = 8
	buckets := ceilPow2((slots + assoc - 1) / assoc)
	return Options{
		Buckets:        buckets,
		Assoc:          assoc,
		ValueWords:     1,
		Stripes:        4096,
		MaxSearchSlots: 2000,
		Search:         SearchBFS,
		Prefetch:       true,
	}
}

func ceilPow2(x uint64) uint64 {
	if x < 2 {
		return 2
	}
	p := uint64(1)
	for p < x {
		p <<= 1
	}
	return p
}

func (o *Options) validate() error {
	if o.Buckets < 2 || o.Buckets&(o.Buckets-1) != 0 {
		return fmt.Errorf("cuckoo: Buckets must be a power of two >= 2, got %d", o.Buckets)
	}
	if o.Assoc < 1 || o.Assoc > 32 {
		return fmt.Errorf("cuckoo: Assoc must be in [1,32], got %d", o.Assoc)
	}
	if o.ValueWords < 1 {
		return fmt.Errorf("cuckoo: ValueWords must be >= 1, got %d", o.ValueWords)
	}
	if o.Stripes <= 0 || o.Stripes&(o.Stripes-1) != 0 {
		return fmt.Errorf("cuckoo: Stripes must be a positive power of two, got %d", o.Stripes)
	}
	if o.MaxSearchSlots < 2*o.Assoc {
		return fmt.Errorf("cuckoo: MaxSearchSlots must be >= 2*Assoc, got %d", o.MaxSearchSlots)
	}
	return nil
}

// MaxBFSPathLen evaluates Eq. 2 of the paper: the maximum cuckoo-path
// length produced by BFS for associativity b and search budget m.
func MaxBFSPathLen(b, m int) int {
	if b <= 1 {
		// Degenerate 1-way table: BFS reduces to a chain bounded by m/2.
		return m / 2
	}
	target := float64(m)/2 - float64(m)/(2*float64(b)) + 1
	return int(math.Ceil(math.Log(target) / math.Log(float64(b))))
}
