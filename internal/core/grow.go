package core

import (
	"time"

	"cuckoohash/internal/hashfn"
)

// GrowIfFull grows the table only if it is still nearly full, so that
// several writers reacting to the same ErrFull trigger exactly one
// doubling instead of one each (the loser of the race sees the halved
// load factor and skips). It reports whether a grow happened.
func (t *Table) GrowIfFull() (bool, error) {
	//lint:allow cuckoovet:blockcheck the core engine's grow is documented stop-the-world (§4.1 leaves expansion offline); writers racing ErrFull park here by design
	t.growMu.Lock()
	defer t.growMu.Unlock()
	if t.LoadFactor() <= 0.85 {
		return false, nil
	}
	return true, t.growLocked()
}

// Grow doubles the table's bucket count and rehashes every item. The paper
// leaves expansion as a scheduled offline process ("the hash table is
// considered too full ... and an expansion process is scheduled", §4.1);
// this implementation performs it online by taking every stripe lock, which
// excludes all writers and forces all optimistic readers to retry across
// the swap. Concurrent operations block for the duration.
func (t *Table) Grow() error {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	return t.growLocked()
}

// growLocked is Grow with growMu already held.
func (t *Table) growLocked() error {
	old := t.arr.Load()
	newBuckets := old.buckets * 2
	for {
		next := t.newArrays(newBuckets)
		start := time.Now()
		if t.opts.Locking == LockGlobal {
			t.global.Lock()
		}
		t.stripe.LockAll()
		ok := t.rehashInto(old, next)
		if ok {
			t.arr.Store(next)
		}
		t.stripe.UnlockAll()
		if t.opts.Locking == LockGlobal {
			t.global.Unlock()
		}
		if ok {
			t.growCount.Add(1)
			t.growEpoch.Add(1)
			t.growLog.record(GrowEvent{
				FromBuckets: old.buckets,
				ToBuckets:   newBuckets,
				Items:       t.Len(),
				Duration:    time.Since(start),
				Unix:        time.Now().UnixNano(),
			})
			return nil
		}
		// Pathological hash clustering: double again. With a sound hash
		// this never recurses more than once.
		newBuckets *= 2
	}
}

// rehashInto replays every occupied slot of old into next. The caller holds
// every stripe lock, so placement can run lock-free and unvalidated.
func (t *Table) rehashInto(old, next *arrays) bool {
	sc := t.scratch.Get().(*searchScratch)
	defer t.scratch.Put(sc)
	val := make([]uint64, t.vw)
	for b := uint64(0); b < old.buckets; b++ {
		occ := old.loadOcc(b)
		for s := 0; occ != 0; s, occ = s+1, occ>>1 {
			if occ&1 == 0 {
				continue
			}
			i := old.slotIdx(b, s, t.assoc)
			old.copyValOut(i, t.vw, val)
			if !t.placeDirect(next, sc, old.loadKey(i), val) {
				return false
			}
		}
	}
	return true
}

// placeDirect inserts into arr assuming exclusive access (expansion or
// single-threaded bulk load): no locks, no path validation.
func (t *Table) placeDirect(arr *arrays, sc *searchScratch, key uint64, val []uint64) bool {
	b1, b2 := hashfn.TwoBuckets(t.hash(key), arr.buckets)
	if s, ok := freeSlot(arr.loadOcc(b1), int(t.assoc)); ok {
		t.placeAt(arr, b1, s, key, val)
		return true
	}
	if s, ok := freeSlot(arr.loadOcc(b2), int(t.assoc)); ok {
		t.placeAt(arr, b2, s, key, val)
		return true
	}
	path, st := t.search(arr, sc, b1, b2)
	if st != searchFound {
		// Exclusive access: searchStale is impossible, so this means full.
		return false
	}
	for i := len(path) - 2; i >= 0; i-- {
		src, dst := path[i], path[i+1]
		arr.moveSlot(arr.slotIdx(src.bucket, src.slot, t.assoc), arr.slotIdx(dst.bucket, dst.slot, t.assoc), t.vw)
		arr.setOcc(dst.bucket, dst.slot)
		arr.clearOcc(src.bucket, src.slot)
	}
	t.placeAt(arr, path[0].bucket, path[0].slot, key, val)
	return true
}

// placeAt writes a slot without touching the size counter (rehash preserves
// the count).
func (t *Table) placeAt(arr *arrays, b uint64, s int, key uint64, val []uint64) {
	i := arr.slotIdx(b, s, t.assoc)
	arr.storeKey(i, key)
	arr.storeVal(i, t.vw, val)
	arr.setOcc(b, s)
}

// Range calls fn for every key/value pair until fn returns false. It takes
// every stripe lock for the duration, so it observes a consistent snapshot
// but blocks all writers; readers continue (and retry) across it. The value
// slice passed to fn is reused between calls.
func (t *Table) Range(fn func(key uint64, val []uint64) bool) {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	if t.opts.Locking == LockGlobal {
		t.global.Lock()
		defer t.global.Unlock()
	}
	t.stripe.LockAll()
	defer t.stripe.UnlockAll()

	arr := t.arr.Load()
	val := make([]uint64, t.vw)
	for b := uint64(0); b < arr.buckets; b++ {
		occ := arr.loadOcc(b)
		for s := 0; occ != 0; s, occ = s+1, occ>>1 {
			if occ&1 == 0 {
				continue
			}
			i := arr.slotIdx(b, s, t.assoc)
			arr.copyValOut(i, t.vw, val)
			if !fn(arr.loadKey(i), val) {
				return
			}
		}
	}
}

// Clear removes every entry while retaining capacity, holding every stripe
// lock for the duration.
func (t *Table) Clear() {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	if t.opts.Locking == LockGlobal {
		t.global.Lock()
		defer t.global.Unlock()
	}
	t.stripe.LockAll()
	defer t.stripe.UnlockAll()
	arr := t.arr.Load()
	for b := uint64(0); b < arr.buckets; b++ {
		arr.occ[b].Store(0)
	}
	for i := range t.size.shards {
		t.size.shards[i].v.Store(0)
	}
}
