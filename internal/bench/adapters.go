// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (§6). Each experiment drives scaled-down versions
// of the paper's workloads against the table implementations in this
// repository and renders the same rows/series the paper reports; see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// results. Absolute throughput is not comparable to the paper's C++/Haswell
// numbers — the shapes (scaling slopes, crossovers, ratios) are the
// reproduced object.
package bench

import (
	"errors"

	"cuckoohash/internal/chained"
	"cuckoohash/internal/core"
	"cuckoohash/internal/htm"
	"cuckoohash/internal/memc3"
	"cuckoohash/internal/openaddr"
	"cuckoohash/internal/spinlock"
)

// errStop tells the driver a table cannot accept more inserts.
var errStop = errors.New("bench: table full")

// KV is the minimal interface the drivers need. Insert must return errStop
// (or wrap core.ErrFull et al.) when the table cannot take more keys.
type KV interface {
	Insert(key, val uint64) error
	Lookup(key uint64) (uint64, bool)
	Delete(key uint64) bool
	Len() uint64
	Cap() uint64
}

// TxStatser is implemented by adapters whose table runs under emulated HTM.
type TxStatser interface {
	TxStats() htm.Stats
}

// Scheme is a named table constructor. slots is the number of key slots to
// provision; valueWords the value width.
type Scheme struct {
	Name string
	// New builds a fresh table. threads tells arena-based tables how many
	// writer goroutines will use it (ignored by most).
	New func(slots uint64, valueWords, threads int, seed uint64) KV
	// SingleWriter marks tables whose Insert already serializes internally
	// or must be externally serialized.
	SingleWriter bool
}

// --- cuckoo+ (core) adapters ---

type coreKV struct{ t *core.Table }

func (a coreKV) Insert(k, v uint64) error {
	err := a.t.Insert(k, v)
	if errors.Is(err, core.ErrFull) {
		return errStop
	}
	return err
}
func (a coreKV) Lookup(k uint64) (uint64, bool) { return a.t.Lookup(k) }
func (a coreKV) Delete(k uint64) bool           { return a.t.Delete(k) }
func (a coreKV) Len() uint64                    { return a.t.Len() }
func (a coreKV) Cap() uint64                    { return a.t.Cap() }

func coreOptions(slots uint64, valueWords int, seed uint64) core.Options {
	o := core.Defaults(slots)
	o.ValueWords = valueWords
	o.Seed = seed
	return o
}

// CuckooPlusFG is cuckoo+ with fine-grained striped locking (§4.4).
func CuckooPlusFG() Scheme {
	return Scheme{
		Name: "cuckoo+ fine-grained",
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			return coreKV{core.MustNewTable(coreOptions(slots, vw, seed))}
		},
	}
}

// CuckooPlusGlobal is cuckoo+ with a global writer lock ("+lock later",
// optimized algorithm but coarse locking).
func CuckooPlusGlobal() Scheme {
	return Scheme{
		Name: "cuckoo+",
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			o := coreOptions(slots, vw, seed)
			o.Locking = core.LockGlobal
			return coreKV{core.MustNewTable(o)}
		},
	}
}

// CuckooPlusVariant exposes the factor-analysis knobs (Fig. 5).
func CuckooPlusVariant(name string, locking core.LockMode, search core.SearchMode, prefetch bool) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			o := coreOptions(slots, vw, seed)
			o.Locking = locking
			o.Search = search
			o.Prefetch = prefetch
			return coreKV{core.MustNewTable(o)}
		},
	}
}

// CuckooPlusAssoc is cuckoo+ (fine-grained) at a given associativity.
func CuckooPlusAssoc(assoc int, prefix string) Scheme {
	return Scheme{
		Name: prefix,
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			o := coreOptions(slots, vw, seed)
			o.Assoc = assoc
			buckets := uint64(2)
			for buckets*uint64(assoc) < slots {
				buckets <<= 1
			}
			o.Buckets = buckets
			return coreKV{core.MustNewTable(o)}
		},
	}
}

type coreTxKV struct{ t *core.TxTable }

func (a coreTxKV) Insert(k, v uint64) error {
	err := a.t.Insert(k, v)
	if errors.Is(err, core.ErrFull) {
		return errStop
	}
	return err
}
func (a coreTxKV) Lookup(k uint64) (uint64, bool) { return a.t.Lookup(k) }
func (a coreTxKV) Delete(k uint64) bool           { return a.t.Delete(k) }
func (a coreTxKV) Len() uint64                    { return a.t.Len() }
func (a coreTxKV) Cap() uint64                    { return a.t.Cap() }
func (a coreTxKV) TxStats() htm.Stats             { return a.t.Region().Stats() }

// CuckooPlusTSX is cuckoo+ under coarse locking with emulated lock elision
// (§5); policy selects the TSX* or glibc retry policy.
func CuckooPlusTSX(name string, policy htm.Policy, search core.SearchMode, prefetch bool) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			o := coreOptions(slots, vw, seed)
			o.Search = search
			o.Prefetch = prefetch
			return coreTxKV{core.MustNewTxTable(o, policy, htm.DefaultConfig())}
		},
	}
}

// CuckooPlusTSXAssoc is the elided cuckoo+ at a given associativity
// (Figs. 8–9 use "optimized cuckoo hashing with TSX lock elision").
func CuckooPlusTSXAssoc(assoc int, name string) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			o := coreOptions(slots, vw, seed)
			o.Assoc = assoc
			buckets := uint64(2)
			for buckets*uint64(assoc) < slots {
				buckets <<= 1
			}
			o.Buckets = buckets
			return coreTxKV{core.MustNewTxTable(o, htm.PolicyTuned, htm.DefaultConfig())}
		},
	}
}

// --- MemC3 optimistic cuckoo adapters ---

type memc3KV struct{ t *memc3.Table }

func (a memc3KV) Insert(k, v uint64) error {
	err := a.t.Insert(k, v)
	switch {
	case errors.Is(err, memc3.ErrFull):
		return errStop
	default:
		return err
	}
}
func (a memc3KV) Lookup(k uint64) (uint64, bool) { return a.t.Lookup(k) }
func (a memc3KV) Delete(k uint64) bool           { return a.t.Delete(k) }
func (a memc3KV) Len() uint64 {
	n := a.t.Len()
	if n < 0 {
		return 0
	}
	return uint64(n)
}
func (a memc3KV) Cap() uint64 { return a.t.Cap() }

func memc3Options(slots uint64, vw, assoc int, seed uint64) memc3.Options {
	o := memc3.Defaults(slots)
	if assoc != 0 && assoc != o.Assoc {
		o.Assoc = assoc
		buckets := uint64(2)
		for buckets*uint64(assoc) < slots {
			buckets <<= 1
		}
		o.Buckets = buckets
	}
	o.ValueWords = vw
	o.Seed = seed
	return o
}

// Memc3 is the optimistic concurrent cuckoo baseline ("cuckoo" in the
// figures): multi-reader, single global writer lock, Algorithm 1. assoc
// selects the set-associativity (MemC3's own default is 4; the factor
// analysis holds it at 8 to isolate the algorithmic deltas).
func Memc3(assoc int) Scheme {
	return Scheme{
		Name:         "cuckoo",
		SingleWriter: true,
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			return memc3KV{memc3.MustNew(memc3Options(slots, vw, assoc, seed))}
		},
	}
}

type memc3TxKV struct{ t *memc3.TxTable }

func (a memc3TxKV) Insert(k, v uint64) error {
	err := a.t.Insert(k, v)
	if errors.Is(err, memc3.ErrFull) {
		return errStop
	}
	return err
}
func (a memc3TxKV) Lookup(k uint64) (uint64, bool) { return a.t.Lookup(k) }
func (a memc3TxKV) Delete(k uint64) bool           { return a.t.Delete(k) }
func (a memc3TxKV) Len() uint64                    { return a.t.Len() }
func (a memc3TxKV) Cap() uint64                    { return a.t.Cap() }
func (a memc3TxKV) TxStats() htm.Stats             { return a.t.Region().Stats() }

// Memc3TSX is the unoptimized cuckoo under coarse-lock elision (whole
// Algorithm 1 in one transaction).
func Memc3TSX(name string, policy htm.Policy, assoc int) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, vw, _ int, seed uint64) KV {
			return memc3TxKV{memc3.MustNewTxTable(memc3Options(slots, vw, assoc, seed), policy, htm.DefaultConfig())}
		},
	}
}

// --- chained adapters ---

type chainedKV struct{ m *chained.Map }

func (a chainedKV) Insert(k, v uint64) error       { a.m.Put(k, v); return nil }
func (a chainedKV) Lookup(k uint64) (uint64, bool) { return a.m.Get(k) }
func (a chainedKV) Delete(k uint64) bool           { return a.m.Delete(k) }
func (a chainedKV) Len() uint64                    { return a.m.Len() }
func (a chainedKV) Cap() uint64                    { return a.m.Buckets() }

// TBB is the Intel-TBB-analog concurrent chained map, presized like the
// paper ("we initialize the TBB table with the same number of buckets").
func TBB() Scheme {
	return Scheme{
		Name: "TBB chained",
		New: func(slots uint64, _, _ int, seed uint64) KV {
			o := chained.Defaults(slots, true)
			o.Seed = seed
			return chainedKV{chained.MustNew(o)}
		},
	}
}

// Unordered is the std::unordered_map analog: unsynchronized chained map.
// Callers must serialize access (see LockWrapped).
func Unordered() Scheme {
	return Scheme{
		Name:         "unordered_map",
		SingleWriter: true,
		New: func(slots uint64, _, _ int, seed uint64) KV {
			o := chained.Defaults(slots, false)
			o.Seed = seed
			return chainedKV{chained.MustNew(o)}
		},
	}
}

type chainedTxKV struct {
	m *chained.TxMap
}

func (a *chainedTxKV) Insert(k, v uint64) error {
	if err := a.m.Put(0, k, v); err != nil {
		return errStop
	}
	return nil
}
func (a *chainedTxKV) Lookup(k uint64) (uint64, bool) { return a.m.Get(k) }
func (a *chainedTxKV) Delete(k uint64) bool           { return false }
func (a *chainedTxKV) Len() uint64                    { return a.m.Len() }
func (a *chainedTxKV) Cap() uint64                    { return 0 }
func (a *chainedTxKV) TxStats() htm.Stats             { return a.m.Region().Stats() }

// UnorderedTSX is the chained map under coarse-lock elision with the shared
// bump allocator (the allocation-conflict configuration of §5).
func UnorderedTSX(name string, policy htm.Policy) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, _, _ int, seed uint64) KV {
			b := uint64(2)
			for b < slots {
				b <<= 1
			}
			return &chainedTxKV{m: chained.MustNewTxMap(b, slots+slots/4, seed, policy, false, htm.DefaultConfig())}
		},
	}
}

// --- open-addressing adapters ---

type openKV struct{ m *openaddr.Map }

func (a openKV) Insert(k, v uint64) error {
	if err := a.m.Put(k, v); err != nil {
		return errStop
	}
	return nil
}
func (a openKV) Lookup(k uint64) (uint64, bool) { return a.m.Get(k) }
func (a openKV) Delete(k uint64) bool           { return a.m.Delete(k) }
func (a openKV) Len() uint64                    { return a.m.Len() }
func (a openKV) Cap() uint64                    { return a.m.Cap() }

// Dense is the dense_hash_map analog: quadratic probing, 0.5 max load,
// single-threaded (see LockWrapped for the §2.3 global-lock wrapping).
func Dense() Scheme {
	return Scheme{
		Name:         "dense_hash_map",
		SingleWriter: true,
		New: func(slots uint64, _, _ int, seed uint64) KV {
			// Presize to keep the live load under 0.5 without resizing,
			// the configuration most favourable to dense_hash_map.
			return openKV{openaddr.New(slots*2, seed, 0.5, false)}
		},
	}
}

type openTxKV struct{ m *openaddr.TxMap }

func (a openTxKV) Insert(k, v uint64) error {
	if err := a.m.Put(k, v); err != nil {
		return errStop
	}
	return nil
}
func (a openTxKV) Lookup(k uint64) (uint64, bool) { return a.m.Get(k) }
func (a openTxKV) Delete(k uint64) bool           { return a.m.Delete(k) }
func (a openTxKV) Len() uint64                    { return a.m.Len() }
func (a openTxKV) Cap() uint64                    { return a.m.Cap() }
func (a openTxKV) TxStats() htm.Stats             { return a.m.Region().Stats() }

// DenseTSX is the open-addressing table under coarse-lock elision.
func DenseTSX(name string, policy htm.Policy) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, _, _ int, seed uint64) KV {
			return openTxKV{openaddr.NewTxMap(slots*2, seed, policy, htm.DefaultConfig())}
		},
	}
}

// --- global-lock wrapper ---

type lockedKV struct {
	mu spinlock.Mutex
	kv KV
}

func (a *lockedKV) Insert(k, v uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.kv.Insert(k, v)
}
func (a *lockedKV) Lookup(k uint64) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.kv.Lookup(k)
}
func (a *lockedKV) Delete(k uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.kv.Delete(k)
}
func (a *lockedKV) Len() uint64 { return a.kv.Len() }
func (a *lockedKV) Cap() uint64 { return a.kv.Cap() }

// LockWrapped wraps a single-writer scheme in one global spinlock, the
// naive-concurrency baseline of §2.3.
func LockWrapped(name string, inner Scheme) Scheme {
	return Scheme{
		Name: name,
		New: func(slots uint64, vw, threads int, seed uint64) KV {
			return &lockedKV{kv: inner.New(slots, vw, threads, seed)}
		},
	}
}
