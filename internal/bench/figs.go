package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"cuckoohash/internal/core"
	"cuckoohash/internal/htm"
	"cuckoohash/internal/workload"
)

// Experiment is one reproducible figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) *Report
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Highest throughput by hash table, 50% insert (Figure 1)", Fig1},
		{"fig2", "Insert throughput vs threads, single-writer tables ± TSX (Figure 2)", Fig2},
		{"fig5a", "Factor analysis, single-thread Insert (Figure 5a)", Fig5a},
		{"fig5b", "Factor analysis, 8-thread Insert, both orders (Figure 5b)", Fig5b},
		{"fig6a", "Throughput vs threads, fill 0-95% (Figure 6a)", Fig6a},
		{"fig6b", "Throughput vs threads at 0.90-0.95 occupancy (Figure 6b)", Fig6b},
		{"fig7", "Scaling to 16 cores, cuckoo+ vs TBB (Figure 7)", Fig7},
		{"fig8", "Lookup throughput vs set-associativity at 95% (Figure 8)", Fig8},
		{"fig9", "Throughput vs load factor by associativity (Figure 9)", Fig9},
		{"fig10a", "Value-size sweep, fixed entry count (Figure 10a)", Fig10a},
		{"fig10b", "Value-size sweep, fixed table size (Figure 10b)", Fig10b},
		{"memory", "Memory per entry vs chained/open tables (§6.2)", Memory},
		{"latency", "Per-op latency distribution (predictability, §4.1)", Latency},
		{"eq1", "Cuckoo-path invalidation probability (Eq. 1 / Appendix B)", Eq1},
		{"eq2", "BFS maximum path length (Eq. 2 / Appendix C)", Eq2},
		{"naive", "Naive concurrency control fails (§2.3)", Naive},
		{"probes", "Probe-layer signals: path lengths, lock contention, grows", Probes},
		{"zipf", "Skewed (zipf) workloads: extension beyond the paper's uniform keys", Zipf},
		{"txnzipf", "Hot-counter INCR at zipf s=1.2: naive locked vs split counters (cuckootxn)", TxnZipf},
		{"hotalloc", "Hot-path allocations per op: byte-key GET vs legacy string conversion", HotAlloc},
		{"churn", "Steady-state delete+insert at fixed occupancy (§6.3's second use mode)", Churn},
		{"growpause", "Resize pause: stop-the-world rebuild vs incremental migration (max op latency)", GrowPause},
		{"replread", "Replicated hot-set read scale-out and miss-lease herd collapse (cuckoorepl)", ReplRead},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// windows used by the factor-analysis figures.
var fillBounds = []float64{0, 0.75, 0.90, 0.95}

const (
	wOverall = "0.00-0.95"
	wMid     = "0.75-0.90"
	wHigh    = "0.90-0.95"
)

// Fig1 measures the best mixed-workload (50% insert) throughput of each
// hash table across thread counts.
func Fig1(sc Scale) *Report {
	r := &Report{
		ID:      "fig1",
		Title:   "Highest throughput, 50% insert / 50% lookup",
		Unit:    "Mops/s",
		Columns: []string{"best Mops/s", "best threads"},
	}
	type cand struct {
		s       Scheme
		threads []int
	}
	cands := []cand{
		{CuckooPlusTSX("cuckoo+ with TSX*", htm.PolicyTuned, core.SearchBFS, true), sc.Threads},
		{CuckooPlusFG(), sc.Threads},
		{TBB(), sc.Threads},
		{Memc3(8), sc.Threads},
		{Unordered(), []int{1}},
		{Dense(), []int{1}},
	}
	for _, c := range cands {
		best, bestT := 0.0, 1
		for _, th := range c.threads {
			tab := c.s.New(sc.Slots, 1, th, sc.Seed)
			res := Fill(tab, FillSpec{
				Threads: th, Mix: workload.Mix5050,
				TargetLoad: 0.95, Slots: sc.Slots, Seed: sc.Seed,
			})
			if res.Overall > best {
				best, bestT = res.Overall, th
			}
		}
		r.AddRow(c.s.Name, best, float64(bestT))
	}
	r.AddNote("paper shape: cuckoo+ (both flavours) on top, then TBB; single-thread tables at the bottom")
	return r
}

// Fig2 measures the aggregate insert throughput of single-writer tables
// with a global lock vs (emulated) TSX lock elision.
func Fig2(sc Scale) *Report {
	r := &Report{
		ID:    "fig2",
		Title: fmt.Sprintf("Insert throughput vs threads (%d keys per run)", sc.Fig2Keys),
		Unit:  "Mops/s",
	}
	for _, th := range sc.Threads {
		r.Columns = append(r.Columns, fmt.Sprintf("%dthr", th))
	}
	slots := sc.Fig2Keys * 8 // low occupancy, like 16M keys into a 134M-slot table
	schemes := []Scheme{
		Memc3TSX("cuckoo w/ TSX", htm.PolicyGlibc, 4),
		Memc3(4),
		DenseTSX("dense_hash_map w/ TSX", htm.PolicyGlibc),
		LockWrapped("dense_hash_map w/ lock", Dense()),
		UnorderedTSX("unordered_map w/ TSX", htm.PolicyGlibc),
		LockWrapped("unordered_map w/ lock", Unordered()),
	}
	for _, s := range schemes {
		row := Row{Name: s.Name}
		var lastTx *htm.Stats
		for _, th := range sc.Threads {
			tab := s.New(slots, 1, th, sc.Seed)
			res := Fill(tab, FillSpec{
				Threads: th, Mix: workload.InsertOnly,
				TargetLoad: float64(sc.Fig2Keys) / float64(slots),
				Slots:      slots, Seed: sc.Seed,
			})
			row.Values = append(row.Values, res.Overall)
			lastTx = res.Tx
		}
		r.Rows = append(r.Rows, row)
		if lastTx != nil {
			r.AddNote("%s @%dthr: abort-rate %.1f%%, fallbacks %d, capacity aborts %d",
				s.Name, sc.Threads[len(sc.Threads)-1], 100*lastTx.AbortRate(), lastTx.Fallbacks, lastTx.CapacityAborts)
		}
	}
	r.AddNote("paper shape: multi-thread throughput below 1-thread for every scheme; elision above plain lock")
	return r
}

// fig5Run measures one variant over the fill windows.
func fig5Run(s Scheme, threads int, sc Scale) (overall, mid, high float64) {
	tab := s.New(sc.Slots, 1, threads, sc.Seed)
	res := Fill(tab, FillSpec{
		Threads: threads, Mix: workload.InsertOnly,
		TargetLoad: 0.95, Slots: sc.Slots, Seed: sc.Seed,
		WindowBounds: fillBounds,
	})
	return res.Windows[wOverall], res.Windows[wMid], res.Windows[wHigh]
}

// Fig5a is the single-thread factor analysis: DFS baseline, +BFS,
// +prefetch, over three occupancy windows.
func Fig5a(sc Scale) *Report {
	r := &Report{
		ID:      "fig5a",
		Title:   "Single-thread Insert factor analysis",
		Unit:    "Mops/s",
		Columns: []string{"load 0-0.95", "load 0.75-0.9", "load 0.9-0.95"},
	}
	variants := []Scheme{
		CuckooPlusVariant("cuckoo (DFS)", core.LockGlobal, core.SearchDFS, false),
		CuckooPlusVariant("+BFS", core.LockGlobal, core.SearchBFS, false),
		CuckooPlusVariant("+prefetch", core.LockGlobal, core.SearchBFS, true),
	}
	for _, v := range variants {
		o, m, h := fig5Run(v, 1, sc)
		r.AddRow(v.Name, o, m, h)
	}
	r.AddNote("paper shape: BFS helps most at high occupancy (~26%%), prefetch adds ~9%%")
	return r
}

// Fig5b is the 8-thread factor analysis in both cumulative orders.
func Fig5b(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:      "fig5b",
		Title:   fmt.Sprintf("%d-thread Insert factor analysis, both orders", threads),
		Unit:    "Mops/s",
		Columns: []string{"load 0-0.95", "load 0.75-0.9", "load 0.9-0.95"},
	}
	elisionFirst := []Scheme{
		Memc3(8),
		Memc3TSX("+TSX-glibc", htm.PolicyGlibc, 8),
		Memc3TSX("+TSX*", htm.PolicyTuned, 8),
		CuckooPlusTSX("+lock later", htm.PolicyTuned, core.SearchDFS, false),
		CuckooPlusTSX("+BFS w/ prefetch", htm.PolicyTuned, core.SearchBFS, true),
	}
	algoFirst := []Scheme{
		Memc3(8),
		CuckooPlusVariant("+lock later", core.LockGlobal, core.SearchDFS, false),
		CuckooPlusVariant("+BFS w/ prefetch", core.LockGlobal, core.SearchBFS, true),
		CuckooPlusTSX("+TSX-glibc", htm.PolicyGlibc, core.SearchBFS, true),
		CuckooPlusTSX("+TSX*", htm.PolicyTuned, core.SearchBFS, true),
	}
	for _, v := range elisionFirst {
		o, m, h := fig5Run(v, threads, sc)
		r.AddRow("[elision-first] "+v.Name, o, m, h)
	}
	for _, v := range algoFirst {
		o, m, h := fig5Run(v, threads, sc)
		r.AddRow("[algo-first] "+v.Name, o, m, h)
	}
	r.AddNote("paper shape: neither elision alone nor algorithm alone reaches the combined throughput")
	return r
}

func fig6Schemes() []Scheme {
	return []Scheme{
		Memc3(8),
		Memc3TSX("cuckoo w/ TSX", htm.PolicyTuned, 8),
		CuckooPlusGlobal(),
		CuckooPlusTSX("cuckoo+ w/ TSX", htm.PolicyTuned, core.SearchBFS, true),
		CuckooPlusFG(),
		TBB(),
	}
}

var fig6Mixes = []workload.Mix{workload.InsertOnly, workload.Mix5050, workload.Mix1090}

func fig6(sc Scale, id, title, window string) *Report {
	r := &Report{ID: id, Title: title, Unit: "Mops/s"}
	for _, mix := range fig6Mixes {
		for _, th := range sc.Threads {
			r.Columns = append(r.Columns, fmt.Sprintf("%s/%dt", shortMix(mix), th))
		}
	}
	for _, s := range fig6Schemes() {
		row := Row{Name: s.Name}
		for _, mix := range fig6Mixes {
			for _, th := range sc.Threads {
				tab := s.New(sc.Slots, 1, th, sc.Seed)
				res := Fill(tab, FillSpec{
					Threads: th, Mix: mix,
					TargetLoad: 0.95, Slots: sc.Slots, Seed: sc.Seed,
					WindowBounds: fillBounds,
				})
				v := res.Overall
				if window != "" {
					v = res.Windows[window]
				}
				row.Values = append(row.Values, v)
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("paper shape: cuckoo+ variants scale with threads; cuckoo drops with threads on write-heavy mixes; cuckoo+ > TBB")
	return r
}

func shortMix(m workload.Mix) string {
	switch m {
	case workload.InsertOnly:
		return "100%ins"
	case workload.Mix5050:
		return "50%ins"
	case workload.Mix1090:
		return "10%ins"
	}
	return "mix"
}

// Fig6a is throughput vs threads over the whole 0-95% fill.
func Fig6a(sc Scale) *Report {
	return fig6(sc, "fig6a", "Throughput vs threads, fill 0-95%", "")
}

// Fig6b is throughput vs threads in the 0.90-0.95 occupancy window.
func Fig6b(sc Scale) *Report {
	return fig6(sc, "fig6b", "Throughput vs threads at 0.90-0.95 occupancy", wHigh)
}

// Fig7 scales cuckoo+ (fine-grained) against the TBB-analog up to the full
// machine (the paper's 16-core Xeon had no TSX, hence no elided rows).
func Fig7(sc Scale) *Report {
	r := &Report{ID: "fig7", Title: "Scaling to many cores, fill 0-95%", Unit: "Mops/s"}
	for _, mix := range fig6Mixes {
		for _, th := range sc.MaxThreads {
			r.Columns = append(r.Columns, fmt.Sprintf("%s/%dt", shortMix(mix), th))
		}
	}
	for _, s := range []Scheme{CuckooPlusFG(), TBB()} {
		row := Row{Name: s.Name}
		for _, mix := range fig6Mixes {
			for _, th := range sc.MaxThreads {
				tab := s.New(sc.Slots, 1, th, sc.Seed)
				res := Fill(tab, FillSpec{
					Threads: th, Mix: mix,
					TargetLoad: 0.95, Slots: sc.Slots, Seed: sc.Seed,
				})
				row.Values = append(row.Values, res.Overall)
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("paper shape: cuckoo+ keeps scaling on write-heavy mixes where TBB flattens")
	return r
}

// Fig8 measures lookup-only throughput at 95% occupancy for 4/8/16-way
// tables.
func Fig8(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:      "fig8",
		Title:   fmt.Sprintf("%d-thread Lookup throughput at 95%% occupancy", threads),
		Unit:    "Mops/s",
		Columns: []string{"Mops/s"},
	}
	for _, assoc := range []int{4, 8, 16} {
		s := CuckooPlusAssoc(assoc, fmt.Sprintf("%d-way", assoc))
		tab := s.New(sc.Slots, 1, threads, sc.Seed)
		counts := PreFill(tab, sc.Slots, 0.95, 8, sc.Seed)
		res := Lookups(tab, LookupSpec{Threads: threads, OpsPerThread: sc.LookupOps, Seed: sc.Seed}, counts)
		r.AddRow(s.Name, res.Overall)
	}
	r.AddNote("paper used the TSX-elided table; here reads run on the optimistic fine-grained table because the software-HTM per-op overhead would mask the per-associativity scan cost the figure measures (DESIGN.md §2)")
	r.AddNote("paper shape: lower associativity reads faster (68.95 / 63.64 / 54.17 Mops in the paper)")
	return r
}

// Fig9 measures throughput per occupancy window for 4/8/16-way tables and
// the three mixes.
func Fig9(sc Scale) *Report {
	bounds := []float64{0, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:    "fig9",
		Title: fmt.Sprintf("%d-thread throughput vs load factor by associativity", threads),
		Unit:  "Mops/s",
	}
	for i := 1; i < len(bounds); i++ {
		r.Columns = append(r.Columns, fmt.Sprintf("@%.2f", bounds[i]))
	}
	for _, mix := range fig6Mixes {
		for _, assoc := range []int{4, 8, 16} {
			s := CuckooPlusAssoc(assoc, fmt.Sprintf("%d-way %s", assoc, shortMix(mix)))
			tab := s.New(sc.Slots, 1, threads, sc.Seed)
			res := Fill(tab, FillSpec{
				Threads: threads, Mix: mix,
				TargetLoad: 0.95, Slots: sc.Slots, Seed: sc.Seed,
				WindowBounds: bounds,
			})
			row := Row{Name: s.Name}
			for i := 1; i < len(bounds); i++ {
				row.Values = append(row.Values, res.Windows[windowKey(bounds[i-1], bounds[i])])
			}
			r.Rows = append(r.Rows, row)
		}
	}
	r.AddNote("fine-grained table (see fig8 note); paper shape: 8-way best overall for write mixes; 16-way worst at low load, best above ~0.92")
	return r
}

// Fig10a sweeps the value size with a fixed entry count.
func Fig10a(sc Scale) *Report {
	entries := sc.Slots / 4
	valueWords := []int{1, 2, 4, 8, 16, 32}
	r := &Report{ID: "fig10a", Title: "Throughput vs value size, fixed entry count", Unit: "Mops/s"}
	for _, vw := range valueWords {
		r.Columns = append(r.Columns, fmt.Sprintf("%dB", vw*8))
	}
	maxT := sc.Threads[len(sc.Threads)-1]
	midT := 4
	if midT > maxT {
		midT = maxT
	}
	configs := []struct {
		name    string
		threads int
		mix     workload.Mix
	}{
		{fmt.Sprintf("%d-thr 100%% Ins", maxT), maxT, workload.InsertOnly},
		{fmt.Sprintf("%d-thr 100%% Ins", midT), midT, workload.InsertOnly},
		{"1-thr 100% Ins", 1, workload.InsertOnly},
		{fmt.Sprintf("%d-thr 10%% Ins", maxT), maxT, workload.Mix1090},
		{"1-thr 10% Ins", 1, workload.Mix1090},
	}
	for _, cfg := range configs {
		row := Row{Name: cfg.name}
		for _, vw := range valueWords {
			s := CuckooPlusTSX("", htm.PolicyTuned, core.SearchBFS, true)
			slots := entries * 100 / 95
			tab := s.New(slots, vw, cfg.threads, sc.Seed)
			res := Fill(tab, FillSpec{
				Threads: cfg.threads, Mix: cfg.mix,
				TargetLoad: float64(entries) / float64(slots),
				Slots:      slots, Seed: sc.Seed,
			})
			row.Values = append(row.Values, res.Overall)
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("paper shape: throughput decays with value size; multi-thread advantage shrinks as memory bandwidth saturates")
	return r
}

// Fig10b sweeps the value size with a fixed table byte budget, comparing
// fine-grained locking with elision.
func Fig10b(sc Scale) *Report {
	budgetWords := sc.Slots * 2 // 16 B/slot at vw=1
	valueWords := []int{1, 2, 4, 8, 16, 32, 64, 128}
	r := &Report{ID: "fig10b", Title: "Throughput vs value size, fixed table bytes", Unit: "Mops/s"}
	for _, vw := range valueWords {
		r.Columns = append(r.Columns, fmt.Sprintf("%dB", vw*8))
	}
	maxT := sc.Threads[len(sc.Threads)-1]
	configs := []struct {
		name    string
		scheme  func() Scheme
		threads int
		mix     workload.Mix
	}{
		{fmt.Sprintf("%d-thr 100%% Ins - fine-grained", maxT), func() Scheme { return CuckooPlusFG() }, maxT, workload.InsertOnly},
		{fmt.Sprintf("%d-thr 100%% Ins - TSX", maxT), func() Scheme {
			return CuckooPlusTSX("", htm.PolicyTuned, core.SearchBFS, true)
		}, maxT, workload.InsertOnly},
		{"1-thr 100% Ins - TSX", func() Scheme {
			return CuckooPlusTSX("", htm.PolicyTuned, core.SearchBFS, true)
		}, 1, workload.InsertOnly},
		{fmt.Sprintf("%d-thr 10%% Ins - TSX", maxT), func() Scheme {
			return CuckooPlusTSX("", htm.PolicyTuned, core.SearchBFS, true)
		}, maxT, workload.Mix1090},
		{"1-thr 10% Ins - TSX", func() Scheme {
			return CuckooPlusTSX("", htm.PolicyTuned, core.SearchBFS, true)
		}, 1, workload.Mix1090},
	}
	for _, cfg := range configs {
		row := Row{Name: cfg.name}
		for _, vw := range valueWords {
			slots := budgetWords / uint64(1+vw)
			if slots < 1024 {
				slots = 1024
			}
			tab := cfg.scheme().New(slots, vw, cfg.threads, sc.Seed)
			res := Fill(tab, FillSpec{
				Threads: cfg.threads, Mix: cfg.mix,
				TargetLoad: 0.90, Slots: slots, Seed: sc.Seed,
			})
			row.Values = append(row.Values, res.Overall)
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("paper shape: elision wins at small values, loses to fine-grained locking near 1 KB (capacity/conflict footprint grows with the value)")
	return r
}

// Eq1 compares the measured path-invalidation rate against the analytic
// upper bound Pinvalid_max = 1 - ((N-L)/N)^(L(T-1)).
func Eq1(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:      "eq1",
		Title:   fmt.Sprintf("Path invalidation probability, %d writers", threads),
		Columns: []string{"analytic max", "measured", "max path L"},
	}
	for _, mode := range []core.SearchMode{core.SearchDFS, core.SearchBFS} {
		o := core.Defaults(sc.Slots)
		o.Seed = sc.Seed
		o.Search = mode
		tab := core.MustNewTable(o)
		// Concurrent fill to 95% so most inserts need a path.
		var wg sync.WaitGroup
		quota := uint64(0.95*float64(tab.Cap())) / uint64(threads)
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				gen := workload.NewUniformKeys(sc.Seed, th)
				for i := uint64(0); i < quota; i++ {
					if err := tab.Insert(gen.NextKey(), i); err != nil {
						return
					}
				}
			}(th)
		}
		wg.Wait()
		st := tab.Stats()
		measured := 0.0
		if st.Searches > 0 {
			measured = float64(st.PathRestarts) / float64(st.Searches)
		}
		n := float64(tab.Cap())
		l := float64(st.MaxPathLen)
		analytic := 1 - math.Pow((n-l)/n, l*float64(threads-1))
		name := "BFS"
		if mode == core.SearchDFS {
			name = "DFS"
		}
		r.AddRow(name, analytic, measured, l)
	}
	r.AddNote("Eq. 1 is an upper bound assuming all paths at max length; measured rates must fall below it")
	return r
}

// Eq2 compares measured maximum BFS path lengths against the closed form
// L = ceil(log_B(M/2 - M/2B + 1)).
func Eq2(sc Scale) *Report {
	const m = 2000
	r := &Report{
		ID:      "eq2",
		Title:   "BFS maximum cuckoo-path length, M=2000",
		Columns: []string{"Eq.2 bound", "measured max"},
	}
	for _, assoc := range []int{2, 4, 8, 16} {
		o := core.Defaults(sc.Slots / 4)
		o.Assoc = assoc
		buckets := uint64(2)
		for buckets*uint64(assoc) < sc.Slots/4 {
			buckets <<= 1
		}
		o.Buckets = buckets
		o.MaxSearchSlots = m
		o.Seed = sc.Seed
		tab := core.MustNewTable(o)
		gen := workload.NewSequentialKeys(1)
		for {
			if err := tab.Insert(gen.NextKey(), 0); err != nil {
				break
			}
		}
		bound := core.MaxBFSPathLen(assoc, m)
		r.AddRow(fmt.Sprintf("B=%d", assoc), float64(bound), float64(tab.Stats().MaxPathLen))
	}
	r.AddNote("paper: B=4 gives L_BFS=5 vs 250 for two-way DFS")
	return r
}

// Naive reproduces the §2.3 narrative numbers: 1-thread vs 8-thread insert
// throughput and abort rates for naive global locking and glibc elision.
func Naive(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:      "naive",
		Title:   "Naive concurrency control (§2.3)",
		Unit:    "Mops/s",
		Columns: []string{"1-thread", fmt.Sprintf("%d-thread", threads), "abort rate", "fallback frac"},
	}
	slots := sc.Fig2Keys * 8
	schemes := []Scheme{
		Memc3(4),
		Memc3TSX("cuckoo w/ TSX-glibc", htm.PolicyGlibc, 4),
		LockWrapped("dense w/ lock", Dense()),
		DenseTSX("dense w/ TSX-glibc", htm.PolicyGlibc),
		LockWrapped("unordered w/ lock", Unordered()),
		UnorderedTSX("unordered w/ TSX-glibc", htm.PolicyGlibc),
	}
	for _, s := range schemes {
		run := func(th int) RunResult {
			tab := s.New(slots, 1, th, sc.Seed)
			return Fill(tab, FillSpec{
				Threads: th, Mix: workload.InsertOnly,
				TargetLoad: float64(sc.Fig2Keys) / float64(slots),
				Slots:      slots, Seed: sc.Seed,
			})
		}
		one := run(1)
		many := run(threads)
		abortRate, fallbackFrac := math.NaN(), math.NaN()
		if many.Tx != nil {
			abortRate = many.Tx.AbortRate()
			if c := many.Tx.Commits + many.Tx.Fallbacks; c > 0 {
				fallbackFrac = float64(many.Tx.Fallbacks) / float64(c)
			}
		}
		r.AddRow(s.Name, one.Overall, many.Overall, abortRate, fallbackFrac)
	}
	r.AddNote("paper: multi-thread < single-thread for all; elision > lock but still < 1 thread; abort rates above 80%% in hardware")
	return r
}

// Probes exercises the observability probe layer end to end: it fills a
// table with concurrent writers and reports the signals the probes collect
// along the way — the BFS path-length distribution (what the Eq. 2 bound
// caps), the stripe-lock contention counters, and the displacement totals.
// The same counters back the daemon's /metrics endpoint.
func Probes(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:      "probes",
		Title:   fmt.Sprintf("Probe-layer signals, %d writers filling to 95%%", threads),
		Columns: []string{"value"},
	}
	o := core.Defaults(sc.Slots)
	o.Seed = sc.Seed
	tab := core.MustNewTable(o)
	var wg sync.WaitGroup
	quota := uint64(0.95*float64(tab.Cap())) / uint64(threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			gen := workload.NewUniformKeys(sc.Seed, th)
			for i := uint64(0); i < quota; i++ {
				if err := tab.Insert(gen.NextKey(), i); err != nil {
					return
				}
			}
		}(th)
	}
	wg.Wait()
	st := tab.Stats()
	ls := tab.LockStats()
	r.AddRow("searches", float64(st.Searches))
	r.AddRow("displacements", float64(st.Displacements))
	r.AddRow("path_restarts", float64(st.PathRestarts))
	r.AddRow("max_path_len", float64(st.MaxPathLen))
	r.AddRow("lock_acquisitions", float64(ls.Acquisitions))
	r.AddRow("lock_contended", float64(ls.Contended))
	r.AddRow("lock_yields", float64(ls.Yields))
	r.AddRow("lock_contention_rate", ls.ContentionRate())
	hist := ""
	for i, n := range st.PathLenHist {
		if n > 0 {
			hist += fmt.Sprintf(" len%d:%d", i, n)
		}
	}
	r.AddNote("path-length histogram:%s", hist)
	r.AddNote("paper shape: path lengths concentrate at 0-1 with a tail bounded by Eq. 2; contention rate stays low because stripes outnumber writers")
	return r
}

// SortRowsByValue orders a report's rows by their first value descending
// (used by fig1-style "best of" reports).
func (r *Report) SortRowsByValue() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		return r.Rows[i].Values[0] > r.Rows[j].Values[0]
	})
}
