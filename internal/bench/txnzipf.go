package bench

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"cuckoohash/internal/metrics"
	"cuckoohash/internal/spinlock"
	"cuckoohash/internal/txn"
	"cuckoohash/internal/workload"
)

// txnKV is a lock-guarded map backing store for the transaction-layer
// benchmark. A single lock is deliberate: it stands in for the shard the
// daemon serializes on, and both variants pay it identically — the
// difference under measurement is how often each variant reaches the
// store at all (every op on the naive path, once per reconcile on the
// split path). It is a spinlock because the store is reached from
// seqlock read windows and with key stripes held, where parking on a
// sync.Mutex is forbidden (blockcheck), exactly like the real cacheKV.
type txnKV struct {
	mu spinlock.Mutex
	m  map[string]string
}

func newTxnKV() *txnKV { return &txnKV{m: make(map[string]string)} }

func (k *txnKV) Load(key string) (string, bool) {
	k.mu.Lock()
	v, ok := k.m[key]
	k.mu.Unlock()
	return v, ok
}

func (k *txnKV) Store(key, val string, expireAt int64, keepTTL bool) error {
	k.mu.Lock()
	k.m[key] = val
	k.mu.Unlock()
	return nil
}

func (k *txnKV) Delete(key string) bool {
	k.mu.Lock()
	_, ok := k.m[key]
	delete(k.m, key)
	k.mu.Unlock()
	return ok
}

// TxnZipf measures the cuckootxn subsystem (docs/TRANSACTIONS.md) on the
// workload it exists for: INCR under heavy zipf skew (s = 1.2), where a
// handful of hot counters absorb most of the stream and every naive
// locked increment serializes on one stripe plus a parse/format/store
// round-trip. The split variant promotes the hot ranks to Doppel-style
// per-shard delta slots, so a hot INCR becomes a shard-local add with no
// store access until reconcile. The acceptance bar for the subsystem is
// split >= 3x naive at s = 1.2.
//
// A second section drives 2-op MULTI...EXEC transactions over the same
// hot keys to show the OCC engine's abort behaviour stays bounded: the
// retry histogram (the same series /metrics exports as
// cuckood_txn_retries) is reported in the notes.
func TxnZipf(sc Scale) *Report {
	const (
		zipfS    = 1.2
		universe = 1 << 10
		hotRanks = 64 // promoted to split mode; covers most of the zipf head
	)
	r := &Report{
		ID:    "txnzipf",
		Title: fmt.Sprintf("Hot-counter INCR, zipf s=%.1f over %d keys: naive locked vs split", zipfS, universe),
		Unit:  "Mops/s",
		Columns: []string{
			"naive", "split", "speedup",
		},
	}

	// Key strings and per-thread rank streams are materialized up front so
	// the timed loop measures the two INCR paths, not zipf sampling or key
	// formatting (both variants would pay those identically).
	keys := make([]string, universe)
	for rank := range keys {
		keys[rank] = "ctr" + strconv.Itoa(rank)
	}
	key := func(rank uint64) string { return keys[rank%universe] }
	perThread := sc.LookupOps
	maxThreads := sc.Threads[len(sc.Threads)-1]
	streams := make([][]uint32, maxThreads)
	headStreams := make([][]uint32, maxThreads) // the same draws, hot head only
	var hotShare float64
	for th := range streams {
		gen := workload.NewZipfSKeys(sc.Seed+uint64(th), universe, zipfS)
		s := make([]uint32, perThread)
		head := make([]uint32, 0, perThread)
		for i := range s {
			s[i] = uint32(gen.Rank())
			if s[i] < hotRanks {
				hotShare++
				head = append(head, s[i])
			}
		}
		streams[th] = s
		headStreams[th] = head
	}
	hotShare /= float64(uint64(maxThreads) * perThread)

	run := func(threads int, split bool, streams [][]uint32) (mops float64, st *txn.Store) {
		kv := newTxnKV()
		cfg := txn.Config{}
		if !split {
			cfg.PromoteAfter = -1 // splitting disabled: every INCR takes the stripe
		}
		st = txn.New(kv, cfg)
		if split {
			for rank := 0; rank < hotRanks; rank++ {
				st.Promote(keys[rank])
			}
		}
		ops := metrics.NewOpCounter(threads)
		var wg sync.WaitGroup
		start := time.Now()
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				stream := streams[th]
				var my uint64
				for _, rank := range stream {
					if err := st.Incr(keys[rank], 1, uint64(th)); err != nil {
						return
					}
					my++
					if my >= 256 {
						ops.Add(th, my)
						my = 0
					}
				}
				ops.Add(th, my)
			}(th)
		}
		wg.Wait()
		// Reconcile inside the timed region: the split variant does not get
		// to leave its deltas unfolded.
		st.ReconcileAll()
		elapsed := time.Since(start)

		// Exactness audit: every acknowledged INCR must be in the fold.
		var sum, want uint64
		for rank := 0; rank < universe; rank++ {
			if v, ok := kv.Load(keys[rank]); ok {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					panic("txnzipf: counter " + keys[rank] + " holds non-integer " + v)
				}
				sum += n
			}
		}
		want = ops.Total()
		if sum != want {
			panic(fmt.Sprintf("txnzipf: reconciled sum %d != %d acknowledged INCRs", sum, want))
		}
		return metrics.Throughput(want, elapsed), st
	}

	for _, th := range sc.Threads {
		naive, _ := run(th, false, streams)
		splitM, st := run(th, true, streams)
		speedup := 0.0
		if naive > 0 {
			speedup = splitM / naive
		}
		r.AddRow(fmt.Sprintf("%d-thr mixed", th), naive, splitM, speedup)
		if th == sc.Threads[len(sc.Threads)-1] {
			s := st.StatsSnapshot()
			r.AddNote("zipf head: top %d of %d ranks absorb %.0f%% of the stream; split @%dthr: split_ops=%d, reconciles=%d, hot_keys=%d",
				hotRanks, universe, 100*hotShare, th, s.SplitOps, s.Reconciles, s.HotKeys)
		}
	}
	// The headline comparison: the same draws restricted to the hot head —
	// the keys the split machinery actually owns. The cold tail runs the
	// identical stripe path in both variants, so the mixed rows dilute the
	// per-op difference by the tail share; these rows isolate it.
	for _, th := range sc.Threads {
		naive, _ := run(th, false, headStreams)
		splitM, _ := run(th, true, headStreams)
		speedup := 0.0
		if naive > 0 {
			speedup = splitM / naive
		}
		r.AddRow(fmt.Sprintf("%d-thr hot head", th), naive, splitM, speedup)
	}

	occNotes(r, sc, universe, zipfS, key)
	r.AddNote("exactness audited per run: reconciled counter sum == acknowledged INCRs")
	r.AddNote("acceptance: split >= 3x naive on the hot head at s=1.2 (split INCR is a shard-local add; naive pays stripe + parse/format/store per op)")
	r.AddNote("single-core hosts measure per-op cost only; with real parallelism the naive side also serializes every hot INCR on one stripe word, compounding the split advantage (Doppel)")
	return r
}

// occNotes drives 2-op MULTI…EXEC transactions over the zipf head with
// all writers sharing a few stripes, then records the OCC engine's
// commit/abort/fallback counts and retry histogram.
func occNotes(r *Report, sc Scale, universe uint64, zipfS float64, key func(uint64) string) {
	threads := sc.Threads[len(sc.Threads)-1]
	st := txn.New(newTxnKV(), txn.Config{PromoteAfter: -1})
	perThread := sc.LookupOps / 8
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			gen := workload.NewZipfSKeys(sc.Seed+uint64(100+th), universe, zipfS)
			for i := uint64(0); i < perThread; i++ {
				a, b := gen.Rank(), gen.Rank()
				st.Exec([]txn.Op{
					{Kind: txn.OpIncr, Key: key(a), Delta: 1},
					{Kind: txn.OpGet, Key: key(b)},
				})
			}
		}(th)
	}
	wg.Wait()
	s := st.StatsSnapshot()
	abortRate := 0.0
	if s.Commits > 0 {
		abortRate = float64(s.Aborts) / float64(s.Commits)
	}
	r.AddNote("OCC 2-op MULTI @%dthr on the same skew: commits=%d aborts=%d (%.3f/commit) fallbacks=%d",
		threads, s.Commits, s.Aborts, abortRate, s.Fallbacks)
	r.AddNote("OCC retry histogram (exported as cuckood_txn_retries; last bucket = pessimistic fallback): %v", s.RetryHist)
}
