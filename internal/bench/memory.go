package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cuckoohash/internal/chained"
	"cuckoohash/internal/core"
	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/metrics"
	"cuckoohash/internal/openaddr"
	"cuckoohash/internal/workload"
)

// Memory reproduces the paper's memory-efficiency claim (§6.2 / Fig. 6
// caption): for small key-value items the chained TBB-style table uses
// "2× to 3× more memory than cuckoo hash table" (6 GB vs 2 GB at paper
// scale). We measure both the analytic footprint of each table's data
// structures and the Go heap delta from actually building them.
func Memory(sc Scale) *Report {
	r := &Report{
		ID:      "memory",
		Title:   "Memory per entry at 95% (cuckoo) / presized (others)",
		Unit:    "bytes/entry",
		Columns: []string{"analytic B/entry", "heap B/entry", "ratio vs cuckoo+"},
	}
	n := sc.Slots * 95 / 100

	type build struct {
		name string
		// fill builds and loads the table; keep holds it live so the heap
		// delta can be read before the GC reclaims it.
		fill func() (analytic uint64, entries uint64, keep any)
	}
	builds := []build{
		{"cuckoo+ (8-way)", func() (uint64, uint64, any) {
			o := core.Defaults(sc.Slots)
			o.Seed = sc.Seed
			tab := core.MustNewTable(o)
			gen := workload.NewSequentialKeys(1)
			for i := uint64(0); i < n; i++ {
				if err := tab.Insert(gen.NextKey(), i); err != nil {
					break
				}
			}
			analytic := tab.Cap()*16 + tab.Buckets()*4 + uint64(o.Stripes)*8
			return analytic, tab.Len(), tab
		}},
		{"TBB chained", func() (uint64, uint64, any) {
			o := chained.Defaults(n, true)
			o.Seed = sc.Seed
			m := chained.MustNew(o)
			gen := workload.NewSequentialKeys(1)
			for i := uint64(0); i < n; i++ {
				m.Put(gen.NextKey(), i)
			}
			return m.MemoryFootprint(), m.Len(), m
		}},
		{"dense_hash_map", func() (uint64, uint64, any) {
			m := openaddr.New(2*n, sc.Seed, 0.5, false)
			gen := workload.NewSequentialKeys(1)
			for i := uint64(0); i < n; i++ {
				if err := m.Put(gen.NextKey(), i); err != nil {
					break
				}
			}
			return m.MemoryFootprint(), m.Len(), m
		}},
	}

	var cuckooPer float64
	for _, b := range builds {
		heapBefore := heapInUse()
		analytic, entries, keep := b.fill()
		heapAfter := heapInUse()
		runtime.KeepAlive(keep)
		if entries == 0 {
			continue
		}
		analyticPer := float64(analytic) / float64(entries)
		heapPer := float64(int64(heapAfter)-int64(heapBefore)) / float64(entries)
		if heapPer < 0 {
			heapPer = 0 // unrelated allocations were reclaimed mid-measurement
		}
		if cuckooPer == 0 {
			cuckooPer = analyticPer
		}
		r.AddRow(b.name, analyticPer, heapPer, analyticPer/cuckooPer)
	}
	r.AddNote("paper: TBB used 2-3x more memory (6 GB vs cuckoo's 2 GB) for 8 B/8 B items")
	return r
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Latency measures per-operation latency distributions for the cuckoo+
// table at moderate and high occupancy — the paper reports throughput
// only, but "Lookup operations are both fast and predictable, always
// checking 2B keys" (§4.1) is fundamentally a tail-latency claim, so the
// harness records it.
func Latency(sc Scale) *Report {
	r := &Report{
		ID:      "latency",
		Title:   "Per-op latency (cuckoo+ fine-grained, 1 thread)",
		Unit:    "ns",
		Columns: []string{"p50", "p99", "p99.9", "mean"},
	}
	o := core.Defaults(sc.Slots)
	o.Seed = sc.Seed
	tab := core.MustNewTable(o)
	gen := workload.NewSequentialKeys(1)

	measure := func(name string, op func(i uint64)) {
		var h metrics.Histogram
		const samples = 200_000
		for i := uint64(0); i < samples; i++ {
			t0 := time.Now()
			op(i)
			h.Record(uint64(time.Since(t0)))
		}
		r.AddRow(name,
			float64(h.Quantile(0.50)),
			float64(h.Quantile(0.99)),
			float64(h.Quantile(0.999)),
			h.Mean(),
		)
	}

	// Fill to 50%, measure, then to 95%, measure again.
	half := tab.Cap() / 2
	for tab.Len() < half {
		if err := tab.Insert(gen.NextKey(), 0); err != nil {
			break
		}
	}
	keysAtHalf := tab.Len()
	measure("lookup @0.50", func(i uint64) { tab.Lookup(i%keysAtHalf + 1) })
	measure("insert @0.50", func(i uint64) {
		k := uint64(1)<<40 | i
		_ = tab.Insert(k, 0)
		tab.Delete(k) // keep occupancy stable across samples
	})

	target := tab.Cap() * 94 / 100
	for tab.Len() < target {
		if err := tab.Insert(gen.NextKey(), 0); err != nil {
			break
		}
	}
	keysAtFull := tab.Len()
	measure("lookup @0.94", func(i uint64) { tab.Lookup(i%keysAtFull + 1) })
	measure("insert @0.94", func(i uint64) {
		k := uint64(1)<<41 | i
		_ = tab.Insert(k, 0)
		tab.Delete(k) // keep occupancy stable
	})
	r.AddNote("lookup tail should stay flat across occupancy (bounded 2B-slot scans); insert tail grows with path length")
	return r
}

// Zipf is an extension experiment beyond the paper's uniform workloads:
// under a skewed (zipfian) key popularity the hot keys concentrate on a few
// buckets, which stresses the stripe locks of cuckoo+ and the bucket locks
// of the chained table differently. The paper's uniform methodology hides
// this; real caches are zipfian, so the harness measures it.
func Zipf(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	r := &Report{
		ID:      "zipf",
		Title:   fmt.Sprintf("Zipf(0.99) upsert+lookup, %d threads", threads),
		Unit:    "Mops/s",
		Columns: []string{"uniform", "zipf-0.99"},
	}
	universe := sc.Slots / 2

	for _, s := range []Scheme{CuckooPlusFG(), TBB()} {
		row := Row{Name: s.Name}
		for _, skewed := range []bool{false, true} {
			tab := s.New(sc.Slots, 1, threads, sc.Seed)
			ops := metrics.NewOpCounter(threads)
			var wg sync.WaitGroup
			start := time.Now()
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					var gen workload.KeyGen
					if skewed {
						gen = workload.NewZipfKeys(sc.Seed+uint64(th), universe, 0.99)
					} else {
						gen = uniformUniverse{rnd: workload.NewRand(sc.Seed + uint64(th)), n: universe}
					}
					rnd := workload.NewRand(uint64(th) + 11)
					var my uint64
					perThread := sc.LookupOps
					for i := uint64(0); i < perThread; i++ {
						k := gen.ExistingKey()
						if rnd.Intn(2) == 0 {
							// Upsert so repeated hot keys are overwrites,
							// not ErrExists churn.
							if err := upsert(tab, k, i); err != nil {
								return
							}
						} else {
							tab.Lookup(k)
						}
						my++
						if my >= 256 {
							ops.Add(th, my)
							my = 0
						}
					}
					ops.Add(th, my)
				}(th)
			}
			wg.Wait()
			row.Values = append(row.Values, metrics.Throughput(ops.Total(), time.Since(start)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("extension (not in the paper): skew concentrates writers onto few stripes/buckets")
	return r
}

// upsert adapts schemes without a dedicated upsert to overwrite semantics.
func upsert(tab KV, k, v uint64) error {
	err := tab.Insert(k, v)
	if err == errStop {
		return err
	}
	return nil // ErrExists means the key is hot: treated as an overwrite hit
}

// uniformUniverse draws uniformly over the same key universe the zipf
// generator uses, so the comparison differs only in skew.
type uniformUniverse struct {
	rnd *workload.Rand
	n   uint64
}

func (u uniformUniverse) NextKey() uint64     { return u.ExistingKey() }
func (u uniformUniverse) ExistingKey() uint64 { return hashfn.SplitMix64(u.rnd.Intn(u.n)) }
