package bench

import (
	"runtime"
	"strconv"
	"time"

	"cuckoohash/server"
)

// HotAlloc measures steady-state heap allocations per operation on the
// daemon's GET/SET fast paths through the public Cache API. It is the
// dynamic twin of the static allocfree proof: cuckoovet proves the
// //cuckoo:hotpath roots (GetBytesTraced, generic.GetBytes, the wire
// dispatch) cannot reach an allocation site, and this cell shows the
// proof holds at runtime — a byte-key GET, hit or miss, is 0 allocs/op,
// while the legacy per-op string([]byte) conversion pays one allocation
// on every request.
func HotAlloc(sc Scale) *Report {
	// Keep the key universe well under capacity so the prefill never
	// triggers eviction (Set evicts instead of erroring when full) —
	// every "hit" key must actually be resident.
	universe := sc.Slots / 8
	if universe > 1<<12 {
		universe = 1 << 12
	}
	r := &Report{
		ID:      "hotalloc",
		Title:   "Hot-path heap allocations per operation (GET/SET steady state)",
		Columns: []string{"allocs/op", "ns/op"},
	}

	shards := 4
	c, err := server.NewCache(shards, sc.Slots/uint64(shards))
	if err != nil {
		panic("hotalloc: " + err.Error())
	}
	keys := make([]string, universe)
	byteKeys := make([][]byte, universe)
	missKeys := make([][]byte, universe)
	for i := range keys {
		keys[i] = "hot" + strconv.Itoa(i)
		byteKeys[i] = []byte(keys[i])
		missKeys[i] = []byte("absent" + strconv.Itoa(i))
		if err := c.Set(keys[i], "value-"+strconv.Itoa(i), 0); err != nil {
			panic("hotalloc prefill: " + err.Error())
		}
	}

	ops := sc.LookupOps
	if ops < 1<<14 {
		ops = 1 << 14
	}
	// measure runs fn ops times on one goroutine and returns the heap
	// allocation count and wall time per op. A warmup pass lets lazy
	// one-time allocations (shard stats, promote tracking) fire outside
	// the measured window, so the numbers are the steady state.
	measure := func(fn func(i uint64)) (allocs, nsop float64) {
		for i := uint64(0); i < 1024; i++ {
			fn(i)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := uint64(0); i < ops; i++ {
			fn(i)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(ops),
			float64(elapsed.Nanoseconds()) / float64(ops)
	}

	rows := []struct {
		name string
		fn   func(i uint64)
	}{
		{"GET hit, byte key (wire path)", func(i uint64) {
			if _, ok := c.GetBytesTraced(byteKeys[i%universe], nil); !ok {
				panic("hotalloc: unexpected miss")
			}
		}},
		{"GET miss, byte key (wire path)", func(i uint64) {
			if _, ok := c.GetBytesTraced(missKeys[i%universe], nil); ok {
				panic("hotalloc: unexpected hit")
			}
		}},
		{"GET hit, owned string key", func(i uint64) {
			c.Get(keys[i%universe])
		}},
		{"GET hit, string([]byte) per op (legacy)", func(i uint64) {
			c.Get(string(byteKeys[i%universe]))
		}},
		{"SET overwrite, owned strings", func(i uint64) {
			if err := c.Set(keys[i%universe], "value-x", 0); err != nil {
				panic("hotalloc: " + err.Error())
			}
		}},
	}
	for _, row := range rows {
		allocs, nsop := measure(row.fn)
		r.AddRow(row.name, allocs, nsop)
	}

	r.AddNote("acceptance: byte-key GET (the path every network request takes) is 0 allocs/op, hit and miss; the legacy string([]byte) conversion pays ~1 alloc/op")
	r.AddNote("statically verified: cuckoovet's allocfree analyzer proves the //cuckoo:hotpath roots allocation-free over the whole call graph (docs/ANALYSIS.md)")
	r.AddNote("server/hotalloc_test.go asserts the same bound over the full wire round trip (parse + dispatch + reply) with testing.AllocsPerRun")
	return r
}
