package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"cuckoohash/generic"
)

// stwTable is the pre-incremental resize strategy, preserved here as the
// benchmark baseline: readers and writers share an RWMutex, and a full
// table is grown by taking the write lock, allocating a doubled table,
// and reinserting every entry while every other operation waits. This is
// exactly what generic.Table did before the two-generation migrator
// (docs/DESIGN.md, "stop-the-world events"), so growpause measures the
// old path against the new one on identical workloads.
type stwTable struct {
	mu       sync.RWMutex
	tab      *generic.Table[uint64, uint64]
	capSlots uint64
	rebuilds uint64
}

func newSTWTable(initial uint64) *stwTable {
	t, err := generic.New[uint64, uint64](generic.Config{
		InitialCapacity:        initial,
		DisableAutoGrow:        true,
		DisableBackgroundSweep: true,
	})
	if err != nil {
		panic(err)
	}
	return &stwTable{tab: t, capSlots: initial}
}

func (s *stwTable) insert(key, val uint64) {
	for {
		s.mu.RLock()
		err := s.tab.Insert(key, val)
		s.mu.RUnlock()
		if err == nil {
			return
		}
		if err != generic.ErrFull {
			panic(err)
		}
		s.rebuild()
	}
}

// rebuild is the stop-the-world grow: everything blocks behind the write
// lock while the whole table is copied. A racing thread that also saw
// ErrFull re-checks under the lock so the table is not doubled twice for
// one fill level.
func (s *stwTable) rebuild() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tab.LoadFactor() < 0.5 {
		return // another thread already rebuilt
	}
	next, err := generic.New[uint64, uint64](generic.Config{
		InitialCapacity:        s.capSlots * 2,
		DisableAutoGrow:        true,
		DisableBackgroundSweep: true,
	})
	if err != nil {
		panic(err)
	}
	s.tab.Range(func(k, v uint64) bool {
		if err := next.Insert(k, v); err != nil {
			panic(err)
		}
		return true
	})
	s.tab = next
	s.capSlots *= 2
	s.rebuilds++
}

// latStats reduces a latency sample to the two numbers growpause reports.
func latStats(lats []time.Duration) (maxUS, p99US float64) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	maxUS = float64(lats[len(lats)-1]) / float64(time.Microsecond)
	p99US = float64(lats[len(lats)*99/100]) / float64(time.Microsecond)
	return
}

// GrowPause measures the client-visible cost of table resizing: N unique
// inserts into a deliberately undersized table (several doublings deep),
// with every single operation timed. Under the stop-the-world baseline
// the unlucky insert that triggers a grow pays for rebuilding the entire
// table — and under contention every concurrent operation queues behind
// it — so the max single-op latency tracks the table size. Under the
// incremental path (generic.Table as shipped) the same grow is a pointer
// flip plus a bounded per-op migration batch, so the max op stays within
// a constant factor of an ordinary insert. The background sweeper is
// disabled on the incremental side: all migration work is charged to the
// timed operations, which is the worst case for the new path.
//
// Acceptance (docs/ROBUSTNESS.md): incremental max single-op latency at
// least 10x below stop-the-world at the deepest doubling.
func GrowPause(sc Scale) *Report {
	// The pause under measurement scales with the table, so the run is
	// floored at 1M slots even at -scale small: at toy sizes the deepest
	// rebuild is a few ms and scheduler jitter on a small host drowns
	// the comparison.
	slots := sc.Slots
	if slots < 1<<20 {
		slots = 1 << 20
	}
	n := slots / 2        // entries inserted: final load ~50% of slots
	initial := slots / 64 // six doublings to get there
	r := &Report{
		ID: "growpause",
		Title: fmt.Sprintf("Resize pause, %d inserts from %d slots: stop-the-world vs incremental",
			n, initial),
		Unit:    "µs",
		Columns: []string{"stw max", "incr max", "reduction", "stw p99", "incr p99"},
	}

	runSTW := func(threads int) ([]time.Duration, uint64) {
		runtime.GC() // don't charge the previous run's garbage to a timed op
		t := newSTWTable(initial)
		lats := timedInserts(threads, n, func(key uint64) { t.insert(key, key) })
		return lats, t.rebuilds
	}
	runIncr := func(threads int) ([]time.Duration, uint64) {
		runtime.GC() // don't charge the STW run's garbage to a timed op
		t, err := generic.New[uint64, uint64](generic.Config{
			InitialCapacity:        initial,
			DisableBackgroundSweep: true, // charge all migration to the timed ops
		})
		if err != nil {
			panic(err)
		}
		lats := timedInserts(threads, n, func(key uint64) {
			if err := t.Insert(key, key); err != nil {
				panic(err)
			}
		})
		if t.Growing() {
			t.MigrateBatch(int(slots)) // drain any tail before the audit
		}
		if got := t.Len(); got != n {
			panic(fmt.Sprintf("growpause: %d entries after %d inserts", got, n))
		}
		return lats, t.Stats().Grows
	}

	// The contended row only means something with real parallelism: on a
	// single-CPU host a preempted stripe holder turns every spin-waiting
	// goroutine into scheduler noise and the row measures the runtime,
	// not the table.
	thRows := []int{1}
	if last := sc.Threads[len(sc.Threads)-1]; last > 1 && runtime.GOMAXPROCS(0) > 1 {
		thRows = append(thRows, last)
	} else {
		r.AddNote("multi-thread row omitted: GOMAXPROCS=1 (spinlock convoying under forced preemption would measure the scheduler); the grow-under-load behaviour is covered by TestChaosGrowUnderLoad")
	}
	for _, th := range thRows {
		stwLats, rebuilds := runSTW(th)
		incrLats, grows := runIncr(th)
		stwMax, stwP99 := latStats(stwLats)
		incrMax, incrP99 := latStats(incrLats)
		reduction := 0.0
		if incrMax > 0 {
			reduction = stwMax / incrMax
		}
		r.AddRow(fmt.Sprintf("%d-thr insert", th), stwMax, incrMax, reduction, stwP99, incrP99)
		if th == 1 {
			r.AddNote("doublings per run: stop-the-world rebuilds=%d, incremental grows=%d", rebuilds, grows)
		}
	}
	r.AddNote("incremental side runs with the background sweeper disabled: every migrated bucket is charged to a timed insert (worst case for the new path)")
	r.AddNote("acceptance: incremental max single-op latency >= 10x below stop-the-world (the rebuild pause scales with table size; a migration batch does not)")
	return r
}

// timedInserts drives n unique inserts across threads (disjoint key
// ranges) and returns every operation's individually clocked latency.
func timedInserts(threads int, n uint64, insert func(key uint64)) []time.Duration {
	per := n / uint64(threads)
	out := make([][]time.Duration, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			lo := uint64(th) * per
			hi := lo + per
			if th == threads-1 {
				hi = n
			}
			lats := make([]time.Duration, 0, hi-lo)
			for key := lo; key < hi; key++ {
				t0 := time.Now()
				insert(key)
				lats = append(lats, time.Since(t0))
			}
			out[th] = lats
		}(th)
	}
	wg.Wait()
	var all []time.Duration
	for _, l := range out {
		all = append(all, l...)
	}
	return all
}
