package bench

import (
	"fmt"
	"sync"
	"time"

	"cuckoohash/internal/core"
	"cuckoohash/internal/metrics"
	"cuckoohash/internal/workload"
)

// Churn measures steady-state delete+insert pairs at fixed high occupancy —
// the usage mode §6.3 singles out: "Others may issue inserts and deletes to
// a table at high occupancy, thus caring more about 90%-95% insert
// throughput". Unlike the fill experiments, occupancy here is stationary,
// so every insert pays the high-occupancy path-search price indefinitely.
func Churn(sc Scale) *Report {
	threads := sc.Threads[len(sc.Threads)-1]
	occupancies := []float64{0.50, 0.75, 0.90, 0.95}
	r := &Report{
		ID:    "churn",
		Title: fmt.Sprintf("Steady-state delete+insert churn, %d threads", threads),
		Unit:  "Mops/s",
	}
	for _, occ := range occupancies {
		r.Columns = append(r.Columns, fmt.Sprintf("@%.2f", occ))
	}

	schemes := []Scheme{
		CuckooPlusFG(),
		CuckooPlusVariant("cuckoo+ DFS", core.LockStriped, core.SearchDFS, false),
		TBB(),
	}
	for _, s := range schemes {
		row := Row{Name: s.Name}
		for _, occ := range occupancies {
			row.Values = append(row.Values, churnRun(s, sc, threads, occ))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("each op is one delete of an owned key plus one insert of a fresh key; occupancy is stationary")
	r.AddNote("paper shape: cuckoo+ BFS degrades gently toward 0.95; DFS falls off a cliff (long random walks)")
	return r
}

// churnRun prefills to the target occupancy, then measures delete+insert
// pairs on per-thread key populations.
func churnRun(s Scheme, sc Scale, threads int, occupancy float64) float64 {
	tab := s.New(sc.Slots, 1, threads, sc.Seed)

	// Per-thread populations, filled round-robin to the target.
	target := uint64(occupancy * float64(sc.Slots))
	perThread := target / uint64(threads)
	gens := make([]*workload.UniformKeys, threads)
	live := make([][]uint64, threads)
	for th := range gens {
		gens[th] = workload.NewUniformKeys(sc.Seed, th)
		live[th] = make([]uint64, 0, perThread)
		for i := uint64(0); i < perThread; i++ {
			k := gens[th].NextKey()
			if err := tab.Insert(k, i); err != nil {
				break
			}
			live[th] = append(live[th], k)
		}
	}

	opsPerThread := sc.LookupOps / 8
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	ops := metrics.NewOpCounter(threads)
	var wg sync.WaitGroup
	start := time.Now()
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rnd := workload.NewRand(sc.Seed ^ uint64(th)*131)
			mine := live[th]
			if len(mine) == 0 {
				return
			}
			var my uint64
			for i := uint64(0); i < opsPerThread; i++ {
				victim := rnd.Intn(uint64(len(mine)))
				tab.Delete(mine[victim])
				k := gens[th].NextKey()
				if err := tab.Insert(k, i); err != nil {
					// Full despite the delete (another thread's insert won
					// the slot): put the victim back next round and retry
					// with a different victim.
					continue
				}
				mine[victim] = k
				my += 2
				if my >= 64 {
					ops.Add(th, my)
					my = 0
				}
			}
			ops.Add(th, my)
		}(th)
	}
	wg.Wait()
	return metrics.Throughput(ops.Total(), time.Since(start))
}
