package bench

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cuckoohash/client"
	"cuckoohash/internal/cluster"
	"cuckoohash/server"
)

// ReplRead measures the two service-level claims of cuckoorepl
// (docs/REPLICATION.md) against real daemons on loopback TCP:
//
//   - Read scale-out: a replicated hot set is served by both of each
//     key's candidate nodes instead of its primary alone. Read capacity
//     is bounded by the hottest node's share of the stream, so the
//     figure reports that share for single-home vs spread reads and the
//     resulting scale-out factor (peak-capacity ratio, exactly 2x for a
//     two-choice mirror), alongside the measured wall-clock throughput
//     of each arm. On a single-core host the wall-clock columns measure
//     per-op cost only — client and both servers share the CPU — while
//     the capacity factor is what a multi-node deployment gains.
//
//   - Lease anti-herd: a miss storm of concurrent clients through
//     Pool.GetOrFill must collapse to ONE backend fill, where the naive
//     get-miss-fill-set loop fills once per client.
func ReplRead(sc Scale) *Report {
	const (
		hotN     = 16
		connsPer = 2  // client connections per participating node
		batch    = 64 // pipeline depth
		herd     = 32 // concurrent clients in the miss storm
	)
	r := &Report{
		ID:      "replread",
		Title:   fmt.Sprintf("Replicated hot-set reads (%d keys) and miss-lease herd (%d clients)", hotN, herd),
		Columns: []string{"Mops/s", "peak node share", "backend fills"},
	}

	a, b := startReplNode(), startReplNode()
	defer a.Close()
	defer b.Close()
	addrs := []string{a.Addr().String(), b.Addr().String()}
	for _, s := range []*server.Server{a, b} {
		if err := s.EnableReplication(addrs, sc.Seed, ""); err != nil {
			panic("replread: " + err.Error())
		}
	}
	ring, err := cluster.New(addrs, sc.Seed)
	if err != nil {
		panic("replread: " + err.Error())
	}

	// A hot set homed entirely on node a: the worst case for single-home
	// reads (one node absorbs everything) and exactly the case the
	// two-choice mirror halves.
	keys := make([]string, 0, hotN)
	for i := 0; len(keys) < hotN; i++ {
		k := fmt.Sprintf("hot%d", i)
		if pi, _ := ring.Candidates(k); pi == 0 {
			keys = append(keys, k)
		}
	}
	seedConn := dialBench(addrs[0])
	for _, k := range keys {
		if _, err := seedConn.SetV(k, "value-"+k, 0); err != nil {
			panic("replread seed: " + err.Error())
		}
	}
	seedConn.Close()
	waitReplDrain(a, b)

	ops := sc.LookupOps
	// Single-home: every read goes to the primary; only its capacity
	// (connsPer pipelined connections) is available.
	singleMops, singlePeak := readArm([]string{addrs[0]}, keys, connsPer, ops, batch)
	// Spread: reads alternate over both candidates; both nodes' capacity
	// serves the same hot set, each seeing half the stream.
	spreadMops, spreadPeak := readArm(addrs, keys, connsPer, ops, batch)
	r.AddRow("single-home reads", singleMops, singlePeak, math.NaN())
	r.AddRow("replicated spread reads", spreadMops, spreadPeak, math.NaN())
	r.AddRow("read scale-out factor (peak-capacity ratio)", singlePeak/spreadPeak, math.NaN(), math.NaN())
	r.AddNote("scale-out factor = single-home peak node share / spread peak node share: the hottest node serves half the stream, doubling the aggregate read capacity a node-bound deployment sustains")
	r.AddNote("wall-clock arms share one host (client + both servers); on a single-core machine they measure per-op cost, not parallel capacity")

	// Lease herd: one missing key, a storm of concurrent read-through
	// clients, a deliberately slow origin fill.
	naive := herdArm(addrs[0], "naive-miss", herd, false)
	leased := herdArm(addrs[0], "leased-miss", herd, true)
	r.AddRow(fmt.Sprintf("naive herd (%d clients)", herd), math.NaN(), math.NaN(), float64(naive))
	r.AddRow(fmt.Sprintf("leased herd (%d clients)", herd), math.NaN(), math.NaN(), float64(leased))
	if leased != 1 {
		panic(fmt.Sprintf("replread: leased herd ran %d backend fills, want exactly 1", leased))
	}
	r.AddNote("acceptance: spread reads engage both candidates (factor >= 2x single-home peak capacity); a %d-client miss storm through GetOrFill costs exactly 1 backend fill vs %d naive", herd, naive)
	return r
}

func startReplNode() *server.Server {
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        4,
		SlotsPerShard: 1 << 12,
		SweepInterval: -1,
	})
	if err != nil {
		panic("replread: " + err.Error())
	}
	if err := s.Listen(); err != nil {
		panic("replread: " + err.Error())
	}
	go s.Serve()
	return s
}

func dialBench(addr string) *client.Conn {
	c, err := client.Dial(addr)
	if err != nil {
		panic("replread dial: " + err.Error())
	}
	return c
}

func waitReplDrain(servers ...*server.Server) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		depth := 0
		for _, s := range servers {
			depth += s.ReplQueueDepth()
		}
		if depth == 0 {
			// One settle window for the batch already handed to the wire.
			time.Sleep(100 * time.Millisecond)
			return
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("replread: mirror logs never drained (%d queued)", depth))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readArm drives totalOps pipelined GETV reads of the hot set, spread
// round-robin over connsPer connections to each listed node, and
// returns the aggregate Mops/s plus the busiest node's share of the
// request stream (the quantity read capacity is bound by). Every read
// must hit: a miss means the mirror never converged, which is a
// harness bug worth a panic.
func readArm(nodeAddrs []string, keys []string, connsPer int, totalOps uint64, batch int) (mops, peakShare float64) {
	nconns := connsPer * len(nodeAddrs)
	perConn := totalOps / uint64(nconns)
	perNode := make([]atomic.Uint64, len(nodeAddrs))
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < nconns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			node := ci % len(nodeAddrs)
			conn := dialBench(nodeAddrs[node])
			defer conn.Close()
			done := uint64(0)
			for done < perConn {
				n := uint64(batch)
				if rem := perConn - done; n > rem {
					n = rem
				}
				for i := uint64(0); i < n; i++ {
					if err := conn.QueueGetV(keys[(done+i)%uint64(len(keys))]); err != nil {
						panic("replread queue: " + err.Error())
					}
				}
				reps, err := conn.Flush()
				if err != nil {
					panic("replread flush: " + err.Error())
				}
				for i := range reps {
					if !reps[i].Found {
						panic("replread: hot-set read missed; mirror never converged")
					}
				}
				perNode[node].Add(n)
				done += n
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := perConn * uint64(nconns)
	peak := uint64(0)
	for i := range perNode {
		if c := perNode[i].Load(); c > peak {
			peak = c
		}
	}
	return float64(total) / elapsed.Seconds() / 1e6, float64(peak) / float64(total)
}

// herdArm unleashes `herd` concurrent read-through clients on one
// missing key and returns how many backend fills the origin absorbed.
// leased=true goes through Pool.GetOrFill (the anti-herd protocol);
// false is the naive get-miss-fill-set loop every cache tutorial warns
// about.
func herdArm(addr, key string, herd int, leased bool) int64 {
	p := client.NewPool(addr, herd)
	defer p.Close()
	var fills atomic.Int64
	fill := func() (string, error) {
		fills.Add(1)
		time.Sleep(5 * time.Millisecond) // a slow origin widens the stampede window
		return "origin-value", nil
	}
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if leased {
				if _, err := p.GetOrFill(key, 0, false, fill); err != nil {
					panic("replread herd: " + err.Error())
				}
				return
			}
			if _, ok, err := p.Get1(key); err == nil && ok {
				return
			}
			v, _ := fill()
			if err := p.Set(key, v, 0); err != nil {
				panic("replread herd: " + err.Error())
			}
		}()
	}
	wg.Wait()
	return fills.Load()
}
