package bench

import (
	"math"
	"sync"
	"time"

	"cuckoohash/internal/htm"
	"cuckoohash/internal/metrics"
	"cuckoohash/internal/workload"
)

// RunResult is the outcome of one workload run against one table.
type RunResult struct {
	// Overall is the whole-run throughput in million requests/second.
	Overall float64
	// Windows maps "lo-hi" load-factor windows (e.g. "0.90-0.95") to the
	// throughput within them; empty unless the run requested windows.
	Windows map[string]float64
	// Ops is the total operation count.
	Ops uint64
	// Duration is the wall time of the measured phase.
	Duration time.Duration
	// Tx carries the emulated-HTM counters when the table runs under
	// elision, else nil.
	Tx *htm.Stats
}

// FillSpec describes a fill-with-mixed-operations run: threads generate a
// random mix of inserts and lookups (the paper's methodology, §6: "fills it
// to 95% capacity, with random mixed concurrent reads and writes as per the
// specified insert/lookup ratio"). Fresh inserted keys are unique and
// partitioned per thread; lookups target previously inserted keys.
type FillSpec struct {
	Threads int
	Mix     workload.Mix
	// TargetLoad stops the run when the table holds TargetLoad*Slots keys.
	TargetLoad float64
	// Slots is the slot count the load factor is measured against.
	Slots uint64
	// Seed makes the run deterministic.
	Seed uint64
	// WindowBounds requests throughput windows between consecutive load
	// factors (ascending). Example: [0, 0.75, 0.9, 0.95] yields windows
	// 0-0.75, 0.75-0.9, 0.9-0.95 plus any combination via Window().
	WindowBounds []float64
	// PreFill inserts this fraction of Slots single-threaded before the
	// measured phase (used to measure steady-state at high occupancy).
	PreFill float64
}

// Fill runs the spec against tab and reports throughput. The measured phase
// counts every operation (inserts and lookups).
func Fill(tab KV, spec FillSpec) RunResult {
	if spec.Threads <= 0 {
		spec.Threads = 1
	}
	if spec.TargetLoad <= 0 {
		spec.TargetLoad = 0.95
	}

	prefilled := uint64(0)
	if spec.PreFill > 0 {
		gen := workload.NewUniformKeys(spec.Seed^0xFEED, 1<<20) // reserved thread slice
		target := uint64(spec.PreFill * float64(spec.Slots))
		for prefilled < target {
			if err := tab.Insert(gen.NextKey(), prefilled); err != nil {
				break
			}
			prefilled++
		}
	}

	// Round up so the last load-factor threshold is actually crossed.
	targetKeys := uint64(math.Ceil(spec.TargetLoad * float64(spec.Slots)))
	if targetKeys <= prefilled {
		targetKeys = prefilled + 1
	}
	quota := (targetKeys - prefilled + uint64(spec.Threads) - 1) / uint64(spec.Threads)

	ops := metrics.NewOpCounter(spec.Threads)
	inserted := metrics.NewOpCounter(spec.Threads)

	var rec *metrics.IntervalRecorder
	if len(spec.WindowBounds) > 1 {
		rec = metrics.NewIntervalRecorder(spec.WindowBounds[1:])
	}

	start := time.Now()
	if rec != nil {
		rec.Start()
	}

	// Load-factor thresholds are detected deterministically by worker 0
	// from its own insert count: inserts are partitioned evenly, so after
	// worker 0's k-th insert the table holds ≈ prefilled + k*threads keys.
	// Wall-clock sampling cannot keep up with fast fills, and a shared
	// exact counter on the hot path would violate P1; the estimate's error
	// is bounded by inter-thread skew plus the 64-op flush granularity.
	var workers sync.WaitGroup
	for th := 0; th < spec.Threads; th++ {
		workers.Add(1)
		go func(th int) {
			defer workers.Done()
			keys := workload.NewUniformKeys(spec.Seed, th)
			opGen := workload.NewOpGen(spec.Mix, spec.Seed^uint64(th)<<17|1)
			var myOps, myInserts uint64
			flush := func() {
				ops.Add(th, myOps)
				inserted.Add(th, myInserts)
				myOps, myInserts = 0, 0
			}
			defer flush()
			for done := uint64(0); done < quota; {
				var isInsert bool
				if spec.Mix.InsertFrac >= 1 {
					isInsert = true
				} else {
					isInsert = opGen.Next() == workload.OpInsert
				}
				if isInsert {
					if err := tab.Insert(keys.NextKey(), done); err != nil {
						if err == errStop {
							return
						}
						// ErrExists etc. — count it and move on.
					}
					done++
					myInserts++
					if th == 0 && rec != nil {
						lf := float64(prefilled+done*uint64(spec.Threads)) / float64(spec.Slots)
						if rec.Due(lf) {
							flush()
							rec.Observe(lf, ops.Total())
						}
					}
				} else {
					tab.Lookup(keys.ExistingKey())
				}
				myOps++
				if myOps >= 64 {
					flush()
				}
			}
		}(th)
	}
	workers.Wait()
	elapsed := time.Since(start)

	res := RunResult{
		Overall:  metrics.Throughput(ops.Total(), elapsed),
		Ops:      ops.Total(),
		Duration: elapsed,
	}
	if rec != nil {
		res.Windows = map[string]float64{}
		for i := 0; i < len(spec.WindowBounds); i++ {
			for j := i + 1; j < len(spec.WindowBounds); j++ {
				lo, hi := spec.WindowBounds[i], spec.WindowBounds[j]
				if v, err := rec.Window(lo, hi); err == nil {
					res.Windows[windowKey(lo, hi)] = v
				}
			}
		}
	}
	if ts, ok := tab.(TxStatser); ok {
		s := ts.TxStats()
		res.Tx = &s
	}
	return res
}

func windowKey(lo, hi float64) string {
	return trimFloat(lo) + "-" + trimFloat(hi)
}

func trimFloat(f float64) string {
	s := make([]byte, 0, 6)
	s = append(s, '0'+byte(int(f)))
	frac := int(f*100+0.5) % 100
	s = append(s, '.', '0'+byte(frac/10), '0'+byte(frac%10))
	return string(s)
}

// LookupSpec describes a lookup-only run against a prefilled table.
type LookupSpec struct {
	Threads int
	// OpsPerThread lookups are issued per thread over the inserted keys.
	OpsPerThread uint64
	Seed         uint64
	// PreFillThread tells workers which key-generator slices were used to
	// fill, so lookups hit present keys.
	FillThreads int
}

// PreFill loads tab to targetLoad*slots using FillThreads generator slices
// and returns the per-slice insert counts (needed to generate hits).
func PreFill(tab KV, slots uint64, targetLoad float64, fillThreads int, seed uint64) []uint64 {
	counts := make([]uint64, fillThreads)
	target := uint64(targetLoad * float64(slots))
	gens := make([]*workload.UniformKeys, fillThreads)
	for i := range gens {
		gens[i] = workload.NewUniformKeys(seed, i)
	}
	var total uint64
	for total < target {
		i := int(total % uint64(fillThreads))
		if err := tab.Insert(gens[i].NextKey(), total); err != nil {
			break
		}
		counts[i]++
		total++
	}
	return counts
}

// Lookups runs a 100%-lookup workload over keys known to be present.
func Lookups(tab KV, spec LookupSpec, fillCounts []uint64) RunResult {
	if spec.Threads <= 0 {
		spec.Threads = 1
	}
	ops := metrics.NewOpCounter(spec.Threads)
	start := time.Now()
	var wg sync.WaitGroup
	for th := 0; th < spec.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rnd := workload.NewRand(spec.Seed ^ uint64(th)*977)
			// Each lookup thread draws from a random fill slice.
			gens := make([]*workload.UniformKeys, len(fillCounts))
			for i := range gens {
				g := workload.NewUniformKeys(spec.Seed, i)
				// Fast-forward so ExistingKey covers the filled range.
				gens[i] = g
				for j := uint64(0); j < fillCounts[i]; j++ {
					g.NextKey()
				}
			}
			var my uint64
			for i := uint64(0); i < spec.OpsPerThread; i++ {
				slice := int(rnd.Intn(uint64(len(gens))))
				tab.Lookup(gens[slice].ExistingKey())
				my++
				if my >= 1024 {
					ops.Add(th, my)
					my = 0
				}
			}
			ops.Add(th, my)
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := RunResult{
		Overall:  metrics.Throughput(ops.Total(), elapsed),
		Ops:      ops.Total(),
		Duration: elapsed,
	}
	if ts, ok := tab.(TxStatser); ok {
		s := ts.TxStats()
		res.Tx = &s
	}
	return res
}
