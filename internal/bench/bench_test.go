package bench

import (
	"bytes"
	"strings"
	"testing"

	"cuckoohash/internal/workload"
)

// tinyScale keeps harness tests fast; shapes are not asserted at this size.
func tinyScale() Scale {
	return Scale{
		Slots:      1 << 12,
		Fig2Keys:   1 << 10,
		Threads:    []int{1, 2},
		MaxThreads: []int{1, 2, 4},
		LookupOps:  1 << 12,
		Seed:       7,
	}
}

func TestFillDriverCountsAndWindows(t *testing.T) {
	s := CuckooPlusFG()
	tab := s.New(1<<12, 1, 2, 7)
	res := Fill(tab, FillSpec{
		Threads: 2, Mix: workload.InsertOnly,
		TargetLoad: 0.95, Slots: 1 << 12, Seed: 7,
		WindowBounds: []float64{0, 0.75, 0.90, 0.95},
	})
	if res.Overall <= 0 {
		t.Fatalf("Overall = %v", res.Overall)
	}
	lf := float64(tab.Len()) / float64(tab.Cap())
	if lf < 0.94 {
		t.Fatalf("fill stopped at load factor %.3f", lf)
	}
	for _, w := range []string{wOverall, wMid, wHigh} {
		if res.Windows[w] <= 0 {
			t.Fatalf("window %s = %v (windows: %v)", w, res.Windows[w], res.Windows)
		}
	}
}

func TestFillDriverMixedCountsLookups(t *testing.T) {
	s := CuckooPlusFG()
	tab := s.New(1<<12, 1, 2, 7)
	res := Fill(tab, FillSpec{
		Threads: 2, Mix: workload.Mix1090,
		TargetLoad: 0.9, Slots: 1 << 12, Seed: 7,
	})
	inserts := tab.Len()
	if res.Ops < 5*inserts {
		t.Fatalf("10%%-insert mix did ops=%d for inserts=%d; lookups not counted?", res.Ops, inserts)
	}
}

func TestLookupDriver(t *testing.T) {
	s := CuckooPlusFG()
	tab := s.New(1<<12, 1, 4, 7)
	counts := PreFill(tab, 1<<12, 0.95, 4, 7)
	var total uint64
	for _, c := range counts {
		total += c
	}
	if float64(total) < 0.94*float64(1<<12) {
		t.Fatalf("prefill only reached %d keys", total)
	}
	res := Lookups(tab, LookupSpec{Threads: 4, OpsPerThread: 1 << 10, Seed: 7}, counts)
	if res.Ops != 4<<10 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if res.Overall <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep is seconds-long; skipped in -short")
	}
	sc := tinyScale()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(sc)
			if rep == nil || len(rep.Rows) == 0 {
				t.Fatalf("experiment %s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			rep.Print(&buf)
			if !strings.Contains(buf.String(), rep.ID) {
				t.Fatalf("report print missing id: %q", buf.String())
			}
			var csv bytes.Buffer
			rep.CSV(&csv)
			lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
			if len(lines) != len(rep.Rows)+1 {
				t.Fatalf("CSV has %d lines for %d rows", len(lines), len(rep.Rows))
			}
			t.Logf("\n%s", buf.String())
		})
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"", "small", "medium", "paper"} {
		if _, err := ScaleByName(name); err != nil {
			t.Fatalf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}
