package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"
)

// Report is the regenerated form of one paper figure: named rows of values
// over named columns, plus free-form notes (abort rates, memory
// footprints). Print renders a text table; CSV renders machine-readable
// output for plotting.
type Report struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Unit    string   `json:"unit,omitempty"` // e.g. "Mops/s"
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
	Notes   []string `json:"notes,omitempty"`
}

// Row is one series of a Report.
type Row struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// MarshalJSON renders non-finite cells (a quantity an experiment could not
// measure, e.g. a ratio over a zero denominator) as null; encoding/json
// rejects NaN and ±Inf outright, which would abort the whole document.
func (r Row) MarshalJSON() ([]byte, error) {
	vals := make([]any, len(r.Values))
	for i, v := range r.Values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			vals[i] = v
		}
	}
	return json.Marshal(struct {
		Name   string `json:"name"`
		Values []any  `json:"values"`
	}{r.Name, vals})
}

// AddRow appends a series.
func (r *Report) AddRow(name string, values ...float64) {
	r.Rows = append(r.Rows, Row{Name: name, Values: values})
}

// AddNote appends a free-form annotation line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s", r.ID, r.Title)
	if r.Unit != "" {
		fmt.Fprintf(w, " [%s]", r.Unit)
	}
	fmt.Fprintln(w)

	nameW := 4
	for _, row := range r.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	colW := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		colW[i] = len(c)
		if colW[i] < 8 {
			colW[i] = 8
		}
	}
	fmt.Fprintf(w, "%-*s", nameW+2, "")
	for i, c := range r.Columns {
		fmt.Fprintf(w, " %*s", colW[i], c)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s", nameW+2, row.Name)
		for i, v := range row.Values {
			width := 8
			if i < len(colW) {
				width = colW[i]
			}
			fmt.Fprintf(w, " %*.*f", width, precisionFor(v), v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func precisionFor(v float64) int {
	switch {
	case v >= 100:
		return 1
	case v >= 1:
		return 2
	default:
		return 4
	}
}

// JSONDoc is the machine-readable form of a cuckoobench run: host and
// scale metadata plus every report (rows carry the op mix or scheme, the
// columns carry the thread counts or load factors, values carry the
// throughput or latency quantiles). Future runs can diff a BENCH_*.json
// trajectory without re-parsing text tables.
type JSONDoc struct {
	// Timestamp is RFC 3339 UTC at write time.
	Timestamp string `json:"timestamp"`
	// CPUs and GoMaxProcs describe the host the numbers came from.
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Scale is the workload preset name (small/medium/paper).
	Scale string `json:"scale"`
	// Threads is the scale's thread axis, for trajectory tooling that
	// wants it without parsing column headers.
	Threads []int `json:"threads"`
	// Repeat is how many runs each cell is a median of (1 = single run).
	Repeat  int       `json:"repeat"`
	Reports []*Report `json:"reports"`
}

// WriteJSON writes the reports with run metadata as indented JSON.
func WriteJSON(w io.Writer, reports []*Report, scaleName string, sc Scale, repeat int) error {
	doc := JSONDoc{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scaleName,
		Threads:    sc.Threads,
		Repeat:     repeat,
		Reports:    reports,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// CSV renders the report as comma-separated values, one header row then one
// row per series.
func (r *Report) CSV(w io.Writer) {
	fmt.Fprintf(w, "scheme,%s\n", strings.Join(r.Columns, ","))
	for _, row := range r.Rows {
		cells := make([]string, 0, len(row.Values)+1)
		cells = append(cells, row.Name)
		for _, v := range row.Values {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Scale sets the experiment sizes. The paper's tables hold 2^27 slots and
// take minutes per run; the default scale keeps every experiment's shape at
// a size that runs in seconds.
type Scale struct {
	// Slots is the default cuckoo table size in slots.
	Slots uint64
	// Fig2Keys is the insert count for the single-writer Figure 2 runs.
	Fig2Keys uint64
	// Threads is the thread axis for the scaling figures.
	Threads []int
	// MaxThreads is the widest machine size exercised (Fig. 7).
	MaxThreads []int
	// LookupOps is the per-thread op count for lookup-only runs.
	LookupOps uint64
	// Seed seeds every workload.
	Seed uint64
}

// SmallScale runs every figure in a few seconds (CI-sized).
func SmallScale() Scale {
	return Scale{
		Slots:      1 << 16,
		Fig2Keys:   1 << 14,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 17,
		Seed:       42,
	}
}

// MediumScale approximates the paper's shapes more closely (tens of
// seconds).
func MediumScale() Scale {
	return Scale{
		Slots:      1 << 21,
		Fig2Keys:   1 << 19,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 21,
		Seed:       42,
	}
}

// PaperScale matches the paper's table sizes (needs ~4 GB and minutes per
// figure; the HTM-emulated schemes are smaller because the software arena
// would not fit).
func PaperScale() Scale {
	return Scale{
		Slots:      1 << 27,
		Fig2Keys:   1 << 24,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 24,
		Seed:       42,
	}
}

// ScaleByName returns a preset by name: "small", "medium" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "", "small":
		return SmallScale(), nil
	case "medium":
		return MediumScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want small, medium or paper)", name)
}
