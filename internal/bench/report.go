package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is the regenerated form of one paper figure: named rows of values
// over named columns, plus free-form notes (abort rates, memory
// footprints). Print renders a text table; CSV renders machine-readable
// output for plotting.
type Report struct {
	ID      string
	Title   string
	Unit    string // e.g. "Mops/s"
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one series of a Report.
type Row struct {
	Name   string
	Values []float64
}

// AddRow appends a series.
func (r *Report) AddRow(name string, values ...float64) {
	r.Rows = append(r.Rows, Row{Name: name, Values: values})
}

// AddNote appends a free-form annotation line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s", r.ID, r.Title)
	if r.Unit != "" {
		fmt.Fprintf(w, " [%s]", r.Unit)
	}
	fmt.Fprintln(w)

	nameW := 4
	for _, row := range r.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	colW := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		colW[i] = len(c)
		if colW[i] < 8 {
			colW[i] = 8
		}
	}
	fmt.Fprintf(w, "%-*s", nameW+2, "")
	for i, c := range r.Columns {
		fmt.Fprintf(w, " %*s", colW[i], c)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s", nameW+2, row.Name)
		for i, v := range row.Values {
			width := 8
			if i < len(colW) {
				width = colW[i]
			}
			fmt.Fprintf(w, " %*.*f", width, precisionFor(v), v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func precisionFor(v float64) int {
	switch {
	case v >= 100:
		return 1
	case v >= 1:
		return 2
	default:
		return 4
	}
}

// CSV renders the report as comma-separated values, one header row then one
// row per series.
func (r *Report) CSV(w io.Writer) {
	fmt.Fprintf(w, "scheme,%s\n", strings.Join(r.Columns, ","))
	for _, row := range r.Rows {
		cells := make([]string, 0, len(row.Values)+1)
		cells = append(cells, row.Name)
		for _, v := range row.Values {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Scale sets the experiment sizes. The paper's tables hold 2^27 slots and
// take minutes per run; the default scale keeps every experiment's shape at
// a size that runs in seconds.
type Scale struct {
	// Slots is the default cuckoo table size in slots.
	Slots uint64
	// Fig2Keys is the insert count for the single-writer Figure 2 runs.
	Fig2Keys uint64
	// Threads is the thread axis for the scaling figures.
	Threads []int
	// MaxThreads is the widest machine size exercised (Fig. 7).
	MaxThreads []int
	// LookupOps is the per-thread op count for lookup-only runs.
	LookupOps uint64
	// Seed seeds every workload.
	Seed uint64
}

// SmallScale runs every figure in a few seconds (CI-sized).
func SmallScale() Scale {
	return Scale{
		Slots:      1 << 16,
		Fig2Keys:   1 << 14,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 17,
		Seed:       42,
	}
}

// MediumScale approximates the paper's shapes more closely (tens of
// seconds).
func MediumScale() Scale {
	return Scale{
		Slots:      1 << 21,
		Fig2Keys:   1 << 19,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 21,
		Seed:       42,
	}
}

// PaperScale matches the paper's table sizes (needs ~4 GB and minutes per
// figure; the HTM-emulated schemes are smaller because the software arena
// would not fit).
func PaperScale() Scale {
	return Scale{
		Slots:      1 << 27,
		Fig2Keys:   1 << 24,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 24,
		Seed:       42,
	}
}

// ScaleByName returns a preset by name: "small", "medium" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "", "small":
		return SmallScale(), nil
	case "medium":
		return MediumScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want small, medium or paper)", name)
}
