package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestReportPrintAlignment(t *testing.T) {
	r := &Report{
		ID:      "x",
		Title:   "test report",
		Unit:    "Mops/s",
		Columns: []string{"a", "longcolumn"},
	}
	r.AddRow("short", 1.5, 200.25)
	r.AddRow("a-much-longer-name", 0.001, 3)
	r.AddNote("note %d", 42)
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: test report [Mops/s]", "longcolumn", "a-much-longer-name", "note: note 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("print output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 2 rows + note + trailing blank handled by TrimRight.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "y", Columns: []string{"c1", "c2"}}
	r.AddRow("row", 1, 2.5)
	var buf bytes.Buffer
	r.CSV(&buf)
	want := "scheme,c1,c2\nrow,1,2.5\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteJSONNonFiniteCells(t *testing.T) {
	r := &Report{ID: "z", Columns: []string{"c1", "c2", "c3"}}
	r.AddRow("row", 1.5, math.NaN(), math.Inf(1))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Report{r}, "small", Scale{}, 1); err != nil {
		t.Fatalf("WriteJSON with non-finite cells: %v", err)
	}
	var doc struct {
		Reports []struct {
			Rows []struct {
				Values []*float64 `json:"values"`
			} `json:"rows"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, buf.String())
	}
	vals := doc.Reports[0].Rows[0].Values
	if len(vals) != 3 || vals[0] == nil || *vals[0] != 1.5 {
		t.Fatalf("finite cell mangled: %v", vals)
	}
	if vals[1] != nil || vals[2] != nil {
		t.Fatalf("non-finite cells should be null, got %v", vals)
	}
}

func TestSortRowsByValue(t *testing.T) {
	r := &Report{}
	r.AddRow("b", 2)
	r.AddRow("c", 3)
	r.AddRow("a", 1)
	r.SortRowsByValue()
	if r.Rows[0].Name != "c" || r.Rows[2].Name != "a" {
		t.Fatalf("sort order: %v", r.Rows)
	}
}

func TestWindowKey(t *testing.T) {
	cases := []struct {
		lo, hi float64
		want   string
	}{
		{0, 0.95, "0.00-0.95"},
		{0.75, 0.90, "0.75-0.90"},
		{0.9, 0.95, "0.90-0.95"},
		{0.3, 0.4, "0.30-0.40"},
	}
	for _, c := range cases {
		if got := windowKey(c.lo, c.hi); got != c.want {
			t.Fatalf("windowKey(%v,%v) = %q want %q", c.lo, c.hi, got, c.want)
		}
	}
}

func TestByIDCoversAll(t *testing.T) {
	for _, e := range Experiments() {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestLockWrappedSerializes(t *testing.T) {
	s := LockWrapped("locked dense", Dense())
	tab := s.New(1<<10, 1, 4, 7)
	// Concurrent access through the wrapper must be safe for the
	// single-threaded inner table.
	done := make(chan bool, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			base := uint64(w+1) << 32
			for i := uint64(0); i < 500; i++ {
				if err := tab.Insert(base|i, i); err != nil {
					done <- false
					return
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		if !<-done {
			t.Fatal("insert failed")
		}
	}
	if tab.Len() != 2000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if _, ok := tab.Lookup(uint64(1)<<32 | 3); !ok {
		t.Fatal("lookup through wrapper failed")
	}
	if !tab.Delete(uint64(1)<<32 | 3) {
		t.Fatal("delete through wrapper failed")
	}
}
