// Package htmpuretest is the htmpure golden: transaction bodies (function
// literals and declared helpers taking the *Txn handle) must stay free of
// effects that cannot roll back on abort.
package htmpuretest

import (
	"fmt"

	"htmlib"
)

type table struct {
	region *htmlib.Region
	index  map[uint64]int
	events chan uint64
}

func sideEffect() {}

func goodBody(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		v := tx.Load(0)
		if v == 0 {
			tx.Abort(1)
		}
		tx.Store(1, v+1)
		return nil
	})
}

func goodHelper(tx *htmlib.Txn, b uint64) uint64 {
	occ := tx.Load(uint32(b))
	tx.Store(uint32(b), occ|1)
	return occ
}

func badAllocation(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		scratch := make([]uint64, 8) // want `allocation \(make\) inside a transaction body`
		scratch[0] = tx.Load(0)
		scratch = append(scratch, 1) // want `allocation \(append\) inside a transaction body`
		tx.Store(0, scratch[0])
		return nil
	})
}

func badIO(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		fmt.Println(tx.Load(0)) // want `call to fmt\.Println inside a transaction body`
		return nil
	})
}

func badGoroutine(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		go sideEffect() // want `goroutine launched inside a transaction body`
		return nil
	})
}

func badDefer(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		defer sideEffect() // want `defer inside a transaction body`
		return nil
	})
}

func badChannels(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		t.events <- tx.Load(0) // want `channel send inside a transaction body`
		v := <-t.events        // want `channel receive inside a transaction body`
		tx.Store(0, v)
		return nil
	})
}

func badPanic(t *table) error {
	return t.region.Run(func(tx *htmlib.Txn) error {
		if tx.Load(0) == 0 {
			panic("empty") // want `free-form panic inside a transaction body`
		}
		return nil
	})
}

// badHelper shows the rule follows the handle into declared helpers.
func badHelper(tx *htmlib.Txn, t *table, b uint64) {
	t.index[b] = int(tx.Load(uint32(b))) // want `map write inside a transaction body`
}

// goodCaller prepares state outside the transaction; only the body is held
// to the purity rules.
func goodCaller(t *table) error {
	scratch := make([]uint64, 8)
	err := t.region.Run(func(tx *htmlib.Txn) error {
		scratch[0] = tx.Load(0)
		return nil
	})
	fmt.Println(scratch[0])
	return err
}
