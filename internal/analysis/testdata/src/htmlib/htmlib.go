// Package htmlib is the testdata stand-in for the emulated-HTM region: a
// Txn handle with the Load/Store/Abort method set the htmpure analyzer
// recognizes structurally, declared outside the test package so the
// implementation-package exemption does not apply there.
package htmlib

// Txn is a transaction handle over a word arena.
type Txn struct {
	words []uint64
}

func (t *Txn) Load(addr uint32) uint64     { return t.words[addr] }
func (t *Txn) Store(addr uint32, v uint64) { t.words[addr] = v }
func (t *Txn) Abort(code uint64)           {}

// Region runs transaction bodies.
type Region struct {
	words []uint64
}

// NewRegion returns a region over n words.
func NewRegion(n int) *Region { return &Region{words: make([]uint64, n)} }

// Run executes body as one transaction.
func (r *Region) Run(body func(tx *Txn) error) error {
	return body(&Txn{words: r.words})
}
