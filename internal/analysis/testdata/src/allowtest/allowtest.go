// Package allowtest exercises the //lint:allow machinery: a directive
// with a reason suppresses the finding on its own or the following line;
// unknown checks, missing reasons and unused directives are themselves
// reported under the allowcheck pseudo-check.
package allowtest

import "stripelib"

type table struct {
	locks *stripelib.Stripe
}

func suppressedOwnLineDirective(t *table, a, b uint64) {
	t.locks.Lock(a)
	//lint:allow cuckoovet:lockorder ordering proven manually in this fixture
	t.locks.Lock(b)
	t.locks.Unlock(b)
	t.locks.Unlock(a)
}

func unsuppressed(t *table, a, b uint64) {
	t.locks.Lock(a)
	t.locks.Lock(b)
	t.locks.Unlock(b)
	t.locks.Unlock(a)
}

func badDirectives(t *table, a uint64) {
	//lint:allow cuckoovet:nosuchcheck it cannot exist
	t.locks.Lock(a)
	t.locks.Unlock(a)
	//lint:allow cuckoovet:lockorder
	t.locks.Lock(a)
	t.locks.Unlock(a)
	//lint:allow cuckoovet:lockorder nothing here needs suppressing
	t.locks.Unlock(a)
}
