// Package seqlocktest is the seqlock golden for the §4.2 optimistic-read
// protocol: every Snapshot must be validated, every Validate needs a
// Snapshot, and the window between them must be write-free.
package seqlocktest

import "stripelib"

type table struct {
	vers     *stripelib.Stripe
	restarts uint64
	data     []uint64
}

func read(t *table, b uint64) uint64 { return t.data[b] }

func goodOptimisticRead(t *table, b uint64) (uint64, bool) {
	for {
		s := t.vers.Snapshot(b)
		v := read(t, b)
		if t.vers.Validate(b, s) {
			return v, true
		}
	}
}

func badNeverValidated(t *table, b uint64) uint64 {
	s := t.vers.Snapshot(b) // want `Snapshot is never validated in this function`
	_ = s
	return read(t, b)
}

func badValidateWithoutSnapshot(t *table, b uint64) bool {
	return t.vers.Validate(b, 0) // want `Validate without a preceding Snapshot`
}

func badDiscardedSnapshot(t *table, b uint64) {
	t.vers.Snapshot(b) // want `Snapshot result discarded` `Snapshot is never validated`
}

func badWriteInWindow(t *table, b uint64) (uint64, bool) {
	s := t.vers.Snapshot(b)
	v := read(t, b)
	t.restarts = t.restarts + 1 // want `field store between Snapshot and Validate`
	return v, t.vers.Validate(b, s)
}

func badLockInWindow(t *table, b uint64) (uint64, bool) {
	s := t.vers.Snapshot(b)
	t.vers.Lock(b) // want `Lock between Snapshot and Validate`
	v := read(t, b)
	t.vers.Unlock(b) // want `Unlock between Snapshot and Validate`
	return v, t.vers.Validate(b, s)
}

func goodLocalStateInWindow(t *table, b uint64) (uint64, bool) {
	s := t.vers.Snapshot(b)
	v := uint64(0)
	v += read(t, b) // locals are private to the reader; no shared dirtying
	return v, t.vers.Validate(b, s)
}
