// Package atomictest is the atomicfield golden: any field whose address
// ever reaches sync/atomic is discipline-marked, and every plain access of
// it must be flagged.
package atomictest

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
	plain  uint64 // never touched by sync/atomic; stays free
	vals   []uint64
}

// globalEpoch is discipline-marked through the package-level-var path.
var globalEpoch uint64

func mark(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint64(&c.misses, 0)
	atomic.AddUint64(&globalEpoch, 1)
	for i := range c.vals {
		atomic.StoreUint64(&c.vals[i], 0)
	}
}

func badRead(c *counters) uint64 {
	return c.hits // want `plain read of atomic field hits`
}

func badWrite(c *counters) {
	c.misses = 7 // want `plain write to atomic field misses`
}

func badIncrement(c *counters) {
	c.hits++ // want `plain \+\+ of atomic field hits`
}

func badGlobalRead() uint64 {
	return globalEpoch // want `plain read of atomic field globalEpoch`
}

func badElementRead(c *counters, i int) uint64 {
	return c.vals[i] // want `plain read of atomic field vals`
}

func badRangeValue(c *counters) uint64 {
	var sum uint64
	for _, v := range c.vals { // want `range reads elements of atomic field vals plainly`
		sum += v
	}
	return sum
}

func goodAtomicUse(c *counters, i int) uint64 {
	return atomic.LoadUint64(&c.hits) + atomic.LoadUint64(&c.vals[i])
}

func goodHeaderOps(c *counters) int {
	c.vals = make([]uint64, 8) // swapping the header is not an element access
	for i := range c.vals {
		atomic.AddUint64(&c.vals[i], 1)
	}
	return len(c.vals)
}

func goodUnmarkedField(c *counters) uint64 {
	c.plain++
	return c.plain
}
