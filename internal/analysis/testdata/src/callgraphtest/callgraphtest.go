// Package callgraphtest exercises the callgraph builder's edge kinds:
// interface dispatch, method values through locals, mutual recursion,
// func-typed struct fields, and Origin-normalized generic instantiation.
// The assertions live in callgraph_test.go; this package only provides
// the shapes.
package callgraphtest

type ringer interface{ ring() }

type bell struct{ n int }

func (b *bell) ring() { b.n++ }

type gong struct{ n int }

func (g *gong) ring() { g.n++ }

func dispatch(r ringer) { r.ring() }

type widget struct {
	onPing func()
	count  int
}

func (w *widget) inc() { w.count++ }

func named() {}

func install(w *widget) {
	w.onPing = named
	w.onPing = func() { w.count++ }
}

func invokeField(w *widget) { w.onPing() }

func methodValue(w *widget) {
	f := w.inc
	f()
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

type pair[V any] struct{ a, b V }

func (p *pair[V]) first() V { return p.a }

func generic(pi *pair[int], ps *pair[string]) (int, string) {
	return pi.first(), ps.first()
}
