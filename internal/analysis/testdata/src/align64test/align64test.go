// Package align64test is the align64 golden: a sync/atomic-discipline
// 64-bit field that lands on a 4-byte offset under GOARCH=386 layout must
// be flagged before it can panic on a 32-bit build.
package align64test

import "sync/atomic"

type badLayout struct {
	ready uint32
	count int64 // want `atomic 64-bit field count is at offset 4 under GOARCH=386 layout`
}

type goodLayout struct {
	count int64 // 8-byte word first: offset 0 on every target
	ready uint32
}

type goodTyped struct {
	ready uint32
	count atomic.Int64 // typed atomics carry their own align64 marker
}

func use(b *badLayout, g *goodLayout, t *goodTyped) int64 {
	atomic.AddInt64(&b.count, 1)
	atomic.AddInt64(&g.count, 1)
	t.count.Add(1)
	return atomic.LoadInt64(&b.count) + atomic.LoadInt64(&g.count) + t.count.Load()
}
