// Package obschecktest is the dirty half of the obscheck golden: a
// span-shaped type (Arm/Begin/End) whose methods violate the
// zero-cost-when-idle contract in each of the ways the analyzer flags.
package obschecktest

import (
	"fmt"
	"time"
)

type span struct {
	armed  bool
	stages [4]int64
	labels []string
}

func (s *span) Arm() {
	if s == nil {
		return
	}
	s.armed = true
}

// Begin reads the clock before the armed guard, so even unarmed spans
// pay for the read.
func (s *span) Begin() int64 {
	now := time.Now().UnixNano() // want `span method Begin reads the clock \(time\.UnixNano\) before an armed guard`
	if s == nil || !s.armed {
		return 0
	}
	return now
}

// End is guarded correctly; the clock read after the early return is the
// legal idiom and must not be flagged.
func (s *span) End(stage int, t0 int64) {
	if t0 == 0 || s == nil {
		return
	}
	d := time.Now().UnixNano() - t0
	if d > 0 {
		s.stages[stage] += d
	}
}

// Label grows a slice on the record path: one allocation per request at
// full load.
func (s *span) Label(l string) {
	if s == nil || !s.armed {
		return
	}
	s.labels = append(s.labels, l) // want `allocation \(append\) in span method Label`
}

// Scratch allocates fresh state per request.
func (s *span) Scratch(n int) {
	if s == nil {
		return
	}
	s.labels = make([]string, 0, n) // want `allocation \(make\) in span method Scratch`
}

// Dump does I/O from a span method; reporting belongs to the slow path.
func (s *span) Dump() {
	if s == nil {
		return
	}
	fmt.Println(s.stages) // want `call to fmt\.Println in span method Dump`
}

// Sleep calls into time after a guard — allowed by the guard rule — but
// nothing here is flagged, documenting that the analyzer checks clock
// reads positionally, not semantically.
func (s *span) Sleep() {
	if s == nil || !s.armed {
		return
	}
	_ = time.Now()
}
