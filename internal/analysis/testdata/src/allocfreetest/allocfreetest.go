// Package allocfreetest is the allocfree golden: //cuckoo:hotpath roots
// must prove allocation-free transitively, with the full root-to-site
// call chain in every diagnostic. //cuckoo:coldpath stops the walk, the
// compiler's free conversion positions are exempt, call-only closures
// stay on the stack, and generic instantiations share one Origin summary.
package allocfreetest

import (
	"strconv"
	"sync/atomic"
)

var sink func()

type table struct {
	hits atomic.Uint64
	idx  map[string]uint64
	vals []uint64
}

// use keeps a value live without allocating.
func use(s string) int { return len(s) }

//cuckoo:hotpath direct allocation sites are reported with the root name
func badDirect(t *table) {
	buf := make([]uint64, 4)        // want `allocation \(make\) \(make\) reachable from //cuckoo:hotpath root allocfreetest\.badDirect: allocfreetest\.badDirect`
	t.vals = append(t.vals, buf...) // want `allocation \(append\) \(append\) reachable from //cuckoo:hotpath root allocfreetest\.badDirect`
}

func growHelper(t *table, n uint64) {
	t.vals = append(t.vals, n) // want `allocation \(append\) \(append\) reachable from //cuckoo:hotpath root allocfreetest\.badViaHelper: allocfreetest\.badViaHelper -> allocfreetest\.growHelper`
}

//cuckoo:hotpath the chain names every frame from root to site
func badViaHelper(t *table, n uint64) {
	growHelper(t, n)
}

//cuckoo:hotpath the compiler's free conversion positions are exempt
func goodFreeConversions(t *table, key []byte) uint64 {
	if string(key) == "ping" { // free: comparison position
		return 1
	}
	return t.idx[string(key)] // free: map-index read position
}

//cuckoo:hotpath a materialized []byte-to-string conversion allocates
func badConversion(t *table, key []byte) int {
	s := string(key) // want `string conversion \(string\(\[\]byte\)\) reachable from //cuckoo:hotpath root allocfreetest\.badConversion`
	return use(s)
}

//cuckoo:coldpath the audited slow path: growth allocates by design
func grow(t *table) {
	t.vals = append(t.vals, make([]uint64, len(t.vals))...)
}

//cuckoo:hotpath a //cuckoo:coldpath callee stops the walk
func goodColdStop(t *table) {
	if len(t.vals) == 0 {
		grow(t)
	}
	t.hits.Add(1)
}

// runOnly invokes its argument and never stores it.
func runOnly(f func()) { f() }

//cuckoo:hotpath a literal handed to a call-only parameter stays on the stack
func goodStackClosure(t *table) {
	runOnly(func() { t.hits.Add(1) })
}

//cuckoo:hotpath a stored literal heap-allocates its closure
func badStoredClosure(t *table) {
	f := func() { t.hits.Add(1) } // want `closure allocation \(func literal\) reachable from //cuckoo:hotpath root allocfreetest\.badStoredClosure`
	sink = f
}

//cuckoo:hotpath stdlib calls off the known-clean list are reported
func badUnanalyzed(n int) int {
	return use(strconv.Itoa(n)) // want `call into unanalyzed strconv\.Itoa reachable from //cuckoo:hotpath root allocfreetest\.badUnanalyzed`
}

type counter interface{ bump() }

type padded struct{ n atomic.Uint64 }

func (p *padded) bump() { p.n.Add(1) }

type leaky struct{ vals []uint64 }

func (l *leaky) bump() {
	l.vals = append(l.vals, 1) // want `allocation \(append\) \(append\) reachable from //cuckoo:hotpath root allocfreetest\.badIface: allocfreetest\.badIface -> \(\*leaky\)\.bump`
}

//cuckoo:hotpath interface calls are checked against every module implementer
func badIface(c counter) {
	c.bump()
}

func pingAlloc(t *table, n int) {
	if n == 0 {
		return
	}
	t.vals = append(t.vals, 1) // want `allocation \(append\) \(append\) reachable from //cuckoo:hotpath root allocfreetest\.badRecursive: allocfreetest\.badRecursive -> allocfreetest\.pingAlloc`
	pongAlloc(t, n-1)
}

func pongAlloc(t *table, n int) {
	pingAlloc(t, n-1)
}

//cuckoo:hotpath mutual recursion terminates at the on-stack check and still reports
func badRecursive(t *table, n int) {
	pingAlloc(t, n)
}

type hooks struct{ onHit func() }

func installHook(h *hooks, t *table) {
	h.onHit = func() {
		t.vals = append(t.vals, 1) // want `allocation \(append\) \(append\) reachable from //cuckoo:hotpath root allocfreetest\.badFieldCall: allocfreetest\.badFieldCall -> func literal`
	}
}

//cuckoo:hotpath calls through func-typed fields resolve to every stored value
func badFieldCall(h *hooks) {
	h.onHit()
}

type box[V any] struct{ vals []V }

func (b *box[V]) add(v V) {
	b.vals = append(b.vals, v) // want `allocation \(append\) \(append\) reachable from //cuckoo:hotpath root allocfreetest\.badGeneric: allocfreetest\.badGeneric -> \(\*box\)\.add`
}

//cuckoo:hotpath both instantiations resolve to one Origin summary: one finding, not two
func badGeneric(bi *box[uint64], bs *box[string]) {
	bi.add(1)
	bs.add("x")
}

//cuckoo:hotpath a clean root proves silently
func goodClean(t *table, key []byte) uint64 {
	t.hits.Add(1)
	return t.idx[string(key)]
}
