// Package stripelib is the testdata stand-in for a striped lock table: it
// has the Lock/Unlock/LockPair method set the lockorder and seqlock
// analyzers recognize structurally, and lives outside the test packages so
// the provider-package exemption does not apply to them.
package stripelib

// Stripe is a table of per-stripe locks with embedded version counters.
type Stripe struct {
	words []uint64
}

// New returns a stripe table with n stripes.
func New(n int) *Stripe { return &Stripe{words: make([]uint64, n)} }

func (s *Stripe) Lock(i uint64)   {}
func (s *Stripe) Unlock(i uint64) {}

// LockPair acquires two stripes in ascending index order.
func (s *Stripe) LockPair(i, j uint64) (uint64, uint64) {
	if j < i {
		i, j = j, i
	}
	return i, j
}

func (s *Stripe) UnlockPair(i, j uint64) {}

func (s *Stripe) LockAll()   {}
func (s *Stripe) UnlockAll() {}

// LockOrdered acquires a whole set of stripes in ascending index order.
func (s *Stripe) LockOrdered(idxs []uint64) []uint64 { return idxs }

func (s *Stripe) UnlockOrdered(idxs []uint64) {}

// Snapshot returns stripe i's version for an optimistic read.
func (s *Stripe) Snapshot(i uint64) uint64 { return s.words[i] }

// Validate re-checks that stripe i's version still equals snap.
func (s *Stripe) Validate(i, snap uint64) bool { return s.words[i] == snap }
