// Interprocedural fixtures: a helper's lock behavior is summarized as a
// LockFact (RawLock: it takes a raw stripe lock somewhere inside;
// NetHeld: it returns holding one) and enforced at every call site.
package lockordertest

// rawHelper takes and releases a raw stripe lock on its own.
func rawHelper(t *table, i uint64) {
	t.locks.Lock(i)
	t.locks.Unlock(i)
}

func badHelperWhileHeld(t *table, a, b uint64) {
	t.locks.Lock(a)
	rawHelper(t, b) // want `call to lockordertest\.rawHelper, which takes a raw stripe lock, while stripe lock t\.locks is held`
	t.locks.Unlock(a)
}

// acquireStripe returns with the stripe still held.
func acquireStripe(t *table, i uint64) {
	t.locks.Lock(i)
}

func releaseStripe(t *table, i uint64) {
	t.locks.Unlock(i)
}

func badLockAfterNetAcquire(t *table, a, b uint64) {
	acquireStripe(t, a)
	t.locks.Lock(b) // want `Stripe\.Lock on t\.locks while stripe lock locks held by acquireStripe\(\) is held`
	t.locks.Unlock(b)
	releaseStripe(t, a)
}

// nestedAcquire's summary inherits NetHeld through acquireStripe.
func nestedAcquire(t *table, i uint64) {
	acquireStripe(t, i)
}

func badPairAfterNestedAcquire(t *table, a, b uint64) {
	nestedAcquire(t, a)
	l1, l2 := t.locks.LockPair(a, b) // want `LockPair on t\.locks while stripe lock locks held by nestedAcquire\(\) is held`
	t.locks.UnlockPair(l1, l2)
	t.locks.Unlock(a)
}

func goodHelperAcquireCallerRelease(t *table, a uint64) {
	acquireStripe(t, a)
	t.locks.Unlock(a) // a bare Unlock releases the helper's sentinel
}

func goodBalancedHelperSequence(t *table, a, b uint64) {
	rawHelper(t, a)
	t.locks.Lock(b)
	t.locks.Unlock(b)
}

// selfRecursive exercises the cycle guard in summary computation: the
// recursion resolves to the empty fact and the direct pair balances.
func selfRecursive(t *table, i uint64, depth int) {
	if depth == 0 {
		return
	}
	t.locks.Lock(i)
	t.locks.Unlock(i)
	selfRecursive(t, i, depth-1)
}

func goodRecursiveHelper(t *table, i uint64) {
	selfRecursive(t, i, 2)
	t.locks.Lock(i)
	t.locks.Unlock(i)
}
