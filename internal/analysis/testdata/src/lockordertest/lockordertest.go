// Package lockordertest is the lockorder golden: raw two-lock sequences
// must be flagged, LockPair and sequential lock/unlock must not.
package lockordertest

import "stripelib"

type table struct {
	locks *stripelib.Stripe
}

func badDoubleLock(t *table, a, b uint64) {
	t.locks.Lock(a)
	t.locks.Lock(b) // want `Stripe\.Lock on t\.locks while stripe lock t\.locks is held`
	t.locks.Unlock(b)
	t.locks.Unlock(a)
}

func badPairWhileHeld(t *table, a, b uint64) {
	t.locks.Lock(a)
	t.locks.LockPair(a, b) // want `LockPair on t\.locks while stripe lock`
	t.locks.Unlock(a)
}

func badLockSurvivesBranch(t *table, a, b uint64, cond bool) {
	if cond {
		t.locks.Lock(a)
	}
	t.locks.Lock(b) // want `while stripe lock t\.locks is held`
	t.locks.Unlock(b)
	if cond {
		t.locks.Unlock(a)
	}
}

func badDeferredUnlockDoesNotRelease(t *table, a, b uint64) {
	t.locks.Lock(a)
	defer t.locks.Unlock(a)
	t.locks.Lock(b) // want `while stripe lock t\.locks is held`
	t.locks.Unlock(b)
}

func badOrderedWhileHeld(t *table, a, b uint64) {
	t.locks.Lock(a)
	t.locks.LockOrdered([]uint64{a, b}) // want `LockOrdered on t\.locks while stripe lock`
	t.locks.Unlock(a)
}

func goodOrdered(t *table, a, b uint64) {
	held := t.locks.LockOrdered([]uint64{a, b})
	t.locks.UnlockOrdered(held)
}

func goodPair(t *table, a, b uint64) {
	l1, l2 := t.locks.LockPair(a, b)
	t.locks.UnlockPair(l1, l2)
}

func goodSequential(t *table, a, b uint64) {
	t.locks.Lock(a)
	t.locks.Unlock(a)
	t.locks.Lock(b)
	t.locks.Unlock(b)
}

func goodBranchesRelease(t *table, a, b uint64, cond bool) {
	if cond {
		t.locks.Lock(a)
		t.locks.Unlock(a)
	} else {
		t.locks.Lock(b)
		t.locks.Unlock(b)
	}
	t.locks.Lock(a)
	t.locks.Unlock(a)
}

func goodLiteralIsSeparate(t *table, a uint64) func() {
	t.locks.Lock(a)
	f := func(b uint64) {
		// A function literal runs later, outside the holder's frame.
		t.locks.Lock(b)
		t.locks.Unlock(b)
	}
	t.locks.Unlock(a)
	return func() { f(a) }
}
