// Package generchecktest is the genercheck golden for the incremental
// resize protocol: a bucket-array access derived from loadState needs a
// stateValid re-check first (R1), and nothing may touch a generation's
// arrays after markMigrated (R2). The stand-in types mirror the generic
// table structurally — the analyzer matches the protocol by method and
// field names, so these locals exercise exactly the real rules.
package generchecktest

type arrays struct {
	keys []uint64
	vals []uint64
	occ  []uint32
}

type state struct {
	live *arrays
	olds []*gen
}

type gen struct {
	arr   *arrays
	marks []uint32
}

type table struct {
	cur *state
}

func (t *table) loadState() *state         { return t.cur }
func (t *table) stateValid(st *state) bool { return t.cur == st }

func (g *gen) markMigrated(b uint64) bool {
	w := &g.marks[b>>5]
	bit := uint32(1) << (b & 31)
	if *w&bit != 0 {
		return false
	}
	*w |= bit
	return true
}

func goodValidatedRead(t *table, b uint64) uint64 {
	st := t.loadState()
	if !t.stateValid(st) {
		return 0
	}
	return st.live.vals[b]
}

func goodValidatedOldThenLive(t *table, b uint64) uint64 {
	st := t.loadState()
	if !t.stateValid(st) {
		return 0
	}
	for _, g := range st.olds {
		if g.arr.occ[b] != 0 {
			return g.arr.vals[b]
		}
	}
	return st.live.vals[b]
}

func badUnvalidatedRead(t *table, b uint64) uint64 {
	st := t.loadState()
	return st.live.vals[b] // want `generation array "vals" accessed without a preceding stateValid`
}

func badValidateTooLate(t *table, b uint64) uint64 {
	st := t.loadState()
	v := st.live.vals[b] // want `generation array "vals" accessed without a preceding stateValid`
	if !t.stateValid(st) {
		return 0
	}
	return v
}

func badUnvalidatedWrite(t *table, b uint64) {
	st := t.loadState()
	st.live.occ[b] = 0 // want `generation array "occ" accessed without a preceding stateValid`
}

// goodHelperNoLoad never loads the state itself: the arrays were handed
// in by a caller who validated, so R1 does not apply (this is why the
// table's Range/Clear copy buckets through free-function helpers).
func goodHelperNoLoad(a *arrays, i uint64) uint64 {
	return a.keys[i]
}

func goodMarkAfterAccess(t *table, g *gen, b uint64) {
	st := t.loadState()
	if !t.stateValid(st) {
		return
	}
	if g.arr.occ[b] == 0 {
		g.markMigrated(b)
	}
}

func badAccessAfterMark(t *table, g *gen, b uint64) {
	st := t.loadState()
	if !t.stateValid(st) {
		return
	}
	if g.markMigrated(b) {
		g.arr.occ[b] = 0 // want `generation array "occ" accessed after markMigrated`
	}
}

// badMarkThenReadEvenWithoutLoad: R2 holds regardless of how the arrays
// were obtained — the mark itself is the point of no return.
func badMarkThenReadEvenWithoutLoad(g *gen, b uint64) uint64 {
	g.markMigrated(b)
	return g.arr.vals[b] // want `generation array "vals" accessed after markMigrated`
}
