// Package padchecktest is the padcheck golden: an array or slice of
// atomic-bearing shard structs whose size is not a multiple of the 64-byte
// cache line false-shares and must be flagged (principle P1).
package padchecktest

import "sync/atomic"

type badShard struct {
	v atomic.Int64
}

type goodShard struct {
	v atomic.Int64
	_ [56]byte
}

type legacyShard struct {
	n uint64 // discipline-marked below; no sync/atomic type in sight
}

type stats struct {
	bad    [8]badShard // want `shard type badShard holds atomic counters but is 8 bytes`
	good   [8]goodShard
	legacy []legacyShard // want `shard type legacyShard holds atomic counters but is 8 bytes`
	vers   []atomic.Uint64
}

func bump(s *stats, i int) {
	s.bad[i%8].v.Add(1)
	s.good[i%8].v.Add(1)
	atomic.AddUint64(&s.legacy[i].n, 1)
	s.vers[i].Add(1)
}
