// Package blockchecktest is the blockcheck golden: no blocking call may
// be transitively reachable from a spinlock critical section, a seqlock
// Snapshot/Validate read window, or an HTM transaction body — including
// regions opened by net-acquiring helpers and function values run inside
// a callee's region.
package blockchecktest

import (
	"fmt"
	"sync"
	"time"

	"htmlib"
	"stripelib"
)

type table struct {
	locks *stripelib.Stripe
	mu    sync.Mutex
	ch    chan uint64
}

func badSleepInSpin(t *table, i uint64) {
	t.locks.Lock(i)
	time.Sleep(1) // want `blocking time call time\.Sleep reachable inside spinlock critical section on t\.locks: blockchecktest\.badSleepInSpin`
	t.locks.Unlock(i)
}

func badChanInSpin(t *table, i uint64) {
	t.locks.Lock(i)
	t.ch <- i // want `channel send reachable inside spinlock critical section on t\.locks`
	t.locks.Unlock(i)
}

func badSelectInSpin(t *table, i uint64) {
	t.locks.Lock(i)
	select { // want `select reachable inside spinlock critical section on t\.locks`
	case v := <-t.ch: // want `channel receive reachable inside spinlock critical section on t\.locks`
		_ = v
	default:
	}
	t.locks.Unlock(i)
}

func logHit(i uint64) {
	fmt.Println("hit", i) // want `I/O call fmt\.Println reachable inside spinlock critical section on t\.locks: blockchecktest\.badHelperBlocks -> blockchecktest\.logHit`
}

func badHelperBlocks(t *table, i uint64) {
	t.locks.Lock(i)
	logHit(i)
	t.locks.Unlock(i)
}

func badMutexInWindow(t *table, i uint64) uint64 {
	for {
		v := t.locks.Snapshot(i)
		t.mu.Lock() // want `blocking sync call \(\*sync\.Mutex\)\.Lock reachable inside seqlock read window`
		t.mu.Unlock()
		if t.locks.Validate(i, v) {
			return v
		}
	}
}

func badIOInTxn(r *htmlib.Region) error {
	return r.Run(func(tx *htmlib.Txn) error {
		tx.Store(0, tx.Load(1))
		fmt.Println("committed") // want `I/O call fmt\.Println reachable inside HTM transaction body`
		return nil
	})
}

// acquire returns with the stripe held: callers inherit an open region.
func acquire(t *table, i uint64) {
	t.locks.Lock(i)
}

func badAfterHelperHolds(t *table, i uint64) {
	acquire(t, i)
	time.Sleep(1) // want `blocking time call time\.Sleep reachable inside spinlock critical section on locks held by acquire`
	t.locks.Unlock(i)
}

// withStripe runs fn while holding stripe i: every argument is a region.
func withStripe(t *table, i uint64, fn func()) {
	t.locks.Lock(i)
	fn()
	t.locks.Unlock(i)
}

func badArgBlocks(t *table, i uint64) {
	withStripe(t, i, func() {
		t.mu.Lock() // want `blocking sync call \(\*sync\.Mutex\)\.Lock reachable inside spinlock critical section on t\.locks \(argument run by blockchecktest\.withStripe\): blockchecktest\.badArgBlocks -> func literal`
	})
}

func goodArgSpins(t *table, i uint64) {
	withStripe(t, i, func() {
		t.locks.Snapshot(i)
	})
}

func goodSpinIsShort(t *table, i uint64) uint64 {
	t.locks.Lock(i)
	v := t.locks.Snapshot(i)
	t.locks.Unlock(i)
	return v
}

func goodBlockAfterRelease(t *table, i uint64) {
	t.locks.Lock(i)
	t.locks.Unlock(i)
	t.ch <- i
}

func goodWindowIsLoads(t *table, i uint64) uint64 {
	for {
		v := t.locks.Snapshot(i)
		x := t.locks.Snapshot(i + 1)
		if t.locks.Validate(i, v) {
			return x
		}
	}
}

func goodTxnIsPure(r *htmlib.Region) error {
	return r.Run(func(tx *htmlib.Txn) error {
		tx.Store(0, tx.Load(1)+1)
		return nil
	})
}
