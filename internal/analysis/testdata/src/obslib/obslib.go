// Package obslib is the clean half of the obscheck golden: a span shaped
// exactly like internal/obs.Span, whose methods follow the contract —
// no allocation, clock reads only behind the nil/unarmed early-return
// guard. The analyzer must report nothing here.
package obslib

import "time"

type Span struct {
	armed  bool
	stages [4]int64
}

func (s *Span) Arm() {
	if s == nil {
		return
	}
	s.armed = true
	s.stages = [4]int64{}
}

func (s *Span) Armed() bool { return s != nil && s.armed }

func (s *Span) Begin() int64 {
	if s == nil || !s.armed {
		return 0
	}
	return time.Now().UnixNano()
}

func (s *Span) End(stage int, t0 int64) {
	if t0 == 0 || s == nil {
		return
	}
	d := time.Now().UnixNano() - t0
	if d > 0 {
		s.stages[stage] += d
	}
}

func (s *Span) Finish(total int64) {
	if s == nil || !s.armed {
		return
	}
	var sum int64
	for i := 0; i < len(s.stages)-1; i++ {
		sum += s.stages[i]
	}
	if rest := total - sum; rest > 0 {
		s.stages[len(s.stages)-1] = rest
	}
}

// Render is a free function, not a Span method: allocation is fine here,
// which is exactly why slow-path formatting lives off the type.
func Render(st [4]int64) []int64 {
	out := make([]int64, 0, len(st))
	for _, ns := range st {
		if ns > 0 {
			out = append(out, ns)
		}
	}
	return out
}
