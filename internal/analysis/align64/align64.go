// Package align64 checks that atomic-discipline 64-bit fields are 64-bit
// aligned on 32-bit targets.
//
// sync/atomic's Load/Store/Add on a uint64 panic at runtime on 386/arm
// when the word is not 8-byte aligned; the gc compiler only guarantees
// 8-byte alignment for such fields on 64-bit targets. The typed atomics
// (atomic.Uint64) embed an align64 marker and are immune, but the flat
// []uint64 array layout this repository uses for bucket storage keeps some
// legacy fields around. This analyzer consumes the atomicfield facts (the
// cross-package record of which fields are under sync/atomic discipline)
// and recomputes each struct's layout with GOARCH=386 sizes: any
// discipline field at a misaligned offset is flagged before it can panic
// on a 32-bit build.
package align64

import (
	"go/ast"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/atomicfield"
	"cuckoohash/internal/analysis/checkutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "align64",
	Doc: "flag sync/atomic-discipline 64-bit struct fields that are not " +
		"8-byte aligned under GOARCH=386 layout (runtime panic on 32-bit)",
	Requires: []*analysis.Analyzer{atomicfield.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	sizes := types.SizesFor("gc", "386")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name]
			if !ok {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok || checkutil.HasTypeParams(obj.Type()) {
				return true
			}
			fields := make([]*types.Var, st.NumFields())
			for i := range fields {
				fields[i] = st.Field(i)
			}
			offsets := sizes.Offsetsof(fields)
			for i, f := range fields {
				if !pass.ImportObjectFact(f, &atomicfield.IsAtomic{}) {
					continue
				}
				if !is64BitWord(f.Type()) {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(f.Pos(),
						"atomic 64-bit field %s is at offset %d under GOARCH=386 layout; sync/atomic requires 8-byte alignment (move it to the front of %s or use atomic.Uint64)",
						f.Name(), offsets[i], ts.Name.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// is64BitWord reports whether t is a plain 8-byte integer, the only shape
// the legacy sync/atomic 64-bit functions operate on.
func is64BitWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}
