package align64_test

import (
	"testing"

	"cuckoohash/internal/analysis/align64"
	"cuckoohash/internal/analysis/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("align64test")},
		align64.Analyzer)
}
