// Package driver loads Go packages and runs cuckoovet analyzers over them.
//
// It is the offline replacement for x/tools' go/packages + multichecker
// pair: packages are enumerated with `go list -deps -export -json` (which
// needs only the local build cache, never the network), standard-library
// dependencies are imported from their compiled export data, and every
// package of this module is type-checked from source into one shared
// go/types universe. The single universe is what lets analyzers attach
// facts to types.Object values in one package and observe them from
// another without serialization.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"cuckoohash/internal/analysis"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Package is one type-checked package of the loaded program.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Program is a load result: the module's packages in dependency order,
// sharing one FileSet and one types universe.
type Program struct {
	Fset     *token.FileSet
	Sizes    types.Sizes
	Packages []*Package
}

// Load lists patterns in dir with the go command and type-checks every
// non-standard-library package from source. Standard-library imports are
// satisfied from compiled export data, so loading works without network
// access.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Standard,Export,GoFiles,Imports,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list failed: %v\n%s", err, stderr.String())
	}

	// -deps emits packages in dependency order: imports before importers.
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		exports: make(map[string]string),
		std:     make(map[string]*types.Package),
		source:  make(map[string]*types.Package),
	}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookup)
	ld.listDir = dir

	prog := &Program{
		Fset:  fset,
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	for _, p := range pkgs {
		if p.Standard {
			ld.exports[p.ImportPath] = p.Export
			continue
		}
		pkg, err := ld.checkFromSource(p, prog.Sizes)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// loader resolves imports for the single shared types universe.
type loader struct {
	fset    *token.FileSet
	exports map[string]string // stdlib import path -> export data file
	std     map[string]*types.Package
	source  map[string]*types.Package // in-module, checked from source
	gc      types.Importer
	listDir string // directory for fallback go list invocations
}

// lookup feeds compiled export data to the gc importer.
func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := ld.exports[path]
	if !ok || file == "" {
		// Not part of the original -deps closure (the test harness hits
		// this for testdata-only imports): ask the go command directly.
		out, err := listExport(ld.listDir, path)
		if err != nil {
			return nil, fmt.Errorf("driver: no export data for %q: %v", path, err)
		}
		ld.exports[path] = out
		file = out
	}
	return os.Open(file)
}

// Import implements types.Importer over the mixed universe.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.source[path]; ok {
		return p, nil
	}
	if p, ok := ld.std[path]; ok {
		return p, nil
	}
	p, err := ld.gc.Import(path)
	if err != nil {
		return nil, err
	}
	ld.std[path] = p
	return p, nil
}

// checkFromSource parses and type-checks one module package.
func (ld *loader) checkFromSource(p *listPackage, sizes types.Sizes) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("driver: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: ld, Sizes: sizes}
	tpkg, err := conf.Check(p.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %v", p.ImportPath, err)
	}
	ld.source[p.ImportPath] = tpkg
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// LoadDir parses and type-checks the single package rooted at dir (ignoring
// _test.go files), resolving imports through compiled export data. It is
// the loader used by the analysistest harness for testdata packages, which
// `go list ./...` deliberately does not enumerate.
func LoadDir(dir string) (*Program, error) {
	return LoadDirs(dir)
}

// LoadDirs loads several directory packages into one shared universe, in
// order. Each package is registered under its base name as import path, so
// a later directory may import an earlier one by that name — this is how
// testdata packages obtain a stand-in lock/seqlock/transaction provider
// type declared outside their own package (the analyzers exempt the
// provider's package, so a one-package test could not exercise them).
func LoadDirs(dirs ...string) (*Program, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("driver: LoadDirs needs at least one directory")
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		exports: make(map[string]string),
		std:     make(map[string]*types.Package),
		source:  make(map[string]*types.Package),
		listDir: dirs[0],
	}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookup)

	prog := &Program{
		Fset:  fset,
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		lp := &listPackage{ImportPath: filepath.Base(dir), Dir: dir}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			lp.GoFiles = append(lp.GoFiles, name)
		}
		sort.Strings(lp.GoFiles)
		pkg, err := ld.checkFromSource(lp, prog.Sizes)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// listExport resolves one import path to its export data file via the go
// command (local build cache only).
func listExport(dir, path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "--", path)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	var p listPackage
	if err := json.Unmarshal(out, &p); err != nil {
		return "", err
	}
	if p.Export == "" {
		return "", fmt.Errorf("no export data")
	}
	return p.Export, nil
}

// A Finding is one diagnostic after suppression processing, ready to print.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// Run executes the analyzers (plus their transitive requirements, in
// dependency order) over every package of prog, applies the
// //lint:allow cuckoovet:<name> suppression directives, and returns the
// surviving findings sorted by position.
func Run(prog *Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	findings, _, err := RunChecks(prog, analyzers, nil)
	return findings, err
}

// AnalyzerTime is one analyzer's wall time accumulated across every
// package of the load (plus its End hook, if any).
type AnalyzerTime struct {
	Name    string
	Elapsed time.Duration
}

// RunChecks is Run with two extras for the multichecker front end:
// knownChecks names every check the tool as a whole registers — so that
// when a -checks subset runs, an allow directive for an unselected check
// is neither misreported as "unknown check" nor as "suppresses nothing"
// (nil means the selected analyzers are the full registry) — and the
// returned AnalyzerTime slice reports per-analyzer wall time in run
// order.
func RunChecks(prog *Program, analyzers []*analysis.Analyzer, knownChecks []string) ([]Finding, []AnalyzerTime, error) {
	order, err := expand(analyzers)
	if err != nil {
		return nil, nil, err
	}
	facts := analysis.NewFactStore()
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	elapsed := make(map[*analysis.Analyzer]time.Duration, len(order))
	for _, pkg := range prog.Packages {
		results := make(map[*analysis.Analyzer]any)
		for _, a := range order {
			pass := analysis.NewPass(a, prog.Fset, pkg.Files, pkg.Types, pkg.Info, prog.Sizes, results, facts, report)
			start := time.Now()
			res, err := a.Run(pass)
			elapsed[a] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("driver: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			results[a] = res
		}
	}
	// Whole-program End hooks: every package's summaries and facts are in
	// the store, so root-to-leaf walks and interface resolution see the
	// complete universe. The pass is bound to the last module package.
	if len(prog.Packages) > 0 {
		last := prog.Packages[len(prog.Packages)-1]
		for _, a := range order {
			if a.End == nil {
				continue
			}
			pass := analysis.NewPass(a, prog.Fset, last.Files, last.Types, last.Info, prog.Sizes, map[*analysis.Analyzer]any{}, facts, report)
			start := time.Now()
			err := a.End(pass)
			elapsed[a] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("driver: %s (end): %v", a.Name, err)
			}
		}
	}
	ran := make(map[string]bool, len(order))
	times := make([]AnalyzerTime, 0, len(order))
	for _, a := range order {
		ran[a.Name] = true
		times = append(times, AnalyzerTime{Name: a.Name, Elapsed: elapsed[a]})
	}
	known := ran
	if knownChecks != nil {
		known = make(map[string]bool, len(knownChecks))
		for _, name := range knownChecks {
			known[name] = true
		}
		for name := range ran {
			known[name] = true
		}
	}
	return applyAllows(prog, known, ran, diags), times, nil
}

// expand returns analyzers plus requirements in topological order.
func expand(roots []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	seen := make(map[*analysis.Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch seen[a] {
		case 1:
			return fmt.Errorf("driver: analyzer requirement cycle at %s", a.Name)
		case 2:
			return nil
		}
		seen[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		seen[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range roots {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

const allowPrefix = "//lint:allow cuckoovet:"

// applyAllows filters diagnostics through the suppression directives and
// appends the driver's own findings about the directives themselves
// (unknown check names, missing reasons, unused allows) under the
// pseudo-check "allowcheck". known holds every registered check name;
// ran holds the checks that executed this run — a directive is judged
// stale only against checks that actually produced diagnostics to
// suppress.
func applyAllows(prog *Program, known, ran map[string]bool, diags []analysis.Diagnostic) []Finding {
	// directives indexed by file name and the line they govern.
	type key struct {
		file  string
		line  int
		check string
	}
	directives := make(map[key]*allowDirective)
	var all []*allowDirective
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					name, reason, _ := strings.Cut(rest, " ")
					pos := prog.Fset.Position(c.Pos())
					d := &allowDirective{pos: pos, check: name, reason: strings.TrimSpace(reason)}
					all = append(all, d)
					// A directive governs its own line (end-of-line form)
					// and the line below (own-line form).
					directives[key{pos.Filename, pos.Line, name}] = d
					directives[key{pos.Filename, pos.Line + 1, name}] = d
				}
			}
		}
	}

	var out []Finding
	for _, diag := range diags {
		pos := prog.Fset.Position(diag.Pos)
		if d, ok := directives[key{pos.Filename, pos.Line, diag.Category}]; ok && d.reason != "" {
			d.used = true
			continue
		}
		out = append(out, Finding{Pos: pos, Check: diag.Category, Message: diag.Message})
	}
	for _, d := range all {
		switch {
		case !known[d.check]:
			out = append(out, Finding{Pos: d.pos, Check: "allowcheck",
				Message: fmt.Sprintf("allow directive names unknown check %q", d.check)})
		case d.reason == "":
			out = append(out, Finding{Pos: d.pos, Check: "allowcheck",
				Message: fmt.Sprintf("allow directive for cuckoovet:%s must carry a reason (\"//lint:allow cuckoovet:%s why it is safe\")", d.check, d.check)})
		case !ran[d.check]:
			// The check exists but was excluded from this run (-checks
			// subset): no diagnostics were produced for it, so staleness
			// cannot be judged.
		case !d.used:
			out = append(out, Finding{Pos: d.pos, Check: "allowcheck",
				Message: fmt.Sprintf("allow directive for cuckoovet:%s suppresses nothing; delete it", d.check)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
