package driver_test

import (
	"strings"
	"testing"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/driver"
	"cuckoohash/internal/analysis/lockorder"
)

// TestAllowDirectives checks the suppression machinery end to end: a
// reasoned directive silences the finding on the next line, while unknown
// check names, missing reasons and unused directives are reported under
// the allowcheck pseudo-check.
func TestAllowDirectives(t *testing.T) {
	prog, err := driver.LoadDirs("../testdata/src/stripelib", "../testdata/src/allowtest")
	if err != nil {
		t.Fatalf("loading allowtest: %v", err)
	}
	findings, err := driver.Run(prog, []*analysis.Analyzer{lockorder.Analyzer})
	if err != nil {
		t.Fatalf("running lockorder: %v", err)
	}
	want := []struct{ check, substr string }{
		{"lockorder", "while stripe lock"},              // unsuppressed double lock
		{"allowcheck", `unknown check "nosuchcheck"`},   // bogus check name
		{"allowcheck", "must carry a reason"},           // reasonless directive
		{"allowcheck", "suppresses nothing; delete it"}, // unused directive
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(want))
	}
	for _, w := range want {
		found := false
		for _, f := range findings {
			if f.Check == w.check && strings.Contains(f.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			for _, f := range findings {
				t.Logf("finding: %s", f)
			}
			t.Errorf("no %s finding containing %q", w.check, w.substr)
		}
	}
	// The reasoned directive must have suppressed the double lock in
	// suppressedOwnLineDirective: exactly one lockorder finding survives.
	n := 0
	for _, f := range findings {
		if f.Check == "lockorder" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("got %d lockorder findings, want 1 (the unsuppressed one)", n)
	}
}
