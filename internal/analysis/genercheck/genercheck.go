// Package genercheck checks the two-generation invariants of the
// incremental-resize protocol (generic/migrate.go).
//
// An incremental grow publishes the live arrays and the draining old
// generations behind one state pointer, and mutating that pointer is how
// both grow-start and migration-finish announce themselves. Code that
// loads the state and then touches bucket arrays is only correct if it
// re-checks, under the covering stripes, that the state it loaded is
// still published — otherwise it can read or write arrays of a
// generation that was retired (or grown past) between the load and the
// lock. Similarly, a bucket's migrated mark is set exactly once, when
// the bucket is empty forever; touching a generation's arrays after
// marking would resurrect data the readers are entitled to never see
// again.
//
// The analyzer is structural, like its siblings: it recognizes the
// protocol by method and field names rather than concrete types, so the
// testdata goldens and the real table are checked by the same rules.
// Per function body:
//
//   - R1: if the function obtains a generation state (calls a method
//     named loadState) and indexes a bucket array (a field named keys,
//     vals or occ), every such access must be positionally preceded by a
//     stateValid call — the re-check that pins the generation set for
//     the critical section.
//   - R2: no bucket-array access may positionally follow a markMigrated
//     call: once a bucket is marked, its generation must never be
//     touched again from that code path.
//
// Helpers that receive arrays as parameters and never call loadState are
// exempt from R1 — validation is their caller's obligation (that is why
// Range and Clear copy buckets through free functions).
package genercheck

import (
	"go/ast"
	"go/token"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "genercheck",
	Doc: "flag generation-array accesses that skip the stateValid re-check " +
		"or follow a markMigrated (incremental-resize protocol)",
	Run: run,
}

// genArrayFields are the bucket-array field names of the table's
// generation arrays; indexing one of these is what the rules guard.
var genArrayFields = map[string]bool{"keys": true, "vals": true, "occ": true}

const (
	evLoad = iota
	evValidate
	evMark
	evAccess
)

// event is one protocol-relevant operation in source order.
type event struct {
	pos  token.Pos
	kind int
	what string
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range checkutil.Bodies(file) {
			checkBody(pass, fb.Body)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event

	checkutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate body, walked on its own
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := checkutil.Callee(pass.TypesInfo, x)
			if fn == nil || checkutil.Receiver(pass.TypesInfo, x) == nil {
				return true
			}
			switch fn.Name() {
			case "loadState":
				events = append(events, event{x.Pos(), evLoad, "loadState"})
			case "stateValid":
				events = append(events, event{x.Pos(), evValidate, "stateValid"})
			case "markMigrated":
				events = append(events, event{x.Pos(), evMark, "markMigrated"})
			}
		case *ast.IndexExpr:
			if f := checkutil.FieldOf(pass.TypesInfo, x.X); f != nil && genArrayFields[f.Name()] {
				events = append(events, event{x.Pos(), evAccess, f.Name()})
			}
		}
		return true
	})

	haveLoad := false
	for _, e := range events {
		if e.kind == evLoad {
			haveLoad = true
			break
		}
	}

	validated := false // a stateValid call has been seen
	marked := ""       // nonempty once a markMigrated call has been seen
	for _, e := range events {
		switch e.kind {
		case evValidate:
			validated = true
		case evMark:
			marked = "markMigrated"
		case evAccess:
			if haveLoad && !validated {
				pass.Reportf(e.pos, "generation array %q accessed without a preceding stateValid re-check; the loaded generation set may have been republished before the stripes were taken", e.what)
			}
			if marked != "" {
				pass.Reportf(e.pos, "generation array %q accessed after %s; a marked bucket's generation is retired and must never be touched again", e.what, marked)
			}
		}
	}
}
