package genercheck_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/genercheck"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("generchecktest")},
		genercheck.Analyzer)
}
