package genercheck_test

import (
	"go/types"
	"strings"
	"testing"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/allocfree"
	"cuckoohash/internal/analysis/callgraph"
	"cuckoohash/internal/analysis/cuckoovet"
	"cuckoohash/internal/analysis/driver"
	"cuckoohash/internal/analysis/genercheck"
)

// TestServerInstantiation regression-tests Origin() normalization on the
// real module: the server instantiates generic.Table[string, entry], and
// analyzing both packages together must neither duplicate the Table's
// summaries per instantiation nor miss the server-side hot-path proofs.
func TestServerInstantiation(t *testing.T) {
	getFacts := 0
	var hotRoots []string
	probe := &analysis.Analyzer{
		Name:     "probe",
		Doc:      "count generic.Table summary facts after the full run",
		Requires: []*analysis.Analyzer{callgraph.Analyzer},
		Run:      func(pass *analysis.Pass) (any, error) { return nil, nil },
		End: func(pass *analysis.Pass) error {
			for _, of := range pass.AllObjectFacts(&callgraph.FuncFact{}) {
				fn, ok := of.Object.(*types.Func)
				if !ok {
					continue
				}
				if strings.Contains(fn.FullName(), "generic.Table") && strings.HasSuffix(fn.FullName(), ".Get") {
					getFacts++
				}
			}
			for _, of := range pass.AllObjectFacts(&allocfree.HotFact{}) {
				if fn, ok := of.Object.(*types.Func); ok {
					hotRoots = append(hotRoots, fn.FullName())
				}
			}
			return nil
		},
	}

	prog, err := driver.Load("../../..", "./generic", "./server")
	if err != nil {
		t.Fatalf("loading generic+server: %v", err)
	}
	var names []string
	for _, a := range cuckoovet.Analyzers() {
		names = append(names, a.Name)
	}
	findings, _, err := driver.RunChecks(prog,
		[]*analysis.Analyzer{genercheck.Analyzer, allocfree.Analyzer, probe}, names)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on the clean tree: %s", f)
	}
	if getFacts != 1 {
		t.Errorf("got %d summary facts for generic.Table.Get, want exactly 1 (Origin-normalized)", getFacts)
	}
	// The server instantiates the table; its hot roots and the generic
	// package's own must all have been collected in one universe.
	wantRoots := []string{"generic.GetBytes", "GetBytesTraced", ").Get"}
	for _, frag := range wantRoots {
		found := false
		for _, r := range hotRoots {
			if strings.Contains(r, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no //cuckoo:hotpath root matching %q collected (have %v)", frag, hotRoots)
		}
	}
}
