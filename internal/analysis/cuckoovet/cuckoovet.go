// Package cuckoovet is the registry of this repository's analyzers: the
// single list the cmd/cuckoovet multichecker, the CI gate and the smoke
// test all run, so the three can never drift apart.
package cuckoovet

import (
	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/align64"
	"cuckoohash/internal/analysis/allocfree"
	"cuckoohash/internal/analysis/atomicfield"
	"cuckoohash/internal/analysis/blockcheck"
	"cuckoohash/internal/analysis/genercheck"
	"cuckoohash/internal/analysis/htmpure"
	"cuckoohash/internal/analysis/lockorder"
	"cuckoohash/internal/analysis/obscheck"
	"cuckoohash/internal/analysis/padcheck"
	"cuckoohash/internal/analysis/seqlock"
)

// Analyzers returns the full suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		atomicfield.Analyzer,
		align64.Analyzer,
		padcheck.Analyzer,
		seqlock.Analyzer,
		genercheck.Analyzer,
		htmpure.Analyzer,
		obscheck.Analyzer,
		allocfree.Analyzer,
		blockcheck.Analyzer,
	}
}
