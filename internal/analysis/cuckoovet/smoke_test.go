package cuckoovet_test

import (
	"testing"

	"cuckoohash/internal/analysis/cuckoovet"
	"cuckoohash/internal/analysis/driver"
)

// TestTreeClean runs the full analyzer suite over every package of the
// module and requires zero unsuppressed findings: the concurrency
// invariants the suite encodes (§4.2 atomic discipline, §4.4 lock
// ordering, Eq. 1 snapshot/validate, §5 transaction purity, P1 padding)
// must hold everywhere, always. A regression that reintroduces an
// unordered lock pair or a plain atomic access fails this test and CI.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := driver.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := driver.Run(prog, cuckoovet.Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
