package callgraph_test

import (
	"go/types"
	"strings"
	"testing"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/callgraph"
	"cuckoohash/internal/analysis/driver"
)

// loadGraph runs the callgraph analyzer over the callgraphtest fixture
// and captures the per-package Graph plus the pass (for fact access).
func loadGraph(t *testing.T) (*callgraph.Graph, *analysis.Pass) {
	t.Helper()
	var g *callgraph.Graph
	var captured *analysis.Pass
	probe := &analysis.Analyzer{
		Name:     "probe",
		Doc:      "capture the callgraph result",
		Requires: []*analysis.Analyzer{callgraph.Analyzer},
		Run: func(pass *analysis.Pass) (any, error) {
			g, _ = pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
			captured = pass
			return nil, nil
		},
	}
	prog, err := driver.LoadDirs("../testdata/src/callgraphtest")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if _, err := driver.Run(prog, []*analysis.Analyzer{probe}); err != nil {
		t.Fatalf("running callgraph: %v", err)
	}
	if g == nil || captured == nil {
		t.Fatal("probe did not capture a callgraph result")
	}
	return g, captured
}

// sumByName finds a declared function's summary by display name.
func sumByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Summary {
	t.Helper()
	for _, sum := range g.Funcs {
		if sum.Name == name {
			return sum
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestInterfaceDispatch(t *testing.T) {
	g, pass := loadGraph(t)
	sum := sumByName(t, g, "callgraphtest.dispatch")
	if len(sum.Calls) != 1 {
		t.Fatalf("dispatch: got %d call edges, want 1", len(sum.Calls))
	}
	call := sum.Calls[0]
	if call.Iface == nil || call.Iface.Name() != "ring" {
		t.Fatalf("dispatch edge is not an interface call on ring: %+v", call)
	}
	impls := callgraph.Implementers(pass, call.Iface, nil)
	var names []string
	for _, fn := range impls {
		names = append(names, callgraph.DisplayName(fn))
	}
	if len(impls) != 2 {
		t.Fatalf("Implementers(ring) = %v, want bell and gong", names)
	}
	want := map[string]bool{"(*bell).ring": true, "(*gong).ring": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected implementer %s", n)
		}
	}
}

func TestMethodValueThroughLocal(t *testing.T) {
	g, _ := loadGraph(t)
	sum := sumByName(t, g, "callgraphtest.methodValue")
	var resolved []string
	for _, call := range sum.Calls {
		if call.Callee != nil {
			resolved = append(resolved, callgraph.DisplayName(call.Callee))
		}
	}
	if len(resolved) != 1 || resolved[0] != "(*widget).inc" {
		t.Fatalf("methodValue resolved callees = %v, want [(*widget).inc]", resolved)
	}
}

func TestMutualRecursionEdges(t *testing.T) {
	g, _ := loadGraph(t)
	even := sumByName(t, g, "callgraphtest.even")
	odd := sumByName(t, g, "callgraphtest.odd")
	if len(even.Calls) != 1 || even.Calls[0].Callee != odd.Fn {
		t.Fatalf("even's edge does not resolve to odd: %+v", even.Calls)
	}
	if len(odd.Calls) != 1 || odd.Calls[0].Callee != even.Fn {
		t.Fatalf("odd's edge does not resolve to even: %+v", odd.Calls)
	}
}

func TestStructFieldFuncs(t *testing.T) {
	g, pass := loadGraph(t)
	sum := sumByName(t, g, "callgraphtest.invokeField")
	if len(sum.Calls) != 1 {
		t.Fatalf("invokeField: got %d call edges, want 1", len(sum.Calls))
	}
	call := sum.Calls[0]
	if call.Field == nil || call.Field.Name() != "onPing" {
		t.Fatalf("invokeField edge is not a field call on onPing: %+v", call)
	}
	var ff callgraph.FieldFuncs
	if !pass.ImportObjectFact(call.Field, &ff) {
		t.Fatal("no FieldFuncs fact on onPing despite in-module stores")
	}
	if ff.Opaque {
		t.Error("onPing marked opaque; both stores are resolvable")
	}
	if len(ff.Funcs) != 1 || ff.Funcs[0].Name() != "named" {
		t.Errorf("onPing stored funcs = %v, want [named]", ff.Funcs)
	}
	if len(ff.Lits) != 1 {
		t.Errorf("onPing stored literals = %d, want 1", len(ff.Lits))
	}
}

func TestGenericOriginNormalization(t *testing.T) {
	g, pass := loadGraph(t)
	sum := sumByName(t, g, "callgraphtest.generic")
	var callees []*types.Func
	for _, call := range sum.Calls {
		if call.Callee != nil {
			callees = append(callees, call.Callee)
		}
	}
	if len(callees) != 2 {
		t.Fatalf("generic: got %d static callees, want 2", len(callees))
	}
	if callees[0] != callees[1] {
		t.Errorf("pair[int].first and pair[string].first resolve to distinct funcs: %v vs %v",
			callees[0].FullName(), callees[1].FullName())
	}
	if callees[0] != callees[0].Origin() {
		t.Errorf("callee %v is not Origin-normalized", callees[0].FullName())
	}
	if callgraph.Lookup(pass, callees[0]) != callgraph.Lookup(pass, callees[1]) {
		t.Error("instantiations look up different summaries")
	}
	// Exactly one summary fact exists for the origin declaration.
	count := 0
	for _, of := range pass.AllObjectFacts(&callgraph.FuncFact{}) {
		if fn, ok := of.Object.(*types.Func); ok && strings.HasSuffix(fn.FullName(), ".first") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("got %d summary facts for pair.first, want exactly 1", count)
	}
}
