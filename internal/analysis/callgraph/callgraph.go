// Package callgraph builds the interprocedural layer of the cuckoovet
// suite: a per-function summary of allocation-relevant operations and
// outgoing calls, exported as object facts over the driver's single shared
// go/types universe so later packages (and whole-program End hooks) can
// walk the call graph bottom-up.
//
// Call edges are resolved RTA-style: static calls (including instantiated
// generics, normalized to their Origin declaration) resolve directly;
// interface calls carry the abstract method and are resolved by consumers
// against the set of module-defined implementers (exported here as type
// facts); calls through function-typed parameters carry the parameter
// index so a caller's argument can be substituted; calls through
// function-typed struct fields resolve to every function value the module
// ever stores into that field. Anything else is an unknown dynamic call,
// which consumers treat conservatively.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

// OpKind classifies one allocation- or blocking-relevant operation.
type OpKind uint8

const (
	OpMake     OpKind = iota // make() or map/slice composite literal
	OpNew                    // new() or &CompositeLit
	OpAppend                 // append()
	OpClosure                // function literal (may heap-allocate its closure)
	OpMapWrite               // m[k] = v
	OpConcat                 // string concatenation
	OpStrConv                // string<->[]byte conversion outside exempt positions
	OpBox                    // explicit conversion of a non-pointer value to an interface
	OpGo                     // goroutine launch
	OpChanSend               // ch <- v
	OpChanRecv               // <-ch
	OpSelect                 // select statement
)

func (k OpKind) String() string {
	switch k {
	case OpMake:
		return "allocation (make)"
	case OpNew:
		return "allocation (new)"
	case OpAppend:
		return "allocation (append)"
	case OpClosure:
		return "closure allocation"
	case OpMapWrite:
		return "map write"
	case OpConcat:
		return "string concatenation"
	case OpStrConv:
		return "string conversion"
	case OpBox:
		return "interface boxing"
	case OpGo:
		return "goroutine launch"
	case OpChanSend:
		return "channel send"
	case OpChanRecv:
		return "channel receive"
	case OpSelect:
		return "select"
	}
	return "operation"
}

// Blocks reports whether the operation can park the goroutine (the
// blockcheck axis; the allocation axis is every kind except these three,
// plus OpGo which is both a heap allocation and a scheduler call).
func (k OpKind) Blocks() bool {
	return k == OpChanSend || k == OpChanRecv || k == OpSelect
}

// A Site is one operation of interest inside a function body.
type Site struct {
	Pos  token.Pos
	Op   OpKind
	What string   // short operand description for diagnostics
	Lit  *Summary // for OpClosure: the literal's own summary
}

// A Call is one outgoing call edge.
type Call struct {
	Pos      token.Pos
	Callee   *types.Func // static callee (Origin-normalized); nil otherwise
	RecvType types.Type  // static receiver type for method calls
	Iface    *types.Func // interface method for dynamic dispatch
	Field    *types.Var  // func-typed struct field being invoked
	Param    int         // index of the enclosing function's parameter being invoked; -1 otherwise
	Lit      *Summary    // directly-invoked function literal
	Unknown  bool        // unresolvable dynamic call
	Go       bool        // launched with `go`
	Deferred bool
	Args     []ArgVal // function-valued arguments, with their positions
}

// ArgVal is one function-valued argument of a call: a static function
// (Origin-normalized), a literal, or a hand-off of the enclosing
// function's own parameter (Param >= 0).
type ArgVal struct {
	Index int // argument position = callee parameter index
	Fn    *types.Func
	Lit   *Summary
	Param int // -1 unless this argument is the enclosing function's parameter
}

// ParamUse records how one parameter of a function is used, for the
// closure-escape reasoning in allocfree: a function-typed parameter that
// is only ever invoked (or passed on to another call-only parameter)
// never forces its argument literal onto the heap.
type ParamUse struct {
	Escapes bool // used other than as call.Fun, a call argument, or a nil comparison
	Passes  []ParamPass
}

// ParamPass is one hand-off of a parameter as an argument to another call.
type ParamPass struct {
	Call *Call
	Arg  int
}

// A Summary is the callgraph's per-function digest.
type Summary struct {
	Fn     *types.Func // nil for function literals
	Name   string      // display name for diagnostics
	Pos    token.Pos
	Sites  []Site
	Calls  []Call
	Params []ParamUse // indexed by parameter position
}

// FuncFact attaches a function's summary to its (Origin) types.Func.
type FuncFact struct{ S *Summary }

func (*FuncFact) AFact() {}

// TypeFact marks a module-defined named type that carries methods: the
// RTA candidate set for interface-call resolution.
type TypeFact struct{ Named *types.Named }

func (*TypeFact) AFact() {}

// FieldFuncs accumulates, on a func-typed struct field, every function
// value the module stores into that field (composite literals and
// assignments). Unresolvable stores set Opaque.
type FieldFuncs struct {
	Funcs  []*types.Func
	Lits   []*Summary
	Opaque bool
}

func (*FieldFuncs) AFact() {}

// Graph is the per-package result: summaries for this package's declared
// functions and literals, for same-package consumers that need AST-level
// association (the blockcheck region scanner).
type Graph struct {
	Funcs map[*types.Func]*Summary
	Lits  map[*ast.FuncLit]*Summary
}

// Analyzer builds per-function call/allocation summaries.
var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc: "build per-function call-graph and allocation summaries\n\n" +
		"Not a check itself: exports the bottom-up summary facts the\n" +
		"interprocedural analyzers (allocfree, blockcheck, lockorder)\n" +
		"consume.",
	Run: run,
}

// DisplayName is the compact diagnostic name for a function:
// "pkg.Name" for package functions, "(*Recv).Name" for methods.
func DisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			star = "*"
		}
		if n := checkutil.NamedOf(t); n != nil {
			return "(" + star + n.Obj().Name() + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Lookup returns fn's summary fact, if one was exported (fn is normalized
// to its Origin declaration first, so instantiated generic methods share
// the declared method's summary).
func Lookup(pass *analysis.Pass, fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	var ff FuncFact
	if pass.ImportObjectFact(fn.Origin(), &ff) {
		return ff.S
	}
	return nil
}

// Implementers resolves an interface method against every module type
// exported as an RTA candidate, returning the concrete methods a dynamic
// call could dispatch to. filter, when non-nil, limits candidates to
// types whose defining package it accepts.
func Implementers(pass *analysis.Pass, method *types.Func, filter func(*types.Package) bool) []*types.Func {
	sig, ok := method.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, of := range pass.AllObjectFacts(&TypeFact{}) {
		named := of.Fact.(*TypeFact).Named
		if filter != nil && !filter(named.Obj().Pkg()) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, method.Pkg(), method.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn.Origin())
		}
	}
	return out
}

// Imports reports whether pkg transitively imports target (or is target):
// the visibility filter used to keep RTA candidate sets honest — a root
// cannot dispatch to a type its component could never have constructed.
func Imports(pkg, target *types.Package) bool {
	if pkg == nil || target == nil {
		return false
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) bool
	walk = func(p *types.Package) bool {
		if p == target {
			return true
		}
		if seen[p] {
			return false
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(pkg)
}

func run(pass *analysis.Pass) (any, error) {
	g := &Graph{
		Funcs: make(map[*types.Func]*Summary),
		Lits:  make(map[*ast.FuncLit]*Summary),
	}
	b := &builder{pass: pass, g: g}

	// Two passes: create every summary first so literal references and
	// same-package argument edges resolve, then fill them in.
	type work struct {
		fb  checkutil.FuncBody
		sum *Summary
	}
	var todo []work
	for _, f := range pass.Files {
		for _, fb := range checkutil.Bodies(f) {
			sum := &Summary{Pos: fb.Body.Pos()}
			if fb.Decl != nil {
				fn, _ := pass.TypesInfo.Defs[fb.Decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				sum.Fn = fn
				sum.Name = DisplayName(fn)
				g.Funcs[fn] = sum
			} else {
				sum.Name = "func literal"
				g.Lits[fb.Lit] = sum
			}
			todo = append(todo, work{fb, sum})
		}
	}
	for _, w := range todo {
		b.fill(w.sum, w.fb)
	}
	for fn, sum := range g.Funcs {
		pass.ExportObjectFact(fn.Origin(), &FuncFact{S: sum})
	}

	// RTA candidates: every package-scope named type with methods.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.NumMethods() == 0 {
			continue
		}
		pass.ExportObjectFact(tn, &TypeFact{Named: named})
	}
	return g, nil
}

type builder struct {
	pass *analysis.Pass
	g    *Graph
}

// signatureOf returns the function's own signature.
func (b *builder) signatureOf(fb checkutil.FuncBody) *types.Signature {
	if fb.Decl != nil {
		if fn, ok := b.pass.TypesInfo.Defs[fb.Decl.Name].(*types.Func); ok {
			return fn.Type().(*types.Signature)
		}
		return nil
	}
	if tv, ok := b.pass.TypesInfo.Types[fb.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

func (b *builder) fill(sum *Summary, fb checkutil.FuncBody) {
	info := b.pass.TypesInfo
	sig := b.signatureOf(fb)
	paramIdx := make(map[*types.Var]int)
	if sig != nil {
		sum.Params = make([]ParamUse, sig.Params().Len())
		for i := 0; i < sig.Params().Len(); i++ {
			paramIdx[sig.Params().At(i)] = i
		}
	}
	// Idents whose use the call/compare visitors already classified; any
	// other use of a func-typed parameter marks it escaping.
	accounted := make(map[*ast.Ident]bool)
	locals := b.localFuncs(fb)

	checkutil.WalkStack(fb.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if isIIFE(x, stack) {
				return true // body executes right here: inline it
			}
			if lit := b.g.Lits[x]; lit != nil {
				sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpClosure, What: "func literal", Lit: lit})
			}
			return false // the literal has its own summary
		case *ast.CallExpr:
			b.call(sum, x, paramIdx, locals, accounted, stack)
		case *ast.GoStmt:
			sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpGo, What: "go statement"})
		case *ast.SendStmt:
			sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpChanSend, What: "channel send"})
		case *ast.SelectStmt:
			sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpSelect, What: "select"})
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ARROW:
				sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpChanRecv, What: "channel receive"})
			case token.AND:
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpNew, What: "&composite literal"})
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpChanRecv, What: "range over channel"})
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(info, x) {
				sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpConcat, What: "string +"})
			}
			// fn == nil / fn != nil does not make a parameter escape.
			if x.Op == token.EQL || x.Op == token.NEQ {
				accountNilCompare(info, x, accounted)
			}
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpMake, What: "map literal"})
			case *types.Slice:
				sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpMake, What: "slice literal"})
			}
			b.compositeFieldFuncs(x)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if tv, ok := info.Types[idx.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							sum.Sites = append(sum.Sites, Site{Pos: lhs.Pos(), Op: OpMapWrite, What: "map assignment"})
						}
					}
				}
			}
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info, x.Lhs[0]) {
				sum.Sites = append(sum.Sites, Site{Pos: x.Pos(), Op: OpConcat, What: "string +="})
			}
			b.assignFieldFuncs(x)
		}
		return true
	})

	// Any unclassified use of a func-typed parameter is an escape. Nested
	// literals are walked too: a parameter captured by a closure was not
	// classified by this function's call visitor, so it counts as escaping
	// — conservative, which is the right direction here.
	if sig != nil {
		ast.Inspect(fb.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || accounted[id] {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok {
				if i, isParam := paramIdx[v]; isParam {
					if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
						sum.Params[i].Escapes = true
					}
				}
			}
			return true
		})
	}
}

// isIIFE reports whether lit is a zero-parameter function literal invoked
// directly where it is written (func(){...}(), possibly deferred): its
// body runs in the enclosing frame, so it is inlined into the enclosing
// summary — which also lets calls to captured parameters resolve, the
// runOnce recover-wrapper pattern.
func isIIFE(lit *ast.FuncLit, stack []ast.Node) bool {
	if lit.Type.Params != nil && len(lit.Type.Params.List) > 0 {
		return false
	}
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == ast.Expr(lit)
}

// localSrc is the single resolved source of a func-typed local variable,
// for the `f := t.cfg.Hook; f(...)` idiom. Reassigned or unresolvable
// locals are poisoned.
type localSrc struct {
	field *types.Var
	fn    *types.Func
	lit   *Summary
	bad   bool
}

// localFuncs pre-scans a body for func-typed locals with exactly one
// resolvable assignment, so calls through them resolve like the source.
func (b *builder) localFuncs(fb checkutil.FuncBody) map[*types.Var]*localSrc {
	info := b.pass.TypesInfo
	locals := make(map[*types.Var]*localSrc)
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil || v.IsField() {
			return
		}
		if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
			return
		}
		if prev, seen := locals[v]; seen {
			prev.bad = true // reassigned: no single source
			return
		}
		src := &localSrc{}
		locals[v] = src
		switch r := ast.Unparen(rhs).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[r].(*types.Func); ok {
				src.fn = fn.Origin()
				return
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[r]; ok {
				switch sel.Kind() {
				case types.FieldVal:
					if f, ok := sel.Obj().(*types.Var); ok {
						src.field = f
						return
					}
				case types.MethodVal, types.MethodExpr:
					if fn, ok := sel.Obj().(*types.Func); ok {
						src.fn = fn.Origin()
						return
					}
				}
			} else if fn, ok := info.Uses[r.Sel].(*types.Func); ok {
				src.fn = fn.Origin()
				return
			}
		case *ast.FuncLit:
			if lit := b.g.Lits[r]; lit != nil {
				src.lit = lit
				return
			}
		}
		if tv, ok := info.Types[rhs]; ok && tv.IsNil() {
			return // f = nil: nothing callable flows in
		}
		src.bad = true
	}
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		} else {
			for _, lhs := range as.Lhs {
				record(lhs, as.Rhs[0]) // multi-value: poisoned below
			}
		}
		return true
	})
	return locals
}

// call records one call expression: conversion sites, builtin allocation
// sites, or an outgoing call edge.
func (b *builder) call(sum *Summary, call *ast.CallExpr, paramIdx map[*types.Var]int, locals map[*types.Var]*localSrc, accounted map[*ast.Ident]bool, stack []ast.Node) {
	info := b.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		b.conversion(sum, call, tv.Type, stack)
		return
	}

	// Builtins.
	switch checkutil.BuiltinName(info, call) {
	case "make":
		sum.Sites = append(sum.Sites, Site{Pos: call.Pos(), Op: OpMake, What: "make"})
		return
	case "new":
		sum.Sites = append(sum.Sites, Site{Pos: call.Pos(), Op: OpNew, What: "new"})
		return
	case "append":
		sum.Sites = append(sum.Sites, Site{Pos: call.Pos(), Op: OpAppend, What: "append"})
		return
	case "":
	default:
		return // len, cap, copy, delete, panic, min, max, ...
	}

	edge := Call{Pos: call.Pos(), Param: -1}
	deferred, goStmt := false, false
	if len(stack) > 0 {
		switch stack[len(stack)-1].(type) {
		case *ast.DeferStmt:
			deferred = true
		case *ast.GoStmt:
			goStmt = true
		}
	}
	edge.Deferred, edge.Go = deferred, goStmt

	// Unwrap explicit generic instantiation: f[T](...) / recv.m[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	switch f := fun.(type) {
	case *ast.Ident:
		accounted[f] = true
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			edge.Callee = obj.Origin()
		case *types.Var:
			if i, ok := paramIdx[obj]; ok {
				edge.Param = i
			} else if obj.IsField() {
				edge.Field = obj
			} else if src, ok := locals[obj]; ok && !src.bad {
				switch {
				case src.field != nil:
					edge.Field = src.field
				case src.fn != nil:
					edge.Callee = src.fn
				case src.lit != nil:
					edge.Lit = src.lit
				default:
					edge.Unknown = true
				}
			} else {
				edge.Unknown = true
			}
		default:
			edge.Unknown = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn := sel.Obj().(*types.Func)
				edge.RecvType = sel.Recv()
				if types.IsInterface(sel.Recv()) {
					edge.Iface = fn.Origin()
				} else {
					edge.Callee = fn.Origin()
				}
			case types.MethodExpr:
				if fn, ok := sel.Obj().(*types.Func); ok {
					edge.Callee = fn.Origin()
				} else {
					edge.Unknown = true
				}
			case types.FieldVal:
				if v, ok := sel.Obj().(*types.Var); ok {
					edge.Field = v
				} else {
					edge.Unknown = true
				}
			default:
				edge.Unknown = true
			}
		} else if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			edge.Callee = fn.Origin() // package-qualified call
		} else {
			edge.Unknown = true
		}
	case *ast.FuncLit:
		if f.Type.Params == nil || len(f.Type.Params.List) == 0 {
			return // IIFE: body inlined into this summary by the literal visitor
		}
		edge.Lit = b.g.Lits[f]
	default:
		edge.Unknown = true
	}

	// Function-valued arguments: static functions, method values, and
	// literals, plus parameter hand-offs for the escape analysis.
	for i, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.Ident:
			switch obj := info.Uses[a].(type) {
			case *types.Func:
				accounted[a] = true
				edge.Args = append(edge.Args, ArgVal{Index: i, Fn: obj.Origin(), Param: -1})
			case *types.Var:
				if pi, ok := paramIdx[obj]; ok {
					if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
						accounted[a] = true
						edge.Args = append(edge.Args, ArgVal{Index: i, Param: pi})
					}
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[a]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					edge.Args = append(edge.Args, ArgVal{Index: i, Fn: fn.Origin(), Param: -1})
				}
			} else if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
				edge.Args = append(edge.Args, ArgVal{Index: i, Fn: fn.Origin(), Param: -1})
			}
		case *ast.FuncLit:
			if lit := b.g.Lits[a]; lit != nil {
				edge.Args = append(edge.Args, ArgVal{Index: i, Lit: lit, Param: -1})
			}
		}
	}
	sum.Calls = append(sum.Calls, edge)
	c := &sum.Calls[len(sum.Calls)-1]
	for _, a := range c.Args {
		if a.Param >= 0 {
			sum.Params[a.Param].Passes = append(sum.Params[a.Param].Passes, ParamPass{Call: c, Arg: a.Index})
		}
	}
}

// conversion records string<->[]byte conversions and interface boxing.
// The compiler-recognized free positions — a []byte->string conversion
// used as a map index or compared with == / != — are exempt.
func (b *builder) conversion(sum *Summary, call *ast.CallExpr, target types.Type, stack []ast.Node) {
	info := b.pass.TypesInfo
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	atv, ok := info.Types[arg]
	if !ok || atv.Value != nil || atv.IsNil() { // constant/nil conversions are free
		return
	}
	from, to := atv.Type, target
	switch {
	case isString(to) && isByteSlice(from):
		if conversionExempt(info, call, stack) {
			return
		}
		sum.Sites = append(sum.Sites, Site{Pos: call.Pos(), Op: OpStrConv, What: "string([]byte)"})
	case isByteSlice(to) && isString(from):
		sum.Sites = append(sum.Sites, Site{Pos: call.Pos(), Op: OpStrConv, What: "[]byte(string)"})
	case types.IsInterface(to) && !types.IsInterface(from):
		if _, isPtr := from.Underlying().(*types.Pointer); !isPtr {
			sum.Sites = append(sum.Sites, Site{Pos: call.Pos(), Op: OpBox, What: "conversion to interface"})
		}
	}
}

// conversionExempt reports whether a string([]byte) conversion sits in a
// position the compiler does not materialize: a map index m[string(b)],
// or either side of an == / != comparison.
func conversionExempt(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.IndexExpr:
			tv, ok := info.Types[p.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap || ast.Unparen(p.Index) != ast.Expr(call) {
				return false
			}
			// Only the lookup position is free; m[string(b)] = v must
			// materialize the key.
			if i > 0 {
				if as, ok := stack[i-1].(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if ast.Unparen(lhs) == ast.Expr(p) {
							return false
						}
					}
				}
			}
			return true
		case *ast.BinaryExpr:
			return p.Op == token.EQL || p.Op == token.NEQ
		default:
			return false
		}
	}
	return false
}

// compositeFieldFuncs records function values stored into struct fields
// through composite literals: S{Handler: f}.
func (b *builder) compositeFieldFuncs(lit *ast.CompositeLit) {
	info := b.pass.TypesInfo
	if _, ok := info.Types[lit].Type.Underlying().(*types.Struct); !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field, ok := info.Uses[key].(*types.Var)
		if !ok || !field.IsField() {
			continue
		}
		if _, isFunc := field.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		b.recordFieldStore(field, kv.Value)
	}
}

// assignFieldFuncs records function values stored into struct fields
// through assignments: s.Handler = f.
func (b *builder) assignFieldFuncs(assign *ast.AssignStmt) {
	info := b.pass.TypesInfo
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			continue
		}
		if _, isFunc := field.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		b.recordFieldStore(field, assign.Rhs[i])
	}
}

func (b *builder) recordFieldStore(field *types.Var, rhs ast.Expr) {
	info := b.pass.TypesInfo
	var ff FieldFuncs
	b.pass.ImportObjectFact(field, &ff)
	switch v := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			ff.Funcs = append(ff.Funcs, fn.Origin())
		} else if info.Types[rhs].IsNil() {
			break // clearing the field stores nothing callable
		} else {
			ff.Opaque = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				ff.Funcs = append(ff.Funcs, fn.Origin())
				break
			}
		}
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			ff.Funcs = append(ff.Funcs, fn.Origin())
		} else {
			ff.Opaque = true
		}
	case *ast.FuncLit:
		if lit := b.g.Lits[v]; lit != nil {
			ff.Lits = append(ff.Lits, lit)
		} else {
			ff.Opaque = true
		}
	default:
		if !info.Types[rhs].IsNil() {
			ff.Opaque = true
		}
	}
	b.pass.ExportObjectFact(field, &ff)
}

func accountNilCompare(info *types.Info, x *ast.BinaryExpr, accounted map[*ast.Ident]bool) {
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			accounted[id] = true
		}
	}
	if info.Types[x.X].IsNil() {
		mark(x.Y)
	}
	if info.Types[x.Y].IsNil() {
		mark(x.X)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type)
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type) && tv.Value == nil
}