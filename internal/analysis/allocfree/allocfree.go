// Package allocfree proves annotated hot-path roots allocation-free.
//
// The paper's request-path throughput (§5, Fig. 9) assumes GET and SET
// never touch the allocator: one heap allocation per operation caps the
// table at the collector's speed, not the hardware's. A function marked
//
//	//cuckoo:hotpath <note>
//
// is a proof root: walking its call-graph summary (package callgraph)
// transitively, every reachable operation must be allocation-free.
// make/new/append, closure allocation, map writes, string concatenation
// and conversions (outside the compiler's free map-lookup and ==
// positions), interface boxing, goroutine launches, and calls into
// unanalyzed (standard-library) functions off the known-clean list are
// all reported, with the full root → site call chain in the diagnostic.
//
// //cuckoo:coldpath marks a deliberate slow path (BFS path search, table
// growth, eviction): the walk stops there, and the annotation is the
// audited promise that the function is off the per-operation fast path.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/callgraph"
)

// HotFact marks a //cuckoo:hotpath proof root.
type HotFact struct{ Note string }

func (*HotFact) AFact() {}

// ColdFact marks a //cuckoo:coldpath walk stop.
type ColdFact struct{ Note string }

func (*ColdFact) AFact() {}

const (
	hotMarker  = "//cuckoo:hotpath"
	coldMarker = "//cuckoo:coldpath"
)

// Analyzer is the allocation-freedom prover.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "prove //cuckoo:hotpath roots allocation-free (§5 request path)\n\n" +
		"Walks the call graph from each annotated root and reports any\n" +
		"transitively reachable heap allocation with its full call chain.",
	Requires: []*analysis.Analyzer{callgraph.Analyzer},
	Run:      run,
	End:      end,
}

// cleanFuncs are standard-library functions known not to allocate,
// keyed by types.Func.FullName. Everything unlisted outside the module
// is conservatively may-allocate.
var cleanFuncs = map[string]bool{
	"time.Now":              true,
	"(time.Time).UnixNano":  true,
	"(time.Time).Unix":      true,
	"(time.Time).Add":       true,
	"(time.Time).Sub":       true,
	"(time.Time).Before":    true,
	"(time.Time).After":     true,
	"(time.Time).IsZero":    true,
	"(time.Time).Equal":     true,
	"(time.Duration).Nanoseconds": true,
	"(time.Duration).Seconds":     true,
	"runtime.Gosched":       true,
	"runtime.KeepAlive":     true,
	"hash/maphash.String":     true,
	"hash/maphash.Bytes":      true,
	"hash/maphash.Comparable": true,
	"hash/maphash.MakeSeed":   true,
	"errors.Is":             true,
	"bytes.IndexByte":       true,
	// ParseInt/ParseUint allocate only the *NumError on malformed input;
	// the success path — the one a proof about steady-state traffic is
	// about — is allocation-free. FormatInt is deliberately absent: it
	// builds a new string on every call past the small-int cache.
	"strconv.ParseInt":  true,
	"strconv.ParseUint": true,
	"(*bufio.Writer).Write":       true,
	"(*bufio.Writer).WriteString": true,
	"(*bufio.Writer).WriteByte":   true,
	"(*bufio.Writer).Available":   true,
	"(*bufio.Writer).Buffered":    true,
	"(*bufio.Writer).Flush":       true,
	"(*sync.Mutex).Lock":     true,
	"(*sync.Mutex).Unlock":   true,
	"(*sync.Mutex).TryLock":  true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": true,
}

// cleanPkgs are whole packages whose functions and methods never
// allocate.
var cleanPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

func run(pass *analysis.Pass) (any, error) {
	// Collect the annotations; the proof itself runs in End, when every
	// package's summaries are in the fact store.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, c := range fd.Doc.List {
				if note, ok := markerNote(c.Text, hotMarker); ok {
					pass.ExportObjectFact(fn.Origin(), &HotFact{Note: note})
				}
				if note, ok := markerNote(c.Text, coldMarker); ok {
					pass.ExportObjectFact(fn.Origin(), &ColdFact{Note: note})
				}
			}
		}
	}
	return nil, nil
}

func markerNote(text, marker string) (string, bool) {
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	rest := strings.TrimPrefix(text, marker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // some other //cuckoo:hotpathX word
	}
	return strings.TrimSpace(rest), true
}

func end(pass *analysis.Pass) error {
	roots := pass.AllObjectFacts(&HotFact{})
	sort.Slice(roots, func(i, j int) bool { return roots[i].Object.Pos() < roots[j].Object.Pos() })

	// Packages the analysis summarized: an interface method from any other
	// package is an unknown implementation space.
	modulePkgs := make(map[*types.Package]bool)
	for _, of := range pass.AllObjectFacts(&FuncFactProto) {
		if p := of.Object.Pkg(); p != nil {
			modulePkgs[p] = true
		}
	}

	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		fn, ok := root.Object.(*types.Func)
		if !ok {
			continue
		}
		sum := callgraph.Lookup(pass, fn)
		if sum == nil {
			pass.Reportf(fn.Pos(), "//cuckoo:hotpath root %s has no call-graph summary (no body?)", fn.Name())
			continue
		}
		c := &checker{
			pass:       pass,
			rootPkg:    fn.Pkg(),
			rootName:   sum.Name,
			modulePkgs: modulePkgs,
			onstack:    make(map[*callgraph.Summary]bool),
			reachMemo:  make(map[*types.Package]bool),
			reported:   reported,
		}
		c.walk(sum, nil, []string{sum.Name}, 0)
	}
	return nil
}

// FuncFactProto exists only to enumerate summarized packages.
var FuncFactProto callgraph.FuncFact

// maxOffenses caps diagnostics per root so one broken helper does not
// flood the report.
const maxOffenses = 20

// binding maps a callee's parameter index to the function values the
// caller passed, for substituting calls through function parameters.
type binding struct {
	vals map[int][]bound
}

type bound struct {
	fn  *types.Func
	lit *callgraph.Summary
}

type checker struct {
	pass       *analysis.Pass
	rootPkg    *types.Package
	rootName   string
	modulePkgs map[*types.Package]bool
	onstack    map[*callgraph.Summary]bool
	reachMemo  map[*types.Package]bool
	reported   map[token.Pos]bool
	count      int
}

func (c *checker) report(pos token.Pos, chain []string, format string, args ...any) {
	if c.count >= maxOffenses {
		return
	}
	c.count++
	if c.reported[pos] {
		return // another root already flagged this site
	}
	c.reported[pos] = true
	msg := fmt.Sprintf(format, args...)
	c.pass.Reportf(pos, "%s reachable from //cuckoo:hotpath root %s: %s",
		msg, c.rootName, strings.Join(chain, " -> "))
}

// reaches reports whether the root's package transitively imports p — the
// RTA visibility filter: a component cannot dispatch to an implementation
// it could never have constructed.
func (c *checker) reaches(p *types.Package) bool {
	if v, ok := c.reachMemo[p]; ok {
		return v
	}
	v := callgraph.Imports(c.rootPkg, p)
	c.reachMemo[p] = v
	return v
}

func (c *checker) walk(sum *callgraph.Summary, bind *binding, chain []string, depth int) {
	if depth > 100 || c.onstack[sum] || c.count >= maxOffenses {
		return
	}
	c.onstack[sum] = true
	defer delete(c.onstack, sum)

	for i := range sum.Sites {
		site := &sum.Sites[i]
		switch site.Op {
		case callgraph.OpChanSend, callgraph.OpChanRecv, callgraph.OpSelect:
			continue // blocking, not allocating: blockcheck's domain
		case callgraph.OpClosure:
			if c.closureSafe(sum, site.Lit) {
				continue
			}
		}
		c.report(site.Pos, chain, "%s (%s)", site.Op, site.What)
	}

	for i := range sum.Calls {
		call := &sum.Calls[i]
		if call.Go {
			continue // the launch is the OpGo site; the body runs elsewhere
		}
		c.walkCall(sum, call, bind, chain, depth)
	}
}

func (c *checker) walkCall(sum *callgraph.Summary, call *callgraph.Call, bind *binding, chain []string, depth int) {
	switch {
	case call.Callee != nil:
		c.walkCallee(call, call.Callee, bind, chain, depth)
	case call.Iface != nil:
		m := call.Iface
		if m.Pkg() != nil && !c.modulePkgs[m.Pkg()] {
			c.report(call.Pos, chain, "dynamic call through non-module interface method %s", m.FullName())
			return
		}
		impls := callgraph.Implementers(c.pass, m, c.reaches)
		for _, impl := range impls {
			c.walkCallee(call, impl, bind, chain, depth)
		}
	case call.Param >= 0:
		if bind == nil {
			return // unbound: the root's own contract covers its callers
		}
		for _, b := range bind.vals[call.Param] {
			if b.fn != nil {
				c.walkCallee(call, b.fn, bind, chain, depth)
			}
			if b.lit != nil {
				c.descend(call, b.lit, bind, chain, depth)
			}
		}
	case call.Field != nil:
		var ff callgraph.FieldFuncs
		if !c.pass.ImportObjectFact(call.Field, &ff) {
			return // never assigned in-module: nothing can be called
		}
		if ff.Opaque {
			c.report(call.Pos, chain, "call through field %s with unanalyzable stored values", call.Field.Name())
			return
		}
		for _, fn := range ff.Funcs {
			c.walkCallee(call, fn, bind, chain, depth)
		}
		for _, lit := range ff.Lits {
			c.descend(call, lit, bind, chain, depth)
		}
	case call.Lit != nil:
		c.descend(call, call.Lit, bind, chain, depth)
	case call.Unknown:
		c.report(call.Pos, chain, "unresolvable dynamic call")
	}
}

func (c *checker) walkCallee(call *callgraph.Call, fn *types.Func, bind *binding, chain []string, depth int) {
	var cold ColdFact
	if c.pass.ImportObjectFact(fn, &cold) {
		return // audited slow path
	}
	callee := callgraph.Lookup(c.pass, fn)
	if callee == nil {
		if c.cleanExternal(fn) {
			return
		}
		c.report(call.Pos, chain, "call into unanalyzed %s", fn.FullName())
		return
	}
	c.descend(call, callee, bind, chain, depth)
}

// descend walks into a callee summary, building its parameter binding
// from the call's function-valued arguments. An argument that is itself
// one of the caller's parameters is resolved through the caller's own
// binding.
func (c *checker) descend(call *callgraph.Call, callee *callgraph.Summary, callerBind *binding, chain []string, depth int) {
	var bind *binding
	add := func(idx int, b bound) {
		if bind == nil {
			bind = &binding{vals: make(map[int][]bound)}
		}
		bind.vals[idx] = append(bind.vals[idx], b)
	}
	for _, a := range call.Args {
		switch {
		case a.Param >= 0:
			if callerBind != nil {
				for _, b := range callerBind.vals[a.Param] {
					add(a.Index, b)
				}
			}
		case a.Fn != nil:
			add(a.Index, bound{fn: a.Fn})
		case a.Lit != nil:
			add(a.Index, bound{lit: a.Lit})
		}
	}
	c.walk(callee, bind, append(chain[:len(chain):len(chain)], callee.Name), depth+1)
}

// cleanExternal reports whether an unsummarized function is on the
// known-clean list.
func (c *checker) cleanExternal(fn *types.Func) bool {
	if p := fn.Pkg(); p != nil && cleanPkgs[p.Path()] {
		return true
	}
	return cleanFuncs[fn.FullName()]
}

// closureSafe reports whether a function literal never forces a heap
// allocation: it is only ever invoked directly, deferred, or handed to
// parameters that are themselves call-only all the way down.
func (c *checker) closureSafe(sum *callgraph.Summary, lit *callgraph.Summary) bool {
	if lit == nil {
		return false
	}
	for i := range sum.Calls {
		call := &sum.Calls[i]
		if call.Lit == lit {
			if call.Go {
				return false // go func(){...}(): the goroutine allocates
			}
			continue // immediately invoked or deferred: stack-allocated
		}
		for _, a := range call.Args {
			if a.Lit != lit {
				continue
			}
			if !c.paramCallOnly(call, a.Index, make(map[*callgraph.Summary]bool)) {
				return false
			}
		}
	}
	// References outside call positions were already classified by the
	// builder as part of the enclosing summary; a literal that is stored,
	// returned, or captured shows up with no justifying call edge. Verify
	// at least one edge consumed it.
	for i := range sum.Calls {
		call := &sum.Calls[i]
		if call.Lit == lit && !call.Go {
			return true
		}
		for _, a := range call.Args {
			if a.Lit == lit {
				return true
			}
		}
	}
	return false
}

// paramCallOnly reports whether the target parameter of call is only ever
// invoked (never stored or leaked), transitively through hand-offs.
func (c *checker) paramCallOnly(call *callgraph.Call, arg int, seen map[*callgraph.Summary]bool) bool {
	if call.Callee == nil {
		return false // interface, field, or dynamic target: assume it leaks
	}
	callee := callgraph.Lookup(c.pass, call.Callee)
	if callee == nil {
		return false // unsummarized (stdlib) consumer
	}
	if seen[callee] {
		return true
	}
	seen[callee] = true
	if arg >= len(callee.Params) {
		return false // variadic or mismatched: be conservative
	}
	p := callee.Params[arg]
	if p.Escapes {
		return false
	}
	for _, pass := range p.Passes {
		if !c.paramCallOnly(pass.Call, pass.Arg, seen) {
			return false
		}
	}
	return true
}