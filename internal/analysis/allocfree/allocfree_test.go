package allocfree_test

import (
	"testing"

	"cuckoohash/internal/analysis/allocfree"
	"cuckoohash/internal/analysis/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("allocfreetest")},
		allocfree.Analyzer)
}
