// Package checkutil holds the small AST/type helpers shared by the
// cuckoovet analyzers.
package checkutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the static callee of call, or nil for calls through
// non-constant function values, built-ins, and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// BuiltinName returns the name of the built-in function called by call
// ("make", "panic", ...) or "".
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// Receiver returns the receiver expression of a method call, or nil.
func Receiver(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// IsAtomicPkgFunc reports whether fn is a function of package sync/atomic
// (AddUint64, LoadUint64, ...). Methods of the atomic.Uint64-style types
// are not matched; those types enforce their own discipline.
func IsAtomicPkgFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// HasMethods reports whether t (or *t) has all of the named methods.
func HasMethods(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, ok := t.(*types.Pointer); !ok {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for _, name := range names {
		found := false
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// NamedOf unwraps pointers and aliases to the named type of t, if any.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// IsAtomicType reports whether t is one of sync/atomic's typed atomics
// (atomic.Uint64, atomic.Pointer[T], ...).
func IsAtomicType(t types.Type) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// FieldOf returns the struct-field (or package-level var) object an
// addressable expression ultimately denotes, unwrapping index, star and
// paren wrappers: &t.stats.restarts, &t.keys[i] and &pkgVar all resolve.
func FieldOf(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				v, _ := sel.Obj().(*types.Var)
				return v
			}
			// Package-qualified var.
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
				return v
			}
			return nil
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// WalkStack is ast.Inspect plus an ancestor stack: push is called with the
// node and its ancestors (outermost first, not including the node itself).
func WalkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(n, stack)
		stack = append(stack, n)
		if !keep {
			stack = stack[:len(stack)-1]
		}
		return keep
	})
}

// FuncBodies yields every function body of the file along with the
// enclosing function's types object (nil for function literals not bound
// to a declaration). Nested literals are yielded separately and are not
// re-entered by the outer walk.
type FuncBody struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
}

// Bodies collects the function declarations and literals of file, each
// once.
func Bodies(file *ast.File) []FuncBody {
	var out []FuncBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, FuncBody{Decl: fn, Body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncBody{Lit: fn, Body: fn.Body})
		}
		return true
	})
	return out
}

// HasTypeParams reports whether t transitively contains a type parameter,
// in which case concrete sizes/offsets cannot be computed.
func HasTypeParams(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.(type) {
		case *types.TypeParam:
			return true
		case *types.Named:
			if u.TypeParams().Len() > 0 && u.TypeArgs().Len() == 0 {
				return true
			}
			for i := 0; i < u.TypeArgs().Len(); i++ {
				if walk(u.TypeArgs().At(i)) {
					return true
				}
			}
			return walk(u.Underlying())
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Map:
			return walk(u.Key()) || walk(u.Elem())
		case *types.Chan:
			return walk(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Alias:
			return walk(types.Unalias(t))
		}
		return false
	}
	return walk(t)
}

// PkgPathIn reports whether fn's package path is one of paths.
func PkgPathIn(fn *types.Func, paths ...string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	for _, want := range paths {
		if p == want || strings.HasPrefix(p, want+"/") {
			return true
		}
	}
	return false
}
