// Package padcheck enforces cache-line padding for sharded hot counters.
//
// Principle P1 of PR 2 (after §4.2/§6 of the paper): a per-shard or
// per-stripe counter exists precisely so that concurrent writers touch
// different cache lines; if the shard struct's size is not a multiple of
// the 64-byte line, adjacent shards share a line and the sharding buys
// nothing — the counter array becomes the coherence hotspot it was built
// to avoid. The bug is invisible to every dynamic tool (the code is
// race-free and correct, just slow), so it is checked statically: any
// struct type that contains atomic state and is used as the element of an
// array or slice must have sizeof % 64 == 0.
package padcheck

import (
	"go/ast"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/atomicfield"
	"cuckoohash/internal/analysis/checkutil"
)

const cacheLine = 64

var Analyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc: "flag arrays/slices of atomic-bearing shard structs whose size is " +
		"not a multiple of the 64-byte cache line (false sharing, principle P1)",
	Requires: []*analysis.Analyzer{atomicfield.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	reported := make(map[*types.Named]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			at, ok := n.(*ast.ArrayType)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[at]
			if !ok {
				return true
			}
			var elem types.Type
			switch u := tv.Type.Underlying().(type) {
			case *types.Array:
				elem = u.Elem()
			case *types.Slice:
				elem = u.Elem()
			default:
				return true
			}
			named := checkutil.NamedOf(elem)
			if named == nil || reported[named] {
				return true
			}
			// A bare []atomic.Uint64 is not a shard struct: dense version
			// tables (one word per stripe) deliberately pack words per
			// line; the rule governs composite per-shard counter records.
			if checkutil.IsAtomicType(named) {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			if checkutil.HasTypeParams(named) || !containsAtomic(pass, st, 0) {
				return true
			}
			size := pass.TypesSizes.Sizeof(st)
			if size%cacheLine == 0 {
				return true
			}
			reported[named] = true
			pass.Reportf(at.Pos(),
				"shard type %s holds atomic counters but is %d bytes (not a multiple of the %d-byte cache line): adjacent shards will false-share; pad with _ [%d]byte (principle P1)",
				named.Obj().Name(), size, cacheLine, (cacheLine-size%cacheLine)%cacheLine)
			return true
		})
	}
	return nil, nil
}

// containsAtomic reports whether the struct transitively holds atomic
// state: a sync/atomic typed field, or a field under atomicfield
// discipline.
func containsAtomic(pass *analysis.Pass, st *types.Struct, depth int) bool {
	if depth > 4 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		t := f.Type()
		if checkutil.IsAtomicType(t) {
			return true
		}
		if pass.ImportObjectFact(f, &atomicfield.IsAtomic{}) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			if containsAtomic(pass, u, depth+1) {
				return true
			}
		case *types.Array:
			if inner, ok := u.Elem().Underlying().(*types.Struct); ok && containsAtomic(pass, inner, depth+1) {
				return true
			}
			if checkutil.IsAtomicType(u.Elem()) {
				return true
			}
		}
	}
	return false
}
