package padcheck_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/padcheck"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("padchecktest")},
		padcheck.Analyzer)
}
