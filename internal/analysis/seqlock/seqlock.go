// Package seqlock checks the optimistic-reader protocol around striped
// version counters.
//
// §4.2 of the paper (Eq. 1): a lock-free lookup snapshots the version of
// each candidate bucket's stripe, reads the bucket, and then re-checks
// that the versions did not move; if either check is skipped the reader
// can return a value torn by a concurrent displacement, and because the
// displacement window is a handful of nanoseconds the corruption shows up
// roughly never in tests and regularly in production. The analyzer treats
// any type with Snapshot and Validate methods as a seqlock provider and
// enforces, per function outside the provider's package:
//
//   - every Snapshot is followed by at least one Validate (the re-read);
//   - no Validate appears without a preceding Snapshot (the begin);
//   - a Snapshot's result is actually consumed;
//   - the window between the first Snapshot and the last Validate is
//     write-free on shared state: no field stores, no Lock/Unlock/Store
//     method calls, no sync/atomic mutators. The reader path must not
//     dirty shared cache lines (§4.2's "reads should be optimistic").
package seqlock

import (
	"go/ast"
	"go/token"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "seqlock",
	Doc: "flag broken Snapshot/Validate pairings and writes on the " +
		"optimistic reader path (§4.2, Eq. 1 re-read protocol)",
	Run: run,
}

func isProvider(t types.Type) bool {
	return checkutil.HasMethods(t, "Snapshot", "Validate")
}

// event is one protocol-relevant operation in source order.
type event struct {
	pos  token.Pos
	kind int // 0 snapshot, 1 validate, 2 write
	what string
}

const (
	evSnapshot = iota
	evValidate
	evWrite
)

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range checkutil.Bodies(file) {
			checkBody(pass, fb.Body)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	exempt := false

	checkutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate body, walked on its own
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := checkutil.Callee(pass.TypesInfo, x)
			recv := checkutil.Receiver(pass.TypesInfo, x)
			if fn != nil && recv != nil && isProvider(pass.TypesInfo.Types[recv].Type) {
				if fn.Pkg() == pass.Pkg {
					// The provider package implements the protocol.
					exempt = true
					return false
				}
				switch fn.Name() {
				case "Snapshot":
					events = append(events, event{x.Pos(), evSnapshot, types.ExprString(recv)})
					if len(stack) > 0 {
						if _, bare := stack[len(stack)-1].(*ast.ExprStmt); bare {
							pass.Reportf(x.Pos(), "Snapshot result discarded; the version must be kept and re-checked with Validate (Eq. 1)")
						}
					}
				case "Validate":
					events = append(events, event{x.Pos(), evValidate, types.ExprString(recv)})
				case "Lock", "Unlock", "LockPair", "UnlockPair", "LockAll", "UnlockAll", "Store", "Add":
					// Mutating the version stripes themselves mid-window is
					// the most direct way to break Eq. 1.
					events = append(events, event{x.Pos(), evWrite, fn.Name()})
				}
				return true
			}
			// Mutating method calls count as writes in the window.
			if fn != nil && recv != nil {
				switch fn.Name() {
				case "Lock", "Unlock", "LockPair", "UnlockPair", "Store", "Add", "Swap", "CompareAndSwap", "Inc":
					events = append(events, event{x.Pos(), evWrite, fn.Name()})
				}
			}
			if fn := checkutil.Callee(pass.TypesInfo, x); checkutil.IsAtomicPkgFunc(fn) {
				switch {
				case fn.Name() == "LoadUint64" || fn.Name() == "LoadUint32" ||
					fn.Name() == "LoadInt64" || fn.Name() == "LoadInt32" ||
					fn.Name() == "LoadPointer" || fn.Name() == "LoadUintptr":
					// reads are fine
				default:
					events = append(events, event{x.Pos(), evWrite, "atomic." + fn.Name()})
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if fieldWrite(pass, lhs) {
					events = append(events, event{lhs.Pos(), evWrite, "field store"})
				}
			}
		case *ast.IncDecStmt:
			if fieldWrite(pass, x.X) {
				events = append(events, event{x.Pos(), evWrite, "field update"})
			}
		}
		return true
	})

	if exempt {
		return
	}

	nSnap, nVal := 0, 0
	var firstSnap, lastVal token.Pos = token.NoPos, token.NoPos
	for _, e := range events {
		switch e.kind {
		case evSnapshot:
			nSnap++
			if firstSnap == token.NoPos {
				firstSnap = e.pos
			}
		case evValidate:
			if nSnap == 0 {
				pass.Reportf(e.pos, "Validate without a preceding Snapshot in this function; the optimistic read has no begin version (§4.2)")
			}
			nVal++
			lastVal = e.pos
		}
	}
	if nSnap > 0 && nVal == 0 {
		for _, e := range events {
			if e.kind == evSnapshot {
				pass.Reportf(e.pos, "Snapshot is never validated in this function; an overlapping displacement goes undetected (§4.2, Eq. 1)")
			}
		}
	}
	if firstSnap != token.NoPos && lastVal != token.NoPos {
		for _, e := range events {
			if e.kind == evWrite && e.pos > firstSnap && e.pos < lastVal {
				pass.Reportf(e.pos, "%s between Snapshot and Validate: the optimistic reader path must not write shared state (§4.2)", e.what)
			}
		}
	}
}

// fieldWrite reports whether lhs stores through a struct field or a
// package-level variable (i.e. potentially shared state, as opposed to a
// function-local).
func fieldWrite(pass *analysis.Pass, lhs ast.Expr) bool {
	return checkutil.FieldOf(pass.TypesInfo, lhs) != nil
}
