package seqlock_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/seqlock"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("stripelib"), analysistest.Dir("seqlocktest")},
		seqlock.Analyzer)
}
