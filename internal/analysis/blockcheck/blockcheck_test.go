package blockcheck_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/blockcheck"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{
			analysistest.Dir("stripelib"),
			analysistest.Dir("htmlib"),
			analysistest.Dir("blockchecktest"),
		},
		blockcheck.Analyzer)
}
