// Package blockcheck proves critical sections free of blocking calls.
//
// Three region kinds must never park the goroutine, no matter how deep
// the call chain:
//
//   - spinlock critical sections: a waiter burns CPU for as long as the
//     holder is off the processor, so a holder that parks (mutex wait,
//     channel op, I/O, time.Sleep) turns the paper's short §4.4 stripe
//     holds into scheduler-scale stalls;
//   - seqlock read windows (§4.2): the window between Snapshot and
//     Validate is only cheap if it is a handful of loads — blocking
//     inside it guarantees version churn and retry storms;
//   - HTM transaction bodies (§5): on real TSX any syscall aborts the
//     transaction every single time.
//
// Regions are detected per function (including regions opened by helpers
// that return with stripes held, like lockAllGens), then checked
// transitively over the callgraph summaries, resolving interface calls
// against every module implementer. Function values passed to a callee
// that invokes them inside a region (txn.WithLockSpan's fn argument) are
// checked at each call site that supplies them.
//
// Blocking is a deny list: sync lock/wait primitives, channel operations
// and select, time.Sleep/After/Tick, and calls into I/O packages (os,
// net, io, bufio, syscall, log, fmt print/scan). runtime.Gosched — the
// spin loop's own yield — is explicitly fine, as are the spin locks
// themselves.
package blockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/callgraph"
	"cuckoohash/internal/analysis/checkutil"
)

// A Region is one no-blocking proof obligation: the top-level statements
// of Sum between From and To.
type Region struct {
	Kind     string // human description, e.g. "spinlock critical section on s.locks"
	From, To token.Pos
	Sum      *callgraph.Summary
}

// RegionsFact carries a function's regions (including those of its
// nested literals) to the whole-program End pass.
type RegionsFact struct{ Regions []Region }

func (*RegionsFact) AFact() {}

// ParamRegion marks one parameter a function invokes inside a region.
type ParamRegion struct {
	Index int
	Kind  string
}

// ParamRegionFact lists the parameters of a function that are called
// with a region active — every caller's argument becomes a region.
type ParamRegionFact struct{ Params []ParamRegion }

func (*ParamRegionFact) AFact() {}

// NetAcquireFact marks a helper that returns with spin locks still held
// (lockAllGens): a call to it opens a region in the caller.
type NetAcquireFact struct{}

func (*NetAcquireFact) AFact() {}

// Analyzer is the no-blocking prover.
var Analyzer = &analysis.Analyzer{
	Name: "blockcheck",
	Doc: "prove spinlock/seqlock/HTM regions never block (§4.2, §4.4, §5)\n\n" +
		"No mutex wait, channel operation, select, sleep, or I/O call may\n" +
		"be transitively reachable from a spinlock critical section, a\n" +
		"Snapshot/Validate read window, or a transaction body.",
	Requires: []*analysis.Analyzer{callgraph.Analyzer},
	Run:      run,
	End:      end,
}

// isSpinLock recognizes busy-waiting lock providers structurally: the
// Lock/Unlock pair plus the Locked or LockPair surface of this module's
// spinlock types. sync.Mutex (Lock/Unlock/TryLock only) stays out — it
// parks, and parking on it is exactly what this analyzer reports.
func isSpinLock(t types.Type) bool {
	return checkutil.HasMethods(t, "Lock", "Unlock") &&
		(checkutil.HasMethods(t, "Locked") || checkutil.HasMethods(t, "LockPair"))
}

func isSeqlock(t types.Type) bool {
	return checkutil.HasMethods(t, "Snapshot", "Validate")
}

func isTxnType(t types.Type) bool {
	return checkutil.HasMethods(t, "Load", "Store", "Abort")
}

// definingPkg returns the package that declares t's named type.
func definingPkg(t types.Type) *types.Package {
	if n := checkutil.NamedOf(t); n != nil && n.Obj() != nil {
		return n.Obj().Pkg()
	}
	return nil
}

func run(pass *analysis.Pass) (any, error) {
	g, _ := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
	if g == nil {
		return nil, nil
	}
	r := &runner{
		pass:   pass,
		g:      g,
		bodies: make(map[*types.Func]checkutil.FuncBody),
		encl:   make(map[*ast.FuncLit]*types.Func),
		net:    make(map[*types.Func]int), // 0 unknown, 1 computing, 2 done
	}
	var fbs []checkutil.FuncBody
	for _, f := range pass.Files {
		for _, fb := range checkutil.Bodies(f) {
			fbs = append(fbs, fb)
			if fb.Decl != nil {
				fn, _ := pass.TypesInfo.Defs[fb.Decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				r.bodies[fn] = fb
				lits := fb.Decl
				ast.Inspect(lits, func(n ast.Node) bool {
					if l, ok := n.(*ast.FuncLit); ok {
						r.encl[l] = fn
					}
					return true
				})
			}
		}
	}

	perFn := make(map[*types.Func]*RegionsFact)
	perFnParams := make(map[*types.Func]*ParamRegionFact)
	for _, fb := range fbs {
		var sum *callgraph.Summary
		var owner *types.Func
		if fb.Decl != nil {
			fn, _ := pass.TypesInfo.Defs[fb.Decl.Name].(*types.Func)
			if fn == nil {
				continue
			}
			owner, sum = fn, g.Funcs[fn]
		} else {
			owner, sum = r.encl[fb.Lit], g.Lits[fb.Lit]
		}
		if sum == nil || owner == nil {
			continue
		}
		regions := r.detect(fb, sum)
		if len(regions) == 0 {
			continue
		}
		rf := perFn[owner]
		if rf == nil {
			rf = &RegionsFact{}
			perFn[owner] = rf
		}
		rf.Regions = append(rf.Regions, regions...)
		// Parameters of this function invoked inside one of its regions.
		for _, reg := range regions {
			for i := range sum.Calls {
				call := &sum.Calls[i]
				if call.Param < 0 || call.Pos < reg.From || call.Pos > reg.To {
					continue
				}
				pf := perFnParams[owner]
				if pf == nil {
					pf = &ParamRegionFact{}
					perFnParams[owner] = pf
				}
				have := false
				for _, p := range pf.Params {
					if p.Index == call.Param {
						have = true
						break
					}
				}
				if !have {
					pf.Params = append(pf.Params, ParamRegion{Index: call.Param, Kind: reg.Kind})
				}
			}
		}
	}
	for fn, rf := range perFn {
		pass.ExportObjectFact(fn.Origin(), rf)
	}
	for fn, pf := range perFnParams {
		pass.ExportObjectFact(fn.Origin(), pf)
	}
	return nil, nil
}

type runner struct {
	pass   *analysis.Pass
	g      *callgraph.Graph
	bodies map[*types.Func]checkutil.FuncBody
	encl   map[*ast.FuncLit]*types.Func
	net    map[*types.Func]int
}

// netAcquires reports whether fn returns with spin locks held: a direct
// acquire surplus, counting deferred releases as releases and calls to
// other net-acquiring helpers as acquires.
func (r *runner) netAcquires(fn *types.Func) bool {
	fn = fn.Origin()
	var nf NetAcquireFact
	if r.pass.ImportObjectFact(fn, &nf) {
		return true
	}
	switch r.net[fn] {
	case 1: // cycle: assume balanced
		return false
	case 2:
		return false // computed, and no fact was exported
	}
	fb, ok := r.bodies[fn]
	if !ok {
		r.net[fn] = 2
		return false
	}
	r.net[fn] = 1
	acq, rel := 0, 0
	info := r.pass.TypesInfo
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv := checkutil.Receiver(info, call); recv != nil {
			t := info.Types[recv].Type
			if isSpinLock(t) && definingPkg(t) != r.pass.Pkg {
				switch checkutil.Callee(info, call).Name() {
				case "Lock", "LockPair", "LockOrdered", "LockAll":
					acq++
				case "Unlock", "UnlockPair", "UnlockOrdered", "UnlockAll":
					rel++
				}
			}
			return true
		}
		if callee := checkutil.Callee(info, call); callee != nil && r.netAcquires(callee) {
			acq++
		}
		return true
	})
	r.net[fn] = 2
	if acq > rel {
		r.pass.ExportObjectFact(fn, &NetAcquireFact{})
		return true
	}
	return false
}

// detect scans one function body linearly for regions.
func (r *runner) detect(fb checkutil.FuncBody, sum *callgraph.Summary) []Region {
	info := r.pass.TypesInfo
	var regions []Region

	// HTM: a body taking the transaction handle is one whole region.
	sig := signatureOf(r.pass, fb)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			pt := sig.Params().At(i).Type()
			if isTxnType(pt) && definingPkg(pt) != r.pass.Pkg {
				regions = append(regions, Region{
					Kind: "HTM transaction body",
					From: fb.Body.Pos(), To: fb.Body.End(), Sum: sum,
				})
				break
			}
		}
	}

	type openReg struct {
		key      string
		from     token.Pos
		sentinel bool
	}
	var opens []openReg
	var snapFirst, valLast token.Pos

	closeAt := func(key string, pos token.Pos, kindFmt string) {
		idx := -1
		for i := len(opens) - 1; i >= 0; i-- {
			if opens[i].key == key {
				idx = i
				break
			}
		}
		if idx < 0 {
			for i := len(opens) - 1; i >= 0; i-- {
				if opens[i].sentinel {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return
		}
		o := opens[idx]
		opens = append(opens[:idx], opens[idx+1:]...)
		if o.from < pos {
			regions = append(regions, Region{
				Kind: fmt.Sprintf(kindFmt, o.key),
				From: o.from, To: pos, Sum: sum,
			})
		}
	}

	checkutil.WalkStack(fb.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // literals carry their own regions
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		deferred := false
		if len(stack) > 0 {
			_, deferred = stack[len(stack)-1].(*ast.DeferStmt)
		}
		recv := checkutil.Receiver(info, call)
		if recv == nil {
			if callee := checkutil.Callee(info, call); callee != nil && !deferred && r.netAcquires(callee) {
				opens = append(opens, openReg{
					key:      "locks held by " + callee.Name(),
					from:     call.End(),
					sentinel: true,
				})
			}
			return true
		}
		t := info.Types[recv].Type
		key := types.ExprString(recv)
		if isSpinLock(t) && definingPkg(t) != r.pass.Pkg {
			switch checkutil.Callee(info, call).Name() {
			case "Lock", "LockPair", "LockOrdered", "LockAll":
				if !deferred {
					opens = append(opens, openReg{key: key, from: call.End()})
				}
			case "Unlock", "UnlockPair", "UnlockOrdered", "UnlockAll":
				if !deferred {
					closeAt(key, call.Pos(), "spinlock critical section on %s")
				}
				// A deferred release closes at body end, below.
			}
		}
		if isSeqlock(t) && definingPkg(t) != r.pass.Pkg {
			switch checkutil.Callee(info, call).Name() {
			case "Snapshot":
				if !snapFirst.IsValid() {
					snapFirst = call.End()
				}
			case "Validate":
				valLast = call.Pos()
			}
		}
		return true
	})

	// Deferred releases and never-released acquires: region to body end.
	for _, o := range opens {
		if o.from < fb.Body.End() {
			regions = append(regions, Region{
				Kind: fmt.Sprintf("spinlock critical section on %s", o.key),
				From: o.from, To: fb.Body.End(), Sum: sum,
			})
		}
	}
	if snapFirst.IsValid() && valLast.IsValid() && snapFirst < valLast {
		regions = append(regions, Region{
			Kind: "seqlock read window",
			From: snapFirst, To: valLast, Sum: sum,
		})
	}
	return regions
}

func signatureOf(pass *analysis.Pass, fb checkutil.FuncBody) *types.Signature {
	if fb.Decl != nil {
		if fn, ok := pass.TypesInfo.Defs[fb.Decl.Name].(*types.Func); ok {
			return fn.Type().(*types.Signature)
		}
		return nil
	}
	if tv, ok := pass.TypesInfo.Types[fb.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

func end(pass *analysis.Pass) error {
	modulePkgs := make(map[*types.Package]bool)
	sums := pass.AllObjectFacts(&callgraph.FuncFact{})
	for _, of := range sums {
		if p := of.Object.Pkg(); p != nil {
			modulePkgs[p] = true
		}
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].Object.Pos() < sums[j].Object.Pos() })

	// Propagate "invokes its parameter inside a region" through parameter
	// hand-offs (WithLock passes fn through to WithLockSpan) to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, of := range sums {
			sum := of.Fact.(*callgraph.FuncFact).S
			if sum.Fn == nil {
				continue
			}
			for i := range sum.Calls {
				call := &sum.Calls[i]
				if call.Callee == nil {
					continue
				}
				var prf ParamRegionFact
				if !pass.ImportObjectFact(call.Callee, &prf) {
					continue
				}
				for _, a := range call.Args {
					if a.Param < 0 {
						continue
					}
					kind, in := paramRegionKind(&prf, a.Index)
					if !in {
						continue
					}
					var own ParamRegionFact
					pass.ImportObjectFact(sum.Fn.Origin(), &own)
					if _, have := paramRegionKind(&own, a.Param); have {
						continue
					}
					own.Params = append(own.Params, ParamRegion{Index: a.Param, Kind: kind})
					pass.ExportObjectFact(sum.Fn.Origin(), &own)
					changed = true
				}
			}
		}
	}

	c := &rchecker{
		pass:       pass,
		modulePkgs: modulePkgs,
		reported:   make(map[token.Pos]bool),
		onstack:    make(map[*callgraph.Summary]bool),
	}

	// Declared regions.
	regions := pass.AllObjectFacts(&RegionsFact{})
	sort.Slice(regions, func(i, j int) bool { return regions[i].Object.Pos() < regions[j].Object.Pos() })
	for _, of := range regions {
		for _, reg := range of.Fact.(*RegionsFact).Regions {
			c.kind = reg.Kind
			c.count = 0
			c.walkRange(reg.Sum, reg.From, reg.To, nil, []string{reg.Sum.Name})
		}
	}

	// Function values handed to region-invoking parameters: each argument
	// is a region of its own at the supplying call site.
	for _, of := range sums {
		sum := of.Fact.(*callgraph.FuncFact).S
		for i := range sum.Calls {
			call := &sum.Calls[i]
			if call.Callee == nil {
				continue
			}
			var prf ParamRegionFact
			if !pass.ImportObjectFact(call.Callee, &prf) {
				continue
			}
			for _, a := range call.Args {
				kind, in := paramRegionKind(&prf, a.Index)
				if !in || (a.Fn == nil && a.Lit == nil) {
					continue
				}
				c.kind = fmt.Sprintf("%s (argument run by %s)", kind, callgraph.DisplayName(call.Callee))
				c.count = 0
				chain := []string{sum.Name}
				if a.Fn != nil {
					c.walkFunc(call, a.Fn, nil, chain, 0)
				}
				if a.Lit != nil {
					c.walk(a.Lit, nil, append(chain, a.Lit.Name), 1)
				}
			}
		}
	}
	return nil
}

func paramRegionKind(f *ParamRegionFact, idx int) (string, bool) {
	for _, p := range f.Params {
		if p.Index == idx {
			return p.Kind, true
		}
	}
	return "", false
}

// maxPerRegion caps diagnostics per region.
const maxPerRegion = 10

type rchecker struct {
	pass       *analysis.Pass
	modulePkgs map[*types.Package]bool
	reported   map[token.Pos]bool
	onstack    map[*callgraph.Summary]bool
	kind       string
	count      int
}

type binding struct{ vals map[int][]bound }

type bound struct {
	fn  *types.Func
	lit *callgraph.Summary
}

func (c *rchecker) report(pos token.Pos, chain []string, format string, args ...any) {
	if c.count >= maxPerRegion {
		return
	}
	c.count++
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	msg := fmt.Sprintf(format, args...)
	c.pass.Reportf(pos, "%s reachable inside %s: %s", msg, c.kind, strings.Join(chain, " -> "))
}

// walkRange checks only the top-level sites/calls of sum within
// [from, to]; everything reached from there is checked in full.
func (c *rchecker) walkRange(sum *callgraph.Summary, from, to token.Pos, bind *binding, chain []string) {
	c.onstack[sum] = true
	defer delete(c.onstack, sum)
	for i := range sum.Sites {
		site := &sum.Sites[i]
		if site.Pos < from || site.Pos > to {
			continue
		}
		c.site(site, chain)
	}
	for i := range sum.Calls {
		call := &sum.Calls[i]
		if call.Pos < from || call.Pos > to {
			continue
		}
		c.call(call, bind, chain, 0)
	}
}

func (c *rchecker) walk(sum *callgraph.Summary, bind *binding, chain []string, depth int) {
	if depth > 100 || c.onstack[sum] || c.count >= maxPerRegion {
		return
	}
	c.onstack[sum] = true
	defer delete(c.onstack, sum)
	for i := range sum.Sites {
		c.site(&sum.Sites[i], chain)
	}
	for i := range sum.Calls {
		c.call(&sum.Calls[i], bind, chain, depth)
	}
}

func (c *rchecker) site(site *callgraph.Site, chain []string) {
	if site.Op.Blocks() {
		c.report(site.Pos, chain, "%s", site.Op)
	}
}

func (c *rchecker) call(call *callgraph.Call, bind *binding, chain []string, depth int) {
	if call.Go {
		return // the spawned body runs outside the region
	}
	switch {
	case call.Callee != nil:
		c.walkFunc(call, call.Callee, bind, chain, depth)
	case call.Iface != nil:
		m := call.Iface
		if m.Pkg() != nil && !c.modulePkgs[m.Pkg()] {
			if checkutil.PkgPathIn(m, "io", "net", "os") {
				c.report(call.Pos, chain, "I/O interface call %s", m.FullName())
			}
			return // other foreign interfaces: assumed non-blocking
		}
		for _, impl := range callgraph.Implementers(c.pass, m, nil) {
			c.walkFunc(call, impl, bind, chain, depth)
		}
	case call.Param >= 0:
		if bind == nil {
			return // unbound: checked at each supplying call site
		}
		for _, b := range bind.vals[call.Param] {
			if b.fn != nil {
				c.walkFunc(call, b.fn, bind, chain, depth)
			}
			if b.lit != nil {
				c.descend(call, b.lit, bind, chain, depth)
			}
		}
	case call.Field != nil:
		var ff callgraph.FieldFuncs
		if !c.pass.ImportObjectFact(call.Field, &ff) {
			return
		}
		if ff.Opaque {
			c.report(call.Pos, chain, "call through field %s with unanalyzable stored values", call.Field.Name())
			return
		}
		for _, fn := range ff.Funcs {
			c.walkFunc(call, fn, bind, chain, depth)
		}
		for _, lit := range ff.Lits {
			c.descend(call, lit, bind, chain, depth)
		}
	case call.Lit != nil:
		c.descend(call, call.Lit, bind, chain, depth)
	case call.Unknown:
		c.report(call.Pos, chain, "unresolvable dynamic call")
	}
}

func (c *rchecker) walkFunc(call *callgraph.Call, fn *types.Func, bind *binding, chain []string, depth int) {
	callee := callgraph.Lookup(c.pass, fn)
	if callee == nil {
		if why, bad := blockingExternal(fn); bad {
			c.report(call.Pos, chain, "%s", why)
		}
		return
	}
	c.descend(call, callee, bind, chain, depth)
}

func (c *rchecker) descend(call *callgraph.Call, callee *callgraph.Summary, callerBind *binding, chain []string, depth int) {
	var bind *binding
	add := func(idx int, b bound) {
		if bind == nil {
			bind = &binding{vals: make(map[int][]bound)}
		}
		bind.vals[idx] = append(bind.vals[idx], b)
	}
	for _, a := range call.Args {
		switch {
		case a.Param >= 0:
			if callerBind != nil {
				for _, b := range callerBind.vals[a.Param] {
					add(a.Index, b)
				}
			}
		case a.Fn != nil:
			add(a.Index, bound{fn: a.Fn})
		case a.Lit != nil:
			add(a.Index, bound{lit: a.Lit})
		}
	}
	c.walk(callee, bind, append(chain[:len(chain):len(chain)], callee.Name), depth+1)
}

// blockingExternal classifies unsummarized (standard-library) callees.
// Deny list: lock waits, sleeps, and I/O. Everything else outside the
// list is assumed compute-only.
func blockingExternal(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "sync":
		switch name {
		case "Lock", "RLock", "Wait", "Do":
			return fmt.Sprintf("blocking sync call %s", fn.FullName()), true
		}
		return "", false
	case "time":
		switch name {
		case "Sleep", "After", "Tick":
			return fmt.Sprintf("blocking time call time.%s", name), true
		}
		return "", false
	case "runtime":
		return "", false // Gosched is the spin loop's own yield
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Scan") {
			return "I/O call fmt." + name, true
		}
		return "", false
	}
	if checkutil.PkgPathIn(fn, "os", "net", "io", "bufio", "syscall", "log") {
		return fmt.Sprintf("I/O call into %s", fn.FullName()), true
	}
	return "", false
}