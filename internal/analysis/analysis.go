// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, object facts,
// diagnostics) used by the cuckoovet suite.
//
// The build environment for this repository is offline by policy: `make
// check` must run with no module downloads, so the real x/tools dependency
// is deliberately not taken. This package mirrors the parts of the
// go/analysis API the checkers need — an analyzer is a named Run function
// over one type-checked package, analyzers may require other analyzers'
// results, and facts attached to types.Object values flow across package
// boundaries — so the checkers would port to the upstream framework
// mechanically if the dependency ever becomes available.
//
// The accompanying driver (internal/analysis/driver) loads every package of
// the module from source in dependency order into a single go/types
// universe, which is what makes object identity (and therefore facts) work
// across packages without the serialized-fact machinery of x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one machine-checked invariant: a name (also the
// suppression key for //lint:allow cuckoovet:<name> directives), a doc
// string carrying the paper-section rationale, and a Run function applied
// to every package in the load.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	// It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a summary, the
	// rest explains the rule and cites the paper section it enforces.
	Doc string

	// Requires lists analyzers that must run before this one on each
	// package. Their results are available through Pass.ResultOf, and any
	// facts they exported are visible to this analyzer.
	Requires []*Analyzer

	// Run applies the analyzer to one package. The returned value is made
	// available to dependent analyzers via Pass.ResultOf.
	Run func(*Pass) (any, error)

	// End, if non-nil, runs once after every package has been analyzed,
	// with the complete fact store visible. It is where whole-program
	// analyses (call-graph walks from annotated roots, interface dispatch
	// over all known implementers) do their reporting: per-package Run
	// passes only export summaries, because a summary's callers — and an
	// interface's implementers — may live in packages loaded later. The
	// pass is bound to the last module package; Reportf and the fact
	// accessors work as usual.
	End func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Fact is a deduction about a program object, exported by one analyzer
// pass and importable by later passes (including passes over packages that
// import the object's package). Implementations are marker types.
type Fact interface {
	AFact() // dummy method to mark fact types
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled by Pass.Reportf
	Message  string
}

// A Pass provides one analyzer with the material of one package: syntax,
// type information, and the fact store. It mirrors x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// ResultOf maps each analyzer in Analyzer.Requires to its result for
	// this package.
	ResultOf map[*Analyzer]any

	// Report delivers a diagnostic to the driver. Checkers normally use
	// Reportf.
	Report func(Diagnostic)

	facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj. The fact is visible to this
// analyzer (and its dependents) in every subsequently analyzed package.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact(nil)")
	}
	p.facts.set(obj, fact)
}

// ImportObjectFact copies into fact the fact previously exported for obj
// with the same concrete type, reporting whether one existed. The fact
// argument must be a non-nil pointer to the fact type, as in x/tools.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.get(obj, fact)
}

// AllObjectFacts returns every (object, fact) pair of the given concrete
// fact type accumulated so far. The prototype selects the type.
func (p *Pass) AllObjectFacts(prototype Fact) []ObjectFact {
	return p.facts.all(prototype)
}

// ObjectFact is one entry of the fact store.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}
