package htmpure_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/htmpure"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("htmlib"), analysistest.Dir("htmpuretest")},
		htmpure.Analyzer)
}
