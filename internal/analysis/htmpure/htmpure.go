// Package htmpure keeps side effects out of (emulated) hardware
// transaction bodies.
//
// §5 of the paper moves the insert critical section into an HTM
// transaction; the entire design depends on the body being a handful of
// undo-loggable word reads and writes. Anything else is a latent bug:
// I/O, channel operations and goroutine launches cannot roll back when
// the transaction aborts (and on real TSX hardware abort the transaction
// every time); map writes and allocations touch runtime-internal state
// outside the arena's undo log; free-form panics are indistinguishable
// from the internal abort unwinding. The transaction body may only call
// the Txn's own Load/Store/Abort and helpers that themselves take the
// transaction handle (which this analyzer then checks by the same rules).
//
// A function is a transaction body if it is a function literal passed
// where a func(*Txn) error is expected, or any declared function with a
// *Txn parameter, where Txn is recognized structurally as a type with
// Load, Store and Abort methods.
package htmpure

import (
	"go/ast"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "htmpure",
	Doc: "flag side effects inside HTM transaction bodies: I/O, channels, " +
		"goroutines, map writes, allocation and panics cannot roll back on abort (§5)",
	Run: run,
}

// impurePkgs are packages whose calls have effects no undo log can revert.
var impurePkgs = []string{
	"fmt", "os", "io", "bufio", "net", "log", "log/slog",
	"time", "math/rand", "math/rand/v2", "runtime", "sync", "syscall",
}

func isTxnType(t types.Type) bool {
	return checkutil.HasMethods(t, "Load", "Store", "Abort")
}

// txnParam reports whether sig takes a transaction handle parameter.
func txnParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		pt := sig.Params().At(i).Type()
		if ptr, ok := pt.Underlying().(*types.Pointer); ok && isTxnType(ptr.Elem()) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range checkutil.Bodies(file) {
			var sig *types.Signature
			if fb.Decl != nil {
				if obj, ok := pass.TypesInfo.Defs[fb.Decl.Name].(*types.Func); ok {
					sig, _ = obj.Type().(*types.Signature)
				}
			} else if fb.Lit != nil {
				if tv, ok := pass.TypesInfo.Types[fb.Lit]; ok {
					sig, _ = tv.Type.(*types.Signature)
				}
			}
			if !txnParam(sig) {
				continue
			}
			// The htm package itself implements the machinery (abort
			// panics, pools, stats) and is exempt; the rule governs users.
			if definesTxn(pass, sig) {
				continue
			}
			checkBody(pass, fb.Body)
		}
	}
	return nil, nil
}

// definesTxn reports whether the transaction handle type of sig is
// declared in the package under analysis.
func definesTxn(pass *analysis.Pass, sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		pt := sig.Params().At(i).Type()
		ptr, ok := pt.Underlying().(*types.Pointer)
		if !ok || !isTxnType(ptr.Elem()) {
			continue
		}
		if n := checkutil.NamedOf(ptr.Elem()); n != nil && n.Obj().Pkg() == pass.Pkg {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "goroutine launched inside a transaction body cannot be rolled back on abort (§5)")
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "select inside a transaction body: channel operations cannot be rolled back on abort (§5)")
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside a transaction body cannot be rolled back on abort (§5)")
		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "defer inside a transaction body runs after commit/abort is decided; hoist it out of the transaction (§5)")
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				pass.Reportf(x.Pos(), "channel receive inside a transaction body cannot be rolled back on abort (§5)")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if tv, ok := pass.TypesInfo.Types[idx.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(lhs.Pos(), "map write inside a transaction body touches runtime state outside the undo log (§5); keep transactional state in the region arena")
						}
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, x)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	switch checkutil.BuiltinName(pass.TypesInfo, call) {
	case "panic":
		pass.Reportf(call.Pos(), "free-form panic inside a transaction body is indistinguishable from the abort unwinding; use tx.Abort or return an error (§5)")
		return
	case "close":
		pass.Reportf(call.Pos(), "channel close inside a transaction body cannot be rolled back on abort (§5)")
		return
	case "delete":
		pass.Reportf(call.Pos(), "map delete inside a transaction body touches runtime state outside the undo log (§5)")
		return
	case "make", "new", "append":
		pass.Reportf(call.Pos(), "allocation (%s) inside a transaction body cannot roll back and inflates the write set toward AbortCapacity (§5); allocate before the transaction", checkutil.BuiltinName(pass.TypesInfo, call))
		return
	case "print", "println":
		pass.Reportf(call.Pos(), "I/O inside a transaction body cannot be rolled back on abort (§5)")
		return
	}
	fn := checkutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if checkutil.PkgPathIn(fn, impurePkgs...) {
		pass.Reportf(call.Pos(), "call to %s.%s inside a transaction body: the effect cannot be rolled back on abort and serializes the region (§5)", fn.Pkg().Name(), fn.Name())
	}
}
