package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// FactStore holds object facts for one driver run. Because the driver
// type-checks the whole module into a single go/types universe, a
// types.Object is a stable identity across packages and no serialization
// is needed (the part of x/tools this package deliberately simplifies).
//
// The store is keyed by (object, concrete fact type): an object can carry
// at most one fact of each type, matching x/tools semantics.
type FactStore struct {
	m map[factKey]Fact
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

func (s *FactStore) set(obj types.Object, fact Fact) {
	s.m[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// get copies the stored fact for (obj, type-of fact) into fact, which must
// be a non-nil pointer to a fact struct.
func (s *FactStore) get(obj types.Object, fact Fact) bool {
	v := reflect.ValueOf(fact)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		panic("analysis: ImportObjectFact: fact must be a non-nil pointer")
	}
	got, ok := s.m[factKey{obj, v.Type()}]
	if !ok {
		return false
	}
	v.Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *FactStore) all(prototype Fact) []ObjectFact {
	want := reflect.TypeOf(prototype)
	var out []ObjectFact
	for k, f := range s.m {
		if k.typ == want {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	return out
}

// NewPass assembles a Pass. It is exported for the driver and the test
// harness, not for checkers.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes, results map[*Analyzer]any, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: sizes,
		ResultOf:   results,
		Report:     report,
		facts:      facts,
	}
}
