// Package atomicfield enforces the all-or-nothing rule for atomics: a
// field (or package-level variable) that is ever accessed through
// sync/atomic functions must never be read or written plainly.
//
// The optimistic reader protocol (§4.2) works only because every word a
// reader can observe mid-displacement is loaded and stored atomically; one
// plain access reintroduces the torn reads the seqlock exists to prevent,
// and the Go race detector only catches it if a test happens to interleave
// exactly wrong. The analyzer marks every field whose address is passed to
// a sync/atomic function with an object fact (so the discipline follows
// the field across package boundaries) and then flags plain accesses.
//
// For slice-typed fields the discipline applies to the elements: indexing
// must happen under &f[i] passed to sync/atomic, while whole-slice
// operations (make, len, cap, range over indices) remain free. Ranging
// with a value variable reads elements plainly and is flagged.
package atomicfield

import (
	"go/ast"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

// IsAtomic marks an object as atomic-discipline: somewhere in the program
// its address is passed to a sync/atomic function.
type IsAtomic struct{}

func (*IsAtomic) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flag plain reads/writes of fields that elsewhere use sync/atomic " +
		"(one plain access breaks the §4.2 optimistic reader protocol)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: mark discipline objects from &obj arguments of sync/atomic
	// calls. Facts exported by packages analyzed earlier are already in
	// the store, so imported fields keep their discipline here.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !checkutil.IsAtomicPkgFunc(checkutil.Callee(pass.TypesInfo, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if v := checkutil.FieldOf(pass.TypesInfo, un.X); v != nil {
					pass.ExportObjectFact(v, &IsAtomic{})
				}
			}
			return true
		})
	}

	// Pass 2: flag plain accesses of marked objects.
	for _, file := range pass.Files {
		checkutil.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			var obj *types.Var
			if ok {
				s, okSel := pass.TypesInfo.Selections[sel]
				if !okSel || s.Kind() != types.FieldVal {
					return true
				}
				obj, _ = s.Obj().(*types.Var)
			} else if id, okId := n.(*ast.Ident); okId {
				v, okV := pass.TypesInfo.Uses[id].(*types.Var)
				if !okV || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
					return true
				}
				// A package-qualified use (pkg.Var) is handled here at the
				// Sel ident, but treat the enclosing selector as the access
				// expression so parent classification sees the right node.
				if len(stack) > 0 {
					if parent, okP := stack[len(stack)-1].(*ast.SelectorExpr); okP && parent.Sel == id {
						if obj2 := v; pass.ImportObjectFact(obj2, &IsAtomic{}) {
							check(pass, parent, obj2, stack[:len(stack)-1])
						}
						return true
					}
				}
				obj = v
			} else {
				return true
			}
			if obj == nil || !pass.ImportObjectFact(obj, &IsAtomic{}) {
				return true
			}
			check(pass, n.(ast.Expr), obj, stack)
			return true
		})
	}
	return nil, nil
}

// check classifies one use of a marked object, reporting plain accesses.
func check(pass *analysis.Pass, access ast.Expr, obj *types.Var, stack []ast.Node) {
	indexed := false
	// Climb wrappers that are still "the same access": parens and (for
	// slice/array fields) the indexing that selects the guarded element.
	i := len(stack)
	node := ast.Node(access)
	for i > 0 {
		switch parent := stack[i-1].(type) {
		case *ast.ParenExpr:
			node, i = parent, i-1
			continue
		case *ast.IndexExpr:
			if parent.X == node {
				node, i = parent, i-1
				indexed = true
				continue
			}
		}
		break
	}

	_, isSliceField := obj.Type().Underlying().(*types.Slice)
	if isSliceField && !indexed {
		// Whole-slice uses: allocation, length, swap of the header, and
		// index-only ranges are not element accesses. The one plain
		// element read here is a range with a value variable.
		if i > 0 {
			if rng, ok := stack[i-1].(*ast.RangeStmt); ok && rng.X == node && rng.Value != nil {
				pass.Reportf(access.Pos(),
					"range reads elements of atomic field %s plainly; loop over indices and use atomic loads (§4.2)", obj.Name())
			}
		}
		return
	}

	var parent ast.Node
	if i > 0 {
		parent = stack[i-1]
	}
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			// &f escaping to a sync/atomic call (the marking pattern) or
			// to a local; either way the access itself is not plain.
			return
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == node {
				pass.Reportf(access.Pos(),
					"plain write to atomic field %s; use atomic.Store/Add (field is accessed with sync/atomic elsewhere)", obj.Name())
				return
			}
		}
	case *ast.IncDecStmt:
		if ast.Unparen(p.X) == node {
			pass.Reportf(access.Pos(),
				"plain %s of atomic field %s; use atomic.Add (field is accessed with sync/atomic elsewhere)", p.Tok, obj.Name())
			return
		}
	}
	pass.Reportf(access.Pos(),
		"plain read of atomic field %s; use atomic.Load (field is accessed with sync/atomic elsewhere)", obj.Name())
}
