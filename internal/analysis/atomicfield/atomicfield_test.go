package atomicfield_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/atomicfield"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("atomictest")},
		atomicfield.Analyzer)
}
