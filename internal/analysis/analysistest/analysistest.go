// Package analysistest runs cuckoovet analyzers over golden testdata
// packages and checks their diagnostics against expectations written in
// the source, mirroring x/tools' analysistest convention:
//
//	s.locks.Lock(b) // want `while stripe lock .* is held`
//
// A `// want` comment carries one or more backquoted or double-quoted
// regular expressions and asserts that each matches exactly one diagnostic
// reported on that line; diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/driver"
)

// expectation is one parsed `// want` pattern, pinned to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dirs into one program (earlier dirs are importable by later
// ones under their base names), runs the analyzers plus requirements over
// every loaded package, applies the //lint:allow machinery, and compares
// the surviving findings against the `// want` expectations of all files.
func Run(t *testing.T, dirs []string, analyzers ...*analysis.Analyzer) []driver.Finding {
	t.Helper()
	prog, err := driver.LoadDirs(dirs...)
	if err != nil {
		t.Fatalf("loading %v: %v", dirs, err)
	}
	findings, err := driver.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					for _, raw := range wantPatterns(t, c.Text, pos.String()) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: raw,
						})
					}
				}
			}
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
	return findings
}

// wantPatterns extracts the regular expressions of one comment's `// want`
// clause, if any. Both `want "re"` and want `re` forms are accepted and
// several patterns may follow one want.
func wantPatterns(t *testing.T, comment, pos string) []string {
	t.Helper()
	text, ok := strings.CutPrefix(strings.TrimSpace(comment), "//")
	if !ok {
		return nil // a /* */ comment; not used for expectations
	}
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	var out []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want clause at %q: %v", pos, rest, err)
		}
		s, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", pos, quoted, err)
		}
		out = append(out, s)
		rest = rest[len(quoted):]
	}
	if len(out) == 0 {
		t.Fatalf("%s: want clause carries no patterns", pos)
	}
	return out
}

// Dir builds the conventional testdata path for a golden package.
func Dir(pkg string) string {
	return fmt.Sprintf("../testdata/src/%s", pkg)
}
