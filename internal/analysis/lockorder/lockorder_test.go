package lockorder_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/lockorder"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("stripelib"), analysistest.Dir("lockordertest")},
		lockorder.Analyzer)
}
