// Package lockorder flags direct two-lock sequences on striped bucket
// locks.
//
// The paper's deadlock-avoidance rule (§4.4) is that a displacement locks
// its two buckets' stripes in ascending stripe-index order, and the
// codebase centralizes that ordering in Stripe.LockPair (and LockAll for
// the pessimistic whole-table path). Any code that calls Stripe.Lock twice
// without an intervening Unlock has re-derived the ordering by hand — or,
// far more likely, has not, and will deadlock against a concurrent
// displacement locking the same pair in the opposite order. The bug
// compiles cleanly and deadlocks only under exactly-interleaved writers,
// so it is machine-checked here.
package lockorder

import (
	"go/ast"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag second Stripe.Lock while a stripe lock is held: bucket pairs " +
		"must go through LockPair/ordered helpers (§4.4 deadlock-avoidance rule)",
	Run: run,
}

// A "striped lock" is any type that offers both Lock and LockPair: the
// presence of LockPair is the type's own declaration that raw consecutive
// Lock calls are not the supported way to take two stripes.
func isStripedLock(t types.Type) bool {
	return checkutil.HasMethods(t, "Lock", "Unlock", "LockPair")
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range checkutil.Bodies(file) {
			w := &walker{pass: pass}
			w.block(nil, fb.Body.List)
		}
	}
	return nil, nil
}

// walker tracks, in source order with branch-sensitive merging, which raw
// stripe locks are held. Held locks are keyed by the printed receiver
// expression so Lock/Unlock pairs on the same stripe table cancel out.
type walker struct {
	pass *analysis.Pass
}

// block processes stmts sequentially, threading the held set through.
func (w *walker) block(held []string, stmts []ast.Stmt) []string {
	for _, s := range stmts {
		held = w.stmt(held, s)
	}
	return held
}

func (w *walker) stmt(held []string, s ast.Stmt) []string {
	switch st := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.block(held, st.List)
	case *ast.IfStmt:
		held = w.stmt(held, st.Init)
		held = w.expr(held, st.Cond)
		a := w.stmt(copyOf(held), st.Body)
		b := w.stmt(copyOf(held), st.Else)
		return union(a, b)
	case *ast.ForStmt:
		held = w.stmt(held, st.Init)
		held = w.expr(held, st.Cond)
		after := w.stmt(copyOf(held), st.Body)
		after = w.stmt(after, st.Post)
		return union(held, after)
	case *ast.RangeStmt:
		held = w.expr(held, st.X)
		after := w.stmt(copyOf(held), st.Body)
		return union(held, after)
	case *ast.SwitchStmt:
		held = w.stmt(held, st.Init)
		held = w.expr(held, st.Tag)
		return w.branches(held, st.Body)
	case *ast.TypeSwitchStmt:
		held = w.stmt(held, st.Init)
		return w.branches(held, st.Body)
	case *ast.SelectStmt:
		return w.branches(held, st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			held = w.expr(held, e)
		}
		return w.block(held, st.Body)
	case *ast.CommClause:
		held = w.stmt(held, st.Comm)
		return w.block(held, st.Body)
	case *ast.DeferStmt:
		// Deferred Unlocks run at return, not here: a deferred UnlockPair
		// does not license another raw Lock in the body. Skip the call but
		// scan its arguments, which are evaluated now.
		for _, arg := range st.Call.Args {
			held = w.expr(held, arg)
		}
		return held
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			held = w.expr(held, arg)
		}
		return held
	case *ast.ExprStmt:
		return w.expr(held, st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.expr(held, e)
		}
		for _, e := range st.Lhs {
			held = w.expr(held, e)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.expr(held, e)
		}
		return held
	case *ast.SendStmt:
		held = w.expr(held, st.Chan)
		return w.expr(held, st.Value)
	case *ast.IncDecStmt:
		return w.expr(held, st.X)
	case *ast.LabeledStmt:
		return w.stmt(held, st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.expr(held, e)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

// branches evaluates each clause of a switch/select body from the same
// entry state and unions the results.
func (w *walker) branches(held []string, body *ast.BlockStmt) []string {
	out := copyOf(held)
	for _, clause := range body.List {
		out = union(out, w.stmt(copyOf(held), clause))
	}
	return out
}

// expr scans an expression for Lock/Unlock calls in evaluation order.
// Function literals are not entered: they execute later (Bodies walks them
// independently with an empty held set).
func (w *walker) expr(held []string, e ast.Expr) []string {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := checkutil.Callee(w.pass.TypesInfo, call)
		recv := checkutil.Receiver(w.pass.TypesInfo, call)
		if fn == nil || recv == nil {
			return true
		}
		rt := w.pass.TypesInfo.Types[recv].Type
		if !isStripedLock(rt) {
			return true
		}
		// The lock type's own package implements LockPair/LockAll and is
		// the one place the ordering rule lives; exempt it.
		if fn.Pkg() == w.pass.Pkg {
			return true
		}
		key := types.ExprString(recv)
		switch fn.Name() {
		case "Lock":
			if len(held) > 0 {
				w.pass.Reportf(call.Pos(),
					"Stripe.Lock on %s while stripe lock %s is held; two stripes must be acquired via LockPair (ascending stripe order, §4.4)",
					key, held[len(held)-1])
			}
			held = append(held, key)
		case "Unlock":
			held = remove(held, key)
		case "LockPair", "LockAll", "LockOrdered":
			if len(held) > 0 {
				w.pass.Reportf(call.Pos(),
					"%s on %s while stripe lock %s is held; release it first (§4.4)",
					fn.Name(), key, held[len(held)-1])
			}
		}
		return true
	})
	return held
}

func copyOf(held []string) []string {
	out := make([]string, len(held))
	copy(out, held)
	return out
}

func union(a, b []string) []string {
	out := copyOf(a)
	for _, k := range b {
		found := false
		for _, have := range out {
			if have == k {
				found = true
				break
			}
		}
		if !found {
			out = append(out, k)
		}
	}
	return out
}

func remove(held []string, key string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == key {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}
