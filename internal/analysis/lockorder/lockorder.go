// Package lockorder flags two-lock sequences on striped bucket locks,
// including sequences split across function boundaries.
//
// The paper's deadlock-avoidance rule (§4.4) is that a displacement locks
// its two buckets' stripes in ascending stripe-index order, and the
// codebase centralizes that ordering in Stripe.LockPair (and LockAll for
// the pessimistic whole-table path). Any code that calls Stripe.Lock twice
// without an intervening Unlock has re-derived the ordering by hand — or,
// far more likely, has not, and will deadlock against a concurrent
// displacement locking the same pair in the opposite order. The bug
// compiles cleanly and deadlocks only under exactly-interleaved writers,
// so it is machine-checked here.
//
// The check is interprocedural: every function gets a lock summary from
// the callgraph — whether it (transitively, through static calls) takes a
// raw Stripe.Lock, and whether it returns with stripe locks still held
// (Table.lockAllGens). Calling a raw-locking function while a stripe lock
// is held is the same hand-ordered two-lock sequence, merely hidden
// behind a call; it is reported at the call site. A call to a function
// that returns holding locks extends the held set with a sentinel that
// the matching Unlock/UnlockOrdered releases.
//
// Nesting across lock *types* — a transaction key stripe over the backing
// store's bucket stripes — follows the documented store hierarchy
// (internal/txn package doc) and is legal as long as the inner layer goes
// through LockPair/LockOrdered; only raw Lock propagates through
// summaries. Dynamic calls (interface methods, function values) are not
// followed: the held-set reasoning would cross object instances where the
// hierarchy, not the order rule, governs.
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/callgraph"
	"cuckoohash/internal/analysis/checkutil"
)

// LockFact summarizes a function's striped-lock behavior for callers.
type LockFact struct {
	RawLock bool // transitively performs a raw Stripe.Lock
	NetHeld bool // returns with stripe locks held (lockAllGens)
}

func (*LockFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag second Stripe.Lock while a stripe lock is held: bucket pairs " +
		"must go through LockPair/ordered helpers (§4.4 deadlock-avoidance rule)",
	Requires: []*analysis.Analyzer{callgraph.Analyzer},
	Run:      run,
}

// A "striped lock" is any type that offers both Lock and LockPair: the
// presence of LockPair is the type's own declaration that raw consecutive
// Lock calls are not the supported way to take two stripes.
func isStripedLock(t types.Type) bool {
	return checkutil.HasMethods(t, "Lock", "Unlock", "LockPair")
}

const sentinelPrefix = "locks held by "

func run(pass *analysis.Pass) (any, error) {
	// Phase 1: export lock summaries for this package's functions so the
	// walker (and downstream packages) can consult them uniformly.
	if g, ok := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph); ok && g != nil {
		c := &facts{pass: pass, g: g, state: make(map[*types.Func]int), done: make(map[*types.Func]LockFact)}
		for fn := range g.Funcs {
			c.compute(fn)
		}
	}
	// Phase 2: branch-sensitive held-set walk over every body.
	for _, file := range pass.Files {
		for _, fb := range checkutil.Bodies(file) {
			w := &walker{pass: pass}
			w.block(nil, fb.Body.List)
		}
	}
	return nil, nil
}

// facts computes LockFact per function from callgraph summaries, with
// memoized recursion (cycles resolve to the empty fact).
type facts struct {
	pass  *analysis.Pass
	g     *callgraph.Graph
	state map[*types.Func]int // 1 = computing, 2 = done
	done  map[*types.Func]LockFact
}

func (c *facts) compute(fn *types.Func) LockFact {
	fn = fn.Origin()
	if lf, ok := c.done[fn]; ok {
		return lf
	}
	sum := c.g.Funcs[fn]
	if sum == nil {
		var lf LockFact
		c.pass.ImportObjectFact(fn, &lf)
		return lf
	}
	if c.state[fn] == 1 {
		return LockFact{} // cycle: assume balanced and pair-locked
	}
	c.state[fn] = 1
	var lf LockFact
	acq, rel := 0, 0
	for i := range sum.Calls {
		call := &sum.Calls[i]
		if call.Go || call.Callee == nil {
			continue
		}
		if call.RecvType != nil && isStripedLock(call.RecvType) {
			if call.Callee.Pkg() == fn.Pkg() {
				continue // the lock type's own package implements the ordering
			}
			switch call.Callee.Name() {
			case "Lock":
				lf.RawLock = true
				acq++
			case "LockPair", "LockAll", "LockOrdered":
				acq++
			case "Unlock", "UnlockPair", "UnlockAll", "UnlockOrdered":
				rel++
			}
			continue
		}
		sub := c.compute(call.Callee)
		if sub.RawLock {
			lf.RawLock = true
		}
		if sub.NetHeld {
			acq++
		}
	}
	if acq > rel {
		lf.NetHeld = true
	}
	c.state[fn] = 2
	c.done[fn] = lf
	if lf.RawLock || lf.NetHeld {
		c.pass.ExportObjectFact(fn, &lf)
	}
	return lf
}

// walker tracks, in source order with branch-sensitive merging, which raw
// stripe locks are held. Held locks are keyed by the printed receiver
// expression so Lock/Unlock pairs on the same stripe table cancel out;
// calls to functions that return holding locks push a sentinel entry.
type walker struct {
	pass *analysis.Pass
}

// block processes stmts sequentially, threading the held set through.
func (w *walker) block(held []string, stmts []ast.Stmt) []string {
	for _, s := range stmts {
		held = w.stmt(held, s)
	}
	return held
}

func (w *walker) stmt(held []string, s ast.Stmt) []string {
	switch st := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.block(held, st.List)
	case *ast.IfStmt:
		held = w.stmt(held, st.Init)
		held = w.expr(held, st.Cond)
		a := w.stmt(copyOf(held), st.Body)
		b := w.stmt(copyOf(held), st.Else)
		return union(a, b)
	case *ast.ForStmt:
		held = w.stmt(held, st.Init)
		held = w.expr(held, st.Cond)
		after := w.stmt(copyOf(held), st.Body)
		after = w.stmt(after, st.Post)
		return union(held, after)
	case *ast.RangeStmt:
		held = w.expr(held, st.X)
		after := w.stmt(copyOf(held), st.Body)
		return union(held, after)
	case *ast.SwitchStmt:
		held = w.stmt(held, st.Init)
		held = w.expr(held, st.Tag)
		return w.branches(held, st.Body)
	case *ast.TypeSwitchStmt:
		held = w.stmt(held, st.Init)
		return w.branches(held, st.Body)
	case *ast.SelectStmt:
		return w.branches(held, st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			held = w.expr(held, e)
		}
		return w.block(held, st.Body)
	case *ast.CommClause:
		held = w.stmt(held, st.Comm)
		return w.block(held, st.Body)
	case *ast.DeferStmt:
		// Deferred Unlocks run at return, not here: a deferred UnlockPair
		// does not license another raw Lock in the body. Skip the call but
		// scan its arguments, which are evaluated now.
		for _, arg := range st.Call.Args {
			held = w.expr(held, arg)
		}
		return held
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			held = w.expr(held, arg)
		}
		return held
	case *ast.ExprStmt:
		return w.expr(held, st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.expr(held, e)
		}
		for _, e := range st.Lhs {
			held = w.expr(held, e)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.expr(held, e)
		}
		return held
	case *ast.SendStmt:
		held = w.expr(held, st.Chan)
		return w.expr(held, st.Value)
	case *ast.IncDecStmt:
		return w.expr(held, st.X)
	case *ast.LabeledStmt:
		return w.stmt(held, st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.expr(held, e)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

// branches evaluates each clause of a switch/select body from the same
// entry state and unions the results.
func (w *walker) branches(held []string, body *ast.BlockStmt) []string {
	out := copyOf(held)
	for _, clause := range body.List {
		out = union(out, w.stmt(copyOf(held), clause))
	}
	return out
}

// expr scans an expression for Lock/Unlock calls in evaluation order.
// Function literals are not entered: they execute later (Bodies walks them
// independently with an empty held set).
func (w *walker) expr(held []string, e ast.Expr) []string {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := checkutil.Callee(w.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		recv := checkutil.Receiver(w.pass.TypesInfo, call)
		if recv == nil || !isStripedLock(w.pass.TypesInfo.Types[recv].Type) {
			// Interprocedural step: consult the callee's lock summary.
			var lf LockFact
			if !w.pass.ImportObjectFact(fn.Origin(), &lf) {
				return true
			}
			if lf.RawLock && len(held) > 0 {
				w.pass.Reportf(call.Pos(),
					"call to %s, which takes a raw stripe lock, while stripe lock %s is held; cross-function two-lock sequences must go through LockPair (§4.4)",
					callgraph.DisplayName(fn), held[len(held)-1])
			}
			if lf.NetHeld {
				held = append(held, sentinelPrefix+fn.Name()+"()")
			}
			return true
		}
		// The lock type's own package implements LockPair/LockAll and is
		// the one place the ordering rule lives; exempt it.
		if fn.Pkg() == w.pass.Pkg {
			return true
		}
		key := types.ExprString(recv)
		switch fn.Name() {
		case "Lock":
			if len(held) > 0 {
				w.pass.Reportf(call.Pos(),
					"Stripe.Lock on %s while stripe lock %s is held; two stripes must be acquired via LockPair (ascending stripe order, §4.4)",
					key, held[len(held)-1])
			}
			held = append(held, key)
		case "Unlock", "UnlockPair", "UnlockAll", "UnlockOrdered":
			held = release(held, key)
		case "LockPair", "LockAll", "LockOrdered":
			if len(held) > 0 {
				w.pass.Reportf(call.Pos(),
					"%s on %s while stripe lock %s is held; release it first (§4.4)",
					fn.Name(), key, held[len(held)-1])
			}
			held = append(held, key)
		}
		return true
	})
	return held
}

func copyOf(held []string) []string {
	out := make([]string, len(held))
	copy(out, held)
	return out
}

func union(a, b []string) []string {
	out := copyOf(a)
	for _, k := range b {
		found := false
		for _, have := range out {
			if have == k {
				found = true
				break
			}
		}
		if !found {
			out = append(out, k)
		}
	}
	return out
}

// release drops the most recent hold of key; with no exact match it drops
// the most recent sentinel (an Unlock on the stripes a helper left locked).
func release(held []string, key string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == key {
			return append(held[:i], held[i+1:]...)
		}
	}
	for i := len(held) - 1; i >= 0; i-- {
		if strings.HasPrefix(held[i], sentinelPrefix) {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}