// Package obscheck machine-checks the tracing layer's zero-cost-when-idle
// contract (internal/obs, docs/OBSERVABILITY.md).
//
// A Span sits on every connection's per-request fast path: when the
// request is unsampled and no slow-op threshold is armed, its methods
// must cost a couple of branches — no allocation, no clock read, no I/O.
// The contract is easy to state and easy to erode one edit at a time, so
// this analyzer enforces it structurally on every method of a span-shaped
// type (any type with Arm, Begin and End methods):
//
//   - the allocating built-ins (make, new, append) are banned outright —
//     a span is fixed-size scratch, and one append on the record path is
//     an allocation per request at full load;
//   - calls into the time package must come after an early-return guard
//     (an if statement that can return), the Begin/End idiom that keeps
//     the unarmed path off the clock;
//   - I/O and logging packages are banned outright — a span records, it
//     never reports; rendering belongs to slow-path free functions.
//
// Methods that legitimately allocate (formatting a summary, say) belong
// off the span type as free functions taking the span's data, which also
// keeps this rule trivially checkable.
package obscheck

import (
	"go/ast"
	"go/types"

	"cuckoohash/internal/analysis"
	"cuckoohash/internal/analysis/checkutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "obscheck",
	Doc: "flag allocation, unguarded clock reads and I/O in span methods: " +
		"the per-request tracing scratch must be free when unarmed",
	Run: run,
}

// ioPkgs are packages whose calls have no business on the record path at
// all, guarded or not.
var ioPkgs = []string{
	"fmt", "os", "io", "bufio", "net", "log", "log/slog",
}

// isSpanType recognizes the tracing scratch structurally, the same way
// htmpure recognizes a transaction handle: any type carrying the
// Arm/Begin/End triple is held to the contract.
func isSpanType(t types.Type) bool {
	return checkutil.HasMethods(t, "Arm", "Begin", "End")
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isSpanType(sig.Recv().Type()) {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil, nil
}

// checkMethod walks one span method. Statements are visited in source
// order; a time-package call is legal only once an early-return guard
// (an if statement containing a return) has run — the nil/unarmed check
// that makes the clock read conditional.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	guarded := false
	for _, stmt := range fd.Body.List {
		checkStmt(pass, fd.Name.Name, stmt, guarded)
		if ifReturns(stmt) {
			guarded = true
		}
	}
}

// ifReturns reports whether stmt is an if statement that can return
// early (directly or in a nested branch).
func ifReturns(stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ifs, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func checkStmt(pass *analysis.Pass, method string, stmt ast.Stmt, guarded bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch name := checkutil.BuiltinName(pass.TypesInfo, call); name {
		case "make", "new", "append":
			pass.Reportf(call.Pos(),
				"allocation (%s) in span method %s: the per-request record path must not allocate; move slow-path rendering to a free function",
				name, method)
			return true
		}
		fn := checkutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if checkutil.PkgPathIn(fn, "time") && !guarded {
			// Report the outermost time call only; descending would flag
			// time.Now().UnixNano() twice for one clock read.
			pass.Reportf(call.Pos(),
				"span method %s reads the clock (time.%s) before an armed guard: unarmed spans must return without touching time.Now",
				method, fn.Name())
			return false
		}
		if checkutil.PkgPathIn(fn, ioPkgs...) {
			pass.Reportf(call.Pos(),
				"call to %s.%s in span method %s: spans record, they never report; I/O belongs on the slow path",
				fn.Pkg().Name(), fn.Name(), method)
		}
		return true
	})
}
