package obscheck_test

import (
	"testing"

	"cuckoohash/internal/analysis/analysistest"
	"cuckoohash/internal/analysis/obscheck"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t,
		[]string{analysistest.Dir("obslib"), analysistest.Dir("obschecktest")},
		obscheck.Analyzer)
}
