// Package replica holds the building blocks of cuckoorepl, the
// two-choice replication layer: a bounded, spinlock-guarded mirror log
// that buffers writes destined for a key's alternate node, and a miss
// lease table that collapses thundering herds into a single backend
// fill.
//
// Both structures are deliberately server-agnostic: the server wires a
// Log per peer into its write path (the enqueue runs while a key-stripe
// spinlock is held, which is why the log must never park) and drains it
// from a background mirror worker; the lease table is consulted only
// from connection dispatch, outside any stripe.
package replica

import "cuckoohash/internal/spinlock"

// Entry is one replicated mutation: an absolute value (or tombstone)
// plus the version word that makes application last-writer-wins. The
// producer stamps EnqueuedAt (unix nanoseconds) so the drain side can
// report replication lag without the log reading the clock.
type Entry struct {
	Key        string
	Val        string
	ExpireAt   int64 // absolute unix nanos; 0 = no expiry
	Ver        uint64
	Del        bool
	EnqueuedAt int64
}

// Log is a bounded FIFO of replication entries for one peer. Append is
// called with a key-stripe spinlock held, so the log uses a spinlock
// internally and never allocates after construction: the ring is sized
// once and overflow drops the oldest entry rather than growing.
//
// A drop means the peer missed a mutation, so the log latches an
// overflow flag; the mirror worker turns that into a bulk catch-up
// (snapshot-format handoff) and clears it via TakeOverflow.
type Log struct {
	mu   spinlock.Mutex
	ring []Entry
	head uint64 // next slot to read
	tail uint64 // next slot to write

	overflowed bool
	// Counters, guarded by mu. Snapshot via Stats.
	enqueued uint64
	dropped  uint64
}

// NewLog builds a log holding at most capacity entries (minimum 1).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{ring: make([]Entry, capacity)}
}

// Append enqueues e, dropping the oldest buffered entry (and latching
// the overflow flag) when the ring is full. Safe to call under a
// key-stripe spinlock: it spins, never parks, never allocates.
func (l *Log) Append(e Entry) {
	l.mu.Lock()
	if l.tail-l.head == uint64(len(l.ring)) {
		// Full: sacrifice the oldest entry. The peer will be repaired
		// by bulk catch-up, so dropping old beats dropping new.
		l.ring[l.head%uint64(len(l.ring))] = Entry{}
		l.head++
		l.dropped++
		l.overflowed = true
	}
	l.ring[l.tail%uint64(len(l.ring))] = e
	l.tail++
	l.enqueued++
	l.mu.Unlock()
}

// Drain moves up to max buffered entries into dst (reusing its backing
// array) and returns the filled slice. An empty result means the log
// was empty.
func (l *Log) Drain(dst []Entry, max int) []Entry {
	dst = dst[:0]
	l.mu.Lock()
	for len(dst) < max && l.head != l.tail {
		i := l.head % uint64(len(l.ring))
		dst = append(dst, l.ring[i])
		l.ring[i] = Entry{} // release string references promptly
		l.head++
	}
	l.mu.Unlock()
	return dst
}

// Len returns the number of buffered entries.
func (l *Log) Len() int {
	l.mu.Lock()
	n := int(l.tail - l.head)
	l.mu.Unlock()
	return n
}

// OldestEnqueuedAt returns the enqueue timestamp of the oldest buffered
// entry, or 0 when the log is empty. The mirror worker subtracts it
// from "now" to export replication lag.
func (l *Log) OldestEnqueuedAt() int64 {
	l.mu.Lock()
	var ts int64
	if l.head != l.tail {
		ts = l.ring[l.head%uint64(len(l.ring))].EnqueuedAt
	}
	l.mu.Unlock()
	return ts
}

// TakeOverflow reports whether the log dropped entries since the last
// call, clearing the flag. The caller owes the peer a bulk catch-up
// when it returns true.
func (l *Log) TakeOverflow() bool {
	l.mu.Lock()
	v := l.overflowed
	l.overflowed = false
	l.mu.Unlock()
	return v
}

// ForceCatchup latches the overflow flag so the next TakeOverflow
// returns true. The mirror worker uses it when a send fails mid-batch:
// the drained entries are gone, so the peer must be repaired in bulk.
func (l *Log) ForceCatchup() {
	l.mu.Lock()
	l.overflowed = true
	l.mu.Unlock()
}

// LogStats is a counter snapshot for STATS/metrics export.
type LogStats struct {
	Enqueued uint64
	Dropped  uint64
	Depth    int
}

// Stats snapshots the log's counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	s := LogStats{Enqueued: l.enqueued, Dropped: l.dropped, Depth: int(l.tail - l.head)}
	l.mu.Unlock()
	return s
}
