package replica

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Lease defaults. The TTL bounds how long a crashed filler can block a
// key (after it the next LEASE re-grants); the wait hint is what the
// server tells non-winning clients to sleep before retrying.
const (
	DefaultLeaseTTLNanos = 2_000_000_000 // 2s
	DefaultWaitHintMS    = 20
)

// leaseShards spreads the table over independently locked maps so a
// miss storm on many keys does not serialize on one mutex. Lease
// traffic only happens on misses, outside any key stripe, so a parking
// sync.Mutex is fine here.
const leaseShards = 16

type leaseState struct {
	token     uint64
	expiresAt int64
}

type leaseShard struct {
	mu sync.Mutex
	m  map[string]leaseState
}

// LeaseTable hands out per-key miss leases: the first client to miss a
// key wins a fill token, everyone else is told to wait briefly (or is
// served a stale copy by the caller). A SET or DEL on the key
// invalidates any outstanding token, so a delayed fill can never
// overwrite fresher data through the lease path.
type LeaseTable struct {
	ttl      int64 // lease lifetime, nanoseconds
	waitMS   int64
	tokenSeq atomic.Uint64
	// active counts live leases so the write path can skip the table
	// entirely (one atomic load) when no leases are outstanding.
	active atomic.Int64
	shards [leaseShards]leaseShard
}

// NewLeaseTable builds a table. ttlNanos <= 0 selects the default.
func NewLeaseTable(ttlNanos int64) *LeaseTable {
	if ttlNanos <= 0 {
		ttlNanos = DefaultLeaseTTLNanos
	}
	t := &LeaseTable{ttl: ttlNanos, waitMS: DefaultWaitHintMS}
	for i := range t.shards {
		t.shards[i].m = make(map[string]leaseState)
	}
	return t
}

func (t *LeaseTable) shardFor(key string) *leaseShard {
	// FNV-1a over the key; shard count is a power of two.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &t.shards[h&(leaseShards-1)]
}

func (t *LeaseTable) nextToken(now int64) uint64 {
	seq := t.tokenSeq.Add(1)
	tok := seq ^ bits.RotateLeft64(uint64(now), 23)
	if tok == 0 {
		tok = 1
	}
	return tok
}

// Acquire asks for the fill lease on key at time now (unix nanos). If
// no live lease exists the caller wins: granted is true and token must
// be echoed back via SETL. Otherwise granted is false and waitMS is the
// retry hint for the caller.
func (t *LeaseTable) Acquire(key string, now int64) (token uint64, granted bool, waitMS int64) {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.m[key]; ok && st.expiresAt > now {
		return 0, false, t.waitMS
	} else if ok {
		// Expired lease (filler crashed or timed out): reclaim it.
		t.active.Add(-1)
	}
	tok := t.nextToken(now)
	sh.m[key] = leaseState{token: tok, expiresAt: now + t.ttl}
	t.active.Add(1)
	return tok, true, 0
}

// ValidateRelease atomically checks that token is the live lease for
// key and, if so, releases it. A false return means the fill lost: the
// lease expired, was re-granted, or was invalidated by a newer write.
func (t *LeaseTable) ValidateRelease(key string, token uint64, now int64) bool {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.m[key]
	if !ok {
		return false
	}
	delete(sh.m, key)
	t.active.Add(-1)
	return st.token == token && st.expiresAt > now
}

// Invalidate drops any outstanding lease on key, reporting whether one
// existed. The server calls this on every SET/DEL so an in-flight fill
// holding a now-stale token cannot publish through SETL.
func (t *LeaseTable) Invalidate(key string) bool {
	sh := t.shardFor(key)
	sh.mu.Lock()
	_, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
		t.active.Add(-1)
	}
	sh.mu.Unlock()
	return ok
}

// Active returns the number of outstanding leases. The write path reads
// it (one atomic load) to skip Invalidate entirely in the common case
// of no lease traffic.
func (t *LeaseTable) Active() int64 { return t.active.Load() }

// TTLMillis reports the lease lifetime in milliseconds — what a LEASE
// grant advertises on the wire so the winner knows its fill deadline.
func (t *LeaseTable) TTLMillis() int64 { return t.ttl / 1_000_000 }
