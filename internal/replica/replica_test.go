package replica

import (
	"sync"
	"testing"
)

func TestLogAppendDrainFIFO(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 5; i++ {
		l.Append(Entry{Key: string(rune('a' + i)), Ver: uint64(i + 1), EnqueuedAt: int64(i + 1)})
	}
	if got := l.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if got := l.OldestEnqueuedAt(); got != 1 {
		t.Fatalf("OldestEnqueuedAt = %d, want 1", got)
	}
	batch := l.Drain(nil, 3)
	if len(batch) != 3 || batch[0].Key != "a" || batch[2].Key != "c" {
		t.Fatalf("first drain = %+v", batch)
	}
	batch = l.Drain(batch, 10)
	if len(batch) != 2 || batch[0].Key != "d" || batch[1].Key != "e" {
		t.Fatalf("second drain = %+v", batch)
	}
	if l.Len() != 0 || l.OldestEnqueuedAt() != 0 {
		t.Fatalf("log not empty after drain: len=%d", l.Len())
	}
	if l.TakeOverflow() {
		t.Fatal("unexpected overflow flag")
	}
}

func TestLogOverflowDropsOldestAndLatches(t *testing.T) {
	l := NewLog(2)
	l.Append(Entry{Ver: 1})
	l.Append(Entry{Ver: 2})
	l.Append(Entry{Ver: 3}) // drops ver 1
	batch := l.Drain(nil, 10)
	if len(batch) != 2 || batch[0].Ver != 2 || batch[1].Ver != 3 {
		t.Fatalf("drain after overflow = %+v", batch)
	}
	if !l.TakeOverflow() {
		t.Fatal("overflow flag not latched")
	}
	if l.TakeOverflow() {
		t.Fatal("overflow flag not cleared by TakeOverflow")
	}
	st := l.Stats()
	if st.Enqueued != 3 || st.Dropped != 1 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
	l.ForceCatchup()
	if !l.TakeOverflow() {
		t.Fatal("ForceCatchup did not latch the flag")
	}
}

func TestLogConcurrentAppendDrain(t *testing.T) {
	l := NewLog(64)
	const producers, perProducer = 4, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				l.Append(Entry{Ver: uint64(i + 1)})
			}
		}()
	}
	done := make(chan struct{})
	var drained uint64
	go func() {
		defer close(done)
		buf := make([]Entry, 0, 32)
		for {
			buf = l.Drain(buf, 32)
			drained += uint64(len(buf))
			if len(buf) == 0 {
				st := l.Stats()
				if st.Depth == 0 && st.Enqueued == producers*perProducer {
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	st := l.Stats()
	if drained+st.Dropped != producers*perProducer {
		t.Fatalf("drained %d + dropped %d != enqueued %d", drained, st.Dropped, st.Enqueued)
	}
}

func TestLeaseGrantWaitFill(t *testing.T) {
	lt := NewLeaseTable(0)
	now := int64(1_000_000)
	tok, granted, _ := lt.Acquire("k", now)
	if !granted || tok == 0 {
		t.Fatalf("first acquire: granted=%v tok=%d", granted, tok)
	}
	if lt.Active() != 1 {
		t.Fatalf("active = %d, want 1", lt.Active())
	}
	_, granted2, wait := lt.Acquire("k", now+1)
	if granted2 || wait != DefaultWaitHintMS {
		t.Fatalf("second acquire: granted=%v wait=%d", granted2, wait)
	}
	if !lt.ValidateRelease("k", tok, now+2) {
		t.Fatal("fill with the winning token rejected")
	}
	if lt.Active() != 0 {
		t.Fatalf("active after release = %d", lt.Active())
	}
	// The lease is gone: a second release with the same token fails.
	if lt.ValidateRelease("k", tok, now+3) {
		t.Fatal("token valid after release")
	}
}

func TestLeaseExpiryRegrants(t *testing.T) {
	lt := NewLeaseTable(100) // 100ns lease
	tok1, granted, _ := lt.Acquire("k", 1000)
	if !granted {
		t.Fatal("first acquire not granted")
	}
	tok2, granted2, _ := lt.Acquire("k", 2000) // past expiry
	if !granted2 || tok2 == tok1 {
		t.Fatalf("expired lease not re-granted: granted=%v", granted2)
	}
	if lt.Active() != 1 {
		t.Fatalf("active = %d after re-grant, want 1", lt.Active())
	}
	// The crashed filler's stale token must not validate.
	if lt.ValidateRelease("k", tok1, 2001) {
		t.Fatal("stale token validated")
	}
	// ...and that failed validation consumed the live lease (the key
	// was published or will be re-leased), so tok2 is dead too.
	if lt.ValidateRelease("k", tok2, 2002) {
		t.Fatal("token survived a competing release")
	}
}

func TestLeaseInvalidateOnWrite(t *testing.T) {
	lt := NewLeaseTable(0)
	tok, _, _ := lt.Acquire("k", 1000)
	if !lt.Invalidate("k") {
		t.Fatal("invalidate found no lease")
	}
	if lt.Active() != 0 {
		t.Fatalf("active = %d after invalidate", lt.Active())
	}
	if lt.ValidateRelease("k", tok, 1001) {
		t.Fatal("token valid after invalidation")
	}
	if lt.Invalidate("k") {
		t.Fatal("second invalidate reported a lease")
	}
}
