package obs

import (
	"flag"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry covering every feature of the exposition
// writer: all three kinds, labels (sorted, escaped), multiple samples per
// family, histograms with and without an explicit +Inf bucket, and the
// special float values.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.RegisterFunc(func(m *Metrics) {
		m.Counter("test_requests_total", "Requests served.", 1234)
		m.Counter("test_shard_ops_total", "Ops per shard.", 10, "shard", "0", "op", "get")
		m.Counter("test_shard_ops_total", "Ops per shard.", 7, "shard", "1", "op", "get")
		m.Gauge("test_temperature_celsius", "A gauge with a negative value.", -3.25)
		m.Gauge("test_ratio", "A gauge needing escaping.", 0.5, "path", `a"b\c`)
		m.Histogram("test_latency_seconds", "Histogram with implicit +Inf.",
			[]HistBucket{
				{UpperBound: 0.001, Count: 2},
				{UpperBound: 0.01, Count: 5},
				{UpperBound: 0.1, Count: 5},
			}, 6, 0.42)
		m.Histogram("test_sizes", "Histogram with explicit +Inf and labels.",
			[]HistBucket{
				{UpperBound: 1, Count: 1},
				{UpperBound: math.Inf(1), Count: 3},
			}, 3, 12, "kind", "b")
	})
	return reg
}

func TestWriteTextGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "test_requests_total 1234") {
		t.Errorf("body missing counter sample:\n%s", body)
	}
}

func TestRegisterConcurrentWithScrape(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.RegisterFunc(func(m *Metrics) {
					m.Counter("c_total", "h", 1)
				})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := reg.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRenderLabelsSortedAndEscaped(t *testing.T) {
	got := renderLabels([]string{"z", "1", "a", "x\ny"})
	want := `{a="x\ny",z="1"}`
	if got != want {
		t.Errorf("renderLabels = %s, want %s", got, want)
	}
	if renderLabels(nil) != "" {
		t.Errorf("renderLabels(nil) = %q, want empty", renderLabels(nil))
	}
}
