package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the daemon's structured logger. format is "text" or
// "json"; anything else defaults to text.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}
