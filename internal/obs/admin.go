package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// NewAdminMux builds the admin endpoint served on cuckood's -admin
// listener:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON snapshot (includes vars from PublishExpvar)
//	/debug/pprof/  the standard net/http/pprof profile index
//	/debug/flight  the flight recorder's recent-operation dump
//
// flight may be nil (no recorder wired up); the endpoint then reports
// that instead of 404ing, so probes stay stable. The mux is deliberately
// separate from the data-plane listener so that scrapes, profiles and
// heap dumps never compete with cache traffic for the protocol accept
// loop.
func NewAdminMux(reg *Registry, flight *Flight) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if flight == nil {
			fmt.Fprint(w, "flight recorder disabled\n")
			return
		}
		flight.WriteTo(w)
	})
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "cuckood admin\n\n/metrics\n/debug/vars\n/debug/pprof/\n/debug/flight\n")
	})
	return mux
}

var (
	expvarMu  sync.Mutex
	expvarFns = map[string]func() any{}
)

// PublishExpvar publishes fn as an expvar.Func under name. Unlike
// expvar.Publish it does not panic on duplicates: republishing swaps the
// snapshot function, so tests (and restarts-in-process) that create several
// servers see the most recent one under /debug/vars.
func PublishExpvar(name string, fn func() any) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarFns[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			f := expvarFns[name]
			expvarMu.Unlock()
			return f()
		}))
	}
	expvarFns[name] = fn
}
