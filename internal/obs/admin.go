package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// NewAdminMux builds the admin endpoint served on cuckood's -admin
// listener:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON snapshot (includes vars from PublishExpvar)
//	/debug/pprof/  the standard net/http/pprof profile index
//
// The mux is deliberately separate from the data-plane listener so that
// scrapes, profiles and heap dumps never compete with cache traffic for the
// protocol accept loop.
func NewAdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "cuckood admin\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

var (
	expvarMu  sync.Mutex
	expvarFns = map[string]func() any{}
)

// PublishExpvar publishes fn as an expvar.Func under name. Unlike
// expvar.Publish it does not panic on duplicates: republishing swaps the
// snapshot function, so tests (and restarts-in-process) that create several
// servers see the most recent one under /debug/vars.
func PublishExpvar(name string, fn func() any) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarFns[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			f := expvarFns[name]
			expvarMu.Unlock()
			return f()
		}))
	}
	expvarFns[name] = fn
}
