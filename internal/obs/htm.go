package obs

import (
	"cuckoohash/internal/htm"
)

// HTM exports the abort-code breakdown of every htm.Observe'd transactional
// region, plus always-present process aggregates (so scrapes and alerts see
// the series even before any region registers — or in processes, like the
// cache daemon, whose tables run on stripe locks rather than elision).
type HTM struct{}

// Collect implements Collector.
func (HTM) Collect(m *Metrics) {
	names := htm.ObservedNames()
	stats := htm.ObservedStats()

	var agg htm.Stats
	for _, s := range stats {
		agg.Commits += s.Commits
		agg.Aborts += s.Aborts
		agg.ConflictAborts += s.ConflictAborts
		agg.CapacityAborts += s.CapacityAborts
		agg.ExplicitAborts += s.ExplicitAborts
		agg.LockBusyAborts += s.LockBusyAborts
		agg.RetryHints += s.RetryHints
		agg.Fallbacks += s.Fallbacks
	}

	m.Counter("cuckoo_htm_commits_total",
		"Speculative transactions committed across observed HTM regions.",
		float64(agg.Commits))
	m.Counter("cuckoo_htm_fallbacks_total",
		"Executions that took the serializing fallback lock.",
		float64(agg.Fallbacks))
	const abortsHelp = "HTM aborts by cause (causes overlap; see htm.AbortCode)."
	for _, c := range agg.Breakdown() {
		m.Counter("cuckoo_htm_aborts_total", abortsHelp, float64(c.Count), "cause", c.Cause)
	}

	// Per-region breakdown, only for registered regions.
	for _, name := range names {
		s := stats[name]
		m.Counter("cuckoo_htm_region_commits_total",
			"Speculative commits per observed HTM region.",
			float64(s.Commits), "region", name)
		for _, c := range s.Breakdown() {
			m.Counter("cuckoo_htm_region_aborts_total",
				"Per-region HTM aborts by cause.",
				float64(c.Count), "region", name, "cause", c.Cause)
		}
	}
}
