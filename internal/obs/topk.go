package obs

import (
	"sort"
	"sync"
)

// TopK is a space-saving top-K sketch (Metwally et al., "Efficient
// computation of frequent and top-k elements in data streams"): it
// tracks at most k counters; a new key evicts the current minimum and
// inherits its count as overestimation error. For a zipf-skewed stream
// the true heavy hitters are guaranteed to be present once their
// frequency exceeds N/k.
//
// Touch is called on the sampled request path only, so a mutex is fine;
// the map-hit fast path does not allocate (the m[string(b)] lookup
// compiles to a no-copy probe).
type TopK struct {
	mu sync.Mutex
	k  int
	m  map[string]*tkEntry
}

type tkEntry struct {
	key   string
	count uint64
	err   uint64
}

// NewTopK returns a sketch tracking at most k keys.
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = 1
	}
	return &TopK{k: k, m: make(map[string]*tkEntry, k)}
}

// Touch counts one occurrence of key. The []byte form avoids a string
// allocation when the key is already tracked (the common case for the
// heavy hitters the sketch exists to find).
func (t *TopK) Touch(key []byte) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e, ok := t.m[string(key)]; ok {
		e.count++
		t.mu.Unlock()
		return
	}
	if len(t.m) < t.k {
		k := string(key)
		t.m[k] = &tkEntry{key: k, count: 1}
		t.mu.Unlock()
		return
	}
	// Evict the minimum; the newcomer inherits its count as error bound.
	var min *tkEntry
	for _, e := range t.m {
		if min == nil || e.count < min.count {
			min = e
		}
	}
	delete(t.m, min.key)
	k := string(key)
	t.m[k] = &tkEntry{key: k, count: min.count + 1, err: min.count}
	t.mu.Unlock()
}

// TopKItem is one sketch entry: Count overestimates the true frequency
// by at most Err.
type TopKItem struct {
	Key   string
	Count uint64
	Err   uint64
}

// Items returns the tracked keys sorted by count descending (ties by
// key, so output is deterministic).
func (t *TopK) Items() []TopKItem {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TopKItem, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, TopKItem{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// MergeTopK folds several sketches' items into one ranking, summing
// counts for keys present in more than one (each conn-shard sketch sees
// a disjoint slice of traffic, so summing is exact for tracked keys).
func MergeTopK(sketches []*TopK) []TopKItem {
	acc := map[string]*TopKItem{}
	for _, t := range sketches {
		for _, it := range t.Items() {
			if e, ok := acc[it.Key]; ok {
				e.Count += it.Count
				e.Err += it.Err
			} else {
				c := it
				acc[it.Key] = &c
			}
		}
	}
	out := make([]TopKItem, 0, len(acc))
	for _, e := range acc {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
