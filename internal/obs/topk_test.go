package obs

import (
	"fmt"
	"testing"
)

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	tk := NewTopK(8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			tk.Touch([]byte(fmt.Sprintf("k%d", i)))
		}
	}
	items := tk.Items()
	if len(items) != 5 {
		t.Fatalf("len(Items) = %d, want 5", len(items))
	}
	for i, it := range items {
		wantKey := fmt.Sprintf("k%d", 4-i)
		wantCount := uint64(5 - i)
		if it.Key != wantKey || it.Count != wantCount || it.Err != 0 {
			t.Errorf("Items[%d] = %+v, want {%s %d 0}", i, it, wantKey, wantCount)
		}
	}
}

func TestTopKHeavyHittersSurviveChurn(t *testing.T) {
	// 4 heavy keys at ~1000 touches each through a k=16 sketch, drowned in
	// 2000 one-off keys. Space-saving guarantees keys with frequency above
	// N/k stay tracked: N = 6000, N/k = 375 << 1000.
	tk := NewTopK(16)
	for round := 0; round < 1000; round++ {
		for h := 0; h < 4; h++ {
			tk.Touch([]byte(fmt.Sprintf("hot%d", h)))
		}
		for j := 0; j < 2; j++ {
			tk.Touch([]byte(fmt.Sprintf("cold%d-%d", round, j)))
		}
	}
	items := tk.Items()
	if len(items) != 16 {
		t.Fatalf("len(Items) = %d, want 16 (sketch at capacity)", len(items))
	}
	top := map[string]TopKItem{}
	for _, it := range items[:4] {
		top[it.Key] = it
	}
	for h := 0; h < 4; h++ {
		key := fmt.Sprintf("hot%d", h)
		it, ok := top[key]
		if !ok {
			t.Fatalf("heavy hitter %s missing from top 4: %+v", key, items[:8])
		}
		// Count overestimates by at most Err; the true count is 1000.
		if it.Count < 1000 || it.Count-it.Err > 1000 {
			t.Errorf("%s: count %d err %d, want count >= 1000 and count-err <= 1000", key, it.Count, it.Err)
		}
	}
}

func TestTopKEvictionInheritsMinCount(t *testing.T) {
	tk := NewTopK(2)
	tk.Touch([]byte("a"))
	tk.Touch([]byte("a"))
	tk.Touch([]byte("b"))
	tk.Touch([]byte("c")) // evicts b (count 1); c inherits count 1 -> 2, err 1
	items := tk.Items()
	if len(items) != 2 {
		t.Fatalf("len(Items) = %d, want 2", len(items))
	}
	if items[0].Key != "a" && items[1].Key != "a" {
		t.Fatalf("a evicted: %+v", items)
	}
	for _, it := range items {
		if it.Key == "c" && (it.Count != 2 || it.Err != 1) {
			t.Errorf("c = %+v, want count 2 err 1", it)
		}
	}
}

func TestTopKTrackedTouchDoesNotAllocate(t *testing.T) {
	tk := NewTopK(4)
	key := []byte("hot")
	tk.Touch(key)
	allocs := testing.AllocsPerRun(200, func() { tk.Touch(key) })
	if allocs != 0 {
		t.Errorf("tracked-key Touch allocates %.1f per op, want 0", allocs)
	}
}

func TestMergeTopKSumsAcrossSketches(t *testing.T) {
	a, b := NewTopK(4), NewTopK(4)
	for i := 0; i < 3; i++ {
		a.Touch([]byte("x"))
		b.Touch([]byte("x"))
	}
	a.Touch([]byte("y"))
	b.Touch([]byte("z"))
	merged := MergeTopK([]*TopK{a, b})
	if len(merged) != 3 {
		t.Fatalf("len(merged) = %d, want 3", len(merged))
	}
	if merged[0].Key != "x" || merged[0].Count != 6 {
		t.Errorf("merged[0] = %+v, want x with count 6", merged[0])
	}
	// Deterministic tie-break: y before z at count 1.
	if merged[1].Key != "y" || merged[2].Key != "z" {
		t.Errorf("tie order = %s,%s, want y,z", merged[1].Key, merged[2].Key)
	}
}
