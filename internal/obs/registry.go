// Package obs is the unified observability layer: a dependency-free
// Prometheus-text-format metrics registry, an expvar bridge, an admin HTTP
// mux (/metrics, /debug/vars, /debug/pprof/), and log/slog helpers. It is
// the read side of the probe counters that internal/core, internal/spinlock,
// internal/htm and server maintain on their hot paths — collection happens
// only at scrape time, so probes stay as cheap as the counters themselves
// (principle P1: never share a statistics cache line between threads, and
// aggregate lazily).
//
// The exposition format implemented here is the stable subset of the
// Prometheus text format (version 0.0.4): # HELP / # TYPE headers, counter,
// gauge and cumulative histogram samples with optional labels. Families are
// emitted in registration order and label sets in emission order, which
// keeps output deterministic and golden-testable.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a Prometheus metric type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// HistBucket is one cumulative histogram bucket: Count samples were <= UpperBound.
type HistBucket struct {
	UpperBound float64 // +Inf allowed; an +Inf bucket is appended if missing
	Count      uint64  // cumulative
}

// sample is one metric sample gathered during a scrape.
type sample struct {
	labels  string // rendered {k="v",...} or ""
	value   float64
	buckets []HistBucket // histograms only
	count   uint64       // histograms only
	sum     float64      // histograms only
}

// family groups the samples of one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	samples []sample
}

// Metrics accumulates samples during one scrape. Collectors receive one and
// call Counter/Gauge/Histogram for every series they own; the same name may
// be emitted several times with different labels and is folded into one
// family.
type Metrics struct {
	order    []string
	families map[string]*family
}

func newMetrics() *Metrics {
	return &Metrics{families: make(map[string]*family)}
}

func (m *Metrics) familyFor(name, help string, kind Kind) *family {
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		m.families[name] = f
		m.order = append(m.order, name)
	}
	return f
}

// Counter emits one counter sample. labels are key/value pairs
// ("shard", "3"); an odd trailing key is ignored.
func (m *Metrics) Counter(name, help string, value float64, labels ...string) {
	f := m.familyFor(name, help, KindCounter)
	f.samples = append(f.samples, sample{labels: renderLabels(labels), value: value})
}

// Gauge emits one gauge sample.
func (m *Metrics) Gauge(name, help string, value float64, labels ...string) {
	f := m.familyFor(name, help, KindGauge)
	f.samples = append(f.samples, sample{labels: renderLabels(labels), value: value})
}

// Histogram emits one cumulative histogram. buckets must be cumulative and
// ascending in UpperBound; a +Inf bucket holding count is appended when the
// last bucket is finite.
func (m *Metrics) Histogram(name, help string, buckets []HistBucket, count uint64, sum float64, labels ...string) {
	f := m.familyFor(name, help, KindHistogram)
	f.samples = append(f.samples, sample{
		labels:  renderLabels(labels),
		buckets: buckets,
		count:   count,
		sum:     sum,
	})
}

// renderLabels renders k/v pairs as a canonical, sorted label block.
func renderLabels(kv []string) string {
	n := len(kv) / 2
	if n == 0 {
		return ""
	}
	pairs := make([]string, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		// %q escapes backslash, double quote and newline exactly as the
		// exposition format requires.
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// Collector contributes metrics to a scrape.
type Collector interface {
	Collect(m *Metrics)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(m *Metrics)

// Collect implements Collector.
func (f CollectorFunc) Collect(m *Metrics) { f(m) }

// Registry is an ordered set of collectors. The zero value is unusable; use
// NewRegistry. Register and WriteText are safe for concurrent use; each
// scrape calls every collector's Collect on the scraping goroutine.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Collectors are scraped in registration
// order, which fixes the family order of the exposition output.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// RegisterFunc is Register for a bare collection function.
func (r *Registry) RegisterFunc(f func(m *Metrics)) { r.Register(CollectorFunc(f)) }

// Gather runs every collector and returns the accumulated samples.
func (r *Registry) Gather() *Metrics {
	r.mu.Lock()
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	m := newMetrics()
	for _, c := range collectors {
		c.Collect(m)
	}
	return m
}

// WriteText scrapes every collector and writes the Prometheus text
// exposition format to w.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Gather().writeText(w)
}

func (m *Metrics) writeText(w io.Writer) error {
	var b strings.Builder
	for _, name := range m.order {
		f := m.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			if f.kind == KindHistogram {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, s sample) {
	sawInf := false
	for _, bk := range s.buckets {
		le := formatValue(bk.UpperBound)
		if math.IsInf(bk.UpperBound, +1) {
			le = "+Inf"
			sawInf = true
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", le), bk.Count)
	}
	if !sawInf {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), s.count)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatValue(s.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, s.count)
}

// withLabel splices one extra label into an already-rendered label block.
func withLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
