package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightWriteToFormat(t *testing.T) {
	f := NewFlight(1, 8)
	r1 := FlightRecord{Verb: "GET", Outcome: OutcomeOK, KeyHash: 0xdeadbeef, TotalNs: int64(1200 * time.Microsecond)}
	r1.Stages[StageProbe] = int64(time.Millisecond)
	r1.Stages[StageOther] = int64(200 * time.Microsecond)
	r1.SetTrace([]byte("abc123"))
	f.Record(0, &r1)
	r2 := FlightRecord{Verb: "SET", Outcome: OutcomeBusy, KeyHash: 1, TotalNs: int64(3 * time.Microsecond)}
	f.Record(0, &r2)

	var b strings.Builder
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "seq=1 verb=GET outcome=ok key=00000000deadbeef trace=abc123 total=1.2ms stages=probe=1ms other=200µs\n" +
		"seq=2 verb=SET outcome=busy key=0000000000000001 trace= total=3µs stages=none\n"
	if b.String() != want {
		t.Errorf("WriteTo dump:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestFlightRingKeepsNewestPerShard(t *testing.T) {
	f := NewFlight(1, 4)
	for i := 0; i < 10; i++ {
		rec := FlightRecord{Verb: "GET", TotalNs: 1}
		f.Record(0, &rec)
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4 (ring capacity)", len(snap))
	}
	for i, rec := range snap {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d (oldest-first, newest survive)", i, rec.Seq, want)
		}
	}
}

func TestFlightSnapshotOrdersAcrossShards(t *testing.T) {
	f := NewFlight(4, 8)
	for i := 0; i < 12; i++ {
		rec := FlightRecord{Verb: "GET"}
		f.Record(uint64(i), &rec) // round-robin shards
	}
	snap := f.Snapshot()
	if len(snap) != 12 {
		t.Fatalf("Snapshot len = %d, want 12", len(snap))
	}
	for i, rec := range snap {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("snap[%d].Seq = %d, want %d (one timeline across shards)", i, rec.Seq, i+1)
		}
	}
}

func TestFlightSummary(t *testing.T) {
	var nilFlight *Flight
	if got := nilFlight.Summary(4); got != "none" {
		t.Errorf("nil Summary = %q, want none", got)
	}
	f := NewFlight(1, 8)
	if got := f.Summary(4); got != "none" {
		t.Errorf("empty Summary = %q, want none", got)
	}
	r1 := FlightRecord{Verb: "GET", Outcome: OutcomeOK, TotalNs: int64(1200 * time.Microsecond)}
	r1.SetTrace([]byte("abc"))
	f.Record(0, &r1)
	r2 := FlightRecord{Verb: "SET", Outcome: OutcomeErr, TotalNs: int64(5 * time.Microsecond)}
	f.Record(0, &r2)
	r3 := FlightRecord{Verb: "DEL", Outcome: OutcomeBad, TotalNs: 1}
	f.Record(0, &r3)
	// n=2 keeps only the newest two.
	if got, want := f.Summary(2), "[SET err 5µs] [DEL bad 1ns]"; got != want {
		t.Errorf("Summary(2) = %q, want %q", got, want)
	}
	if got, want := f.Summary(10), "[GET ok 1.2ms abc] [SET err 5µs] [DEL bad 1ns]"; got != want {
		t.Errorf("Summary(10) = %q, want %q", got, want)
	}
}

func TestFlightRecordTraceTruncation(t *testing.T) {
	var rec FlightRecord
	long := strings.Repeat("z", MaxTraceIDLen+9)
	rec.SetTrace([]byte(long))
	if got := rec.Trace(); got != long[:MaxTraceIDLen] {
		t.Errorf("Trace len = %d, want %d-byte truncation", len(got), MaxTraceIDLen)
	}
}

// TestFlightConcurrentRecordAndDump hammers Record from many goroutines
// while dumps run; meaningful under -race, and the seq assignment must
// never produce duplicates in a snapshot.
func TestFlightConcurrentRecordAndDump(t *testing.T) {
	f := NewFlight(4, 32)
	var writers, dumper sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				rec := FlightRecord{Verb: "GET", Outcome: OutcomeOK, KeyHash: uint64(i), TotalNs: int64(i)}
				rec.SetTrace([]byte("ffffffffffffffff"))
				f.Record(uint64(g*31+i), &rec)
			}
		}(g)
	}
	dumper.Add(1)
	go func() {
		defer dumper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if _, err := f.WriteTo(&b); err != nil {
				t.Error(err)
				return
			}
			_ = f.Summary(8)
		}
	}()
	writers.Wait()
	close(stop)
	dumper.Wait()

	snap := f.Snapshot()
	seen := map[uint64]bool{}
	for _, rec := range snap {
		if seen[rec.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", rec.Seq)
		}
		seen[rec.Seq] = true
	}
}

func TestAdminMuxFlightEndpoint(t *testing.T) {
	f := NewFlight(1, 8)
	rec := FlightRecord{Verb: "GET", Outcome: OutcomeOK, KeyHash: 7, TotalNs: int64(time.Millisecond)}
	rec.SetTrace([]byte("t1"))
	f.Record(0, &rec)
	mux := NewAdminMux(NewRegistry(), f)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/flight status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "verb=GET") || !strings.Contains(body, "trace=t1") {
		t.Errorf("/debug/flight body missing record:\n%s", body)
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/{$}", nil))
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rr.Body.String(), "/debug/flight") {
		t.Errorf("index missing /debug/flight:\n%s", rr.Body.String())
	}
}

func TestAdminMuxNilFlight(t *testing.T) {
	mux := NewAdminMux(NewRegistry(), nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/flight status = %d", rr.Code)
	}
	if got := rr.Body.String(); got != "flight recorder disabled\n" {
		t.Errorf("nil-flight body = %q, want disabled notice", got)
	}
}
