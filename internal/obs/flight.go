package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a request ended, for flight-recorder records.
type Outcome uint8

const (
	// OutcomeOK: the request was served (including MISS — the protocol
	// worked; the key just wasn't there).
	OutcomeOK Outcome = iota
	// OutcomeErr: the dispatch returned an error reply.
	OutcomeErr
	// OutcomeBusy: rejected by the inflight gate.
	OutcomeBusy
	// OutcomeBad: the line failed to parse.
	OutcomeBad
)

var outcomeNames = [...]string{"ok", "err", "busy", "bad"}

// String returns the outcome's label as written in flight dumps.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// FlightRecord is one completed operation as remembered by the flight
// recorder: enough to reconstruct what the server was doing just before
// an incident, small enough (no key bytes, just a hash) to keep
// always-on recording cheap and keys out of debug endpoints.
type FlightRecord struct {
	Seq      uint64
	Verb     string
	Outcome  Outcome
	KeyHash  uint64
	TotalNs  int64
	Stages   [NumStages]int64
	traceLen uint8
	trace    [MaxTraceIDLen]byte
}

// SetTrace copies the wire trace ID into the record.
func (r *FlightRecord) SetTrace(id []byte) {
	n := len(id)
	if n > MaxTraceIDLen {
		n = MaxTraceIDLen
	}
	copy(r.trace[:n], id[:n])
	r.traceLen = uint8(n)
}

// Trace returns the record's trace ID ("" when the request carried
// none). Allocates; dump-path only.
func (r *FlightRecord) Trace() string { return string(r.trace[:r.traceLen]) }

// Flight is the always-on flight recorder: a sharded ring of the most
// recent operation records. Writers append under a per-shard mutex
// (uncontended — each connection sticks to one shard); a global atomic
// sequence number orders records across shards so dumps read as one
// timeline.
type Flight struct {
	seq    atomic.Uint64
	mask   uint64
	shards []flightShard
}

type flightShard struct {
	mu   sync.Mutex
	next int
	recs []FlightRecord
	_    [24]byte // pad to 64 bytes: keep shards off each other's cache lines
}

// NewFlight builds a recorder with the given shard count (rounded up to
// a power of two) and records per shard.
func NewFlight(shards, perShard int) *Flight {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if perShard < 1 {
		perShard = 1
	}
	f := &Flight{mask: uint64(n - 1), shards: make([]flightShard, n)}
	for i := range f.shards {
		f.shards[i].recs = make([]FlightRecord, perShard)
	}
	return f
}

// Record remembers one completed operation. rec.Seq is assigned here;
// the rest is copied as given. Safe for concurrent use.
func (f *Flight) Record(shard uint64, rec *FlightRecord) {
	if f == nil {
		return
	}
	rec.Seq = f.seq.Add(1)
	sh := &f.shards[shard&f.mask]
	sh.mu.Lock()
	sh.recs[sh.next] = *rec
	sh.next++
	if sh.next == len(sh.recs) {
		sh.next = 0
	}
	sh.mu.Unlock()
}

// Snapshot returns every recorded operation ordered by sequence number
// (oldest first).
func (f *Flight) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	var out []FlightRecord
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for j := range sh.recs {
			if sh.recs[j].Seq != 0 {
				out = append(out, sh.recs[j])
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteTo dumps the recorder as one line per record, oldest first. This
// is the /debug/flight format; keep it greppable, one key=value pair
// per column.
func (f *Flight) WriteTo(w io.Writer) (int64, error) {
	var written int64
	for _, rec := range f.Snapshot() {
		n, err := fmt.Fprintf(w, "seq=%d verb=%s outcome=%s key=%016x trace=%s total=%s stages=%s\n",
			rec.Seq, rec.Verb, rec.Outcome, rec.KeyHash, rec.Trace(),
			time.Duration(rec.TotalNs), SummarizeStages(rec.Stages))
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Summary renders the most recent n records as a single compact string
// for structured-log incident dumps (slow op, shed, breaker open,
// panic).
func (f *Flight) Summary(n int) string {
	recs := f.Snapshot()
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	var b []byte
	for i, rec := range recs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, '[')
		b = append(b, rec.Verb...)
		b = append(b, ' ')
		b = append(b, rec.Outcome.String()...)
		b = append(b, ' ')
		b = append(b, time.Duration(rec.TotalNs).String()...)
		if rec.traceLen > 0 {
			b = append(b, ' ')
			b = append(b, rec.trace[:rec.traceLen]...)
		}
		b = append(b, ']')
	}
	if len(b) == 0 {
		return "none"
	}
	return string(b)
}
