package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanUnarmedReadsNoClockAndReturnsZero(t *testing.T) {
	var sp Span
	if got := sp.Begin(); got != 0 {
		t.Errorf("unarmed Begin() = %d, want 0", got)
	}
	if got := sp.Now(); got != 0 {
		t.Errorf("unarmed Now() = %d, want 0", got)
	}
	sp.End(StageParse, 0) // must be a no-op
	if st := sp.Stages(); st != ([NumStages]int64{}) {
		t.Errorf("unarmed End recorded stages: %v", st)
	}

	var nilSpan *Span
	if nilSpan.Begin() != 0 || nilSpan.Now() != 0 {
		t.Error("nil span Begin/Now != 0")
	}
	nilSpan.Arm()
	nilSpan.Disarm()
	nilSpan.End(StageProbe, 123)
	nilSpan.Finish(456)
	nilSpan.SetTrace([]byte("x"))
	if nilSpan.TraceBytes() != nil || nilSpan.Armed() {
		t.Error("nil span leaked state")
	}
}

func TestSpanRecordPathDoesNotAllocate(t *testing.T) {
	var sp Span
	id := []byte("deadbeefdeadbeef")
	// The unsampled request path: trace propagation on a disarmed span,
	// zero-valued Begin/End, and the stage copy for the flight record.
	allocs := testing.AllocsPerRun(200, func() {
		sp.Disarm()
		sp.SetTrace(id)
		t0 := sp.Begin()
		sp.End(StageProbe, t0)
		_ = sp.Stages()
		_ = sp.TraceBytes()
	})
	if allocs != 0 {
		t.Errorf("unsampled span path allocates %.1f per op, want 0", allocs)
	}
	// The armed path may read the clock but still must not allocate.
	allocs = testing.AllocsPerRun(200, func() {
		sp.Arm()
		t0 := sp.Begin()
		sp.End(StageProbe, t0)
		sp.Finish(sp.Now())
	})
	if allocs != 0 {
		t.Errorf("armed span path allocates %.1f per op, want 0", allocs)
	}
}

func TestSpanFinishAttributesRemainderToOther(t *testing.T) {
	var sp Span
	sp.Arm()
	// Attribute ~1ms to parse via a crafted start instant.
	sp.End(StageParse, time.Now().UnixNano()-int64(time.Millisecond))
	st := sp.Stages()
	if st[StageParse] < int64(time.Millisecond) {
		t.Fatalf("StageParse = %d, want >= 1ms", st[StageParse])
	}
	total := st[StageParse] + int64(3*time.Millisecond)
	sp.Finish(total)
	st = sp.Stages()
	var sum int64
	for _, ns := range st {
		sum += ns
	}
	if sum != total {
		t.Errorf("stage sum = %d, want total %d (StageOther must absorb the remainder)", sum, total)
	}
	if st[StageOther] != int64(3*time.Millisecond) {
		t.Errorf("StageOther = %d, want %d", st[StageOther], 3*time.Millisecond)
	}
}

func TestSpanArmResetsState(t *testing.T) {
	var sp Span
	sp.Arm()
	sp.SetTrace([]byte("abc"))
	sp.End(StageProbe, time.Now().UnixNano()-1000)
	sp.Arm()
	if sp.TraceBytes() != nil {
		t.Errorf("Arm kept trace %q", sp.TraceBytes())
	}
	if st := sp.Stages(); st != ([NumStages]int64{}) {
		t.Errorf("Arm kept stages %v", st)
	}
}

func TestSpanTraceTruncationAndUnarmedPropagation(t *testing.T) {
	var sp Span // deliberately unarmed: traces must stick anyway
	long := strings.Repeat("t", MaxTraceIDLen+17)
	sp.SetTrace([]byte(long))
	if got := sp.TraceString(); got != long[:MaxTraceIDLen] {
		t.Errorf("TraceString() = %q (len %d), want %d-byte truncation", got, len(got), MaxTraceIDLen)
	}
	sp.SetTrace([]byte("short"))
	if got := sp.TraceString(); got != "short" {
		t.Errorf("TraceString() = %q, want short", got)
	}
}

func TestSummarizeStages(t *testing.T) {
	var st [NumStages]int64
	if got := SummarizeStages(st); got != "none" {
		t.Errorf("empty summary = %q, want none", got)
	}
	st[StageParse] = int64(2 * time.Millisecond)
	st[StageFlush] = int64(time.Microsecond)
	got := SummarizeStages(st)
	if want := "parse=2ms flush=1µs"; got != want {
		t.Errorf("SummarizeStages = %q, want %q", got, want)
	}
}

func TestStageTableCollectSkipsEmptyCells(t *testing.T) {
	tab := NewStageTable([]string{"GET", "SET"}, 2)
	tab.Record(0, StageProbe, 0, int64(time.Millisecond))
	tab.Record(0, StageProbe, 1, int64(2*time.Millisecond))
	tab.Record(-1, StageProbe, 0, 1) // out of range: dropped
	tab.Record(2, StageProbe, 0, 1)  // out of range: dropped
	tab.Record(1, StageFlush, 0, 0)  // non-positive: dropped

	var sp Span
	sp.Arm()
	sp.End(StageLock, time.Now().UnixNano()-int64(time.Millisecond))
	tab.RecordSpan(1, 0, &sp)

	reg := NewRegistry()
	reg.RegisterFunc(func(m *Metrics) { tab.Collect(m, "stage_seconds", "help") })
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `stage_seconds_count{stage="probe",verb="GET"} 2`) {
		t.Errorf("missing GET/probe cell:\n%s", out)
	}
	if !strings.Contains(out, `stage="lock",verb="SET"`) {
		t.Errorf("missing SET/lock cell:\n%s", out)
	}
	if strings.Contains(out, `verb="SET"`) && strings.Contains(out, `stage="flush",verb="SET"`) {
		t.Errorf("empty SET/flush cell was exported:\n%s", out)
	}
}

func TestSlowTracesRingAndDedupe(t *testing.T) {
	var st SlowTraces
	st.Note(nil, "GET", 1)          // ignored: no ID
	st.Note([]byte{}, "GET", 1)     // ignored: empty ID
	st.Note([]byte("a"), "GET", 0.5)
	st.Note([]byte("a"), "GET", 0.7) // duplicate ID: Collect keeps one
	st.Note([]byte("b"), "SET", 0.9)
	snap := st.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}

	reg := NewRegistry()
	reg.RegisterFunc(func(m *Metrics) { st.Collect(m, "slow_trace_seconds", "help") })
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, `trace_id="a"`); got != 1 {
		t.Errorf("trace a exported %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `trace_id="b",verb="SET"`) {
		t.Errorf("missing trace b:\n%s", out)
	}

	// Overflow the ring: only the newest slowTraceSlots survive.
	for i := 0; i < slowTraceSlots+5; i++ {
		st.Note([]byte{'x', byte('0' + i%10)}, "GET", float64(i))
	}
	if got := len(st.Snapshot()); got != slowTraceSlots {
		t.Errorf("after overflow Snapshot len = %d, want %d", got, slowTraceSlots)
	}
}
