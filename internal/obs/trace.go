// cuckootrace: the request-tracing layer. A Span is per-connection
// scratch that attributes a request's wall time to pipeline stages
// (read, parse, dispatch queue, stripe-lock acquire, table probe,
// eviction, OCC retry, reply flush); a StageTable aggregates finished
// spans into per-{verb,stage} sharded histograms; SlowTraces keeps
// exemplar trace IDs for the slowest recent requests.
//
// The contract that makes tracing free when idle: an unarmed Span's
// Begin/Now return 0 without reading the clock, End on a zero start is
// a no-op, and no method on the record path allocates. The cuckoovet
// obscheck analyzer machine-checks that contract.
package obs

import (
	"math"
	"sort"
	"sync"
	"time"

	"cuckoohash/internal/metrics"
)

// Stage identifies one segment of a request's life inside the server.
type Stage uint8

const (
	// StageRead: blocking socket reads inside a request (the HANDOFF
	// bulk payload). Waiting for the next request line is client
	// think-time, not server work, and is deliberately not attributed.
	StageRead Stage = iota
	// StageParse: text-protocol parsing.
	StageParse
	// StageDispatch: waiting for an inflight-gate slot.
	StageDispatch
	// StageLock: acquiring key-stripe locks (txn layer).
	StageLock
	// StageProbe: cuckoo-table reads and writes under the stripe.
	StageProbe
	// StageEvict: eviction passes on ErrFull retry loops.
	StageEvict
	// StageTxnRetry: failed optimistic commit attempts (OCC retries).
	StageTxnRetry
	// StageMigrate: incremental-resize bucket batches this request drove
	// forward (the bounded per-op migration work during a grow).
	StageMigrate
	// StageFlush: writing the batched reply to the socket.
	StageFlush
	// StageRepl: applying inbound replication traffic (REPLSET/REPLDEL
	// version checks and stores) inside a request.
	StageRepl
	// StageLease: miss-lease table work (grant, validate, release) on the
	// LEASE/SETL verbs.
	StageLease
	// StageOther: the remainder, so per-verb stage sums equal wall time.
	StageOther

	// NumStages is the number of Stage values.
	NumStages = int(StageOther) + 1
)

var stageNames = [NumStages]string{
	"read", "parse", "dispatch", "lock", "probe", "evict",
	"txn_retry", "migrate", "flush", "repl", "lease", "other",
}

// String returns the stage's label as exported on /metrics.
func (st Stage) String() string {
	if int(st) < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// MaxTraceIDLen bounds wire-level trace IDs; longer IDs are rejected at
// parse time (server) or truncated (span scratch).
const MaxTraceIDLen = 64

// Span is per-connection scratch recording one request's stage timings
// and trace ID. It is not safe for concurrent use; each connection owns
// exactly one and resets it per request via Arm/Disarm. All methods are
// nil-safe so call sites need no guards.
type Span struct {
	armed    bool
	traceLen uint8
	trace    [MaxTraceIDLen]byte
	stages   [NumStages]int64
}

// Arm resets the span for a new request and enables timing.
func (s *Span) Arm() {
	if s == nil {
		return
	}
	s.armed = true
	s.traceLen = 0
	s.stages = [NumStages]int64{}
}

// Disarm resets the span and disables timing: Begin/Now return 0
// without touching the clock until the next Arm.
func (s *Span) Disarm() {
	if s == nil {
		return
	}
	s.armed = false
	s.traceLen = 0
	s.stages = [NumStages]int64{}
}

// Armed reports whether timing is enabled.
func (s *Span) Armed() bool { return s != nil && s.armed }

// Begin starts timing a stage, returning the start instant in unix
// nanoseconds — or 0, without reading the clock, when the span is nil
// or unarmed. Pass the result to End.
func (s *Span) Begin() int64 {
	if s == nil || !s.armed {
		return 0
	}
	return time.Now().UnixNano()
}

// Now is Begin under a name that reads better when the caller wants a
// timestamp rather than a stage start.
func (s *Span) Now() int64 {
	if s == nil || !s.armed {
		return 0
	}
	return time.Now().UnixNano()
}

// End attributes the time since t0 to stage. A zero t0 (unarmed Begin)
// is a no-op that never reads the clock.
func (s *Span) End(stage Stage, t0 int64) {
	if t0 == 0 || s == nil {
		return
	}
	d := time.Now().UnixNano() - t0
	if d > 0 {
		s.stages[stage] += d
	}
}

// Finish closes the span for a request that took total nanoseconds of
// wall time, attributing the untimed remainder to StageOther so the
// per-verb stage sum equals wall time by construction.
func (s *Span) Finish(total int64) {
	if s == nil || !s.armed {
		return
	}
	var sum int64
	for i := 0; i < NumStages-1; i++ {
		sum += s.stages[i]
	}
	if rest := total - sum; rest > 0 {
		s.stages[StageOther] = rest
	}
}

// SetTrace records the request's wire trace ID (truncated to
// MaxTraceIDLen). It works on unarmed spans too: trace propagation must
// survive even when this request is not being timed.
func (s *Span) SetTrace(id []byte) {
	if s == nil {
		return
	}
	n := len(id)
	if n > MaxTraceIDLen {
		n = MaxTraceIDLen
	}
	copy(s.trace[:n], id[:n])
	s.traceLen = uint8(n)
}

// TraceBytes returns the recorded trace ID, or nil when none was set.
// The returned slice aliases span scratch; copy it to retain it.
func (s *Span) TraceBytes() []byte {
	if s == nil || s.traceLen == 0 {
		return nil
	}
	return s.trace[:s.traceLen]
}

// TraceString returns the recorded trace ID as a string ("" when
// unset). It allocates; call it only on slow paths.
func (s *Span) TraceString() string { return string(s.TraceBytes()) }

// Stages returns a copy of the per-stage nanosecond totals.
func (s *Span) Stages() [NumStages]int64 {
	if s == nil {
		return [NumStages]int64{}
	}
	return s.stages
}

// SummarizeStages renders nonzero stage timings as "stage=dur" pairs
// for structured logs. Free function, not a Span method: it allocates,
// and keeping it off the type keeps the obscheck purity contract on
// Span itself simple.
func SummarizeStages(st [NumStages]int64) string {
	var b []byte
	for i, ns := range st {
		if ns == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, stageNames[i]...)
		b = append(b, '=')
		b = append(b, time.Duration(ns).String()...)
	}
	if len(b) == 0 {
		return "none"
	}
	return string(b)
}

// StageTable aggregates finished spans into one sharded histogram per
// {verb, stage} cell. Cells whose count is zero are skipped on export,
// so the series set stays proportional to traffic actually seen.
type StageTable struct {
	verbs  []string
	shards int
	// hists is verb-major: hists[v*NumStages+stage].
	hists []*metrics.ShardedHistogram
}

// NewStageTable builds a table for the given verb labels. shards is the
// per-histogram shard count (rounded up to a power of two by the
// histogram itself).
func NewStageTable(verbs []string, shards int) *StageTable {
	t := &StageTable{
		verbs:  verbs,
		shards: shards,
		hists:  make([]*metrics.ShardedHistogram, len(verbs)*NumStages),
	}
	for i := range t.hists {
		t.hists[i] = metrics.NewShardedHistogram(shards)
	}
	return t
}

// Record adds one stage observation for verb (an index into the verbs
// slice passed to NewStageTable).
func (t *StageTable) Record(verb int, st Stage, shard uint64, ns int64) {
	if t == nil || verb < 0 || verb >= len(t.verbs) || ns <= 0 {
		return
	}
	t.hists[verb*NumStages+int(st)].Record(shard, uint64(ns))
}

// RecordSpan folds a finished span's nonzero stages into verb's cells.
func (t *StageTable) RecordSpan(verb int, shard uint64, sp *Span) {
	if t == nil || sp == nil {
		return
	}
	for i, ns := range sp.stages {
		if ns > 0 {
			t.Record(verb, Stage(i), shard, ns)
		}
	}
}

// stageExportBuckets bounds the exported histogram: power-of-two
// nanosecond buckets up to ~1.1s, beyond which +Inf absorbs the tail.
const stageExportBuckets = 40

// Collect exports every non-empty cell as a {stage, verb}-labelled
// histogram in seconds.
func (t *StageTable) Collect(m *Metrics, name, help string) {
	if t == nil {
		return
	}
	for v, verb := range t.verbs {
		for st := 0; st < NumStages; st++ {
			snap := t.hists[v*NumStages+st].Snapshot()
			if snap.Count() == 0 {
				continue
			}
			raw := snap.Buckets()
			buckets := make([]HistBucket, stageExportBuckets)
			var cum uint64
			for i := 0; i < stageExportBuckets; i++ {
				cum += raw[i]
				buckets[i] = HistBucket{
					UpperBound: math.Ldexp(1, i) / 1e9,
					Count:      cum,
				}
			}
			for i := stageExportBuckets; i < len(raw); i++ {
				cum += raw[i]
			}
			m.Histogram(name, help, buckets, cum, float64(snap.Sum())/1e9,
				"stage", Stage(st).String(), "verb", verb)
		}
	}
}

// slowTraceSlots is the exemplar ring size: enough that a scrape
// between slow bursts still sees the culprits, small enough that the
// label-set churn on /metrics stays bounded.
const slowTraceSlots = 16

// SlowTrace is one exemplar: a trace ID observed on a slow request.
type SlowTrace struct {
	ID      string
	Verb    string
	Seconds float64
}

// SlowTraces is a fixed ring of recent slow-request exemplars. Only
// requests that carried a wire trace ID are noted — the point is to let
// an operator grep their own ID out of /metrics.
type SlowTraces struct {
	mu   sync.Mutex
	next int
	ring [slowTraceSlots]SlowTrace
}

// Note records one slow traced request. Empty IDs are ignored.
func (s *SlowTraces) Note(id []byte, verb string, seconds float64) {
	if s == nil || len(id) == 0 {
		return
	}
	s.mu.Lock()
	s.ring[s.next%slowTraceSlots] = SlowTrace{ID: string(id), Verb: verb, Seconds: seconds}
	s.next++
	s.mu.Unlock()
}

// Snapshot returns the current exemplars, most recent last.
func (s *SlowTraces) Snapshot() []SlowTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if n > slowTraceSlots {
		n = slowTraceSlots
	}
	out := make([]SlowTrace, 0, n)
	start := s.next - n
	for i := start; i < s.next; i++ {
		out = append(out, s.ring[i%slowTraceSlots])
	}
	return out
}

// Collect exports the exemplars as a gauge keyed by trace ID, sorted so
// the exposition is deterministic for tests.
func (s *SlowTraces) Collect(m *Metrics, name, help string) {
	traces := s.Snapshot()
	sort.Slice(traces, func(i, j int) bool { return traces[i].ID < traces[j].ID })
	seen := map[string]bool{}
	for _, tr := range traces {
		if seen[tr.ID] {
			continue
		}
		seen[tr.ID] = true
		m.Gauge(name, help, tr.Seconds, "trace_id", tr.ID, "verb", tr.Verb)
	}
}
