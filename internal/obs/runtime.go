package obs

import (
	"runtime"
)

// GoRuntime is a Collector for Go runtime health: goroutine count, heap and
// GC statistics, GOMAXPROCS. Metric names follow the conventions of the
// official Prometheus Go client so existing dashboards apply unchanged.
type GoRuntime struct{}

// Collect implements Collector.
func (GoRuntime) Collect(m *Metrics) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	m.Gauge("go_goroutines", "Number of goroutines that currently exist.",
		float64(runtime.NumGoroutine()))
	m.Gauge("go_threads_max", "GOMAXPROCS setting.", float64(runtime.GOMAXPROCS(0)))
	m.Gauge("go_memstats_heap_alloc_bytes", "Heap bytes allocated and in use.",
		float64(ms.HeapAlloc))
	m.Gauge("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.",
		float64(ms.HeapSys))
	m.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.",
		float64(ms.HeapObjects))
	m.Counter("go_memstats_alloc_bytes_total", "Cumulative bytes allocated on the heap.",
		float64(ms.TotalAlloc))
	m.Counter("go_memstats_mallocs_total", "Cumulative count of heap allocations.",
		float64(ms.Mallocs))
	m.Gauge("go_memstats_next_gc_bytes", "Heap size at which the next GC cycle runs.",
		float64(ms.NextGC))
	m.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	m.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		float64(ms.PauseTotalNs)/1e9)
}
