package htm

import (
	"sync"
	"testing"

	"cuckoohash/internal/workload"
)

// TestBankTransfers is the classic STM stress test: concurrent transfers
// between accounts must conserve the total balance under every policy, and
// concurrent read-only audits must always observe the conserved total.
func TestBankTransfers(t *testing.T) {
	const accounts = 32
	const initial = 1000
	for _, p := range []Policy{PolicyGlibc, PolicyTuned} {
		t.Run(p.String(), func(t *testing.T) {
			// One account per line so transfers conflict only pairwise.
			r := newTestRegion(accounts * 8)
			for i := 0; i < accounts; i++ {
				r.Words()[i*8] = initial
			}

			const transferors = 4
			const transfersEach = 5000
			var wg sync.WaitGroup
			for g := 0; g < transferors; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rnd := workload.NewRand(uint64(g) + 1)
					for n := 0; n < transfersEach; n++ {
						from := uint32(rnd.Intn(accounts)) * 8
						to := uint32(rnd.Intn(accounts)) * 8
						if from == to {
							continue
						}
						amount := rnd.Intn(10) + 1
						err := r.RunElided(p, func(tx *Txn) error {
							bal := tx.Load(from)
							if bal < amount {
								return nil // insufficient funds; still commits (reads only)
							}
							tx.Store(from, bal-amount)
							tx.Store(to, tx.Load(to)+amount)
							return nil
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(g)
			}
			// Auditors run concurrently and must always see conservation.
			stop := make(chan struct{})
			var audit sync.WaitGroup
			audit.Add(1)
			go func() {
				defer audit.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var total uint64
					err := r.RunElided(p, func(tx *Txn) error {
						total = 0
						for i := uint32(0); i < accounts; i++ {
							total += tx.Load(i * 8)
						}
						return nil
					})
					if err != nil {
						t.Errorf("audit: %v", err)
						return
					}
					if total != accounts*initial {
						t.Errorf("audit saw total %d, want %d", total, accounts*initial)
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			audit.Wait()
			if t.Failed() {
				t.FailNow()
			}
			var total uint64
			for i := 0; i < accounts; i++ {
				total += r.Words()[i*8]
			}
			if total != accounts*initial {
				t.Fatalf("final total %d, want %d", total, accounts*initial)
			}
		})
	}
}

// TestTxnReuseAcrossRuns verifies pooled transactions reset cleanly: a
// capacity abort must not poison the next activation of the same Txn.
func TestTxnReuseAcrossRuns(t *testing.T) {
	r := NewRegion(1024, Config{ReadLines: 4, WriteLines: 2})
	// Exceed capacity (aborts)...
	_, committed, code := r.Run(func(tx *Txn) error {
		for i := uint32(0); i < 8; i++ {
			tx.Store(i*8, 1)
		}
		return nil
	})
	if committed || code&AbortCapacity == 0 {
		t.Fatalf("want capacity abort, got %v/%v", committed, code)
	}
	// ...then a small transaction from the pool must succeed.
	for i := 0; i < 10; i++ {
		err, committed, _ := r.Run(func(tx *Txn) error {
			tx.Store(0, tx.Load(0)+1)
			return nil
		})
		if err != nil || !committed {
			t.Fatalf("iteration %d: %v/%v", i, err, committed)
		}
	}
	if r.Words()[0] != 10 {
		t.Fatalf("mem[0] = %d", r.Words()[0])
	}
}

// TestFootprintAccounting verifies the per-commit read/write line totals.
func TestFootprintAccounting(t *testing.T) {
	r := newTestRegion(1024)
	_, committed, _ := r.Run(func(tx *Txn) error {
		tx.Load(0)       // line 0 read
		tx.Load(64)      // line 8 read
		tx.Store(128, 1) // line 16 write (not previously read)
		return nil
	})
	if !committed {
		t.Fatal("commit failed")
	}
	s := r.Stats()
	if s.ReadLines != 2 || s.WriteLines != 1 {
		t.Fatalf("footprint = %d read / %d write lines, want 2/1", s.ReadLines, s.WriteLines)
	}
	rd, wr := s.AvgFootprint()
	if rd != 2 || wr != 1 {
		t.Fatalf("AvgFootprint = %v/%v", rd, wr)
	}
}
