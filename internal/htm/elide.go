package htm

// Policy selects a lock-elision retry strategy (Appendix A of the paper).
type Policy int

const (
	// PolicyNone never speculates: every execution takes the fallback lock.
	// This is the "global pthread lock" configuration of §2.3.
	PolicyNone Policy = iota
	// PolicyGlibc models the released glibc TSX lock elision: retry a small
	// number of times, but only while the abort status has the retry bit
	// set; any abort without it (capacity, explicit lock-busy) takes the
	// fallback lock immediately. The paper observes this "takes the fallback
	// lock too frequently", serializing all concurrent transactions.
	PolicyGlibc
	// PolicyTuned models the paper's TSX* wrapper (Figure 11): retry more
	// aggressively, tolerate a bounded number of no-retry-bit aborts, and
	// when the fallback lock is busy, wait for it to become free before
	// re-speculating instead of giving up.
	PolicyTuned
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "lock"
	case PolicyGlibc:
		return "tsx-glibc"
	case PolicyTuned:
		return "tsx*"
	default:
		return "unknown"
	}
}

// Retry limits. glibc's elision uses 3 retries gated on the retry bit; the
// TSX* wrapper of Figure 11 uses a larger transactional-retry budget plus a
// separate small budget for aborts whose status claims a retry is hopeless
// (the paper found such transactions often succeed anyway).
const (
	glibcMaxRetry  = 3
	tunedMaxXbegin = 8
	tunedMaxAbort  = 4
)

// RunElided executes fn under lock elision with the given policy: first
// speculatively as transactions subscribed to the region's fallback lock,
// then, if the policy gives up, serialized under the fallback lock itself.
// The returned error is fn's logical result (e.g. ErrFull from a table
// insert); concurrency control never surfaces as an error.
func (r *Region) RunElided(policy Policy, fn func(tx *Txn) error) error {
	switch policy {
	case PolicyNone:
		return r.RunFallback(fn)
	case PolicyGlibc:
		return r.runGlibc(fn)
	case PolicyTuned:
		return r.runTuned(fn)
	default:
		panic("htm: unknown elision policy")
	}
}

// elidedBody wraps fn with the fallback-lock subscription that makes
// speculation and the fallback path mutually exclusive.
func elidedBody(fn func(tx *Txn) error) func(tx *Txn) error {
	return func(tx *Txn) error {
		tx.SubscribeFallback()
		return fn(tx)
	}
}

func (r *Region) runGlibc(fn func(tx *Txn) error) error {
	tx := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx)
	body := elidedBody(fn)
	for attempt := 0; attempt < glibcMaxRetry; attempt++ {
		err, committed, code := r.runOnce(tx, body)
		if committed {
			return err
		}
		if code&AbortRetry == 0 {
			// No retry hint: glibc falls back immediately.
			break
		}
	}
	return r.runFallbackPooled(tx, fn)
}

func (r *Region) runTuned(fn func(tx *Txn) error) error {
	tx := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx)
	body := elidedBody(fn)
	abortRetry := 0
	for xbeginRetry := 0; xbeginRetry < tunedMaxXbegin; xbeginRetry++ {
		// Re-speculating while the fallback lock is held always aborts;
		// wait for the holder to finish first (the "aggressive elision"
		// part of TSX*).
		for spins := 0; r.FallbackLocked(); spins++ {
			if spins >= 64 {
				yield()
				spins = 0
			}
		}
		err, committed, code := r.runOnce(tx, body)
		if committed {
			return err
		}
		if code&AbortRetry == 0 && code&AbortLockBusy == 0 {
			// The status says a retry cannot succeed. The paper found this
			// is often wrong, so TSX* tolerates a few such aborts before
			// giving up.
			if abortRetry >= tunedMaxAbort {
				break
			}
			abortRetry++
		}
	}
	return r.runFallbackPooled(tx, fn)
}

// RunFallback executes fn directly under the region's fallback lock,
// aborting all in-flight transactions that subscribed to it.
func (r *Region) RunFallback(fn func(tx *Txn) error) error {
	tx := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx)
	return r.runFallbackPooled(tx, fn)
}

func (r *Region) runFallbackPooled(tx *Txn, fn func(tx *Txn) error) error {
	r.lockFallback()
	defer r.unlockFallback()
	// Quiesce: every speculative transaction that started before we took
	// the lock will fail its commit validation (the fallback word moved) or
	// abort at its next access; wait for them to finish rolling back before
	// writing memory directly, since their undo logs restore old values.
	for spins := 0; r.active.Load() != 0; spins++ {
		if spins >= 64 {
			yield()
			spins = 0
		}
	}
	r.counters[tx.id&63].fallbacks.Add(1)
	tx.begin(true)
	return fn(tx)
}
