package htm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

func yield() { runtime.Gosched() }

// lineLockBit marks a line's version word as write-locked by some
// transaction.
const lineLockBit = uint64(1) << 63

// Config sets the capacity limits of the emulated transactional hardware.
type Config struct {
	// ReadLines is the maximum number of distinct lines a transaction may
	// read before aborting with AbortCapacity. Haswell tracks the read-set
	// in the 32 KB L1 D-cache: 512 lines.
	ReadLines int
	// WriteLines is the maximum number of distinct lines a transaction may
	// write. Haswell buffers transactional stores in the L1 with an
	// effective budget of about 16 KB: 256 lines.
	WriteLines int
}

// DefaultConfig mirrors the Haswell budgets discussed in §5.
func DefaultConfig() Config {
	return Config{ReadLines: 512, WriteLines: 256}
}

// Stats is a snapshot of a region's transaction counters.
type Stats struct {
	Commits        uint64 // speculative transactions that committed
	Aborts         uint64 // total aborts (all causes)
	ConflictAborts uint64 // aborts with AbortConflict
	CapacityAborts uint64 // aborts with AbortCapacity
	ExplicitAborts uint64 // aborts with AbortExplicit (incl. lock-busy)
	LockBusyAborts uint64 // aborts with AbortLockBusy (fallback lock held at start)
	RetryHints     uint64 // aborts whose status carried the retry bit
	Fallbacks      uint64 // executions that took the fallback lock
	ReadLines      uint64 // total read-set lines over committed transactions
	WriteLines     uint64 // total write-set lines over committed transactions
}

// AbortCause is one row of the abort-code breakdown.
type AbortCause struct {
	Cause string
	Count uint64
}

// Breakdown returns the abort-cause histogram in a fixed order, the shape
// Intel PCM's TSX view reports and the exporters emit as labeled series.
// Causes overlap (an abort can be both explicit and lock-busy), so the
// counts may sum to more than Aborts.
func (s Stats) Breakdown() []AbortCause {
	return []AbortCause{
		{"conflict", s.ConflictAborts},
		{"capacity", s.CapacityAborts},
		{"explicit", s.ExplicitAborts},
		{"lock_busy", s.LockBusyAborts},
		{"retry_hint", s.RetryHints},
	}
}

// AvgFootprint returns the mean (read, write) line footprint of committed
// transactions — the quantity §5 is about: short transactions rarely abort.
func (s Stats) AvgFootprint() (read, write float64) {
	if s.Commits == 0 {
		return 0, 0
	}
	return float64(s.ReadLines) / float64(s.Commits), float64(s.WriteLines) / float64(s.Commits)
}

// AbortRate returns aborts / (commits + aborts), the metric Intel PCM
// reports and §2.3 quotes (">80% for all three hash tables with 8
// concurrent writers").
func (s Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// Region is a transactional memory arena plus its conflict-detection
// metadata. All state a data structure wants covered by transactions must
// live in the arena returned by Words.
type Region struct {
	mem      []uint64
	versions []atomic.Uint64 // one versioned lock word per line

	fallback atomic.Uint64 // elision fallback lock; versioned like a line
	active   atomic.Int64  // in-flight speculative transactions
	clock    atomic.Uint64 // txn id source (owner identification)
	cfg      Config
	txPool   sync.Pool
	counters [64]counterShard // sharded by txn id: stats updates must not
	// become the shared-cache-line hotspot principle P1 warns about
}

// counterShard groups one shard of the region counters, padded so
// neighbouring shards never share a cache line.
type counterShard struct {
	commits      atomic.Uint64
	aborts       atomic.Uint64
	conflicts    atomic.Uint64
	capacityAbrt atomic.Uint64
	explicitAbrt atomic.Uint64
	lockBusyAbrt atomic.Uint64
	retryHints   atomic.Uint64
	fallbacks    atomic.Uint64
	readLines    atomic.Uint64
	writeLines   atomic.Uint64
	_            [48]byte
}

// NewRegion creates a region holding words 8-byte words of transactional
// memory with the given capacity configuration.
func NewRegion(words int, cfg Config) *Region {
	if words <= 0 {
		panic("htm: region size must be positive")
	}
	if cfg.ReadLines <= 0 || cfg.WriteLines <= 0 {
		panic("htm: capacity limits must be positive")
	}
	lines := (words + wordsPerLine - 1) / wordsPerLine
	r := &Region{
		mem:      make([]uint64, words),
		versions: make([]atomic.Uint64, lines),
		cfg:      cfg,
	}
	r.txPool.New = func() any {
		return &Txn{
			r:          r,
			lineStamps: make([]uint32, lines),
			readSet:    make([]readEntry, 0, cfg.ReadLines),
			writeSet:   make([]writeEntry, 0, cfg.WriteLines),
			undo:       make([]undoEntry, 0, 4*cfg.WriteLines),
		}
	}
	return r
}

// Words returns the arena. Direct access is safe only when the caller holds
// the fallback lock, runs single-threaded, or otherwise synchronizes
// externally (e.g. the table's initial fill phase).
func (r *Region) Words() []uint64 { return r.mem }

// LoadDirect reads a word outside any transaction, with no conflict
// tracking. This is how non-transactional code observes transactional
// memory — always permitted by real HTM (it aborts the conflicting
// transaction; here the transaction's later validation fails instead).
// Tables use it for the unlocked cuckoo-path search phase.
func (r *Region) LoadDirect(addr uint32) uint64 {
	return atomic.LoadUint64(&r.mem[addr])
}

// StoreDirect writes a word outside any transaction. Callers must hold the
// fallback lock or otherwise exclude concurrent transactions (bulk load).
func (r *Region) StoreDirect(addr uint32, val uint64) {
	atomic.StoreUint64(&r.mem[addr], val)
}

// Lines returns the number of conflict-detection lines in the region.
func (r *Region) Lines() int { return len(r.versions) }

// Stats returns a snapshot of the region's counters.
func (r *Region) Stats() Stats {
	var s Stats
	for i := range r.counters {
		c := &r.counters[i]
		s.Commits += c.commits.Load()
		s.Aborts += c.aborts.Load()
		s.ConflictAborts += c.conflicts.Load()
		s.CapacityAborts += c.capacityAbrt.Load()
		s.ExplicitAborts += c.explicitAbrt.Load()
		s.LockBusyAborts += c.lockBusyAbrt.Load()
		s.RetryHints += c.retryHints.Load()
		s.Fallbacks += c.fallbacks.Load()
		s.ReadLines += c.readLines.Load()
		s.WriteLines += c.writeLines.Load()
	}
	return s
}

// ResetStats zeroes the region's counters.
func (r *Region) ResetStats() {
	for i := range r.counters {
		c := &r.counters[i]
		c.commits.Store(0)
		c.aborts.Store(0)
		c.conflicts.Store(0)
		c.capacityAbrt.Store(0)
		c.explicitAbrt.Store(0)
		c.lockBusyAbrt.Store(0)
		c.retryHints.Store(0)
		c.fallbacks.Store(0)
		c.readLines.Store(0)
		c.writeLines.Store(0)
	}
}

type readEntry struct {
	line    uint32
	version uint64
}

type writeEntry struct {
	line    uint32
	version uint64 // version before we locked the line
}

type undoEntry struct {
	addr uint32
	old  uint64
}

// Txn is one transactional execution context. A Txn is valid only inside
// the function passed to Run/RunElided; data access goes through Load and
// Store with word addresses into the region's arena.
//
// In speculative mode a Txn unwinds with an internal panic on abort; the
// Run wrappers recover it. In fallback mode (serialized under the fallback
// lock) Load and Store degenerate to direct memory access.
type Txn struct {
	r          *Region
	epoch      uint32
	lineStamps []uint32 // lineStamps[l] encodes read/write membership for epoch
	readSet    []readEntry
	writeSet   []writeEntry
	undo       []undoEntry
	id         uint64 // unique per activation; not currently exposed
	fallback   bool   // true when running under the fallback lock
}

// Stamp encoding: for line l, lineStamps[l] == epoch*2 means "in read set",
// epoch*2+1 means "in write set" (a written line is always also readable).
// Any other value means "not accessed this transaction". The epoch advances
// by one per activation, so resets are O(1); a wraparound (every 2^31
// activations) triggers a full clear.

func (t *Txn) begin(fallback bool) {
	t.fallback = fallback
	t.epoch++
	if t.epoch >= 1<<30 {
		clear(t.lineStamps)
		t.epoch = 1
	}
	t.readSet = t.readSet[:0]
	t.writeSet = t.writeSet[:0]
	t.undo = t.undo[:0]
	t.id = t.r.clock.Add(1)
}

func (t *Txn) inRead(line uint32) bool {
	s := t.lineStamps[line]
	return s == t.epoch*2 || s == t.epoch*2+1
}

func (t *Txn) inWrite(line uint32) bool {
	return t.lineStamps[line] == t.epoch*2+1
}

// abort unwinds the transaction with the given cause.
func (t *Txn) abort(code AbortCode) {
	panic(txAbort{code: code})
}

// Abort explicitly aborts the transaction (the XABORT instruction). The
// retry bit is left clear, matching XABORT semantics.
func (t *Txn) Abort() {
	if t.fallback {
		panic("htm: Abort called under fallback lock")
	}
	t.abort(AbortExplicit)
}

// Load reads the word at addr transactionally.
func (t *Txn) Load(addr uint32) uint64 {
	if t.fallback {
		// Atomic so fallback execution does not race with the atomic
		// accesses of speculative transactions it is about to kill.
		return atomic.LoadUint64(&t.r.mem[addr])
	}
	line := addr >> lineShift
	if !t.inRead(line) {
		t.trackRead(line)
	}
	return atomic.LoadUint64(&t.r.mem[addr])
}

func (t *Txn) trackRead(line uint32) {
	v := t.r.versions[line].Load()
	if v&lineLockBit != 0 {
		// Locked by another transaction (if it were ours the stamp would
		// have said so): a write->read conflict. Real hardware aborts the
		// requester or the holder; we abort the requester with the retry
		// hint set.
		t.abort(AbortConflict | AbortRetry)
	}
	if len(t.readSet) >= t.r.cfg.ReadLines {
		t.abort(AbortCapacity)
	}
	t.readSet = append(t.readSet, readEntry{line: line, version: v})
	t.lineStamps[line] = t.epoch * 2
}

// Store writes the word at addr transactionally. The previous value is
// preserved in the undo log so an abort leaves memory untouched.
func (t *Txn) Store(addr uint32, val uint64) {
	if t.fallback {
		atomic.StoreUint64(&t.r.mem[addr], val)
		return
	}
	line := addr >> lineShift
	if !t.inWrite(line) {
		t.trackWrite(line)
	}
	t.undo = append(t.undo, undoEntry{addr: addr, old: atomic.LoadUint64(&t.r.mem[addr])})
	atomic.StoreUint64(&t.r.mem[addr], val)
}

func (t *Txn) trackWrite(line uint32) {
	if len(t.writeSet) >= t.r.cfg.WriteLines {
		t.abort(AbortCapacity)
	}
	ver := &t.r.versions[line]
	for {
		v := ver.Load()
		if v&lineLockBit != 0 {
			// Write->write conflict with another transaction.
			t.abort(AbortConflict | AbortRetry)
		}
		if t.inRead(line) {
			// Upgrade: the version must still be the one we read, or we
			// have already lost the race.
			if rv, ok := t.readVersionOf(line); !ok || rv != v {
				t.abort(AbortConflict | AbortRetry)
			}
		}
		if ver.CompareAndSwap(v, v|lineLockBit) {
			t.writeSet = append(t.writeSet, writeEntry{line: line, version: v})
			t.lineStamps[line] = t.epoch*2 + 1
			return
		}
	}
}

func (t *Txn) readVersionOf(line uint32) (uint64, bool) {
	for i := range t.readSet {
		if t.readSet[i].line == line {
			return t.readSet[i].version, true
		}
	}
	return 0, false
}

// commit validates the read set and publishes the write set. It must only
// be called in speculative mode.
func (t *Txn) commit() bool {
	for i := range t.readSet {
		e := &t.readSet[i]
		if e.line == fallbackLine {
			if t.r.fallback.Load() != e.version {
				t.rollback()
				return false
			}
			continue
		}
		if t.inWrite(e.line) {
			// We hold the line lock; the pre-lock version was checked at
			// upgrade time.
			continue
		}
		if t.r.versions[e.line].Load() != e.version {
			t.rollback()
			return false
		}
	}
	// Publish: bump every written line's version and release its lock. Any
	// concurrent reader of those lines will fail validation.
	for i := range t.writeSet {
		e := &t.writeSet[i]
		t.r.versions[e.line].Store((e.version + 2) &^ lineLockBit)
	}
	return true
}

// rollback undoes in-place writes and releases line locks, bumping versions
// so overlapping optimistic readers are forced to retry (they may have seen
// uncommitted values).
func (t *Txn) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		e := &t.undo[i]
		atomic.StoreUint64(&t.r.mem[e.addr], e.old)
	}
	for i := range t.writeSet {
		e := &t.writeSet[i]
		t.r.versions[e.line].Store((e.version + 2) &^ lineLockBit)
	}
}

// SubscribeFallback adds the fallback lock to the transaction's read set,
// aborting immediately if it is held. Elision wrappers call this first so
// that a fallback-lock acquisition conflicts with (and kills) every
// in-flight transaction, exactly the lock-subscription idiom of hardware
// lock elision.
func (t *Txn) SubscribeFallback() {
	if t.fallback {
		return
	}
	v := t.r.fallback.Load()
	if v&lineLockBit != 0 {
		t.abort(AbortExplicit | AbortLockBusy)
	}
	// Track it as a pseudo read-set entry with line == ^0.
	t.readSet = append(t.readSet, readEntry{line: fallbackLine, version: v})
}

// fallbackLine is the pseudo line index representing the fallback lock in
// read sets. The region never has 2^32-1 real lines; commit validates this
// entry against the fallback word instead of the line version table.
const fallbackLine = ^uint32(0)

// Run executes fn as a single speculative transaction with no retry policy
// and no fallback. It reports whether the transaction committed and, if not,
// the abort cause. It is the building block for the elision wrappers and is
// exported for tests and custom policies.
func (r *Region) Run(fn func(tx *Txn) error) (err error, committed bool, code AbortCode) {
	tx := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx)
	return r.runOnce(tx, fn)
}

func (r *Region) runOnce(tx *Txn, fn func(tx *Txn) error) (err error, committed bool, code AbortCode) {
	tx.begin(false)
	// Register as in-flight so a fallback-lock acquisition can wait for our
	// line locks (and potential rollback) to drain before writing directly.
	// Hardware aborts transactions instantly when the elided lock is taken;
	// software must quiesce them instead.
	r.active.Add(1)
	defer r.active.Add(-1)
	aborted := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				a, ok := p.(txAbort)
				if !ok {
					// A real panic from fn: roll back and re-panic so the
					// bug is not masked.
					tx.rollback()
					panic(p)
				}
				tx.rollback()
				aborted = true
				code = a.code
			}
		}()
		err = fn(tx)
	}()
	shard := &r.counters[tx.id&63]
	if aborted {
		shard.countAbort(code)
		return nil, false, code
	}
	if err != nil {
		// fn declined (e.g. key exists): commit its (possibly empty) writes
		// and surface the error; this mirrors a committed transaction whose
		// logical operation failed.
		if !tx.commit() {
			shard.countAbort(AbortConflict | AbortRetry)
			return nil, false, AbortConflict | AbortRetry
		}
		shard.countCommit(tx)
		return err, true, 0
	}
	if !tx.commit() {
		shard.countAbort(AbortConflict | AbortRetry)
		return nil, false, AbortConflict | AbortRetry
	}
	shard.countCommit(tx)
	return nil, true, 0
}

func (c *counterShard) countCommit(tx *Txn) {
	c.commits.Add(1)
	c.readLines.Add(uint64(len(tx.readSet)))
	c.writeLines.Add(uint64(len(tx.writeSet)))
}

func (c *counterShard) countAbort(code AbortCode) {
	c.aborts.Add(1)
	if code&AbortConflict != 0 {
		c.conflicts.Add(1)
	}
	if code&AbortCapacity != 0 {
		c.capacityAbrt.Add(1)
	}
	if code&AbortExplicit != 0 {
		c.explicitAbrt.Add(1)
	}
	if code&AbortLockBusy != 0 {
		c.lockBusyAbrt.Add(1)
	}
	if code&AbortRetry != 0 {
		c.retryHints.Add(1)
	}
}

// FallbackLocked reports whether the fallback lock is currently held.
func (r *Region) FallbackLocked() bool {
	return r.fallback.Load()&lineLockBit != 0
}

func (r *Region) lockFallback() {
	for spins := 0; ; spins++ {
		v := r.fallback.Load()
		if v&lineLockBit == 0 && r.fallback.CompareAndSwap(v, v|lineLockBit) {
			return
		}
		if spins >= 64 {
			yield()
			spins = 0
		}
	}
}

func (r *Region) unlockFallback() {
	v := r.fallback.Load()
	r.fallback.Store((v + 2) &^ lineLockBit)
}
