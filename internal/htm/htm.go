// Package htm is a software emulation of Intel's Restricted Transactional
// Memory (RTM/TSX), the hardware feature the paper evaluates in §2.3, §5 and
// Appendix A. Real RTM is unavailable from Go (and from most machines), so
// this package reproduces its *behavioural model* in software:
//
//   - A Region owns a flat word-addressed memory arena. Data structures that
//     want transactional access allocate their state inside the arena and
//     access it through a Txn.
//   - Transactions track read- and write-sets at 64-byte "cache line"
//     granularity, exactly the conflict-detection granularity of Haswell's
//     L1-based implementation.
//   - Writes are performed in place under per-line versioned locks with an
//     undo log (eager versioning). A conflicting access aborts one of the
//     transactions rather than waiting.
//   - Capacity is limited: transactions whose read- or write-set exceeds the
//     configured line budget abort with AbortCapacity and will never succeed
//     on retry, mirroring the L1-capacity aborts of real hardware ("current
//     implementations can track only 16KB of data", §5).
//   - Aborts surface status bits modelled on the RTM EAX abort codes, and the
//     lock-elision wrappers (RunElided) implement both the released glibc
//     retry policy and the paper's tuned "TSX*" policy from Appendix A.
//
// What carries over from real hardware: the relative dynamics — short
// transactions with small footprints commit concurrently; long transactions
// conflict and fall back to the serializing lock; the fallback lock aborts
// every in-flight transaction that subscribed to it; a retry policy tuned
// for short transactions beats the generic one. What does not carry over:
// absolute per-transaction overhead (software instrumentation is much more
// expensive than hardware speculation). The benchmark harness therefore
// compares shapes and ratios, not absolute Mops (see DESIGN.md §2).
package htm

import "fmt"

// AbortCode is a bitmask of abort causes, modelled on the RTM EAX abort
// status bits (Intel SDM Vol. 1 §16.3.5).
type AbortCode uint32

const (
	// AbortExplicit is set when the transaction executed XABORT (the table
	// code requested an abort, e.g. because the elision wrapper found the
	// fallback lock busy).
	AbortExplicit AbortCode = 1 << 0
	// AbortRetry is set when the transaction may succeed on a retry. The
	// hardware leaves it clear for capacity overflows; conflicts usually set
	// it.
	AbortRetry AbortCode = 1 << 1
	// AbortConflict is set when another logical processor conflicted with a
	// line in the transaction's read- or write-set.
	AbortConflict AbortCode = 1 << 2
	// AbortCapacity is set when the transaction's footprint exceeded the
	// line budget of the emulated L1.
	AbortCapacity AbortCode = 1 << 3
	// AbortLockBusy is the explicit-abort argument used by the elision
	// wrappers when the fallback lock is held at transaction start. It
	// occupies the XABORT-argument byte in real implementations; here it is
	// folded into the code for observability.
	AbortLockBusy AbortCode = 1 << 8
)

func (c AbortCode) String() string {
	if c == 0 {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if c&AbortExplicit != 0 {
		add("explicit")
	}
	if c&AbortRetry != 0 {
		add("retry")
	}
	if c&AbortConflict != 0 {
		add("conflict")
	}
	if c&AbortCapacity != 0 {
		add("capacity")
	}
	if c&AbortLockBusy != 0 {
		add("lock-busy")
	}
	return s
}

// txAbort is the panic payload used to unwind a speculative transaction.
// Using panic/recover keeps the instrumented data-structure code free of
// per-access error plumbing; the unwind cost is paid only on the abort path,
// which is the slow path by construction.
type txAbort struct {
	code AbortCode
}

func (a txAbort) String() string {
	return fmt.Sprintf("transaction abort: %s", a.code)
}

// wordsPerLine is the emulated cache-line size in 8-byte words. 8 words ==
// 64 bytes, the line size of every x86 part the paper considers.
const wordsPerLine = 8

// lineShift converts a word address to a line index.
const lineShift = 3
