package htm

import (
	"sort"
	"sync"
)

// Observed regions: processes that want their transactional regions on an
// admin/metrics endpoint register them by name; exporters snapshot all of
// them at scrape time. Registration is explicit (rather than automatic in
// NewRegion) so short-lived benchmark and test regions never accumulate in
// a process-global list.
var (
	obsMu      sync.Mutex
	obsRegions = map[string]*Region{}
)

// Observe registers r under name for stats export, replacing any previous
// region with the same name. A nil r unregisters the name.
func Observe(name string, r *Region) {
	obsMu.Lock()
	defer obsMu.Unlock()
	if r == nil {
		delete(obsRegions, name)
		return
	}
	obsRegions[name] = r
}

// ObservedStats snapshots every observed region's counters, keyed by the
// registered name.
func ObservedStats() map[string]Stats {
	obsMu.Lock()
	defer obsMu.Unlock()
	out := make(map[string]Stats, len(obsRegions))
	for name, r := range obsRegions {
		out[name] = r.Stats()
	}
	return out
}

// ObservedNames returns the registered region names, sorted, for exporters
// that need deterministic emission order.
func ObservedNames() []string {
	obsMu.Lock()
	names := make([]string, 0, len(obsRegions))
	for name := range obsRegions {
		names = append(names, name)
	}
	obsMu.Unlock()
	sort.Strings(names)
	return names
}
