package htm

import (
	"sync"
	"testing"
)

// TestFallbackSerializesSpeculation verifies the lock-subscription idiom:
// while the fallback lock is held, speculative transactions must abort and
// their effects must never interleave with the fallback holder's.
func TestFallbackSerializesSpeculation(t *testing.T) {
	r := newTestRegion(64)
	const rounds = 500
	var wg sync.WaitGroup
	// One goroutine alternates fallback executions that write a pair of
	// words atomically; others speculate on the same pair.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_ = r.RunFallback(func(tx *Txn) error {
				v := tx.Load(0)
				tx.Store(0, v+1)
				tx.Store(8, tx.Load(8)+1)
				return nil
			})
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_ = r.RunElided(PolicyTuned, func(tx *Txn) error {
					tx.SubscribeFallback()
					v := tx.Load(0)
					tx.Store(0, v+1)
					tx.Store(8, tx.Load(8)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	a, b := r.Words()[0], r.Words()[8]
	if a != b {
		t.Fatalf("pair diverged: %d vs %d", a, b)
	}
	if a != 4*rounds {
		t.Fatalf("count = %d, want %d", a, 4*rounds)
	}
}

// TestGlibcFallsBackOnCapacity: a capacity abort has no retry bit, so the
// glibc policy must go to the fallback lock and still complete correctly.
func TestGlibcFallsBackOnCapacity(t *testing.T) {
	r := NewRegion(1024, Config{ReadLines: 4, WriteLines: 2})
	err := r.RunElided(PolicyGlibc, func(tx *Txn) error {
		for i := uint32(0); i < 8; i++ {
			tx.Store(i*8, uint64(i)+1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8; i++ {
		if r.Words()[i*8] != uint64(i)+1 {
			t.Fatalf("word %d = %d", i*8, r.Words()[i*8])
		}
	}
	s := r.Stats()
	if s.Fallbacks == 0 || s.CapacityAborts == 0 {
		t.Fatalf("expected capacity abort then fallback, got %+v", s)
	}
}

// TestTunedRetriesNoRetryBitAborts: TSX* tolerates a bounded number of
// no-retry-bit aborts before falling back; an over-capacity transaction
// therefore eventually completes under the fallback lock.
func TestTunedFallsBackEventually(t *testing.T) {
	r := NewRegion(1024, Config{ReadLines: 4, WriteLines: 2})
	err := r.RunElided(PolicyTuned, func(tx *Txn) error {
		for i := uint32(0); i < 8; i++ {
			tx.Store(i*8, 7)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (stats %+v)", s.Fallbacks, s)
	}
}

// TestWriteWriteConflictAborts: two transactions locking the same line,
// detected deterministically by single-stepping the protocol.
func TestWriteWriteConflictAborts(t *testing.T) {
	r := newTestRegion(64)
	tx1 := r.txPool.Get().(*Txn)
	tx2 := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx1)
	defer r.txPool.Put(tx2)

	tx1.begin(false)
	tx1.Store(0, 1) // tx1 now holds line 0

	tx2.begin(false)
	aborted := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				a, ok := p.(txAbort)
				if !ok {
					panic(p)
				}
				if a.code&AbortConflict == 0 {
					t.Errorf("abort code %v, want conflict", a.code)
				}
				aborted = true
			}
		}()
		tx2.Store(0, 2)
	}()
	if !aborted {
		t.Fatal("conflicting store did not abort")
	}
	tx2.rollback()
	if !tx1.commit() {
		t.Fatal("tx1 failed to commit")
	}
	if r.Words()[0] != 1 {
		t.Fatalf("mem[0] = %d", r.Words()[0])
	}
}

// TestReadLockedLineAborts: reading a line write-locked by another
// transaction must abort (write->read conflict).
func TestReadLockedLineAborts(t *testing.T) {
	r := newTestRegion(64)
	tx1 := r.txPool.Get().(*Txn)
	tx2 := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx1)
	defer r.txPool.Put(tx2)

	tx1.begin(false)
	tx1.Store(8, 5)

	tx2.begin(false)
	aborted := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				if a, ok := p.(txAbort); !ok || a.code&AbortConflict == 0 {
					panic(p)
				}
				aborted = true
			}
		}()
		tx2.Load(8)
	}()
	if !aborted {
		t.Fatal("read of locked line did not abort")
	}
	tx2.rollback()
	tx1.rollback() // leave region clean
}

// TestAbortBumpsVersionForOverlappedReaders: a rolled-back writer must
// still invalidate readers that observed the line mid-transaction.
func TestAbortBumpsVersion(t *testing.T) {
	r := newTestRegion(64)
	tx1 := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx1)

	// Reader records line 0's version.
	tx2 := r.txPool.Get().(*Txn)
	defer r.txPool.Put(tx2)
	tx2.begin(false)
	_ = tx2.Load(0)

	// Writer locks, writes, aborts.
	tx1.begin(false)
	tx1.Store(0, 99)
	tx1.rollback()

	// The reader's commit must now fail even though the value was
	// restored: it may have read the uncommitted 99.
	if tx2.commit() {
		t.Fatal("reader validated across an aborted writer")
	}
}

// TestRealPanicPropagates: a non-abort panic inside a transaction must roll
// back and re-panic rather than be swallowed.
func TestRealPanicPropagates(t *testing.T) {
	r := newTestRegion(64)
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed")
		}
		if r.Words()[0] != 0 {
			t.Fatal("write survived a panicking transaction")
		}
	}()
	_, _, _ = r.Run(func(tx *Txn) error {
		tx.Store(0, 1)
		panic("boom")
	})
}

func TestPolicyStrings(t *testing.T) {
	if PolicyNone.String() != "lock" || PolicyGlibc.String() != "tsx-glibc" || PolicyTuned.String() != "tsx*" {
		t.Fatal("policy names changed")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy name")
	}
}

func TestAbortCodeString(t *testing.T) {
	if AbortCode(0).String() != "none" {
		t.Fatal("zero code")
	}
	s := (AbortConflict | AbortRetry).String()
	if s != "retry|conflict" {
		t.Fatalf("code string = %q", s)
	}
	if (AbortExplicit | AbortLockBusy).String() != "explicit|lock-busy" {
		t.Fatalf("lock busy string = %q", (AbortExplicit | AbortLockBusy).String())
	}
}

func TestStatsAbortRate(t *testing.T) {
	s := Stats{Commits: 3, Aborts: 1}
	if s.AbortRate() != 0.25 {
		t.Fatalf("AbortRate = %v", s.AbortRate())
	}
	if (Stats{}).AbortRate() != 0 {
		t.Fatal("empty AbortRate != 0")
	}
}
