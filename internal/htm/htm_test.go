package htm

import (
	"sync"
	"testing"
)

func newTestRegion(words int) *Region {
	return NewRegion(words, DefaultConfig())
}

func TestSingleTransactionCommit(t *testing.T) {
	r := newTestRegion(64)
	err, committed, code := r.Run(func(tx *Txn) error {
		tx.Store(0, 42)
		tx.Store(63, 7)
		return nil
	})
	if err != nil || !committed || code != 0 {
		t.Fatalf("Run = %v,%v,%v", err, committed, code)
	}
	if r.Words()[0] != 42 || r.Words()[63] != 7 {
		t.Fatalf("memory = %v,%v", r.Words()[0], r.Words()[63])
	}
	if s := r.Stats(); s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestExplicitAbortRollsBack(t *testing.T) {
	r := newTestRegion(64)
	r.Words()[5] = 99
	_, committed, code := r.Run(func(tx *Txn) error {
		tx.Store(5, 1)
		tx.Abort()
		return nil
	})
	if committed {
		t.Fatal("aborted transaction reported committed")
	}
	if code&AbortExplicit == 0 {
		t.Fatalf("code = %v, want explicit", code)
	}
	if r.Words()[5] != 99 {
		t.Fatalf("rollback failed: mem[5] = %d", r.Words()[5])
	}
	if s := r.Stats(); s.ExplicitAborts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCapacityAbort(t *testing.T) {
	cfg := Config{ReadLines: 4, WriteLines: 2}
	r := NewRegion(1024, cfg)

	_, committed, code := r.Run(func(tx *Txn) error {
		for i := uint32(0); i < 3; i++ {
			tx.Store(i*8, 1) // three distinct lines > WriteLines
		}
		return nil
	})
	if committed || code&AbortCapacity == 0 {
		t.Fatalf("want capacity abort, got committed=%v code=%v", committed, code)
	}
	// All three stores must be rolled back (the first two succeeded).
	for i := uint32(0); i < 3; i++ {
		if r.Words()[i*8] != 0 {
			t.Fatalf("mem[%d] = %d after capacity abort", i*8, r.Words()[i*8])
		}
	}

	_, committed, code = r.Run(func(tx *Txn) error {
		for i := uint32(0); i < 5; i++ {
			tx.Load(i * 8) // five distinct lines > ReadLines
		}
		return nil
	})
	if committed || code&AbortCapacity == 0 {
		t.Fatalf("want read capacity abort, got committed=%v code=%v", committed, code)
	}
}

func TestLogicalErrorCommits(t *testing.T) {
	r := newTestRegion(64)
	sentinel := errorStr("exists")
	err, committed, _ := r.Run(func(tx *Txn) error {
		tx.Store(0, 1)
		return sentinel
	})
	if err != sentinel || !committed {
		t.Fatalf("Run = %v,%v; want sentinel,true", err, committed)
	}
	if r.Words()[0] != 1 {
		t.Fatal("write of logically-failed transaction lost")
	}
}

type errorStr string

func (e errorStr) Error() string { return string(e) }

func TestConflictingIncrements(t *testing.T) {
	// All threads increment the same word under the tuned elision policy;
	// the result must be exact despite conflicts forcing retries/fallbacks.
	r := newTestRegion(64)
	const threads = 8
	const perThread = 2000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perThread; n++ {
				err := r.RunElided(PolicyTuned, func(tx *Txn) error {
					tx.Store(0, tx.Load(0)+1)
					return nil
				})
				if err != nil {
					t.Errorf("RunElided: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := r.Words()[0]; got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
	s := r.Stats()
	if s.Commits == 0 {
		t.Fatal("no speculative commits at all")
	}
	t.Logf("stats: %+v abort-rate=%.2f", s, s.AbortRate())
}

func TestDisjointWritersScale(t *testing.T) {
	// Threads writing disjoint lines should (almost) never conflict.
	r := newTestRegion(64 * 8)
	const threads = 8
	const perThread = 5000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := uint32(i * 64) // one line per thread, widely separated
			for n := 0; n < perThread; n++ {
				err := r.RunElided(PolicyTuned, func(tx *Txn) error {
					tx.Store(addr, tx.Load(addr)+1)
					return nil
				})
				if err != nil {
					t.Errorf("RunElided: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 0; i < threads; i++ {
		if got := r.Words()[i*64]; got != perThread {
			t.Fatalf("thread %d counter = %d, want %d", i, got, perThread)
		}
	}
	s := r.Stats()
	if s.AbortRate() > 0.10 {
		t.Fatalf("disjoint writers abort rate %.3f, want < 0.10 (stats %+v)", s.AbortRate(), s)
	}
}

func TestEachPolicyIsCorrect(t *testing.T) {
	for _, p := range []Policy{PolicyNone, PolicyGlibc, PolicyTuned} {
		t.Run(p.String(), func(t *testing.T) {
			r := newTestRegion(64)
			const threads = 4
			const perThread = 1000
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < perThread; n++ {
						_ = r.RunElided(p, func(tx *Txn) error {
							tx.Store(8, tx.Load(8)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			if got := r.Words()[8]; got != threads*perThread {
				t.Fatalf("counter = %d, want %d", got, threads*perThread)
			}
			if p == PolicyNone {
				if s := r.Stats(); s.Fallbacks != threads*perThread {
					t.Fatalf("PolicyNone fallbacks = %d, want %d", s.Fallbacks, threads*perThread)
				}
			}
		})
	}
}

func TestReadOnlySnapshotConsistency(t *testing.T) {
	// A writer keeps two words in an invariant (a+b == 0 mod 2^64) across
	// two different lines; readers must never observe a committed violation.
	r := newTestRegion(128)
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		var x uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			x++
			v := x
			_ = r.RunElided(PolicyTuned, func(tx *Txn) error {
				tx.Store(0, v)
				tx.Store(64, -v)
				return nil
			})
		}
	}()
	for i := 0; i < 4; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for n := 0; n < 20000; n++ {
				var a, b uint64
				err := r.RunElided(PolicyTuned, func(tx *Txn) error {
					a = tx.Load(0)
					b = tx.Load(64)
					return nil
				})
				if err != nil {
					t.Errorf("read txn: %v", err)
					return
				}
				if a+b != 0 {
					t.Errorf("invariant violated: a=%d b=%d", a, b)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}
