package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(8)
	same := 0
	a = NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/1000 times", same)
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(123)
	const buckets = 64
	counts := make([]int, buckets)
	const n = buckets * 1000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d count %d far from 1000", b, c)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestOpGenFractions(t *testing.T) {
	cases := []struct {
		mix  Mix
		insL float64
		insH float64
	}{
		{InsertOnly, 0.99, 1.0},
		{Mix5050, 0.47, 0.53},
		{Mix1090, 0.08, 0.12},
		{LookupOnly, 0, 0.01},
		{Mix{InsertFrac: 0.3, DeleteFrac: 0.2}, 0.27, 0.33},
	}
	for _, c := range cases {
		g := NewOpGen(c.mix, 42)
		const n = 100000
		ins, del := 0, 0
		for i := 0; i < n; i++ {
			switch g.Next() {
			case OpInsert:
				ins++
			case OpDelete:
				del++
			}
		}
		frac := float64(ins) / n
		if frac < c.insL || frac > c.insH {
			t.Fatalf("%s: insert fraction %.3f outside [%v,%v]", c.mix.Name(), frac, c.insL, c.insH)
		}
		if c.mix.DeleteFrac > 0 {
			dfrac := float64(del) / n
			if math.Abs(dfrac-c.mix.DeleteFrac) > 0.03 {
				t.Fatalf("delete fraction %.3f want ~%v", dfrac, c.mix.DeleteFrac)
			}
		}
	}
}

func TestMixNames(t *testing.T) {
	if InsertOnly.Name() != "100% Insert" || Mix5050.Name() != "50% Insert" ||
		Mix1090.Name() != "10% Insert" || LookupOnly.Name() != "100% Lookup" {
		t.Fatal("mix names wrong")
	}
}

func TestUniformKeysUniqueAndDisjoint(t *testing.T) {
	seen := map[uint64]bool{}
	for th := 0; th < 4; th++ {
		g := NewUniformKeys(9, th)
		for i := 0; i < 20000; i++ {
			k := g.NextKey()
			if seen[k] {
				t.Fatalf("duplicate key %#x (thread %d)", k, th)
			}
			seen[k] = true
		}
	}
}

func TestUniformKeysExistingHitsInsertedSet(t *testing.T) {
	g := NewUniformKeys(11, 2)
	inserted := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		inserted[g.NextKey()] = true
	}
	for i := 0; i < 5000; i++ {
		if !inserted[g.ExistingKey()] {
			t.Fatal("ExistingKey returned a never-inserted key")
		}
	}
}

func TestSequentialKeys(t *testing.T) {
	g := NewSequentialKeys(100)
	for i := uint64(0); i < 10; i++ {
		if k := g.NextKey(); k != 100+i {
			t.Fatalf("NextKey = %d, want %d", k, 100+i)
		}
	}
	for i := 0; i < 100; i++ {
		k := g.ExistingKey()
		if k < 100 || k >= 110 {
			t.Fatalf("ExistingKey = %d outside [100,110)", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipfKeys(3, 10000, 0.99)
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.NextKey()]++
	}
	// The most popular key should take a few percent of the stream, and
	// the distinct-key count must be far below n (heavy skew).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.02 {
		t.Fatalf("top key only %.4f of stream; not skewed", float64(max)/n)
	}
	if len(counts) > n/4 {
		t.Fatalf("%d distinct keys in %d draws; not skewed", len(counts), n)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfKeys(1, 0, 0.5) },
		func() { NewZipfKeys(1, 10, 0) },
		func() { NewZipfKeys(1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandQuickNoShortCycles(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRand(seed)
		first := r.Next()
		for i := 0; i < 1000; i++ {
			if r.Next() == first && i > 0 {
				// A repeat of the first output this early would suggest a
				// tiny cycle; xorshift128+ has period 2^128-1.
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
