package workload

import "math"

func mathPow(x, y float64) float64 { return math.Pow(x, y) }
