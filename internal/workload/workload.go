// Package workload generates the key streams and operation mixes used by
// the paper's evaluation (§6): uniform random 8-byte keys, configurable
// insert/lookup ratios (100%, 50%, 10% insert), and fill-to-occupancy
// drivers. Generators are deterministic per (seed, thread) so experiments
// are reproducible, and each thread owns its generator state so workload
// generation itself never causes cross-core traffic (principle P1).
package workload

import (
	"math/rand"

	"cuckoohash/internal/hashfn"
)

// Rand is a xorshift128+ pseudo-random generator: tiny state, no
// allocation, statistically strong enough for key generation, and far
// cheaper than math/rand so generation does not mask table throughput.
type Rand struct {
	s0, s1 uint64
}

// NewRand creates a generator seeded deterministically from seed. Two
// generators with different seeds produce effectively independent streams.
func NewRand(seed uint64) *Rand {
	// Run the seed through splitmix64 twice per the xoroshiro authors'
	// recommendation; avoid the all-zero state.
	s0 := hashfn.SplitMix64(seed)
	s1 := hashfn.SplitMix64(s0)
	if s0 == 0 && s1 == 0 {
		s1 = 1
	}
	return &Rand{s0: s0, s1: s1}
}

// Next returns the next 64-bit pseudo-random value.
func (r *Rand) Next() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a pseudo-random value in [0, n). n must be positive.
func (r *Rand) Intn(n uint64) uint64 {
	return r.Next() % n
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Op is one table operation in a generated stream.
type Op uint8

const (
	// OpInsert inserts (or overwrites) a key.
	OpInsert Op = iota
	// OpLookup reads a key.
	OpLookup
	// OpDelete removes a key.
	OpDelete
)

// Mix describes an operation mix as fractions that must sum to at most 1;
// the remainder is lookups.
type Mix struct {
	InsertFrac float64
	DeleteFrac float64
}

// Common mixes from the paper's evaluation.
var (
	InsertOnly = Mix{InsertFrac: 1.0}
	Mix5050    = Mix{InsertFrac: 0.5}
	Mix1090    = Mix{InsertFrac: 0.1}
	LookupOnly = Mix{}
)

// Name returns a short label such as "100% Insert".
func (m Mix) Name() string {
	switch m {
	case InsertOnly:
		return "100% Insert"
	case Mix5050:
		return "50% Insert"
	case Mix1090:
		return "10% Insert"
	case LookupOnly:
		return "100% Lookup"
	}
	return "custom mix"
}

// OpGen draws operations from a mix with a per-thread generator.
type OpGen struct {
	rnd       *Rand
	insertCut uint64
	deleteCut uint64
}

// NewOpGen creates a deterministic operation generator for one thread.
func NewOpGen(mix Mix, seed uint64) *OpGen {
	const scale = 1 << 32
	ic := uint64(mix.InsertFrac * scale)
	dc := ic + uint64(mix.DeleteFrac*scale)
	return &OpGen{rnd: NewRand(seed), insertCut: ic, deleteCut: dc}
}

// Next returns the next operation in the stream.
func (g *OpGen) Next() Op {
	v := g.rnd.Next() & (1<<32 - 1)
	switch {
	case v < g.insertCut:
		return OpInsert
	case v < g.deleteCut:
		return OpDelete
	default:
		return OpLookup
	}
}

// KeyGen produces 64-bit keys. Implementations are not safe for concurrent
// use; create one per thread.
type KeyGen interface {
	// NextKey returns the next key to insert (fresh keys).
	NextKey() uint64
	// ExistingKey returns a key that has plausibly been inserted already,
	// for lookup operations.
	ExistingKey() uint64
}

// UniformKeys generates uniform random insert keys from a disjoint
// per-thread keyspace slice, and uniform lookups over the keys this thread
// has inserted so far. It matches the paper's "random mixed reads and
// writes" methodology: lookups hit keys that exist.
type UniformKeys struct {
	rnd      *Rand
	base     uint64 // start of this thread's key range
	inserted uint64 // keys handed out so far
	perm     uint64 // multiplicative scramble so keys are not sequential
}

// NewUniformKeys creates a generator for one thread. Distinct threads must
// use distinct thread indices so their fresh keys never collide.
func NewUniformKeys(seed uint64, thread int) *UniformKeys {
	return &UniformKeys{
		rnd:  NewRand(seed ^ uint64(thread)*0x9E3779B97F4A7C15),
		base: uint64(thread) << 40,
	}
}

// NextKey returns a fresh key unique across the generator's lifetime.
func (u *UniformKeys) NextKey() uint64 {
	u.inserted++
	// Scramble the counter so the table sees uniformly distributed keys,
	// but keep it invertible within the thread's 2^40 slice.
	return u.base | (hashfn.SplitMix64(u.inserted) & (1<<40 - 1))
}

// ExistingKey returns a key previously produced by NextKey, chosen
// uniformly. Before any insert it returns an arbitrary (likely absent) key.
func (u *UniformKeys) ExistingKey() uint64 {
	if u.inserted == 0 {
		return u.base
	}
	i := u.rnd.Intn(u.inserted) + 1
	return u.base | (hashfn.SplitMix64(i) & (1<<40 - 1))
}

// SequentialKeys generates consecutive integer keys; useful for worst-case
// hash tests and for deterministic table fills.
type SequentialKeys struct {
	next uint64
	rnd  *Rand
	base uint64
}

// NewSequentialKeys creates a sequential generator starting at base.
func NewSequentialKeys(base uint64) *SequentialKeys {
	return &SequentialKeys{next: base, base: base, rnd: NewRand(base)}
}

// NextKey returns base, base+1, ...
func (s *SequentialKeys) NextKey() uint64 {
	k := s.next
	s.next++
	return k
}

// ExistingKey returns a uniform key in [base, next).
func (s *SequentialKeys) ExistingKey() uint64 {
	if s.next == s.base {
		return s.base
	}
	return s.base + s.rnd.Intn(s.next-s.base)
}

// ZipfKeys generates keys with a Zipfian popularity distribution over a
// fixed universe, modelling skewed cache workloads. It uses the Gray et al.
// rejection-inversion-free approximation: rank = floor(N^U) biased by the
// exponent, which is accurate enough for benchmarking skew effects.
type ZipfKeys struct {
	rnd   *Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipfKeys creates a Zipf generator over universe [0, n) with skew
// theta in (0, 1); theta ≈ 0.99 matches YCSB's default.
func NewZipfKeys(seed uint64, n uint64, theta float64) *ZipfKeys {
	if n == 0 {
		panic("workload: zipf universe must be non-empty")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: zipf theta must be in (0,1)")
	}
	z := &ZipfKeys{rnd: NewRand(seed), n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Direct sum for small n; sampled sum for large n (benchmark-grade
	// accuracy, avoids multi-second setup for 10^8 universes).
	if n <= 1<<20 {
		s := 0.0
		for i := uint64(1); i <= n; i++ {
			s += 1.0 / pow(float64(i), theta)
		}
		return s
	}
	s := zeta(1<<20, theta)
	// Integral approximation for the tail.
	a := float64(uint64(1) << 20)
	b := float64(n)
	s += (pow(b, 1-theta) - pow(a, 1-theta)) / (1 - theta)
	return s
}

func pow(x, y float64) float64 {
	// math.Pow wrapper kept separate so the hot path reads clearly.
	return mathPow(x, y)
}

// NextKey draws a key; popular keys are small ranks scrambled to spread
// them over the hash space.
func (z *ZipfKeys) NextKey() uint64 {
	u := z.rnd.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	return hashfn.SplitMix64(rank)
}

// ExistingKey is identical to NextKey for Zipf workloads: the popular keys
// are the existing ones.
func (z *ZipfKeys) ExistingKey() uint64 { return z.NextKey() }

// ZipfSKeys generates keys with Zipf exponent s > 1 over universe [0, n),
// the heavy-skew regime the Gray approximation in ZipfKeys cannot reach
// (its theta is capped below 1). At s = 1.2 a handful of ranks absorb
// most of the stream — the hot-counter workload the txn subsystem's
// split counters are built for (docs/TRANSACTIONS.md). Backed by
// math/rand's rejection-inversion Zipf sampler, seeded deterministically.
type ZipfSKeys struct {
	z *rand.Zipf
}

// NewZipfSKeys creates a generator over [0, n) with exponent s > 1.
func NewZipfSKeys(seed uint64, n uint64, s float64) *ZipfSKeys {
	if n == 0 {
		panic("workload: zipf universe must be non-empty")
	}
	if s <= 1 {
		panic("workload: zipf exponent s must be > 1 (use ZipfKeys for theta < 1)")
	}
	//nolint:gosec // deterministic workload generation, not cryptography
	r := rand.New(rand.NewSource(int64(hashfn.SplitMix64(seed))))
	return &ZipfSKeys{z: rand.NewZipf(r, s, 1, n-1)}
}

// NextKey draws a rank and scrambles it over the hash space, so the hot
// ranks do not cluster in adjacent table buckets.
func (z *ZipfSKeys) NextKey() uint64 { return hashfn.SplitMix64(z.z.Uint64()) }

// ExistingKey is identical to NextKey: the popular keys are the existing
// ones.
func (z *ZipfSKeys) ExistingKey() uint64 { return z.NextKey() }

// Rank returns the unscrambled rank of the next draw; benchmarks that
// need to know which key is hottest (rank 0) use this directly.
func (z *ZipfSKeys) Rank() uint64 { return z.z.Uint64() }
