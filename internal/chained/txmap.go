package chained

import (
	"errors"

	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/htm"
)

// ErrArenaFull reports node-arena exhaustion in a TxMap.
var ErrArenaFull = errors.New("chained: node arena exhausted")

// TxMap is the chained hash table under a coarse lock with (emulated) TSX
// lock elision: the std::unordered_map-with-TSX configuration of Figure 2.
//
// Nodes come from a bump allocator inside the transactional arena. In the
// default mode the allocation cursor is one shared word, so *every* pair of
// concurrent inserts conflicts on it — the dynamic-memory-allocation abort
// problem §5 observed with chained hashing and Masstree. With
// PerThreadChunks enabled, each thread refills a private cursor from the
// shared one in batches (the paper's suggested pre-allocation fix,
// principle P3), eliminating almost all allocator conflicts; the ablation
// benchmark compares the two.
type TxMap struct {
	nb       uint64
	seed     uint64
	policy   htm.Policy
	region   *htm.Region
	capacity uint64
	chunked  bool
	size     shardedCounter
}

// Arena layout (word addresses):
//
//	0:                       shared allocation cursor (node address)
//	8, 16, ... 8*threads:    per-thread cursors: [cur, limit] pairs, one line each
//	headBase .. +nb:         chain heads (0 = nil)
//	nodeBase ..:             node records: key, val, next
const (
	txMaxThreads = 64
	chunkNodes   = 64
	nodeWords    = 3
)

// NewTxMap creates a transactional chained map with room for capacity
// entries.
func NewTxMap(buckets, capacity uint64, seed uint64, policy htm.Policy, perThreadChunks bool, cfg htm.Config) (*TxMap, error) {
	if buckets < 2 || buckets&(buckets-1) != 0 || capacity == 0 {
		return nil, ErrBadOptions
	}
	headerWords := uint64(8 * (txMaxThreads + 1))
	words := headerWords + buckets + capacity*nodeWords
	m := &TxMap{
		nb:       buckets,
		seed:     seed,
		policy:   policy,
		region:   htm.NewRegion(int(words), cfg),
		capacity: capacity,
		chunked:  perThreadChunks,
	}
	// The first node address; 0 stays reserved as the nil sentinel.
	m.region.Words()[0] = uint64(m.nodeBase())
	return m, nil
}

// MustNewTxMap panics on configuration errors.
func MustNewTxMap(buckets, capacity uint64, seed uint64, policy htm.Policy, perThreadChunks bool, cfg htm.Config) *TxMap {
	m, err := NewTxMap(buckets, capacity, seed, policy, perThreadChunks, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *TxMap) headBase() uint32 { return 8 * (txMaxThreads + 1) }
func (m *TxMap) nodeBase() uint32 { return m.headBase() + uint32(m.nb) }
func (m *TxMap) arenaEnd() uint32 {
	return m.nodeBase() + uint32(m.capacity)*nodeWords
}

// Region exposes transaction statistics.
func (m *TxMap) Region() *htm.Region { return m.region }

// Len returns the entry count.
func (m *TxMap) Len() uint64 { return uint64(m.size.total()) }

func (m *TxMap) headAddr(key uint64) uint32 {
	return m.headBase() + uint32(hashfn.Uint64(key, m.seed)&(m.nb-1))
}

// alloc reserves one node inside tx, from the shared cursor or the thread's
// chunk.
func (m *TxMap) alloc(tx *htm.Txn, thread int) (uint32, error) {
	if !m.chunked {
		cur := tx.Load(0)
		if uint32(cur)+nodeWords > m.arenaEnd() {
			return 0, ErrArenaFull
		}
		tx.Store(0, cur+nodeWords)
		return uint32(cur), nil
	}
	base := uint32(8 * (thread%txMaxThreads + 1))
	cur := tx.Load(base)
	limit := tx.Load(base + 1)
	if cur >= limit {
		// Refill the private chunk from the shared cursor; this is the
		// only time the shared line enters the transaction's write set.
		shared := tx.Load(0)
		if uint32(shared)+nodeWords > m.arenaEnd() {
			return 0, ErrArenaFull
		}
		take := uint64(chunkNodes * nodeWords)
		if uint64(m.arenaEnd())-shared < take {
			take = uint64(m.arenaEnd()) - shared
		}
		tx.Store(0, shared+take)
		cur = shared
		limit = shared + take
		tx.Store(base+1, limit)
	}
	tx.Store(base, cur+nodeWords)
	return uint32(cur), nil
}

// Put inserts or overwrites key. thread identifies the calling goroutine
// for per-thread allocation (ignored in shared-cursor mode).
func (m *TxMap) Put(thread int, key, val uint64) error {
	h := m.headAddr(key)
	err := m.region.RunElided(m.policy, func(tx *htm.Txn) error {
		steps := m.capacity
		for n := uint32(tx.Load(h)); m.validNode(n); n = uint32(tx.Load(n + 2)) {
			if tx.Load(n) == key {
				tx.Store(n+1, val)
				return errUpdatedInPlace
			}
			// A zombie transaction (stale read set, doomed to abort at
			// commit) can observe a cyclic or garbage list; bound the walk
			// so it reaches commit and aborts instead of spinning.
			if steps--; steps == 0 {
				break
			}
		}
		n, err := m.alloc(tx, thread)
		if err != nil {
			return err
		}
		tx.Store(n, key)
		tx.Store(n+1, val)
		tx.Store(n+2, tx.Load(h))
		tx.Store(h, uint64(n))
		return nil
	})
	switch err {
	case nil:
		m.size.add(uint64(h), 1)
		return nil
	case errUpdatedInPlace:
		return nil
	default:
		return err
	}
}

var errUpdatedInPlace = errors.New("chained: updated in place")

// Get returns the value for key.
func (m *TxMap) Get(key uint64) (uint64, bool) {
	h := m.headAddr(key)
	var val uint64
	found := false
	_ = m.region.RunElided(m.policy, func(tx *htm.Txn) error {
		found = false
		steps := m.capacity
		for n := uint32(tx.Load(h)); m.validNode(n); n = uint32(tx.Load(n + 2)) {
			if tx.Load(n) == key {
				val = tx.Load(n + 1)
				found = true
				return nil
			}
			if steps--; steps == 0 {
				break
			}
		}
		return nil
	})
	return val, found
}

// validNode reports whether n is a plausible in-arena node address; zombie
// transactions may read garbage pointers that must not be dereferenced.
func (m *TxMap) validNode(n uint32) bool {
	return n >= m.nodeBase() && n+nodeWords <= m.arenaEnd()
}
