package chained

import "testing"

// FuzzMapOps interprets fuzz input as an op script against the unsync map
// with a Go map oracle, exercising collision chains, overwrites, unlinking
// from chain heads/middles/tails, and resizing.
func FuzzMapOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, script []byte) {
		o := Options{Buckets: 4, Sync: false, GrowAt: 2.0}
		m := MustNew(o)
		oracle := map[uint64]uint64{}
		for i := 0; i+1 < len(script); i += 2 {
			op, kb := script[i], script[i+1]
			k := uint64(kb)
			v := uint64(i)
			switch op % 3 {
			case 0:
				m.Put(k, v)
				oracle[k] = v
			case 1:
				_, exists := oracle[k]
				if m.Delete(k) != exists {
					t.Fatalf("Delete(%d) disagreed", k)
				}
				delete(oracle, k)
			default:
				got, ok := m.Get(k)
				want, exists := oracle[k]
				if ok != exists || (ok && got != want) {
					t.Fatalf("Get(%d) = %d,%v oracle %d,%v", k, got, ok, want, exists)
				}
			}
		}
		if m.Len() != uint64(len(oracle)) {
			t.Fatalf("Len = %d oracle %d", m.Len(), len(oracle))
		}
	})
}
