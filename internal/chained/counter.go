package chained

import "sync/atomic"

// shardedCounter avoids a shared size word on the insert path (principle
// P1); shards key off the bucket index.
type shardedCounter struct {
	shards [64]paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (c *shardedCounter) add(bucket uint64, delta int64) {
	c.shards[bucket&63].v.Add(delta)
}

func (c *shardedCounter) total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}
