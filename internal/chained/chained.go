// Package chained implements a separate-chaining hash table in two
// synchronization flavours, standing in for the paper's two chained-table
// comparison points (see DESIGN.md §2):
//
//   - Sync mode: a concurrent multi-reader/multi-writer table with striped
//     per-bucket spinlocks, the same algorithmic class as Intel TBB's
//     concurrent_hash_map — each key hashes to one bucket, holding that
//     bucket's lock permits exclusive modification.
//   - Unsync mode: the same structure with locking compiled out, a stand-in
//     for C++11 std::unordered_map (thread-unsafe, externally serialized).
//
// Entries are heap-allocated linked-list nodes, deliberately keeping the
// pointer-per-item overhead the paper contrasts with cuckoo+'s flat arrays:
// for 16-byte items this table occupies 2–3× the memory (see
// MemoryFootprint).
package chained

import (
	"errors"
	"sync/atomic"

	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/spinlock"
)

// ErrBadOptions reports invalid configuration.
var ErrBadOptions = errors.New("chained: invalid options")

// Options configures a Map.
type Options struct {
	// Buckets is the number of chain heads (power of two).
	Buckets uint64
	// Stripes is the lock-stripe count in Sync mode (power of two).
	Stripes int
	// Sync selects the concurrent (TBB-like) flavour; false gives the
	// unsynchronized (std::unordered_map-like) flavour.
	Sync bool
	// Seed perturbs the hash.
	Seed uint64
	// GrowAt is the load factor (entries per bucket) that triggers a
	// resize; 0 disables resizing (the paper presizes the TBB table).
	GrowAt float64
}

// Defaults sizes the table for n expected entries with one bucket per
// entry, matching how the evaluation initializes the TBB table.
func Defaults(n uint64, sync bool) Options {
	b := uint64(2)
	for b < n {
		b <<= 1
	}
	return Options{Buckets: b, Stripes: 4096, Sync: sync}
}

type node struct {
	key  uint64
	val  uint64
	next *node
}

// Map is the chained hash table.
type Map struct {
	opts  Options
	seed  uint64
	locks *spinlock.Stripe

	mu      spinlock.Mutex // guards resize in Sync mode
	heads   atomic.Pointer[headsArr]
	size    shardedCounter
	resizes atomic.Uint64
}

type headsArr struct {
	heads []*node
	mask  uint64
}

// New creates a Map.
func New(o Options) (*Map, error) {
	if o.Buckets < 2 || o.Buckets&(o.Buckets-1) != 0 {
		return nil, ErrBadOptions
	}
	if o.Sync && (o.Stripes <= 0 || o.Stripes&(o.Stripes-1) != 0) {
		return nil, ErrBadOptions
	}
	m := &Map{opts: o, seed: o.Seed}
	if o.Sync {
		m.locks = spinlock.NewStripe(o.Stripes)
	}
	m.heads.Store(newHeads(o.Buckets))
	return m, nil
}

// MustNew panics on configuration errors.
func MustNew(o Options) *Map {
	m, err := New(o)
	if err != nil {
		panic(err)
	}
	return m
}

func newHeads(n uint64) *headsArr {
	return &headsArr{heads: make([]*node, n), mask: n - 1}
}

// Len returns the entry count.
func (m *Map) Len() uint64 { return uint64(m.size.total()) }

// Buckets returns the current bucket count.
func (m *Map) Buckets() uint64 { return m.heads.Load().mask + 1 }

// Resizes returns how many times the table has grown.
func (m *Map) Resizes() uint64 { return m.resizes.Load() }

// MemoryFootprint estimates resident bytes: chain heads plus one 24-byte
// node (plus allocator/GC word overhead, counted as 16 bytes) per entry.
func (m *Map) MemoryFootprint() uint64 {
	return m.Buckets()*8 + m.Len()*(24+16)
}

func (m *Map) bucketOf(key uint64) uint64 {
	return hashfn.Uint64(key, m.seed)
}

// Get returns the value for key.
func (m *Map) Get(key uint64) (uint64, bool) {
	h := m.bucketOf(key)
	if !m.opts.Sync {
		ha := m.heads.Load()
		for n := ha.heads[h&ha.mask]; n != nil; n = n.next {
			if n.key == key {
				return n.val, true
			}
		}
		return 0, false
	}
	for {
		ha := m.heads.Load()
		b := h & ha.mask
		l := m.locks.IndexFor(b)
		m.locks.Lock(l)
		if m.heads.Load() != ha {
			m.locks.Unlock(l)
			continue
		}
		for n := ha.heads[b]; n != nil; n = n.next {
			if n.key == key {
				v := n.val
				m.locks.Unlock(l)
				return v, true
			}
		}
		m.locks.Unlock(l)
		return 0, false
	}
}

// Put inserts or overwrites key.
func (m *Map) Put(key, val uint64) {
	h := m.bucketOf(key)
	if !m.opts.Sync {
		ha := m.heads.Load()
		b := h & ha.mask
		for n := ha.heads[b]; n != nil; n = n.next {
			if n.key == key {
				n.val = val
				return
			}
		}
		ha.heads[b] = &node{key: key, val: val, next: ha.heads[b]}
		m.size.add(b, 1)
		m.maybeGrowUnsync()
		return
	}
	for {
		ha := m.heads.Load()
		b := h & ha.mask
		l := m.locks.IndexFor(b)
		m.locks.Lock(l)
		if m.heads.Load() != ha {
			m.locks.Unlock(l)
			continue
		}
		for n := ha.heads[b]; n != nil; n = n.next {
			if n.key == key {
				n.val = val
				m.locks.Unlock(l)
				return
			}
		}
		ha.heads[b] = &node{key: key, val: val, next: ha.heads[b]}
		m.locks.Unlock(l)
		m.size.add(b, 1)
		m.maybeGrowSync()
		return
	}
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(key uint64) bool {
	h := m.bucketOf(key)
	if !m.opts.Sync {
		ha := m.heads.Load()
		b := h & ha.mask
		if m.unlink(ha, b, key) {
			m.size.add(b, -1)
			return true
		}
		return false
	}
	for {
		ha := m.heads.Load()
		b := h & ha.mask
		l := m.locks.IndexFor(b)
		m.locks.Lock(l)
		if m.heads.Load() != ha {
			m.locks.Unlock(l)
			continue
		}
		ok := m.unlink(ha, b, key)
		m.locks.Unlock(l)
		if ok {
			m.size.add(b, -1)
		}
		return ok
	}
}

func (m *Map) unlink(ha *headsArr, b uint64, key uint64) bool {
	prev := &ha.heads[b]
	for n := *prev; n != nil; n = *prev {
		if n.key == key {
			*prev = n.next
			return true
		}
		prev = &n.next
	}
	return false
}

// Range visits every entry (single-threaded use, or externally quiesced).
func (m *Map) Range(fn func(key, val uint64) bool) {
	ha := m.heads.Load()
	for i := range ha.heads {
		for n := ha.heads[i]; n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

func (m *Map) maybeGrowUnsync() {
	if m.opts.GrowAt <= 0 {
		return
	}
	ha := m.heads.Load()
	if float64(m.Len()) <= m.opts.GrowAt*float64(ha.mask+1) {
		return
	}
	m.rehash(ha, newHeads((ha.mask+1)*2))
}

func (m *Map) maybeGrowSync() {
	if m.opts.GrowAt <= 0 {
		return
	}
	ha := m.heads.Load()
	if float64(m.Len()) <= m.opts.GrowAt*float64(ha.mask+1) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.heads.Load()
	if cur != ha {
		return // someone else grew
	}
	m.locks.LockAll()
	m.rehash(cur, newHeads((cur.mask+1)*2))
	m.locks.UnlockAll()
}

func (m *Map) rehash(old, next *headsArr) {
	for i := range old.heads {
		n := old.heads[i]
		for n != nil {
			nx := n.next
			b := m.bucketOf(n.key) & next.mask
			n.next = next.heads[b]
			next.heads[b] = n
			n = nx
		}
	}
	m.heads.Store(next)
	m.resizes.Add(1)
}
