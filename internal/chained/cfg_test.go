package chained

import "cuckoohash/internal/htm"

func defaultCfg() htm.Config { return htm.DefaultConfig() }
