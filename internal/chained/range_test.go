package chained

import "testing"

func TestRangeVisitsAll(t *testing.T) {
	m := MustNew(Defaults(64, false))
	want := map[uint64]uint64{}
	for k := uint64(1); k <= 500; k++ {
		m.Put(k, k*9)
		want[k] = k * 9
	}
	got := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(_, _ uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := New(Options{Buckets: 3}); err == nil {
		t.Fatal("non-pow2 buckets accepted")
	}
	if _, err := New(Options{Buckets: 8, Sync: true, Stripes: 3}); err == nil {
		t.Fatal("non-pow2 stripes accepted")
	}
	if _, err := NewTxMap(3, 10, 0, 0, false, defaultCfg()); err == nil {
		t.Fatal("TxMap non-pow2 buckets accepted")
	}
	if _, err := NewTxMap(8, 0, 0, 0, false, defaultCfg()); err == nil {
		t.Fatal("TxMap zero capacity accepted")
	}
}

func TestTxMapArenaExhaustion(t *testing.T) {
	m := MustNewTxMap(8, 4, 1, 0, false, defaultCfg())
	var err error
	for k := uint64(1); k <= 10; k++ {
		if err = m.Put(0, k, k); err != nil {
			break
		}
	}
	if err != ErrArenaFull {
		t.Fatalf("err = %v, want ErrArenaFull", err)
	}
	// Existing entries still readable.
	if v, ok := m.Get(1); !ok || v != 1 {
		t.Fatal("entry lost after arena exhaustion")
	}
	// Overwrites still work (no allocation needed).
	if err := m.Put(0, 1, 99); err != nil {
		t.Fatalf("overwrite after exhaustion: %v", err)
	}
	if v, _ := m.Get(1); v != 99 {
		t.Fatal("overwrite lost")
	}
}
