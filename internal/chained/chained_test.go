package chained

import (
	"sync"
	"testing"

	"cuckoohash/internal/htm"
	"cuckoohash/internal/workload"
)

func TestPutGetDeleteUnsync(t *testing.T) {
	m := MustNew(Defaults(1024, false))
	for k := uint64(1); k <= 500; k++ {
		m.Put(k, k*2)
	}
	if m.Len() != 500 {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := uint64(1); k <= 500; k++ {
		if v, ok := m.Get(k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	m.Put(3, 99) // overwrite
	if v, _ := m.Get(3); v != 99 {
		t.Fatal("overwrite failed")
	}
	if m.Len() != 500 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
	if !m.Delete(3) || m.Delete(3) {
		t.Fatal("delete semantics")
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("deleted key still present")
	}
}

func TestGrowUnsync(t *testing.T) {
	o := Options{Buckets: 16, Sync: false, GrowAt: 1.0}
	m := MustNew(o)
	for k := uint64(1); k <= 1000; k++ {
		m.Put(k, k)
	}
	if m.Resizes() == 0 {
		t.Fatal("expected at least one resize")
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("after grow Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentSync(t *testing.T) {
	m := MustNew(Defaults(1<<14, true))
	const threads = 8
	const per = 4000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th+1) << 32
			rnd := workload.NewRand(uint64(th))
			for i := uint64(0); i < per; i++ {
				k := base | i
				m.Put(k, i)
				if v, ok := m.Get(k); !ok || v != i {
					t.Errorf("Get(just put %d) = %d,%v", k, v, ok)
					return
				}
				if rnd.Intn(10) == 0 {
					m.Delete(k)
					m.Put(k, i)
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if m.Len() != threads*per {
		t.Fatalf("Len = %d, want %d", m.Len(), threads*per)
	}
}

func TestConcurrentSyncWithGrow(t *testing.T) {
	o := Defaults(256, true)
	o.GrowAt = 2.0
	m := MustNew(o)
	const threads = 4
	const per = 5000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th+1) << 32
			for i := uint64(0); i < per; i++ {
				m.Put(base|i, i)
			}
		}(th)
	}
	wg.Wait()
	if m.Len() != threads*per {
		t.Fatalf("Len = %d, want %d", m.Len(), threads*per)
	}
	if m.Resizes() == 0 {
		t.Fatal("expected resizes")
	}
	for th := 0; th < threads; th++ {
		base := uint64(th+1) << 32
		for i := uint64(0); i < per; i++ {
			if v, ok := m.Get(base | i); !ok || v != i {
				t.Fatalf("Get(%d) = %d,%v", base|i, v, ok)
			}
		}
	}
}

func TestMemoryFootprintRatio(t *testing.T) {
	// The chained table must cost noticeably more than 16 B/entry — the
	// paper's 2–3× memory argument against pointer-chained designs.
	m := MustNew(Defaults(1<<12, false))
	for k := uint64(1); k <= 1<<12; k++ {
		m.Put(k, k)
	}
	perEntry := float64(m.MemoryFootprint()) / float64(m.Len())
	if perEntry < 32 {
		t.Fatalf("per-entry footprint %.1f B, expected >= 32 B", perEntry)
	}
}

func TestTxMapBasic(t *testing.T) {
	for _, chunked := range []bool{false, true} {
		m := MustNewTxMap(1<<10, 1<<11, 1, htm.PolicyTuned, chunked, htm.DefaultConfig())
		for k := uint64(1); k <= 800; k++ {
			if err := m.Put(0, k, k*5); err != nil {
				t.Fatalf("Put(%d): %v", k, err)
			}
		}
		for k := uint64(1); k <= 800; k++ {
			if v, ok := m.Get(k); !ok || v != k*5 {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		}
		m.Put(0, 1, 42)
		if v, _ := m.Get(1); v != 42 {
			t.Fatal("overwrite failed")
		}
		if m.Len() != 800 {
			t.Fatalf("Len = %d", m.Len())
		}
	}
}

func TestTxMapConcurrent(t *testing.T) {
	for _, chunked := range []bool{false, true} {
		m := MustNewTxMap(1<<12, 1<<15, 1, htm.PolicyTuned, chunked, htm.DefaultConfig())
		const threads = 8
		const per = 2000
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				base := uint64(th+1) << 32
				for i := uint64(0); i < per; i++ {
					if err := m.Put(th, base|i, i); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}(th)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if m.Len() != threads*per {
			t.Fatalf("chunked=%v Len = %d, want %d", chunked, m.Len(), threads*per)
		}
		for th := 0; th < threads; th++ {
			base := uint64(th+1) << 32
			for i := uint64(0); i < per; i++ {
				if v, ok := m.Get(base | i); !ok || v != i {
					t.Fatalf("Get(%d) = %d,%v", base|i, v, ok)
				}
			}
		}
		s := m.Region().Stats()
		t.Logf("chunked=%v stats: %+v abort-rate=%.3f", chunked, s, s.AbortRate())
	}
}

// TestTxMapAllocatorConflicts verifies the design point: the shared bump
// allocator makes concurrent inserts conflict far more than per-thread
// chunks do (§5's dynamic-allocation abort problem and its P3 fix).
func TestTxMapAllocatorConflicts(t *testing.T) {
	run := func(chunked bool) float64 {
		m := MustNewTxMap(1<<14, 1<<16, 1, htm.PolicyTuned, chunked, htm.DefaultConfig())
		const threads = 8
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				base := uint64(th+1) << 32
				for i := uint64(0); i < 4000; i++ {
					if err := m.Put(th, base|i, i); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}(th)
		}
		wg.Wait()
		return m.Region().Stats().AbortRate()
	}
	shared := run(false)
	chunked := run(true)
	t.Logf("abort rate: shared=%.3f chunked=%.3f", shared, chunked)
	if t.Failed() {
		t.FailNow()
	}
	if shared == 0 {
		// With a single CPU the scheduler serializes transactions and no
		// conflicts can arise; the comparison needs real parallelism.
		t.Skip("no contention observed (single-CPU host)")
	}
	if chunked >= shared {
		t.Fatalf("per-thread chunks did not reduce aborts: shared=%.3f chunked=%.3f", shared, chunked)
	}
}
