package memc3

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"cuckoohash/internal/htm"
	"cuckoohash/internal/workload"
)

func TestInsertLookup(t *testing.T) {
	tab := MustNew(Defaults(1 << 10))
	for k := uint64(1); k <= 400; k++ {
		if err := tab.Insert(k, k+7); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := uint64(1); k <= 400; k++ {
		if v, ok := tab.Lookup(k); !ok || v != k+7 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tab.Lookup(4040); ok {
		t.Fatal("found absent key")
	}
	if err := tab.Insert(1, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("dup insert: %v", err)
	}
	if !tab.Delete(1) || tab.Delete(1) {
		t.Fatal("delete semantics")
	}
	if tab.Len() != 399 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

// TestFillOccupancy: MemC3's 4-way table reaches ~95% before ErrFull.
func TestFillOccupancy(t *testing.T) {
	tab := MustNew(Defaults(1 << 14))
	gen := workload.NewSequentialKeys(1)
	var n uint64
	for {
		if err := tab.Insert(gen.NextKey(), 0); err != nil {
			break
		}
		n++
	}
	if lf := float64(n) / float64(tab.Cap()); lf < 0.90 {
		t.Fatalf("4-way table full at %.3f, want >= 0.90", lf)
	}
}

// TestSingleWriterManyReaders exercises the optimistic read protocol while
// the single writer churns: readers must always see their stable keys.
func TestSingleWriterManyReaders(t *testing.T) {
	tab := MustNew(Defaults(1 << 14))
	// Stable prefix the readers verify.
	for k := uint64(1); k <= 1000; k++ {
		if err := tab.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		gen := workload.NewSequentialKeys(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tab.Insert(gen.NextKey(), 9); err != nil {
				return // table filled; stop writing
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rnd := workload.NewRand(uint64(r))
			for i := 0; i < 50000; i++ {
				k := rnd.Intn(1000) + 1
				if v, ok := tab.Lookup(k); !ok || v != k*3 {
					t.Errorf("Lookup(%d) = %d,%v want %d,true", k, v, ok, k*3)
					return
				}
			}
		}(r)
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestWritersSerialize verifies multiple goroutines may call Insert (they
// serialize internally) without corruption.
func TestWritersSerialize(t *testing.T) {
	tab := MustNew(Defaults(1 << 14))
	const threads = 4
	const per = 2000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th+1) << 32
			for i := uint64(0); i < per; i++ {
				if err := tab.Insert(base|i, i); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if tab.Len() != threads*per {
		t.Fatalf("Len = %d, want %d", tab.Len(), threads*per)
	}
	for th := 0; th < threads; th++ {
		base := uint64(th+1) << 32
		for i := uint64(0); i < per; i++ {
			if v, ok := tab.Lookup(base | i); !ok || v != i {
				t.Fatalf("Lookup(%d) = %d,%v", base|i, v, ok)
			}
		}
	}
}

func TestTxTableBasic(t *testing.T) {
	for _, p := range []htm.Policy{htm.PolicyNone, htm.PolicyGlibc, htm.PolicyTuned} {
		t.Run(p.String(), func(t *testing.T) {
			tab := MustNewTxTable(Defaults(1<<10), p, htm.DefaultConfig())
			for k := uint64(1); k <= 300; k++ {
				if err := tab.Insert(k, k); err != nil {
					t.Fatalf("Insert(%d): %v", k, err)
				}
			}
			for k := uint64(1); k <= 300; k++ {
				if v, ok := tab.Lookup(k); !ok || v != k {
					t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
				}
			}
			if err := tab.Insert(5, 0); !errors.Is(err, ErrExists) {
				t.Fatalf("dup: %v", err)
			}
			if !tab.Delete(5) || tab.Delete(5) {
				t.Fatal("delete semantics")
			}
			if tab.Len() != 299 {
				t.Fatalf("Len = %d", tab.Len())
			}
		})
	}
}

func TestTxTableConcurrentWriters(t *testing.T) {
	tab := MustNewTxTable(Defaults(1<<14), htm.PolicyTuned, htm.DefaultConfig())
	const threads = 8
	const per = 1000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th+1) << 32
			for i := uint64(0); i < per; i++ {
				if err := tab.Insert(base|i, i); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if tab.Len() != threads*per {
		t.Fatalf("Len = %d", tab.Len())
	}
	for th := 0; th < threads; th++ {
		base := uint64(th+1) << 32
		for i := uint64(0); i < per; i++ {
			if v, ok := tab.Lookup(base | i); !ok || v != i {
				t.Fatalf("Lookup(%d) = %d,%v", base|i, v, ok)
			}
		}
	}
	s := tab.Region().Stats()
	t.Logf("stats: %+v abort-rate=%.3f", s, s.AbortRate())
}

// TestTxTableHighOccupancyAborts reproduces the §2.3 observation: the
// unoptimized cuckoo insert (search inside the transaction) at high
// occupancy aborts heavily under concurrent writers.
func TestTxTableHighOccupancyAborts(t *testing.T) {
	tab := MustNewTxTable(Defaults(1<<13), htm.PolicyGlibc, htm.DefaultConfig())
	// Fill to 80% single-threaded.
	gen := workload.NewSequentialKeys(1)
	target := uint64(float64(tab.Cap()) * 0.80)
	for i := uint64(0); i < target; i++ {
		if err := tab.Insert(gen.NextKey(), 0); err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	tab.Region().ResetStats()
	// Now hammer with 8 concurrent writers.
	var wg sync.WaitGroup
	for th := 0; th < 8; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			g := workload.NewUniformKeys(7, th)
			for i := 0; i < 200; i++ {
				err := tab.Insert(g.NextKey(), 1)
				if err != nil && !errors.Is(err, ErrFull) {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	s := tab.Region().Stats()
	if s.Aborts == 0 && s.Fallbacks == 0 && runtime.GOMAXPROCS(0) > 1 {
		t.Fatalf("expected aborts or fallbacks under contention, got %+v", s)
	}
	t.Logf("unoptimized cuckoo under 8 writers: %+v abort-rate=%.3f", s, s.AbortRate())
}

func TestDisableSizeCounter(t *testing.T) {
	tab := MustNew(Defaults(1 << 10))
	tab.DisableSizeCounter()
	if err := tab.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != -1 {
		t.Fatalf("Len with disabled counter = %d, want -1", tab.Len())
	}
	if tab.LoadFactor() != 0 {
		t.Fatalf("LoadFactor with disabled counter = %v", tab.LoadFactor())
	}
	if v, ok := tab.Lookup(1); !ok || v != 1 {
		t.Fatal("lookup after disabled-counter insert failed")
	}
}
