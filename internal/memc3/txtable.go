package memc3

import (
	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/htm"
)

// TxTable is the MemC3 cuckoo table under a coarse lock with (emulated) TSX
// lock elision, the configuration measured in Figure 2 and the "+TSX-glibc"
// / "+TSX*" columns of the upper Figure 5b chart.
//
// Crucially — and this is what dooms it — the whole of Algorithm 1 runs
// inside one transaction: duplicate check, the DFS path search (which at
// high occupancy reads hundreds of buckets into the transaction's read set)
// and every displacement write. Long transactions conflict with everything
// and overflow the emulated L1 capacity, so the abort rate explodes and the
// fallback lock serializes the writers, reproducing §2.3's observation that
// lock elision alone cannot rescue an unoptimized data structure.
type TxTable struct {
	nb     uint64
	assoc  uint64
	vw     uint64
	seed   uint64
	budget int
	stride uint64
	policy htm.Policy
	region *htm.Region
	size   paddedSize
}

type paddedSize struct {
	shards [64]paddedI64
}

type paddedI64 struct {
	v atomicI64
	_ [120]byte
}

// NewTxTable creates the transactional MemC3 table.
func NewTxTable(o Options, policy htm.Policy, cfg htm.Config) (*TxTable, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	assoc := uint64(o.Assoc)
	vw := uint64(o.ValueWords)
	stride := (1 + assoc + assoc*vw + 7) / 8 * 8
	words := o.Buckets * stride
	t := &TxTable{
		nb:     o.Buckets,
		assoc:  assoc,
		vw:     vw,
		seed:   o.Seed,
		budget: o.MaxSearchSlots,
		stride: stride,
		policy: policy,
		region: htm.NewRegion(int(words), cfg),
	}
	return t, nil
}

// MustNewTxTable panics on configuration errors.
func MustNewTxTable(o Options, policy htm.Policy, cfg htm.Config) *TxTable {
	t, err := NewTxTable(o, policy, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Region exposes the transaction statistics.
func (t *TxTable) Region() *htm.Region { return t.region }

// Cap returns the slot count.
func (t *TxTable) Cap() uint64 { return t.nb * t.assoc }

// Len returns the key count.
func (t *TxTable) Len() uint64 {
	var n int64
	for i := range t.size.shards {
		n += t.size.shards[i].v.Load()
	}
	return uint64(n)
}

// LoadFactor returns Len/Cap.
func (t *TxTable) LoadFactor() float64 { return float64(t.Len()) / float64(t.Cap()) }

func (t *TxTable) hash(key uint64) uint64 { return hashfn.Uint64(key, t.seed) }

func (t *TxTable) occAddr(b uint64) uint32 { return uint32(b * t.stride) }
func (t *TxTable) keyAddr(b uint64, s int) uint32 {
	return uint32(b*t.stride + 1 + uint64(s))
}
func (t *TxTable) valAddr(b uint64, s int, w uint64) uint32 {
	return uint32(b*t.stride + 1 + t.assoc + uint64(s)*t.vw + w)
}

// Lookup reads key in one read-only transaction.
func (t *TxTable) Lookup(key uint64) (uint64, bool) {
	b1, b2 := hashfn.TwoBuckets(t.hash(key), t.nb)
	var val uint64
	found := false
	_ = t.region.RunElided(t.policy, func(tx *htm.Txn) error {
		found = false
		for _, b := range [2]uint64{b1, b2} {
			occ := tx.Load(t.occAddr(b))
			for s := 0; s < int(t.assoc); s++ {
				if occ&(1<<uint(s)) != 0 && tx.Load(t.keyAddr(b, s)) == key {
					val = tx.Load(t.valAddr(b, s, 0))
					found = true
					return nil
				}
			}
		}
		return nil
	})
	return val, found
}

// txScratch holds the DFS path buffers. They are allocated before the
// transaction begins: an allocation inside the transaction body cannot be
// rolled back on abort and real HTM aborts on the allocator's page faults
// (cuckoovet:htmpure). The DFS itself still runs inside the transaction —
// that unoptimized placement is the point of this baseline.
type txScratch struct {
	pathA, pathB []entry
}

// maxPathLen is the per-direction DFS depth bound implied by the budget.
func (t *TxTable) maxPathLen() int {
	maxLen := t.budget / (2 * int(t.assoc))
	if maxLen < 1 {
		maxLen = 1
	}
	return maxLen
}

// Insert runs the entire Algorithm 1 in a single elided transaction.
func (t *TxTable) Insert(key, val uint64) error {
	h := t.hash(key)
	b1, b2 := hashfn.TwoBuckets(h, t.nb)
	maxLen := t.maxPathLen()
	sc := txScratch{
		pathA: make([]entry, maxLen+1),
		pathB: make([]entry, maxLen+1),
	}
	err := t.region.RunElided(t.policy, func(tx *htm.Txn) error {
		// Duplicate check.
		for _, b := range [2]uint64{b1, b2} {
			occ := tx.Load(t.occAddr(b))
			for s := 0; s < int(t.assoc); s++ {
				if occ&(1<<uint(s)) != 0 && tx.Load(t.keyAddr(b, s)) == key {
					return ErrExists
				}
			}
		}
		// Direct placement.
		for _, b := range [2]uint64{b1, b2} {
			occ := tx.Load(t.occAddr(b))
			if s, ok := freeBit(occ, int(t.assoc)); ok {
				t.txPlace(tx, b, s, key, val, occ)
				return nil
			}
		}
		// DFS search *inside* the transaction (the unoptimized design).
		path, ok := t.txSearch(tx, &sc, h, b1, b2)
		if !ok {
			return ErrFull
		}
		for i := len(path) - 2; i >= 0; i-- {
			t.txDisplace(tx, path[i], path[i+1])
		}
		occ := tx.Load(t.occAddr(path[0].bucket))
		t.txPlace(tx, path[0].bucket, path[0].slot, key, val, occ)
		return nil
	})
	if err == nil {
		t.size.shards[b1&63].v.Add(1)
	}
	return err
}

// Delete removes key in one transaction.
func (t *TxTable) Delete(key uint64) bool {
	b1, b2 := hashfn.TwoBuckets(t.hash(key), t.nb)
	deleted := false
	_ = t.region.RunElided(t.policy, func(tx *htm.Txn) error {
		deleted = false
		for _, b := range [2]uint64{b1, b2} {
			occ := tx.Load(t.occAddr(b))
			for s := 0; s < int(t.assoc); s++ {
				if occ&(1<<uint(s)) != 0 && tx.Load(t.keyAddr(b, s)) == key {
					tx.Store(t.occAddr(b), occ&^(1<<uint(s)))
					deleted = true
					return nil
				}
			}
		}
		return nil
	})
	if deleted {
		t.size.shards[b1&63].v.Add(-1)
	}
	return deleted
}

func (t *TxTable) txPlace(tx *htm.Txn, b uint64, s int, key, val uint64, occ uint64) {
	tx.Store(t.keyAddr(b, s), key)
	tx.Store(t.valAddr(b, s, 0), val)
	for w := uint64(1); w < t.vw; w++ {
		tx.Store(t.valAddr(b, s, w), 0)
	}
	tx.Store(t.occAddr(b), occ|1<<uint(s))
}

func (t *TxTable) txDisplace(tx *htm.Txn, src, dst entry) {
	sOcc := tx.Load(t.occAddr(src.bucket))
	dOcc := tx.Load(t.occAddr(dst.bucket))
	tx.Store(t.keyAddr(dst.bucket, dst.slot), tx.Load(t.keyAddr(src.bucket, src.slot)))
	for w := uint64(0); w < t.vw; w++ {
		tx.Store(t.valAddr(dst.bucket, dst.slot, w), tx.Load(t.valAddr(src.bucket, src.slot, w)))
	}
	tx.Store(t.occAddr(dst.bucket), dOcc|1<<uint(dst.slot))
	if src.bucket == dst.bucket {
		sOcc = tx.Load(t.occAddr(src.bucket))
	}
	tx.Store(t.occAddr(src.bucket), sOcc&^(1<<uint(src.slot)))
}

// txSearch is the two-way DFS with every bucket read tracked by the
// transaction. Randomness derives deterministically from the key's hash so
// no shared generator state exists.
func (t *TxTable) txSearch(tx *htm.Txn, sc *txScratch, h, b1, b2 uint64) ([]entry, bool) {
	assoc := int(t.assoc)
	maxLen := t.maxPathLen()
	// Indexed writes into the pre-sized scratch, never append: the buffers
	// must not grow while the transaction is live (cuckoovet:htmpure).
	pathA, pathB := sc.pathA[:maxLen+1], sc.pathB[:maxLen+1]
	nA, nB := 0, 0
	curA, curB := b1, b2
	rng := h | 1
	examined := 0
	for examined < t.budget {
		if nA > maxLen && nB > maxLen {
			return nil, false
		}
		for w := 0; w < 2; w++ {
			cur, path, n := curA, pathA, &nA
			if w == 1 {
				cur, path, n = curB, pathB, &nB
			}
			if *n > maxLen {
				continue
			}
			examined += assoc
			occ := tx.Load(t.occAddr(cur))
			if s, ok := freeBit(occ, assoc); ok {
				path[*n] = entry{bucket: cur, slot: s}
				*n++
				return path[:*n], true
			}
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			s := int(rng % uint64(assoc))
			k := tx.Load(t.keyAddr(cur, s))
			path[*n] = entry{bucket: cur, slot: s}
			*n++
			next := hashfn.AltBucket(t.hash(k), t.nb, cur)
			if w == 0 {
				curA = next
			} else {
				curB = next
			}
		}
	}
	return nil, false
}

func freeBit(occ uint64, assoc int) (int, bool) {
	for s := 0; s < assoc; s++ {
		if occ&(1<<uint(s)) == 0 {
			return s, true
		}
	}
	return 0, false
}
