// Package memc3 implements the paper's starting point (§4.2): the
// optimistic multi-reader/single-writer cuckoo hash table from MemC3 [Fan
// et al., NSDI'13], as characterized by Algorithm 1.
//
//   - Readers are optimistic and lock-free, using lock-striped version
//     counters (even = quiescent) and retrying on version change.
//   - Writers serialize on one global lock held for the entire insert:
//     duplicate check, cuckoo-path search (two-way random-walk DFS) and
//     execution all happen inside the critical section.
//   - Displacements move holes backward along the path so a concurrently
//     read key is transiently duplicated but never missing.
//
// This is the "cuckoo" baseline of every figure, the table whose write
// throughput collapses with concurrent writers (Fig. 2, Fig. 6) and whose
// re-engineering into cuckoo+ is the subject of the paper.
package memc3

import (
	"errors"
	"sync/atomic"

	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/spinlock"
)

// Errors mirroring the core package.
var (
	ErrFull   = errors.New("memc3: table is too full")
	ErrExists = errors.New("memc3: key already exists")
)

// Options configures a Table.
type Options struct {
	// Buckets is the bucket count (power of two).
	Buckets uint64
	// Assoc is the set-associativity; MemC3 uses 4.
	Assoc int
	// ValueWords is the value size in 8-byte words.
	ValueWords int
	// Stripes is the version-counter table size (power of two).
	Stripes int
	// MaxSearchSlots is the DFS search budget M (2000 in MemC3).
	MaxSearchSlots int
	// Seed perturbs the hash.
	Seed uint64
}

// Defaults returns MemC3's configuration (4-way, M=2000) sized for the
// given slot count.
func Defaults(slots uint64) Options {
	const assoc = 4
	buckets := uint64(2)
	for buckets*assoc < slots {
		buckets <<= 1
	}
	return Options{
		Buckets:        buckets,
		Assoc:          assoc,
		ValueWords:     1,
		Stripes:        4096,
		MaxSearchSlots: 2000,
	}
}

// Table is the optimistic concurrent cuckoo hash table. Any number of
// goroutines may call Lookup concurrently with each other and with at most
// the internal single writer; Insert/Delete serialize internally.
type Table struct {
	nb     uint64
	assoc  uint64
	vw     uint64
	seed   uint64
	budget int

	keys     []uint64
	vals     []uint64
	occ      []atomic.Uint32
	versions *spinlock.Stripe
	writer   spinlock.Mutex

	size    atomic.Int64
	scratch dfsScratch // guarded by writer

	// DisableGlobalSizeCounter avoids the shared size counter write on the
	// insert path (principle P1); Len falls back to scanning occupancy.
	// The Figure 2 experiments enable this, as the paper did.
	disableSize bool
}

type dfsScratch struct {
	path []entry
	rng  uint64
}

type entry struct {
	bucket uint64
	slot   int
}

func (o Options) validate() error {
	if o.Buckets < 2 || o.Buckets&(o.Buckets-1) != 0 {
		return errors.New("memc3: Buckets must be a power of two >= 2")
	}
	if o.Assoc < 1 || o.Assoc > 32 {
		return errors.New("memc3: Assoc must be in [1,32]")
	}
	if o.ValueWords < 1 {
		return errors.New("memc3: ValueWords must be >= 1")
	}
	if o.Stripes <= 0 || o.Stripes&(o.Stripes-1) != 0 {
		return errors.New("memc3: Stripes must be a positive power of two")
	}
	if o.MaxSearchSlots < 2*o.Assoc {
		return errors.New("memc3: MaxSearchSlots too small")
	}
	return nil
}

// New creates a table.
func New(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		nb:       o.Buckets,
		assoc:    uint64(o.Assoc),
		vw:       uint64(o.ValueWords),
		seed:     o.Seed,
		budget:   o.MaxSearchSlots,
		keys:     make([]uint64, o.Buckets*uint64(o.Assoc)),
		vals:     make([]uint64, o.Buckets*uint64(o.Assoc)*uint64(o.ValueWords)),
		occ:      make([]atomic.Uint32, o.Buckets),
		versions: spinlock.NewStripe(o.Stripes),
	}
	t.scratch.path = make([]entry, 0, o.MaxSearchSlots/o.Assoc+2)
	t.scratch.rng = 0x9E3779B97F4A7C15
	return t, nil
}

// MustNew panics on configuration errors.
func MustNew(o Options) *Table {
	t, err := New(o)
	if err != nil {
		panic(err)
	}
	return t
}

// DisableSizeCounter turns off the shared size counter (principle P1, as
// done for the Figure 2 runs). Len becomes unavailable (returns -1).
func (t *Table) DisableSizeCounter() { t.disableSize = true }

// Len returns the number of keys, or -1 if the size counter is disabled.
func (t *Table) Len() int64 {
	if t.disableSize {
		return -1
	}
	return t.size.Load()
}

// Cap returns the slot count.
func (t *Table) Cap() uint64 { return t.nb * t.assoc }

// LoadFactor returns Len/Cap (0 if the counter is disabled).
func (t *Table) LoadFactor() float64 {
	n := t.Len()
	if n < 0 {
		return 0
	}
	return float64(n) / float64(t.Cap())
}

func (t *Table) hash(key uint64) uint64 { return hashfn.Uint64(key, t.seed) }

func (t *Table) loadKey(i uint64) uint64 { return atomic.LoadUint64(&t.keys[i]) }

// Lookup returns the first value word for key via the optimistic read
// protocol.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	var v [1]uint64
	if t.LookupValue(key, v[:]) {
		return v[0], true
	}
	return 0, false
}

// LookupValue copies key's value into dst, reporting presence.
func (t *Table) LookupValue(key uint64, dst []uint64) bool {
	h := t.hash(key)
	b1, b2 := hashfn.TwoBuckets(h, t.nb)
	l1, l2 := t.versions.IndexFor(b1), t.versions.IndexFor(b2)
	for spins := 0; ; spins++ {
		v1, ok1 := t.versions.Snapshot(l1)
		v2, ok2 := t.versions.Snapshot(l2)
		if ok1 && ok2 {
			found := t.scan(b1, key, dst) || t.scan(b2, key, dst)
			if t.versions.Validate(l1, v1) && t.versions.Validate(l2, v2) {
				return found
			}
		}
		if spins >= 64 {
			yield()
			spins = 0
		}
	}
}

func (t *Table) scan(b uint64, key uint64, dst []uint64) bool {
	occ := t.occ[b].Load()
	base := b * t.assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 == 0 {
			continue
		}
		i := base + uint64(s)
		if t.loadKey(i) == key {
			vb := i * t.vw
			n := t.vw
			if uint64(len(dst)) < n {
				n = uint64(len(dst))
			}
			for w := uint64(0); w < n; w++ {
				dst[w] = atomic.LoadUint64(&t.vals[vb+w])
			}
			return true
		}
	}
	return false
}

// Insert adds key (Algorithm 1): the global writer lock is held for the
// whole operation, including the path search.
func (t *Table) Insert(key, val uint64) error {
	return t.InsertValue(key, []uint64{val})
}

// InsertValue is Insert for multi-word values.
func (t *Table) InsertValue(key uint64, val []uint64) error {
	if uint64(len(val)) > t.vw {
		panic("memc3: value longer than ValueWords")
	}
	h := t.hash(key)
	b1, b2 := hashfn.TwoBuckets(h, t.nb)

	t.writer.Lock()
	defer t.writer.Unlock()

	if t.findLocked(b1, key) >= 0 || t.findLocked(b2, key) >= 0 {
		return ErrExists
	}
	// ADD(h, b1) / ADD(h, b2)
	if s, ok := t.freeSlot(b1); ok {
		t.place(b1, s, key, val)
		return nil
	}
	if s, ok := t.freeSlot(b2); ok {
		t.place(b2, s, key, val)
		return nil
	}
	// SEARCH + EXECUTE, all inside the critical section.
	path, ok := t.searchDFS(b1, b2)
	if !ok {
		return ErrFull
	}
	for i := len(path) - 2; i >= 0; i-- {
		t.displace(path[i], path[i+1])
	}
	t.place(path[0].bucket, path[0].slot, key, val)
	return nil
}

// findLocked scans bucket b for key under the writer lock; returns the slot
// or -1.
func (t *Table) findLocked(b uint64, key uint64) int {
	occ := t.occ[b].Load()
	base := b * t.assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 != 0 && t.loadKey(base+uint64(s)) == key {
			return s
		}
	}
	return -1
}

func (t *Table) freeSlot(b uint64) (int, bool) {
	occ := t.occ[b].Load()
	for s := 0; s < int(t.assoc); s++ {
		if occ&(1<<uint(s)) == 0 {
			return s, true
		}
	}
	return 0, false
}

// place writes (b,s) under the writer lock, bumping the bucket's version
// stripe around the modification for optimistic readers.
func (t *Table) place(b uint64, s int, key uint64, val []uint64) {
	l := t.versions.IndexFor(b)
	t.versions.Lock(l)
	i := b*t.assoc + uint64(s)
	atomic.StoreUint64(&t.keys[i], key)
	vb := i * t.vw
	for w := uint64(0); w < t.vw; w++ {
		var v uint64
		if w < uint64(len(val)) {
			v = val[w]
		}
		atomic.StoreUint64(&t.vals[vb+w], v)
	}
	t.occ[b].Store(t.occ[b].Load() | 1<<uint(s))
	t.versions.Unlock(l)
	if !t.disableSize {
		t.size.Add(1)
	}
}

// displace moves the key in src to the empty slot dst (hole-backward),
// bumping both buckets' versions.
func (t *Table) displace(src, dst entry) {
	l1, l2 := t.versions.IndexFor(src.bucket), t.versions.IndexFor(dst.bucket)
	t.versions.LockPair(l1, l2)
	si := src.bucket*t.assoc + uint64(src.slot)
	di := dst.bucket*t.assoc + uint64(dst.slot)
	atomic.StoreUint64(&t.keys[di], atomic.LoadUint64(&t.keys[si]))
	sv, dv := si*t.vw, di*t.vw
	for w := uint64(0); w < t.vw; w++ {
		atomic.StoreUint64(&t.vals[dv+w], atomic.LoadUint64(&t.vals[sv+w]))
	}
	t.occ[dst.bucket].Store(t.occ[dst.bucket].Load() | 1<<uint(dst.slot))
	t.occ[src.bucket].Store(t.occ[src.bucket].Load() &^ (1 << uint(src.slot)))
	t.versions.UnlockPair(l1, l2)
}

// searchDFS is MemC3's two-way random-walk search, run under the writer
// lock. The returned path ends at an entry whose slot is empty.
func (t *Table) searchDFS(b1, b2 uint64) ([]entry, bool) {
	assoc := int(t.assoc)
	maxLen := t.budget / (2 * assoc)
	if maxLen < 1 {
		maxLen = 1
	}
	sc := &t.scratch
	pathA := sc.path[:0]
	var pathB []entry
	if cap(pathA) >= 2*(maxLen+1) {
		half := cap(pathA) / 2
		pathB = pathA[half:half:cap(pathA)]
		pathA = pathA[0:0:half]
	} else {
		pathB = make([]entry, 0, maxLen+1)
	}
	curA, curB := b1, b2
	examined := 0
	for examined < t.budget {
		if len(pathA) > maxLen && len(pathB) > maxLen {
			return nil, false
		}
		for w := 0; w < 2; w++ {
			cur, path := curA, &pathA
			if w == 1 {
				cur, path = curB, &pathB
			}
			if len(*path) > maxLen {
				continue
			}
			examined += assoc
			if s, ok := t.freeSlot(cur); ok {
				*path = append(*path, entry{bucket: cur, slot: s})
				return *path, true
			}
			s := int(sc.nextRand() % uint64(assoc))
			k := t.loadKey(cur*t.assoc + uint64(s))
			*path = append(*path, entry{bucket: cur, slot: s})
			next := hashfn.AltBucket(t.hash(k), t.nb, cur)
			if w == 0 {
				curA = next
			} else {
				curB = next
			}
		}
	}
	return nil, false
}

func (sc *dfsScratch) nextRand() uint64 {
	x := sc.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sc.rng = x
	return x
}

// Delete removes key under the writer lock, reporting presence.
func (t *Table) Delete(key uint64) bool {
	h := t.hash(key)
	b1, b2 := hashfn.TwoBuckets(h, t.nb)
	t.writer.Lock()
	defer t.writer.Unlock()
	for _, b := range [2]uint64{b1, b2} {
		if s := t.findLocked(b, key); s >= 0 {
			l := t.versions.IndexFor(b)
			t.versions.Lock(l)
			t.occ[b].Store(t.occ[b].Load() &^ (1 << uint(s)))
			t.versions.Unlock(l)
			if !t.disableSize {
				t.size.Add(-1)
			}
			return true
		}
	}
	return false
}

func yield() { spinYield() }
