package memc3

import (
	"runtime"
	"sync/atomic"
)

func spinYield() { runtime.Gosched() }

type atomicI64 = atomic.Int64
