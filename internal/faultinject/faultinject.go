// Package faultinject is a deterministic, seedable fault-injection layer
// for chaos-testing the cuckood service (docs/ROBUSTNESS.md). A Plan wraps
// net.Conn and net.Listener values and injects transport faults — added
// latency, partial reads and writes, stalls, connection resets, and
// transient accept errors — with per-fault probabilities drawn from a
// splitmix64 stream seeded by the plan seed and a per-connection sequence
// number, so a given (seed, connection-order) pair replays the same fault
// schedule every run.
//
// The package is built to cost nothing when unused: every wrapper method is
// nil-safe and returns its argument unchanged for a nil or disarmed Plan,
// so production code paths carry exactly one pointer nil-check and no
// wrapper allocation. Faults only fire between Arm and Disarm, which lets a
// chaos test stop injecting before it verifies invariants.
package faultinject

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base of every error this package injects; tests can
// errors.Is against it to distinguish injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// errReset is returned from a Read or Write whose connection was reset by
// the plan.
var errReset = fmt.Errorf("%w: connection reset", ErrInjected)

// AcceptError is the transient listener error injected by an accept fault.
// It implements the net.Error interface with Temporary() == true, which is
// exactly the class of error a robust accept loop must survive with
// backoff rather than treat as fatal.
type AcceptError struct{}

func (AcceptError) Error() string   { return "faultinject: injected transient accept error" }
func (AcceptError) Timeout() bool   { return false }
func (AcceptError) Temporary() bool { return true }

// Unwrap ties AcceptError into the ErrInjected chain.
func (AcceptError) Unwrap() error { return ErrInjected }

// Plan is one deterministic fault schedule. Probability fields are in
// [0, 1] and are evaluated independently per operation; zero disables that
// fault class. Configure the fields before Arm — they are read without
// synchronization once connections are live.
type Plan struct {
	// Latency and LatencyProb delay a Read or Write by Latency when the
	// roll fires.
	Latency     time.Duration
	LatencyProb float64
	// PartialProb truncates a Read to a prefix of the requested buffer or
	// a Write to a prefix of the supplied bytes (the Write then reports an
	// injected error, as io.Writer requires for a short write).
	PartialProb float64
	// Stall and StallProb block an operation for the full Stall duration —
	// long enough to trip client deadlines where Latency is not.
	Stall     time.Duration
	StallProb float64
	// ResetProb abruptly closes the connection (with SO_LINGER 0 on TCP,
	// so the peer sees RST, not FIN) and fails the operation.
	ResetProb float64
	// AcceptProb makes a wrapped listener's Accept return a transient
	// AcceptError instead of accepting.
	AcceptProb float64

	seed    uint64
	armed   atomic.Bool
	connSeq atomic.Uint64
	rolls   atomic.Uint64 // fault points evaluated (armed only)
	fired   atomic.Uint64 // faults actually injected
}

// New returns an armed Plan with the given seed and no fault classes
// enabled; set the probability fields to taste.
func New(seed uint64) *Plan {
	p := &Plan{seed: seed}
	p.armed.Store(true)
	return p
}

// Parse builds a Plan from a compact spec string, for wiring a fault plan
// through a command-line flag:
//
//	latency=2ms:0.05,partial:0.05,stall=100ms:0.01,reset:0.02,accept:0.05
//
// Each comma-separated clause is name[=duration]:probability. Recognized
// names: latency (duration required), partial, stall (duration required),
// reset, accept. An empty spec returns (nil, nil): no plan armed.
func Parse(spec string, seed uint64) (*Plan, error) {
	if spec == "" {
		return nil, nil
	}
	p := New(seed)
	for _, clause := range strings.Split(spec, ",") {
		name, probStr, ok := strings.Cut(strings.TrimSpace(clause), ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q missing :probability", clause)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("faultinject: bad probability in %q", clause)
		}
		var dur time.Duration
		if base, durStr, hasDur := strings.Cut(name, "="); hasDur {
			name = base
			if dur, err = time.ParseDuration(durStr); err != nil || dur < 0 {
				return nil, fmt.Errorf("faultinject: bad duration in %q", clause)
			}
		}
		switch name {
		case "latency":
			if dur == 0 {
				return nil, fmt.Errorf("faultinject: latency needs =duration in %q", clause)
			}
			p.Latency, p.LatencyProb = dur, prob
		case "partial":
			p.PartialProb = prob
		case "stall":
			if dur == 0 {
				return nil, fmt.Errorf("faultinject: stall needs =duration in %q", clause)
			}
			p.Stall, p.StallProb = dur, prob
		case "reset":
			p.ResetProb = prob
		case "accept":
			p.AcceptProb = prob
		default:
			return nil, fmt.Errorf("faultinject: unknown fault %q", name)
		}
	}
	return p, nil
}

// Arm enables fault injection. Nil-safe.
func (p *Plan) Arm() {
	if p != nil {
		p.armed.Store(true)
	}
}

// Disarm stops injecting faults; wrapped connections keep working but pass
// everything through untouched. Nil-safe.
func (p *Plan) Disarm() {
	if p != nil {
		p.armed.Store(false)
	}
}

func (p *Plan) active() bool { return p != nil && p.armed.Load() }

// Rolls returns how many fault points have been evaluated while armed.
func (p *Plan) Rolls() uint64 {
	if p == nil {
		return 0
	}
	return p.rolls.Load()
}

// Fired returns how many faults the plan has actually injected.
func (p *Plan) Fired() uint64 {
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// String renders the armed fault classes, for startup logs.
func (p *Plan) String() string {
	if p == nil {
		return "none"
	}
	var b []string
	if p.LatencyProb > 0 {
		b = append(b, fmt.Sprintf("latency=%v:%g", p.Latency, p.LatencyProb))
	}
	if p.PartialProb > 0 {
		b = append(b, fmt.Sprintf("partial:%g", p.PartialProb))
	}
	if p.StallProb > 0 {
		b = append(b, fmt.Sprintf("stall=%v:%g", p.Stall, p.StallProb))
	}
	if p.ResetProb > 0 {
		b = append(b, fmt.Sprintf("reset:%g", p.ResetProb))
	}
	if p.AcceptProb > 0 {
		b = append(b, fmt.Sprintf("accept:%g", p.AcceptProb))
	}
	if len(b) == 0 {
		return "none"
	}
	return strings.Join(b, ",")
}

// WrapConn wraps nc with the plan's connection faults. Returns nc unchanged
// for a nil plan.
func (p *Plan) WrapConn(nc net.Conn) net.Conn {
	if p == nil {
		return nc
	}
	id := p.connSeq.Add(1)
	return &faultConn{Conn: nc, p: p, rng: splitmix64{p.seed ^ id*0x9E3779B97F4A7C15}}
}

// WrapListener wraps ln so accepted connections carry the plan's faults and
// Accept itself fails transiently with probability AcceptProb. Returns ln
// unchanged for a nil plan.
func (p *Plan) WrapListener(ln net.Listener) net.Listener {
	if p == nil {
		return ln
	}
	return &faultListener{Listener: ln, p: p, rng: splitmix64{p.seed ^ 0xA5A5A5A5A5A5A5A5}}
}

// FailOp returns a failpoint hook (see server.Cache.SetFailpoint) that
// fails an operation with err at the given probability, deterministically
// from the plan's seed. The hook is nil for a nil plan, so callers can
// install it unconditionally.
func (p *Plan) FailOp(prob float64, err error) func(op, key string) error {
	if p == nil {
		return nil
	}
	rng := &lockedRng{rng: splitmix64{p.seed ^ 0x5EED0FA117}}
	return func(op, key string) error {
		if !p.active() {
			return nil
		}
		p.rolls.Add(1)
		if rng.float64() < prob {
			p.fired.Add(1)
			return fmt.Errorf("%w: forced %v", ErrInjected, err)
		}
		return nil
	}
}

// splitmix64 is the standard 64-bit splitmix generator: tiny, seedable, and
// plenty for fault scheduling. Not safe for concurrent use; wrap or guard.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

type lockedRng struct {
	mu  sync.Mutex
	rng splitmix64
}

func (l *lockedRng) float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.float64()
}

// faultListener injects transient Accept errors and wraps accepted conns.
type faultListener struct {
	net.Listener
	p   *Plan
	mu  sync.Mutex
	rng splitmix64
}

func (l *faultListener) Accept() (net.Conn, error) {
	if l.p.active() && l.p.AcceptProb > 0 {
		l.p.rolls.Add(1)
		l.mu.Lock()
		r := l.rng.float64()
		l.mu.Unlock()
		if r < l.p.AcceptProb {
			l.p.fired.Add(1)
			return nil, AcceptError{}
		}
	}
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.WrapConn(nc), nil
}

// faultConn injects per-operation faults on one connection. Reads and
// writes may run on different goroutines, so the rng is mutex-guarded; the
// lock is uncontended in the common single-goroutine case and fault mode is
// a testing configuration anyway.
type faultConn struct {
	net.Conn
	p     *Plan
	mu    sync.Mutex
	rng   splitmix64
	reset atomic.Bool
}

// decide rolls for each enabled fault class and returns the plan's verdict
// for one operation.
type verdict struct {
	sleep   time.Duration
	partial bool
	reset   bool
}

func (c *faultConn) decide() (verdict, bool) {
	if !c.p.active() || c.reset.Load() {
		return verdict{}, false
	}
	p := c.p
	c.mu.Lock()
	defer c.mu.Unlock()
	var v verdict
	any := false
	roll := func(prob float64) bool {
		if prob <= 0 {
			return false
		}
		p.rolls.Add(1)
		return c.rng.float64() < prob
	}
	if roll(p.ResetProb) {
		v.reset, any = true, true
	}
	if roll(p.StallProb) {
		v.sleep, any = p.Stall, true
	} else if roll(p.LatencyProb) {
		v.sleep, any = p.Latency, true
	}
	if roll(p.PartialProb) {
		v.partial, any = true, true
	}
	if any {
		p.fired.Add(1)
	}
	return v, any
}

// doReset closes the connection abortively: SO_LINGER 0 turns the close
// into an RST on TCP, which is the failure a crashed peer produces.
func (c *faultConn) doReset() error {
	if c.reset.CompareAndSwap(false, true) {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Conn.Close()
	}
	return errReset
}

func (c *faultConn) Read(b []byte) (int, error) {
	v, any := c.decide()
	if !any {
		return c.Conn.Read(b)
	}
	if v.sleep > 0 {
		time.Sleep(v.sleep)
	}
	if v.reset {
		return 0, c.doReset()
	}
	if v.partial && len(b) > 1 {
		b = b[:1+len(b)/2]
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	v, any := c.decide()
	if !any {
		return c.Conn.Write(b)
	}
	if v.sleep > 0 {
		time.Sleep(v.sleep)
	}
	if v.reset {
		return 0, c.doReset()
	}
	if v.partial && len(b) > 1 {
		n, err := c.Conn.Write(b[:len(b)/2])
		if err != nil {
			return n, err
		}
		// A short write must report an error; fail the rest of the buffer
		// and reset so the stream cannot silently desynchronize.
		return n, c.doReset()
	}
	return c.Conn.Write(b)
}
