package faultinject

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pipePair returns the two ends of a loopback TCP connection, so reset
// injection exercises the real SO_LINGER path.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- nc
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	if s == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestNilPlanIsTransparent(t *testing.T) {
	var p *Plan
	c, s := pipePair(t)
	if got := p.WrapConn(c); got != c {
		t.Fatal("nil plan wrapped the conn")
	}
	if p.FailOp(1, io.EOF) != nil {
		t.Fatal("nil plan returned a non-nil hook")
	}
	p.Arm()
	p.Disarm()
	if p.Rolls() != 0 || p.Fired() != 0 || p.String() != "none" {
		t.Fatal("nil plan accounting not zero")
	}
	_ = s
}

func TestDeterministicSchedule(t *testing.T) {
	// Two plans with the same seed must fire the same faults at the same
	// operation indexes.
	schedule := func(seed uint64) []bool {
		p := New(seed)
		p.ResetProb = 0 // only count decisions, not kill the conn
		p.PartialProb = 0.3
		c, s := pipePair(t)
		defer c.Close()
		defer s.Close()
		fc := p.WrapConn(c).(*faultConn)
		var fired []bool
		for i := 0; i < 64; i++ {
			v, any := fc.decide()
			fired = append(fired, any && v.partial)
		}
		return fired
	}
	a, b := schedule(42), schedule(42)
	diff := schedule(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] != diff[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	var any bool
	for _, f := range a {
		any = any || f
	}
	if !any {
		t.Fatal("30% partial plan fired nothing in 64 ops")
	}
}

func TestResetInjectsTransportError(t *testing.T) {
	p := New(7)
	p.ResetProb = 1
	c, s := pipePair(t)
	fc := p.WrapConn(c)
	if _, err := fc.Write([]byte("hello\n")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Write error = %v, want ErrInjected", err)
	}
	// The peer observes the connection failing (RST or EOF), not a hang.
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
	if p.Fired() == 0 {
		t.Fatal("Fired did not count the reset")
	}
}

func TestPartialWriteFails(t *testing.T) {
	p := New(1)
	p.PartialProb = 1
	c, s := pipePair(t)
	fc := p.WrapConn(c)
	n, err := fc.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n == 0 || n >= 10 {
		t.Fatalf("partial write wrote %d bytes, want a strict prefix", n)
	}
	// The peer received exactly the prefix before the connection died.
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	got, _ := io.ReadFull(s, buf[:n])
	if got != n || string(buf[:n]) != "0123456789"[:n] {
		t.Fatalf("peer got %q, want prefix %q", buf[:got], "0123456789"[:n])
	}
}

func TestStallDelaysOperation(t *testing.T) {
	p := New(3)
	p.Stall = 50 * time.Millisecond
	p.StallProb = 1
	c, s := pipePair(t)
	go io.Copy(io.Discard, s)
	fc := p.WrapConn(c)
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < p.Stall {
		t.Fatalf("write returned after %v, want >= %v", d, p.Stall)
	}
}

func TestDisarmStopsFaults(t *testing.T) {
	p := New(9)
	p.ResetProb = 1
	p.Disarm()
	c, s := pipePair(t)
	go io.Copy(io.Discard, s)
	fc := p.WrapConn(c)
	for i := 0; i < 10; i++ {
		if _, err := fc.Write([]byte("ok\n")); err != nil {
			t.Fatalf("disarmed plan injected a fault: %v", err)
		}
	}
	if p.Fired() != 0 {
		t.Fatalf("Fired = %d while disarmed", p.Fired())
	}
}

func TestListenerAcceptFaults(t *testing.T) {
	p := New(5)
	p.AcceptProb = 1
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := p.WrapListener(ln)
	_, err = fl.Accept()
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Temporary() || ne.Timeout() { //nolint:staticcheck // Temporary is the accept-loop contract
		t.Fatalf("Accept error = %v, want temporary net.Error", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Accept error %v not in ErrInjected chain", err)
	}
	// Disarmed, the listener accepts and the conn passes through wrapped.
	p.Disarm()
	go net.Dial("tcp", ln.Addr().String())
	nc, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nc.(*faultConn); !ok {
		t.Fatal("accepted conn not wrapped")
	}
	nc.Close()
}

func TestFailOpHook(t *testing.T) {
	p := New(11)
	hook := p.FailOp(1, errors.New("cache full"))
	err := hook("SET", "k")
	if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "cache full") {
		t.Fatalf("hook err = %v", err)
	}
	p.Disarm()
	if err := hook("SET", "k"); err != nil {
		t.Fatalf("disarmed hook err = %v", err)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("latency=2ms:0.05, partial:0.1,stall=100ms:0.01,reset:0.02,accept:0.05", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency != 2*time.Millisecond || p.LatencyProb != 0.05 ||
		p.PartialProb != 0.1 || p.Stall != 100*time.Millisecond ||
		p.StallProb != 0.01 || p.ResetProb != 0.02 || p.AcceptProb != 0.05 {
		t.Fatalf("parsed plan = %+v", p)
	}
	if got := p.String(); !strings.Contains(got, "latency=2ms:0.05") {
		t.Fatalf("String = %q", got)
	}
	if p, err := Parse("", 1); p != nil || err != nil {
		t.Fatalf("empty spec = %v, %v", p, err)
	}
	for _, bad := range []string{"latency:0.5", "bogus:0.1", "reset:1.5", "reset", "stall:0.1"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
