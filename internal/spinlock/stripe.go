package spinlock

import (
	"runtime"
	"sync/atomic"
)

// lockBit is the high-order bit of a stripe word. Following §4.4 of the
// paper, each stripe is a single word that serves simultaneously as the
// optimistic-read version counter (low 63 bits) and as a spinlock (the
// high-order bit).
const lockBit = uint64(1) << 63

// versionMask extracts the version counter from a stripe word.
const versionMask = lockBit - 1

// Stripe is a power-of-two-sized array of combined version/lock words used
// for lock striping over hash-table buckets. Bucket b maps to stripe
// b & (len-1); by keeping a reasonably sized table (1K–8K entries) locking
// is both fine-grained and low-overhead (§4.2).
//
// Writer protocol: Lock sets the lock bit; Unlock clears it and increments
// the version. Readers use Snapshot/Validate as an optimistic seqlock: a
// lookup reads the versions of both candidate buckets' stripes, reads the
// buckets, then validates that neither version moved (and that no writer
// held the stripe at either point).
type Stripe struct {
	words  []atomic.Uint64
	mask   uint64
	probes [probeShards]lockProbe
}

// probeShards is the contention-probe shard count; stripes map onto probe
// shards by low index bits.
const probeShards = 16

// lockProbe is one padded shard of the stripe table's contention counters.
// The fast path (uncontended CAS) never touches a probe: contended and
// yields are bumped only inside the spin loop, which is already paying for
// coherence misses on the lock word, so the probe's cost disappears into
// the wait it measures. Total acquisitions need no counter at all — every
// Unlock bumps the stripe's version word, so the sum of versions *is* the
// acquisition count.
type lockProbe struct {
	contended atomic.Uint64 // Lock calls whose first attempt failed
	yields    atomic.Uint64 // Gosched calls while waiting
	_         [112]byte
}

// StripeStats is a snapshot of a stripe table's lock-contention counters.
type StripeStats struct {
	// Acquisitions is the total number of completed lock acquisitions
	// (sum of stripe versions; wraps only after 2^63 per stripe).
	Acquisitions uint64
	// Contended counts Lock calls that did not acquire on their first
	// attempt — the service-layer visible form of stripe convoys.
	Contended uint64
	// Yields counts scheduler yields performed while spinning.
	Yields uint64
}

// ContentionRate returns Contended/Acquisitions, or 0 with no data.
func (s StripeStats) ContentionRate() float64 {
	if s.Acquisitions == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquisitions)
}

// Stats returns a snapshot of the stripe table's contention counters.
func (s *Stripe) Stats() StripeStats {
	var st StripeStats
	for i := range s.words {
		st.Acquisitions += s.words[i].Load() & versionMask
	}
	for i := range s.probes {
		st.Contended += s.probes[i].contended.Load()
		st.Yields += s.probes[i].yields.Load()
	}
	return st
}

// NewStripe creates a stripe table with n words. n must be a power of two.
func NewStripe(n int) *Stripe {
	if n <= 0 || n&(n-1) != 0 {
		panic("spinlock: stripe size must be a positive power of two")
	}
	return &Stripe{words: make([]atomic.Uint64, n), mask: uint64(n - 1)}
}

// Len returns the number of stripes.
func (s *Stripe) Len() int { return len(s.words) }

// IndexFor maps a bucket index to its stripe index.
func (s *Stripe) IndexFor(bucket uint64) uint64 { return bucket & s.mask }

// Lock acquires stripe i, spinning until the lock bit is free.
func (s *Stripe) Lock(i uint64) {
	w := &s.words[i]
	v := w.Load()
	if v&lockBit == 0 && w.CompareAndSwap(v, v|lockBit) {
		return
	}
	s.lockSlow(i, w)
}

// lockSlow is the contended path of Lock, split out so the fast path stays
// inlineable and probe-free.
func (s *Stripe) lockSlow(i uint64, w *atomic.Uint64) {
	p := &s.probes[i&(probeShards-1)]
	p.contended.Add(1)
	for spins := 0; ; spins++ {
		v := w.Load()
		if v&lockBit == 0 && w.CompareAndSwap(v, v|lockBit) {
			return
		}
		if spins >= spinBudget {
			p.yields.Add(1)
			runtime.Gosched()
			spins = 0
		}
	}
}

// TryLock attempts to acquire stripe i without spinning.
func (s *Stripe) TryLock(i uint64) bool {
	w := &s.words[i]
	v := w.Load()
	return v&lockBit == 0 && w.CompareAndSwap(v, v|lockBit)
}

// Unlock releases stripe i, bumping its version so that any optimistic
// reader that overlapped the critical section fails validation. It must be
// called only by the stripe's holder.
func (s *Stripe) Unlock(i uint64) {
	w := &s.words[i]
	v := w.Load()
	// Clear the lock bit and advance the version, wrapping within the
	// 63-bit version space.
	w.Store((v + 1) & versionMask)
}

// LockPair acquires stripes i and j in ascending index order, the paper's
// deadlock-avoidance rule for the per-displacement bucket pairs (§4.4).
// If both buckets share a stripe only one lock is taken.
func (s *Stripe) LockPair(i, j uint64) {
	if i == j {
		s.Lock(i)
		return
	}
	if j < i {
		i, j = j, i
	}
	s.Lock(i)
	s.Lock(j)
}

// UnlockPair releases the stripes acquired by LockPair.
func (s *Stripe) UnlockPair(i, j uint64) {
	if i == j {
		s.Unlock(i)
		return
	}
	s.Unlock(i)
	s.Unlock(j)
}

// LockOrdered acquires every stripe index in idxs following the paper's
// ascending-order deadlock-avoidance rule (§4.4), generalized from the
// two-stripe LockPair to the arbitrary stripe sets a multi-key
// transaction commit touches. idxs is sorted in place and deduplicated;
// the returned slice (a prefix of idxs) holds the distinct indexes that
// were locked and must be handed back to UnlockOrdered unchanged.
func (s *Stripe) LockOrdered(idxs []uint64) []uint64 {
	idxs = sortDedup(idxs)
	for _, i := range idxs {
		s.Lock(i)
	}
	return idxs
}

// UnlockOrdered releases the stripes acquired by LockOrdered.
func (s *Stripe) UnlockOrdered(idxs []uint64) {
	for _, i := range idxs {
		s.Unlock(i)
	}
}

// sortDedup sorts idxs ascending and removes duplicates in place. The
// sets are transaction-sized (a handful of stripes), so an insertion
// sort beats the allocation and indirection of sort.Slice.
func sortDedup(idxs []uint64) []uint64 {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	out := idxs[:0]
	for i, v := range idxs {
		if i == 0 || v != idxs[i-1] {
			//lint:allow cuckoovet:allocfree in-place compaction: out aliases idxs and never outgrows it
			out = append(out, v)
		}
	}
	return out
}

// Snapshot returns the version of stripe i for an optimistic read. ok is
// false when a writer currently holds the stripe, in which case the caller
// should retry rather than read data that is being modified.
func (s *Stripe) Snapshot(i uint64) (version uint64, ok bool) {
	v := s.words[i].Load()
	return v & versionMask, v&lockBit == 0
}

// Validate reports whether stripe i is still unlocked at the version
// observed by a previous Snapshot; if not, the optimistic read raced with a
// writer and must be retried.
func (s *Stripe) Validate(i uint64, version uint64) bool {
	return s.words[i].Load() == version
}

// Version returns the current version counter of stripe i, ignoring the
// lock bit. It is intended for tests and statistics.
func (s *Stripe) Version(i uint64) uint64 {
	return s.words[i].Load() & versionMask
}

// Locked reports whether stripe i is currently held.
func (s *Stripe) Locked(i uint64) bool {
	return s.words[i].Load()&lockBit != 0
}

// LockAll acquires every stripe in ascending order. It is the pessimistic
// full-table lock the paper mentions for writers that encounter excessive
// insert aborts, and is used by table expansion.
func (s *Stripe) LockAll() {
	for i := range s.words {
		s.Lock(uint64(i))
	}
}

// UnlockAll releases every stripe.
func (s *Stripe) UnlockAll() {
	for i := range s.words {
		s.Unlock(uint64(i))
	}
}
