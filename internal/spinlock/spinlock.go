// Package spinlock provides the lightweight locking primitives used by the
// concurrent hash tables: a test-and-test-and-set spinlock with bounded
// exponential backoff, and a cache-line-padded striped array of combined
// version-counter/spinlock words ("lock striping", §4.4 of the paper).
//
// The paper favours very simple spinlocks because every critical section in
// the optimized table is a handful of word writes: the cost of parking a
// goroutine (or an OS thread) would dwarf the protected work. These locks
// spin briefly and then yield to the Go scheduler so that oversubscribed
// configurations still make progress.
package spinlock

import (
	"runtime"
	"sync/atomic"
)

// spinBudget is how many failed acquisition attempts are made before
// yielding the processor to the scheduler. Critical sections in this
// codebase are tens of nanoseconds, so a short budget suffices.
const spinBudget = 64

// Mutex is a test-and-test-and-set spinlock. The zero value is unlocked.
// It is not reentrant and, unlike sync.Mutex, never parks the goroutine;
// use it only around very short critical sections.
type Mutex struct {
	state atomic.Uint32
}

// Lock acquires the spinlock, spinning with backoff until it succeeds.
func (m *Mutex) Lock() {
	for spins := 0; ; spins++ {
		// Test-and-test-and-set: spin on a plain load first so that the
		// waiting CPUs hammer a shared cache line instead of the bus.
		if m.state.Load() == 0 && m.state.CompareAndSwap(0, 1) {
			return
		}
		if spins >= spinBudget {
			runtime.Gosched()
			spins = 0
		}
	}
}

// TryLock attempts to acquire the lock without spinning. It reports whether
// the lock was acquired.
func (m *Mutex) TryLock() bool {
	return m.state.Load() == 0 && m.state.CompareAndSwap(0, 1)
}

// Unlock releases the spinlock. It must only be called by the holder.
func (m *Mutex) Unlock() {
	m.state.Store(0)
}

// Locked reports whether the lock is currently held by someone.
func (m *Mutex) Locked() bool {
	return m.state.Load() != 0
}
