package spinlock

import "sync/atomic"

func storeU64(p *uint64, v uint64) { atomic.StoreUint64(p, v) }
func loadU64(p *uint64) uint64     { return atomic.LoadUint64(p) }
