package spinlock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMutexMutualExclusion(t *testing.T) {
	var mu Mutex
	counter := 0
	const threads = 8
	const per = 10000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < per; n++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != threads*per {
		t.Fatalf("counter = %d, want %d", counter, threads*per)
	}
}

func TestMutexTryLock(t *testing.T) {
	var mu Mutex
	if !mu.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !mu.Locked() {
		t.Fatal("Locked() false while held")
	}
	mu.Unlock()
	if mu.Locked() {
		t.Fatal("Locked() true after unlock")
	}
}

func TestStripeCreation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStripe(%d) did not panic", n)
				}
			}()
			NewStripe(n)
		}()
	}
	s := NewStripe(8)
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStripeIndexFor(t *testing.T) {
	s := NewStripe(16)
	for b := uint64(0); b < 100; b++ {
		if got := s.IndexFor(b); got != b%16 {
			t.Fatalf("IndexFor(%d) = %d", b, got)
		}
	}
}

func TestStripeVersionBumpOnUnlock(t *testing.T) {
	s := NewStripe(4)
	v0 := s.Version(1)
	s.Lock(1)
	if !s.Locked(1) {
		t.Fatal("not locked")
	}
	if _, ok := s.Snapshot(1); ok {
		t.Fatal("Snapshot of locked stripe reported ok")
	}
	s.Unlock(1)
	if s.Locked(1) {
		t.Fatal("still locked")
	}
	if s.Version(1) == v0 {
		t.Fatal("version did not advance across lock/unlock")
	}
}

func TestStripeSnapshotValidate(t *testing.T) {
	s := NewStripe(4)
	v, ok := s.Snapshot(2)
	if !ok {
		t.Fatal("snapshot of free stripe failed")
	}
	if !s.Validate(2, v) {
		t.Fatal("validate immediately after snapshot failed")
	}
	s.Lock(2)
	if s.Validate(2, v) {
		t.Fatal("validate of locked stripe passed")
	}
	s.Unlock(2)
	if s.Validate(2, v) {
		t.Fatal("validate across a writer passed")
	}
}

func TestStripePairOrdering(t *testing.T) {
	s := NewStripe(8)
	// Same stripe: one lock only (a second Lock would deadlock).
	s.LockPair(3, 3)
	s.UnlockPair(3, 3)
	// Reversed order must not deadlock against forward order.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 5000; n++ {
				if i%2 == 0 {
					s.LockPair(1, 6)
					s.UnlockPair(1, 6)
				} else {
					s.LockPair(6, 1)
					s.UnlockPair(6, 1)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestStripeLockAll(t *testing.T) {
	s := NewStripe(16)
	s.LockAll()
	for i := uint64(0); i < 16; i++ {
		if !s.Locked(i) {
			t.Fatalf("stripe %d not locked by LockAll", i)
		}
	}
	s.UnlockAll()
	for i := uint64(0); i < 16; i++ {
		if s.Locked(i) {
			t.Fatalf("stripe %d still locked after UnlockAll", i)
		}
	}
}

// TestStripeSeqlockProtocol drives a writer mutating a two-word invariant
// under the stripe while readers use Snapshot/Validate; no reader may
// observe a torn pair.
func TestStripeSeqlockProtocol(t *testing.T) {
	s := NewStripe(2)
	var a, b uint64 // invariant: a == b (writers keep them equal)
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Lock(0)
			storeU64(&a, i)
			storeU64(&b, i)
			s.Unlock(0)
		}
	}()
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for n := 0; n < 50000; n++ {
				v, ok := s.Snapshot(0)
				if !ok {
					continue
				}
				x := loadU64(&a)
				y := loadU64(&b)
				if s.Validate(0, v) && x != y {
					t.Errorf("torn read validated: a=%d b=%d", x, y)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

func TestStripeQuickProperties(t *testing.T) {
	s := NewStripe(64)
	prop := func(idx uint64) bool {
		i := idx % 64
		v0 := s.Version(i)
		s.Lock(i)
		s.Unlock(i)
		// Version strictly advances and lock is free again.
		return s.Version(i) != v0 && !s.Locked(i)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeLockOrdered(t *testing.T) {
	s := NewStripe(8)
	held := s.LockOrdered([]uint64{5, 1, 3, 1, 5})
	if want := []uint64{1, 3, 5}; len(held) != len(want) {
		t.Fatalf("LockOrdered dedup = %v, want %v", held, want)
	} else {
		for i := range want {
			if held[i] != want[i] {
				t.Fatalf("LockOrdered dedup = %v, want %v", held, want)
			}
		}
	}
	for _, i := range held {
		if !s.Locked(i) {
			t.Fatalf("stripe %d not locked after LockOrdered", i)
		}
	}
	for _, i := range []uint64{0, 2, 4, 6, 7} {
		if s.Locked(i) {
			t.Fatalf("stripe %d locked but not requested", i)
		}
	}
	s.UnlockOrdered(held)
	for i := uint64(0); i < 8; i++ {
		if s.Locked(i) {
			t.Fatalf("stripe %d still locked after UnlockOrdered", i)
		}
	}
	// Each locked stripe's version advanced exactly once.
	for _, i := range held {
		if v := s.Version(i); v != 1 {
			t.Fatalf("stripe %d version = %d after one lock/unlock, want 1", i, v)
		}
	}
}

func TestStripeLockOrderedConcurrent(t *testing.T) {
	// Overlapping stripe sets acquired from many goroutines in arbitrary
	// request order must neither deadlock nor corrupt the lock words.
	s := NewStripe(16)
	var wg sync.WaitGroup
	var counter int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sets := [][]uint64{
				{3, 7, 1}, {7, 3}, {1, 15, 7}, {15, 3, 1, 7},
			}
			for n := 0; n < 2000; n++ {
				idxs := append([]uint64(nil), sets[(g+n)%len(sets)]...)
				held := s.LockOrdered(idxs)
				counter++ // data race iff mutual exclusion is broken
				s.UnlockOrdered(held)
			}
		}(g)
	}
	wg.Wait()
	_ = counter
}
