// Package openaddr implements an open-addressing hash table with quadratic
// probing, the stand-in for Google dense_hash_map (see DESIGN.md §2): one
// large flat array, a 0.5 maximum load factor bought with space for raw
// single-threaded speed, and no internal thread safety whatsoever — the
// evaluation wraps it in a global lock or (emulated) lock elision, as §2.3
// did.
package openaddr

import (
	"errors"

	"cuckoohash/internal/hashfn"
)

// ErrFull reports that an insert could not find a slot (only possible when
// resizing is disabled).
var ErrFull = errors.New("openaddr: table is full")

// slot states, kept in a separate byte array exactly like dense_hash_map's
// distinguished empty/deleted keys keep probe chains scannable.
const (
	slotEmpty = iota
	slotFull
	slotDeleted
)

// Map is the quadratic-probing table. It is NOT safe for concurrent use.
type Map struct {
	seed    uint64
	mask    uint64
	keys    []uint64
	vals    []uint64
	state   []uint8
	n       uint64 // live entries
	tomb    uint64 // deleted entries
	maxLoad float64
	fixed   bool // resizing disabled
	resizes uint64
}

// New creates a table with at least capacity slots. maxLoad is the resize
// threshold (dense_hash_map's default is 0.5); fixed disables resizing.
func New(capacity uint64, seed uint64, maxLoad float64, fixed bool) *Map {
	if maxLoad <= 0 || maxLoad >= 1 {
		maxLoad = 0.5
	}
	size := uint64(16)
	for size < capacity {
		size <<= 1
	}
	return &Map{
		seed:    seed,
		mask:    size - 1,
		keys:    make([]uint64, size),
		vals:    make([]uint64, size),
		state:   make([]uint8, size),
		maxLoad: maxLoad,
		fixed:   fixed,
	}
}

// Len returns the live entry count.
func (m *Map) Len() uint64 { return m.n }

// Cap returns the slot count.
func (m *Map) Cap() uint64 { return m.mask + 1 }

// Resizes returns how many times the table has grown.
func (m *Map) Resizes() uint64 { return m.resizes }

// MemoryFootprint returns the resident bytes of the backing arrays.
func (m *Map) MemoryFootprint() uint64 { return m.Cap() * (8 + 8 + 1) }

// Get returns the value for key.
func (m *Map) Get(key uint64) (uint64, bool) {
	h := hashfn.Uint64(key, m.seed)
	i := h & m.mask
	for probe := uint64(1); ; probe++ {
		switch m.state[i] {
		case slotEmpty:
			return 0, false
		case slotFull:
			if m.keys[i] == key {
				return m.vals[i], true
			}
		}
		i = (i + probe) & m.mask // quadratic: offsets 1,3,6,10,...
		if probe > m.mask {
			return 0, false
		}
	}
}

// Put inserts or overwrites key.
func (m *Map) Put(key, val uint64) error {
	if !m.fixed && float64(m.n+m.tomb+1) > m.maxLoad*float64(m.Cap()) {
		m.grow()
	}
	h := hashfn.Uint64(key, m.seed)
	i := h & m.mask
	insertAt := int64(-1)
	for probe := uint64(1); ; probe++ {
		switch m.state[i] {
		case slotEmpty:
			if insertAt >= 0 {
				i = uint64(insertAt)
			}
			m.keys[i] = key
			m.vals[i] = val
			if m.state[i] == slotDeleted {
				m.tomb--
			}
			m.state[i] = slotFull
			m.n++
			return nil
		case slotDeleted:
			if insertAt < 0 {
				insertAt = int64(i)
			}
		case slotFull:
			if m.keys[i] == key {
				m.vals[i] = val
				return nil
			}
		}
		i = (i + probe) & m.mask
		if probe > m.mask {
			if insertAt >= 0 {
				i = uint64(insertAt)
				m.keys[i] = key
				m.vals[i] = val
				m.tomb--
				m.state[i] = slotFull
				m.n++
				return nil
			}
			return ErrFull
		}
	}
}

// Delete removes key, reporting whether it was present. The slot becomes a
// tombstone so later probe chains stay intact.
func (m *Map) Delete(key uint64) bool {
	h := hashfn.Uint64(key, m.seed)
	i := h & m.mask
	for probe := uint64(1); ; probe++ {
		switch m.state[i] {
		case slotEmpty:
			return false
		case slotFull:
			if m.keys[i] == key {
				m.state[i] = slotDeleted
				m.n--
				m.tomb++
				return true
			}
		}
		i = (i + probe) & m.mask
		if probe > m.mask {
			return false
		}
	}
}

// Range visits every live entry.
func (m *Map) Range(fn func(key, val uint64) bool) {
	for i := range m.keys {
		if m.state[i] == slotFull && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

func (m *Map) grow() {
	old := *m
	size := (m.mask + 1) * 2
	m.mask = size - 1
	m.keys = make([]uint64, size)
	m.vals = make([]uint64, size)
	m.state = make([]uint8, size)
	m.n = 0
	m.tomb = 0
	m.resizes++
	for i := range old.keys {
		if old.state[i] == slotFull {
			// Reinsertion cannot fail: the new table is at most quarter
			// full.
			_ = m.Put(old.keys[i], old.vals[i])
		}
	}
}
