package openaddr

import (
	"errors"
	"sync"
	"testing"

	"cuckoohash/internal/htm"
	"cuckoohash/internal/workload"
)

func TestPutGetDelete(t *testing.T) {
	m := New(1024, 7, 0.5, false)
	for k := uint64(1); k <= 2000; k++ {
		if err := m.Put(k, k*3); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if m.Len() != 2000 {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := uint64(1); k <= 2000; k++ {
		if v, ok := m.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := m.Get(99999); ok {
		t.Fatal("found absent key")
	}
	if err := m.Put(10, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(10); v != 1 {
		t.Fatal("overwrite failed")
	}
	if m.Len() != 2000 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
	if !m.Delete(10) || m.Delete(10) {
		t.Fatal("delete semantics")
	}
	if _, ok := m.Get(10); ok {
		t.Fatal("deleted key present")
	}
	// Resizing happened since we exceeded 0.5 * 1024.
	if m.Resizes() == 0 {
		t.Fatal("expected resizes")
	}
	// Load factor stays at most 0.5.
	if lf := float64(m.Len()+m.tomb) / float64(m.Cap()); lf > 0.5 {
		t.Fatalf("load factor %.3f > 0.5", lf)
	}
}

func TestTombstoneReuse(t *testing.T) {
	m := New(64, 3, 0.5, true)
	for k := uint64(1); k <= 30; k++ {
		if err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 30; k++ {
		m.Delete(k)
	}
	// Tombstones must be reclaimed by new inserts in a fixed table.
	for k := uint64(100); k < 130; k++ {
		if err := m.Put(k, k); err != nil {
			t.Fatalf("Put(%d) into tombstoned table: %v", k, err)
		}
	}
	for k := uint64(100); k < 130; k++ {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestFixedFull(t *testing.T) {
	m := New(16, 1, 0.5, true)
	var err error
	for k := uint64(1); ; k++ {
		if err = m.Put(k, k); err != nil {
			break
		}
		if k > 100 {
			t.Fatal("fixed table never filled")
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleRandomOps(t *testing.T) {
	m := New(1<<10, 11, 0.5, false)
	oracle := map[uint64]uint64{}
	rnd := workload.NewRand(5)
	for i := 0; i < 50000; i++ {
		k := rnd.Intn(2048)
		switch rnd.Intn(4) {
		case 0, 1:
			v := rnd.Next()
			if err := m.Put(k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			got := m.Delete(k)
			_, want := oracle[k]
			if got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			v, ok := m.Get(k)
			wv, wok := oracle[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, v, ok, wv, wok)
			}
		}
	}
	if m.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d want %d", m.Len(), len(oracle))
	}
}

func TestTxMapBasicAndConcurrent(t *testing.T) {
	m := NewTxMap(1<<14, 3, htm.PolicyTuned, htm.DefaultConfig())
	const threads = 8
	const per = 500 // stays below the 0.5-load cliff
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th+1) << 32
			for i := uint64(0); i < per; i++ {
				if err := m.Put(base|i, i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if m.Len() != threads*per {
		t.Fatalf("Len = %d want %d", m.Len(), threads*per)
	}
	for th := 0; th < threads; th++ {
		base := uint64(th+1) << 32
		for i := uint64(0); i < per; i++ {
			if v, ok := m.Get(base | i); !ok || v != i {
				t.Fatalf("Get(%d) = %d,%v", base|i, v, ok)
			}
		}
	}
	if !m.Delete(uint64(1)<<32) || m.Delete(uint64(1)<<32) {
		t.Fatal("delete semantics")
	}
	s := m.Region().Stats()
	t.Logf("stats: %+v abort-rate=%.3f", s, s.AbortRate())
}
