package openaddr

import "sync/atomic"

// shardedCounter keeps entry counts off the transactional fast path
// (principle P1: the paper removed dense_hash_map's global counters before
// measuring it under elision).
type shardedCounter struct {
	shards [64]paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (c *shardedCounter) add(h uint64, delta int64) {
	c.shards[h&63].v.Add(delta)
}

func (c *shardedCounter) total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}
