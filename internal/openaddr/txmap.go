package openaddr

import (
	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/htm"
)

// TxMap is the quadratic-probing table under a coarse lock with (emulated)
// TSX lock elision — the dense_hash_map-with-TSX configuration of Figure 2.
// The table is fixed-capacity (a transactional resize would be a guaranteed
// capacity abort, just as dense_hash_map's realloc was a guaranteed
// serialization point).
//
// Arena layout: [state words][keys][vals], one word per slot each. Long
// probe chains near the 0.5 load ceiling drag many lines into the read set,
// which is what makes this design collapse under concurrent elided writers.
type TxMap struct {
	seed   uint64
	mask   uint64
	policy htm.Policy
	region *htm.Region
	size   shardedCounter
}

// NewTxMap creates a transactional open-addressing table with at least
// capacity slots.
func NewTxMap(capacity uint64, seed uint64, policy htm.Policy, cfg htm.Config) *TxMap {
	size := uint64(16)
	for size < capacity {
		size <<= 1
	}
	return &TxMap{
		seed:   seed,
		mask:   size - 1,
		policy: policy,
		region: htm.NewRegion(int(3*size), cfg),
	}
}

// Region exposes transaction statistics.
func (m *TxMap) Region() *htm.Region { return m.region }

// Len returns the live entry count.
func (m *TxMap) Len() uint64 { return uint64(m.size.total()) }

// Cap returns the slot count.
func (m *TxMap) Cap() uint64 { return m.mask + 1 }

func (m *TxMap) stateAddr(i uint64) uint32 { return uint32(i) }
func (m *TxMap) keyAddr(i uint64) uint32   { return uint32(m.mask + 1 + i) }
func (m *TxMap) valAddr(i uint64) uint32   { return uint32(2*(m.mask+1) + i) }

// Get returns the value for key.
func (m *TxMap) Get(key uint64) (uint64, bool) {
	h := hashfn.Uint64(key, m.seed)
	var val uint64
	found := false
	_ = m.region.RunElided(m.policy, func(tx *htm.Txn) error {
		found = false
		i := h & m.mask
		for probe := uint64(1); probe <= m.mask+1; probe++ {
			switch tx.Load(m.stateAddr(i)) {
			case slotEmpty:
				return nil
			case slotFull:
				if tx.Load(m.keyAddr(i)) == key {
					val = tx.Load(m.valAddr(i))
					found = true
					return nil
				}
			}
			i = (i + probe) & m.mask
		}
		return nil
	})
	return val, found
}

// Put inserts or overwrites key; ErrFull when no slot is reachable.
func (m *TxMap) Put(key, val uint64) error {
	h := hashfn.Uint64(key, m.seed)
	inserted := false
	err := m.region.RunElided(m.policy, func(tx *htm.Txn) error {
		inserted = false
		i := h & m.mask
		for probe := uint64(1); probe <= m.mask+1; probe++ {
			switch tx.Load(m.stateAddr(i)) {
			case slotEmpty, slotDeleted:
				tx.Store(m.keyAddr(i), key)
				tx.Store(m.valAddr(i), val)
				tx.Store(m.stateAddr(i), slotFull)
				inserted = true
				return nil
			case slotFull:
				if tx.Load(m.keyAddr(i)) == key {
					tx.Store(m.valAddr(i), val)
					return nil
				}
			}
			i = (i + probe) & m.mask
		}
		return ErrFull
	})
	if err == nil && inserted {
		m.size.add(h, 1)
	}
	return err
}

// Delete removes key, leaving a tombstone.
func (m *TxMap) Delete(key uint64) bool {
	h := hashfn.Uint64(key, m.seed)
	deleted := false
	_ = m.region.RunElided(m.policy, func(tx *htm.Txn) error {
		deleted = false
		i := h & m.mask
		for probe := uint64(1); probe <= m.mask+1; probe++ {
			switch tx.Load(m.stateAddr(i)) {
			case slotEmpty:
				return nil
			case slotFull:
				if tx.Load(m.keyAddr(i)) == key {
					tx.Store(m.stateAddr(i), slotDeleted)
					deleted = true
					return nil
				}
			}
			i = (i + probe) & m.mask
		}
		return nil
	})
	if deleted {
		m.size.add(h, -1)
	}
	return deleted
}
