// Package cluster implements the two-choice placement ring behind
// cuckoocluster: the paper's core trick — every key has exactly two
// candidate buckets, and load is balanced by displacing items between
// them (§2, §4.3) — applied one level up. Every key hashes to two
// candidate *nodes*; writes go to the primary and spill to the alternate
// when the primary is overloaded or unhealthy, reads check the primary
// then the alternate, and a rebalance displaces keys from a hot node to
// each key's other choice exactly like a cuckoo kick-out. The same
// hashing discipline as the table itself is reused (internal/hashfn:
// one xxHash64 computation, two independent indices derived from it).
//
// Membership is static: a Ring is an ordered list of node addresses
// fixed at construction, and every client, server, and admin tool that
// shares (nodes, seed) computes identical placements. Growing or
// shrinking the fleet means constructing a new Ring and migrating keys
// to their new candidates (docs/CLUSTER.md).
package cluster

import (
	"errors"
	"fmt"
	"strings"

	"cuckoohash/internal/hashfn"
)

// ErrEmptyRing is returned when constructing a ring with no nodes.
var ErrEmptyRing = errors.New("cluster: ring has no nodes")

// Ring is an immutable, ordered set of node addresses plus the hash seed
// that fixes key placement. Safe for concurrent use (it is never mutated
// after construction).
type Ring struct {
	nodes []string
	index map[string]int
	seed  uint64
}

// New builds a ring over the given node addresses. Order matters — it is
// part of the placement function — so every participant must be
// configured with the same list in the same order and the same seed.
// Addresses must be non-empty, free of whitespace and commas (they
// travel inside the one-line MIGRATE verb), and unique.
func New(nodes []string, seed uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, ErrEmptyRing
	}
	r := &Ring{
		nodes: make([]string, len(nodes)),
		index: make(map[string]int, len(nodes)),
		seed:  seed,
	}
	for i, n := range nodes {
		if n == "" || strings.ContainsAny(n, " ,\r\n\t") {
			return nil, fmt.Errorf("cluster: invalid node address %q", n)
		}
		if _, dup := r.index[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate node address %q", n)
		}
		r.nodes[i] = n
		r.index[n] = i
	}
	return r, nil
}

// Parse builds a ring from a comma-separated address list, the form the
// MIGRATE verb and the -nodes flags carry.
func Parse(csv string, seed uint64) (*Ring, error) {
	var nodes []string
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	return New(nodes, seed)
}

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Seed returns the placement seed.
func (r *Ring) Seed() uint64 { return r.seed }

// Nodes returns a copy of the ordered node list.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Node returns the address at index i.
func (r *Ring) Node(i int) string { return r.nodes[i] }

// Index returns the position of addr in the ring, or -1 if absent.
func (r *Ring) Index(addr string) int {
	if i, ok := r.index[addr]; ok {
		return i
	}
	return -1
}

// CSV renders the ring as the comma-separated list the MIGRATE verb
// carries.
func (r *Ring) CSV() string { return strings.Join(r.nodes, ",") }

// Without returns a new ring with addr removed — the placement a drain
// uses: under it, every key maps to two surviving candidates, so moving
// each key to either one empties the drained node.
func (r *Ring) Without(addr string) (*Ring, error) {
	i := r.Index(addr)
	if i < 0 {
		return nil, fmt.Errorf("cluster: %q is not in the ring", addr)
	}
	nodes := make([]string, 0, len(r.nodes)-1)
	nodes = append(nodes, r.nodes[:i]...)
	nodes = append(nodes, r.nodes[i+1:]...)
	return New(nodes, r.seed)
}

// Candidates returns the indices of the key's two candidate nodes. The
// primary comes from the low bits of one xxHash64 computation; the
// alternate is derived by remixing the same hash (splitmix64) into a
// uniform choice over the remaining nodes, so the two candidates are
// always distinct whenever the ring has more than one node — the node-
// level analogue of hashfn.TwoBuckets. On a one-node ring both
// candidates are node 0.
func (r *Ring) Candidates(key string) (primary, alternate int) {
	//lint:allow cuckoovet:allocfree the []byte view of key does not escape XXHash64; short keys stay on the stack
	h := hashfn.XXHash64([]byte(key), r.seed)
	n := uint64(len(r.nodes))
	primary = int(h % n)
	if n == 1 {
		return primary, primary
	}
	// Remix rather than reuse: the low bits already chose the primary, so
	// a fresh scramble keeps the alternate independent of it. Drawing from
	// [0, n-1) and skipping the primary guarantees distinctness with a
	// uniform distribution over the other nodes.
	alternate = int(hashfn.SplitMix64(h) % (n - 1))
	if alternate >= primary {
		alternate++
	}
	return primary, alternate
}

// CandidateAddrs is Candidates resolved to addresses.
func (r *Ring) CandidateAddrs(key string) (primary, alternate string) {
	p, a := r.Candidates(key)
	return r.nodes[p], r.nodes[a]
}

// IsCandidate reports whether addr is one of the key's two candidate
// nodes — the MIGRATE selection predicate.
func (r *Ring) IsCandidate(key, addr string) bool {
	i := r.Index(addr)
	if i < 0 {
		return false
	}
	p, a := r.Candidates(key)
	return i == p || i == a
}

// Skew measures ring imbalance from per-node load figures (entry counts
// or load factors): (max - mean) / mean, i.e. how far the hottest node
// sits above the average. Zero loads give zero skew. A rebalance
// converges when Skew falls below the operator's watermark.
func Skew(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / float64(len(loads))
	if mean <= 0 {
		return 0
	}
	return (max - mean) / mean
}
