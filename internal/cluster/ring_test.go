package cluster

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func mustRing(t *testing.T, nodes []string, seed uint64) *Ring {
	t.Helper()
	r, err := New(nodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err != ErrEmptyRing {
		t.Errorf("empty ring: got %v, want ErrEmptyRing", err)
	}
	for _, bad := range [][]string{
		{""},
		{"a b"},
		{"a,b"},
		{"a", "a"},
		{"a\nb"},
	} {
		if _, err := New(bad, 1); err == nil {
			t.Errorf("New(%q) accepted invalid input", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	r, err := Parse(" n1:1 , n2:2 ,n3:3 ", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CSV(); got != "n1:1,n2:2,n3:3" {
		t.Errorf("CSV = %q", got)
	}
	r2, err := Parse(r.CSV(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 3 || r2.Index("n2:2") != 1 {
		t.Errorf("round trip lost structure: %v", r2.Nodes())
	}
}

func TestCandidatesDistinctAndStable(t *testing.T) {
	nodes := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	r := mustRing(t, nodes, 42)
	r2 := mustRing(t, nodes, 42)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		p, a := r.Candidates(key)
		if p == a {
			t.Fatalf("key %q: primary == alternate == %d", key, p)
		}
		if p < 0 || p >= len(nodes) || a < 0 || a >= len(nodes) {
			t.Fatalf("key %q: candidates out of range (%d, %d)", key, p, a)
		}
		if p2, a2 := r2.Candidates(key); p2 != p || a2 != a {
			t.Fatalf("key %q: placement not deterministic", key)
		}
	}
}

func TestCandidatesSeedIndependence(t *testing.T) {
	nodes := []string{"a:1", "b:2", "c:3", "d:4"}
	r1 := mustRing(t, nodes, 1)
	r2 := mustRing(t, nodes, 2)
	same := 0
	const n = 4096
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		p1, _ := r1.Candidates(key)
		p2, _ := r2.Candidates(key)
		if p1 == p2 {
			same++
		}
	}
	// Different seeds must induce different placements: agreement should be
	// near 1/len(nodes), not near 1.
	if same > n/2 {
		t.Errorf("seeds 1 and 2 agree on %d/%d primaries; placements not seed-dependent", same, n)
	}
}

func TestCandidatesBalanced(t *testing.T) {
	nodes := []string{"a:1", "b:2", "c:3"}
	r := mustRing(t, nodes, 9)
	primary := make([]int, len(nodes))
	either := make([]int, len(nodes))
	const n = 30000
	for i := 0; i < n; i++ {
		p, a := r.Candidates(fmt.Sprintf("key-%d", i))
		primary[p]++
		either[p]++
		either[a]++
	}
	for i, c := range primary {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.03 {
			t.Errorf("node %d holds %.3f of primaries, want ~1/3", i, frac)
		}
	}
	for i, c := range either {
		frac := float64(c) / (2 * n)
		if math.Abs(frac-1.0/3) > 0.03 {
			t.Errorf("node %d appears in %.3f of candidate pairs, want ~1/3", i, frac)
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := mustRing(t, []string{"only:1"}, 3)
	p, a := r.Candidates("k")
	if p != 0 || a != 0 {
		t.Errorf("single-node candidates = (%d, %d), want (0, 0)", p, a)
	}
}

func TestWithout(t *testing.T) {
	r := mustRing(t, []string{"a:1", "b:2", "c:3"}, 5)
	r2, err := r.Without("b:2")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 || r2.Index("b:2") != -1 || r2.Index("a:1") != 0 || r2.Index("c:3") != 1 {
		t.Errorf("Without left %v", r2.Nodes())
	}
	if _, err := r.Without("nope"); err == nil {
		t.Error("Without(absent) did not fail")
	}
	// Under the reduced ring every key maps to surviving nodes only.
	for i := 0; i < 1000; i++ {
		p, a := r2.Candidates(fmt.Sprintf("key-%d", i))
		if r2.Node(p) == "b:2" || r2.Node(a) == "b:2" {
			t.Fatal("drained node still receives placements")
		}
	}
	// The original ring is untouched.
	if r.Len() != 3 {
		t.Error("Without mutated the source ring")
	}
}

func TestIsCandidate(t *testing.T) {
	r := mustRing(t, []string{"a:1", "b:2", "c:3"}, 11)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		p, a := r.Candidates(key)
		hits := 0
		for _, n := range r.Nodes() {
			if r.IsCandidate(key, n) {
				hits++
			}
		}
		if hits != 2 {
			t.Fatalf("key %q: %d candidate addresses, want 2", key, hits)
		}
		if !r.IsCandidate(key, r.Node(p)) || !r.IsCandidate(key, r.Node(a)) {
			t.Fatalf("key %q: candidate addresses disagree with indices", key)
		}
	}
	if r.IsCandidate("k", "absent") {
		t.Error("IsCandidate true for address outside the ring")
	}
}

func TestSkew(t *testing.T) {
	cases := []struct {
		loads []float64
		want  float64
	}{
		{nil, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{10, 10, 10}, 0},
		{[]float64{20, 10, 0}, 1},
		{[]float64{30, 0, 0}, 2},
	}
	for _, c := range cases {
		if got := Skew(c.loads); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Skew(%v) = %v, want %v", c.loads, got, c.want)
		}
	}
}

func TestCSVSurvivesMigrateTokenization(t *testing.T) {
	// The CSV form rides inside a space-separated protocol line: it must
	// never contain a space itself.
	r := mustRing(t, []string{"10.0.0.1:11300", "10.0.0.2:11300"}, 1)
	if strings.ContainsAny(r.CSV(), " \r\n") {
		t.Errorf("CSV %q contains protocol delimiters", r.CSV())
	}
}
