package hashfn

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// Reference vectors from the xxHash specification / reference
// implementation.
func TestXXHash64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xEF46DB3751D8E999},
		{"a", 0, 0xD24EC4F1A98C6E5B},
		{"abc", 0, 0x44BC2CF5AD770999},
		{"", 1, 0xD5AFBA1336A3BE4B},
	}
	for _, c := range cases {
		if got := XXHash64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("XXHash64(%q, %d) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestXXHash64AllLengths(t *testing.T) {
	// Exercise every code path (tail <4, <8, 8..31, >=32) and verify the
	// hash depends on every byte position.
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	seen := map[uint64]int{}
	for n := 0; n <= len(buf); n++ {
		h := XXHash64(buf[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
	// Flipping any single byte must change the hash.
	base := XXHash64(buf, 42)
	for i := range buf {
		buf[i] ^= 0x80
		if XXHash64(buf, 42) == base {
			t.Fatalf("hash insensitive to byte %d", i)
		}
		buf[i] ^= 0x80
	}
}

func TestXXHash64AvalancheRough(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	in := []byte("the quick brown fox jumps over the lazy dog!!")
	base := XXHash64(in, 0)
	var totalDist int
	flips := 0
	for i := 0; i < len(in); i++ {
		for b := 0; b < 8; b++ {
			in[i] ^= 1 << b
			h := XXHash64(in, 0)
			in[i] ^= 1 << b
			totalDist += bits.OnesCount64(h ^ base)
			flips++
		}
	}
	mean := float64(totalDist) / float64(flips)
	if mean < 24 || mean > 40 {
		t.Fatalf("avalanche mean hamming distance %.2f, want ~32", mean)
	}
}

func TestSplitMix64Vector(t *testing.T) {
	// Vigna's reference splitmix64 advances its state by the golden-ratio
	// constant per call; our SplitMix64(x) is the stateless variant, so
	// SplitMix64(0) must equal the reference generator's first output.
	const want = uint64(0xE220A8397B1DCDAF)
	if got := SplitMix64(0); got != want {
		t.Fatalf("SplitMix64(0) = %#x, want %#x", got, want)
	}
}

func TestMix13Bijective(t *testing.T) {
	// A bijection cannot collide; sample a large set.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix13(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix13 collision: %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestUint64SeedIndependence(t *testing.T) {
	if Uint64(123, 1) == Uint64(123, 2) {
		t.Fatal("seeds 1 and 2 give identical hashes")
	}
}

func TestTwoBucketsProperties(t *testing.T) {
	prop := func(hash uint64, logBuckets uint8) bool {
		nb := uint64(1) << (logBuckets%20 + 1) // 2 .. 2^20 buckets
		b1, b2 := TwoBuckets(hash, nb)
		if b1 >= nb || b2 >= nb {
			return false
		}
		if b1 == b2 {
			return false
		}
		// AltBucket must be a perfect involution over {b1, b2}.
		return AltBucket(hash, nb, b1) == b2 && AltBucket(hash, nb, b2) == b1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoBucketsDistribution(t *testing.T) {
	// Buckets drawn from hashed keys should be roughly uniform.
	const nb = 1 << 10
	counts := make([]int, nb)
	const samples = nb * 64
	for i := 0; i < samples; i++ {
		h := Uint64(uint64(i), 7)
		b1, b2 := TwoBuckets(h, nb)
		counts[b1]++
		counts[b2]++
	}
	mean := float64(2*samples) / nb
	for b, c := range counts {
		if float64(c) < mean/3 || float64(c) > mean*3 {
			t.Fatalf("bucket %d count %d far from mean %.1f", b, c, mean)
		}
	}
}

func BenchmarkXXHash64_16B(b *testing.B) {
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		XXHash64(buf, 0)
	}
}

func BenchmarkXXHash64_256B(b *testing.B) {
	buf := make([]byte, 256)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		XXHash64(buf, 0)
	}
}

var hashSink uint64

func BenchmarkUint64Hash(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Uint64(uint64(i), 42)
	}
	hashSink = acc
}
