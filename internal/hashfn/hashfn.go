// Package hashfn provides the hash functions used by the cuckoo hash tables.
//
// The package implements xxHash64 (for byte-string keys) and the splitmix64 /
// Stafford "mix13" finalizers (for fixed 64-bit integer keys), plus the
// derivation of the two candidate bucket indices that cuckoo hashing needs.
// Everything here is pure computation with no allocation, so that hashing
// never shows up as GC pressure in the table fast paths.
package hashfn

import "math/bits"

// xxHash64 prime constants, from the xxHash specification.
const (
	prime64x1 = 0x9E3779B185EBCA87
	prime64x2 = 0xC2B2AE3D27D4EB4F
	prime64x3 = 0x165667B19E3779F9
	prime64x4 = 0x85EBCA77C2B2AE63
	prime64x5 = 0x27D4EB2F165667C5
)

// XXHash64 returns the 64-bit xxHash of b with the given seed.
func XXHash64(b []byte, seed uint64) uint64 {
	n := len(b)
	var h uint64

	if n >= 32 {
		v1 := seed + prime64x1 + prime64x2
		v2 := seed + prime64x2
		v3 := seed
		v4 := seed - prime64x1
		for len(b) >= 32 {
			v1 = round64(v1, le64(b))
			v2 = round64(v2, le64(b[8:]))
			v3 = round64(v3, le64(b[16:]))
			v4 = round64(v4, le64(b[24:]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound64(h, v1)
		h = mergeRound64(h, v2)
		h = mergeRound64(h, v3)
		h = mergeRound64(h, v4)
	} else {
		h = seed + prime64x5
	}

	h += uint64(n)

	for len(b) >= 8 {
		h ^= round64(0, le64(b))
		h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(le32(b)) * prime64x1
		h = bits.RotateLeft64(h, 23)*prime64x2 + prime64x3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime64x5
		h = bits.RotateLeft64(h, 11) * prime64x1
	}

	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}

func round64(acc, input uint64) uint64 {
	acc += input * prime64x2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime64x1
}

func mergeRound64(acc, val uint64) uint64 {
	val = round64(0, val)
	acc ^= val
	return acc*prime64x1 + prime64x4
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// SplitMix64 advances the splitmix64 sequence from x and returns the next
// output. It doubles as a strong 64-bit finalizer: SplitMix64(k) is a
// bijective scramble of k suitable for hashing fixed-width integer keys.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix13 is David Stafford's "mix13" variant of the murmur3 finalizer, a
// bijection on 64-bit values with excellent avalanche behaviour. It is the
// default integer-key hash for the cuckoo tables.
func Mix13(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Uint64 hashes a fixed 64-bit key with a seed. The seed is folded in before
// finalization so that distinct tables see independent hash functions.
func Uint64(key, seed uint64) uint64 {
	return Mix13(key ^ (seed * prime64x1))
}

// TwoBuckets derives the two candidate bucket indices for a key from its
// 64-bit hash. numBuckets must be a power of two.
//
// The first index uses the low half of the hash. The second is derived by
// remixing the high half; the two halves of a well-mixed 64-bit hash are
// effectively independent, so this matches the "two hash functions" of the
// paper (§4.1) with a single hash computation. The derivation guarantees
// b1 != b2 whenever numBuckets > 1 by flipping the lowest bit if the remix
// collides, so every key always has two distinct buckets to live in.
func TwoBuckets(hash uint64, numBuckets uint64) (b1, b2 uint64) {
	mask := numBuckets - 1
	b1 = hash & mask
	b2 = (hash >> 32) * prime64x2 >> 32 & mask // remix the high half
	if b2 == b1 {
		b2 = (b2 ^ 1) & mask
	}
	return b1, b2
}

// AltBucket returns the other candidate bucket for a key given one of its
// two buckets. It recomputes both candidates from the hash; callers use it
// during cuckoo displacement when only the currently-occupied bucket is
// known.
func AltBucket(hash uint64, numBuckets, bucket uint64) uint64 {
	b1, b2 := TwoBuckets(hash, numBuckets)
	if bucket == b1 {
		return b2
	}
	return b1
}
