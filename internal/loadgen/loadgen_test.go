package loadgen_test

import (
	"strings"
	"testing"
	"time"

	"cuckoohash/internal/loadgen"
	"cuckoohash/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        4,
		SlotsPerShard: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRunUniformAndZipf(t *testing.T) {
	s := startServer(t)
	for _, dist := range []string{"uniform", "zipf"} {
		t.Run(dist, func(t *testing.T) {
			res, err := loadgen.Run(loadgen.Config{
				Addr:       s.Addr().String(),
				Conns:      4,
				OpsPerConn: 2000,
				Batch:      16,
				SetFrac:    0.5,
				Keys:       1 << 10,
				Dist:       dist,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Ops, uint64(4*2000); got != want {
				t.Fatalf("Ops = %d, want %d", got, want)
			}
			if res.Errors != 0 {
				t.Fatalf("%d request errors", res.Errors)
			}
			// Half the ops are GETs over a tiny hot keyspace; after the
			// first few batches nearly all must hit.
			if res.Hits == 0 {
				t.Fatal("no GET hits against a 1K-key universe")
			}
			if res.Throughput() <= 0 {
				t.Fatal("non-positive throughput")
			}
			if res.Lat.Count() == 0 || res.Lat.Quantile(0.99) == 0 {
				t.Fatal("no latency samples recorded")
			}
			var sb strings.Builder
			res.Print(&sb)
			for _, want := range []string{"p50=", "p99=", "p999=", "hit_ratio="} {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("Print output missing %q:\n%s", want, sb.String())
				}
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := loadgen.Run(loadgen.Config{Dist: "pareto"}); err == nil {
		t.Fatal("bad distribution accepted")
	}
}

func TestRunTTLWorkload(t *testing.T) {
	s := startServer(t)
	res, err := loadgen.Run(loadgen.Config{
		Addr:       s.Addr().String(),
		Conns:      2,
		OpsPerConn: 500,
		Batch:      8,
		SetFrac:    1.0,
		Keys:       1 << 8,
		TTL:        30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	// All SETs carried a TTL; the sweeper must empty the cache.
	deadline := time.Now().Add(2 * time.Second)
	for s.Cache().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d TTL'd entries never expired", s.Cache().Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
