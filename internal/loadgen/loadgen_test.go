package loadgen_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"cuckoohash/internal/cluster"
	"cuckoohash/internal/loadgen"
	"cuckoohash/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        4,
		SlotsPerShard: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRunUniformAndZipf(t *testing.T) {
	s := startServer(t)
	for _, dist := range []string{"uniform", "zipf"} {
		t.Run(dist, func(t *testing.T) {
			res, err := loadgen.Run(loadgen.Config{
				Addr:       s.Addr().String(),
				Conns:      4,
				OpsPerConn: 2000,
				Batch:      16,
				SetFrac:    0.5,
				Keys:       1 << 10,
				Dist:       dist,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Ops, uint64(4*2000); got != want {
				t.Fatalf("Ops = %d, want %d", got, want)
			}
			if res.Errors != 0 {
				t.Fatalf("%d request errors", res.Errors)
			}
			// Half the ops are GETs over a tiny hot keyspace; after the
			// first few batches nearly all must hit.
			if res.Hits == 0 {
				t.Fatal("no GET hits against a 1K-key universe")
			}
			if res.Throughput() <= 0 {
				t.Fatal("non-positive throughput")
			}
			if res.Lat.Count() == 0 || res.Lat.Quantile(0.99) == 0 {
				t.Fatal("no latency samples recorded")
			}
			var sb strings.Builder
			res.Print(&sb)
			for _, want := range []string{"p50=", "p99=", "p999=", "hit_ratio="} {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("Print output missing %q:\n%s", want, sb.String())
				}
			}
		})
	}
}

func TestRunClusterAddrList(t *testing.T) {
	const (
		ringSeed = 7
		universe = 1 << 9
	)
	nodes := []*server.Server{startServer(t), startServer(t)}
	addrs := make([]string, len(nodes))
	for i, s := range nodes {
		addrs[i] = s.Addr().String()
	}

	res, err := loadgen.Run(loadgen.Config{
		Addr:       strings.Join(addrs, ","),
		Conns:      2,
		OpsPerConn: 2000,
		Batch:      16,
		SetFrac:    0.5,
		Keys:       universe,
		RingSeed:   ringSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Ops, uint64(2*2000); got != want {
		t.Fatalf("Ops = %d, want %d", got, want)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if res.Hits == 0 {
		t.Fatal("no GET hits against a small universe")
	}

	// The zipf-free uniform mix over a small universe must populate both
	// nodes, and every stored key must sit on its ring primary — loadgen
	// routes each key there and nowhere else.
	ring, err := cluster.New(addrs, ringSeed)
	if err != nil {
		t.Fatal(err)
	}
	stored := 0
	for k := uint64(0); k < universe; k++ {
		key := "k" + strconv.FormatUint(k, 16)
		pri, _ := ring.Candidates(key)
		for i, s := range nodes {
			if _, ok := s.Cache().Get(key); !ok {
				continue
			}
			stored++
			if i != pri {
				t.Fatalf("key %s stored on node %d, but its ring primary is %d", key, i, pri)
			}
		}
	}
	if stored == 0 {
		t.Fatal("no keys stored on any node")
	}
	for i, s := range nodes {
		if s.Cache().Len() == 0 {
			t.Errorf("node %d (%s) received no keys", i, addrs[i])
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := loadgen.Run(loadgen.Config{Dist: "pareto"}); err == nil {
		t.Fatal("bad distribution accepted")
	}
}

func TestRunTTLWorkload(t *testing.T) {
	s := startServer(t)
	res, err := loadgen.Run(loadgen.Config{
		Addr:       s.Addr().String(),
		Conns:      2,
		OpsPerConn: 500,
		Batch:      8,
		SetFrac:    1.0,
		Keys:       1 << 8,
		TTL:        30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	// All SETs carried a TTL; the sweeper must empty the cache.
	deadline := time.Now().Add(2 * time.Second)
	for s.Cache().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d TTL'd entries never expired", s.Cache().Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunIncrWorkload(t *testing.T) {
	s := startServer(t)
	res, err := loadgen.Run(loadgen.Config{
		Addr:       s.Addr().String(),
		Conns:      2,
		OpsPerConn: 1000,
		Batch:      16,
		Workload:   "incr",
		Keys:       1 << 8,
		ZipfS:      1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Ops, uint64(2*1000); got != want {
		t.Fatalf("Ops = %d, want %d", got, want)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	// Every op was an INCR over a 256-key universe: each touched key must
	// now hold a positive integer, and the hot ranks a large one.
	if v, ok := s.Cache().Get("k" + "0"); ok && v == "" {
		t.Fatalf("empty counter value %q", v)
	}
}

func TestRunTxnWorkload(t *testing.T) {
	s := startServer(t)
	res, err := loadgen.Run(loadgen.Config{
		Addr:       s.Addr().String(),
		Conns:      2,
		OpsPerConn: 500,
		Batch:      8,
		Workload:   "txn",
		Keys:       1 << 8,
		Dist:       "zipf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Ops, uint64(2*500); got != want {
		t.Fatalf("Ops = %d, want %d", got, want)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
}

func TestRunRejectsBadWorkloadAndZipfS(t *testing.T) {
	if _, err := loadgen.Run(loadgen.Config{Workload: "chaos"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := loadgen.Run(loadgen.Config{ZipfS: 0.5}); err == nil {
		t.Fatal("zipf-s <= 1 accepted")
	}
}
