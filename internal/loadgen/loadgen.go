// Package loadgen drives a cuckood server over real TCP connections with
// the same key distributions the in-process benchmarks use
// (internal/workload): uniform or Zipfian keys, a configurable SET
// fraction, and per-goroutine pipelined connections. It reports
// throughput and latency quantiles, giving the repository a service-level
// analogue of the paper's §6 evaluation.
package loadgen

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"cuckoohash/client"
	"cuckoohash/internal/cluster"
	"cuckoohash/internal/metrics"
	"cuckoohash/internal/workload"
)

// Config parameterizes a load-generation run.
type Config struct {
	// Addr is the server address — or a comma-separated list of cluster
	// node addresses in ring order, in which case every generator
	// goroutine connects to all of them and routes each key to its
	// primary node under the two-choice ring (internal/cluster), the way
	// a cluster-aware client would.
	Addr string
	// Conns is the number of concurrent client goroutines, one pipelined
	// connection each (default 4).
	Conns int
	// OpsPerConn is how many operations each goroutine issues
	// (default 50000).
	OpsPerConn int
	// Batch is the pipeline depth: requests per flush (default 16;
	// 1 disables pipelining).
	Batch int
	// SetFrac is the fraction of SET operations; the rest are GETs
	// (default 0.1, the paper's 10%-insert mix).
	SetFrac float64
	// Keys is the key-universe size (default 1<<20).
	Keys uint64
	// Dist is "uniform" or "zipf" (default "uniform").
	Dist string
	// Theta is the Zipf skew in (0,1) (default 0.99, YCSB's default).
	Theta float64
	// ZipfS, when > 1, selects the heavy-skew Zipf sampler with exponent
	// s (workload.ZipfSKeys) instead of Dist/Theta: at s=1.2 a handful of
	// keys absorb most of the stream, the regime the server's split
	// counters target. Zero keeps the Dist/Theta behavior.
	ZipfS float64
	// Workload selects the operation shape: "mixed" (default; GETs with a
	// SetFrac fraction of SETs), "incr" (every op is INCR key 1 — the
	// hot-counter workload), "txn" (each batch ships as one MULTI…EXEC
	// transaction of INCRs), or "hot" (read-mostly traffic concentrated
	// on a HotN-key hot set — the cuckoorepl read-scale-out workload;
	// against a cluster address list, hot GETs spread across both
	// candidate nodes the way a replication-aware client reads).
	Workload string
	// HotN is the hot-set size for the "hot" workload (default 64):
	// hotFrac of operations land uniformly on keys [0, HotN), the rest
	// on the uniform tail of the universe.
	HotN uint64
	// ValueSize is the SET payload length in bytes (default 32).
	ValueSize int
	// TTL, when positive, is attached to every SET.
	TTL time.Duration
	// Seed makes key streams reproducible (default 1).
	Seed uint64
	// RingSeed fixes the cluster ring placement hash when Addr lists
	// several nodes; it must match what the cluster's clients use, or the
	// generated load lands on the wrong primaries.
	RingSeed uint64
	// Trace, when true, stamps every batch with a fresh wire trace ID
	// (client.NewTraceID), exercising the server's end-to-end tracing:
	// slow-op logs, flight records, and the slow-trace exemplar series all
	// carry the generator's IDs.
	Trace bool
}

func (c *Config) setDefaults() error {
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.OpsPerConn == 0 {
		c.OpsPerConn = 50000
	}
	if c.Batch < 1 {
		c.Batch = 16
	}
	if c.SetFrac == 0 {
		c.SetFrac = 0.1
	}
	if c.Keys == 0 {
		c.Keys = 1 << 20
	}
	if c.Dist == "" {
		c.Dist = "uniform"
	}
	if c.Dist != "uniform" && c.Dist != "zipf" {
		return fmt.Errorf("loadgen: unknown distribution %q (want uniform or zipf)", c.Dist)
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("loadgen: -zipf-s must be > 1, got %v", c.ZipfS)
	}
	if c.Workload == "" {
		c.Workload = "mixed"
	}
	if c.Workload != "mixed" && c.Workload != "incr" && c.Workload != "txn" && c.Workload != "hot" {
		return fmt.Errorf("loadgen: unknown workload %q (want mixed, incr, txn or hot)", c.Workload)
	}
	if c.Workload == "hot" {
		if c.HotN == 0 {
			c.HotN = 64
		}
		if c.HotN > c.Keys {
			return fmt.Errorf("loadgen: -hot-n %d exceeds the key universe %d", c.HotN, c.Keys)
		}
	}
	if c.Workload == "txn" && c.Batch > 64 {
		c.Batch = 64 // server-side MULTI queue bound (maxTxnOps)
	}
	if c.ValueSize == 0 {
		c.ValueSize = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Result is the aggregate outcome of a run. Latency quantiles are over
// batch round-trip times: with Batch=1 that is per-request latency; with
// deeper pipelines it is the latency a pipelined client actually
// experiences per flush.
type Result struct {
	Config   Config
	Ops      uint64
	Duration time.Duration
	Hits     uint64
	Misses   uint64
	Errors   uint64 // per-request server errors (e.g. cache full)
	Lat      metrics.Histogram
}

// Throughput returns overall requests/s.
func (r *Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// Print renders a human-readable summary.
func (r *Result) Print(w io.Writer) {
	dist := r.Config.Dist
	if r.Config.ZipfS > 1 {
		dist = fmt.Sprintf("zipf(s=%g)", r.Config.ZipfS)
	}
	fmt.Fprintf(w, "loadgen: %s workload, %d conns x %d ops, batch=%d, dist=%s, %.0f%% SET, %d keys\n",
		r.Config.Workload, r.Config.Conns, r.Config.OpsPerConn, r.Config.Batch, dist,
		r.Config.SetFrac*100, r.Config.Keys)
	fmt.Fprintf(w, "  %d ops in %v = %.2f Kreq/s (%.3f Mreq/s)\n",
		r.Ops, r.Duration.Round(time.Millisecond), r.Throughput()/1e3, r.Throughput()/1e6)
	fmt.Fprintf(w, "  hits=%d misses=%d errors=%d hit_ratio=%.3f\n",
		r.Hits, r.Misses, r.Errors, ratio(r.Hits, r.Hits+r.Misses))
	fmt.Fprintf(w, "  batch RTT: p50=%v p99=%v p999=%v mean=%v\n",
		time.Duration(r.Lat.Quantile(0.50)),
		time.Duration(r.Lat.Quantile(0.99)),
		time.Duration(r.Lat.Quantile(0.999)),
		time.Duration(r.Lat.Mean()))
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// connStats is one goroutine's tally, merged after the run.
type connStats struct {
	ops, hits, misses, errors uint64
	lat                       metrics.Histogram
	err                       error
}

// Run executes the configured load against the server and blocks until
// every goroutine finishes. A transport error aborts that goroutine and
// is returned (first one wins); completed work is still tallied.
func Run(cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	stats := make([]connStats, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(cfg, i, &stats[i])
		}(i)
	}
	wg.Wait()
	res := &Result{Config: cfg, Duration: time.Since(start)}
	var firstErr error
	for i := range stats {
		s := &stats[i]
		res.Ops += s.ops
		res.Hits += s.hits
		res.Misses += s.misses
		res.Errors += s.errors
		res.Lat.Merge(&s.lat)
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	return res, firstErr
}

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runConn issues one goroutine's share of the load. Against a single
// server that is one pipelined connection; against an address list it is
// one connection per node, with every key queued on its primary node
// under the ring and all touched connections flushed per batch — the
// batch RTT then covers the whole fan-out, which is what a pipelined
// cluster client experiences.
func runConn(cfg Config, id int, st *connStats) {
	addrs := splitAddrs(cfg.Addr)
	if len(addrs) == 0 {
		st.err = fmt.Errorf("loadgen: no server address")
		return
	}
	var ring *cluster.Ring
	if len(addrs) > 1 {
		r, err := cluster.New(addrs, cfg.RingSeed)
		if err != nil {
			st.err = err
			return
		}
		ring = r
	}
	conns := make([]*client.Conn, len(addrs))
	for i, addr := range addrs {
		conn, err := client.Dial(addr)
		if err != nil {
			st.err = err
			return
		}
		defer conn.Close()
		conns[i] = conn
	}

	seed := cfg.Seed ^ uint64(id)*0x9E3779B97F4A7C15
	var keys workload.KeyGen
	switch {
	case cfg.ZipfS > 1:
		keys = workload.NewZipfSKeys(seed, cfg.Keys, cfg.ZipfS)
	case cfg.Dist == "zipf":
		keys = workload.NewZipfKeys(seed, cfg.Keys, cfg.Theta)
	default:
		keys = uniformUniverse{rnd: workload.NewRand(seed), n: cfg.Keys}
	}
	if cfg.Workload == "hot" {
		keys = hotSetKeys{rnd: workload.NewRand(seed + 2), hot: cfg.HotN, n: cfg.Keys}
	}
	if cfg.Workload == "txn" {
		runConnTxn(cfg, ring, conns, keys, st)
		return
	}
	opRnd := workload.NewRand(seed + 1)
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = 'a' + byte((id+i)%26)
	}
	value := string(val)

	keyBuf := make([]byte, 0, 24)
	isSet := make([][]bool, len(conns)) // per conn, per queued request
	for sent := 0; sent < cfg.OpsPerConn; {
		batch := cfg.Batch
		if rem := cfg.OpsPerConn - sent; batch > rem {
			batch = rem
		}
		for i := range isSet {
			isSet[i] = isSet[i][:0]
		}
		if cfg.Trace {
			id := client.NewTraceID()
			for _, conn := range conns {
				conn.SetTrace(id)
			}
		}
		for b := 0; b < batch; b++ {
			incr := cfg.Workload == "incr"
			set := !incr && opRnd.Float64() < cfg.SetFrac
			var k uint64
			if set {
				k = keys.NextKey()
			} else {
				k = keys.ExistingKey()
			}
			keyBuf = strconv.AppendUint(keyBuf[:0], k, 16)
			key := "k" + string(keyBuf)
			target := 0
			if ring != nil {
				pri, alt := ring.Candidates(key)
				target = pri
				// Hot-set GETs alternate between the two candidate nodes:
				// the hot set is replicated on both, and spreading reads is
				// the whole point of the "hot" workload's cluster mode.
				if cfg.Workload == "hot" && !set && k < cfg.HotN && opRnd.Intn(2) == 1 {
					target = alt
				}
			}
			var err error
			switch {
			case incr:
				err = conns[target].QueueIncr(key, 1)
			case set:
				err = conns[target].QueueSet(key, value, cfg.TTL)
			default:
				err = conns[target].QueueGet(key)
			}
			if err != nil {
				st.err = err
				return
			}
			// Counter updates account like SETs: ops and errors only, no
			// hit-ratio contribution.
			isSet[target] = append(isSet[target], set || incr)
		}
		t0 := time.Now()
		for ci, conn := range conns {
			if conn.Pending() == 0 {
				continue
			}
			reps, err := conn.Flush()
			if err != nil {
				st.err = err
				return
			}
			sent += len(reps)
			st.ops += uint64(len(reps))
			for b, rep := range reps {
				switch {
				case rep.Err != nil:
					st.errors++
				case isSet[ci][b]:
					// Successful SETs count toward ops only; hit ratio is
					// a GET-side statistic.
				case rep.Found:
					st.hits++
				default:
					st.misses++
				}
			}
		}
		st.lat.Record(uint64(time.Since(t0)))
	}
}

// runConnTxn issues the "txn" workload: each batch becomes one MULTI…EXEC
// transaction of INCRs per touched node, so the batch RTT measures the
// server's OCC commit path instead of the pipelined fast path. In cluster
// mode keys group by primary node — MULTI…EXEC is single-node atomicity,
// so one transaction per node is what a correct client would ship.
func runConnTxn(cfg Config, ring *cluster.Ring, conns []*client.Conn, keys workload.KeyGen, st *connStats) {
	keyBuf := make([]byte, 0, 24)
	for sent := 0; sent < cfg.OpsPerConn; {
		batch := cfg.Batch
		if rem := cfg.OpsPerConn - sent; batch > rem {
			batch = rem
		}
		if cfg.Trace {
			id := client.NewTraceID()
			for _, conn := range conns {
				conn.SetTrace(id)
			}
		}
		txns := make([]*client.Txn, len(conns))
		for b := 0; b < batch; b++ {
			keyBuf = strconv.AppendUint(keyBuf[:0], keys.ExistingKey(), 16)
			key := "k" + string(keyBuf)
			target := 0
			if ring != nil {
				target, _ = ring.Candidates(key)
			}
			if txns[target] == nil {
				txns[target] = client.NewTxn()
			}
			txns[target].Incr(key, 1)
		}
		t0 := time.Now()
		for ci, txn := range txns {
			if txn == nil {
				continue
			}
			reps, err := conns[ci].ExecTxn(txn)
			if err != nil {
				st.err = err
				return
			}
			sent += len(reps)
			st.ops += uint64(len(reps))
			for _, rep := range reps {
				if rep.Err != nil {
					st.errors++
				}
			}
		}
		st.lat.Record(uint64(time.Since(t0)))
	}
}

// uniformUniverse draws uniform keys from a fixed universe [0, n), unlike
// workload.UniformKeys which generates fresh per-thread keys; a cache
// workload wants repeated keys so GETs can hit.
type uniformUniverse struct {
	rnd *workload.Rand
	n   uint64
}

func (u uniformUniverse) NextKey() uint64     { return u.rnd.Intn(u.n) }
func (u uniformUniverse) ExistingKey() uint64 { return u.rnd.Intn(u.n) }

// hotFrac is the share of "hot"-workload operations that land on the
// hot-set head; the remainder draw from the uniform tail so the cache
// still sees a realistic long tail of cold keys.
const hotFrac = 0.9

// hotSetKeys concentrates hotFrac of draws uniformly on keys [0, hot)
// and the rest on the tail [hot, n) — the hot-set read-scale-out
// workload of docs/REPLICATION.md.
type hotSetKeys struct {
	rnd *workload.Rand
	hot uint64
	n   uint64
}

func (h hotSetKeys) draw() uint64 {
	if h.rnd.Float64() < hotFrac || h.hot == h.n {
		return h.rnd.Intn(h.hot)
	}
	return h.hot + h.rnd.Intn(h.n-h.hot)
}

func (h hotSetKeys) NextKey() uint64     { return h.draw() }
func (h hotSetKeys) ExistingKey() uint64 { return h.draw() }
