package txn

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// mapKV is a mutex-guarded map backing store for tests. The stripe layer
// above serializes per-key access; the mutex only makes the map itself
// safe for concurrent access across distinct keys.
type mapKV struct {
	mu sync.Mutex
	m  map[string]string
}

func newMapKV() *mapKV { return &mapKV{m: make(map[string]string)} }

func (k *mapKV) Load(key string) (string, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.m[key]
	return v, ok
}

func (k *mapKV) Store(key, val string, expireAt int64, keepTTL bool) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.m[key] = val
	return nil
}

func (k *mapKV) Delete(key string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	_, ok := k.m[key]
	delete(k.m, key)
	return ok
}

func (k *mapKV) get(t *testing.T, key string) string {
	t.Helper()
	v, ok := k.Load(key)
	if !ok {
		t.Fatalf("key %q missing", key)
	}
	return v
}

func TestIncrBasics(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: -1})
	if err := s.Incr("c", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Incr("c", 41, 0); err != nil {
		t.Fatal(err)
	}
	if got := kv.get(t, "c"); got != "42" {
		t.Fatalf("c = %q, want 42", got)
	}
	if err := s.Incr("c", -2, 0); err != nil {
		t.Fatal(err)
	}
	if got := kv.get(t, "c"); got != "40" {
		t.Fatalf("c = %q, want 40", got)
	}
	if err := s.Set("junk", "not-a-number", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Incr("junk", 1, 0); err != ErrNotInteger {
		t.Fatalf("Incr on junk = %v, want ErrNotInteger", err)
	}
}

func TestMaxUpdate(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: -1})
	for _, n := range []int64{5, 3, 9, 7} {
		if err := s.MaxUpdate("m", n, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := kv.get(t, "m"); got != "9" {
		t.Fatalf("m = %q, want 9", got)
	}
}

func TestCAS(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{})
	if res, _ := s.CAS("k", "a", "b"); res != CASMiss {
		t.Fatalf("CAS on missing = %v, want CASMiss", res)
	}
	s.Set("k", "a", 0)
	if res, _ := s.CAS("k", "x", "b"); res != CASConflict {
		t.Fatalf("CAS wrong old = %v, want CASConflict", res)
	}
	if res, _ := s.CAS("k", "a", "b"); res != CASStored {
		t.Fatalf("CAS matching = %v, want CASStored", res)
	}
	if got := kv.get(t, "k"); got != "b" {
		t.Fatalf("k = %q, want b", got)
	}
	if got := s.StatsSnapshot().CASConflicts; got != 1 {
		t.Fatalf("CASConflicts = %d, want 1", got)
	}
}

func TestConcurrentIncrExact(t *testing.T) {
	// The headline counter-exactness property: G goroutines × N INCRs
	// each, across direct, contended, and split regimes, must sum
	// exactly — no lost or double-applied update.
	const goroutines, perG = 8, 5000
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: 1})
	// Promote the key up front: contention-driven promotion needs real
	// parallelism (TryLock failures), which GOMAXPROCS=1 CI boxes never
	// produce. The split/fold machinery is what this test races.
	s.noteContention("hot", classAdd)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < perG; n++ {
				if err := s.Incr("hot", 1, uint64(g)); err != nil {
					t.Errorf("Incr: %v", err)
					return
				}
				if n%64 == 0 {
					s.Tick() // interleave phase boundaries with updates
				}
			}
		}(g)
	}
	wg.Wait()
	s.ReconcileAll()
	if got := kv.get(t, "hot"); got != strconv.Itoa(goroutines*perG) {
		t.Fatalf("hot = %s, want %d", got, goroutines*perG)
	}
	st := s.StatsSnapshot()
	if st.SplitOps == 0 {
		t.Fatal("no ops took the split path; promotion never engaged")
	}
}

func TestContentionPromotes(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: 3})
	for i := 0; i < 2; i++ {
		s.noteContention("h", classAdd)
	}
	if _, hot := s.split.lookup("h"); hot {
		t.Fatal("promoted below threshold")
	}
	s.noteContention("h", classAdd)
	if _, hot := s.split.lookup("h"); !hot {
		t.Fatal("not promoted at threshold")
	}
	if got := s.StatsSnapshot().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
}

func TestReconcileOnRead(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: 1})
	// Force promotion by pre-seeding contention, then verify a read-side
	// reconcile folds pending deltas.
	s.noteContention("h", classAdd)
	if _, hot := s.split.lookup("h"); !hot {
		t.Fatal("h not promoted")
	}
	for i := 0; i < 10; i++ {
		s.Incr("h", 1, uint64(i))
	}
	if v, ok := kv.Load("h"); ok {
		t.Fatalf("h reconciled too early: %q", v)
	}
	s.ReconcileKey("h")
	if got := kv.get(t, "h"); got != "10" {
		t.Fatalf("h = %q, want 10 after read reconcile", got)
	}
}

func TestTickDemotesIdleKeys(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: 1})
	s.noteContention("h", classAdd)
	s.Incr("h", 3, 1)
	s.Tick() // folds 3
	if got := kv.get(t, "h"); got != "3" {
		t.Fatalf("h = %q, want 3", got)
	}
	s.Tick() // idle 1
	s.Tick() // idle 2 → demote
	if _, hot := s.split.lookup("h"); hot {
		t.Fatal("h still hot after two idle ticks")
	}
	if got := s.StatsSnapshot().Demotions; got != 1 {
		t.Fatalf("Demotions = %d, want 1", got)
	}
}

func TestSetAndDeleteFoldPendingDeltas(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{PromoteAfter: 1})
	s.noteContention("h", classAdd)
	s.Incr("h", 5, 0)
	// SET serializes after the pending INCRs: they fold, then the SET
	// overwrites.
	s.Set("h", "100", 0)
	if got := kv.get(t, "h"); got != "100" {
		t.Fatalf("h = %q, want 100", got)
	}
	s.Incr("h", 5, 0)
	s.Delete("h")
	if v, ok := kv.Load("h"); ok {
		t.Fatalf("h survived delete: %q", v)
	}
	// A delta arriving after the delete restarts the counter from zero.
	s.Incr("h", 7, 0)
	s.ReconcileAll()
	if got := kv.get(t, "h"); got != "7" {
		t.Fatalf("h = %q, want 7 after post-delete INCR", got)
	}
}

func TestExecReadYourWrites(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{})
	s.Set("a", "1", 0)
	res, info := s.Exec([]Op{
		{Kind: OpGet, Key: "a"},
		{Kind: OpSet, Key: "a", Val: "2"},
		{Kind: OpGet, Key: "a"},
		{Kind: OpIncr, Key: "a", Delta: 10},
		{Kind: OpGet, Key: "a"},
		{Kind: OpGet, Key: "missing"},
	})
	if info.Pessimistic {
		t.Fatal("uncontended txn took the pessimistic path")
	}
	want := []Result{
		{Status: StatusValue, Value: "1"},
		{Status: StatusOK},
		{Status: StatusValue, Value: "2"},
		{Status: StatusOK},
		{Status: StatusValue, Value: "12"},
		{Status: StatusMiss},
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("res[%d] = %+v, want %+v", i, res[i], want[i])
		}
	}
	if got := kv.get(t, "a"); got != "12" {
		t.Fatalf("a = %q, want 12 after commit", got)
	}
}

func TestExecCASAndDelete(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{})
	s.Set("k", "v1", 0)
	res, _ := s.Exec([]Op{
		{Kind: OpCAS, Key: "k", Old: "nope", Val: "v2"},
		{Kind: OpCAS, Key: "k", Old: "v1", Val: "v2"},
		{Kind: OpDel, Key: "k"},
		{Kind: OpDel, Key: "k"},
	})
	want := []Status{StatusConflict, StatusOK, StatusOK, StatusMiss}
	for i, w := range want {
		if res[i].Status != w {
			t.Fatalf("res[%d].Status = %v, want %v", i, res[i].Status, w)
		}
	}
	if _, ok := kv.Load("k"); ok {
		t.Fatal("k survived transactional delete")
	}
}

func TestExecAtomicTransfer(t *testing.T) {
	// Concurrent balance transfers preserve the invariant sum — the
	// classic OCC smoke test. Aborted validations must retry, and the
	// histogram must account for every commit.
	kv := newMapKV()
	s := New(kv, Config{Stripes: 8}) // few stripes → frequent conflicts
	s.Set("x", "1000", 0)
	s.Set("y", "1000", 0)
	const goroutines, transfers = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < transfers; n++ {
				s.Exec([]Op{
					{Kind: OpIncr, Key: "x", Delta: -1},
					{Kind: OpIncr, Key: "y", Delta: 1},
				})
			}
		}()
	}
	wg.Wait()
	x, _ := strconv.Atoi(kv.get(t, "x"))
	y, _ := strconv.Atoi(kv.get(t, "y"))
	if x+y != 2000 {
		t.Fatalf("x+y = %d, want 2000 (x=%d y=%d)", x+y, x, y)
	}
	if y != 1000+goroutines*transfers {
		t.Fatalf("y = %d, want %d", y, 1000+goroutines*transfers)
	}
	st := s.StatsSnapshot()
	var hist uint64
	for _, n := range st.RetryHist {
		hist += n
	}
	if hist != st.Commits {
		t.Fatalf("retry histogram sums to %d, commits = %d", hist, st.Commits)
	}
}

func TestExecPessimisticFallback(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{MaxRetries: 1, Stripes: 2})
	s.Set("a", "0", 0)
	// Hammer the same stripe from writers while transacting; with a
	// 1-retry budget some transactions must fall back, and every one
	// must still commit.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Set(fmt.Sprintf("w%d", i%16), "x", 0)
			}
		}
	}()
	for n := 0; n < 500; n++ {
		res, _ := s.Exec([]Op{{Kind: OpIncr, Key: "a", Delta: 1}})
		if res[0].Status != StatusOK {
			t.Fatalf("txn %d: %+v", n, res[0])
		}
	}
	close(stop)
	wg.Wait()
	if got := kv.get(t, "a"); got != "500" {
		t.Fatalf("a = %q, want 500", got)
	}
	st := s.StatsSnapshot()
	if st.Commits < 500 {
		t.Fatalf("commits = %d, want >= 500", st.Commits)
	}
}

func TestSplitShardPadding(t *testing.T) {
	// One shard per cache line: concurrent split updates from different
	// hints must not false-share.
	if sz := unsafe.Sizeof(splitShard{}); sz%64 != 0 {
		t.Fatalf("splitShard is %d bytes; want a multiple of 64", sz)
	}
}

func TestWithLockBumpsVersion(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{})
	i := s.stripeFor("k")
	before := s.locks.Version(i)
	s.WithLock("k", func() { kv.Store("k", "v", 0, false) })
	if after := s.locks.Version(i); after == before {
		t.Fatal("WithLock did not advance the stripe version")
	}
}

func TestEpochAbortOnMigration(t *testing.T) {
	kv := newMapKV()
	var epoch atomic.Uint64
	// The epoch source fires once mid-window: the first transactional
	// read observes epoch 0, then a "migration" bumps the word before
	// commit validation runs, so the first attempt must abort and the
	// retry (which observes the settled epoch 1) must commit.
	var reads atomic.Uint64
	s := New(kv, Config{
		PromoteAfter: -1,
		Epoch: func(key string) uint64 {
			if reads.Add(1) == 1 {
				defer epoch.Add(1)
			}
			return epoch.Load()
		},
	})
	if err := s.Set("a", "1", 0); err != nil {
		t.Fatal(err)
	}
	res, info := s.Exec([]Op{{Kind: OpIncr, Key: "a", Delta: 1}})
	if res[0].Status != StatusOK {
		t.Fatalf("result = %+v", res[0])
	}
	if info.Retries == 0 {
		t.Fatal("expected at least one epoch-driven retry")
	}
	if got := kv.get(t, "a"); got != "2" {
		t.Fatalf("a = %q, want 2", got)
	}
	st := s.StatsSnapshot()
	if st.EpochAborts == 0 {
		t.Fatal("EpochAborts not counted")
	}
	if st.Aborts < st.EpochAborts {
		t.Fatalf("Aborts=%d < EpochAborts=%d", st.Aborts, st.EpochAborts)
	}
}

func TestEpochStableCommitsFirstTry(t *testing.T) {
	kv := newMapKV()
	s := New(kv, Config{
		PromoteAfter: -1,
		Epoch:        func(string) uint64 { return 7 },
	})
	if err := s.Set("a", "1", 0); err != nil {
		t.Fatal(err)
	}
	res, info := s.Exec([]Op{{Kind: OpIncr, Key: "a", Delta: 1}})
	if res[0].Status != StatusOK || info.Retries != 0 {
		t.Fatalf("res=%+v info=%+v, want clean first-try commit", res[0], info)
	}
	if st := s.StatsSnapshot(); st.EpochAborts != 0 {
		t.Fatalf("EpochAborts = %d, want 0", st.EpochAborts)
	}
}
