package txn

import "sync/atomic"

// storeStats are the subsystem's internal counters. Everything is a
// plain atomic bumped off the fast path (commit points, aborts,
// reconciles) — never per split op: splitOps is credited in bulk at
// fold time from the drained slots' op counts.
type storeStats struct {
	commits      atomic.Uint64
	aborts       atomic.Uint64
	epochAborts  atomic.Uint64
	fallbacks    atomic.Uint64
	casConflicts atomic.Uint64
	splitOps     atomic.Uint64
	reconciles   atomic.Uint64
	promotions   atomic.Uint64
	demotions    atomic.Uint64

	// retryHist[i] counts transactions that committed after exactly i
	// OCC retries; the last bucket is the pessimistic fallback.
	retryHist []atomic.Uint64
}

func (st *storeStats) init(maxRetries int) {
	st.retryHist = make([]atomic.Uint64, maxRetries+2)
}

func (st *storeStats) recordRetries(n int) {
	if n >= len(st.retryHist) {
		n = len(st.retryHist) - 1
	}
	st.retryHist[n].Add(1)
}

// Stats is a point-in-time snapshot of the subsystem's counters.
type Stats struct {
	// Commits counts transactions that reached their commit point,
	// optimistically or via the pessimistic fallback.
	Commits uint64
	// Aborts counts OCC validation failures (each one is retried).
	Aborts uint64
	// EpochAborts is the subset of Aborts caused by a shard migration
	// epoch moving under a read-set entry (incremental resize in flight).
	EpochAborts uint64
	// Fallbacks counts transactions that exhausted the retry budget and
	// committed under stripe-ordered pessimistic locks.
	Fallbacks uint64
	// CASConflicts counts single-key CAS operations that found a
	// different value.
	CASConflicts uint64
	// SplitOps counts commutative updates absorbed by per-shard split
	// state instead of the key's stripe.
	SplitOps uint64
	// Reconciles counts split-delta folds into canonical values.
	Reconciles uint64
	// Promotions and Demotions count hot-set membership changes.
	Promotions uint64
	Demotions  uint64
	// RetryHist[i] is the number of transactions that committed after
	// exactly i OCC retries; the final bucket is the pessimistic
	// fallback. Bounded length: MaxRetries + 2.
	RetryHist []uint64
	// HotKeys is the current number of split (promoted) keys.
	HotKeys int64
}

// StatsSnapshot returns the current counters.
func (s *Store) StatsSnapshot() Stats {
	st := Stats{
		Commits:      s.stats.commits.Load(),
		Aborts:       s.stats.aborts.Load(),
		EpochAborts:  s.stats.epochAborts.Load(),
		Fallbacks:    s.stats.fallbacks.Load(),
		CASConflicts: s.stats.casConflicts.Load(),
		SplitOps:     s.stats.splitOps.Load(),
		Reconciles:   s.stats.reconciles.Load(),
		Promotions:   s.stats.promotions.Load(),
		Demotions:    s.stats.demotions.Load(),
		HotKeys:      s.split.hotCount.Load(),
	}
	st.RetryHist = make([]uint64, len(s.stats.retryHist))
	for i := range s.stats.retryHist {
		st.RetryHist[i] = s.stats.retryHist[i].Load()
	}
	return st
}

// MaxRetries reports the configured OCC retry budget (the retry
// histogram has MaxRetries+2 buckets).
func (s *Store) MaxRetries() int { return s.cfg.MaxRetries }
