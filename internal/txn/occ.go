package txn

import (
	"runtime"
	"strconv"
)

// OpKind enumerates the operations a transaction may queue.
type OpKind uint8

const (
	// OpGet reads a key.
	OpGet OpKind = iota
	// OpSet writes Val (with ExpireAt as the absolute expiry, 0 = none).
	OpSet
	// OpDel removes a key.
	OpDel
	// OpIncr adds Delta to the integer at Key.
	OpIncr
	// OpMax raises the integer at Key to Delta if larger.
	OpMax
	// OpCAS replaces the value with Val if it currently equals Old.
	OpCAS
)

// Op is one queued operation of a multi-key transaction.
type Op struct {
	Kind     OpKind
	Key      string
	Val      string
	Old      string // OpCAS expected value
	Delta    int64  // OpIncr / OpMax operand
	ExpireAt int64  // OpSet absolute expiry, unix nanoseconds
}

// Status classifies one op's result on the wire.
type Status uint8

const (
	// StatusOK: the op applied (SET/DEL-present/INCR/MAX/CAS-stored).
	StatusOK Status = iota
	// StatusValue: a GET hit; Result.Value holds the value.
	StatusValue
	// StatusMiss: GET/DEL/CAS on an absent key.
	StatusMiss
	// StatusConflict: CAS found a different value.
	StatusConflict
	// StatusErr: the op failed; Result.Err describes why. The remaining
	// ops still ran — op-level errors do not abort the transaction.
	StatusErr
)

// Result is one op's outcome.
type Result struct {
	Status Status
	Value  string
	Err    string
}

// ExecInfo reports how a transaction committed.
type ExecInfo struct {
	// Retries is how many OCC validation failures preceded the commit.
	Retries int
	// Pessimistic is set when the retry budget ran out and the
	// transaction committed under stripe-ordered locks instead.
	Pessimistic bool
}

// cell is the transaction-local view of one key during the read phase.
type cell struct {
	val      string
	ok       bool
	ver      uint64
	epoch    uint64 // shard migration epoch at read time (cfg.Epoch set)
	read     bool   // version recorded; must validate at commit
	dirty    bool   // buffered write; must apply at commit
	deleted  bool
	expireAt int64
	keepTTL  bool
}

// epochOf reads key's shard migration epoch, or 0 when no source is
// configured (then every check trivially passes).
func (s *Store) epochOf(key string) uint64 {
	if s.cfg.Epoch == nil {
		return 0
	}
	return s.cfg.Epoch(key)
}

// Exec runs ops as one atomic multi-key transaction and returns a result
// per op. The engine is optimistic, per the paper's Eq. 1 reads: the
// read phase snapshots each key's stripe version and value without
// locking, ops execute against that private view, and commit re-checks
// every recorded version under the write set's sorted stripe locks. A
// concurrent writer moves a version, validation fails, and the attempt
// retries from scratch; after MaxRetries failures the transaction takes
// every stripe up front (ascending order, the §4.4 LockPair discipline
// generalized) and cannot abort.
func (s *Store) Exec(ops []Op) ([]Result, ExecInfo) {
	return s.ExecSpan(ops, nil)
}

// tryExec is one optimistic attempt: versioned reads, private execution,
// validate-and-apply under sorted stripe locks. ok is false on an abort.
func (s *Store) tryExec(ops []Op) ([]Result, bool) {
	env := make(map[string]*cell, len(ops))
	res := make([]Result, len(ops))
	for i := range ops {
		op := &ops[i]
		c := env[op.Key]
		if c == nil {
			c = &cell{}
			env[op.Key] = c
		}
		// Ops that observe the current value pull it in with a versioned
		// read the commit will re-check; a blind SET does not need one
		// (its stripe is still locked at commit to apply the write).
		needsRead := op.Kind != OpSet
		if needsRead && !c.read && !c.dirty {
			// The epoch snapshot precedes the value read so that any
			// generation change overlapping the read→commit window is
			// caught by the commit-time re-check.
			c.epoch = s.epochOf(op.Key)
			val, ok, ver := s.readVersioned(op.Key)
			c.val, c.ok, c.ver, c.read = val, ok, ver, true
		}
		res[i] = applyToCell(op, c)
	}

	// Commit: lock the distinct stripes of every touched key in
	// ascending order, re-validate the read versions, then flush the
	// buffered writes. The version bump on unlock publishes the commit
	// to every other optimistic reader.
	stripes := make([]uint64, 0, len(env))
	for key := range env {
		stripes = append(stripes, s.stripeFor(key))
	}
	held := s.locks.LockOrdered(stripes)
	for key, c := range env {
		if !c.read {
			continue
		}
		if s.locks.Version(s.stripeFor(key)) != c.ver {
			s.locks.UnlockOrdered(held)
			return nil, false
		}
		// A shard that started or finished an incremental resize since the
		// read may have rehashed this entry between generations; the
		// stripe version cannot see that, so the epoch word aborts it.
		if s.epochOf(key) != c.epoch {
			s.locks.UnlockOrdered(held)
			s.stats.epochAborts.Add(1)
			return nil, false
		}
	}
	for key, c := range env {
		if !c.dirty {
			continue
		}
		if c.deleted {
			s.kv.Delete(key)
		} else if err := s.kv.Store(key, c.val, c.expireAt, c.keepTTL); err != nil {
			// A full shard surfaces on the op that buffered the write.
			for i := range ops {
				if ops[i].Key == key && res[i].Status == StatusOK {
					res[i] = Result{Status: StatusErr, Err: err.Error()}
				}
			}
		}
	}
	s.locks.UnlockOrdered(held)
	return res, true
}

// readVersioned performs one optimistic versioned read of key: snapshot
// the stripe version, read the value, validate the version (Eq. 1). It
// spins until a quiescent read succeeds.
func (s *Store) readVersioned(key string) (string, bool, uint64) {
	i := s.stripeFor(key)
	for spins := 0; ; spins++ {
		ver, unlocked := s.locks.Snapshot(i)
		if unlocked {
			val, ok := s.kv.Load(key)
			if s.locks.Validate(i, ver) {
				return val, ok, ver
			}
		}
		if spins >= 64 {
			runtime.Gosched()
			spins = 0
		}
	}
}

// applyToCell executes one op against the transaction's private view,
// buffering writes in the cell.
func applyToCell(op *Op, c *cell) Result {
	switch op.Kind {
	case OpGet:
		if !c.ok {
			return Result{Status: StatusMiss}
		}
		return Result{Status: StatusValue, Value: c.val}
	case OpSet:
		c.val, c.ok = op.Val, true
		c.dirty, c.deleted = true, false
		c.expireAt, c.keepTTL = op.ExpireAt, false
		return Result{Status: StatusOK}
	case OpDel:
		was := c.ok
		c.val, c.ok = "", false
		c.dirty, c.deleted = true, true
		if !was {
			return Result{Status: StatusMiss}
		}
		return Result{Status: StatusOK}
	case OpIncr, OpMax:
		var n int64
		if c.ok {
			v, err := strconv.ParseInt(c.val, 10, 64)
			if err != nil {
				return Result{Status: StatusErr, Err: ErrNotInteger.Error()}
			}
			n = v
		}
		if op.Kind == OpIncr {
			n += op.Delta
		} else if c.ok && n >= op.Delta {
			return Result{Status: StatusOK} // already at least Delta
		} else {
			n = op.Delta
		}
		c.val, c.ok = strconv.FormatInt(n, 10), true
		c.dirty, c.deleted = true, false
		c.keepTTL = true
		return Result{Status: StatusOK}
	case OpCAS:
		switch {
		case !c.ok:
			return Result{Status: StatusMiss}
		case c.val != op.Old:
			return Result{Status: StatusConflict}
		default:
			c.val = op.Val
			c.dirty, c.deleted = true, false
			c.keepTTL = true
			return Result{Status: StatusOK}
		}
	}
	return Result{Status: StatusErr, Err: "unknown op"}
}

// execPessimistic is the fallback after the OCC retry budget: take every
// touched stripe in ascending order first, run the ops directly against
// the backing store, release. It cannot abort, which bounds transaction
// latency under adversarial contention.
func (s *Store) execPessimistic(ops []Op) []Result {
	stripes := make([]uint64, 0, len(ops))
	for i := range ops {
		stripes = append(stripes, s.stripeFor(ops[i].Key))
	}
	held := s.locks.LockOrdered(stripes)
	res := make([]Result, len(ops))
	env := make(map[string]*cell, len(ops))
	for i := range ops {
		op := &ops[i]
		c := env[op.Key]
		if c == nil {
			c = &cell{}
			val, ok := s.kv.Load(op.Key)
			c.val, c.ok = val, ok
			env[op.Key] = c
		}
		res[i] = applyToCell(op, c)
	}
	for key, c := range env {
		if !c.dirty {
			continue
		}
		if c.deleted {
			s.kv.Delete(key)
		} else if err := s.kv.Store(key, c.val, c.expireAt, c.keepTTL); err != nil {
			for i := range ops {
				if ops[i].Key == key && res[i].Status == StatusOK {
					res[i] = Result{Status: StatusErr, Err: err.Error()}
				}
			}
		}
	}
	s.locks.UnlockOrdered(held)
	return res
}
