// Package txn is cuckootxn, the read-modify-write subsystem layered over
// the cache: atomic single-key verbs (INCR/DECR/ADD/MAXUPDATE/CAS),
// multi-key transactions with optimistic concurrency control, and
// Doppel-style split counters for contended commutative updates.
//
// The design reuses the paper's central trick one level up. §4.2 gives
// every bucket stripe a combined lock/version word so readers validate
// instead of locking (Eq. 1); cuckootxn keeps a second, per-key stripe
// table of the same words and turns them into an OCC read set: a
// transaction records the stripe versions it read, re-checks them under
// sorted stripe locks at commit, and retries on mismatch. The §4.4
// ascending-order rule that LockPair applies to a displacement's two
// buckets generalizes to LockOrdered over a commit's whole stripe set.
//
// For commutative verbs on skewed workloads, even perfect stripes melt:
// every INCR of one hot key serializes on one word. Doppel (Narula et
// al., OSDI 2014) splits such keys: during a split phase, commutative
// updates land in per-shard delta slots and the canonical value is
// reconciled on read or at phase ticks. Because a split op cannot
// observe the value, the commutative verbs reply OK without returning
// the new count — that contract is what makes the split legal.
//
// Lock hierarchy (outermost first): key stripe → backing-store internals
// (table bucket stripes, eviction-ring mutexes) and split-shard mutexes.
// Split-shard mutexes and the backing store are never held while a key
// stripe is being acquired, and multi-stripe acquisition happens only
// through spinlock.LockOrdered, so the hierarchy is cycle-free.
package txn

import (
	"errors"
	"hash/maphash"
	"strconv"

	"cuckoohash/internal/spinlock"
)

// KV is the backing store the transaction layer mediates access to. The
// contract: every mutation of a key routed through this interface happens
// while the Store holds that key's stripe (the Store guarantees this),
// so stripe versions invalidate optimistic readers exactly when the
// underlying value may have changed. Load must return only live values.
type KV interface {
	Load(key string) (val string, ok bool)
	// Store writes val. When keepTTL is set the entry's current expiry is
	// preserved (counter updates must not clobber a TTL); otherwise
	// expireAt (unix nanoseconds, 0 = never) becomes the new expiry.
	Store(key, val string, expireAt int64, keepTTL bool) error
	Delete(key string) bool
}

// ErrNotInteger is returned when an arithmetic verb lands on a value that
// does not parse as a signed 64-bit integer.
var ErrNotInteger = errors.New("value is not an integer")

// Config tunes a Store. The zero value picks usable defaults.
type Config struct {
	// Stripes is the per-key version/lock table size (power of two,
	// default 1024). More stripes mean fewer false OCC conflicts.
	Stripes int
	// SplitShards is the number of padded delta shards hot keys split
	// across (power of two, default 16).
	SplitShards int
	// PromoteAfter is how many contended stripe acquisitions a key
	// accumulates before it is promoted to split mode. Negative disables
	// splitting entirely (every op takes the stripe). Default 8.
	PromoteAfter int
	// MaxRetries bounds OCC commit retries before a transaction falls
	// back to pessimistic stripe-ordered locking. Default 8.
	MaxRetries int
	// Epoch, when non-nil, maps a key to its backing shard's migration
	// epoch (a word the table bumps whenever an incremental resize starts
	// or finishes a generation). Transactions record it alongside each
	// versioned read and re-check it at commit: a read-set entry whose
	// shard migrated during the window aborts the attempt cleanly instead
	// of committing against a view that straddled two generations.
	Epoch func(key string) uint64
}

func (c *Config) setDefaults() {
	if c.Stripes == 0 {
		c.Stripes = 1024
	}
	if c.SplitShards == 0 {
		c.SplitShards = 16
	}
	if c.PromoteAfter == 0 {
		c.PromoteAfter = 8
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
}

// Store runs atomic verbs and transactions against a KV. All methods are
// safe for concurrent use.
type Store struct {
	kv    KV
	seed  maphash.Seed
	locks *spinlock.Stripe
	split *splitTable
	cfg   Config
	stats storeStats
}

// New creates a transaction layer over kv.
func New(kv KV, cfg Config) *Store {
	cfg.setDefaults()
	if cfg.Stripes&(cfg.Stripes-1) != 0 || cfg.Stripes <= 0 {
		panic("txn: Stripes must be a positive power of two")
	}
	s := &Store{
		kv:    kv,
		seed:  maphash.MakeSeed(),
		locks: spinlock.NewStripe(cfg.Stripes),
		cfg:   cfg,
	}
	s.split = newSplitTable(cfg.SplitShards)
	s.stats.init(cfg.MaxRetries)
	return s
}

// stripeFor maps a key to its version/lock stripe.
func (s *Store) stripeFor(key string) uint64 {
	return s.locks.IndexFor(maphash.String(s.seed, key))
}

// WithLock runs fn while holding key's stripe, first folding any pending
// split deltas so fn observes the reconciled value. Every out-of-band
// mutation of the backing store (plain SET/DEL, TTL expiry, eviction,
// cluster migration removal) must run through here: the version bump on
// unlock is what invalidates concurrent optimistic read sets.
func (s *Store) WithLock(key string, fn func()) {
	s.WithLockSpan(key, nil, fn)
}

// Set writes key=val with the given absolute expiry under the key's
// stripe, reconciling pending deltas first (they serialize before the
// overwrite). It returns the backing store's error unchanged so callers
// can drive eviction-and-retry outside the stripe.
func (s *Store) Set(key, val string, expireAt int64) error {
	return s.SetSpan(key, val, expireAt, nil)
}

// Delete removes key under its stripe. Pending deltas are folded first,
// then discarded with the entry; deltas that arrive afterwards serialize
// after the delete and re-create the counter from zero.
func (s *Store) Delete(key string) bool {
	return s.DeleteSpan(key, nil)
}

// Incr atomically adds delta to the signed 64-bit integer stored at key
// (a missing key counts from zero; int64 arithmetic wraps on overflow).
// hint spreads split-mode updates across delta shards — pass a stable
// per-worker value such as a connection id. The new count is not
// returned: during a split phase no single core knows it, which is
// exactly the property that lets hot counters scale (Doppel).
func (s *Store) Incr(key string, delta int64, hint uint64) error {
	return s.IncrSpan(key, delta, hint, nil)
}

// MaxUpdate atomically raises the integer at key to n if n is larger
// (a missing key is treated as having no value, so n is stored). Like
// Incr it is commutative and split-eligible, and returns no value.
func (s *Store) MaxUpdate(key string, n int64, hint uint64) error {
	return s.MaxUpdateSpan(key, n, hint, nil)
}

// CASResult is the outcome of a CAS.
type CASResult int

const (
	// CASStored: the value matched old and was replaced.
	CASStored CASResult = iota
	// CASMiss: the key does not exist.
	CASMiss
	// CASConflict: the current value differs from old.
	CASConflict
)

// CAS replaces key's value with newVal only if it currently equals old.
// CAS observes the value, so it is never split; it always takes the
// stripe and reconciles pending deltas first.
func (s *Store) CAS(key, old, newVal string) (CASResult, error) {
	return s.CASSpan(key, old, newVal, nil)
}

// applyAddLocked performs the read-modify-write of an arithmetic add.
// Caller holds key's stripe.
func (s *Store) applyAddLocked(key string, delta int64) error {
	cur, ok := s.kv.Load(key)
	var n int64
	if ok {
		v, err := strconv.ParseInt(cur, 10, 64)
		if err != nil {
			return ErrNotInteger
		}
		n = v
	}
	//lint:allow cuckoovet:allocfree the re-encoded value string is the write; split mode batches these to one per fold
	return s.kv.Store(key, strconv.FormatInt(n+delta, 10), 0, true)
}

// applyMaxLocked performs the read-modify-write of MAXUPDATE. Caller
// holds key's stripe.
func (s *Store) applyMaxLocked(key string, n int64) error {
	cur, ok := s.kv.Load(key)
	if ok {
		v, err := strconv.ParseInt(cur, 10, 64)
		if err != nil {
			return ErrNotInteger
		}
		if v >= n {
			return nil
		}
	}
	//lint:allow cuckoovet:allocfree the re-encoded value string is the write; split mode batches these to one per fold
	return s.kv.Store(key, strconv.FormatInt(n, 10), 0, true)
}

// ReconcileKey folds key's pending split deltas into the backing store
// if the key is hot; a cold key costs one atomic load. Read paths call
// this so a GET observes every acknowledged commutative update.
func (s *Store) ReconcileKey(key string) {
	if _, ok := s.split.lookup(key); !ok {
		return
	}
	i := s.stripeFor(key)
	s.locks.Lock(i)
	s.reconcileIfHotLocked(key)
	s.locks.Unlock(i)
}

// ReconcileKeyBytes is ReconcileKey for a key still in byte-slice form
// (the server's GET path aliases its read buffer). The hot-set probe
// uses the compiler's free map[string(b)] lookup, so the common states —
// no hot keys at all, or a cold key — convert nothing; only a key that
// is actually hot pays the string copy, and its fold dwarfs that cost.
//
//cuckoo:hotpath GET-path split-counter fold gate; cold keys allocate nothing
func (s *Store) ReconcileKeyBytes(key []byte) {
	m := s.split.hot.Load()
	if m == nil {
		return
	}
	if _, ok := (*m)[string(key)]; !ok {
		return
	}
	//lint:allow cuckoovet:allocfree only a promoted hot key reaches this copy; the fold it gates is far more expensive
	s.ReconcileKey(string(key))
}
