package txn

import (
	"strconv"
	"sync"
	"sync/atomic"

	"cuckoohash/internal/spinlock"
)

// Operation classes a key can be split for. A key splits for exactly one
// class at a time: ADD and MAX are each commutative with themselves but
// not with each other, so mixing them on one hot key forces a reconcile
// (Doppel runs non-commutative ops only between split phases).
const (
	classAdd = uint8(iota)
	classMax
)

// hotEntry is one promoted key's state in the copy-on-write hot set.
type hotEntry struct {
	class uint8
	// idleTicks counts consecutive phase ticks that folded no deltas;
	// two idle ticks demote the key back to direct stripe updates.
	idleTicks uint8
	// slots[i] is this key's pre-registered delta in shard i: promotion
	// pays for the shard-map insertions once, so the split fast path
	// reaches its slot with an index, not a second keyed lookup.
	slots []*delta
}

// delta is the pending commutative state for one key in one shard.
type delta struct {
	class uint8
	// dead marks a delta unlinked from its shard map at demotion. A
	// straggler that cached the pointer through a stale hot set must
	// fall back to the stripe path rather than write into an object no
	// fold will ever visit again. Guarded by the owning shard's mutex.
	dead bool
	add  int64
	max  int64
	ops  uint64
}

// splitShard is one padded shard of pending deltas. Updates take only
// the shard's spinlock — never a key stripe — so a split-phase INCR
// touches no cache line shared with another core's split ops. A spinlock
// rather than sync.Mutex because the folds (drainZero, drainRemove) run
// with the key's stripe held: the holder of a stripe must never park.
// The padding keeps adjacent shards off each other's lines (the paper's
// principle P1, same reasoning as metrics.OpCounter).
type splitShard struct {
	mu     spinlock.Mutex
	deltas map[string]*delta
	_      [64 - 8 - 8]byte // spinlock (4, padded to 8) + map header (8) → one 64-byte line
}

// splitTable routes hot-key commutative updates to per-shard delta slots.
type splitTable struct {
	shards []splitShard
	mask   uint64

	// hotCount gates the fast path: when zero (no promoted keys, the
	// common state), hotClass is a single atomic load and no map is
	// touched. hot is copy-on-write: readers load the pointer lock-free;
	// promote/demote copy the map under promoteMu and swap the pointer.
	hotCount atomic.Int64
	hot      atomic.Pointer[map[string]hotEntry]

	promoteMu sync.Mutex
	contend   map[string]int
}

func newSplitTable(shards int) *splitTable {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("txn: SplitShards must be a positive power of two")
	}
	t := &splitTable{
		shards:  make([]splitShard, shards),
		mask:    uint64(shards - 1),
		contend: make(map[string]int),
	}
	for i := range t.shards {
		t.shards[i].deltas = make(map[string]*delta)
	}
	return t
}

// lookup returns key's split state when key is currently hot. The hot
// set pointer is nil whenever the set is empty (the common state), so
// the cold path is one atomic pointer load and no map access; with a
// non-empty hot set it is one lock-free map lookup.
func (t *splitTable) lookup(key string) (hotEntry, bool) {
	m := t.hot.Load()
	if m == nil {
		return hotEntry{}, false
	}
	e, ok := (*m)[key]
	return e, ok
}

// add records a pending ADD in the hint's shard slot. It reports false
// when the slot is dead — the key was demoted between the caller's hot
// lookup and here — and the caller must apply on the stripe path instead.
func (t *splitTable) add(e hotEntry, d int64, hint uint64) bool {
	i := hint & t.mask
	p := e.slots[i]
	sh := &t.shards[i]
	sh.mu.Lock()
	if p.dead {
		sh.mu.Unlock()
		return false
	}
	p.add += d
	p.ops++
	sh.mu.Unlock()
	return true
}

// max records a pending MAXUPDATE in the hint's shard slot, with the
// same dead-slot contract as add.
func (t *splitTable) max(e hotEntry, n int64, hint uint64) bool {
	i := hint & t.mask
	p := e.slots[i]
	sh := &t.shards[i]
	sh.mu.Lock()
	if p.dead {
		sh.mu.Unlock()
		return false
	}
	if p.ops == 0 || n > p.max {
		p.max = n
	}
	p.ops++
	sh.mu.Unlock()
	return true
}

// drainZero folds a still-hot key's pending deltas in place: each slot
// is zeroed but stays registered in its shard map, so the next split op
// reuses it. Caller holds key's stripe.
func (t *splitTable) drainZero(e hotEntry) (addSum int64, maxVal int64, haveMax bool, ops uint64) {
	for i := range t.shards {
		sh := &t.shards[i]
		p := e.slots[i]
		sh.mu.Lock()
		if p.ops > 0 {
			addSum += p.add
			if p.class == classMax && (!haveMax || p.max > maxVal) {
				maxVal, haveMax = p.max, true
			}
			ops += p.ops
			p.add, p.max, p.ops = 0, 0, 0
		}
		sh.mu.Unlock()
	}
	return addSum, maxVal, haveMax, ops
}

// drainRemove unlinks and returns a demoted key's deltas from every
// shard, marking each dead so stragglers holding cached slot pointers
// divert to the stripe path. After this, no state for key remains in any
// shard and none can silently reappear. Caller holds key's stripe.
func (t *splitTable) drainRemove(key string) (addSum int64, maxVal int64, haveMax bool, ops uint64) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		p, ok := sh.deltas[key]
		if ok {
			delete(sh.deltas, key)
			p.dead = true
		}
		sh.mu.Unlock()
		if !ok {
			continue
		}
		if p.ops > 0 {
			addSum += p.add
			if p.class == classMax && (!haveMax || p.max > maxVal) {
				maxVal, haveMax = p.max, true
			}
			ops += p.ops
		}
	}
	return addSum, maxVal, haveMax, ops
}

// pendingKeys snapshots every key registered in any shard: all hot keys
// (their slots stay registered while promoted, pending or not) plus any
// demoted key whose final fold has not run yet. Tick folds each one;
// zero-pending folds are free.
func (t *splitTable) pendingKeys() map[string]struct{} {
	keys := make(map[string]struct{})
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k := range sh.deltas {
			keys[k] = struct{}{}
		}
		sh.mu.Unlock()
	}
	return keys
}

// noteContention charges one contended stripe acquisition to key and
// promotes it to split mode once the configured threshold is reached.
// Called only from the already-contended slow path, so the bookkeeping
// mutex is off the uncontended fast path entirely.
//
//cuckoo:coldpath promotion bookkeeping runs only on contended acquisitions, never on the uncontended per-op path
func (s *Store) noteContention(key string, class uint8) {
	t := s.split
	t.promoteMu.Lock()
	t.contend[key]++
	if t.contend[key] >= s.cfg.PromoteAfter {
		delete(t.contend, key)
		if t.insertHotLocked(key, class) {
			s.stats.promotions.Add(1)
		}
	}
	t.promoteMu.Unlock()
}

// Promote forces key into split mode for the commutative-add class, as
// if it had crossed the contention threshold. Benchmarks and tests use
// it to measure split-phase behaviour deterministically: organic
// promotion depends on TryLock collisions, which are scheduler-timing
// dependent (and rare under GOMAXPROCS=1). Returns false when splitting
// is disabled or the key is already hot.
func (s *Store) Promote(key string) bool {
	if s.cfg.PromoteAfter < 0 {
		return false
	}
	t := s.split
	t.promoteMu.Lock()
	ok := t.insertHotLocked(key, classAdd)
	t.promoteMu.Unlock()
	if ok {
		s.stats.promotions.Add(1)
	}
	return ok
}

// insertHotLocked adds key to the copy-on-write hot set and registers
// one delta slot per shard. Caller holds promoteMu. Returns false if the
// key was already hot.
func (t *splitTable) insertHotLocked(key string, class uint8) bool {
	old := t.hot.Load()
	if old != nil {
		if _, ok := (*old)[key]; ok {
			return false
		}
	}
	slots := make([]*delta, len(t.shards))
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if p, ok := sh.deltas[key]; ok {
			// A previous hot life left a not-yet-folded straggler; adopt
			// it so its pending ops fold with the new life's.
			slots[i] = p
		} else {
			p := &delta{class: class}
			sh.deltas[key] = p
			slots[i] = p
		}
		sh.mu.Unlock()
	}
	next := make(map[string]hotEntry, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = hotEntry{class: class, slots: slots}
	t.hot.Store(&next)
	t.hotCount.Add(1)
	return true
}

// reconcileIfHotLocked folds key's pending deltas into the backing
// store. Caller holds key's stripe. Unparsable existing values (a SET
// overwrote a split counter with garbage) are treated as zero: the
// acknowledged commutative ops cannot be reported as failed after the
// fact, so folding onto zero is the least surprising recovery.
func (s *Store) reconcileIfHotLocked(key string) {
	if s.split.hotCount.Load() == 0 {
		return
	}
	if _, ok := s.split.lookup(key); !ok {
		return
	}
	s.foldLocked(key)
}

// foldLocked drains and applies key's pending deltas: in place for a
// still-hot key, unlinking the slots for a demoted one. Caller holds
// key's stripe.
//
//cuckoo:coldpath a fold runs once per phase tick (or on a hot key's first stripe op), not per operation
func (s *Store) foldLocked(key string) uint64 {
	var addSum, maxVal int64
	var haveMax bool
	var ops uint64
	if e, ok := s.split.lookup(key); ok {
		addSum, maxVal, haveMax, ops = s.split.drainZero(e)
	} else {
		addSum, maxVal, haveMax, ops = s.split.drainRemove(key)
	}
	if ops == 0 {
		return 0
	}
	s.stats.splitOps.Add(ops)
	var cur int64
	if v, ok := s.kv.Load(key); ok {
		cur, _ = strconv.ParseInt(v, 10, 64)
	}
	n := cur + addSum
	if haveMax && maxVal > n {
		n = maxVal
	}
	// Best effort: a full backing store drops the fold (counters on a
	// shard that cannot even hold the key are already lost causes), but
	// the drained deltas were removed, so count the reconcile regardless.
	_ = s.kv.Store(key, strconv.FormatInt(n, 10), 0, true)
	s.stats.reconciles.Add(1)
	return ops
}

// Tick runs one split-phase boundary: every pending delta is folded into
// its canonical value, and hot keys that were idle for two consecutive
// ticks are demoted. Call it periodically (tens of milliseconds — the
// phase length bounds read staleness) from a single goroutine.
func (s *Store) Tick() {
	t := s.split
	hot := t.hot.Load()

	// Fold every key with queued deltas, hot or not: a key demoted while
	// an update raced hotClass can leave a straggler delta behind, and
	// this sweep is what guarantees it still lands.
	folded := make(map[string]uint64)
	for key := range t.pendingKeys() {
		i := s.stripeFor(key)
		s.locks.Lock(i)
		folded[key] = s.foldLocked(key)
		s.locks.Unlock(i)
	}

	if hot == nil {
		return
	}
	// Demote hot keys that have gone quiet so the hot set tracks the
	// workload's current skew rather than its history. Reload the hot
	// set under promoteMu: a promotion may have raced the fold above,
	// and rebuilding from a stale snapshot would silently drop it.
	t.promoteMu.Lock()
	hot = t.hot.Load()
	var demote []string
	next := make(map[string]hotEntry, len(*hot))
	for k, e := range *hot {
		if folded[k] == 0 {
			e.idleTicks++
		} else {
			e.idleTicks = 0
		}
		if e.idleTicks >= 2 {
			demote = append(demote, k)
			continue
		}
		next[k] = e
	}
	// Store the rebuilt map even with no demotions: the idle-tick
	// counters must persist across phases to ever reach the threshold.
	// An empty set stores nil so lookup's cold path stays map-free.
	if len(next) == 0 {
		t.hot.Store(nil)
	} else {
		t.hot.Store(&next)
	}
	if len(demote) > 0 {
		t.hotCount.Add(int64(-len(demote)))
		s.stats.demotions.Add(uint64(len(demote)))
	}
	t.promoteMu.Unlock()

	// Post-demotion sweep: an update that loaded the old hot set during
	// the swap may have parked one more delta; fold it now rather than
	// waiting a full phase.
	for _, k := range demote {
		i := s.stripeFor(k)
		s.locks.Lock(i)
		s.foldLocked(k)
		s.locks.Unlock(i)
	}
}

// ReconcileAll folds every pending delta. Call on drain before taking a
// persistent snapshot so no acknowledged commutative op is left sitting
// in a delta shard.
func (s *Store) ReconcileAll() {
	for key := range s.split.pendingKeys() {
		i := s.stripeFor(key)
		s.locks.Lock(i)
		s.foldLocked(key)
		s.locks.Unlock(i)
	}
}
