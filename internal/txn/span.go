package txn

import "cuckoohash/internal/obs"

// This file holds the span-instrumented variants of the Store verbs.
// The plain verbs in txn.go delegate here with a nil span, which the
// obs.Span contract makes free: Begin on a nil or unarmed span returns
// 0 without reading the clock, and End on a zero start is a no-op. The
// split gives cuckootrace per-stage attribution (stripe-lock wait vs
// table probe vs OCC retry) without changing any existing signature.

// WithLockSpan is WithLock with the stripe acquisition attributed to
// rec as StageLock.
//
//cuckoo:hotpath every keyed verb runs its critical section through here
func (s *Store) WithLockSpan(key string, rec *obs.Span, fn func()) {
	i := s.stripeFor(key)
	t0 := rec.Begin()
	s.locks.Lock(i)
	rec.End(obs.StageLock, t0)
	s.reconcileIfHotLocked(key)
	fn()
	s.locks.Unlock(i)
}

// SetSpan is Set with lock wait and store time attributed to rec.
//
//cuckoo:hotpath the SET fast path: stripe, store, unlock
func (s *Store) SetSpan(key, val string, expireAt int64, rec *obs.Span) error {
	var err error
	s.WithLockSpan(key, rec, func() {
		t0 := rec.Begin()
		err = s.kv.Store(key, val, expireAt, false)
		rec.End(obs.StageProbe, t0)
	})
	return err
}

// DeleteSpan is Delete with lock wait and removal attributed to rec.
func (s *Store) DeleteSpan(key string, rec *obs.Span) bool {
	var ok bool
	s.WithLockSpan(key, rec, func() {
		t0 := rec.Begin()
		ok = s.kv.Delete(key)
		rec.End(obs.StageProbe, t0)
	})
	return ok
}

// IncrSpan is Incr with stripe wait (StageLock) and the read-modify-
// write (StageProbe) attributed to rec. The split fast path records
// nothing: it is a single padded atomic add with no lock or probe.
//
//cuckoo:hotpath a split-mode INCR is one atomic add; the stripe path's value re-encode is its audited cost
func (s *Store) IncrSpan(key string, delta int64, hint uint64, rec *obs.Span) error {
	if e, ok := s.split.lookup(key); ok && e.class == classAdd {
		if s.split.add(e, delta, hint) {
			return nil
		}
		// Demoted between the lookup and the slot write: fall through to
		// the stripe path like any cold key.
	}
	i := s.stripeFor(key)
	t0 := rec.Begin()
	if !s.locks.TryLock(i) {
		if s.cfg.PromoteAfter > 0 {
			s.noteContention(key, classAdd)
		}
		s.locks.Lock(i)
	}
	rec.End(obs.StageLock, t0)
	s.reconcileIfHotLocked(key)
	t1 := rec.Begin()
	err := s.applyAddLocked(key, delta)
	rec.End(obs.StageProbe, t1)
	s.locks.Unlock(i)
	return err
}

// MaxUpdateSpan is MaxUpdate with the same attribution as IncrSpan.
//
//cuckoo:hotpath the split-mode MAXUPDATE fast path mirrors IncrSpan's
func (s *Store) MaxUpdateSpan(key string, n int64, hint uint64, rec *obs.Span) error {
	if e, ok := s.split.lookup(key); ok && e.class == classMax {
		if s.split.max(e, n, hint) {
			return nil
		}
		// Demoted between the lookup and the slot write: stripe path.
	}
	i := s.stripeFor(key)
	t0 := rec.Begin()
	if !s.locks.TryLock(i) {
		if s.cfg.PromoteAfter > 0 {
			s.noteContention(key, classMax)
		}
		s.locks.Lock(i)
	}
	rec.End(obs.StageLock, t0)
	s.reconcileIfHotLocked(key)
	t1 := rec.Begin()
	err := s.applyMaxLocked(key, n)
	rec.End(obs.StageProbe, t1)
	s.locks.Unlock(i)
	return err
}

// CASSpan is CAS with lock wait and the compare-and-store attributed
// to rec.
func (s *Store) CASSpan(key, old, newVal string, rec *obs.Span) (CASResult, error) {
	res, err := CASMiss, error(nil)
	s.WithLockSpan(key, rec, func() {
		t0 := rec.Begin()
		cur, ok := s.kv.Load(key)
		switch {
		case !ok:
			res = CASMiss
		case cur != old:
			res = CASConflict
			s.stats.casConflicts.Add(1)
		default:
			res = CASStored
			err = s.kv.Store(key, newVal, 0, true)
		}
		rec.End(obs.StageProbe, t0)
	})
	return res, err
}

// ExecSpan is Exec with each failed optimistic attempt attributed as
// StageTxnRetry and the committing attempt (optimistic or pessimistic)
// as StageProbe, so a transaction's span shows how much of its latency
// was wasted work.
func (s *Store) ExecSpan(ops []Op, rec *obs.Span) ([]Result, ExecInfo) {
	if len(ops) == 0 {
		return nil, ExecInfo{}
	}
	// Split counters trade read freshness for commutativity; a
	// transaction's read set must be exact, so hot keys fold first.
	if s.split.hotCount.Load() > 0 {
		for i := range ops {
			s.ReconcileKey(ops[i].Key)
		}
	}
	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		t0 := rec.Begin()
		res, ok := s.tryExec(ops)
		if ok {
			rec.End(obs.StageProbe, t0)
			s.stats.commits.Add(1)
			s.stats.recordRetries(attempt)
			return res, ExecInfo{Retries: attempt}
		}
		rec.End(obs.StageTxnRetry, t0)
		s.stats.aborts.Add(1)
	}
	t0 := rec.Begin()
	res := s.execPessimistic(ops)
	rec.End(obs.StageProbe, t0)
	s.stats.commits.Add(1)
	s.stats.fallbacks.Add(1)
	s.stats.recordRetries(s.cfg.MaxRetries + 1)
	return res, ExecInfo{Retries: s.cfg.MaxRetries + 1, Pessimistic: true}
}
