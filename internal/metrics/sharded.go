package metrics

import "sync/atomic"

// ShardedHistogram is the concurrent counterpart of Histogram: the same
// power-of-two nanosecond buckets, but sharded across padded cache-line
// groups so that concurrent recorders on different shards never contend
// (principle P1). It replaces the "one histogram + one mutex" pattern,
// whose lock serialized every sampled request across all connections.
//
// Each recorder (e.g. one server connection) is assigned a shard; Record on
// distinct shards touches distinct cache lines, and Snapshot merges lazily
// at read time. Record on the *same* shard from several goroutines is safe
// too — it degrades to shared atomic adds, never to a lock.
type ShardedHistogram struct {
	shards []histShard
	mask   uint64
}

// histShard is one padded group of atomic buckets. The trailing pad keeps
// the next shard's first buckets off this shard's last cache line (and off
// the adjacent prefetched line).
type histShard struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [2*cacheLine - 16]byte
}

// NewShardedHistogram creates a histogram with n shards, rounded up to a
// power of two (min 1).
func NewShardedHistogram(n int) *ShardedHistogram {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &ShardedHistogram{
		shards: make([]histShard, size),
		mask:   uint64(size - 1),
	}
}

// Shards returns the shard count.
func (h *ShardedHistogram) Shards() int { return len(h.shards) }

// Record adds one sample (in nanoseconds) to the given shard. shard may be
// any value; it is reduced modulo the shard count.
func (h *ShardedHistogram) Record(shard uint64, ns uint64) {
	s := &h.shards[shard&h.mask]
	b := 0
	if ns > 0 {
		b = 64 - leadingZeros(ns)
	}
	if b >= len(s.buckets) {
		b = len(s.buckets) - 1
	}
	s.buckets[b].Add(1)
	s.count.Add(1)
	s.sum.Add(ns)
}

// Snapshot merges every shard into a plain value Histogram, which carries
// the quantile and mean helpers. The merge is lock-free and wait-free; a
// snapshot taken during concurrent recording is a momentary view, not an
// atomic cut, which is fine for statistics.
func (h *ShardedHistogram) Snapshot() Histogram {
	var out Histogram
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.buckets {
			out.buckets[b] += s.buckets[b].Load()
		}
		out.count += s.count.Load()
		out.sum += s.sum.Load()
	}
	return out
}

// Buckets exposes a merged copy of the raw power-of-two bucket counts
// (bucket i counts samples in (2^(i-1), 2^i] ns; bucket 0 counts zeros),
// for exporters that render cumulative histograms.
func (h *Histogram) Buckets() [64]uint64 { return h.buckets }

// Sum returns the sum of all recorded samples in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum }
