package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramQuantileEdges pins the quantile behavior at distribution
// edges: empty histograms, zero-valued samples, a single occupied bucket,
// and saturation at the last bucket for values near MaxUint64.
func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{0.001, 0.5, 0.99, 1.0} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	t.Run("all-zero samples", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Record(0)
		}
		if got := h.Quantile(1.0); got != 0 {
			t.Errorf("Quantile(1.0) of zeros = %d, want 0", got)
		}
		if got := h.Mean(); got != 0 {
			t.Errorf("Mean of zeros = %v, want 0", got)
		}
	})

	t.Run("single bucket", func(t *testing.T) {
		// Every sample in bucket for [512, 1024): all quantiles must
		// return the same upper bound, 1024.
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Record(700)
		}
		for _, q := range []float64{0.001, 0.25, 0.5, 0.999, 1.0} {
			if got := h.Quantile(q); got != 1024 {
				t.Errorf("single-bucket Quantile(%v) = %d, want 1024", q, got)
			}
		}
	})

	t.Run("single sample", func(t *testing.T) {
		var h Histogram
		h.Record(3) // bucket (2,4]
		// Even a tiny q must target at least the first sample.
		if got := h.Quantile(0.0001); got != 4 {
			t.Errorf("Quantile(0.0001) = %d, want 4", got)
		}
	})

	t.Run("max-value saturation", func(t *testing.T) {
		var h Histogram
		h.Record(math.MaxUint64)
		h.Record(math.MaxUint64 - 1)
		h.Record(1 << 63)
		// All land in the final bucket; the reported bound is that
		// bucket's lower-bound power of two, not an overflowed zero.
		if got, want := h.Quantile(1.0), uint64(1)<<63; got != want {
			t.Errorf("saturated Quantile(1.0) = %d, want %d", got, want)
		}
		if got := h.Quantile(0.5); got != 1<<63 {
			t.Errorf("saturated Quantile(0.5) = %d, want %d", got, uint64(1)<<63)
		}
		if h.Count() != 3 {
			t.Errorf("Count = %d, want 3", h.Count())
		}
	})

	t.Run("quantile ordering", func(t *testing.T) {
		var h Histogram
		for v := uint64(1); v < 1<<20; v = v*3 + 1 {
			h.Record(v)
		}
		last := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0} {
			cur := h.Quantile(q)
			if cur < last {
				t.Fatalf("Quantile(%v) = %d < previous %d: not monotone", q, cur, last)
			}
			last = cur
		}
	})
}

// TestOpCounterConcurrentTotal reads Total while writers are still
// adding (run under -race): every intermediate Total must be a value the
// true count passed through — between 0 and the final sum — and
// monotonically non-decreasing, since each padded slot only grows.
func TestOpCounterConcurrentTotal(t *testing.T) {
	const (
		writers = 8
		perW    = 200000
	)
	c := NewOpCounter(writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	readerDone := make(chan error, 1)
	go func() {
		var prev uint64
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			cur := c.Total()
			if cur < prev {
				readerDone <- errMonotone(prev, cur)
				return
			}
			if cur > writers*perW {
				readerDone <- errBound(cur)
				return
			}
			prev = cur
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	if got := c.Total(); got != writers*perW {
		t.Fatalf("final Total = %d, want %d", got, writers*perW)
	}
	c.Reset()
	if got := c.Total(); got != 0 {
		t.Fatalf("Total after Reset = %d, want 0", got)
	}
}

type countErr struct{ msg string }

func (e countErr) Error() string { return e.msg }

func errMonotone(prev, cur uint64) error {
	return countErr{msg: "Total went backwards: " + itoa(prev) + " -> " + itoa(cur)}
}

func errBound(cur uint64) error {
	return countErr{msg: "Total overshot the writers' sum: " + itoa(cur)}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for v > 0 {
		p--
		b[p] = byte('0' + v%10)
		v /= 10
	}
	return string(b[p:])
}
