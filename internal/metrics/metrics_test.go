package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestOpCounter(t *testing.T) {
	c := NewOpCounter(4)
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(th, 2)
			}
		}(th)
	}
	wg.Wait()
	if got := c.Total(); got != 8000 {
		t.Fatalf("Total = %d", got)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(2_000_000, time.Second); got != 2.0 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("Throughput with zero duration = %v", got)
	}
}

func TestIntervalRecorder(t *testing.T) {
	r := NewIntervalRecorder([]float64{0.5, 0.9})
	r.Start()
	if r.Due(0.4) {
		t.Fatal("Due(0.4) before 0.5")
	}
	if !r.Due(0.5) {
		t.Fatal("not Due(0.5)")
	}
	r.Observe(0.5, 100)
	time.Sleep(2 * time.Millisecond)
	r.Observe(0.9, 300)

	v, err := r.Window(0, 0.5)
	if err != nil || v <= 0 {
		t.Fatalf("Window(0,0.5) = %v, %v", v, err)
	}
	v2, err := r.Window(0.5, 0.9)
	if err != nil || v2 <= 0 {
		t.Fatalf("Window(0.5,0.9) = %v, %v", v2, err)
	}
	if _, err := r.Window(0.5, 0.7); err == nil {
		t.Fatal("unknown threshold accepted")
	}
}

func TestIntervalRecorderSkipsInOneObserve(t *testing.T) {
	// One Observe crossing several thresholds records them all.
	r := NewIntervalRecorder([]float64{0.3, 0.6, 0.9})
	r.Start()
	r.Observe(0.95, 500)
	for _, th := range []float64{0.3, 0.6, 0.9} {
		if _, err := r.Window(0, th); err != nil {
			t.Fatalf("threshold %v not recorded: %v", th, err)
		}
	}
}

func TestIntervalRecorderBadThresholds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending thresholds accepted")
		}
	}()
	NewIntervalRecorder([]float64{0.5, 0.5})
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 4, 8, 1024, 1024, 1 << 30} {
		h.Record(v)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() <= 0 {
		t.Fatal("Mean <= 0")
	}
	if q := h.Quantile(0.5); q == 0 || q > 1<<11 {
		t.Fatalf("median bound = %d", q)
	}
	if q := h.Quantile(1.0); q < 1<<30 {
		t.Fatalf("p100 bound = %d", q)
	}

	var other Histogram
	other.Record(16)
	h.Merge(&other)
	if h.Count() != 8 {
		t.Fatalf("after merge Count = %d", h.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram stats nonzero")
	}
}
