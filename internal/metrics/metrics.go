// Package metrics provides the measurement plumbing for the benchmark
// harness: per-thread padded counters (principle P1 of the paper — never
// share a statistics counter between threads), load-factor interval timers,
// and a small power-of-two latency histogram.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// cacheLine is the assumed coherence granularity. Counters are padded to
// two lines to defeat adjacent-line prefetching as well.
const cacheLine = 64

type paddedUint64 struct {
	v atomic.Uint64
	_ [2*cacheLine - 8]byte
}

// OpCounter counts operations with one padded slot per thread so that
// incrementing never causes coherence traffic between cores. Reads (Total)
// aggregate lazily, exactly the "lazily aggregated per-thread counters" the
// paper substitutes for instant global counters.
type OpCounter struct {
	slots []paddedUint64
}

// NewOpCounter creates a counter for n threads.
func NewOpCounter(n int) *OpCounter {
	return &OpCounter{slots: make([]paddedUint64, n)}
}

// Add adds delta to thread's slot. thread must be in [0, n).
func (c *OpCounter) Add(thread int, delta uint64) {
	c.slots[thread].v.Add(delta)
}

// Total returns the sum over all threads.
func (c *OpCounter) Total() uint64 {
	var t uint64
	for i := range c.slots {
		t += c.slots[i].v.Load()
	}
	return t
}

// Reset zeroes all slots.
func (c *OpCounter) Reset() {
	for i := range c.slots {
		c.slots[i].v.Store(0)
	}
}

// Throughput converts an operation count and duration to millions of
// requests per second, the unit of every figure in the paper.
func Throughput(ops uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// IntervalRecorder captures the time and operation count at which a fill
// run crosses load-factor thresholds, so throughput can be reported for
// occupancy windows such as 0–0.95, 0.75–0.9, 0.9–0.95 (Figures 5 and 6).
type IntervalRecorder struct {
	thresholds []float64
	times      []time.Time
	ops        []uint64
	next       int
	start      time.Time
}

// NewIntervalRecorder creates a recorder for the given ascending load-factor
// thresholds. Call Start before the run and Observe as occupancy grows.
func NewIntervalRecorder(thresholds []float64) *IntervalRecorder {
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] <= thresholds[i-1] {
			panic("metrics: thresholds must be strictly ascending")
		}
	}
	r := &IntervalRecorder{
		thresholds: thresholds,
		times:      make([]time.Time, len(thresholds)),
		ops:        make([]uint64, len(thresholds)),
	}
	return r
}

// Start marks the beginning of the run (load factor 0).
func (r *IntervalRecorder) Start() {
	r.start = time.Now()
	r.next = 0
}

// Due reports whether the next unrecorded threshold has been reached, so
// callers can avoid the Observe call (and its operation-count aggregation)
// on the fast path.
func (r *IntervalRecorder) Due(loadFactor float64) bool {
	return r.next < len(r.thresholds) && loadFactor >= r.thresholds[r.next]
}

// Observe records the current load factor with the cumulative operation
// count. It is cheap when no threshold is crossed, so drivers may call it
// every few thousand operations.
func (r *IntervalRecorder) Observe(loadFactor float64, ops uint64) {
	for r.next < len(r.thresholds) && loadFactor >= r.thresholds[r.next] {
		r.times[r.next] = time.Now()
		r.ops[r.next] = ops
		r.next++
	}
}

// Window returns the throughput (Mops/s) between load factors lo and hi.
// Both must be recorded thresholds; lo == 0 means the start of the run.
func (r *IntervalRecorder) Window(lo, hi float64) (float64, error) {
	t0, ops0 := r.start, uint64(0)
	if lo != 0 {
		i := r.indexOf(lo)
		if i < 0 || i >= r.next {
			return 0, fmt.Errorf("metrics: threshold %v not recorded", lo)
		}
		t0, ops0 = r.times[i], r.ops[i]
	}
	j := r.indexOf(hi)
	if j < 0 || j >= r.next {
		return 0, fmt.Errorf("metrics: threshold %v not recorded", hi)
	}
	return Throughput(r.ops[j]-ops0, r.times[j].Sub(t0)), nil
}

func (r *IntervalRecorder) indexOf(th float64) int {
	for i, t := range r.thresholds {
		if math.Abs(t-th) < 1e-9 {
			return i
		}
	}
	return -1
}

// Histogram is a power-of-two-bucketed histogram for latency samples in
// nanoseconds. It is not safe for concurrent use; keep one per thread and
// Merge afterwards.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
}

// Record adds one sample.
func (h *Histogram) Record(ns uint64) {
	b := 0
	if ns > 0 {
		b = 64 - leadingZeros(ns)
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += ns
}

func leadingZeros(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return 64 - n
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean sample value, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) based on
// bucket boundaries.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1 << uint(i)
		}
	}
	return math.MaxUint64
}
