package cuckoohash_test

import (
	"bytes"
	"errors"
	"testing"

	"cuckoohash"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12, ValueWords: 2})
	for k := uint64(1); k <= 3000; k++ {
		if err := m.InsertValue(k, []uint64{k * 2, k * 3}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := cuckoohash.Load(&buf, cuckoohash.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3000 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	if loaded.Cap() != m.Cap() {
		t.Fatalf("loaded Cap = %d, want %d", loaded.Cap(), m.Cap())
	}
	dst := make([]uint64, 2)
	for k := uint64(1); k <= 3000; k++ {
		if !loaded.LookupValue(k, dst) || dst[0] != k*2 || dst[1] != k*3 {
			t.Fatalf("loaded Lookup(%d) = %v", k, dst)
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 256})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cuckoohash.Load(&buf, cuckoohash.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("Len = %d", loaded.Len())
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 256})
	for k := uint64(1); k <= 100; k++ {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bit flip in the payload: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := cuckoohash.Load(bytes.NewReader(bad), cuckoohash.Config{}); !errors.Is(err, cuckoohash.ErrBadSnapshot) {
		t.Fatalf("corrupt payload: err = %v", err)
	}

	// Truncation.
	if _, err := cuckoohash.Load(bytes.NewReader(good[:len(good)-20]), cuckoohash.Config{}); !errors.Is(err, cuckoohash.ErrBadSnapshot) {
		t.Fatalf("truncated: err = %v", err)
	}

	// Bad magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] ^= 0xFF
	if _, err := cuckoohash.Load(bytes.NewReader(bad2), cuckoohash.Config{}); !errors.Is(err, cuckoohash.ErrBadSnapshot) {
		t.Fatalf("bad magic: err = %v", err)
	}

	// Empty stream.
	if _, err := cuckoohash.Load(bytes.NewReader(nil), cuckoohash.Config{}); !errors.Is(err, cuckoohash.ErrBadSnapshot) {
		t.Fatalf("empty: err = %v", err)
	}

	// Flipped bit in the CRC trailer itself: the payload is intact but the
	// checksum no longer matches it.
	bad3 := append([]byte(nil), good...)
	bad3[len(bad3)-1] ^= 0x01
	if _, err := cuckoohash.Load(bytes.NewReader(bad3), cuckoohash.Config{}); !errors.Is(err, cuckoohash.ErrBadSnapshot) {
		t.Fatalf("flipped crc: err = %v", err)
	}

	// Unsupported version word (second u64 of the header).
	bad4 := append([]byte(nil), good...)
	bad4[8] = 0x7F
	if _, err := cuckoohash.Load(bytes.NewReader(bad4), cuckoohash.Config{}); !errors.Is(err, cuckoohash.ErrBadSnapshot) {
		t.Fatalf("bad version: err = %v", err)
	}
}

func TestAutoGrow(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 128, AutoGrow: true})
	const n = 5000
	for k := uint64(1); k <= n; k++ {
		if err := m.Insert(k, k); err != nil {
			t.Fatalf("Insert(%d) with AutoGrow: %v", k, err)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.Cap() < n {
		t.Fatalf("Cap = %d; did not grow", m.Cap())
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := m.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestAutoGrowConcurrent(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 128, AutoGrow: true})
	const writers = 4
	const per = 3000
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			base := uint64(w+1) << 32
			for i := uint64(0); i < per; i++ {
				if err := m.Insert(base|i, i); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*per)
	}
}

func TestLookupBatch(t *testing.T) {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12})
	for k := uint64(1); k <= 2000; k++ {
		if err := m.Insert(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	// A mix of hits and misses, longer than the prefetch window.
	keys := make([]uint64, 100)
	for i := range keys {
		if i%3 == 0 {
			keys[i] = uint64(i) + 1<<40 // miss
		} else {
			keys[i] = uint64(i%2000) + 1 // hit
		}
	}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	m.LookupBatch(keys, vals, found)
	for i, k := range keys {
		wantHit := i%3 != 0
		if found[i] != wantHit {
			t.Fatalf("key %d found=%v want %v", k, found[i], wantHit)
		}
		if wantHit && vals[i] != k*7 {
			t.Fatalf("key %d val=%d want %d", k, vals[i], k*7)
		}
	}
	// Short batches (below the window) work too.
	m.LookupBatch(keys[:3], vals[:3], found[:3])
	if found[0] || !found[1] || !found[2] {
		t.Fatal("short batch wrong")
	}
	// Output slice length validation.
	defer func() {
		if recover() == nil {
			t.Fatal("short output slices accepted")
		}
	}()
	m.LookupBatch(keys, vals[:1], found)
}

func TestSaveLoadAtHighOccupancy(t *testing.T) {
	// A 95%-full table with a non-default seed must round-trip: Load has
	// to reuse the snapshot's hash seed or the content may not fit.
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12, Seed: 12345})
	var n uint64
	for k := uint64(1); ; k++ {
		if err := m.Insert(k, k); err != nil {
			break
		}
		n++
	}
	if float64(n) < 0.95*float64(m.Cap()) {
		t.Fatalf("only filled to %d/%d", n, m.Cap())
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cuckoohash.Load(&buf, cuckoohash.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != n {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), n)
	}
	// A snapshot taken at ~99% may load into a grown table; the content is
	// what matters.
	if loaded.Cap() < m.Cap() {
		t.Fatalf("loaded Cap = %d < saved %d", loaded.Cap(), m.Cap())
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := loaded.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}
