package client_test

// End-to-end staleness contract of cuckoorepl (docs/REPLICATION.md):
// the per-key version floor makes two-choice fallthrough reads
// monotonic even when the replica lags and the primary then dies.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"cuckoohash/internal/cluster"
)

// replInject writes one raw protocol line to addr and returns the reply
// — the test's stand-in for a lagging mirror stream delivering an old
// REPLSET to the replica.
func replInject(t *testing.T, addr, line string) string {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := fmt.Fprintf(nc, "%s\n", line); err != nil {
		t.Fatal(err)
	}
	rep, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(rep, "\n")
}

// TestClusterMonotonicReads pins the acceptance criterion: a replica
// holding an older version than a write this client already observed
// must never shadow it, even across a primary kill and fallthrough.
func TestClusterMonotonicReads(t *testing.T) {
	const seed = 21
	servers, addrs := startNodes(t, 2)
	ring, err := cluster.New(addrs, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a key whose primary is node 0, so node 1 is the replica.
	key := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("mono%d", i)
		if pi, _ := ring.Candidates(k); pi == 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key with primary 0 in 64 tries")
	}

	// The replica holds a lagging copy: version 5, written directly as a
	// mirror apply (replication is off, so nothing will repair it).
	if rep := replInject(t, addrs[1], "REPLSET "+key+" 5 0 laggard"); rep != "OK" {
		t.Fatalf("stale inject reply %q", rep)
	}

	cl := newTestCluster(t, addrs, seed)
	// The client writes through the primary; the SETV ack version (an
	// HLC word far above 5) becomes this client's floor for the key.
	if err := cl.Set(key, "fresh", 0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(key); err != nil || !ok || v != "fresh" {
		t.Fatalf("pre-kill Get = %q/%v/%v", v, ok, err)
	}

	// Kill the primary. The only live copy is the laggard on node 1.
	servers[0].Close()
	v, ok, _ := cl.Get(key)
	if ok || v == "laggard" {
		t.Fatalf("fallthrough served the stale replica copy: %q/%v", v, ok)
	}

	// Sanity 1: the replica really does hold and serve the old copy.
	if rep := replInject(t, addrs[1], "GETV "+key); rep != "VALUEV 5 laggard" {
		t.Fatalf("replica copy = %q, want VALUEV 5 laggard", rep)
	}
	// Sanity 2: a fresh client with no version memory accepts it — the
	// floor, not the routing, is what rejected the read above.
	cl2 := newTestCluster(t, addrs, seed)
	if v, ok, err := cl2.Get(key); err != nil || !ok || v != "laggard" {
		t.Fatalf("fresh client Get = %q/%v/%v, want the replica copy", v, ok, err)
	}
}
