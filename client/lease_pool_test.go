package client_test

// Pool.GetOrFill against a real server: the miss-lease protocol must
// collapse a thundering herd to a single backend fill while every
// caller still gets the value.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cuckoohash/client"
)

// TestGetOrFillSingleFlight launches a herd of concurrent GetOrFill
// calls for one missing key and counts backend fills: exactly one
// caller may win the lease and run its fill function.
func TestGetOrFillSingleFlight(t *testing.T) {
	s := startServer(t)
	p := client.NewPool(s.Addr().String(), 8)
	defer p.Close()

	const herd = 16
	var fills atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, herd)
	vals := make([]string, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = p.GetOrFill("herd-key", 0, false, func() (string, error) {
				fills.Add(1)
				time.Sleep(10 * time.Millisecond) // a slow origin, to widen the race
				return "origin-value", nil
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != "origin-value" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
	}
	if n := fills.Load(); n != 1 {
		t.Fatalf("herd of %d triggered %d backend fills, want exactly 1", herd, n)
	}

	st := p.Stats()
	if st.LeaseFills != 1 {
		t.Fatalf("pool counted %d lease fills, want 1", st.LeaseFills)
	}
	if st.LeaseWaits == 0 {
		t.Fatal("no caller ever waited; the herd never raced")
	}

	// The filled value is now a plain cache hit for everyone.
	if v, err := p.GetOrFill("herd-key", 0, false, func() (string, error) {
		t.Error("fill ran for a present key")
		return "", nil
	}); err != nil || v != "origin-value" {
		t.Fatalf("post-fill read = %q/%v", v, err)
	}
}
