package client_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cuckoohash/client"
	"cuckoohash/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestConnRoundTrips(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set("k", "v with spaces", 0); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || v != "v with spaces" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := c.Get("absent"); ok {
		t.Fatal("Get absent reported found")
	}
	d, ok, err := c.TTL("k")
	if err != nil || !ok || d != -1 {
		t.Fatalf("TTL persistent = %v, %v, %v", d, ok, err)
	}
	if err := c.Set("tk", "v", 50*time.Millisecond); err != nil {
		t.Fatalf("Set ttl: %v", err)
	}
	d, ok, err = c.TTL("tk")
	if err != nil || !ok || d <= 0 || d > 50*time.Millisecond {
		t.Fatalf("TTL = %v, %v, %v", d, ok, err)
	}
	found, err := c.Del("k")
	if err != nil || !found {
		t.Fatalf("Del = %v, %v", found, err)
	}
	found, err = c.Del("k")
	if err != nil || found {
		t.Fatalf("re-Del = %v, %v", found, err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["sets"] != "2" || stats["hits"] != "1" || stats["misses"] != "1" {
		t.Fatalf("stats = %v", stats)
	}
}

func TestConnPipelined(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := c.QueueSet(key(i), "v", 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Pending() != n {
		t.Fatalf("Pending = %d, want %d", c.Pending(), n)
	}
	reps, err := c.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(reps) != n {
		t.Fatalf("got %d replies, want %d", len(reps), n)
	}
	for i, rep := range reps {
		if rep.Err != nil || !rep.Found {
			t.Fatalf("SET reply %d = %+v", i, rep)
		}
	}
	for i := 0; i < n; i++ {
		c.QueueGet(key(i))
	}
	c.QueueGet("missing")
	reps, err = c.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < n; i++ {
		if !reps[i].Found || reps[i].Value != "v" {
			t.Fatalf("GET reply %d = %+v", i, reps[i])
		}
	}
	if reps[n].Found {
		t.Fatal("GET missing reported found")
	}
}

func TestInvalidKeysAndValues(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, bad := range []string{"", "has space", "has\nnewline", strings.Repeat("x", 251)} {
		if err := c.QueueGet(bad); err == nil {
			t.Errorf("QueueGet(%q) accepted", bad)
		}
	}
	if err := c.QueueSet("k", "line1\nline2", 0); err == nil {
		t.Error("QueueSet with newline value accepted")
	}
	if c.Pending() != 0 {
		t.Fatalf("invalid requests were queued: Pending = %d", c.Pending())
	}
}

func TestPoolConcurrent(t *testing.T) {
	s := startServer(t)
	pool := client.NewPool(s.Addr().String(), 4)
	defer pool.Close()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(w*1000 + i)
				if err := pool.Set(k, "v", 0); err != nil {
					t.Errorf("Set %s: %v", k, err)
					return
				}
				if _, ok, err := pool.Get1(k); err != nil || !ok {
					t.Errorf("Get1 %s = %v, %v", k, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Cache().Len(); got != 16*50 {
		t.Fatalf("cache holds %d entries, want %d", got, 16*50)
	}
}

func key(i int) string {
	return "key-" + strings.Repeat("0", 2) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
