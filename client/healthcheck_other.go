//go:build !unix

package client

import "syscall"

// probeSocket on platforms without non-blocking peek support reports the
// socket healthy; broken connections are still caught at first use and
// routed through the pool's discard path.
func probeSocket(nc syscall.Conn) error { return nil }
