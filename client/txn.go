package client

// Transaction verbs (docs/TRANSACTIONS.md): the commutative counters
// (INCR/DECR/ADD/MAXUPDATE), compare-and-set, and the MULTI…EXEC queue.
//
// None of these are idempotent — a retried INCR double-counts, a retried
// CAS or EXEC can observe (and clobber) its own first attempt's effects —
// so every pooled one-shot here passes canRetry=false to Pool.do and a
// transport failure surfaces to the caller instead of being retried. This
// holds even when Options.RetrySets opted SETs into retries: RetrySets
// covers last-writer-wins SETs only, never the read-modify-write verbs.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrTxnAborted is returned by ExecTxn when the server refused EXEC
// because a queue-time error poisoned the transaction.
var ErrTxnAborted = errors.New("client: transaction aborted")

// QueueIncr buffers an INCR (delta >= 0) or DECR-equivalent (delta < 0)
// request: key's integer value changes by delta, starting from 0 for a
// missing key.
func (c *Conn) QueueIncr(key string, delta int64) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("INCR ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.FormatInt(delta, 10))
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opIncr)
	return nil
}

// QueueMaxUpdate buffers a MAXUPDATE request: key's integer value becomes
// max(current, val), treating a missing key as 0.
func (c *Conn) QueueMaxUpdate(key string, val int64) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("MAXUPDATE ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.FormatInt(val, 10))
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opIncr)
	return nil
}

// QueueCAS buffers a CAS request: key's value becomes newVal only if it
// currently equals old. old is a single protocol token (no spaces);
// newVal may contain spaces but not newlines.
func (c *Conn) QueueCAS(key, old, newVal string) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	if old == "" || strings.ContainsAny(old, " \r\n") {
		return fmt.Errorf("client: CAS expected value %q must be one token", old)
	}
	if strings.ContainsAny(newVal, "\r\n") {
		return fmt.Errorf("client: value for %q contains newline", key)
	}
	c.writeTrace()
	c.w.WriteString("CAS ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(old)
	c.w.WriteByte(' ')
	c.w.WriteString(newVal)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opCAS)
	return nil
}

// Incr adds delta to key's integer value (negative deltas subtract).
func (c *Conn) Incr(key string, delta int64) error {
	if err := c.QueueIncr(key, delta); err != nil {
		return err
	}
	rep, err := c.one()
	if err != nil {
		return err
	}
	return rep.Err
}

// MaxUpdate raises key's integer value to val if it is currently lower.
func (c *Conn) MaxUpdate(key string, val int64) error {
	if err := c.QueueMaxUpdate(key, val); err != nil {
		return err
	}
	rep, err := c.one()
	if err != nil {
		return err
	}
	return rep.Err
}

// CAS stores newVal only if key currently holds old. It returns
// (stored, found): (true, true) on success, (false, true) on a value
// conflict, (false, false) when the key does not exist.
func (c *Conn) CAS(key, old, newVal string) (stored, found bool, err error) {
	if err := c.QueueCAS(key, old, newVal); err != nil {
		return false, false, err
	}
	rep, err := c.one()
	if err != nil {
		return false, false, err
	}
	if rep.Err != nil {
		return false, false, rep.Err
	}
	if rep.Conflict {
		return false, true, nil
	}
	return rep.Found, rep.Found, nil
}

// Txn accumulates operations client-side for one MULTI…EXEC exchange.
// Nothing touches the network until Exec/ExecTxn, which ships the whole
// transaction — MULTI, every op, EXEC — in a single pipelined write. The
// zero value is ready to use; methods chain. A validation error sticks to
// the Txn and is returned by Exec, so call sites can build the whole
// transaction without per-op error checks.
type Txn struct {
	keys  []string
	lines []string
	codes []opCode
	err   error
}

// NewTxn returns an empty transaction builder.
func NewTxn() *Txn { return &Txn{} }

// Len returns the number of buffered operations.
func (t *Txn) Len() int { return len(t.lines) }

// Err returns the first validation error, if any.
func (t *Txn) Err() error { return t.err }

// Keys returns the distinct keys the transaction touches, in first-use
// order (the cluster router uses this to pin the transaction to a node).
func (t *Txn) Keys() []string {
	seen := make(map[string]struct{}, len(t.keys))
	out := make([]string, 0, len(t.keys))
	for _, k := range t.keys {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	return out
}

func (t *Txn) add(key, line string, code opCode) *Txn {
	if t.err != nil {
		return t
	}
	if err := validKey(key); err != nil {
		t.err = err
		return t
	}
	t.keys = append(t.keys, key)
	t.lines = append(t.lines, line)
	t.codes = append(t.codes, code)
	return t
}

// Get queues a read; its EXEC result carries the value.
func (t *Txn) Get(key string) *Txn {
	return t.add(key, "GET "+key, opGet)
}

// Set queues a write (ttl 0 = no expiry).
func (t *Txn) Set(key, val string, ttl time.Duration) *Txn {
	if t.err == nil && strings.ContainsAny(val, "\r\n") {
		t.err = fmt.Errorf("client: value for %q contains newline", key)
		return t
	}
	if ttl <= 0 {
		return t.add(key, "SET "+key+" "+val, opSet)
	}
	ms := (ttl + time.Millisecond - 1) / time.Millisecond
	return t.add(key, fmt.Sprintf("SETEX %s %d %s", key, ms, val), opSet)
}

// Del queues a delete; its EXEC result is Found when the key existed.
func (t *Txn) Del(key string) *Txn {
	return t.add(key, "DEL "+key, opDel)
}

// Incr queues an increment by delta (negative subtracts; missing keys
// start at 0).
func (t *Txn) Incr(key string, delta int64) *Txn {
	return t.add(key, fmt.Sprintf("INCR %s %d", key, delta), opIncr)
}

// MaxUpdate queues a monotonic raise to val.
func (t *Txn) MaxUpdate(key string, val int64) *Txn {
	return t.add(key, fmt.Sprintf("MAXUPDATE %s %d", key, val), opIncr)
}

// CAS queues a compare-and-set; its EXEC result is Found on success,
// Conflict on a value mismatch, neither on a missing key.
func (t *Txn) CAS(key, old, newVal string) *Txn {
	if t.err == nil && (old == "" || strings.ContainsAny(old, " \r\n")) {
		t.err = fmt.Errorf("client: CAS expected value %q must be one token", old)
		return t
	}
	if t.err == nil && strings.ContainsAny(newVal, "\r\n") {
		t.err = fmt.Errorf("client: value for %q contains newline", key)
		return t
	}
	return t.add(key, "CAS "+key+" "+old+" "+newVal, opCAS)
}

// ExecTxn runs t as one MULTI…EXEC exchange and returns the per-op
// results in queue order. The ops execute atomically on the server: reads
// see a consistent snapshot and no other writer interleaves (per-op
// failures like a CAS conflict are reported in the results, not by error).
// The exchange is a single write followed by a deterministic reply
// sequence, so a transport failure mid-exchange breaks the Conn exactly
// like a failed Flush would.
func (c *Conn) ExecTxn(t *Txn) ([]Reply, error) {
	if t.err != nil {
		return nil, t.err
	}
	if c.closed {
		return nil, ErrClosed
	}
	if c.broken != nil {
		return nil, c.broken
	}
	if len(c.pending) > 0 {
		return nil, errors.New("client: ExecTxn with requests still queued")
	}
	if len(t.lines) == 0 {
		return nil, nil
	}
	if c.ioTimeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	c.w.WriteString("MULTI\n")
	for _, line := range t.lines {
		c.w.WriteString(line)
		c.w.WriteByte('\n')
	}
	// The trace rides on the EXEC line: that is the request whose span
	// covers the transaction's OCC retries and commit.
	c.writeTrace()
	c.w.WriteString("EXEC\n")
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}

	// Reply sequence: MULTI ack, one line per queued op, then either an
	// "EXEC <n>" header followed by n results or an ERR for the whole
	// transaction. Queue-time rejections surface per line; the count is
	// fixed either way, so the stream stays in sync.
	line, err := c.readRawLine()
	if err != nil {
		return nil, c.fail(err)
	}
	if line != "OK" {
		return nil, c.txnRefused(line, len(t.lines))
	}
	var queueErr error
	for i := 0; i < len(t.lines); i++ {
		line, err = c.readRawLine()
		if err != nil {
			return nil, c.fail(err)
		}
		if line != "QUEUED" && queueErr == nil {
			queueErr = txnLineErr(line)
		}
	}
	line, err = c.readRawLine()
	if err != nil {
		return nil, c.fail(err)
	}
	count, ok := strings.CutPrefix(line, "EXEC ")
	if !ok {
		if queueErr != nil {
			return nil, fmt.Errorf("%w: %w", ErrTxnAborted, queueErr)
		}
		return nil, txnLineErr(line)
	}
	n, err := strconv.Atoi(count)
	if err != nil || n != len(t.lines) {
		return nil, c.fail(fmt.Errorf("client: bad EXEC header %q for %d ops", line, len(t.lines)))
	}
	replies := make([]Reply, 0, n)
	for i := 0; i < n; i++ {
		rep, err := c.readReply(t.codes[i])
		if err != nil {
			return nil, c.fail(err)
		}
		replies = append(replies, rep)
	}
	return replies, nil
}

// txnRefused drains the deterministic remainder of a transaction exchange
// whose MULTI was refused (n queue replies plus the EXEC reply), keeping
// the stream in sync, and returns the refusal.
func (c *Conn) txnRefused(multiLine string, n int) error {
	for i := 0; i < n+1; i++ {
		if _, err := c.readRawLine(); err != nil {
			return c.fail(err)
		}
	}
	return txnLineErr(multiLine)
}

// txnLineErr converts an unexpected transaction reply line to an error.
func txnLineErr(line string) error {
	if msg, ok := strings.CutPrefix(line, "ERR "); ok {
		return &ServerError{Msg: msg}
	}
	return fmt.Errorf("client: unexpected transaction reply %q", line)
}

// readRawLine reads one reply line without interpreting it.
func (c *Conn) readRawLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// Incr is a pooled one-shot INCR/DECR. Never retried: a lost ack leaves
// the increment's fate unknown, and re-running it would double-count.
func (p *Pool) Incr(key string, delta int64) error {
	return p.do(false, func(c *Conn) error {
		return c.Incr(key, delta)
	})
}

// MaxUpdate is a pooled one-shot MAXUPDATE. Never retried (same
// non-idempotence rule as Incr; a raced retry can resurrect a lower max
// observed by other readers in between).
func (p *Pool) MaxUpdate(key string, val int64) error {
	return p.do(false, func(c *Conn) error {
		return c.MaxUpdate(key, val)
	})
}

// CAS is a pooled one-shot compare-and-set. Never retried: after a lost
// ack the first attempt may have committed, and retrying would report a
// spurious conflict — or worse, succeed against its own write.
func (p *Pool) CAS(key, old, newVal string) (stored, found bool, err error) {
	err = p.do(false, func(c *Conn) error {
		var cerr error
		stored, found, cerr = c.CAS(key, old, newVal)
		return cerr
	})
	return stored, found, err
}

// ExecTxn runs t through a pooled connection, exactly once (MULTI…EXEC is
// the least idempotent exchange the protocol has).
func (p *Pool) ExecTxn(t *Txn) ([]Reply, error) {
	var replies []Reply
	err := p.do(false, func(c *Conn) error {
		var cerr error
		replies, cerr = c.ExecTxn(t)
		return cerr
	})
	return replies, err
}
