package client_test

// Multi-node in-process harness for the cluster client: several real
// cuckood servers on loopback ports, one Cluster over them, and the
// placement ring shared by both sides (internal/cluster). These tests
// pin the tentpole properties of docs/CLUSTER.md: two-choice placement,
// write spill, read fallthrough, rebalance convergence with counter
// agreement, drain, and scale-out repair.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"cuckoohash/client"
	"cuckoohash/internal/cluster"
	"cuckoohash/internal/obs"
	"cuckoohash/server"
)

// startNode launches one small cluster node on a loopback port.
func startNode(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        2,
		SlotsPerShard: 1 << 10,
		SweepInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func startNodes(t *testing.T, n int) ([]*server.Server, []string) {
	t.Helper()
	servers := make([]*server.Server, n)
	addrs := make([]string, n)
	for i := range servers {
		servers[i] = startNode(t)
		addrs[i] = servers[i].Addr().String()
	}
	return servers, addrs
}

func newTestCluster(t *testing.T, addrs []string, seed uint64) *client.Cluster {
	t.Helper()
	cl, err := client.NewCluster(addrs, client.ClusterOptions{
		Pool: client.Options{Size: 2},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// nodeStats reads one node's STATS map over a throwaway connection.
func nodeStats(t *testing.T, addr string) map[string]string {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func statUint(t *testing.T, st map[string]string, name string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(st[name], 10, 64)
	if err != nil {
		t.Fatalf("stat %s = %q: %v", name, st[name], err)
	}
	return v
}

func TestClusterPlacement(t *testing.T) {
	const seed = 11
	_, addrs := startNodes(t, 3)
	cl := newTestCluster(t, addrs, seed)
	ring, err := cluster.New(addrs, seed)
	if err != nil {
		t.Fatal(err)
	}

	const n = 60
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("pk%d", i)
		if err := cl.Set(key, "v"+key, 0); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
	}

	// Every key sits on its primary (no load probed yet, so no spill) and
	// nowhere else; the cluster Get finds all of them.
	direct := make([]*client.Conn, len(addrs))
	for i, addr := range addrs {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		direct[i] = c
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("pk%d", i)
		pri, _ := ring.Candidates(key)
		for ni, c := range direct {
			_, ok, err := c.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if want := ni == pri; ok != want {
				t.Errorf("key %s on node %d: present=%v, want %v", key, ni, ok, want)
			}
		}
		if v, ok, err := cl.Get(key); err != nil || !ok || v != "v"+key {
			t.Errorf("cluster Get %s = %q, %v, %v", key, v, ok, err)
		}
	}

	// Del removes the key from both candidates.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("pk%d", i)
		found, err := cl.Del(key)
		if err != nil || !found {
			t.Fatalf("Del %s = %v, %v", key, found, err)
		}
		if _, ok, _ := cl.Get(key); ok {
			t.Errorf("key %s still readable after Del", key)
		}
	}
}

func TestClusterSpillOnDeadPrimary(t *testing.T) {
	const seed = 5
	servers, addrs := startNodes(t, 3)
	ring, err := cluster.New(addrs, seed)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.NewCluster(addrs, client.ClusterOptions{
		Pool: client.Options{Size: 2, DialTimeout: 500 * time.Millisecond},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// Find a key whose primary is node 0 and kill node 0.
	var key string
	var altIdx int
	for i := 0; ; i++ {
		key = fmt.Sprintf("spill%d", i)
		if pri, alt := ring.Candidates(key); pri == 0 {
			altIdx = alt
			break
		}
	}
	servers[0].Close()

	// The write must spill to the alternate and report landing there.
	where, err := cl.SetWhere(key, "still-stored", 0)
	if err != nil {
		t.Fatalf("SetWhere with dead primary: %v", err)
	}
	if where != addrs[altIdx] {
		t.Errorf("write landed on %s, want alternate %s", where, addrs[altIdx])
	}
	// The read falls through to the alternate.
	if v, ok, err := cl.Get(key); err != nil || !ok || v != "still-stored" {
		t.Fatalf("Get with dead primary = %q, %v, %v", v, ok, err)
	}
	// Status reports the dead node as failed and counts the fallthrough.
	var altHits uint64
	for _, st := range cl.Status() {
		switch st.Addr {
		case addrs[0]:
			if st.Err == nil {
				t.Error("Status reported dead node as healthy")
			}
		case addrs[altIdx]:
			altHits = st.ClientAltHits
		}
	}
	if altHits == 0 {
		t.Error("alternate read hit not counted")
	}
}

func TestClusterRebalanceConvergesAndCountsAgree(t *testing.T) {
	const seed = 23
	servers, addrs := startNodes(t, 3)

	// Misplace the whole keyspace: every key written straight to node 0,
	// ignoring placement — the worst case a membership change can leave.
	c0, err := client.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	const n = 600
	for i := 0; i < n; i++ {
		if err := c0.Set(fmt.Sprintf("rb%d", i), fmt.Sprintf("v%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}

	cl := newTestCluster(t, addrs, seed)
	rep, err := cl.Rebalance(64, 64)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if !rep.Converged {
		t.Errorf("rebalance did not converge: skew %.4f -> %.4f after %d rounds",
			rep.SkewBefore, rep.SkewAfter, rep.Rounds)
	}
	if rep.SkewAfter >= rep.SkewBefore {
		t.Errorf("skew did not improve: %.4f -> %.4f", rep.SkewBefore, rep.SkewAfter)
	}
	if rep.Migrated() == 0 {
		t.Error("rebalance of a fully misplaced keyspace moved nothing")
	}

	// Every key stays reachable through two-choice reads.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rb%d", i)
		if v, ok, err := cl.Get(key); err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s after rebalance = %q, %v, %v", key, v, ok, err)
		}
	}

	// The report's count must agree with the servers' own counters: keys
	// leave exactly once per MIGRATED ack, so the summed migrated_out
	// equals the report, and in equals out cluster-wide.
	var outSum, inSum uint64
	for _, addr := range addrs {
		st := nodeStats(t, addr)
		outSum += statUint(t, st, "cluster_migrated_out")
		inSum += statUint(t, st, "cluster_migrated_in")
	}
	if outSum != uint64(rep.Migrated()) {
		t.Errorf("servers report %d migrated out, client report says %d", outSum, rep.Migrated())
	}
	if inSum != outSum {
		t.Errorf("cluster-wide migrated_in %d != migrated_out %d", inSum, outSum)
	}

	// And the same figures flow through the Prometheus exporter.
	reg := obs.NewRegistry()
	reg.Register(servers[0])
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	st0 := nodeStats(t, addrs[0])
	wantLine := fmt.Sprintf(`cuckood_cluster_migrated_keys_total{direction="out"} %s`,
		st0["cluster_migrated_out"])
	if !strings.Contains(b.String(), wantLine) {
		t.Errorf("metrics output missing %q", wantLine)
	}

	// The cluster client's own collector exports the ring series.
	creg := obs.NewRegistry()
	creg.Register(cl)
	b.Reset()
	if err := creg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cuckood_cluster_load_skew",
		"cuckood_cluster_spills_total",
		`cuckood_client_breaker_state{node="` + addrs[0] + `"}`,
		`cuckood_client_breaker_transitions_total{from="closed",node="` + addrs[0] + `",to="open"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("cluster collector output missing %q", want)
		}
	}
}

func TestClusterScaleOutRepair(t *testing.T) {
	const seed = 31
	_, addrs2 := startNodes(t, 2)
	cl2 := newTestCluster(t, addrs2, seed)

	const n = 300
	for i := 0; i < n; i++ {
		if err := cl2.Set(fmt.Sprintf("so%d", i), "v", 0); err != nil {
			t.Fatal(err)
		}
	}

	// A third node joins: placement changes, so some keys are now on
	// neither of their candidates. Rebalance's home pass repairs that.
	s3 := startNode(t)
	addrs3 := append(append([]string{}, addrs2...), s3.Addr().String())
	cl3 := newTestCluster(t, addrs3, seed)
	rep, err := cl3.Rebalance(64, 64)
	if err != nil {
		t.Fatalf("Rebalance after scale-out: %v", err)
	}
	if rep.HomeRepaired == 0 {
		t.Error("scale-out rebalance repaired nothing; expected misplaced keys to move")
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("so%d", i)
		if _, ok, err := cl3.Get(key); err != nil || !ok {
			t.Fatalf("key %s unreachable after scale-out rebalance (%v)", key, err)
		}
	}
	// The new node actually took a share of the keyspace.
	if got := s3.Cache().Len(); got == 0 {
		t.Error("new node holds no keys after rebalance")
	}
}

func TestClusterDrain(t *testing.T) {
	const seed = 47
	servers, addrs := startNodes(t, 3)
	cl := newTestCluster(t, addrs, seed)

	const n = 300
	for i := 0; i < n; i++ {
		if err := cl.Set(fmt.Sprintf("dr%d", i), "v", 0); err != nil {
			t.Fatal(err)
		}
	}
	before := servers[2].Cache().Len()
	if before == 0 {
		t.Fatal("test needs keys on the drain target")
	}

	moved, err := cl.Drain(addrs[2])
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if uint64(moved) != before {
		t.Errorf("drained %d keys, node held %d", moved, before)
	}
	if got := servers[2].Cache().Len(); got != 0 {
		t.Errorf("drain target still holds %d keys", got)
	}

	// Reachability after a drain is defined under the surviving
	// membership: a client configured without the drained node finds
	// every key.
	survivors := []string{addrs[0], addrs[1]}
	cl2 := newTestCluster(t, survivors, seed)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("dr%d", i)
		if _, ok, err := cl2.Get(key); err != nil || !ok {
			t.Fatalf("key %s unreachable on survivors after drain (%v)", key, err)
		}
	}
}

func TestClusterSingleNode(t *testing.T) {
	_, addrs := startNodes(t, 1)
	cl := newTestCluster(t, addrs, 3)
	if err := cl.Set("solo", "v", 0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get("solo"); err != nil || !ok || v != "v" {
		t.Fatalf("single-node Get = %q, %v, %v", v, ok, err)
	}
	if found, err := cl.Del("solo"); err != nil || !found {
		t.Fatalf("single-node Del = %v, %v", found, err)
	}
}
