//go:build unix

package client

import (
	"errors"
	"io"
	"syscall"
)

// probeSocket peeks at an idle socket without blocking or consuming data.
// A read deadline in the past does not work here: Go's poller fails the
// Read before issuing the syscall, so a dead peer would never be noticed.
// Instead we do one non-blocking MSG_PEEK straight on the fd (the same
// trick database/sql drivers use for their pre-checkout liveness check):
// EAGAIN means alive-and-quiet, 0 bytes means the peer closed, and data
// means the pipeline is desynchronized.
func probeSocket(nc syscall.Conn) error {
	rc, err := nc.SyscallConn()
	if err != nil {
		return err
	}
	var probeErr error
	err = rc.Read(func(fd uintptr) bool {
		var buf [1]byte
		n, _, rerr := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK:
			probeErr = nil
		case rerr != nil:
			probeErr = rerr
		case n == 0:
			probeErr = io.EOF
		default:
			probeErr = errors.New("unsolicited data on idle connection")
		}
		return true // never park in the poller: this is a point-in-time probe
	})
	if err != nil {
		return err
	}
	return probeErr
}
