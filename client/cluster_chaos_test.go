package client_test

// Cluster chaos suite (docs/CLUSTER.md, docs/ROBUSTNESS.md): three fault-
// injected nodes serve a zipf read-through workload from a hardened
// cluster client; one node is killed mid-run. Acceptance properties:
//
//   - durability: no SET acknowledged by a surviving node is ever lost —
//     two-choice reads find every one of them after the kill;
//   - availability: after an unmeasured recovery pass re-warms the dead
//     node's keyspace onto the survivors (read-through: every miss is
//     re-stored through the cluster, landing on a live candidate), the
//     measured hit rate recovers to at least 90% of steady state.
//
// Faults and the zipf key sequence are seeded, so a failure reproduces
// exactly under `make chaos`.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cuckoohash/client"
	"cuckoohash/internal/faultinject"
	"cuckoohash/server"
)

// clusterChaosPlan is a mild per-node fault mix: enough to exercise the
// retry and breaker paths without drowning the hit-rate signal.
func clusterChaosPlan(seed uint64) *faultinject.Plan {
	p := faultinject.New(seed)
	p.Latency = time.Millisecond
	p.LatencyProb = 0.03
	p.PartialProb = 0.01
	p.ResetProb = 0.01
	return p
}

func startChaosNode(t *testing.T, seed uint64) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        4,
		SlotsPerShard: 1 << 11,
		SweepInterval: -1,
		FaultPlan:     clusterChaosPlan(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestChaosClusterNodeKill(t *testing.T) {
	const (
		ringSeed = 77
		universe = 400
	)
	steadyOps := 4000
	measuredOps := 4000
	if testing.Short() {
		steadyOps, measuredOps = 1000, 1000
	}

	servers := make([]*server.Server, 3)
	addrs := make([]string, 3)
	for i := range servers {
		servers[i] = startChaosNode(t, uint64(100+i))
		addrs[i] = servers[i].Addr().String()
	}

	cl, err := client.NewCluster(addrs, client.ClusterOptions{
		Pool: client.Options{
			Size:             4,
			DialTimeout:      time.Second,
			IOTimeout:        2 * time.Second,
			MaxRetries:       4,
			RetrySets:        true,
			RetryBudgetMax:   1000,
			BreakerThreshold: 5,
			BreakerCooldown:  100 * time.Millisecond,
			Seed:             1,
		},
		Seed: ringSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// ackedOnSurvivor records the last value of every SET acknowledged by
	// a node other than the one we will kill. Those writes must never be
	// lost. mu also guards the rng-driven workload bookkeeping.
	var mu sync.Mutex
	ackedOnSurvivor := map[string]string{}
	const victim = 1

	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, universe-1)
	keyOf := func() string { return fmt.Sprintf("ck%d", zipf.Uint64()) }
	valOf := func(key string) string { return "val-" + key }

	// readThrough is the workload op: GET; on a miss or failure, re-store
	// through the cluster (the write lands on a live candidate). Returns
	// whether the GET hit.
	readThrough := func(key string) bool {
		v, ok, err := cl.Get(key)
		if ok && err == nil && v == valOf(key) {
			return true
		}
		if addr, err := cl.SetWhere(key, valOf(key), 0); err == nil && addr != addrs[victim] {
			mu.Lock()
			ackedOnSurvivor[key] = valOf(key)
			mu.Unlock()
		}
		return false
	}

	// Phase 1: steady state. Measure the hit rate over the second half,
	// once the zipf head is warm.
	hits, total := 0, 0
	for i := 0; i < steadyOps; i++ {
		hit := readThrough(keyOf())
		if i >= steadyOps/2 {
			total++
			if hit {
				hits++
			}
		}
	}
	steadyRate := float64(hits) / float64(total)
	if steadyRate < 0.5 {
		t.Fatalf("steady-state hit rate %.3f implausibly low; harness broken", steadyRate)
	}

	// Kill one node. Its keyspace share becomes misses until read-through
	// re-warms the surviving candidates.
	servers[victim].Close()

	// Unmeasured recovery pass: touch the whole universe once.
	for i := 0; i < universe; i++ {
		readThrough(fmt.Sprintf("ck%d", i))
	}

	// Phase 2: measured. The survivors now hold every key (each key has
	// at least one live candidate), so the hit rate must recover.
	hits, total = 0, 0
	for i := 0; i < measuredOps; i++ {
		total++
		if readThrough(keyOf()) {
			hits++
		}
	}
	afterRate := float64(hits) / float64(total)
	t.Logf("hit rate: steady %.4f, after kill+recovery %.4f", steadyRate, afterRate)
	if afterRate < 0.9*steadyRate {
		t.Errorf("hit rate after node kill = %.4f, want >= 90%% of steady %.4f",
			afterRate, steadyRate)
	}

	// Durability audit: every SET acknowledged by a survivor is readable.
	mu.Lock()
	defer mu.Unlock()
	if len(ackedOnSurvivor) == 0 {
		t.Fatal("audit vacuous: no SET was acked on a survivor")
	}
	lost := 0
	for key, want := range ackedOnSurvivor {
		v, ok, err := cl.Get(key)
		if err != nil || !ok || v != want {
			lost++
			t.Errorf("acked key %s lost: %q, %v, %v", key, v, ok, err)
			if lost > 10 {
				t.Fatalf("stopping after %d lost keys", lost)
			}
		}
	}
	t.Logf("audited %d survivor-acked keys: all present", len(ackedOnSurvivor))
}
