package client_test

// Cluster chaos suite (docs/CLUSTER.md, docs/ROBUSTNESS.md,
// docs/REPLICATION.md): three fault-injected nodes mirror writes to each
// key's alternate under cuckoorepl and serve a zipf(s=1.2) read-through
// workload from a hardened cluster client; one node is killed mid-run.
// Acceptance properties:
//
//   - durability: no SET acknowledged by a surviving node is ever lost —
//     two-choice reads find every one of them after the kill;
//   - availability without repopulation: with the hot set replicated on
//     both candidates, the measured phase starts the instant the node
//     dies — no recovery pass — and the hit rate must still be at least
//     90% of steady state (the replica fallthrough absorbs the kill);
//   - bounded tail: the post-kill p99 Get latency stays under 500ms —
//     breakers fail the dead node fast instead of timing out per read.
//
// Faults and the zipf key sequence are seeded, so a failure reproduces
// exactly under `make chaos`.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"cuckoohash/client"
	"cuckoohash/internal/faultinject"
	"cuckoohash/server"
)

// clusterChaosPlan is a mild per-node fault mix: enough to exercise the
// retry and breaker paths without drowning the hit-rate signal.
func clusterChaosPlan(seed uint64) *faultinject.Plan {
	p := faultinject.New(seed)
	p.Latency = time.Millisecond
	p.LatencyProb = 0.03
	p.PartialProb = 0.01
	p.ResetProb = 0.01
	return p
}

func startChaosNode(t *testing.T, seed uint64) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        4,
		SlotsPerShard: 1 << 11,
		SweepInterval: -1,
		FaultPlan:     clusterChaosPlan(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestChaosClusterNodeKill(t *testing.T) {
	const (
		ringSeed = 77
		universe = 400
	)
	steadyOps := 4000
	measuredOps := 4000
	if testing.Short() {
		steadyOps, measuredOps = 1000, 1000
	}

	servers := make([]*server.Server, 3)
	addrs := make([]string, 3)
	for i := range servers {
		servers[i] = startChaosNode(t, uint64(100+i))
		addrs[i] = servers[i].Addr().String()
	}
	// Replicate with the same ring the client routes by: every write's
	// mirror lands on exactly the node the client falls through to.
	for _, s := range servers {
		if err := s.EnableReplication(addrs, ringSeed, ""); err != nil {
			t.Fatal(err)
		}
	}

	cl, err := client.NewCluster(addrs, client.ClusterOptions{
		Pool: client.Options{
			Size:             4,
			DialTimeout:      time.Second,
			IOTimeout:        2 * time.Second,
			MaxRetries:       4,
			RetrySets:        true,
			RetryBudgetMax:   1000,
			BreakerThreshold: 5,
			BreakerCooldown:  100 * time.Millisecond,
			Seed:             1,
		},
		Seed: ringSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// ackedOnSurvivor records the last value of every SET acknowledged by
	// a node other than the one we will kill. Those writes must never be
	// lost. mu also guards the rng-driven workload bookkeeping.
	var mu sync.Mutex
	ackedOnSurvivor := map[string]string{}
	const victim = 1

	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, universe-1)
	keyOf := func() string { return fmt.Sprintf("ck%d", zipf.Uint64()) }
	valOf := func(key string) string { return "val-" + key }

	// readThrough is the workload op: GET; on a miss or failure, re-store
	// through the cluster (the write lands on a live candidate). Returns
	// whether the GET hit.
	readThrough := func(key string) bool {
		v, ok, err := cl.Get(key)
		if ok && err == nil && v == valOf(key) {
			return true
		}
		if addr, err := cl.SetWhere(key, valOf(key), 0); err == nil && addr != addrs[victim] {
			mu.Lock()
			ackedOnSurvivor[key] = valOf(key)
			mu.Unlock()
		}
		return false
	}

	// Phase 1: steady state. Measure the hit rate over the second half,
	// once the zipf head is warm.
	hits, total := 0, 0
	for i := 0; i < steadyOps; i++ {
		hit := readThrough(keyOf())
		if i >= steadyOps/2 {
			total++
			if hit {
				hits++
			}
		}
	}
	steadyRate := float64(hits) / float64(total)
	if steadyRate < 0.5 {
		t.Fatalf("steady-state hit rate %.3f implausibly low; harness broken", steadyRate)
	}

	// Quiesce the mirror streams: once every peer log is empty (and has
	// stayed empty across a settle window for in-flight batches and
	// catch-up repairs), each written key holds a copy on both of its
	// candidates.
	quiesce := time.Now().Add(5 * time.Second)
	for {
		depth := 0
		for _, s := range servers {
			depth += s.ReplQueueDepth()
		}
		if depth == 0 {
			break
		}
		if time.Now().After(quiesce) {
			t.Fatalf("mirror logs never drained; %d entries still queued", depth)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)

	// Kill one node. No recovery pass follows: the replicated hot set on
	// the surviving candidates must absorb the loss immediately.
	servers[victim].Close()

	// Phase 2: measured, starting the instant the node died. Record
	// per-op latency for the tail bound alongside the hit rate.
	hits, total = 0, 0
	lats := make([]time.Duration, 0, measuredOps)
	for i := 0; i < measuredOps; i++ {
		total++
		t0 := time.Now()
		hit := readThrough(keyOf())
		lats = append(lats, time.Since(t0))
		if hit {
			hits++
		}
	}
	afterRate := float64(hits) / float64(total)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	t.Logf("hit rate: steady %.4f, immediately after kill %.4f; post-kill p99 %v",
		steadyRate, afterRate, p99)
	if afterRate < 0.9*steadyRate {
		t.Errorf("hit rate right after node kill = %.4f, want >= 90%% of steady %.4f (no repopulation pass ran)",
			afterRate, steadyRate)
	}
	if p99 > 500*time.Millisecond {
		t.Errorf("post-kill p99 = %v, want <= 500ms", p99)
	}

	// Durability audit: every SET acknowledged by a survivor is readable.
	mu.Lock()
	defer mu.Unlock()
	if len(ackedOnSurvivor) == 0 {
		t.Fatal("audit vacuous: no SET was acked on a survivor")
	}
	lost := 0
	for key, want := range ackedOnSurvivor {
		v, ok, err := cl.Get(key)
		if err != nil || !ok || v != want {
			lost++
			t.Errorf("acked key %s lost: %q, %v, %v", key, v, ok, err)
			if lost > 10 {
				t.Fatalf("stopping after %d lost keys", lost)
			}
		}
	}
	t.Logf("audited %d survivor-acked keys: all present", len(ackedOnSurvivor))
}
