package client

import (
	"bufio"
	"net"
	"testing"
	"time"
)

// scriptedServer reads request lines off the pipe and answers each with
// the next canned reply, byte-for-byte as the server's codec writers
// emit them (pinned in server/codec_repl_test.go). Together the two
// tests are a cross-package round trip without a cross-package import.
func scriptedServer(t *testing.T, nc net.Conn, replies []string) {
	t.Helper()
	go func() {
		r := bufio.NewReader(nc)
		w := bufio.NewWriter(nc)
		for _, rep := range replies {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			w.WriteString(rep)
		}
		w.Flush()
	}()
}

// TestReplReplyRoundTrip drives every replication/lease reply shape the
// server can emit through a real Conn and checks the parsed Reply.
func TestReplReplyRoundTrip(t *testing.T) {
	cnc, snc := net.Pipe()
	defer cnc.Close()
	defer snc.Close()
	scriptedServer(t, snc, []string{
		"VALUEV 42 hello world\n",
		"MISS\n",
		"VER 43\n",
		"LEASE deadbeef 2000\n",
		"WAIT 20\n",
		"STALE 5 old value\n",
		"STALE\n",
		"VER 44\n",
		"MISS\n",
	})
	c := newConn(cnc, time.Second)
	defer c.Close()

	queue := []func() error{
		func() error { return c.QueueGetV("k") },
		func() error { return c.QueueGetV("gone") },
		func() error { return c.QueueSetV("k", "v", 0) },
		func() error { return c.QueueLease("k") },
		func() error { return c.QueueLease("k") },
		func() error { return c.QueueLease("k") },
		func() error { return c.QueueLease("k") },
		func() error { return c.QueueSetLease("k", 0xdeadbeef, "v", time.Second) },
		func() error { return c.QueueSetLease("k", 0xdeadbeef, "v", 0) },
	}
	for i, q := range queue {
		if err := q(); err != nil {
			t.Fatalf("queue %d: %v", i, err)
		}
	}
	reps, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(queue) {
		t.Fatalf("got %d replies, want %d", len(reps), len(queue))
	}

	if r := reps[0]; !r.Found || r.Ver != 42 || r.Value != "hello world" {
		t.Fatalf("VALUEV parsed as %+v", r)
	}
	if r := reps[1]; r.Found || r.Err != nil {
		t.Fatalf("MISS parsed as %+v", r)
	}
	if r := reps[2]; !r.Found || r.Ver != 43 {
		t.Fatalf("VER parsed as %+v", r)
	}
	if r := reps[3]; r.Lease != 0xdeadbeef || r.LeaseTTL != 2*time.Second {
		t.Fatalf("LEASE parsed as %+v", r)
	}
	if r := reps[4]; r.Wait != 20*time.Millisecond || r.Lease != 0 {
		t.Fatalf("WAIT parsed as %+v", r)
	}
	if r := reps[5]; !r.Stale || r.Ver != 5 || r.Value != "old value" {
		t.Fatalf("STALE <ver> <val> parsed as %+v", r)
	}
	if r := reps[6]; !r.Stale || r.Ver != 0 || r.Value != "" {
		t.Fatalf("bare STALE parsed as %+v", r)
	}
	if r := reps[7]; !r.Found || r.Ver != 44 {
		t.Fatalf("SETL VER parsed as %+v", r)
	}
	if r := reps[8]; r.Found {
		t.Fatalf("SETL MISS parsed as %+v", r)
	}
}

// TestReplReplyMalformed checks that corrupt versioned replies break the
// Conn instead of yielding a half-parsed Reply.
func TestReplReplyMalformed(t *testing.T) {
	for _, bad := range []string{
		"VALUEV notanumber v\n",
		"VER \n",
		"LEASE 0 20\n",     // token 0 is never granted
		"LEASE deadbeef\n", // ttl missing
		"WAIT many\n",
		"STALE x y\n",
	} {
		cnc, snc := net.Pipe()
		scriptedServer(t, snc, []string{bad})
		c := newConn(cnc, time.Second)
		if err := c.QueueGetV("k"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Flush(); err == nil {
			t.Fatalf("reply %q parsed without error", bad)
		}
		c.Close()
		snc.Close()
	}
}

// TestVerMemory exercises the monotonic floor: ratcheting, bounded
// growth, and the zero-version no-op.
func TestVerMemory(t *testing.T) {
	vm := newVerMemory(4)
	vm.observe("a", 10)
	vm.observe("a", 5) // lower: must not regress
	if got := vm.floor("a"); got != 10 {
		t.Fatalf("floor(a) = %d, want 10", got)
	}
	vm.observe("a", 12)
	if got := vm.floor("a"); got != 12 {
		t.Fatalf("floor(a) = %d, want 12", got)
	}
	vm.observe("zero", 0) // version 0 is "no information"
	if got := vm.floor("zero"); got != 0 {
		t.Fatalf("floor(zero) = %d, want 0", got)
	}
	// Fill past capacity: the map must stay bounded.
	for _, k := range []string{"b", "c", "d", "e", "f"} {
		vm.observe(k, 1)
	}
	vm.mu.Lock()
	n := len(vm.m)
	vm.mu.Unlock()
	if n > 4 {
		t.Fatalf("version memory grew to %d entries, cap 4", n)
	}
}

// TestHotCache exercises membership-gated fills, TTL expiry, and
// write-through invalidation.
func TestHotCache(t *testing.T) {
	h := newHotCache(50 * time.Millisecond)
	now := time.Now()

	// Values for keys outside the hot set are not cached.
	h.put("cold", "v", 1, now)
	if _, _, ok := h.get("cold", now); ok {
		t.Fatal("cached a value for a key outside the hot set")
	}

	h.setHotSet([]HotKey{{Key: "hot", Count: 9}})
	if !h.isHot("hot") || h.isHot("cold") {
		t.Fatal("hot-set membership wrong after setHotSet")
	}
	h.put("hot", "v1", 7, now)
	if val, ver, ok := h.get("hot", now); !ok || val != "v1" || ver != 7 {
		t.Fatalf("get(hot) = %q/%d/%v, want v1/7/true", val, ver, ok)
	}
	// Past the TTL the copy is dead.
	if _, _, ok := h.get("hot", now.Add(51*time.Millisecond)); ok {
		t.Fatal("served a hot value past its TTL")
	}
	// A write through the client kills the copy immediately.
	h.put("hot", "v2", 8, now)
	h.invalidate("hot")
	if _, _, ok := h.get("hot", now); ok {
		t.Fatal("served a hot value after invalidation")
	}
	// Falling out of the hot set drops the value too.
	h.put("hot", "v3", 9, now)
	h.setHotSet([]HotKey{{Key: "other", Count: 1}})
	if _, _, ok := h.get("hot", now); ok {
		t.Fatal("served a value for a key that left the hot set")
	}
}
