package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned by Pool.Get (and the pooled one-shot helpers)
// while the pool's circuit breaker is open: the server address has failed
// enough consecutive transport operations that the client fast-fails
// locally instead of piling more load and dial latency onto a sick peer.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every operation fast-fails with ErrCircuitOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe operation is
	// let through. Success closes the breaker, failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// breaker is a per-address circuit breaker in the classic three-state
// shape. It trips after threshold consecutive transport failures, stays
// open for cooldown, then admits a single probe; the probe's outcome
// decides between closing and another full cooldown. A threshold of zero
// disables it entirely (every method no-ops), which keeps the default
// Pool behavior unchanged.
type breaker struct {
	threshold int
	cooldown  time.Duration
	// onOpen, when set, is invoked (outside the breaker's lock) each time
	// the breaker trips to open — the hook behind Options.OnBreakerOpen.
	onOpen func()

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	reopenAt    time.Time // valid while open
	probeAt     time.Time // last probe admission, while half-open

	opens  atomic.Uint64 // closed/half-open -> open transitions
	closes atomic.Uint64 // open/half-open -> closed transitions
	denied atomic.Uint64 // operations fast-failed while open

	// transitions counts each state-machine edge separately, indexed by
	// the br* constants; exported as
	// cuckood_client_breaker_transitions_total{from,to}.
	transitions [brEdgeCount]atomic.Uint64
}

// Breaker state-machine edges. opens/closes above aggregate these; the
// per-edge counters distinguish a trip from steady traffic (closed→open)
// from a failed recovery probe (half-open→open), which call for very
// different operator responses.
const (
	brClosedToOpen     = iota // threshold consecutive failures tripped the breaker
	brOpenToHalfOpen          // cooldown elapsed; a probe was admitted
	brHalfOpenToOpen          // the probe failed; back to a full cooldown
	brHalfOpenToClosed        // the probe succeeded; traffic restored
	brOpenToClosed            // a straggler success landed while open
	brEdgeCount
)

// brEdges names each edge for the metric's from/to labels, indexed by the
// br* constants.
var brEdges = [brEdgeCount]struct{ from, to string }{
	{"closed", "open"},
	{"open", "half-open"},
	{"half-open", "open"},
	{"half-open", "closed"},
	{"open", "closed"},
}

func (b *breaker) enabled() bool { return b != nil && b.threshold > 0 }

// allow reports whether an operation may proceed, admitting the half-open
// probe when the cooldown has elapsed.
func (b *breaker) allow() bool {
	if !b.enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(b.reopenAt) {
			b.denied.Add(1)
			return false
		}
		b.state = BreakerHalfOpen
		b.probeAt = now
		b.transitions[brOpenToHalfOpen].Add(1)
		return true
	default: // BreakerHalfOpen
		// One probe at a time — but if a probe was admitted and its result
		// never came back (caller died), allow another after a cooldown.
		if now.Sub(b.probeAt) < b.cooldown {
			b.denied.Add(1)
			return false
		}
		b.probeAt = now
		return true
	}
}

// record feeds one operation outcome into the state machine. Transport
// failures and dial failures count; server-level errors on a healthy
// connection are successes from the breaker's point of view. The onOpen
// hook fires after the lock is released, so a callback is free to read
// breaker state (snapshot, Pool.Stats) without deadlocking.
func (b *breaker) record(success bool) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	tripped := b.recordLocked(success)
	b.mu.Unlock()
	if tripped && b.onOpen != nil {
		b.onOpen()
	}
}

// recordLocked applies one outcome under b.mu and reports whether it
// tripped the breaker open.
func (b *breaker) recordLocked(success bool) bool {
	if success {
		switch b.state {
		case BreakerHalfOpen:
			b.closes.Add(1)
			b.transitions[brHalfOpenToClosed].Add(1)
		case BreakerOpen:
			b.closes.Add(1)
			b.transitions[brOpenToClosed].Add(1)
		}
		b.state = BreakerClosed
		b.consecFails = 0
		return false
	}
	b.consecFails++
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.trip()
		return true
	case BreakerClosed:
		if b.consecFails >= b.threshold {
			b.trip()
			return true
		}
	case BreakerOpen:
		// A straggler failure from before the trip; stay open.
		b.reopenAt = time.Now().Add(b.cooldown)
	}
	return false
}

// trip moves to open; callers hold b.mu.
func (b *breaker) trip() {
	if b.state == BreakerHalfOpen {
		b.transitions[brHalfOpenToOpen].Add(1)
	} else {
		b.transitions[brClosedToOpen].Add(1)
	}
	b.state = BreakerOpen
	b.reopenAt = time.Now().Add(b.cooldown)
	b.opens.Add(1)
}

// snapshot returns the current state for Pool.Stats.
func (b *breaker) snapshot() (state BreakerState, opens, closes, denied uint64) {
	if !b.enabled() {
		return BreakerClosed, 0, 0, 0
	}
	b.mu.Lock()
	state = b.state
	b.mu.Unlock()
	return state, b.opens.Load(), b.closes.Load(), b.denied.Load()
}

// transitionCounts returns the per-edge transition counters, indexed by
// the br* constants.
func (b *breaker) transitionCounts() (out [brEdgeCount]uint64) {
	if !b.enabled() {
		return out
	}
	for i := range b.transitions {
		out[i] = b.transitions[i].Load()
	}
	return out
}
