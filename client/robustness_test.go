package client

// White-box tests for the client fault-tolerance layer: sticky broken
// connections, checkout health checks, retry/backoff/budget, and the
// circuit breaker state machine. Black-box protocol tests live in
// client_test.go (package client_test).

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cuckoohash/internal/obs"
	"cuckoohash/server"
)

func startBackend(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

// TestConnBrokenIsSticky is the regression test for the half-flushed
// pipeline bug: after a transport failure mid-Flush, the connection must
// refuse every further operation with the same error rather than read
// replies that belong to earlier requests.
func TestConnBrokenIsSticky(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Queue two requests, then cut the transport under the client so the
	// flush (or its reply reads) fails partway.
	if err := c.QueueSet("a", "1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.QueueGet("a"); err != nil {
		t.Fatal(err)
	}
	c.nc.Close()
	if _, err := c.Flush(); err == nil {
		t.Fatal("Flush over a closed transport succeeded")
	}
	if !errors.Is(c.Err(), ErrBrokenConn) {
		t.Fatalf("Err() = %v, want ErrBrokenConn chain", c.Err())
	}

	// Every subsequent operation fails with the same sticky error and
	// queues nothing.
	if err := c.QueueGet("a"); !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("QueueGet after break = %v", err)
	}
	if err := c.QueueSet("a", "2", 0); !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("QueueSet after break = %v", err)
	}
	if _, err := c.Flush(); !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("Flush after break = %v", err)
	}
	if _, err := c.Stats(); !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("Stats after break = %v", err)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d on a broken conn", c.Pending())
	}
}

// TestPoolRefusesBrokenConn: Put must discard (never pool) a broken conn.
func TestPoolRefusesBrokenConn(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 2)
	defer p.Close()

	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	c.nc.Close()
	c.QueueGet("k")
	c.Flush() // breaks the conn
	p.Put(c)

	st := p.Stats()
	if st.Idle != 0 {
		t.Fatalf("broken conn was pooled: idle = %d", st.Idle)
	}
	if st.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", st.Discards)
	}
}

// TestPoolHealthCheckDiscardsDeadIdleConns: a server restart kills idle
// pooled sockets; the next Get must detect and replace them instead of
// handing the caller a dead connection.
func TestPoolHealthCheckDiscardsDeadIdleConns(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 1)
	defer p.Close()

	if err := p.Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("Idle = %d after one-shot, want 1", st.Idle)
	}
	s.Close() // server gone: the idle socket is now half-dead

	// Poll until the kernel has delivered the close to the idle socket's
	// receive queue, then Get must health-check it out of the pool.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := p.Get()
		if err != nil {
			// Dial of the replacement failed (server closed): acceptable —
			// the important part is the dead conn was not handed out.
			break
		}
		if c.Err() != nil {
			t.Fatalf("Get handed out a broken conn: %v", c.Err())
		}
		_, herr := c.healthCheck()
		healthy := herr == nil
		p.Put(c)
		if !healthy || p.Stats().HealthCheckDiscards > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health check never noticed the dead idle conn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.Stats().HealthCheckDiscards; got == 0 {
		t.Fatal("HealthCheckDiscards = 0, want > 0")
	}
}

// TestBackoffDeterministicFullJitter: same seed, same schedule; delays stay
// inside the full-jitter envelope [0, min(max, base<<n)).
func TestBackoffDeterministicFullJitter(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		b := newBackoff(2*time.Millisecond, 50*time.Millisecond, seed)
		var out []time.Duration
		for n := 1; n <= 12; n++ {
			out = append(out, b.sleepFor(n))
		}
		return out
	}
	a, b2 := mk(99), mk(99)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b2[i])
		}
		ceil := 2 * time.Millisecond << i
		if ceil > 50*time.Millisecond || ceil <= 0 {
			ceil = 50 * time.Millisecond
		}
		if a[i] < 0 || a[i] >= ceil {
			t.Fatalf("attempt %d delay %v outside [0, %v)", i+1, a[i], ceil)
		}
	}
}

func TestRetryBudgetThrottles(t *testing.T) {
	b := newRetryBudget(3)
	for i := 0; i < 3; i++ {
		if !b.take() {
			t.Fatalf("take %d denied with budget remaining", i)
		}
	}
	if b.take() {
		t.Fatal("take succeeded on empty budget")
	}
	for i := 0; i < 20; i++ {
		b.success()
	}
	if !b.take() {
		t.Fatal("take denied after successes refilled the budget")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 30 * time.Millisecond}

	// Failures below the threshold keep it closed; a success resets the
	// streak.
	b.record(false)
	b.record(false)
	b.record(true)
	b.record(false)
	b.record(false)
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state = %v before threshold, want closed", st)
	}
	b.record(false) // third consecutive failure: trip
	if st, opens, _, _ := b.snapshot(); st != BreakerOpen || opens != 1 {
		t.Fatalf("state = %v opens = %d after threshold, want open/1", st, opens)
	}
	if b.allow() {
		t.Fatal("open breaker allowed an op inside the cooldown")
	}

	// After the cooldown: exactly one half-open probe.
	time.Sleep(35 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker denied the half-open probe after cooldown")
	}
	if st, _, _, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe: straight back to open.
	b.record(false)
	if st, opens, _, _ := b.snapshot(); st != BreakerOpen || opens != 2 {
		t.Fatalf("state = %v opens = %d after failed probe, want open/2", st, opens)
	}

	// Successful probe closes it.
	time.Sleep(35 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe denied after second cooldown")
	}
	b.record(true)
	if st, _, closes, _ := b.snapshot(); st != BreakerClosed || closes != 1 {
		t.Fatalf("state = %v closes = %d after good probe, want closed/1", st, closes)
	}

	// Disabled breaker never interferes.
	var off *breaker
	if !off.allow() {
		t.Fatal("nil breaker denied an op")
	}
	off.record(false)
	zero := &breaker{}
	for i := 0; i < 100; i++ {
		zero.record(false)
	}
	if !zero.allow() {
		t.Fatal("threshold-0 breaker tripped")
	}
}

// TestPoolBreakerOpensAndRecovers drives the breaker through a full
// outage: ops fail until it opens and fast-fails, then the server comes
// back on the same address and the half-open probe closes it.
func TestPoolBreakerOpensAndRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening: dials fail fast

	p := NewPoolWith(addr, Options{
		Size:             2,
		DialTimeout:      200 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	defer p.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := p.Get1("k"); err == nil {
			t.Fatal("Get1 against a dead address succeeded")
		}
	}
	if st := p.Stats(); st.BreakerState != BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("breaker = %v opens = %d after 3 failures, want open/1",
			st.BreakerState, st.BreakerOpens)
	}
	if _, _, err := p.Get1("k"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("op while open = %v, want ErrCircuitOpen", err)
	}
	if p.Stats().BreakerDenied == 0 {
		t.Fatal("BreakerDenied = 0 after a fast-fail")
	}

	// Server comes back on the same address.
	s, err := server.New(server.Config{Addr: addr, SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	if err := s.Cache().Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := p.Get1("k")
		if err == nil && ok && v == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := p.Stats(); st.BreakerState != BreakerClosed || st.BreakerCloses == 0 {
		t.Fatalf("breaker = %v closes = %d after recovery, want closed/>0",
			st.BreakerState, st.BreakerCloses)
	}
}

// TestPoolRetriesTransportFailure: with retries on, a one-shot op survives
// a connection that dies on first use.
func TestPoolRetriesTransportFailure(t *testing.T) {
	s := startBackend(t)
	var dials atomic.Int64
	p := NewPoolWith(s.Addr().String(), Options{
		Size:        1,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Seed:        7,
		DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err == nil && dials.Add(1) == 1 {
				nc.Close() // first connection is dead on arrival
			}
			return nc, err
		},
	})
	defer p.Close()

	if err := s.Cache().Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.Get1("k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("Get1 = %q, %v, %v", v, ok, err)
	}
	if st := p.Stats(); st.Retries == 0 {
		t.Fatalf("Retries = 0, want > 0 (stats %+v)", st)
	}
}

// TestPoolNoRetryByDefault: the default pool performs exactly one attempt,
// preserving the historical exact-counter behavior of existing callers.
func TestPoolNoRetryByDefault(t *testing.T) {
	s := startBackend(t)
	var dials atomic.Int64
	p := NewPoolWith(s.Addr().String(), Options{
		Size: 1,
		DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err == nil && dials.Add(1) == 1 {
				nc.Close()
			}
			return nc, err
		},
	})
	defer p.Close()

	if _, _, err := p.Get1("k"); err == nil {
		t.Fatal("Get1 over a dead conn succeeded without retries")
	}
	if st := p.Stats(); st.Retries != 0 {
		t.Fatalf("Retries = %d with retries disabled", st.Retries)
	}
}

// TestPoolSetNotRetriedUnlessOptedIn: SET stays single-attempt unless
// RetrySets is set.
func TestPoolSetNotRetriedUnlessOptedIn(t *testing.T) {
	s := startBackend(t)
	for _, tc := range []struct {
		retrySets bool
		wantOK    bool
	}{{false, false}, {true, true}} {
		var dials atomic.Int64
		p := NewPoolWith(s.Addr().String(), Options{
			Size:        1,
			MaxRetries:  2,
			RetrySets:   tc.retrySets,
			BackoffBase: time.Millisecond,
			BackoffMax:  2 * time.Millisecond,
			Seed:        11,
			DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
				nc, err := net.DialTimeout("tcp", addr, timeout)
				if err == nil && dials.Add(1) == 1 {
					nc.Close()
				}
				return nc, err
			},
		})
		err := p.Set(fmt.Sprintf("k%v", tc.retrySets), "v", 0)
		if gotOK := err == nil; gotOK != tc.wantOK {
			t.Errorf("RetrySets=%v: Set err = %v, want success=%v",
				tc.retrySets, err, tc.wantOK)
		}
		p.Close()
	}
}

// TestRetryableClassification pins down which errors the retry loop acts on.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&ServerError{Msg: "busy"}, true},
		{&ServerError{Msg: "server full"}, false},
		{&ServerError{Msg: "line too long"}, false},
		{fmt.Errorf("%w: %w", ErrBrokenConn, errors.New("eof")), true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
		{errors.New("client: invalid key"), false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	if !IsBusy(&ServerError{Msg: "busy"}) || IsBusy(&ServerError{Msg: "full"}) {
		t.Fatal("IsBusy misclassified")
	}
}

// TestPoolCollectExportsSeries: the pool's obs.Collector emits every
// fault-tolerance series so embedding applications can scrape them.
func TestPoolCollectExportsSeries(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 2)
	defer p.Close()
	if err := p.Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	reg.Register(p)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"cuckood_client_pool_capacity 2",
		"cuckood_client_pool_idle 1",
		"cuckood_client_dials_total 1",
		"cuckood_client_retries_total 0",
		"cuckood_client_retry_budget_denied_total 0",
		"cuckood_client_health_discards_total 0",
		"cuckood_client_timeouts_total 0",
		"cuckood_client_busy_rejections_total 0",
		"cuckood_client_breaker_state 0",
		"cuckood_client_breaker_opens_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Collect output missing %q", want)
		}
	}
}

// TestConnIOTimeout: a server that stops responding trips the Flush
// deadline instead of hanging the caller forever.
func TestConnIOTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		// Read the request, never answer.
		buf := make([]byte, 1024)
		nc.Read(buf)
		time.Sleep(5 * time.Second)
	}()

	c, err := DialTimeout(ln.Addr().String(), time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.QueueGet("k"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Flush()
	if err == nil {
		t.Fatal("Flush against a mute server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("Flush err = %v, want timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Flush took %v, deadline did not fire", d)
	}
	if !errors.Is(c.Err(), ErrBrokenConn) {
		t.Fatal("timeout did not break the conn")
	}
}
