// Package client is a Go client for the cuckood cache protocol
// (docs/PROTOCOL.md). Conn is a single pipelined connection: Queue* calls
// buffer requests and Flush sends them in one write and reads all the
// responses back, amortizing syscalls exactly as the server's batch loop
// does on its side. Pool keeps a set of Conns for concurrent callers and
// offers one-shot convenience methods.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned when using a closed Conn or Pool.
var ErrClosed = errors.New("client: closed")

// ServerError is an ERR response from the daemon.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Reply is the response to one queued request.
type Reply struct {
	// Found is true for GET/TTL hits and DEL of a present key, and for
	// every successful SET.
	Found bool
	// Value is the GET value (hits only).
	Value string
	// TTL is the remaining lifetime for TTL hits; -1 means no expiry.
	TTL time.Duration
	// Err is a per-request server error (*ServerError); transport errors
	// are returned by Flush itself instead.
	Err error
}

// Conn is one pipelined protocol connection. It is not safe for
// concurrent use; use a Pool to share connections between goroutines.
type Conn struct {
	nc      net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	pending []opCode
	replies []Reply
	closed  bool
}

type opCode uint8

const (
	opGet opCode = iota
	opSet
	opDel
	opTTL
)

// Dial connects to a cuckood server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

func validKey(key string) error {
	if key == "" || len(key) > 250 || strings.ContainsAny(key, " \r\n") {
		return fmt.Errorf("client: invalid key %q", key)
	}
	return nil
}

// QueueGet buffers a GET request.
func (c *Conn) QueueGet(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	c.w.WriteString("GET ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opGet)
	return nil
}

// QueueSet buffers a SET (ttl == 0) or SETEX request. The value must not
// contain newlines; ttl is rounded up to a whole millisecond.
func (c *Conn) QueueSet(key, val string, ttl time.Duration) error {
	if err := validKey(key); err != nil {
		return err
	}
	if strings.ContainsAny(val, "\r\n") {
		return fmt.Errorf("client: value for %q contains newline", key)
	}
	if ttl <= 0 {
		c.w.WriteString("SET ")
		c.w.WriteString(key)
	} else {
		ms := (ttl + time.Millisecond - 1) / time.Millisecond
		c.w.WriteString("SETEX ")
		c.w.WriteString(key)
		c.w.WriteByte(' ')
		c.w.WriteString(strconv.FormatInt(int64(ms), 10))
	}
	c.w.WriteByte(' ')
	c.w.WriteString(val)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opSet)
	return nil
}

// QueueDel buffers a DEL request.
func (c *Conn) QueueDel(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	c.w.WriteString("DEL ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opDel)
	return nil
}

// QueueTTL buffers a TTL query.
func (c *Conn) QueueTTL(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	c.w.WriteString("TTL ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opTTL)
	return nil
}

// Pending returns the number of queued, unflushed requests.
func (c *Conn) Pending() int { return len(c.pending) }

// Flush sends every queued request in one write and reads their replies
// in order. The returned slice is reused by the next Flush. A non-nil
// error is a transport failure; per-request failures are Reply.Err.
func (c *Conn) Flush() ([]Reply, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if len(c.pending) == 0 {
		return nil, nil
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	c.replies = c.replies[:0]
	for _, op := range c.pending {
		rep, err := c.readReply(op)
		if err != nil {
			c.pending = c.pending[:0]
			return nil, err
		}
		c.replies = append(c.replies, rep)
	}
	c.pending = c.pending[:0]
	return c.replies, nil
}

func (c *Conn) readReply(op opCode) (Reply, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return Reply{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	switch {
	case line == "OK":
		return Reply{Found: true}, nil
	case line == "MISS":
		return Reply{}, nil
	case strings.HasPrefix(line, "VALUE "):
		return Reply{Found: true, Value: line[len("VALUE "):]}, nil
	case strings.HasPrefix(line, "TTL "):
		ms, perr := strconv.ParseInt(line[len("TTL "):], 10, 64)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		if ms < 0 {
			return Reply{Found: true, TTL: -1}, nil
		}
		return Reply{Found: true, TTL: time.Duration(ms) * time.Millisecond}, nil
	case strings.HasPrefix(line, "ERR "):
		return Reply{Err: &ServerError{Msg: line[len("ERR "):]}}, nil
	}
	return Reply{}, fmt.Errorf("client: unexpected reply %q for op %d", line, op)
}

// one flushes a single queued request and returns its reply.
func (c *Conn) one() (Reply, error) {
	reps, err := c.Flush()
	if err != nil {
		return Reply{}, err
	}
	if len(reps) != 1 {
		return Reply{}, fmt.Errorf("client: expected 1 reply, got %d", len(reps))
	}
	return reps[0], nil
}

// Get fetches key.
func (c *Conn) Get(key string) (string, bool, error) {
	if err := c.QueueGet(key); err != nil {
		return "", false, err
	}
	rep, err := c.one()
	if err != nil {
		return "", false, err
	}
	return rep.Value, rep.Found, rep.Err
}

// Set stores key=val with an optional TTL (0 = no expiry).
func (c *Conn) Set(key, val string, ttl time.Duration) error {
	if err := c.QueueSet(key, val, ttl); err != nil {
		return err
	}
	rep, err := c.one()
	if err != nil {
		return err
	}
	return rep.Err
}

// Del removes key, reporting whether it was present.
func (c *Conn) Del(key string) (bool, error) {
	if err := c.QueueDel(key); err != nil {
		return false, err
	}
	rep, err := c.one()
	if err != nil {
		return false, err
	}
	return rep.Found, rep.Err
}

// TTL returns key's remaining lifetime (-1 if persistent).
func (c *Conn) TTL(key string) (time.Duration, bool, error) {
	if err := c.QueueTTL(key); err != nil {
		return 0, false, err
	}
	rep, err := c.one()
	if err != nil {
		return 0, false, err
	}
	return rep.TTL, rep.Found, rep.Err
}

// Stats fetches the server's STATS map.
func (c *Conn) Stats() (map[string]string, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if len(c.pending) > 0 {
		return nil, errors.New("client: Stats with requests still queued")
	}
	if _, err := c.w.WriteString("STATS\n"); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		name, val, ok := strings.Cut(strings.TrimPrefix(line, "STAT "), " ")
		if !ok || !strings.HasPrefix(line, "STAT ") {
			return nil, fmt.Errorf("client: malformed STATS line %q", line)
		}
		out[name] = val
	}
}

// Pool is a fixed-size pool of Conns safe for concurrent use. Get blocks
// when every connection is checked out, bounding the daemon's connection
// load to Size regardless of caller concurrency.
type Pool struct {
	addr string
	mu   sync.Mutex
	free []*Conn
	sem  chan struct{}
	done bool

	dials    atomic.Uint64 // connections dialed over the pool's lifetime
	discards atomic.Uint64 // connections closed instead of returned
}

// PoolStats is a point-in-time snapshot of a Pool's connection accounting,
// for export on a metrics endpoint: InUse/Idle are gauges, Dials/Discards
// are cumulative counters.
type PoolStats struct {
	// Capacity is the pool's maximum concurrent connection count.
	Capacity int
	// InUse is the number of connections currently checked out.
	InUse int
	// Idle is the number of connections parked in the free list.
	Idle int
	// Dials counts connections dialed over the pool's lifetime.
	Dials uint64
	// Discards counts connections closed rather than pooled (transport
	// errors, unflushed requests, pool shutdown).
	Discards uint64
}

// Stats returns the pool's current connection accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.free)
	p.mu.Unlock()
	// A checked-out connection holds a sem slot; idle ones do not.
	return PoolStats{
		Capacity: cap(p.sem),
		InUse:    len(p.sem),
		Idle:     idle,
		Dials:    p.dials.Load(),
		Discards: p.discards.Load(),
	}
}

// NewPool creates a pool of up to size lazily dialed connections.
func NewPool(addr string, size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{addr: addr, sem: make(chan struct{}, size)}
}

// Get checks a connection out of the pool, dialing if none is idle.
func (p *Pool) Get() (*Conn, error) {
	p.sem <- struct{}{}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		<-p.sem
		return nil, ErrClosed
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := Dial(p.addr)
	if err != nil {
		<-p.sem
		return nil, err
	}
	p.dials.Add(1)
	return c, nil
}

// Put returns a connection to the pool. A Conn with queued-but-unflushed
// requests or a transport error should be Closed and discarded instead;
// Discard does both.
func (p *Pool) Put(c *Conn) {
	p.mu.Lock()
	if p.done || c.closed || len(c.pending) > 0 {
		p.mu.Unlock()
		c.Close()
		p.discards.Add(1)
		<-p.sem
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
	<-p.sem
}

// Discard closes a checked-out connection without pooling it.
func (p *Pool) Discard(c *Conn) {
	c.Close()
	p.discards.Add(1)
	<-p.sem
}

// Close closes all idle connections; checked-out ones close on Put.
func (p *Pool) Close() {
	p.mu.Lock()
	p.done = true
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, c := range free {
		c.Close()
	}
}

// Set is a pooled one-shot SET.
func (p *Pool) Set(key, val string, ttl time.Duration) error {
	c, err := p.Get()
	if err != nil {
		return err
	}
	err = c.Set(key, val, ttl)
	p.release(c, err)
	return err
}

// Get1 is a pooled one-shot GET (named to avoid clashing with pool
// checkout).
func (p *Pool) Get1(key string) (string, bool, error) {
	c, err := p.Get()
	if err != nil {
		return "", false, err
	}
	v, ok, err := c.Get(key)
	p.release(c, err)
	return v, ok, err
}

// Del is a pooled one-shot DEL.
func (p *Pool) Del(key string) (bool, error) {
	c, err := p.Get()
	if err != nil {
		return false, err
	}
	ok, err := c.Del(key)
	p.release(c, err)
	return ok, err
}

// release puts c back unless err was a transport failure.
func (p *Pool) release(c *Conn, err error) {
	var se *ServerError
	if err == nil || errors.As(err, &se) {
		p.Put(c)
		return
	}
	p.Discard(c)
}
