// Package client is a Go client for the cuckood cache protocol
// (docs/PROTOCOL.md). Conn is a single pipelined connection: Queue* calls
// buffer requests and Flush sends them in one write and reads all the
// responses back, amortizing syscalls exactly as the server's batch loop
// does on its side. Pool keeps a set of Conns for concurrent callers and
// offers one-shot convenience methods.
//
// The pool is also the client's fault-tolerance layer (docs/ROBUSTNESS.md):
// dial and per-operation deadlines, health-checked connection checkout,
// exponential backoff with full jitter and a retry budget for idempotent
// operations, and a per-address circuit breaker that fast-fails while the
// server is unreachable. A Conn that suffers a transport error mid-pipeline
// is marked broken and refuses further use — replies could otherwise be
// attributed to the wrong request — so it is discarded, never pooled.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cuckoohash/internal/obs"
)

// ErrClosed is returned when using a closed Conn or Pool.
var ErrClosed = errors.New("client: closed")

// ErrBrokenConn is wrapped into every error returned by a Conn after a
// transport failure left its pipeline in an undefined state. The first
// failure is sticky: all subsequent operations on the Conn fail with the
// same error instead of reading desynchronized replies.
var ErrBrokenConn = errors.New("client: connection broken")

// ServerError is an ERR response from the daemon.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Reply is the response to one queued request.
type Reply struct {
	// Found is true for GET/TTL hits and DEL of a present key, and for
	// every successful SET.
	Found bool
	// Value is the GET value (hits only).
	Value string
	// TTL is the remaining lifetime for TTL hits; -1 means no expiry.
	TTL time.Duration
	// Conflict is true when a CAS was rejected because the stored value
	// differed from the expected one (reply CONFLICT).
	Conflict bool
	// Ver is the entry's replication version word, carried by VALUEV
	// (GETV hits), VER (SETV/SETL acks), and STALE replies. Clients use
	// it as a monotonic floor: a replica copy with a lower version than
	// one already observed for the key must not be trusted.
	Ver uint64
	// Lease is the fill token from a granted LEASE (0 = not granted);
	// LeaseTTL is how long the server will honor it.
	Lease    uint64
	LeaseTTL time.Duration
	// Wait is the server's back-off hint after a lost lease race.
	Wait time.Duration
	// Stale marks a STALE reply: Value/Ver are an expired copy the
	// server is willing to serve while a fill is in flight.
	Stale bool
	// Err is a per-request server error (*ServerError); transport errors
	// are returned by Flush itself instead.
	Err error
}

// Conn is one pipelined protocol connection. It is not safe for
// concurrent use; use a Pool to share connections between goroutines.
type Conn struct {
	nc        net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	pending   []opCode
	replies   []Reply
	closed    bool
	broken    error         // sticky transport failure; nil while healthy
	ioTimeout time.Duration // per-Flush deadline; 0 = none
	trace     string        // wire trace ID prefixed to queued requests; "" = untraced
}

type opCode uint8

const (
	opGet opCode = iota
	opSet
	opDel
	opTTL
	opIncr  // INCR/DECR/ADD/MAXUPDATE: all reply OK or ERR
	opCAS   // OK, MISS, or CONFLICT
	opGetV  // VALUEV, MISS, or ERR
	opSetV  // VER or ERR
	opLease // VALUEV, LEASE, STALE, WAIT, or ERR
	opSetL  // VER, MISS (fill rejected), or ERR
)

// Dial connects to a cuckood server with no deadlines configured.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, 0, 0)
}

// DialTimeout connects to a cuckood server, bounding the dial by
// dialTimeout and every subsequent Flush (write plus each reply read) by
// ioTimeout. Zero disables the respective deadline. An operation that
// trips the deadline fails the Conn permanently, exactly like any other
// transport error.
func DialTimeout(addr string, dialTimeout, ioTimeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return newConn(nc, ioTimeout), nil
}

func newConn(nc net.Conn, ioTimeout time.Duration) *Conn {
	return &Conn{
		nc:        nc,
		r:         bufio.NewReaderSize(nc, 64<<10),
		w:         bufio.NewWriterSize(nc, 64<<10),
		ioTimeout: ioTimeout,
	}
}

// SetIOTimeout sets the per-Flush deadline (0 disables it).
func (c *Conn) SetIOTimeout(d time.Duration) { c.ioTimeout = d }

// Err returns the Conn's sticky transport error, or nil while healthy.
func (c *Conn) Err() error { return c.broken }

// fail records the first transport error, makes it sticky, and returns it.
// The pipeline state is undefined after a mid-flush failure — some requests
// may have executed, some replies may be half-read — so the only safe
// behavior is to refuse every further operation.
func (c *Conn) fail(err error) error {
	if c.broken == nil {
		c.broken = fmt.Errorf("%w: %w", ErrBrokenConn, err)
		c.pending = c.pending[:0]
	}
	return c.broken
}

// Close closes the connection.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

func validKey(key string) error {
	if key == "" || len(key) > 250 || strings.ContainsAny(key, " \r\n") {
		return fmt.Errorf("client: invalid key %q", key)
	}
	return nil
}

// QueueGet buffers a GET request.
func (c *Conn) QueueGet(key string) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("GET ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opGet)
	return nil
}

// QueueSet buffers a SET (ttl == 0) or SETEX request. The value must not
// contain newlines; ttl is rounded up to a whole millisecond.
func (c *Conn) QueueSet(key, val string, ttl time.Duration) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	if strings.ContainsAny(val, "\r\n") {
		return fmt.Errorf("client: value for %q contains newline", key)
	}
	c.writeTrace()
	if ttl <= 0 {
		c.w.WriteString("SET ")
		c.w.WriteString(key)
	} else {
		ms := (ttl + time.Millisecond - 1) / time.Millisecond
		c.w.WriteString("SETEX ")
		c.w.WriteString(key)
		c.w.WriteByte(' ')
		c.w.WriteString(strconv.FormatInt(int64(ms), 10))
	}
	c.w.WriteByte(' ')
	c.w.WriteString(val)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opSet)
	return nil
}

// QueueDel buffers a DEL request.
func (c *Conn) QueueDel(key string) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("DEL ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opDel)
	return nil
}

// QueueGetV buffers a GETV request: a GET whose hit reply carries the
// entry's replication version word.
func (c *Conn) QueueGetV(key string) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("GETV ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opGetV)
	return nil
}

// QueueSetV buffers a SETV request: a SET acknowledged with the write's
// version word (ttl 0 = no expiry; rounded up to a whole millisecond).
func (c *Conn) QueueSetV(key, val string, ttl time.Duration) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	if strings.ContainsAny(val, "\r\n") {
		return fmt.Errorf("client: value for %q contains newline", key)
	}
	var ms int64
	if ttl > 0 {
		ms = int64((ttl + time.Millisecond - 1) / time.Millisecond)
	}
	c.writeTrace()
	c.w.WriteString("SETV ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.FormatInt(ms, 10))
	c.w.WriteByte(' ')
	c.w.WriteString(val)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opSetV)
	return nil
}

// QueueLease buffers a LEASE request: a GET that, on a miss, enters the
// server's fill-lease protocol instead of returning MISS. The reply is
// a VALUEV hit, a granted LEASE token, a STALE copy, or a WAIT hint.
func (c *Conn) QueueLease(key string) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("LEASE ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opLease)
	return nil
}

// QueueSetLease buffers a SETL request: the lease winner's fill,
// publishing val under the token a LEASE grant handed out. A MISS reply
// means the fill lost (the lease expired or a newer write invalidated
// it) and nothing was stored.
func (c *Conn) QueueSetLease(key string, token uint64, val string, ttl time.Duration) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	if token == 0 {
		return fmt.Errorf("client: zero lease token for %q", key)
	}
	if strings.ContainsAny(val, "\r\n") {
		return fmt.Errorf("client: value for %q contains newline", key)
	}
	var ms int64
	if ttl > 0 {
		ms = int64((ttl + time.Millisecond - 1) / time.Millisecond)
	}
	c.writeTrace()
	c.w.WriteString("SETL ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.FormatUint(token, 16))
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.FormatInt(ms, 10))
	c.w.WriteByte(' ')
	c.w.WriteString(val)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opSetL)
	return nil
}

// QueueTTL buffers a TTL query.
func (c *Conn) QueueTTL(key string) error {
	if c.broken != nil {
		return c.broken
	}
	if err := validKey(key); err != nil {
		return err
	}
	c.writeTrace()
	c.w.WriteString("TTL ")
	c.w.WriteString(key)
	c.w.WriteByte('\n')
	c.pending = append(c.pending, opTTL)
	return nil
}

// Pending returns the number of queued, unflushed requests.
func (c *Conn) Pending() int { return len(c.pending) }

// Flush sends every queued request in one write and reads their replies
// in order. The returned slice is reused by the next Flush. A non-nil
// error is a transport failure; per-request failures are Reply.Err. After
// a transport failure the Conn is broken: the stream cannot be
// resynchronized, so every later call returns the same sticky error.
func (c *Conn) Flush() ([]Reply, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.broken != nil {
		return nil, c.broken
	}
	if len(c.pending) == 0 {
		return nil, nil
	}
	if c.ioTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.ioTimeout))
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	c.replies = c.replies[:0]
	for _, op := range c.pending {
		if c.ioTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(c.ioTimeout))
		}
		rep, err := c.readReply(op)
		if err != nil {
			return nil, c.fail(err)
		}
		c.replies = append(c.replies, rep)
	}
	c.pending = c.pending[:0]
	if c.ioTimeout > 0 {
		c.nc.SetDeadline(time.Time{})
	}
	return c.replies, nil
}

func (c *Conn) readReply(op opCode) (Reply, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return Reply{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	switch {
	case line == "OK":
		return Reply{Found: true}, nil
	case line == "MISS":
		return Reply{}, nil
	case line == "CONFLICT":
		return Reply{Conflict: true}, nil
	case strings.HasPrefix(line, "VALUE "):
		return Reply{Found: true, Value: line[len("VALUE "):]}, nil
	case strings.HasPrefix(line, "TTL "):
		ms, perr := strconv.ParseInt(line[len("TTL "):], 10, 64)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		if ms < 0 {
			return Reply{Found: true, TTL: -1}, nil
		}
		return Reply{Found: true, TTL: time.Duration(ms) * time.Millisecond}, nil
	case strings.HasPrefix(line, "VALUEV "):
		ver, rest, perr := cutUint(line[len("VALUEV "):], 10)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		return Reply{Found: true, Ver: ver, Value: rest}, nil
	case strings.HasPrefix(line, "VER "):
		ver, perr := strconv.ParseUint(line[len("VER "):], 10, 64)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		return Reply{Found: true, Ver: ver}, nil
	case strings.HasPrefix(line, "LEASE "):
		tokTok, msTok, ok := strings.Cut(line[len("LEASE "):], " ")
		token, perr := strconv.ParseUint(tokTok, 16, 64)
		if !ok || perr != nil || token == 0 {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		ms, perr := strconv.ParseInt(msTok, 10, 64)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		return Reply{Lease: token, LeaseTTL: time.Duration(ms) * time.Millisecond}, nil
	case strings.HasPrefix(line, "WAIT "):
		ms, perr := strconv.ParseInt(line[len("WAIT "):], 10, 64)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		return Reply{Wait: time.Duration(ms) * time.Millisecond}, nil
	case strings.HasPrefix(line, "STALE "):
		ver, rest, perr := cutUint(line[len("STALE "):], 10)
		if perr != nil {
			return Reply{}, fmt.Errorf("client: malformed reply %q", line)
		}
		return Reply{Stale: true, Ver: ver, Value: rest}, nil
	case line == "STALE":
		// The bare mirror-rejection form (REPLSET/REPLDEL); ordinary
		// clients never see it, but parsing it keeps the codec total.
		return Reply{Stale: true}, nil
	case strings.HasPrefix(line, "ERR "):
		return Reply{Err: &ServerError{Msg: line[len("ERR "):]}}, nil
	}
	return Reply{}, fmt.Errorf("client: unexpected reply %q for op %d", line, op)
}

// cutUint splits "<uint> <rest>" where rest may contain spaces, parsing
// the leading integer in the given base.
func cutUint(s string, base int) (uint64, string, error) {
	numTok, rest, _ := strings.Cut(s, " ")
	n, err := strconv.ParseUint(numTok, base, 64)
	return n, rest, err
}

// one flushes a single queued request and returns its reply.
func (c *Conn) one() (Reply, error) {
	reps, err := c.Flush()
	if err != nil {
		return Reply{}, err
	}
	if len(reps) != 1 {
		return Reply{}, fmt.Errorf("client: expected 1 reply, got %d", len(reps))
	}
	return reps[0], nil
}

// Get fetches key.
func (c *Conn) Get(key string) (string, bool, error) {
	if err := c.QueueGet(key); err != nil {
		return "", false, err
	}
	rep, err := c.one()
	if err != nil {
		return "", false, err
	}
	return rep.Value, rep.Found, rep.Err
}

// Set stores key=val with an optional TTL (0 = no expiry).
func (c *Conn) Set(key, val string, ttl time.Duration) error {
	if err := c.QueueSet(key, val, ttl); err != nil {
		return err
	}
	rep, err := c.one()
	if err != nil {
		return err
	}
	return rep.Err
}

// Del removes key, reporting whether it was present.
func (c *Conn) Del(key string) (bool, error) {
	if err := c.QueueDel(key); err != nil {
		return false, err
	}
	rep, err := c.one()
	if err != nil {
		return false, err
	}
	return rep.Found, rep.Err
}

// GetV fetches key with its replication version word.
func (c *Conn) GetV(key string) (val string, ver uint64, found bool, err error) {
	if err := c.QueueGetV(key); err != nil {
		return "", 0, false, err
	}
	rep, err := c.one()
	if err != nil {
		return "", 0, false, err
	}
	return rep.Value, rep.Ver, rep.Found, rep.Err
}

// SetV stores key=val (ttl 0 = no expiry) and returns the write's
// version word (0 if the entry was evicted before the acknowledging
// read-back — harmless, the client just learns nothing).
func (c *Conn) SetV(key, val string, ttl time.Duration) (uint64, error) {
	if err := c.QueueSetV(key, val, ttl); err != nil {
		return 0, err
	}
	rep, err := c.one()
	if err != nil {
		return 0, err
	}
	return rep.Ver, rep.Err
}

// Lease runs one round of the miss-lease protocol for key. Inspect the
// Reply: Found means a live hit (Value/Ver are set), Lease != 0 means
// this caller won the fill and must publish via SetLease, Stale means
// the server offered an expired copy, and otherwise Wait is the retry
// hint. Pool.GetOrFill drives the whole loop.
func (c *Conn) Lease(key string) (Reply, error) {
	if err := c.QueueLease(key); err != nil {
		return Reply{}, err
	}
	rep, err := c.one()
	if err != nil {
		return Reply{}, err
	}
	return rep, rep.Err
}

// SetLease publishes a lease fill. filled reports whether the server
// accepted it; a false return means the token lost to a newer write or
// expiry and nothing was stored.
func (c *Conn) SetLease(key string, token uint64, val string, ttl time.Duration) (ver uint64, filled bool, err error) {
	if err := c.QueueSetLease(key, token, val, ttl); err != nil {
		return 0, false, err
	}
	rep, err := c.one()
	if err != nil {
		return 0, false, err
	}
	return rep.Ver, rep.Found, rep.Err
}

// TTL returns key's remaining lifetime (-1 if persistent).
func (c *Conn) TTL(key string) (time.Duration, bool, error) {
	if err := c.QueueTTL(key); err != nil {
		return 0, false, err
	}
	rep, err := c.one()
	if err != nil {
		return 0, false, err
	}
	return rep.TTL, rep.Found, rep.Err
}

// Stats fetches the server's STATS map.
func (c *Conn) Stats() (map[string]string, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.broken != nil {
		return nil, c.broken
	}
	if len(c.pending) > 0 {
		return nil, errors.New("client: Stats with requests still queued")
	}
	if c.ioTimeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if _, err := c.w.WriteString("STATS\n"); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	out := make(map[string]string)
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, c.fail(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		name, val, ok := strings.Cut(strings.TrimPrefix(line, "STAT "), " ")
		if !ok || !strings.HasPrefix(line, "STAT ") {
			return nil, fmt.Errorf("client: malformed STATS line %q", line)
		}
		out[name] = val
	}
}

// Health-check failure reasons, indexed into Pool's per-reason counters
// and exported as cuckood_client_health_check_failures_total{reason}.
const (
	healthBroken   = iota // sticky transport error from an earlier failure
	healthClosed          // the Conn was closed while pooled
	healthBuffered        // unsolicited buffered bytes: pipeline desync
	healthSocket          // the socket probe saw EOF/error (server went away)
	healthReasonCount
)

// healthReasons names each failure class for the metric's reason label.
var healthReasons = [healthReasonCount]string{"broken", "closed", "buffered", "socket"}

// healthCheck probes a pooled idle connection before it is handed out:
// broken or closed conns, unsolicited buffered bytes (pipeline desync),
// and sockets the server has since closed are all rejected, with the
// failure class reported for per-reason accounting. The probe is one
// non-blocking MSG_PEEK syscall (see probeSocket), so a healthy checkout
// stays cheap.
func (c *Conn) healthCheck() (int, error) {
	if c.broken != nil {
		return healthBroken, c.broken
	}
	if c.closed {
		return healthClosed, ErrClosed
	}
	if c.r.Buffered() > 0 {
		return healthBuffered, c.fail(errors.New("unsolicited data buffered"))
	}
	if sc, ok := c.nc.(syscall.Conn); ok {
		if err := probeSocket(sc); err != nil {
			return healthSocket, c.fail(err)
		}
	}
	return 0, nil
}

// Options configures a Pool's sizing and fault-tolerance behavior. The
// zero value of every field selects a safe default; in particular retries
// and the circuit breaker are opt-in (MaxRetries / BreakerThreshold zero
// keep them off), so NewPool's historical behavior is unchanged.
type Options struct {
	// Size is the maximum number of concurrent connections (default 1).
	Size int
	// DialTimeout bounds each dial (default 5s; negative = no limit).
	DialTimeout time.Duration
	// IOTimeout bounds each Flush write and reply read (0 = none).
	IOTimeout time.Duration
	// MaxRetries is how many times an idempotent one-shot op (Get1, Del,
	// TTL1 — and Set when RetrySets is set) is retried after a transport
	// failure or busy rejection. 0 disables retries.
	MaxRetries int
	// RetrySets opts SET into the retry policy. A retried SET re-executes
	// on the server if the ack was lost; that is idempotent for
	// last-writer-wins caching but not for every workload, hence opt-in.
	RetrySets bool
	// BackoffBase and BackoffMax bound the full-jitter exponential backoff
	// between retries (defaults 2ms and 250ms).
	BackoffBase, BackoffMax time.Duration
	// RetryBudgetMax caps the retry token bucket (default 20): each retry
	// spends one token, each success refills 0.1, so sustained failure
	// degrades to single attempts instead of amplifying load.
	RetryBudgetMax float64
	// BreakerThreshold is how many consecutive transport failures open the
	// circuit breaker (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// a half-open probe (default 1s).
	BreakerCooldown time.Duration
	// Seed makes retry jitter deterministic for tests (0 = time-seeded).
	Seed uint64
	// OnBreakerOpen, when set, is called each time the circuit breaker
	// trips open (closed→open or a failed half-open probe). It runs on the
	// goroutine that recorded the tripping failure, outside the breaker's
	// lock; use it to dump diagnostics the moment an address goes dark.
	OnBreakerOpen func()
	// DialFunc overrides the transport dial, e.g. to inject faults in
	// chaos tests. It receives the dial timeout already resolved.
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o *Options) setDefaults() {
	if o.Size < 1 {
		o.Size = 1
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	} else if o.DialTimeout < 0 {
		o.DialTimeout = 0
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.DialFunc == nil {
		o.DialFunc = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

// Pool is a fixed-size pool of Conns safe for concurrent use. Get blocks
// when every connection is checked out, bounding the daemon's connection
// load to Size regardless of caller concurrency. Idle connections are
// health-checked at checkout and broken ones replaced, so a server restart
// costs each pooled connection one discard, not one caller error.
type Pool struct {
	addr string
	opt  Options
	mu   sync.Mutex
	free []*Conn
	sem  chan struct{}
	done bool

	brk     *breaker
	backoff *backoff
	budget  *retryBudget

	dials          atomic.Uint64 // connections dialed over the pool's lifetime
	dialFails      atomic.Uint64 // dial attempts that failed
	discards       atomic.Uint64 // connections closed instead of returned
	healthDiscards atomic.Uint64 // idle connections failing the checkout health check
	retries        atomic.Uint64 // op retries performed
	budgetDenied   atomic.Uint64 // retries suppressed by an empty budget
	timeouts       atomic.Uint64 // transport errors that were deadline timeouts
	busyErrs       atomic.Uint64 // server busy rejections observed
	leaseWaits     atomic.Uint64 // lease-protocol rounds spent waiting on another client's fill
	leaseFills     atomic.Uint64 // fills published after winning a lease
	leaseStale     atomic.Uint64 // stale copies accepted while a fill was in flight

	// healthFails counts checkout health-check failures by reason,
	// indexed by the health* constants.
	healthFails [healthReasonCount]atomic.Uint64
}

// PoolStats is a point-in-time snapshot of a Pool's connection accounting,
// for export on a metrics endpoint: InUse/Idle/BreakerState are gauges,
// the rest are cumulative counters.
type PoolStats struct {
	// Capacity is the pool's maximum concurrent connection count.
	Capacity int
	// InUse is the number of connections currently checked out.
	InUse int
	// Idle is the number of connections parked in the free list.
	Idle int
	// Dials counts connections dialed over the pool's lifetime.
	Dials uint64
	// DialFailures counts dial attempts that failed.
	DialFailures uint64
	// Discards counts connections closed rather than pooled (transport
	// errors, unflushed requests, pool shutdown).
	Discards uint64
	// HealthCheckDiscards counts idle connections rejected by the checkout
	// health check (already counted in Discards as well).
	HealthCheckDiscards uint64
	// HealthCheckFailures breaks HealthCheckDiscards down by failure class
	// ("broken", "closed", "buffered", "socket").
	HealthCheckFailures map[string]uint64
	// RetryBudgetTokens is the retry token bucket's current level (its
	// configured max while retries are disabled — nothing is spending).
	RetryBudgetTokens float64
	// Retries counts operation retry attempts.
	Retries uint64
	// RetryBudgetDenied counts retries suppressed by an exhausted budget.
	RetryBudgetDenied uint64
	// Timeouts counts transport failures that were deadline timeouts.
	Timeouts uint64
	// BusyRejections counts server "ERR busy" overload rejections.
	BusyRejections uint64
	// LeaseWaits counts GetOrFill rounds spent waiting on another
	// client's in-flight fill; LeaseFills counts fills published after
	// winning a lease; LeaseStaleServed counts stale copies accepted.
	LeaseWaits, LeaseFills, LeaseStaleServed uint64
	// BreakerState is the circuit breaker position ("closed", "open",
	// "half-open").
	BreakerState BreakerState
	// BreakerOpens, BreakerCloses, and BreakerDenied count breaker trips,
	// recoveries, and operations fast-failed while open.
	BreakerOpens, BreakerCloses, BreakerDenied uint64
}

// Stats returns the pool's current connection accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.free)
	p.mu.Unlock()
	state, opens, closes, denied := p.brk.snapshot()
	hf := make(map[string]uint64, healthReasonCount)
	for i, name := range healthReasons {
		hf[name] = p.healthFails[i].Load()
	}
	// A checked-out connection holds a sem slot; idle ones do not.
	return PoolStats{
		Capacity:            cap(p.sem),
		InUse:               len(p.sem),
		Idle:                idle,
		Dials:               p.dials.Load(),
		DialFailures:        p.dialFails.Load(),
		Discards:            p.discards.Load(),
		HealthCheckDiscards: p.healthDiscards.Load(),
		HealthCheckFailures: hf,
		RetryBudgetTokens:   p.budgetLevel(),
		Retries:             p.retries.Load(),
		RetryBudgetDenied:   p.budgetDenied.Load(),
		Timeouts:            p.timeouts.Load(),
		BusyRejections:      p.busyErrs.Load(),
		LeaseWaits:          p.leaseWaits.Load(),
		LeaseFills:          p.leaseFills.Load(),
		LeaseStaleServed:    p.leaseStale.Load(),
		BreakerState:        state,
		BreakerOpens:        opens,
		BreakerCloses:       closes,
		BreakerDenied:       denied,
	}
}

// NewPool creates a pool of up to size lazily dialed connections with
// default options (no retries, no breaker).
func NewPool(addr string, size int) *Pool {
	return NewPoolWith(addr, Options{Size: size})
}

// NewPoolWith creates a pool with explicit fault-tolerance options.
func NewPoolWith(addr string, opt Options) *Pool {
	opt.setDefaults()
	p := &Pool{
		addr: addr,
		opt:  opt,
		sem:  make(chan struct{}, opt.Size),
		brk: &breaker{
			threshold: opt.BreakerThreshold,
			cooldown:  opt.BreakerCooldown,
			onOpen:    opt.OnBreakerOpen,
		},
	}
	if opt.MaxRetries > 0 {
		p.backoff = newBackoff(opt.BackoffBase, opt.BackoffMax, opt.Seed)
		p.budget = newRetryBudget(opt.RetryBudgetMax)
	}
	return p
}

// Get checks a connection out of the pool, dialing if none is idle. It
// fails fast with ErrCircuitOpen while the breaker is open, and discards
// (then replaces) idle connections that fail the health check.
func (p *Pool) Get() (*Conn, error) {
	if !p.brk.allow() {
		return nil, ErrCircuitOpen
	}
	p.sem <- struct{}{}
	for {
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			<-p.sem
			return nil, ErrClosed
		}
		var c *Conn
		if n := len(p.free); n > 0 {
			c = p.free[n-1]
			p.free = p.free[:n-1]
		}
		p.mu.Unlock()
		if c == nil {
			break
		}
		reason, err := c.healthCheck()
		if err == nil {
			return c, nil
		}
		c.Close()
		p.discards.Add(1)
		p.healthDiscards.Add(1)
		p.healthFails[reason].Add(1)
	}
	nc, err := p.opt.DialFunc(p.addr, p.opt.DialTimeout)
	if err != nil {
		<-p.sem
		p.dialFails.Add(1)
		p.brk.record(false)
		return nil, err
	}
	p.dials.Add(1)
	return newConn(nc, p.opt.IOTimeout), nil
}

// Put returns a connection to the pool. A Conn with queued-but-unflushed
// requests, a sticky transport error, or a closed socket is closed and
// discarded instead; Discard does both explicitly.
func (p *Pool) Put(c *Conn) {
	p.mu.Lock()
	if p.done || c.closed || c.broken != nil || len(c.pending) > 0 {
		done := p.done
		p.mu.Unlock()
		c.Close()
		p.discards.Add(1)
		if !done {
			p.brk.record(c.broken != nil)
		}
		<-p.sem
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
	p.brk.record(true)
	<-p.sem
}

// Discard closes a checked-out connection without pooling it, counting it
// as a transport failure for the circuit breaker.
func (p *Pool) Discard(c *Conn) {
	c.Close()
	p.discards.Add(1)
	p.brk.record(false)
	<-p.sem
}

// Close closes all idle connections; checked-out ones close on Put.
func (p *Pool) Close() {
	p.mu.Lock()
	p.done = true
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, c := range free {
		c.Close()
	}
}

// do runs one pooled operation with the pool's retry policy. canRetry
// gates retries entirely (non-idempotent ops pass false unless opted in);
// each retry consumes budget and sleeps a full-jitter backoff first.
func (p *Pool) do(canRetry bool, fn func(c *Conn) error) error {
	attempts := 1
	if canRetry && p.opt.MaxRetries > 0 {
		attempts += p.opt.MaxRetries
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if !p.budget.take() {
				p.budgetDenied.Add(1)
				break
			}
			p.retries.Add(1)
			time.Sleep(p.backoff.sleepFor(a))
		}
		c, err := p.Get()
		if err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrCircuitOpen) {
				// Terminal for this op: the pool is gone, or the breaker
				// wants silence — backing off here would defeat its point.
				return err
			}
			lastErr = err
			continue
		}
		err = fn(c)
		p.release(c, err)
		if err == nil {
			if p.budget != nil {
				p.budget.success()
			}
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
	}
	return lastErr
}

// Set is a pooled one-shot SET. It is retried only when Options.RetrySets
// opted SETs into the retry policy.
func (p *Pool) Set(key, val string, ttl time.Duration) error {
	return p.do(p.opt.RetrySets, func(c *Conn) error {
		return c.Set(key, val, ttl)
	})
}

// Get1 is a pooled one-shot GET (named to avoid clashing with pool
// checkout).
func (p *Pool) Get1(key string) (string, bool, error) {
	var v string
	var ok bool
	err := p.do(true, func(c *Conn) error {
		var err error
		v, ok, err = c.Get(key)
		return err
	})
	return v, ok, err
}

// Del is a pooled one-shot DEL.
func (p *Pool) Del(key string) (bool, error) {
	var ok bool
	err := p.do(true, func(c *Conn) error {
		var err error
		ok, err = c.Del(key)
		return err
	})
	return ok, err
}

// GetV1 is a pooled one-shot GETV.
func (p *Pool) GetV1(key string) (val string, ver uint64, found bool, err error) {
	err = p.do(true, func(c *Conn) error {
		var cerr error
		val, ver, found, cerr = c.GetV(key)
		return cerr
	})
	return val, ver, found, err
}

// SetV1 is a pooled one-shot SETV, returning the write's version word.
// Like Set, it is retried only when Options.RetrySets is set.
func (p *Pool) SetV1(key, val string, ttl time.Duration) (uint64, error) {
	var ver uint64
	err := p.do(p.opt.RetrySets, func(c *Conn) error {
		var cerr error
		ver, cerr = c.SetV(key, val, ttl)
		return cerr
	})
	return ver, err
}

// Lease defaults for GetOrFill: the back-off used when the server
// offers no hint, and the round bound (100 rounds × the server's 20ms
// default hint covers one full 2s lease lifetime, so a crashed filler
// is always outlived).
const (
	leaseDefaultWait = 20 * time.Millisecond
	leaseMaxRounds   = 100
)

// ErrLeaseWait is returned by GetOrFill when the key stayed unfilled
// through the whole round budget — every round lost the lease race and
// no fill ever landed.
var ErrLeaseWait = errors.New("client: lease wait exhausted")

// GetOrFill fetches key, collapsing concurrent misses into one backend
// fill via the server's miss-lease protocol: a live hit returns
// immediately; on a miss the first caller wins a fill token, computes
// the value with fill, and publishes it with SETL while everyone else
// waits briefly (or, with acceptStale, takes an expired copy the server
// still holds). fill runs at most once per call and only after winning
// the lease; its value is returned to this caller even when the
// publish loses to a concurrent fresher write.
func (p *Pool) GetOrFill(key string, ttl time.Duration, acceptStale bool, fill func() (string, error)) (string, error) {
	for round := 0; round < leaseMaxRounds; round++ {
		var rep Reply
		err := p.do(true, func(c *Conn) error {
			var cerr error
			rep, cerr = c.Lease(key)
			return cerr
		})
		if err != nil {
			return "", err
		}
		switch {
		case rep.Found:
			return rep.Value, nil
		case rep.Lease != 0:
			val, err := fill()
			if err != nil {
				// The unreleased lease expires on its own; waiters fall
				// back to re-acquiring after the TTL.
				return "", err
			}
			p.do(false, func(c *Conn) error {
				_, _, cerr := c.SetLease(key, rep.Lease, val, ttl)
				return cerr
			})
			// A rejected fill means a fresher write already landed; the
			// freshly computed value is still correct to serve here.
			p.leaseFills.Add(1)
			return val, nil
		case rep.Stale && acceptStale:
			p.leaseStale.Add(1)
			return rep.Value, nil
		default:
			p.leaseWaits.Add(1)
			wait := rep.Wait
			if wait <= 0 {
				wait = leaseDefaultWait
			}
			time.Sleep(wait)
		}
	}
	return "", ErrLeaseWait
}

// TTL1 is a pooled one-shot TTL query.
func (p *Pool) TTL1(key string) (time.Duration, bool, error) {
	var d time.Duration
	var ok bool
	err := p.do(true, func(c *Conn) error {
		var err error
		d, ok, err = c.TTL(key)
		return err
	})
	return d, ok, err
}

// Collect implements obs.Collector so applications embedding the client
// can export its fault-tolerance counters next to their own metrics.
func (p *Pool) Collect(m *obs.Metrics) {
	p.CollectWith(m)
}

// CollectWith renders the same series as Collect with the given label
// pairs attached to every sample. The cluster client uses it to export
// one series set per node (label "node"), so a dashboard can tell which
// peer's breaker tripped.
func (p *Pool) CollectWith(m *obs.Metrics, labels ...string) {
	st := p.Stats()
	m.Gauge("cuckood_client_pool_capacity", "Maximum concurrent pooled connections.", float64(st.Capacity), labels...)
	m.Gauge("cuckood_client_pool_in_use", "Connections currently checked out.", float64(st.InUse), labels...)
	m.Gauge("cuckood_client_pool_idle", "Connections parked in the free list.", float64(st.Idle), labels...)
	m.Counter("cuckood_client_dials_total", "Connections dialed over the pool's lifetime.", float64(st.Dials), labels...)
	m.Counter("cuckood_client_dial_failures_total", "Dial attempts that failed.", float64(st.DialFailures), labels...)
	m.Counter("cuckood_client_discards_total", "Connections closed instead of pooled.", float64(st.Discards), labels...)
	m.Counter("cuckood_client_health_discards_total", "Idle connections rejected by the checkout health check.", float64(st.HealthCheckDiscards), labels...)
	for _, reason := range healthReasons {
		m.Counter("cuckood_client_health_check_failures_total",
			"Checkout health-check failures by class: broken, closed, buffered (pipeline desync), socket (peer went away).",
			float64(st.HealthCheckFailures[reason]), append([]string{"reason", reason}, labels...)...)
	}
	m.Counter("cuckood_client_retries_total", "Operation retry attempts.", float64(st.Retries), labels...)
	m.Counter("cuckood_client_retry_budget_denied_total", "Retries suppressed by an exhausted retry budget.", float64(st.RetryBudgetDenied), labels...)
	m.Gauge("cuckood_client_retry_budget_tokens", "Retry token bucket level; near zero means retries are being rationed.", st.RetryBudgetTokens, labels...)
	m.Counter("cuckood_client_timeouts_total", "Transport failures that were deadline timeouts.", float64(st.Timeouts), labels...)
	m.Counter("cuckood_client_busy_rejections_total", "Server ERR busy overload rejections observed.", float64(st.BusyRejections), labels...)
	m.Counter("cuckood_client_lease_waits_total", "GetOrFill rounds spent waiting on another client's in-flight fill.", float64(st.LeaseWaits), labels...)
	m.Counter("cuckood_client_lease_fills_total", "Fills published after winning a miss lease.", float64(st.LeaseFills), labels...)
	m.Counter("cuckood_client_lease_stale_served_total", "Stale copies accepted while a fill was in flight.", float64(st.LeaseStaleServed), labels...)
	m.Gauge("cuckood_client_breaker_state", "Circuit breaker position: 0 closed, 1 open, 2 half-open.", float64(st.BreakerState), labels...)
	m.Counter("cuckood_client_breaker_opens_total", "Circuit breaker trips.", float64(st.BreakerOpens), labels...)
	m.Counter("cuckood_client_breaker_closes_total", "Circuit breaker recoveries.", float64(st.BreakerCloses), labels...)
	m.Counter("cuckood_client_breaker_denied_total", "Operations fast-failed while the breaker was open.", float64(st.BreakerDenied), labels...)
	for i, n := range p.brk.transitionCounts() {
		e := brEdges[i]
		m.Counter("cuckood_client_breaker_transitions_total",
			"Circuit breaker state transitions by edge.",
			float64(n), append([]string{"from", e.from, "to", e.to}, labels...)...)
	}
}

// budgetLevel returns the retry budget's current token count, or its
// configured maximum when retries are disabled (no budget exists, so
// nothing is ever denied).
func (p *Pool) budgetLevel() float64 {
	if p.budget == nil {
		if p.opt.RetryBudgetMax > 0 {
			return p.opt.RetryBudgetMax
		}
		return 20
	}
	return p.budget.level()
}

// release puts c back unless err was a transport failure, and keeps the
// failure-class counters.
func (p *Pool) release(c *Conn, err error) {
	var se *ServerError
	if err == nil || errors.As(err, &se) {
		if IsBusy(err) {
			p.busyErrs.Add(1)
		}
		p.Put(c)
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		p.timeouts.Add(1)
	}
	p.Discard(c)
}
