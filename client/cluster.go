package client

// Cluster-aware client (docs/CLUSTER.md). A Cluster fronts a static ring
// of cuckood nodes with the same two-choice discipline the table applies
// to buckets: every key has a primary and an alternate node
// (internal/cluster derives both from one hash, like hashfn.TwoBuckets),
// reads fall through primary → alternate, and writes spill to the
// alternate when the primary is overloaded or unreachable. Each node gets
// its own Pool, so the fault-tolerance machinery — health-checked
// checkout, retries with budget, per-address circuit breaker — composes
// per node: one sick peer trips one breaker and the keyspace keeps
// flowing through the other candidates.

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cuckoohash/internal/cluster"
	"cuckoohash/internal/obs"
)

// clientMigrateTimeout floors the deadline on a MIGRATE exchange: bulk
// key movement legitimately outlives the per-operation IO timeout tuned
// for single GETs.
const clientMigrateTimeout = 30 * time.Second

// ClusterInfo fetches the node's CLUSTER map (load figures and migration
// counters; see docs/PROTOCOL.md).
func (c *Conn) ClusterInfo() (map[string]string, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.broken != nil {
		return nil, c.broken
	}
	if len(c.pending) > 0 {
		return nil, errors.New("client: ClusterInfo with requests still queued")
	}
	if c.ioTimeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if _, err := c.w.WriteString("CLUSTER\n"); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	out := make(map[string]string)
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, c.fail(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		name, val, ok := strings.Cut(strings.TrimPrefix(line, "CLUSTER "), " ")
		if !ok || !strings.HasPrefix(line, "CLUSTER ") {
			return nil, fmt.Errorf("client: malformed CLUSTER line %q", line)
		}
		out[name] = val
	}
}

// Migrate asks the connected node to move up to max keys (0 = unlimited)
// matching mode ("home" or "shed") to dest, under the given ring
// membership and placement seed, and returns how many keys moved. The
// exchange gets a deadline of at least clientMigrateTimeout because the
// server transfers the selected keys synchronously before answering.
func (c *Conn) Migrate(mode, dest, self string, seed uint64, max int, ring string) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	if c.broken != nil {
		return 0, c.broken
	}
	if len(c.pending) > 0 {
		return 0, errors.New("client: Migrate with requests still queued")
	}
	if c.ioTimeout > 0 {
		d := c.ioTimeout
		if d < clientMigrateTimeout {
			d = clientMigrateTimeout
		}
		c.nc.SetDeadline(time.Now().Add(d))
		defer c.nc.SetDeadline(time.Time{})
	}
	c.writeTrace()
	fmt.Fprintf(c.w, "MIGRATE %s %s %s %d %d %s\n", mode, dest, self, seed, max, ring)
	if err := c.w.Flush(); err != nil {
		return 0, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, c.fail(err)
	}
	line = strings.TrimRight(line, "\r\n")
	if rest, ok := strings.CutPrefix(line, "MIGRATED "); ok {
		return strconv.Atoi(rest)
	}
	if rest, ok := strings.CutPrefix(line, "ERR "); ok {
		return 0, &ServerError{Msg: rest}
	}
	return 0, fmt.Errorf("client: unexpected MIGRATE reply %q", line)
}

// ClusterOptions configures a Cluster. Every zero value selects a usable
// default; Seed must match the one every other client, server, and
// cuckooctl invocation uses, or they will disagree about key placement.
type ClusterOptions struct {
	// Pool configures each node's connection pool (sizing, retries,
	// breaker). Applied identically to every node.
	Pool Options
	// SpillWatermark is the load fraction (entries/capacity, as last
	// probed) at which writes start spilling to the key's alternate node.
	// Default 0.9.
	SpillWatermark float64
	// SkewTarget is the relative load skew — (max-mean)/mean, see
	// cluster.Skew — below which Rebalance declares convergence.
	// Default 0.25.
	SkewTarget float64
	// Seed fixes the ring placement hash.
	Seed uint64
	// HotCache enables the client-side hot-key cache: the cluster polls
	// the servers' HOTKEYS top-K every HotRefresh and serves repeat
	// reads of those keys locally for up to HotCacheTTL, with writes
	// through this Cluster invalidating their key immediately.
	HotCache bool
	// HotCacheTTL bounds the staleness of locally served hot values
	// (default 100ms).
	HotCacheTTL time.Duration
	// HotRefresh is the HOTKEYS polling interval (default 1s).
	HotRefresh time.Duration
	// HotKeyCount is how many hot keys to track (default 16).
	HotKeyCount int
}

func (o *ClusterOptions) setDefaults() {
	if o.SpillWatermark <= 0 {
		o.SpillWatermark = 0.9
	}
	if o.SkewTarget <= 0 {
		o.SkewTarget = 0.25
	}
	if o.HotCacheTTL <= 0 {
		o.HotCacheTTL = 100 * time.Millisecond
	}
	if o.HotRefresh <= 0 {
		o.HotRefresh = time.Second
	}
	if o.HotKeyCount <= 0 {
		o.HotKeyCount = 16
	}
}

// clusterNode is one ring member: its pool plus the client-side view of
// its health and the spill/fallback traffic it attracted.
type clusterNode struct {
	addr string
	pool *Pool

	loadBits   atomic.Uint64 // last probed load fraction, as Float64bits
	entries    atomic.Uint64 // last probed entry count
	capacity   atomic.Uint64 // last probed slot capacity
	probeFails atomic.Uint64 // CLUSTER probes that failed
	spills     atomic.Uint64 // writes redirected to this node as the spill target
	altReads   atomic.Uint64 // reads that fell through to this node as alternate
	altHits    atomic.Uint64 // fallthrough reads that hit

	_ [48]byte // pad to a cache-line multiple: two-choice ops touch two nodes' counters concurrently (P1)
}

func (n *clusterNode) load() float64 {
	return math.Float64frombits(n.loadBits.Load())
}

// Cluster is a sharded client over a static two-choice ring of cuckood
// nodes. All methods are safe for concurrent use; the per-node Pools do
// the synchronization.
type Cluster struct {
	ring  *cluster.Ring
	nodes []*clusterNode
	opt   ClusterOptions

	// verMem is the monotonic-reads floor (client/replica.go); hot is
	// the hot-key cache, nil unless ClusterOptions.HotCache is set.
	verMem *verMemory
	hot    *hotCache

	hotStop   chan struct{}
	hotWG     sync.WaitGroup
	closeOnce sync.Once

	altSpread     atomic.Uint64 // round-robin cursor for hot-key read spreading
	staleRejected atomic.Uint64 // replica reads rejected by the version floor
}

// NewCluster builds a cluster client over addrs. The address list and
// opt.Seed define key placement, so they must be identical (same order)
// across every participant.
func NewCluster(addrs []string, opt ClusterOptions) (*Cluster, error) {
	opt.setDefaults()
	ring, err := cluster.New(addrs, opt.Seed)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{ring: ring, opt: opt, verMem: newVerMemory(verMemoryCap)}
	for _, addr := range ring.Nodes() {
		cl.nodes = append(cl.nodes, &clusterNode{
			addr: addr,
			pool: NewPoolWith(addr, opt.Pool),
		})
	}
	if opt.HotCache {
		cl.hot = newHotCache(opt.HotCacheTTL)
		cl.hotStop = make(chan struct{})
		cl.hotWG.Add(1)
		go cl.hotRefresher()
	}
	return cl, nil
}

// Ring returns the placement ring (shared, read-only).
func (cl *Cluster) Ring() *cluster.Ring { return cl.ring }

// Close stops the hot-key refresher and closes every node's pool.
func (cl *Cluster) Close() {
	cl.closeOnce.Do(func() {
		if cl.hotStop != nil {
			close(cl.hotStop)
			cl.hotWG.Wait()
		}
	})
	for _, n := range cl.nodes {
		n.pool.Close()
	}
}

// candidates returns the key's primary and alternate nodes.
func (cl *Cluster) candidates(key string) (*clusterNode, *clusterNode) {
	pi, ai := cl.ring.Candidates(key)
	return cl.nodes[pi], cl.nodes[ai]
}

// Set stores key=val on the key's primary node, spilling to the alternate
// when the primary is overloaded (probed load at or past the spill
// watermark, and the alternate less loaded) or the write fails there —
// the node-level analogue of a cuckoo insert placing an item in its
// second bucket. See SetWhere for which node acked.
func (cl *Cluster) Set(key, val string, ttl time.Duration) error {
	_, err := cl.SetWhere(key, val, ttl)
	return err
}

// SetWhere is Set, also reporting the address of the node that
// acknowledged the write (chaos tests audit acked writes per node).
// Writes go out as SETV so the acked version word lands in the version
// memory: any replica copy this client later reads must be at least
// this fresh (client/replica.go), and any locally cached hot value is
// invalidated immediately.
func (cl *Cluster) SetWhere(key, val string, ttl time.Duration) (string, error) {
	if cl.hot != nil {
		cl.hot.invalidate(key)
	}
	pri, alt := cl.candidates(key)
	first, second := pri, alt
	if pri != alt && cl.spillWanted(pri, alt) {
		first, second = alt, pri
		alt.spills.Add(1)
	}
	ver, err := first.pool.SetV1(key, val, ttl)
	if err == nil {
		cl.verMem.observe(key, ver)
		return first.addr, nil
	}
	if second == first {
		return "", err
	}
	// Any failure justifies the second choice: transport errors and open
	// breakers obviously, and server-side errors too — a busy or full
	// first choice says nothing about the other node's capacity.
	second.spills.Add(1)
	if ver2, err2 := second.pool.SetV1(key, val, ttl); err2 == nil {
		cl.verMem.observe(key, ver2)
		return second.addr, nil
	}
	return "", err
}

// spillWanted reports whether a write to pri should go to alt instead,
// from the last probed loads. Unprobed nodes report load 0 and never
// trigger a spill.
func (cl *Cluster) spillWanted(pri, alt *clusterNode) bool {
	pl := pri.load()
	return pl >= cl.opt.SpillWatermark && alt.load() < pl
}

// retriableOnAlternate reports whether a write failure on one candidate
// justifies trying the other: transport failures, open breakers, and
// server-side overload or capacity errors do; anything else (a malformed
// key, say) would just fail again.
func retriableOnAlternate(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return true // busy, table full: the alternate has its own capacity
	}
	return true
}

// Get fetches key, reading the primary first and falling through to the
// alternate on a miss or failure — the read path mirror of the write
// spill, same as a table lookup probing both candidate buckets. With
// replication the fallthrough gains teeth: both candidates hold a copy,
// reads go out as GETV, and every hit is admitted against the client's
// per-key version floor so a lagging replica can never serve back data
// older than a write (or read) this client already observed. Hot keys
// (per the servers' HOTKEYS ranking) are additionally served from the
// local hot cache and spread across both candidates.
func (cl *Cluster) Get(key string) (string, bool, error) {
	if cl.hot != nil {
		if v, ver, ok := cl.hot.get(key, time.Now()); ok && cl.admitRead(key, ver) {
			return v, true, nil
		}
	}
	pri, alt := cl.candidates(key)
	first, second := pri, alt
	if cl.hot != nil && pri != alt && cl.hot.isHot(key) {
		// Read spreading: a hot key's copies live on both candidates,
		// so alternate the node a cache miss lands on.
		if cl.altSpread.Add(1)&1 == 1 {
			first, second = alt, pri
		}
	}
	v, ver, ok, err := first.pool.GetV1(key)
	if ok && err == nil && cl.admitRead(key, ver) {
		cl.noteRead(key, v, ver)
		return v, true, nil
	}
	if second == first {
		return v, ok, err
	}
	second.altReads.Add(1)
	v2, ver2, ok2, err2 := second.pool.GetV1(key)
	if ok2 && err2 == nil && cl.admitRead(key, ver2) {
		second.altHits.Add(1)
		cl.noteRead(key, v2, ver2)
		return v2, true, nil
	}
	// Prefer reporting the first node's error if both paths failed.
	if err != nil {
		return "", false, err
	}
	if err2 != nil {
		return "", false, err2
	}
	// A hit rejected by the version floor reports a miss: serving
	// nothing beats serving a value older than one already seen.
	return "", false, nil
}

// Del removes key from both candidate nodes (a key can live on either
// after spills and migrations) and reports whether any copy existed.
func (cl *Cluster) Del(key string) (bool, error) {
	if cl.hot != nil {
		cl.hot.invalidate(key)
	}
	pri, alt := cl.candidates(key)
	found, err := pri.pool.Del(key)
	if alt == pri {
		return found, err
	}
	found2, err2 := alt.pool.Del(key)
	if err == nil {
		err = err2
	}
	return found || found2, err
}

// ErrCrossNodeTxn is returned by Cluster.ExecTxn when the transaction's
// keys do not share a primary node: MULTI…EXEC is single-node atomicity,
// and silently splitting it would break exactly the guarantee it exists
// to give.
var ErrCrossNodeTxn = errors.New("client: transaction keys span multiple primary nodes")

// Incr routes a counter update to the key's primary node, never the
// alternate: unlike SET, a counter must have a single authoritative home,
// because deltas applied to two copies can never be merged back. It is
// also never retried (see Pool.Incr).
func (cl *Cluster) Incr(key string, delta int64) error {
	pri, _ := cl.candidates(key)
	return pri.pool.Incr(key, delta)
}

// MaxUpdate routes a monotonic-max update to the key's primary node
// (same single-home rule as Incr).
func (cl *Cluster) MaxUpdate(key string, val int64) error {
	pri, _ := cl.candidates(key)
	return pri.pool.MaxUpdate(key, val)
}

// CAS routes a compare-and-set to the key's primary node. A key whose
// live copy sits on the alternate (after a spill) reports a miss here
// rather than racing two copies.
func (cl *Cluster) CAS(key, old, newVal string) (stored, found bool, err error) {
	pri, _ := cl.candidates(key)
	return pri.pool.CAS(key, old, newVal)
}

// ExecTxn runs a MULTI…EXEC transaction on the single node that is
// primary for every key it touches. Transactions spanning keys with
// different primaries fail with ErrCrossNodeTxn before anything is sent —
// the caller can shard the work or hash-tag its keys onto one node.
func (cl *Cluster) ExecTxn(t *Txn) ([]Reply, error) {
	if err := t.Err(); err != nil {
		return nil, err
	}
	keys := t.Keys()
	if len(keys) == 0 {
		return nil, nil
	}
	pi, _ := cl.ring.Candidates(keys[0])
	for _, k := range keys[1:] {
		if p, _ := cl.ring.Candidates(k); p != pi {
			return nil, fmt.Errorf("%w (%q and %q)", ErrCrossNodeTxn, keys[0], k)
		}
	}
	return cl.nodes[pi].pool.ExecTxn(t)
}

// NodeStatus is one node's view in Status: its CLUSTER figures plus the
// client-side spill/fallback counters. Err is set (and the numeric
// fields zero) when the probe failed.
type NodeStatus struct {
	Addr          string
	Entries       uint64
	Capacity      uint64
	Load          float64
	MigratedIn    uint64
	MigratedOut   uint64
	Handoffs      uint64
	MigrateFails  uint64
	ClientSpills  uint64
	ClientAltHits uint64
	BreakerState  BreakerState
	Err           error
}

// Probe refreshes every node's load figures via the CLUSTER verb. It
// returns the first probe error, after probing all nodes regardless.
func (cl *Cluster) Probe() error {
	var firstErr error
	for _, n := range cl.nodes {
		if err := cl.probeNode(n); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (cl *Cluster) probeNode(n *clusterNode) error {
	info, err := cl.clusterInfo(n)
	if err != nil {
		n.probeFails.Add(1)
		return fmt.Errorf("probe %s: %w", n.addr, err)
	}
	entries, _ := strconv.ParseUint(info["entries"], 10, 64)
	capacity, _ := strconv.ParseUint(info["capacity"], 10, 64)
	load, _ := strconv.ParseFloat(info["load"], 64)
	n.entries.Store(entries)
	n.capacity.Store(capacity)
	n.loadBits.Store(math.Float64bits(load))
	return nil
}

// clusterInfo runs one CLUSTER exchange through n's pool.
func (cl *Cluster) clusterInfo(n *clusterNode) (map[string]string, error) {
	c, err := n.pool.Get()
	if err != nil {
		return nil, err
	}
	info, err := c.ClusterInfo()
	n.pool.release(c, err)
	return info, err
}

// migrate runs one MIGRATE exchange on src's pool against the given ring.
func (cl *Cluster) migrate(src *clusterNode, mode, dest string, max int, ring *cluster.Ring) (int, error) {
	c, err := src.pool.Get()
	if err != nil {
		return 0, err
	}
	n, err := c.Migrate(mode, dest, src.addr, ring.Seed(), max, ring.CSV())
	src.pool.release(c, err)
	return n, err
}

// Status probes every node and returns the merged per-node view.
func (cl *Cluster) Status() []NodeStatus {
	out := make([]NodeStatus, 0, len(cl.nodes))
	for _, n := range cl.nodes {
		st := NodeStatus{Addr: n.addr}
		info, err := cl.clusterInfo(n)
		if err != nil {
			n.probeFails.Add(1)
			st.Err = err
		} else {
			st.Entries, _ = strconv.ParseUint(info["entries"], 10, 64)
			st.Capacity, _ = strconv.ParseUint(info["capacity"], 10, 64)
			st.Load, _ = strconv.ParseFloat(info["load"], 64)
			st.MigratedIn, _ = strconv.ParseUint(info["migrated_in"], 10, 64)
			st.MigratedOut, _ = strconv.ParseUint(info["migrated_out"], 10, 64)
			st.Handoffs, _ = strconv.ParseUint(info["handoffs"], 10, 64)
			st.MigrateFails, _ = strconv.ParseUint(info["migrate_failures"], 10, 64)
			n.entries.Store(st.Entries)
			n.capacity.Store(st.Capacity)
			n.loadBits.Store(math.Float64bits(st.Load))
		}
		st.ClientSpills = n.spills.Load()
		st.ClientAltHits = n.altHits.Load()
		st.BreakerState = n.pool.Stats().BreakerState
		out = append(out, st)
	}
	return out
}

// Skew returns the relative load skew across the last probed loads:
// (max-mean)/mean, 0 for a perfectly even ring. Call Probe (or Status)
// first for fresh figures.
func (cl *Cluster) Skew() float64 {
	loads := make([]float64, len(cl.nodes))
	for i, n := range cl.nodes {
		loads[i] = n.load()
	}
	return cluster.Skew(loads)
}

// RebalanceReport summarizes one Rebalance run.
type RebalanceReport struct {
	// SkewBefore and SkewAfter are the relative load skew at entry and
	// after the final round.
	SkewBefore, SkewAfter float64
	// HomeRepaired counts keys moved by the initial misplacement-repair
	// pass (home mode).
	HomeRepaired int
	// Shed counts keys moved by the load-balancing rounds (shed mode).
	Shed int
	// Rounds is how many shed rounds ran.
	Rounds int
	// Converged reports whether the final skew is at or below the
	// configured SkewTarget.
	Converged bool
}

// Migrated returns the total keys the run moved.
func (r RebalanceReport) Migrated() int { return r.HomeRepaired + r.Shed }

// Rebalance evens load across the ring in two stages. First a repair
// pass: every node pushes keys that do not belong on it (after a
// membership change, or spilled writes whose primary recovered) toward
// their candidates — MIGRATE home against every other node. Then shed
// rounds: while the skew is above SkewTarget, the most loaded node sheds
// up to batch correctly-placed keys to their alternate choice, preferring
// the least loaded destination — the cluster-level cuckoo kick-out.
// maxRounds bounds the shed loop; batch <= 0 means 512 per round.
func (cl *Cluster) Rebalance(maxRounds, batch int) (RebalanceReport, error) {
	if batch <= 0 {
		batch = 512
	}
	var rep RebalanceReport
	if err := cl.Probe(); err != nil {
		return rep, err
	}
	rep.SkewBefore = cl.Skew()

	// Stage 1: repair misplaced keys toward their real candidates.
	for _, src := range cl.nodes {
		for _, dst := range cl.nodes {
			if dst == src {
				continue
			}
			n, err := cl.migrate(src, "home", dst.addr, 0, cl.ring)
			if err != nil {
				return rep, fmt.Errorf("home repair %s -> %s: %w", src.addr, dst.addr, err)
			}
			rep.HomeRepaired += n
		}
	}

	// Stage 2: shed from the most loaded node until the skew target holds
	// or no candidate move helps.
	for rep.Rounds = 0; rep.Rounds < maxRounds; rep.Rounds++ {
		if err := cl.Probe(); err != nil {
			return rep, err
		}
		if cl.Skew() <= cl.opt.SkewTarget {
			break
		}
		src := cl.nodes[0]
		for _, n := range cl.nodes[1:] {
			if n.load() > src.load() {
				src = n
			}
		}
		// Try destinations from least loaded up; a destination only
		// receives keys whose alternate it is, so a move can come up
		// empty without the ring being balanced yet.
		dsts := make([]*clusterNode, 0, len(cl.nodes)-1)
		for _, n := range cl.nodes {
			if n != src {
				dsts = append(dsts, n)
			}
		}
		moved := 0
		for len(dsts) > 0 {
			min := 0
			for i, n := range dsts {
				if n.load() < dsts[min].load() {
					min = i
				}
			}
			dst := dsts[min]
			dsts = append(dsts[:min], dsts[min+1:]...)
			if dst.load() >= src.load() {
				break // no destination is lighter; shedding would ping-pong
			}
			n, err := cl.migrate(src, "shed", dst.addr, batch, cl.ring)
			if err != nil {
				return rep, fmt.Errorf("shed %s -> %s: %w", src.addr, dst.addr, err)
			}
			if n > 0 {
				moved = n
				rep.Shed += n
				break
			}
		}
		if moved == 0 {
			break // nothing movable; stop instead of spinning
		}
	}

	if err := cl.Probe(); err != nil {
		return rep, err
	}
	rep.SkewAfter = cl.Skew()
	rep.Converged = rep.SkewAfter <= cl.opt.SkewTarget
	return rep, nil
}

// Drain empties addr ahead of removing it from service: every key moves
// to its candidate under the ring without addr, so readers using the
// surviving membership find everything. Returns the number of keys moved.
// The node itself stays up (and keeps answering) until its operator stops
// it; Drain only relocates data.
func (cl *Cluster) Drain(addr string) (int, error) {
	idx := cl.ring.Index(addr)
	if idx < 0 {
		return 0, fmt.Errorf("client: drain target %s not in ring", addr)
	}
	survivors, err := cl.ring.Without(addr)
	if err != nil {
		return 0, err
	}
	src := cl.nodes[idx]
	total := 0
	for _, dest := range survivors.Nodes() {
		n, err := cl.migrate(src, "home", dest, 0, survivors)
		if err != nil {
			return total, fmt.Errorf("drain %s -> %s: %w", addr, dest, err)
		}
		total += n
	}
	return total, nil
}

// Collect implements obs.Collector: the cluster-level series (spills,
// fallthrough reads, per-node load, ring skew) plus every node's pool
// series labeled with node=<addr>.
func (cl *Cluster) Collect(m *obs.Metrics) {
	for _, n := range cl.nodes {
		m.Counter("cuckood_cluster_spills_total",
			"Writes redirected to a key's alternate node (overload or failure of the primary).",
			float64(n.spills.Load()), "node", n.addr)
		m.Counter("cuckood_cluster_alt_reads_total",
			"Reads that fell through to the alternate node.",
			float64(n.altReads.Load()), "node", n.addr)
		m.Counter("cuckood_cluster_alt_read_hits_total",
			"Fallthrough reads that found the key on the alternate.",
			float64(n.altHits.Load()), "node", n.addr)
		m.Counter("cuckood_cluster_probe_failures_total",
			"CLUSTER load probes that failed.",
			float64(n.probeFails.Load()), "node", n.addr)
		m.Gauge("cuckood_cluster_node_load",
			"Last probed load fraction (entries/capacity) per node.",
			n.load(), "node", n.addr)
		m.Gauge("cuckood_cluster_node_entries",
			"Last probed entry count per node.",
			float64(n.entries.Load()), "node", n.addr)
		n.pool.CollectWith(m, "node", n.addr)
	}
	m.Gauge("cuckood_cluster_load_skew",
		"Relative load skew across the ring: (max-mean)/mean of probed loads.",
		cl.Skew())
	m.Counter("cuckood_client_stale_rejected_total",
		"Versioned reads rejected because the reply was older than this client's per-key floor.",
		float64(cl.staleRejected.Load()))
	if cl.hot != nil {
		m.Counter("cuckood_client_hot_cache_hits_total",
			"Hot-key reads served from the local invalidation-aware cache.",
			float64(cl.hot.hits.Load()))
		m.Counter("cuckood_client_hot_cache_misses_total",
			"Hot-key cache lookups that fell through to the servers.",
			float64(cl.hot.misses.Load()))
		m.Counter("cuckood_client_hot_cache_invalidations_total",
			"Hot-key cache entries dropped by writes through this client.",
			float64(cl.hot.invalidations.Load()))
	}
}
