package client

// Client-side halves of cuckoorepl (docs/REPLICATION.md): the per-key
// version memory that makes two-choice fallthrough reads monotonic, and
// the hot-key cache fed by the servers' HOTKEYS top-K.
//
// The version memory is the client's staleness guard. Every versioned
// reply (SETV ack, GETV hit) ratchets a bounded per-key floor; a read
// served by either candidate node is accepted only if its version word
// is at or above the floor, so a lagging replica can never shadow a
// newer write this client has already observed — monotonic reads over
// an asynchronous mirror, enforced at the only place that has the
// history: the reader.
//
// The hot cache is read scale-out's last layer: for keys the servers
// report hot, a just-fetched value is served locally for a very short
// TTL (default 100ms), and any write through this Cluster invalidates
// the local copy immediately. Both candidates hold replicated copies of
// hot keys, so cache misses also spread across the pair.

import (
	"sync"
	"sync/atomic"
	"time"
)

// verMemoryCap bounds the version memory. When full, an arbitrary entry
// is evicted to admit the new key: forgetting a floor is safe — it only
// widens what a replica may serve back to the freshness of a client
// that never saw the key — while unbounded growth is not.
const verMemoryCap = 4096

// verMemory is a bounded map from key to the highest version word this
// client has observed for it.
type verMemory struct {
	mu  sync.Mutex
	m   map[string]uint64
	cap int
}

func newVerMemory(capacity int) *verMemory {
	if capacity <= 0 {
		capacity = verMemoryCap
	}
	return &verMemory{m: make(map[string]uint64, capacity), cap: capacity}
}

// observe ratchets key's floor to at least ver.
func (vm *verMemory) observe(key string, ver uint64) {
	if ver == 0 {
		return
	}
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if cur, ok := vm.m[key]; ok {
		if ver > cur {
			vm.m[key] = ver
		}
		return
	}
	if len(vm.m) >= vm.cap {
		// Evict one arbitrary entry (map iteration order): cheap, and
		// any eviction policy is correct here (see verMemoryCap).
		for k := range vm.m {
			delete(vm.m, k)
			break
		}
	}
	vm.m[key] = ver
}

// floor returns the highest version observed for key (0 = no memory).
func (vm *verMemory) floor(key string) uint64 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.m[key]
}

// hotEntry is one locally cached hot-key value.
type hotEntry struct {
	val       string
	ver       uint64
	fetchedAt time.Time
}

// hotCache is the invalidation-aware hot-key cache: membership comes
// from the servers' HOTKEYS sketches (refreshed by the Cluster's
// background poller), values are filled by ordinary reads passing
// through, and every write through the Cluster invalidates its key.
type hotCache struct {
	ttl time.Duration

	mu   sync.Mutex
	hot  map[string]struct{}
	vals map[string]hotEntry

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

func newHotCache(ttl time.Duration) *hotCache {
	return &hotCache{
		ttl:  ttl,
		hot:  make(map[string]struct{}),
		vals: make(map[string]hotEntry),
	}
}

// setHotSet replaces the hot membership with the latest top-K ranking,
// dropping cached values for keys that fell out.
func (h *hotCache) setHotSet(keys []HotKey) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hot = make(map[string]struct{}, len(keys))
	for _, k := range keys {
		h.hot[k.Key] = struct{}{}
	}
	for k := range h.vals {
		if _, ok := h.hot[k]; !ok {
			delete(h.vals, k)
		}
	}
}

// isHot reports whether key is in the current hot set.
func (h *hotCache) isHot(key string) bool {
	h.mu.Lock()
	_, ok := h.hot[key]
	h.mu.Unlock()
	return ok
}

// get serves a cached hot value if one is fresh enough.
func (h *hotCache) get(key string, now time.Time) (string, uint64, bool) {
	h.mu.Lock()
	e, ok := h.vals[key]
	h.mu.Unlock()
	if !ok || now.Sub(e.fetchedAt) > h.ttl {
		h.misses.Add(1)
		return "", 0, false
	}
	h.hits.Add(1)
	return e.val, e.ver, true
}

// put caches a value just read for a hot key.
func (h *hotCache) put(key, val string, ver uint64, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.hot[key]; !ok {
		return
	}
	h.vals[key] = hotEntry{val: val, ver: ver, fetchedAt: now}
}

// invalidate drops key's cached value after a write through this
// client. Writes from other clients are bounded by the TTL instead —
// that is the staleness contract (docs/REPLICATION.md).
func (h *hotCache) invalidate(key string) {
	h.mu.Lock()
	if _, ok := h.vals[key]; ok {
		delete(h.vals, key)
		h.invalidations.Add(1)
	}
	h.mu.Unlock()
}

// hotRefresher polls the cluster-wide HOTKEYS ranking and refreshes the
// hot set until Close. Poll errors are ignored: the previous hot set
// simply persists, and ordinary reads are never blocked on it.
func (cl *Cluster) hotRefresher() {
	defer cl.hotWG.Done()
	t := time.NewTicker(cl.opt.HotRefresh)
	defer t.Stop()
	for {
		select {
		case <-cl.hotStop:
			return
		case <-t.C:
			if hk, err := cl.HotKeys(cl.opt.HotKeyCount); err == nil {
				cl.hot.setHotSet(hk)
			}
		}
	}
}

// admitRead applies the monotonic-reads check: a versioned read is
// rejected (treated as a miss on that node) when its version word is
// below the floor this client has already observed for the key. Reads
// carrying ver 0 (legacy entries stored before replication) pass only
// if no floor exists.
func (cl *Cluster) admitRead(key string, ver uint64) bool {
	if fl := cl.verMem.floor(key); ver < fl {
		cl.staleRejected.Add(1)
		return false
	}
	return true
}

// noteRead records a successfully served read in the version memory and
// the hot cache.
func (cl *Cluster) noteRead(key, val string, ver uint64) {
	cl.verMem.observe(key, ver)
	if cl.hot != nil {
		cl.hot.put(key, val, ver, time.Now())
	}
}
