package client

// Tests for the transaction verbs: counter/CAS round trips, the Txn
// builder's MULTI…EXEC exchange, cluster routing, and — the contract the
// whole file exists to pin down — that none of the non-idempotent verbs
// are ever retried, even when the pool's retry policy is fully enabled.

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestConnTxnVerbs(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Incr("n", 5); err != nil {
		t.Fatalf("Incr: %v", err)
	}
	if err := c.Incr("n", -2); err != nil {
		t.Fatalf("Incr negative: %v", err)
	}
	if v, ok, _ := c.Get("n"); !ok || v != "3" {
		t.Fatalf("Get n = %q, %v, want 3", v, ok)
	}
	if err := c.MaxUpdate("n", 10); err != nil {
		t.Fatalf("MaxUpdate: %v", err)
	}
	if err := c.MaxUpdate("n", 7); err != nil {
		t.Fatalf("MaxUpdate lower: %v", err)
	}
	if v, _, _ := c.Get("n"); v != "10" {
		t.Fatalf("Get n = %q after MaxUpdate, want 10", v)
	}

	stored, found, err := c.CAS("n", "10", "20")
	if err != nil || !stored || !found {
		t.Fatalf("CAS match = %v, %v, %v", stored, found, err)
	}
	stored, found, err = c.CAS("n", "10", "30")
	if err != nil || stored || !found {
		t.Fatalf("CAS conflict = %v, %v, %v", stored, found, err)
	}
	stored, found, err = c.CAS("missing", "x", "y")
	if err != nil || stored || found {
		t.Fatalf("CAS miss = %v, %v, %v", stored, found, err)
	}

	// Counter verbs preserve a TTL set before them.
	if err := c.Set("tk", "1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Incr("tk", 1); err != nil {
		t.Fatal(err)
	}
	if d, ok, _ := c.TTL("tk"); !ok || d <= 0 {
		t.Fatalf("TTL after Incr = %v, %v, want finite", d, ok)
	}

	// An INCR against a non-integer surfaces as a ServerError.
	if err := c.Set("s", "text", 0); err != nil {
		t.Fatal(err)
	}
	var se *ServerError
	if err := c.Incr("s", 1); !errors.As(err, &se) {
		t.Fatalf("Incr on non-integer = %v, want ServerError", err)
	}
}

func TestConnExecTxn(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set("bal", "100", 0); err != nil {
		t.Fatal(err)
	}
	txn := NewTxn().
		Incr("bal", -30).
		Incr("saved", 30).
		Get("bal").
		CAS("bal", "70", "seventy").
		Del("missing")
	replies, err := c.ExecTxn(txn)
	if err != nil {
		t.Fatalf("ExecTxn: %v", err)
	}
	if len(replies) != 5 {
		t.Fatalf("got %d replies, want 5", len(replies))
	}
	if replies[2].Value != "70" {
		t.Fatalf("txn GET saw %q, want 70 (read-your-writes)", replies[2].Value)
	}
	if !replies[3].Found || replies[3].Conflict {
		t.Fatalf("txn CAS = %+v, want stored", replies[3])
	}
	if replies[4].Found {
		t.Fatal("DEL of missing key reported found")
	}
	if v, _, _ := c.Get("bal"); v != "seventy" {
		t.Fatalf("bal = %q after txn, want seventy", v)
	}
	if v, _, _ := c.Get("saved"); v != "30" {
		t.Fatalf("saved = %q after txn, want 30", v)
	}

	// The connection is reusable for both plain ops and further txns.
	if _, err := c.ExecTxn(NewTxn().Get("bal")); err != nil {
		t.Fatalf("second ExecTxn: %v", err)
	}
}

func TestExecTxnValidationSticks(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	txn := NewTxn().Set("bad key", "v", 0).Incr("fine", 1)
	if _, err := c.ExecTxn(txn); err == nil {
		t.Fatal("ExecTxn with invalid key succeeded")
	}
	// Nothing was sent: the valid op did not run.
	if _, ok, _ := c.Get("fine"); ok {
		t.Fatal("op after a poisoned builder was applied")
	}
}

func TestPoolTxnVerbs(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 2)
	defer p.Close()

	if err := p.Incr("n", 4); err != nil {
		t.Fatalf("Incr: %v", err)
	}
	if err := p.MaxUpdate("n", 9); err != nil {
		t.Fatalf("MaxUpdate: %v", err)
	}
	stored, found, err := p.CAS("n", "9", "done")
	if err != nil || !stored || !found {
		t.Fatalf("CAS = %v, %v, %v", stored, found, err)
	}
	replies, err := p.ExecTxn(NewTxn().Get("n"))
	if err != nil || len(replies) != 1 || replies[0].Value != "done" {
		t.Fatalf("ExecTxn = %+v, %v", replies, err)
	}
}

// TestTxnVerbsNeverRetried is the regression test for the retry budget's
// idempotence boundary: INCR, MAXUPDATE, CAS, and EXEC stay single-attempt
// even with retries at maximum and RetrySets opted in — RetrySets covers
// last-writer-wins SETs, not read-modify-write verbs. A retried INCR
// double-counts; a retried EXEC reruns a whole transaction.
func TestTxnVerbsNeverRetried(t *testing.T) {
	ops := []struct {
		name string
		run  func(p *Pool) error
	}{
		{"Incr", func(p *Pool) error { return p.Incr("k", 1) }},
		{"MaxUpdate", func(p *Pool) error { return p.MaxUpdate("k", 1) }},
		{"CAS", func(p *Pool) error { _, _, err := p.CAS("k", "a", "b"); return err }},
		{"ExecTxn", func(p *Pool) error { _, err := p.ExecTxn(NewTxn().Incr("k", 1)); return err }},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			s := startBackend(t)
			var dials atomic.Int64
			p := NewPoolWith(s.Addr().String(), Options{
				Size:        1,
				MaxRetries:  3,
				RetrySets:   true, // even the broadest opt-in must not cover these
				BackoffBase: time.Millisecond,
				BackoffMax:  2 * time.Millisecond,
				Seed:        13,
				DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
					nc, err := net.DialTimeout("tcp", addr, timeout)
					if err == nil && dials.Add(1) == 1 {
						nc.Close() // first connection is dead on arrival
					}
					return nc, err
				},
			})
			defer p.Close()

			if err := op.run(p); err == nil {
				t.Fatalf("%s over a dead conn succeeded — it must have retried", op.name)
			}
			if st := p.Stats(); st.Retries != 0 {
				t.Fatalf("%s performed %d retries, want 0", op.name, st.Retries)
			}
			// Sanity: the same pool DOES retry an idempotent GET, so the
			// zero above is the verb's exclusion, not a broken fixture.
			if _, _, err := p.Get1("k"); err != nil {
				t.Fatalf("follow-up Get1: %v", err)
			}
		})
	}
}

func TestClusterTxnRouting(t *testing.T) {
	s1, s2 := startBackend(t), startBackend(t)
	addrs := []string{s1.Addr().String(), s2.Addr().String()}
	cl, err := NewCluster(addrs, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Find keys with different primary nodes, and two sharing one.
	var onA, onB, alsoOnA string
	for i := 0; onB == "" || alsoOnA == ""; i++ {
		key := "k" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		pi, _ := cl.Ring().Candidates(key)
		switch {
		case onA == "" && pi == 0:
			onA = key
		case pi == 0:
			alsoOnA = key
		case onB == "":
			onB = key
		}
		if i > 10_000 {
			t.Fatal("could not find keys on both nodes")
		}
	}

	if err := cl.Incr(onA, 2); err != nil {
		t.Fatalf("Incr: %v", err)
	}
	if _, _, err := cl.CAS(onA, "2", "two"); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	replies, err := cl.ExecTxn(NewTxn().Get(onA).Incr(alsoOnA, 1))
	if err != nil || len(replies) != 2 || replies[0].Value != "two" {
		t.Fatalf("same-node ExecTxn = %+v, %v", replies, err)
	}
	if _, err := cl.ExecTxn(NewTxn().Incr(onA, 1).Incr(onB, 1)); !errors.Is(err, ErrCrossNodeTxn) {
		t.Fatalf("cross-node ExecTxn = %v, want ErrCrossNodeTxn", err)
	}
}
