package client

// Internal-package cluster test for the hot-key cache: membership is
// injected directly (the HOTKEYS poller is exercised separately) so the
// cache's serve/invalidate behavior can be pinned deterministically.

import (
	"testing"
	"time"

	"cuckoohash/server"
)

func startHotNode(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        2,
		SlotsPerShard: 1 << 10,
		SweepInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

// TestClusterHotCacheServesAndInvalidates checks the cache end to end:
// a read of a hot key populates the local copy, which then survives
// both servers dying; a write through the client kills it immediately.
func TestClusterHotCacheServesAndInvalidates(t *testing.T) {
	a, b := startHotNode(t), startHotNode(t)
	addrs := []string{a.Addr().String(), b.Addr().String()}
	cl, err := NewCluster(addrs, ClusterOptions{
		Pool:        Options{Size: 2},
		Seed:        3,
		HotCache:    true,
		HotCacheTTL: time.Minute, // long enough to never lapse mid-test
		HotRefresh:  time.Hour,   // the poller must not overwrite the injected set
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	const key = "blazing"
	if err := cl.Set(key, "v1", 0); err != nil {
		t.Fatal(err)
	}
	// Inject hot membership (in production the HOTKEYS poller does this).
	cl.hot.setHotSet([]HotKey{{Key: key, Count: 99}})

	// First read comes from the servers and fills the local copy.
	if v, ok, err := cl.Get(key); err != nil || !ok || v != "v1" {
		t.Fatalf("fill read = %q/%v/%v", v, ok, err)
	}
	// With both servers gone, the hot cache alone serves the key.
	a.Close()
	b.Close()
	if v, ok, err := cl.Get(key); err != nil || !ok || v != "v1" {
		t.Fatalf("cached read = %q/%v/%v, want v1 from the local copy", v, ok, err)
	}
	if cl.hot.hits.Load() == 0 {
		t.Fatal("hot cache served without counting a hit")
	}

	// A write through this client invalidates the copy first, even though
	// the write itself fails (the servers are down): serving the old value
	// after the owner tried to change it would break the contract.
	if err := cl.Set(key, "v2", 0); err == nil {
		t.Fatal("Set succeeded against dead servers")
	}
	if v, ok, _ := cl.Get(key); ok {
		t.Fatalf("read after invalidation served %q; want failure", v)
	}
	if cl.hot.invalidations.Load() == 0 {
		t.Fatal("invalidation not counted")
	}
}
