package client

import (
	"testing"
	"time"
)

// TestBreakerTransitionEdges drives the breaker through every
// state-machine edge and checks each per-edge counter — the data behind
// cuckood_client_breaker_transitions_total{from,to} — fires exactly when
// its edge is taken.
func TestBreakerTransitionEdges(t *testing.T) {
	const cooldown = 5 * time.Millisecond
	b := &breaker{threshold: 2, cooldown: cooldown}

	expect := func(step string, want [brEdgeCount]uint64) {
		t.Helper()
		if got := b.transitionCounts(); got != want {
			t.Fatalf("%s: transitions = %v, want %v", step, got, want)
		}
	}

	// closed -> open: threshold consecutive failures.
	b.record(false)
	b.record(false)
	expect("trip", [brEdgeCount]uint64{brClosedToOpen: 1})

	// open -> half-open: cooldown elapses, a probe is admitted.
	time.Sleep(cooldown + time.Millisecond)
	if !b.allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	expect("probe admitted", [brEdgeCount]uint64{brClosedToOpen: 1, brOpenToHalfOpen: 1})

	// half-open -> open: the probe fails.
	b.record(false)
	expect("probe failed", [brEdgeCount]uint64{
		brClosedToOpen: 1, brOpenToHalfOpen: 1, brHalfOpenToOpen: 1})

	// open -> half-open -> closed: the next probe succeeds.
	time.Sleep(cooldown + time.Millisecond)
	if !b.allow() {
		t.Fatal("second probe not admitted")
	}
	b.record(true)
	expect("probe succeeded", [brEdgeCount]uint64{
		brClosedToOpen: 1, brOpenToHalfOpen: 2, brHalfOpenToOpen: 1, brHalfOpenToClosed: 1})
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}

	// open -> closed: a straggler success lands while open (no probe).
	b.record(false)
	b.record(false)
	b.record(true)
	expect("straggler success", [brEdgeCount]uint64{
		brClosedToOpen: 2, brOpenToHalfOpen: 2, brHalfOpenToOpen: 1,
		brHalfOpenToClosed: 1, brOpenToClosed: 1})

	// A disabled breaker reports all-zero counters.
	var disabled *breaker
	if got := disabled.transitionCounts(); got != ([brEdgeCount]uint64{}) {
		t.Fatalf("disabled breaker transitions = %v, want zeros", got)
	}
}
