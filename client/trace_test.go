package client

// White-box tests for client-side tracing (docs/OBSERVABILITY.md):
// trace-ID minting and validation, the TRACE wire prefix, traced pooled
// ops, HOTKEYS parsing, and the breaker-open callback.

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cuckoohash/internal/obs"
)

func TestNewTraceIDFormatAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("NewTraceID() = %q, want 16 hex digits", id)
		}
		for _, r := range id {
			if !strings.ContainsRune("0123456789abcdef", r) {
				t.Fatalf("NewTraceID() = %q contains non-hex %q", id, r)
			}
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestConnSetTraceValidation(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, bad := range []string{
		strings.Repeat("x", maxTraceIDLen+1),
		"has space",
		"has\nnewline",
		"has\rreturn",
	} {
		if err := c.SetTrace(bad); err == nil {
			t.Errorf("SetTrace(%q) accepted", bad)
		}
	}
	if err := c.SetTrace(strings.Repeat("x", maxTraceIDLen)); err != nil {
		t.Errorf("SetTrace at the length limit rejected: %v", err)
	}
	if err := c.SetTrace("tok1"); err != nil {
		t.Fatal(err)
	}
	if got := c.Trace(); got != "tok1" {
		t.Errorf("Trace() = %q, want tok1", got)
	}
	if err := c.SetTrace(""); err != nil {
		t.Fatalf("clearing the trace failed: %v", err)
	}
	if got := c.Trace(); got != "" {
		t.Errorf("Trace() after clear = %q, want empty", got)
	}
}

// TestConnTraceReachesServerFlight drives traced and untraced requests
// over one connection and checks the server's flight recorder saw exactly
// the IDs the client set — the end-to-end proof the wire prefix works and
// never leaks onto later requests.
func TestConnTraceReachesServerFlight(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.SetTrace("trace-one"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("traced-key", "v", 0); err != nil {
		t.Fatal(err)
	}
	c.SetTrace("")
	if _, _, err := c.Get("traced-key"); err != nil {
		t.Fatal(err)
	}

	var tracedVerb, untracedGet string
	for _, rec := range s.Flight().Snapshot() {
		switch rec.Trace() {
		case "trace-one":
			tracedVerb = rec.Verb
		case "":
			if rec.Verb == "GET" {
				untracedGet = rec.Verb
			}
		}
	}
	if tracedVerb != "SET" {
		t.Errorf("traced flight record verb = %q, want SET", tracedVerb)
	}
	if untracedGet != "GET" {
		t.Error("cleared trace leaked onto the GET flight record")
	}
}

func TestPoolTracedOps(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 2)
	defer p.Close()

	id := NewTraceID()
	if err := p.SetTraced("tk", "tv", 0, id); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.GetTraced("tk", id)
	if err != nil || !ok || v != "tv" {
		t.Fatalf("GetTraced = %q, %v, %v", v, ok, err)
	}
	// The traced helpers clear the ID before the conn goes back to the
	// pool: a follow-up plain op must be untraced on the wire.
	if _, _, err := p.Get1("tk"); err != nil {
		t.Fatal(err)
	}
	for _, rec := range s.Flight().Snapshot() {
		if rec.Verb == "GET" && rec.Trace() != id && rec.Trace() != "" {
			t.Errorf("unexpected trace %q on a GET record", rec.Trace())
		}
	}
	traced := 0
	for _, rec := range s.Flight().Snapshot() {
		if rec.Trace() == id {
			traced++
		}
	}
	if traced != 2 {
		t.Errorf("flight shows %d records with trace %s, want 2 (SET + GET)", traced, id)
	}

	// An invalid trace ID fails the op client-side, before any I/O.
	if err := p.SetTraced("tk", "tv", 0, "bad trace"); err == nil {
		t.Error("SetTraced with a spacey trace ID succeeded")
	}
}

func TestConnHotKeysParsesReply(t *testing.T) {
	s := startBackend(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// No traffic yet: empty ranking, no error.
	hk, err := c.HotKeys(0)
	if err != nil {
		t.Fatalf("HotKeys on idle server: %v", err)
	}
	if len(hk) != 0 {
		t.Fatalf("idle HotKeys = %v, want empty", hk)
	}

	// 32 GETs of one key: server-side sampling (1 in 16) touches the
	// sketch on requests 0 and 16, both for "hot".
	for i := 0; i < 32; i++ {
		if _, _, err := c.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	hk, err = c.HotKeys(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hk) != 1 || hk[0].Key != "hot" || hk[0].Count != 2 {
		t.Fatalf("HotKeys = %v, want [{hot 2}]", hk)
	}

	// HotKeys needs an empty pipeline.
	if err := c.QueueGet("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.HotKeys(0); err == nil {
		t.Error("HotKeys with a pending pipeline succeeded")
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestOnBreakerOpenCallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening: dials fail fast

	var opens atomic.Int32
	p := NewPoolWith(addr, Options{
		Size:             2,
		DialTimeout:      200 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		OnBreakerOpen:    func() { opens.Add(1) },
	})
	defer p.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := p.Get1("k"); err == nil {
			t.Fatal("Get1 against a dead address succeeded")
		}
	}
	if got := opens.Load(); got != 1 {
		t.Fatalf("OnBreakerOpen fired %d times after the trip, want 1", got)
	}
	// Denied fast-fails while open must not re-fire the callback.
	p.Get1("k")
	if got := opens.Load(); got != 1 {
		t.Fatalf("OnBreakerOpen fired %d times after a denied op, want 1", got)
	}
}

func TestPoolStatsAndCollectExportTraceSeries(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 2)
	defer p.Close()
	if err := p.Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	// Retries are off by default, so the gauge reports the configured
	// budget ceiling.
	if st.RetryBudgetTokens != 20 {
		t.Errorf("RetryBudgetTokens = %v, want 20 (default ceiling)", st.RetryBudgetTokens)
	}
	if st.HealthCheckFailures == nil {
		t.Fatal("HealthCheckFailures map is nil")
	}
	for _, reason := range healthReasons {
		if _, ok := st.HealthCheckFailures[reason]; !ok {
			t.Errorf("HealthCheckFailures missing reason %q", reason)
		}
	}

	reg := obs.NewRegistry()
	reg.Register(p)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"cuckood_client_retry_budget_tokens 20",
		`cuckood_client_health_check_failures_total{reason="broken"} 0`,
		`cuckood_client_health_check_failures_total{reason="closed"} 0`,
		`cuckood_client_health_check_failures_total{reason="buffered"} 0`,
		`cuckood_client_health_check_failures_total{reason="socket"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Collect output missing %q:\n%s", want, text)
		}
	}
}

// TestHealthCheckFailureReasonCounted kills an idle pooled socket and
// checks the next checkout attributes the discard to a concrete reason.
func TestHealthCheckFailureReasonCounted(t *testing.T) {
	s := startBackend(t)
	p := NewPool(s.Addr().String(), 1)
	defer p.Close()
	if err := p.Set("k", "v", 0); err != nil {
		t.Fatal(err)
	}
	s.Close() // the idle socket is now half-dead

	deadline := time.Now().Add(2 * time.Second)
	for {
		p.Get1("k") // checkout health-checks the idle conn
		total := uint64(0)
		for _, n := range p.Stats().HealthCheckFailures {
			total += n
		}
		if total > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no health-check failure reason was counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSortHotKeysOrdering(t *testing.T) {
	hk := []HotKey{{"b", 2}, {"a", 2}, {"z", 9}, {"m", 1}}
	sortHotKeys(hk)
	want := []HotKey{{"z", 9}, {"a", 2}, {"b", 2}, {"m", 1}}
	for i := range want {
		if hk[i] != want[i] {
			t.Fatalf("sortHotKeys = %v, want %v", hk, want)
		}
	}
}
