package client

import (
	"errors"
	"net"
	"sync"
	"time"
)

// IsBusy reports whether err is the server's overload fast-fail ("ERR
// busy", sent when the in-flight limit or accept-time shed triggers —
// docs/ROBUSTNESS.md). Busy errors are safe to retry after backoff: the
// server rejected the request without executing it.
func IsBusy(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Msg == "busy"
}

// retryable reports whether an operation error may be retried: transport
// failures (the request may or may not have executed — callers opt in for
// non-idempotent ops) and server busy rejections (definitely not
// executed). Other server errors and client-side validation errors are
// definitive answers, not faults.
func retryable(err error) bool {
	if IsBusy(err) {
		return true
	}
	var se *ServerError
	if errors.As(err, &se) {
		return false
	}
	return errors.Is(err, ErrBrokenConn) || isNetError(err)
}

func isNetError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne)
}

// backoff produces full-jitter exponential delays: attempt n sleeps a
// uniform random duration in [0, min(Max, Base<<(n-1))). Full jitter
// (rather than equal or decorrelated jitter) spreads a thundering herd of
// retrying clients across the whole window, which is what keeps the
// chaos-test error rate bounded when many workers hit the same fault.
type backoff struct {
	base, max time.Duration
	mu        sync.Mutex
	rng       splitmix64
}

func newBackoff(base, max time.Duration, seed uint64) *backoff {
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &backoff{base: base, max: max, rng: splitmix64{seed}}
}

// sleepFor returns the jittered delay before retry attempt n (n >= 1).
func (b *backoff) sleepFor(attempt int) time.Duration {
	ceil := b.max
	if attempt-1 < 32 {
		if d := b.base << (attempt - 1); d > 0 && d < ceil {
			ceil = d
		}
	}
	b.mu.Lock()
	f := b.rng.float64()
	b.mu.Unlock()
	return time.Duration(f * float64(ceil))
}

// retryBudget is a token bucket bounding the *rate* of retries, not just
// the per-op count: each retry costs one token, each success refills a
// fraction of one. Under a persistent outage the budget drains and ops
// fail after their first attempt, so client-side retry amplification
// cannot multiply the load on an already-failing server (the same
// rationale as gRPC's retry throttling).
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	refill float64 // added per success, capped at max
}

func newRetryBudget(max float64) *retryBudget {
	if max <= 0 {
		max = 20
	}
	return &retryBudget{tokens: max, max: max, refill: 0.1}
}

// take consumes one token, reporting false when the budget is exhausted.
func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// level returns the remaining token count, for metrics export: a gauge
// trending toward zero means retries are being rationed and the pool is
// about to degrade to single attempts.
func (b *retryBudget) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// success refills part of a token after a successful operation.
func (b *retryBudget) success() {
	b.mu.Lock()
	if b.tokens += b.refill; b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// splitmix64 is the standard 64-bit splitmix generator — enough for
// jitter, no global rand contention, and seedable for deterministic tests.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
