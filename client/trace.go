package client

// Client-side request tracing (docs/OBSERVABILITY.md). A trace ID is an
// opaque token the client mints and prepends to request lines as
// "TRACE <id> "; the server stamps it on slow-op logs, flight-recorder
// entries, and the cuckood_slow_trace_seconds exemplar series, and
// forwards it across MIGRATE→HANDOFF hops — so one user-visible request
// keeps one ID across every connection, retry, spill, and node it
// touches.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxTraceIDLen mirrors the server's limit on TRACE tokens (codec.go).
const maxTraceIDLen = 64

var traceIDGen struct {
	mu  sync.Mutex
	rng splitmix64
}

// NewTraceID mints a 16-hex-digit trace ID. IDs are process-unique with
// overwhelming probability (64 random bits), cheap, and wire-safe; callers
// that already have a correlation token (a span ID, a request UUID) can
// pass their own to SetTrace instead.
func NewTraceID() string {
	traceIDGen.mu.Lock()
	if traceIDGen.rng.state == 0 {
		traceIDGen.rng.state = uint64(time.Now().UnixNano())
	}
	id := traceIDGen.rng.next()
	traceIDGen.mu.Unlock()
	var buf [16]byte
	const hex = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = hex[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// SetTrace attaches a trace ID to the connection: every request queued
// afterwards carries a "TRACE <id> " wire prefix until the ID is replaced
// or cleared with SetTrace(""). The ID must be a single protocol token of
// at most 64 bytes.
func (c *Conn) SetTrace(id string) error {
	if id != "" && (len(id) > maxTraceIDLen || strings.ContainsAny(id, " \r\n")) {
		return fmt.Errorf("client: invalid trace ID %q (one token, at most %d bytes)", id, maxTraceIDLen)
	}
	c.trace = id
	return nil
}

// Trace returns the connection's current trace ID ("" when untraced).
func (c *Conn) Trace() string { return c.trace }

// writeTrace emits the TRACE prefix for one request line, if an ID is set.
func (c *Conn) writeTrace() {
	if c.trace != "" {
		c.w.WriteString("TRACE ")
		c.w.WriteString(c.trace)
		c.w.WriteByte(' ')
	}
}

// HotKey is one entry of the server's hot-key top-K sketch: an
// approximate touch count for one of the most frequently requested keys.
// Counts come from a space-saving sketch over sampled requests, so they
// overestimate by at most the sketch's per-key error.
type HotKey struct {
	Key   string
	Count uint64
}

// HotKeys fetches the server's n hottest keys (n <= 0 asks for the
// server default of 10). Like Stats, it needs an empty pipeline: the
// multi-line reply cannot interleave with pending request replies.
func (c *Conn) HotKeys(n int) ([]HotKey, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.broken != nil {
		return nil, c.broken
	}
	if len(c.pending) > 0 {
		return nil, errors.New("client: HotKeys with requests still queued")
	}
	if c.ioTimeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	c.writeTrace()
	if n > 0 {
		c.w.WriteString("HOTKEYS ")
		c.w.WriteString(strconv.Itoa(n))
		c.w.WriteByte('\n')
	} else {
		c.w.WriteString("HOTKEYS\n")
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	var out []HotKey
	for {
		line, err := c.readRawLine()
		if err != nil {
			return nil, c.fail(err)
		}
		if line == "END" {
			return out, nil
		}
		if msg, ok := strings.CutPrefix(line, "ERR "); ok {
			return nil, &ServerError{Msg: msg}
		}
		rest, ok := strings.CutPrefix(line, "HOTKEY ")
		if !ok {
			return nil, c.fail(fmt.Errorf("client: malformed HOTKEYS line %q", line))
		}
		countStr, key, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, c.fail(fmt.Errorf("client: malformed HOTKEYS line %q", line))
		}
		count, perr := strconv.ParseUint(countStr, 10, 64)
		if perr != nil {
			return nil, c.fail(fmt.Errorf("client: malformed HOTKEYS line %q", line))
		}
		out = append(out, HotKey{Key: key, Count: count})
	}
}

// GetTraced is Get1 with a trace ID: every attempt — including retries
// after transport failures — carries the same ID, so the server-side
// flight records of a retried request correlate.
func (p *Pool) GetTraced(key, trace string) (string, bool, error) {
	var v string
	var ok bool
	err := p.do(true, func(c *Conn) error {
		if err := c.SetTrace(trace); err != nil {
			return err
		}
		defer c.SetTrace("")
		var err error
		v, ok, err = c.Get(key)
		return err
	})
	return v, ok, err
}

// SetTraced is Set with a trace ID (same retry policy: only when
// Options.RetrySets opted SETs in). All attempts share the ID.
func (p *Pool) SetTraced(key, val string, ttl time.Duration, trace string) error {
	return p.do(p.opt.RetrySets, func(c *Conn) error {
		if err := c.SetTrace(trace); err != nil {
			return err
		}
		defer c.SetTrace("")
		return c.Set(key, val, ttl)
	})
}

// HotKeys is the pooled one-shot form of Conn.HotKeys.
func (p *Pool) HotKeys(n int) ([]HotKey, error) {
	var out []HotKey
	err := p.do(true, func(c *Conn) error {
		var err error
		out, err = c.HotKeys(n)
		return err
	})
	return out, err
}

// GetTraced is Cluster.Get with a trace ID: the primary read and any
// alternate fallthrough carry the same ID, so a cross-node read shows up
// as one trace on both nodes' recorders.
func (cl *Cluster) GetTraced(key, trace string) (string, bool, error) {
	pri, alt := cl.candidates(key)
	v, ok, err := pri.pool.GetTraced(key, trace)
	if ok && err == nil {
		return v, true, nil
	}
	if alt == pri {
		return v, ok, err
	}
	alt.altReads.Add(1)
	v2, ok2, err2 := alt.pool.GetTraced(key, trace)
	if ok2 && err2 == nil {
		alt.altHits.Add(1)
		return v2, true, nil
	}
	if err != nil {
		return "", false, err
	}
	return v2, ok2, err2
}

// SetTraced is Cluster.Set with a trace ID carried across the spill to
// the alternate node, mirroring SetWhere's routing.
func (cl *Cluster) SetTraced(key, val string, ttl time.Duration, trace string) error {
	pri, alt := cl.candidates(key)
	first, second := pri, alt
	if pri != alt && cl.spillWanted(pri, alt) {
		first, second = alt, pri
		alt.spills.Add(1)
	}
	err := first.pool.SetTraced(key, val, ttl, trace)
	if err == nil {
		return nil
	}
	if second == first {
		return err
	}
	second.spills.Add(1)
	if err2 := second.pool.SetTraced(key, val, ttl, trace); err2 == nil {
		return nil
	}
	return err
}

// HotKeys merges every node's top-K sketch into one cluster-wide ranking
// of up to n keys. A key hot on several nodes (after spills or
// migrations) has its per-node counts summed. The first node error is
// returned after querying all nodes; partial results are still ranked.
func (cl *Cluster) HotKeys(n int) ([]HotKey, error) {
	counts := make(map[string]uint64)
	var firstErr error
	for _, node := range cl.nodes {
		items, err := node.pool.HotKeys(n)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("hotkeys %s: %w", node.addr, err)
			}
			continue
		}
		for _, it := range items {
			counts[it.Key] += it.Count
		}
	}
	out := make([]HotKey, 0, len(counts))
	for k, c := range counts {
		out = append(out, HotKey{Key: k, Count: c})
	}
	sortHotKeys(out)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, firstErr
}

// sortHotKeys orders by count descending, then key ascending for
// deterministic ties.
func sortHotKeys(hk []HotKey) {
	for i := 1; i < len(hk); i++ {
		for j := i; j > 0; j-- {
			if hk[j-1].Count > hk[j].Count ||
				(hk[j-1].Count == hk[j].Count && hk[j-1].Key <= hk[j].Key) {
				break
			}
			hk[j-1], hk[j] = hk[j], hk[j-1]
		}
	}
}
