module cuckoohash

go 1.24
