// Benchmarks regenerating every table/figure of the paper's evaluation, one
// testing.B target per figure, plus per-operation microbenchmarks and the
// ablations called out in DESIGN.md §5.
//
//	go test -bench=Fig -benchmem            # all figures, bench-sized
//	go test -bench=BenchmarkOp -benchmem    # per-op microbenchmarks
//	go test -bench=Ablation -benchmem       # design-choice ablations
//
// Figure benchmarks report Mops/s (the paper's unit) via ReportMetric; use
// cmd/cuckoobench for the full-size experiment tables.
package cuckoohash_test

import (
	"fmt"
	"sync"
	"testing"

	"cuckoohash"
	"cuckoohash/internal/bench"
	"cuckoohash/internal/core"
	"cuckoohash/internal/htm"
	"cuckoohash/internal/workload"
)

// benchScale keeps each figure benchmark in the hundreds of milliseconds.
func benchScale() bench.Scale {
	return bench.Scale{
		Slots:      1 << 15,
		Fig2Keys:   1 << 13,
		Threads:    []int{1, 2, 4, 8},
		MaxThreads: []int{1, 2, 4, 8, 16},
		LookupOps:  1 << 15,
		Seed:       42,
	}
}

// runFigure runs one experiment per iteration and reports the first row's
// first value as Mops/s (every report's leading cell is a throughput).
func runFigure(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := benchScale()
	var last float64
	for i := 0; i < b.N; i++ {
		r := e.Run(sc)
		if len(r.Rows) == 0 || len(r.Rows[0].Values) == 0 {
			b.Fatalf("%s: empty report", id)
		}
		last = r.Rows[0].Values[0]
	}
	// The report's leading cell (throughput for the fig/naive rows, the
	// analytic value for eq1/eq2) doubles as a regression canary.
	b.ReportMetric(last, "top-row-value")
}

func BenchmarkFig1(b *testing.B)   { runFigure(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { runFigure(b, "fig2") }
func BenchmarkFig5a(b *testing.B)  { runFigure(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { runFigure(b, "fig5b") }
func BenchmarkFig6a(b *testing.B)  { runFigure(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { runFigure(b, "fig6b") }
func BenchmarkFig7(b *testing.B)   { runFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runFigure(b, "fig9") }
func BenchmarkFig10a(b *testing.B) { runFigure(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { runFigure(b, "fig10b") }
func BenchmarkEq1(b *testing.B)    { runFigure(b, "eq1") }
func BenchmarkEq2(b *testing.B)    { runFigure(b, "eq2") }
func BenchmarkNaive(b *testing.B)  { runFigure(b, "naive") }

// --- per-operation microbenchmarks on the public API ---

func newBenchMap(b *testing.B, cap uint64) *cuckoohash.Map {
	b.Helper()
	m, err := cuckoohash.NewMap(cuckoohash.Config{Capacity: cap})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkOpInsertEmptyTable(b *testing.B) {
	m := newBenchMap(b, uint64(b.N)*2+1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Insert(uint64(i)+1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpInsertAt90(b *testing.B) {
	// Steady-state inserts at 90% occupancy: delete/insert churn.
	const slots = 1 << 16
	m := newBenchMap(b, slots)
	n := uint64(slots) * 90 / 100
	for i := uint64(0); i < n; i++ {
		if err := m.Insert(i+1, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := uint64(i)%n + 1
		m.Delete(old)
		if err := m.Insert(uint64(i)+n+2, 0); err != nil {
			b.Fatal(err)
		}
		if err := m.Insert(old, 0); err != nil {
			b.Fatal(err)
		}
		m.Delete(uint64(i) + n + 2)
	}
}

func BenchmarkOpLookupHit(b *testing.B) {
	const slots = 1 << 16
	m := newBenchMap(b, slots)
	n := uint64(slots) * 95 / 100
	for i := uint64(0); i < n; i++ {
		if err := m.Insert(i+1, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Lookup(uint64(i)%n + 1); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkOpLookupMiss(b *testing.B) {
	const slots = 1 << 16
	m := newBenchMap(b, slots)
	n := uint64(slots) * 95 / 100
	for i := uint64(0); i < n; i++ {
		if err := m.Insert(i+1, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Lookup(uint64(i) | 1<<60); ok {
			b.Fatal("hit")
		}
	}
}

func BenchmarkOpLookupParallel(b *testing.B) {
	const slots = 1 << 16
	m := newBenchMap(b, slots)
	n := uint64(slots) * 95 / 100
	for i := uint64(0); i < n; i++ {
		if err := m.Insert(i+1, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rnd := workload.NewRand(99)
		for pb.Next() {
			m.Lookup(rnd.Intn(n) + 1)
		}
	})
}

func BenchmarkOpMixed5050Parallel(b *testing.B) {
	const slots = 1 << 18
	m := newBenchMap(b, slots)
	var thread int64
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		th := thread
		thread++
		mu.Unlock()
		keys := workload.NewUniformKeys(7, int(th))
		gen := workload.NewOpGen(workload.Mix5050, uint64(th)+1)
		for pb.Next() {
			if gen.Next() == workload.OpInsert {
				_ = m.Upsert(keys.NextKey(), 1)
			} else {
				m.Lookup(keys.ExistingKey())
			}
		}
	})
}

// --- ablations (DESIGN.md §5) ---

// fillOnce fills a fresh table to 95% with the given options and returns
// Mops/s.
func fillOnce(o core.Options, threads int) float64 {
	tab := core.MustNewTable(o)
	res := bench.Fill(kvAdapter{tab}, bench.FillSpec{
		Threads: threads, Mix: workload.InsertOnly,
		TargetLoad: 0.95, Slots: tab.Cap(), Seed: 7,
	})
	return res.Overall
}

type kvAdapter struct{ t *core.Table }

func (a kvAdapter) Insert(k, v uint64) error       { return a.t.Insert(k, v) }
func (a kvAdapter) Lookup(k uint64) (uint64, bool) { return a.t.Lookup(k) }
func (a kvAdapter) Delete(k uint64) bool           { return a.t.Delete(k) }
func (a kvAdapter) Len() uint64                    { return a.t.Len() }
func (a kvAdapter) Cap() uint64                    { return a.t.Cap() }

// BenchmarkAblationSearch compares BFS and DFS path search.
func BenchmarkAblationSearch(b *testing.B) {
	for _, mode := range []core.SearchMode{core.SearchBFS, core.SearchDFS} {
		name := "BFS"
		if mode == core.SearchDFS {
			name = "DFS"
		}
		b.Run(name, func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				o := core.Defaults(1 << 15)
				o.Search = mode
				o.Seed = 7
				mops = fillOnce(o, 4)
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkAblationPrefetch toggles the BFS prefetch.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []bool{true, false} {
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				o := core.Defaults(1 << 15)
				o.Prefetch = pf
				o.Seed = 7
				mops = fillOnce(o, 1)
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkAblationLockLater compares global-lock (whole-insert serialized)
// with fine-grained locking under concurrent writers.
func BenchmarkAblationLockLater(b *testing.B) {
	for _, lm := range []core.LockMode{core.LockGlobal, core.LockStriped} {
		name := "global"
		if lm == core.LockStriped {
			name = "striped"
		}
		b.Run(name, func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				o := core.Defaults(1 << 15)
				o.Locking = lm
				o.Seed = 7
				mops = fillOnce(o, 8)
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkAblationStripes sweeps the lock-stripe count (§4.2 suggests
// 1K-8K entries).
func BenchmarkAblationStripes(b *testing.B) {
	for _, stripes := range []int{1, 64, 1024, 4096, 8192} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				o := core.Defaults(1 << 15)
				o.Stripes = stripes
				o.Seed = 7
				mops = fillOnce(o, 8)
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkAblationElision compares the glibc and TSX* elision policies on
// the optimized table (Appendix A).
func BenchmarkAblationElision(b *testing.B) {
	for _, p := range []htm.Policy{htm.PolicyGlibc, htm.PolicyTuned, htm.PolicyNone} {
		b.Run(p.String(), func(b *testing.B) {
			s := bench.CuckooPlusTSX(p.String(), p, core.SearchBFS, true)
			var mops float64
			for i := 0; i < b.N; i++ {
				tab := s.New(1<<15, 1, 8, 7)
				res := bench.Fill(tab, bench.FillSpec{
					Threads: 8, Mix: workload.InsertOnly,
					TargetLoad: 0.95, Slots: 1 << 15, Seed: 7,
				})
				mops = res.Overall
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkAblationAssociativity sweeps B (Figures 8-9's knob) for inserts.
func BenchmarkAblationAssociativity(b *testing.B) {
	for _, assoc := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("%d-way", assoc), func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				o := core.Defaults(1 << 15)
				o.Assoc = assoc
				buckets := uint64(2)
				for buckets*uint64(assoc) < 1<<15 {
					buckets <<= 1
				}
				o.Buckets = buckets
				o.Seed = 7
				mops = fillOnce(o, 4)
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}
