package cuckoohash

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// Snapshot format: a fixed little-endian header followed by count records
// of (key, value words), followed by a CRC64 of everything before it. The
// format records the table geometry so Load can rebuild an equivalent
// table and bulk-place the entries without cuckoo searches.
const (
	snapshotMagic   = 0x6B75636B6F6F2B31 // "kuckoo+1"
	snapshotVersion = 1
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("cuckoohash: bad snapshot")

// Save writes a consistent snapshot of the table to w. It holds the
// full-table lock for the duration (writers block; readers retry), exactly
// like Range.
func (m *Map) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	out := io.MultiWriter(bw, crc)

	o := m.t.Options()
	hdr := [7]uint64{
		snapshotMagic,
		snapshotVersion,
		m.Cap(),
		uint64(o.Assoc),
		uint64(o.ValueWords),
		m.Len(),
		o.Seed,
	}
	for _, h := range hdr {
		if err := binary.Write(out, binary.LittleEndian, h); err != nil {
			return err
		}
	}

	var werr error
	written := uint64(0)
	m.Range(func(key uint64, val []uint64) bool {
		if werr = binary.Write(out, binary.LittleEndian, key); werr != nil {
			return false
		}
		for _, v := range val {
			if werr = binary.Write(out, binary.LittleEndian, v); werr != nil {
				return false
			}
		}
		written++
		return true
	})
	if werr != nil {
		return werr
	}
	if written != hdr[5] {
		// A writer raced between Len and Range; snapshots need external
		// write quiescence only for the count, the data is consistent.
		return fmt.Errorf("cuckoohash: table changed during Save: %d entries written, %d expected", written, hdr[5])
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a snapshot produced by Save and returns a new Map holding its
// entries. The returned table has the snapshot's geometry and hash seed;
// cfg fields other than Capacity/Associativity/ValueWords/Seed still apply
// (locking mode, stripes, search strategy).
func Load(r io.Reader, cfg Config) (*Map, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	in := io.TeeReader(br, crc)

	var hdr [7]uint64
	for i := range hdr {
		if err := binary.Read(in, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
		}
	}
	if hdr[0] != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadSnapshot, hdr[0])
	}
	if hdr[1] != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, hdr[1])
	}
	capacity, assoc, vw, count := hdr[2], int(hdr[3]), int(hdr[4]), hdr[5]
	if assoc < 1 || assoc > 32 || vw < 1 || vw > 1<<16 || count > capacity {
		return nil, fmt.Errorf("%w: implausible geometry", ErrBadSnapshot)
	}

	cfg.Capacity = capacity
	cfg.Associativity = assoc
	cfg.ValueWords = vw
	// Reuse the snapshot's hash seed: a 95%-full content set is only
	// guaranteed placeable under the hash function it was built with.
	cfg.Seed = hdr[6]
	m, err := NewMap(cfg)
	if err != nil {
		return nil, err
	}

	val := make([]uint64, vw)
	for i := uint64(0); i < count; i++ {
		var key uint64
		if err := binary.Read(in, binary.LittleEndian, &key); err != nil {
			return nil, fmt.Errorf("%w: truncated at entry %d: %v", ErrBadSnapshot, i, err)
		}
		for w := 0; w < vw; w++ {
			if err := binary.Read(in, binary.LittleEndian, &val[w]); err != nil {
				return nil, fmt.Errorf("%w: truncated value at entry %d: %v", ErrBadSnapshot, i, err)
			}
		}
		for {
			err := m.InsertValue(key, val)
			if err == nil {
				break
			}
			// A snapshot taken near absolute fullness (cuckoo fills past
			// 99% before ErrFull) may not replay within the bounded path
			// search even though a placement exists; grow rather than fail.
			// The loaded table then has twice the saved capacity.
			if errors.Is(err, ErrFull) {
				if gerr := m.Grow(); gerr != nil {
					return nil, gerr
				}
				continue
			}
			return nil, fmt.Errorf("%w: duplicate key %#x: %v", ErrBadSnapshot, key, err)
		}
	}

	want := crc.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadSnapshot, err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return m, nil
}
