package cuckoohash_test

import (
	"errors"
	"fmt"

	"cuckoohash"
	"cuckoohash/generic"
)

func ExampleMap() {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 16})

	_ = m.Insert(42, 4200)
	if v, ok := m.Lookup(42); ok {
		fmt.Println("value:", v)
	}
	if err := m.Insert(42, 0); errors.Is(err, cuckoohash.ErrExists) {
		fmt.Println("already present")
	}
	_ = m.Upsert(42, 4300)
	v, _ := m.Lookup(42)
	fmt.Println("after upsert:", v)
	fmt.Println("deleted:", m.Delete(42))
	// Output:
	// value: 4200
	// already present
	// after upsert: 4300
	// deleted: true
}

func ExampleMap_LookupBatch() {
	m := cuckoohash.MustNewMap(cuckoohash.Config{Capacity: 1 << 12})
	for k := uint64(1); k <= 100; k++ {
		_ = m.Insert(k, k*10)
	}
	keys := []uint64{5, 999, 7}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	m.LookupBatch(keys, vals, found)
	for i := range keys {
		fmt.Println(keys[i], vals[i], found[i])
	}
	// Output:
	// 5 50 true
	// 999 0 false
	// 7 70 true
}

func ExampleTable() {
	t := generic.MustNew[string, []int](generic.Config{})
	_ = t.Insert("fib", []int{1, 1, 2, 3, 5})
	if v, ok := t.Get("fib"); ok {
		fmt.Println(v)
	}
	// Output:
	// [1 1 2 3 5]
}
