package generic

import (
	"testing"
	"testing/quick"
)

func TestAllIterator(t *testing.T) {
	tab := MustNew[int, string](Config{})
	want := map[int]string{1: "a", 2: "b", 3: "c"}
	for k, v := range want {
		if err := tab.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]string{}
	for k, v := range tab.All() {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("All yielded %d pairs", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("All[%d] = %q", k, got[k])
		}
	}
	// Early break works.
	n := 0
	for range tab.All() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("break did not stop iteration: %d", n)
	}
}

func TestKeysItemsClear(t *testing.T) {
	tab := MustNew[uint64, uint64](Config{})
	for k := uint64(1); k <= 100; k++ {
		if err := tab.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	keys := tab.Keys()
	if len(keys) != 100 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	items := tab.Items()
	if len(items) != 100 || items[50] != 100 {
		t.Fatalf("Items = %d entries, items[50]=%d", len(items), items[50])
	}
	tab.Clear()
	if tab.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tab.Len())
	}
	if _, ok := tab.Get(50); ok {
		t.Fatal("entry survived Clear")
	}
	// Table is reusable after Clear.
	if err := tab.Insert(7, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Get(7); !ok || v != 7 {
		t.Fatal("insert after Clear failed")
	}
}

// TestQuickOracleGeneric drives random op scripts against a map oracle.
func TestQuickOracleGeneric(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	check := func(ops []op) bool {
		tab := MustNew[uint8, uint16](Config{InitialCapacity: 64})
		oracle := map[uint8]uint16{}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				err := tab.Insert(o.Key, o.Val)
				if _, exists := oracle[o.Key]; exists != (err == ErrExists) {
					return false
				}
				if _, exists := oracle[o.Key]; !exists {
					oracle[o.Key] = o.Val
				}
			case 1:
				if tab.Upsert(o.Key, o.Val) != nil {
					return false
				}
				oracle[o.Key] = o.Val
			case 2:
				_, exists := oracle[o.Key]
				if tab.Delete(o.Key) != exists {
					return false
				}
				delete(oracle, o.Key)
			default:
				v, ok := tab.Get(o.Key)
				wv, wok := oracle[o.Key]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
		}
		if tab.Len() != uint64(len(oracle)) {
			return false
		}
		for k, v := range oracle {
			if got, ok := tab.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
