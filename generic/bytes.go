package generic

import "hash/maphash"

// GetBytes is Get for a string-keyed table probed with the raw key
// bytes, so the caller never materializes a string for a lookup (the
// server's GET path aliases the connection read buffer). Correctness
// rests on two compiler/runtime guarantees:
//
//   - maphash.Bytes(seed, b) == maphash.Comparable(seed, string(b)) for
//     every non-empty b (TestBytesHashEquivalence guards this; the two
//     differ for the empty string, which is why the empty key falls back
//     to Get — a zero-length conversion is allocation-free anyway).
//   - arr.keys[i] == string(key) compiles to a pointer/length compare
//     plus memcmp with no allocation (a recognized free-conversion
//     position, like map indexing).
//
//cuckoo:hotpath the server GET path: one probe, zero allocations
func GetBytes[V any](t *Table[string, V], key []byte) (V, bool) {
	if len(key) == 0 {
		return t.Get("")
	}
	h := maphash.Bytes(t.seed, key)
	var lockBuf [8]uint64
	for {
		st := t.loadState()
		locked := t.lockAllGens(st, h, lockBuf[:0])
		if !t.stateValid(st) {
			t.locks.UnlockOrdered(locked)
			continue
		}
		for _, g := range st.olds {
			ob1, ob2 := t.twoBuckets(h, g.arr.buckets)
			for _, b := range [2]uint64{ob1, ob2} {
				if i, ok := findBytes(g.arr, b, t.assoc, key); ok {
					v := g.arr.vals[i]
					t.locks.UnlockOrdered(locked)
					return v, true
				}
			}
		}
		b1, b2 := t.twoBuckets(h, st.live.buckets)
		for _, b := range [2]uint64{b1, b2} {
			if i, ok := findBytes(st.live, b, t.assoc, key); ok {
				v := st.live.vals[i]
				t.locks.UnlockOrdered(locked)
				return v, true
			}
		}
		t.locks.UnlockOrdered(locked)
		var zero V
		return zero, false
	}
}

// findBytes is find with a byte-slice probe; caller holds b's stripe.
func findBytes[V any](arr *tArrays[string, V], b, assoc uint64, key []byte) (uint64, bool) {
	occ := arr.occ[b]
	base := b * assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 != 0 && arr.keys[base+uint64(s)] == string(key) {
			return base + uint64(s), true
		}
	}
	return 0, false
}
