package generic

// BFS path search for the generic table. Unlike the specialized table,
// frontier buckets are scanned under their stripe lock (one bucket at a
// time, never nested) because keys of arbitrary type cannot be read
// tear-free without it. The discovered path is still validated entry by
// entry during execution, exactly as in §4.3.1. Paths live entirely in
// the live generation: draining old buckets never receive new entries,
// so they are never displacement targets.

type pathEntry[K comparable] struct {
	bucket uint64
	slot   int
	key    K
}

type bfsNode[K comparable] struct {
	bucket    uint64
	kickedKey K
	parent    int32
	slotInPar int8
}

// search runs BFS from b1/b2 to an empty live slot.
//
//cuckoo:coldpath BFS path discovery is the insert slow path (§4, Eq. 2); its queue is the cost of a full bucket pair
func (t *Table[K, V]) search(st *genState[K, V], b1, b2 uint64) ([]pathEntry[K], bool) {
	t.stats.searches.add(b1, 1)
	arr := st.live
	assoc := int(t.assoc)
	budget := t.cfg.MaxSearchSlots
	nodes := make([]bfsNode[K], 0, budget+2)
	nodes = append(nodes,
		bfsNode[K]{bucket: b1, parent: -1},
		bfsNode[K]{bucket: b2, parent: -1},
	)
	keys := make([]K, assoc)
	slotsExamined := 0
	for qi := 0; qi < len(nodes) && slotsExamined < budget; qi++ {
		n := &nodes[qi]
		slotsExamined += assoc

		// Snapshot the bucket under its stripe.
		l := t.locks.IndexFor(n.bucket)
		t.locks.Lock(l)
		if !t.stateValid(st) {
			t.locks.Unlock(l)
			return nil, false
		}
		occ := arr.occ[n.bucket]
		base := n.bucket * t.assoc
		for s := 0; s < assoc; s++ {
			keys[s] = arr.keys[base+uint64(s)]
		}
		t.locks.Unlock(l)

		if s, ok := freeSlot(occ, assoc); ok {
			return t.buildPath(nodes, qi, s), true
		}
		if len(nodes)+assoc > cap(nodes) {
			continue
		}
		for s := 0; s < assoc; s++ {
			alt := t.altBucket(t.hash(keys[s]), arr.buckets, n.bucket)
			nodes = append(nodes, bfsNode[K]{
				bucket:    alt,
				kickedKey: keys[s],
				parent:    int32(qi),
				slotInPar: int8(s),
			})
		}
	}
	return nil, false
}

func (t *Table[K, V]) buildPath(nodes []bfsNode[K], qi, s int) []pathEntry[K] {
	var path []pathEntry[K]
	path = append(path, pathEntry[K]{bucket: nodes[qi].bucket, slot: s})
	for i := qi; nodes[i].parent >= 0; i = int(nodes[i].parent) {
		p := nodes[i].parent
		path = append(path, pathEntry[K]{
			bucket: nodes[p].bucket,
			slot:   int(nodes[i].slotInPar),
			key:    nodes[i].kickedKey,
		})
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// execute performs the validated displacements and the final insert,
// returning the locked attempt's outcome (putNoSpace and putStale both mean
// "retry the whole insert").
func (t *Table[K, V]) execute(st *genState[K, V], path []pathEntry[K], h, b1, b2 uint64, key K, val V, overwrite bool) putResult {
	for i := len(path) - 2; i >= 0; i-- {
		if !t.displace(st, path[i], path[i+1]) {
			return putNoSpace
		}
	}
	head := path[0]
	other := b2
	if head.bucket == b2 {
		other = b1
	}
	return t.attempt(st, h, head.bucket, other, key, val, overwrite, head.slot)
}

func (t *Table[K, V]) displace(st *genState[K, V], src, dst pathEntry[K]) bool {
	l1, l2 := t.lockPair(src.bucket, dst.bucket)
	defer t.locks.UnlockPair(l1, l2)
	if !t.stateValid(st) {
		return false
	}
	arr := st.live
	si := src.bucket*t.assoc + uint64(src.slot)
	if arr.occ[src.bucket]&(1<<uint(src.slot)) == 0 || arr.keys[si] != src.key {
		return false
	}
	if arr.occ[dst.bucket]&(1<<uint(dst.slot)) != 0 {
		return false
	}
	di := dst.bucket*t.assoc + uint64(dst.slot)
	arr.keys[di] = arr.keys[si]
	arr.vals[di] = arr.vals[si]
	arr.occ[dst.bucket] |= 1 << uint(dst.slot)
	t.clearSlot(arr, src.bucket, si)
	t.stats.displacements.add(src.bucket, 1)
	return true
}
