package generic

import "sync/atomic"

// PathLenBuckets is the width of the path-length histogram; BFS paths are
// bounded around 5 for the default associativity and search budget (Eq. 2
// of the paper), so 16 buckets cover them with room, and the last bucket
// absorbs anything longer.
const PathLenBuckets = 16

// tableStats mirrors the specialized table's probe counters (principle P1:
// per-shard padded slots, aggregated lazily at read time) so that the
// service layer built on the generic table can see the same internal
// signals the paper's evaluation inspects.
type tableStats struct {
	searches      shardedCounter
	displacements shardedCounter
	restarts      shardedCounter
	maxPathLen    atomic.Uint64
	pathLen       [8]pathLenShard
}

type pathLenShard struct {
	counts [PathLenBuckets]atomic.Uint64
	_      [64]byte
}

func (st *tableStats) observePath(bucket uint64, length uint64) {
	for {
		cur := st.maxPathLen.Load()
		if length <= cur || st.maxPathLen.CompareAndSwap(cur, length) {
			break
		}
	}
	b := length
	if b >= PathLenBuckets {
		b = PathLenBuckets - 1
	}
	st.pathLen[bucket&7].counts[b].Add(1)
}

// Stats is a snapshot of a table's operational counters; the fields match
// core.Stats so service-layer code can treat the two tables uniformly.
type Stats struct {
	// Searches is the number of cuckoo-path searches (slow-path inserts).
	Searches uint64
	// Displacements is the number of item moves along cuckoo paths.
	Displacements uint64
	// PathRestarts counts inserts restarted because a concurrent writer
	// invalidated the discovered path (Eq. 1 of the paper).
	PathRestarts uint64
	// MaxPathLen is the longest discovered cuckoo path, in displacements.
	MaxPathLen uint64
	// PathLenHist[i] counts path searches that found a path of exactly i
	// displacements (the last bucket absorbs longer ones).
	PathLenHist [PathLenBuckets]uint64
	// Grows counts automatic table expansions started (the live arrays
	// doubled; draining the previous generation proceeds incrementally).
	Grows uint64
	// MigratedBuckets counts old-generation buckets drained by the
	// incremental-resize migrator since the table was created.
	MigratedBuckets uint64
	// MigrationBacklog is the number of old-generation buckets still
	// awaiting migration; 0 when no grow is in flight.
	MigrationBacklog uint64
}

// Stats returns a snapshot of the table's counters.
func (t *Table[K, V]) Stats() Stats {
	s := Stats{
		Searches:         uint64(t.stats.searches.total()),
		Displacements:    uint64(t.stats.displacements.total()),
		PathRestarts:     uint64(t.stats.restarts.total()),
		MaxPathLen:       t.stats.maxPathLen.Load(),
		Grows:            t.growCount.Load(),
		MigratedBuckets:  t.migratedBuckets.Load(),
		MigrationBacklog: backlog(t.loadState()),
	}
	for i := range t.stats.pathLen {
		for b := range t.stats.pathLen[i].counts {
			s.PathLenHist[b] += t.stats.pathLen[i].counts[b].Load()
		}
	}
	return s
}
