package generic

import (
	"fmt"
	"sync"
	"testing"
)

// noSweepTable returns a table whose migration advances only through
// explicit MigrateBatch calls, so tests can hold a migration open and
// observe the two-generation state deterministically.
func noSweepTable(t *testing.T, initial, max uint64) *Table[int, int] {
	t.Helper()
	tab, err := New[int, int](Config{
		InitialCapacity:        initial,
		MaxCapacity:            max,
		DisableBackgroundSweep: true,
		MigrateBatch:           -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// fillUntilGrow inserts ascending keys until the table starts a grow,
// returning how many keys were inserted.
func fillUntilGrow(t *testing.T, tab *Table[int, int]) int {
	t.Helper()
	for i := 0; ; i++ {
		if err := tab.Insert(i, i*3); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if tab.Growing() {
			return i + 1
		}
		if i > 1<<20 {
			t.Fatal("table never grew")
		}
	}
}

func TestIncrementalGrowKeepsKeysVisible(t *testing.T) {
	tab := noSweepTable(t, 64, 0)
	n := fillUntilGrow(t, tab)

	// Migration is in flight: every key must be readable from whichever
	// generation currently holds it.
	if !tab.Growing() {
		t.Fatal("expected migration in flight")
	}
	for i := 0; i < n; i++ {
		if v, ok := tab.Get(i); !ok || v != i*3 {
			t.Fatalf("mid-migration Get(%d) = %v, %v", i, v, ok)
		}
	}

	// Drain in bounded batches; backlog must reach zero and the old
	// generation must be retired.
	for tab.Growing() {
		if tab.MigrateBatch(4) == 0 && tab.Growing() {
			t.Fatal("migration stalled with a nonzero backlog")
		}
	}
	st := tab.Stats()
	if st.MigrationBacklog != 0 {
		t.Fatalf("backlog = %d after drain", st.MigrationBacklog)
	}
	if st.MigratedBuckets == 0 {
		t.Fatal("MigratedBuckets not counted")
	}
	if st.Grows == 0 {
		t.Fatal("Grows not counted")
	}
	for i := 0; i < n; i++ {
		if v, ok := tab.Get(i); !ok || v != i*3 {
			t.Fatalf("post-migration Get(%d) = %v, %v", i, v, ok)
		}
	}
	if got := tab.Len(); got != uint64(n) {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

func TestMigrationEpochAdvances(t *testing.T) {
	tab := noSweepTable(t, 64, 0)
	e0 := tab.MigrationEpoch()
	fillUntilGrow(t, tab)
	e1 := tab.MigrationEpoch()
	if e1 == e0 {
		t.Fatal("epoch did not advance at grow start")
	}
	for tab.Growing() {
		tab.MigrateBatch(16)
	}
	if tab.MigrationEpoch() == e1 {
		t.Fatal("epoch did not advance at migration finish")
	}
}

func TestWritesLandInLiveGeneration(t *testing.T) {
	tab := noSweepTable(t, 64, 0)
	n := fillUntilGrow(t, tab)
	if !tab.Growing() {
		t.Fatal("expected migration in flight")
	}

	// Upsert every key while the migration is held open: each value
	// must fold forward into the live generation, and deletes must find
	// keys wherever they live.
	for i := 0; i < n; i++ {
		if err := tab.Upsert(i, i*7); err != nil {
			t.Fatalf("mid-migration Upsert(%d): %v", i, err)
		}
	}
	// Insert of an existing key must still report ErrExists across
	// generations.
	if err := tab.Insert(0, 1); err != ErrExists {
		t.Fatalf("Insert(existing) = %v, want ErrExists", err)
	}
	for i := 0; i < n; i += 3 {
		if !tab.Delete(i) {
			t.Fatalf("mid-migration Delete(%d) = false", i)
		}
	}
	for tab.Growing() {
		tab.MigrateBatch(16)
	}
	for i := 0; i < n; i++ {
		v, ok := tab.Get(i)
		if i%3 == 0 {
			if ok {
				t.Fatalf("Get(%d) found deleted key", i)
			}
			continue
		}
		if !ok || v != i*7 {
			t.Fatalf("Get(%d) = %v, %v; want %d", i, v, ok, i*7)
		}
	}
}

func TestMaxCapacityBoundsGrowth(t *testing.T) {
	tab, err := New[int, int](Config{InitialCapacity: 64, MaxCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	var full bool
	for i := 0; i < 4096; i++ {
		if err := tab.Insert(i, i); err == ErrFull {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("capped table never reported ErrFull")
	}
	if got := tab.Cap(); got > 256 {
		t.Fatalf("Cap = %d, exceeds MaxCapacity 256", got)
	}
}

func TestRangeCompletesInFlightMigration(t *testing.T) {
	tab := noSweepTable(t, 64, 0)
	n := fillUntilGrow(t, tab)
	if !tab.Growing() {
		t.Fatal("expected migration in flight")
	}
	items := tab.Items()
	if tab.Growing() {
		t.Fatal("Range did not fold the in-flight migration")
	}
	if len(items) != n {
		t.Fatalf("Items len = %d, want %d", len(items), n)
	}
	for k, v := range items {
		if v != k*3 {
			t.Fatalf("items[%d] = %d, want %d", k, v, k*3)
		}
	}
}

func TestGrowEvents(t *testing.T) {
	var mu sync.Mutex
	var events []GrowEvent
	tab, err := New[int, int](Config{
		InitialCapacity:        64,
		DisableBackgroundSweep: true,
		MigrateBatch:           -1,
		OnGrowEvent: func(ev GrowEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !tab.Growing(); i++ {
		if err := tab.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for tab.Growing() {
		tab.MigrateBatch(16)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 2 {
		t.Fatalf("got %d grow events, want at least start+done", len(events))
	}
	first, last := events[0], events[len(events)-1]
	if first.Kind != GrowStart || first.ToBuckets != first.FromBuckets*2 {
		t.Fatalf("first event = %+v, want a doubling start", first)
	}
	if last.Kind != GrowDone || last.Backlog != 0 {
		t.Fatalf("last event = %+v, want a done event with zero backlog", last)
	}
}

func TestConcurrentOpsAcrossManualMigration(t *testing.T) {
	tab := noSweepTable(t, 64, 0)
	const (
		workers = 4
		perW    = 4000
	)
	stop := make(chan struct{})
	var migrators sync.WaitGroup
	migrators.Add(1)
	go func() {
		defer migrators.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tab.MigrateBatch(2)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := w*perW + i
				if err := tab.Insert(k, k); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
				if v, ok := tab.Get(k); !ok || v != k {
					t.Errorf("readback %d = %v, %v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	migrators.Wait()
	for tab.Growing() {
		tab.MigrateBatch(64)
	}
	if got := tab.Len(); got != workers*perW {
		t.Fatalf("Len = %d, want %d", got, workers*perW)
	}
	for k := 0; k < workers*perW; k++ {
		if v, ok := tab.Get(k); !ok || v != k {
			t.Fatalf("final Get(%d) = %v, %v", k, v, ok)
		}
	}
}

func TestChainedGrowUnderSustainedInserts(t *testing.T) {
	// Background sweeping on, tiny initial size: sustained inserts must
	// ride through several overlapping grows without losing a key.
	tab, err := New[string, int](Config{InitialCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	for i := 0; i < n; i++ {
		if err := tab.Insert(fmt.Sprintf("key-%d", i), i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tab.Stats().Grows < 2 {
		t.Fatalf("Grows = %d, want at least 2", tab.Stats().Grows)
	}
	for i := 0; i < n; i++ {
		if v, ok := tab.Get(fmt.Sprintf("key-%d", i)); !ok || v != i {
			t.Fatalf("Get(key-%d) = %v, %v", i, v, ok)
		}
	}
}
