package generic

import (
	"fmt"
	"hash/maphash"
	"math/rand"
	"testing"
)

// TestBytesHashEquivalence guards the identity GetBytes is built on:
// for every non-empty string s, maphash.Comparable(seed, s) equals
// maphash.Bytes(seed, []byte(s)) (and maphash.String(seed, s)). The
// empty string is the documented exception — Comparable mixes in type
// identity that the byte hash of zero bytes does not — which is why
// GetBytes routes the empty key through Get instead.
func TestBytesHashEquivalence(t *testing.T) {
	seed := maphash.MakeSeed()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		s := string(b)
		if maphash.Comparable(seed, s) != maphash.Bytes(seed, b) {
			t.Fatalf("Comparable != Bytes for %q", s)
		}
		if maphash.String(seed, s) != maphash.Bytes(seed, b) {
			t.Fatalf("String != Bytes for %q", s)
		}
	}
}

func TestGetBytes(t *testing.T) {
	tab := MustNew[string, int](Config{InitialCapacity: 64})
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := tab.Insert(keys[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, ok := GetBytes(tab, []byte(k))
		if !ok || v != i {
			t.Fatalf("GetBytes(%q) = %d, %v; want %d, true", k, v, ok, i)
		}
	}
	if _, ok := GetBytes(tab, []byte("absent")); ok {
		t.Fatal("GetBytes hit on an absent key")
	}
}

// TestGetBytesEmptyKey covers the maphash fallback: the empty key must
// behave identically through both entry points.
func TestGetBytesEmptyKey(t *testing.T) {
	tab := MustNew[string, int](Config{})
	if _, ok := GetBytes(tab, nil); ok {
		t.Fatal("empty-key hit on empty table")
	}
	if err := tab.Insert("", 42); err != nil {
		t.Fatal(err)
	}
	if v, ok := GetBytes(tab, nil); !ok || v != 42 {
		t.Fatalf("GetBytes(nil) = %d, %v; want 42, true", v, ok)
	}
	if v, ok := GetBytes(tab, []byte{}); !ok || v != 42 {
		t.Fatalf("GetBytes([]) = %d, %v; want 42, true", v, ok)
	}
}

// TestGetBytesDuringMigration drives an incremental resize and checks
// that GetBytes finds keys still parked in the draining generation.
func TestGetBytesDuringMigration(t *testing.T) {
	tab := MustNew[string, int](Config{
		InitialCapacity:        64,
		DisableBackgroundSweep: true,
		MigrateBatch:           -1, // no per-op draining: keep olds populated
	})
	n := 0
	for tab.Len() < tab.Cap()-1 { // fill until the next insert must grow
		if err := tab.Insert(fmt.Sprintf("key-%d", n), n); err != nil {
			t.Fatal(err)
		}
		n++
	}
	for i := 0; !tab.Growing(); i++ {
		if err := tab.Insert(fmt.Sprintf("spill-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, ok := GetBytes(tab, []byte(k)); !ok || v != i {
			t.Fatalf("mid-migration GetBytes(%q) = %d, %v; want %d, true", k, v, ok, i)
		}
	}
}

// TestGetBytesZeroAlloc is the generic-layer half of the hot-path
// allocation proof (allocfree proves it statically; this measures it).
func TestGetBytesZeroAlloc(t *testing.T) {
	tab := MustNew[string, int](Config{InitialCapacity: 256})
	for i := 0; i < 100; i++ {
		if err := tab.Insert(fmt.Sprintf("key-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	hit := []byte("key-42")
	miss := []byte("nope-42")
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := GetBytes(tab, hit); !ok {
			t.Fatal("lost key-42")
		}
		if _, ok := GetBytes(tab, miss); ok {
			t.Fatal("phantom hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetBytes allocates %.1f times per hit+miss pair; want 0", allocs)
	}
}
