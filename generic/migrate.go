package generic

// Incremental two-generation resize. A grow no longer stops the world:
// it allocates the doubled bucket array alongside the old one, publishes
// both behind a single generation-state pointer, and drains the old
// buckets a bounded batch at a time — per mutating operation and from an
// optional background sweeper — while readers consult old-then-new under
// the existing stripe discipline. The scheme follows the page-by-page
// rehash of "Cuckoo Hashing with Pages" (arXiv:1104.5111) and the
// two-table read discipline of "Lock-Free Hopscotch Hashing"
// (arXiv:1911.03028): a version (epoch) word tells concurrent operations
// that the generation set changed, and per-bucket migrated marks make
// the old generation write-once-drained.
//
// Invariants (machine-checked by the cuckoovet genercheck analyzer):
//
//   - Every bucket-array access sits between a loadState and a
//     stateValid re-check under the covering stripes, so an operation
//     never works on a generation set that was unpublished before it
//     locked.
//   - A key lives in exactly one slot of one generation. Movers (the
//     migrator, and writers folding an old entry forward) hold the old
//     bucket's stripe and both live candidates' stripes, so the
//     single-copy invariant is preserved across the move.
//   - New values land only in the live generation. The only writes an
//     old generation ever sees are slot clears; once a bucket's
//     migrated mark is set it is empty forever, so nothing is written
//     to an old generation after its mark.

import (
	"runtime"
	"sync/atomic"
	"time"
)

// genState is the published generation set: the live arrays every new
// value lands in, plus zero or more draining old generations (oldest
// first). The struct and its olds slice are immutable once stored;
// grow-start and migration-finish publish a fresh value under growMu.
type genState[K comparable, V any] struct {
	live *tArrays[K, V]
	olds []*oldGen[K, V]
}

// oldGen is one draining generation: its frozen arrays, a migrated-mark
// bitmap (a bucket's mark is set exactly once, when it is observed
// empty), a claim cursor handing buckets to migrators, and a count of
// buckets still unmarked.
type oldGen[K comparable, V any] struct {
	arr       *tArrays[K, V]
	marks     []atomic.Uint32 // 32 buckets per word
	next      atomic.Uint64   // next bucket index to claim
	remaining atomic.Int64    // unmarked buckets; 0 = fully drained
}

func newOldGen[K comparable, V any](arr *tArrays[K, V]) *oldGen[K, V] {
	g := &oldGen[K, V]{
		arr:   arr,
		marks: make([]atomic.Uint32, (arr.buckets+31)/32),
	}
	g.remaining.Store(int64(arr.buckets))
	return g
}

// isMigrated reports whether bucket b's migrated mark is set.
func (g *oldGen[K, V]) isMigrated(b uint64) bool {
	return g.marks[b>>5].Load()&(1<<(b&31)) != 0
}

// markMigrated sets bucket b's migrated mark, reporting whether this
// call was the one that set it. Marking is only correct once b is
// empty: nothing is ever added to an old generation, so emptiness is
// stable and the mark is permanent. Spelled as an explicit CAS loop
// rather than Uint32.Or: the value-returning Or intrinsic miscompiles
// under the pinned go1.24.0 toolchain (the expansion clobbers a live
// register), and the CAS form is what the rest of the repo uses anyway.
func (g *oldGen[K, V]) markMigrated(b uint64) bool {
	w := &g.marks[b>>5]
	bit := uint32(1) << (b & 31)
	for {
		old := w.Load()
		if old&bit != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// GrowEventKind labels a GrowEvent: the start of an incremental grow or
// the retirement of a fully drained old generation.
type GrowEventKind uint8

const (
	// GrowStart: a new live generation was published; migration of the
	// previous live arrays begins.
	GrowStart GrowEventKind = iota
	// GrowDone: an old generation finished draining and was retired.
	GrowDone
)

// String returns the kind's label ("start" or "done").
func (k GrowEventKind) String() string {
	if k == GrowStart {
		return "start"
	}
	return "done"
}

// GrowEvent describes one grow state change, delivered to
// Config.OnGrowEvent from whichever goroutine drove the transition.
type GrowEvent struct {
	Kind GrowEventKind
	// FromBuckets is the bucket count of the generation being retired
	// (the previous live arrays on start, the drained ones on done).
	FromBuckets uint64
	// ToBuckets is the live bucket count after the event.
	ToBuckets uint64
	// Backlog is the number of old-generation buckets still awaiting
	// migration after the event, across all draining generations.
	Backlog uint64
}

// loadState returns the current generation set. Any bucket access
// derived from the returned state must re-check stateValid after the
// covering stripes are held (the genercheck analyzer enforces this).
func (t *Table[K, V]) loadState() *genState[K, V] { return t.state.Load() }

// stateValid reports whether st is still the published generation set.
// Callers hold the stripes covering the buckets they are about to
// touch, so a true result pins the generation set for the critical
// section: both publish points (grow-start and migration-finish) swap
// the state pointer before any migrator can touch the affected buckets,
// and migrators take those same stripes.
func (t *Table[K, V]) stateValid(st *genState[K, V]) bool { return t.state.Load() == st }

// Growing reports whether an incremental migration is in flight.
func (t *Table[K, V]) Growing() bool { return len(t.loadState().olds) > 0 }

// MigrationEpoch returns the generation epoch: a counter bumped every
// time the generation set changes (grow start and finish). Transaction
// layers snapshot it with their read sets so a commit can detect that
// an entry it read may have been migrated.
func (t *Table[K, V]) MigrationEpoch() uint64 { return t.epoch.Load() }

// backlog sums the unmarked buckets across st's old generations.
func backlog[K comparable, V any](st *genState[K, V]) uint64 {
	var n uint64
	for _, g := range st.olds {
		if r := g.remaining.Load(); r > 0 {
			n += uint64(r)
		}
	}
	return n
}

// grow starts an incremental migration if the live arrays still have
// observedBuckets buckets (a concurrent grow already helped otherwise),
// returning false only when Config.MaxCapacity forbids further growth.
//
//cuckoo:coldpath a doubling allocates the new generation by definition; bounded by log2(capacity) occurrences
func (t *Table[K, V]) grow(observedBuckets uint64) bool {
	//lint:allow cuckoovet:blockcheck store hierarchy: a put under a txn key stripe may park on growMu during the rare capacity escalation; bounded by doublings
	t.growMu.Lock()
	defer t.growMu.Unlock()
	if t.loadState().live.buckets != observedBuckets {
		return true // raced with another grow; caller just retries
	}
	return t.growLocked(false)
}

// growLocked publishes a doubled live generation and queues the current
// live arrays for draining. Caller holds growMu. force ignores
// MaxCapacity: the migrator uses it to guarantee drain termination, so
// the configured bound is a bound on put-driven growth, not a hard cap
// on transient capacity.
func (t *Table[K, V]) growLocked(force bool) bool {
	st := t.loadState()
	live := st.live
	newBuckets := live.buckets * 2
	if max := t.cfg.MaxCapacity; !force && max != 0 && newBuckets*t.assoc > max {
		return false
	}
	olds := make([]*oldGen[K, V], 0, len(st.olds)+1)
	olds = append(olds, st.olds...)
	olds = append(olds, newOldGen(live))
	next := &genState[K, V]{live: t.newArrays(newBuckets), olds: olds}
	t.state.Store(next)
	t.epoch.Add(1)
	t.growCount.Add(1)
	if f := t.cfg.OnGrowEvent; f != nil {
		//lint:allow cuckoovet:blockcheck grow-event callbacks are documented non-blocking (growEventFunc) and fire at most twice per doubling
		f(GrowEvent{Kind: GrowStart, FromBuckets: live.buckets,
			ToBuckets: newBuckets, Backlog: backlog(next)})
	}
	if !t.cfg.DisableBackgroundSweep {
		go t.sweepMigration()
	}
	return true
}

// migrateStep is the bounded per-mutating-operation migration quantum:
// one atomic load when no migration is in flight, at most
// Config.MigrateBatch bucket drains when one is.
//cuckoo:coldpath drain work only exists while a resize is in flight; amortized over writes and bounded per op
func (t *Table[K, V]) migrateStep() {
	if t.cfg.MigrateBatch <= 0 || !t.Growing() {
		return
	}
	t.MigrateBatch(t.cfg.MigrateBatch)
}

// MigrateBatch drains up to max old-generation buckets into the live
// arrays, oldest generation first, and returns how many buckets this
// call drained. It returns 0 when no migration is in flight. The server
// layer calls it from request handlers so migration cost appears as an
// attributed span stage rather than hiding inside table operations.
func (t *Table[K, V]) MigrateBatch(max int) int {
	done := 0
	for done < max {
		st := t.loadState()
		if len(st.olds) == 0 {
			break
		}
		g := st.olds[0]
		if g.remaining.Load() == 0 {
			if !t.finishGen(g) {
				break // growMu busy; whoever holds it will retire g
			}
			continue
		}
		b := g.next.Add(1) - 1
		if b >= g.arr.buckets {
			break // every bucket claimed; stragglers drain elsewhere
		}
		t.migrateBucket(g, b, false)
		done++
	}
	return done
}

// sweepMigration drains in the background until no old generations
// remain. One sweeper is spawned per grow; extra sweepers from chained
// grows drain the same cursors and exit together, so no lifecycle
// management is needed.
func (t *Table[K, V]) sweepMigration() {
	for {
		n := t.MigrateBatch(sweepBatchBuckets)
		if !t.Growing() {
			return
		}
		if n == 0 {
			// Cursor exhausted but stragglers are still draining in
			// other goroutines, or growMu is briefly busy. Back off.
			time.Sleep(50 * time.Microsecond)
			continue
		}
		runtime.Gosched()
	}
}

// sweepBatchBuckets is the sweeper's per-iteration claim, sized so one
// iteration stays microseconds even with full buckets.
const sweepBatchBuckets = 8

// migrateBucket drains old-generation bucket b: every key is moved to a
// free slot among its live candidate buckets (BFS displacement in the
// live arrays makes room when neither is free, a forced grow when even
// BFS fails), then the bucket's migrated mark is set. Safe to call
// concurrently for the same bucket; it returns once b is marked.
// growMuHeld distinguishes the synchronous drain (Range/Clear hold
// growMu) so escalation does not self-deadlock.
func (t *Table[K, V]) migrateBucket(g *oldGen[K, V], b uint64, growMuHeld bool) {
	for {
		if g.isMigrated(b) {
			return
		}
		st := t.loadState()
		li := t.locks.IndexFor(b)
		t.locks.Lock(li)
		if !t.stateValid(st) {
			t.locks.Unlock(li)
			continue
		}
		occ := g.arr.occ[b]
		var key K
		var slot uint64
		if occ != 0 {
			slot = uint64(firstSlot(occ))
			key = g.arr.keys[b*t.assoc+slot]
		}
		t.locks.Unlock(li)

		if occ == 0 {
			// Nothing is ever added to an old generation, so emptiness
			// is stable and the mark can be set outside the stripe.
			if g.markMigrated(b) {
				g.remaining.Add(-1)
				t.migratedBuckets.Add(1)
			}
			return
		}

		live := st.live
		h := t.hash(key)
		nb1, nb2 := t.twoBuckets(h, live.buckets)
		if t.moveOldSlot(st, g, b, slot, key, nb1, nb2) {
			continue
		}
		// Neither live candidate has room: open a slot with a BFS
		// displacement path, exactly like a slow-path insert.
		if path, ok := t.search(st, nb1, nb2); ok {
			for i := len(path) - 2; i >= 0; i-- {
				if !t.displace(st, path[i], path[i+1]) {
					break
				}
			}
			continue
		}
		// The live arrays are too full to absorb the old keys: escalate
		// with another (forced) doubling so the drain always terminates.
		if growMuHeld {
			t.growLocked(true)
		} else {
			//lint:allow cuckoovet:blockcheck store hierarchy: drain escalation may park on growMu with stripes held; the alternative is a migration that cannot terminate
			t.growMu.Lock()
			if t.stateValid(st) {
				t.growLocked(true)
			}
			t.growMu.Unlock()
		}
	}
}

// firstSlot returns the index of the lowest set bit of occ (occ != 0).
func firstSlot(occ uint32) int {
	s := 0
	for occ&1 == 0 {
		occ >>= 1
		s++
	}
	return s
}

// moveOldSlot moves one key from old-generation bucket ob (slot s) into
// a free slot of its live candidates nb1/nb2, holding the old bucket's
// stripe and both live stripes. It returns true when the slot no longer
// needs work — moved here, already gone, or the state changed — and
// false when both live candidates are full and the caller must make
// room first.
func (t *Table[K, V]) moveOldSlot(st *genState[K, V], g *oldGen[K, V], ob, s uint64, key K, nb1, nb2 uint64) bool {
	var buf [3]uint64
	idxs := append(buf[:0], t.locks.IndexFor(ob), t.locks.IndexFor(nb1), t.locks.IndexFor(nb2))
	locked := t.locks.LockOrdered(idxs)
	defer t.locks.UnlockOrdered(locked)
	if !t.stateValid(st) {
		return true
	}
	i := ob*t.assoc + s
	if g.arr.occ[ob]&(1<<uint(s)) == 0 || g.arr.keys[i] != key {
		return true // a writer or another migrator already handled it
	}
	live := st.live
	for _, nb := range [2]uint64{nb1, nb2} {
		if fs, ok := freeSlot(live.occ[nb], int(t.assoc)); ok {
			t.placeNoCount(live, nb, fs, key, g.arr.vals[i])
			t.clearSlot(g.arr, ob, i)
			return true
		}
	}
	return false
}

// finishGen retires a fully drained old generation, publishing a state
// without it. It uses TryLock so a request-path caller never queues
// behind a long growMu holder (Range keeps growMu for a whole
// iteration); the sweeper or the next caller retires g instead.
func (t *Table[K, V]) finishGen(g *oldGen[K, V]) bool {
	if !t.growMu.TryLock() {
		return false
	}
	defer t.growMu.Unlock()
	t.finishGenLocked(g)
	return true
}

// finishGenLocked removes g from the published old-generation list.
// Caller holds growMu and g is fully drained.
func (t *Table[K, V]) finishGenLocked(g *oldGen[K, V]) {
	st := t.loadState()
	idx := -1
	for i, og := range st.olds {
		if og == g {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // already retired
	}
	olds := make([]*oldGen[K, V], 0, len(st.olds)-1)
	olds = append(olds, st.olds[:idx]...)
	olds = append(olds, st.olds[idx+1:]...)
	if len(olds) == 0 {
		olds = nil
	}
	next := &genState[K, V]{live: st.live, olds: olds}
	t.state.Store(next)
	t.epoch.Add(1)
	if f := t.cfg.OnGrowEvent; f != nil {
		//lint:allow cuckoovet:blockcheck grow-event callbacks are documented non-blocking (growEventFunc) and fire at most twice per doubling
		f(GrowEvent{Kind: GrowDone, FromBuckets: g.arr.buckets,
			ToBuckets: st.live.buckets, Backlog: backlog(next)})
	}
}

// drainAllLocked completes every in-flight migration synchronously.
// Caller holds growMu, which blocks new grows, so the loop terminates:
// each pass retires the oldest generation, and escalation grows (the
// only source of new generations here) strictly double the live
// arrays, which cannot continue past the point where everything fits.
func (t *Table[K, V]) drainAllLocked() {
	for {
		st := t.loadState()
		if len(st.olds) == 0 {
			return
		}
		g := st.olds[0]
		for b := uint64(0); b < g.arr.buckets; b++ {
			t.migrateBucket(g, b, true)
		}
		t.finishGenLocked(g)
	}
}
